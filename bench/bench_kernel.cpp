// bench_kernel — batched behavioral-kernel microbenchmark tracking the
// block-vectorized dataflow path (BENCH_kernel.json).
//
// Three standardized measurements:
//
//   behavioral_scalar   the genie-timed behavioral chain (tx -> AWGN channel
//                       -> LNA/VGA/squarer/peak -> ideal I&D + window
//                       controller) on the per-sample path — one virtual
//                       call per block per 0.2 ns sample;
//   behavioral_batched  the same chain through event-bounded batches
//                       (Kernel::enable_batching), with the batch-size
//                       histogram showing where the digital events cut;
//   ber_sweep           a small ideal-integrator Eb/N0 sweep, serial vs
//                       fanned across the configured --jobs (wall times;
//                       results are bit-identical by construction).
//
// The scalar and batched chains must agree bit for bit (gated below), so
// the speedup is pure execution-structure gain, not a model change.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "runner/runner.hpp"
#include "uwb/ber.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/receiver.hpp"
#include "uwb/transmitter.hpp"

using namespace uwbams;

namespace {

struct ChainResult {
  double wall_seconds = 0.0;
  double samples_per_second = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;
  std::vector<std::uint64_t> histogram;  // batches by size (empty if scalar)
};

ChainResult run_chain(std::uint64_t seed, int payload_bits, int capacity) {
  uwb::SystemConfig sys;
  sys.dt = 0.2e-9;
  sys.distance = 1.0;
  sys.multipath = false;
  sys.preamble_symbols = 0;
  sys.seed = seed;

  ams::Kernel kernel(sys.dt);
  if (capacity > 0) kernel.enable_batching(capacity);

  uwb::Transmitter tx(sys);
  uwb::ChannelBlock chan(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(chan);
  chan.set_input(tx.out());
  const double rx_peak = 10e-3;
  const uwb::GaussianMonocycle pulse(2, sys.pulse_sigma, rx_peak);
  chan.set_awgn_only(rx_peak / sys.pulse_amplitude);
  chan.set_noise_psd(pulse.energy() * sys.pulses_per_symbol /
                     units::db_to_pow(10.0));
  chan.reseed(seed * 7 + 3);

  uwb::Receiver rx(kernel, sys, chan.out(),
                   core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                                 sys));
  rx.set_vga_gain_db(14.0);

  base::Rng rng(seed);
  const auto bits = rng.bits(static_cast<std::size_t>(payload_bits));
  uwb::Packet p;
  p.preamble_symbols = 0;
  p.payload = bits;
  const double t_start = sys.symbol_period;
  tx.send(p, t_start);
  rx.start_genie(kernel, t_start + sys.distance / units::speed_of_light, bits);

  const auto t0 = std::chrono::steady_clock::now();
  kernel.run_until(t_start + p.duration(sys.symbol_period) + sys.symbol_period);
  ChainResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.steps = kernel.steps();
  r.samples_per_second = static_cast<double>(r.steps) / r.wall_seconds;
  r.bits = rx.ber().bits();
  r.errors = rx.ber().errors();
  if (kernel.batching_active()) r.histogram = kernel.batch_histogram();
  return r;
}

std::string hist_json(const std::vector<std::uint64_t>& hist) {
  std::string out = "{";
  bool first = true;
  for (std::size_t n = 0; n < hist.size(); ++n) {
    if (hist[n] == 0) continue;
    if (!first) out += ", ";
    out += "\"" + std::to_string(n) + "\": " + std::to_string(hist[n]);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

REGISTER_SCENARIO(bench_kernel, "bench",
                  "Batched behavioral-kernel microbenchmark "
                  "(BENCH_kernel.json)") {
  const int payload_bits = ctx.pick(400, 2000, 8000);

  // Alternate scalar/batched and keep the faster pass of each: wall-clock
  // noise (frequency ramps, co-tenants) far exceeds the effect on a single
  // pass, and the workload is bit-identical across passes by construction.
  ChainResult scalar = run_chain(ctx.seed, payload_bits, 0);
  ChainResult batched = run_chain(ctx.seed, payload_bits, ams::kMaxBatch);
  {
    const ChainResult s2 = run_chain(ctx.seed, payload_bits, 0);
    const ChainResult b2 = run_chain(ctx.seed, payload_bits, ams::kMaxBatch);
    if (s2.samples_per_second > scalar.samples_per_second) scalar = s2;
    if (b2.samples_per_second > batched.samples_per_second) batched = b2;
  }
  const double speedup =
      batched.samples_per_second / scalar.samples_per_second;
  const bool forced_scalar = batched.histogram.empty();

  ctx.sink.notef("behavioral_scalar : %9.0f samples/s (%llu steps)",
                 scalar.samples_per_second,
                 static_cast<unsigned long long>(scalar.steps));
  ctx.sink.notef("behavioral_batched: %9.0f samples/s (%.2fx)%s",
                 batched.samples_per_second, speedup,
                 forced_scalar ? "  [forced scalar]" : "");

  // Honesty gate: the batched chain must reproduce the scalar decisions
  // exactly (bit-identical waveforms imply identical BER counts).
  if (batched.bits != scalar.bits || batched.errors != scalar.errors) {
    ctx.sink.notef("FAIL: batched chain diverged (%llu/%llu bits, "
                   "%llu/%llu errors)",
                   static_cast<unsigned long long>(batched.bits),
                   static_cast<unsigned long long>(scalar.bits),
                   static_cast<unsigned long long>(batched.errors),
                   static_cast<unsigned long long>(scalar.errors));
    return 1;
  }

  std::uint64_t batch_total = 0, batch_count = 0;
  for (std::size_t n = 0; n < batched.histogram.size(); ++n) {
    batch_total += n * batched.histogram[n];
    batch_count += batched.histogram[n];
  }
  const double mean_batch =
      batch_count > 0 ? static_cast<double>(batch_total) /
                            static_cast<double>(batch_count)
                      : 1.0;
  if (!forced_scalar)
    ctx.sink.notef("batches: %llu (mean %.1f samples; boundary = next "
                   "digital event)",
                   static_cast<unsigned long long>(batch_count), mean_batch);

  // BER-sweep wall time, serial vs the configured worker pool. Results are
  // bit-identical for any job count; only the wall clock may move.
  uwb::BerConfig sweep;
  sweep.sys.dt = 0.2e-9;
  sweep.sys.preamble_symbols = 0;
  sweep.sys.multipath = false;
  sweep.sys.distance = 1.0;
  sweep.sys.seed = ctx.seed;
  sweep.ebn0_db = {4, 8, 12, 16};
  sweep.max_bits = static_cast<std::uint64_t>(ctx.pick(400, 2000, 8000));
  sweep.min_errors = 1000000;  // fixed workload for timing
  const auto factory = core::make_integrator_factory(
      core::IntegratorKind::kIdeal, sweep.sys);

  const auto t0 = std::chrono::steady_clock::now();
  sweep.jobs = 1;
  const auto serial = uwb::run_ber_sweep(sweep, factory);
  const auto t1 = std::chrono::steady_clock::now();
  sweep.jobs = ctx.jobs;
  const auto fanned = uwb::run_ber_sweep(sweep, factory);
  const auto t2 = std::chrono::steady_clock::now();
  const double sweep_serial = std::chrono::duration<double>(t1 - t0).count();
  const double sweep_fanned = std::chrono::duration<double>(t2 - t1).count();
  ctx.sink.notef("ber_sweep: serial %.2f s, --jobs=%d %.2f s",
                 sweep_serial, ctx.jobs, sweep_fanned);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].errors != fanned[i].errors ||
        serial[i].bits != fanned[i].bits) {
      ctx.sink.note("FAIL: parallel sweep diverged from serial");
      return 1;
    }
  }

  ctx.sink.metric("behavioral_scalar_samples_per_second",
                  scalar.samples_per_second);
  ctx.sink.metric("behavioral_batched_samples_per_second",
                  batched.samples_per_second);
  ctx.sink.metric("batched_speedup", speedup);
  ctx.sink.metric("mean_batch_samples", mean_batch);
  ctx.sink.metric("ber_sweep_serial_seconds", sweep_serial);
  ctx.sink.metric("ber_sweep_parallel_seconds", sweep_fanned);

  char buf[1024];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"behavioral_scalar_samples_per_second\": %.1f,\n"
                "  \"behavioral_batched_samples_per_second\": %.1f,\n"
                "  \"batched_speedup\": %.3f,\n"
                "  \"forced_scalar\": %s,\n"
                "  \"mean_batch_samples\": %.2f,\n"
                "  \"ber_sweep_serial_seconds\": %.4f,\n"
                "  \"ber_sweep_parallel_seconds\": %.4f,\n"
                "  \"ber_sweep_jobs\": %d,\n"
                "  \"batch_histogram\": ",
                scalar.samples_per_second, batched.samples_per_second,
                speedup, forced_scalar ? "true" : "false", mean_batch,
                sweep_serial, sweep_fanned, ctx.jobs);
  std::string json(buf);
  json += hist_json(batched.histogram);
  json += "\n}\n";
  ctx.sink.raw_artifact("BENCH_kernel.json", json);

  // Regression gate: batching must beat the per-sample path on the
  // behavioral chain (skipped under UWBAMS_FORCE_SCALAR, where both runs
  // take the scalar path by design).
  if (!forced_scalar && speedup < 1.05) {
    ctx.sink.notef("FAIL: batched kernel no faster than scalar (%.2fx)",
                   speedup);
    return 1;
  }
  return 0;
}
