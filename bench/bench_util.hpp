// bench_util.hpp — shared helpers for the reproduction benches.
//
// Every bench honors two environment variables:
//   UWBAMS_FAST=1  — cut workloads for smoke runs / CI
//   UWBAMS_FULL=1  — paper-scale workloads (longer runtimes)
#pragma once

#include <cstdlib>
#include <string>

namespace uwbams::benchutil {

enum class Scale { kFast, kDefault, kFull };

inline Scale scale_from_env() {
  if (std::getenv("UWBAMS_FAST") != nullptr) return Scale::kFast;
  if (std::getenv("UWBAMS_FULL") != nullptr) return Scale::kFull;
  return Scale::kDefault;
}

inline const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kFast: return "fast";
    case Scale::kDefault: return "default";
    case Scale::kFull: return "full (paper scale)";
  }
  return "?";
}

}  // namespace uwbams::benchutil
