// ablation_two_stage_agc — the paper's §5 proposed architecture fix.
//
// "A possible solution consists in modifying the AGC unit including in its
// description two gain control stages: a first one ... which controls the
// signal amplitudes so that saturation at the input is avoided and a second
// one which amplifies the integrator output in order to adjust the
// integrated energy for the ADC input range."
//
// The single-stage AGC must choose between the integrator's ~100 mV input
// range and the ADC target — it cannot satisfy both. This scenario runs the
// acquisition on the ELDO integrator under both policies and reports what
// each achieves on the two constraints.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "base/random.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "runner/runner.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/receiver.hpp"
#include "uwb/transmitter.hpp"

using namespace uwbams;

namespace {

struct AgcOutcome {
  double vga_db = 0.0;
  double post_scale = 1.0;
  double sq_peak = 0.0;        // squared-signal peak at the integrator input
  double mean_signal_v = 0.0;  // effective (post-scale) energy sample
  bool synced = false;
};

AgcOutcome run_link(bool two_stage, std::uint64_t seed) {
  uwb::SystemConfig sys;
  sys.dt = 0.2e-9;
  sys.distance = 9.9;
  sys.multipath = true;
  sys.preamble_symbols = 96;
  sys.noise_est_windows = 16;
  sys.two_stage_agc = two_stage;

  ams::Kernel kernel(sys.dt);
  kernel.enable_batching();
  uwb::Transmitter tx(sys);
  uwb::ChannelBlock chan(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(chan);
  chan.set_input(tx.out());
  base::Rng rng(seed);
  const double pl = uwb::path_loss_db(sys.distance, sys.path_loss_db_1m,
                                      sys.path_loss_exponent);
  chan.set_realization(uwb::generate_cm1(rng), units::db_to_lin(-pl));
  chan.set_noise_psd(8e-19);

  uwb::Receiver rx(
      kernel, sys, chan.out(),
      core::make_integrator_factory(core::IntegratorKind::kSpice, sys));
  rx.keep_samples(true);
  rx.start_acquire(kernel, 50e-9);

  uwb::Packet p;
  p.preamble_symbols = sys.preamble_symbols;
  p.payload = rng.bits(4);
  const double t_start = 2.2e-6;
  tx.send(p, t_start);
  // Run until synchronization completes (the packet is still in the air:
  // the observation below must see live preamble symbols).
  const double t_end = t_start + p.duration(sys.symbol_period);
  while (!rx.sync_done() && kernel.time() < t_end)
    kernel.run_until(kernel.time() + sys.symbol_period);

  AgcOutcome out;
  out.synced = rx.sync_done();
  out.vga_db = rx.vga_gain_db();
  out.post_scale = rx.agc().post_scale();
  // Observe a few post-sync symbols for the steady-state figures. Windows
  // alternate signal/noise slots with arbitrary parity, so take per-pair
  // maxima for the signal-energy sample.
  rx.squared_peak().reset_peak();
  double sum = 0.0;
  const std::size_t n0 = rx.samples().size();
  kernel.run_until(kernel.time() + 8 * sys.symbol_period);
  std::size_t n = 0;
  for (std::size_t i = n0; i + 1 < rx.samples().size(); i += 2) {
    sum += std::max(rx.samples()[i].analog, rx.samples()[i + 1].analog) *
           out.post_scale;
    ++n;
  }
  out.sq_peak = rx.squared_peak().peak();
  out.mean_signal_v = n ? sum / static_cast<double>(n) : 0.0;
  return out;
}

}  // namespace

REGISTER_SCENARIO(two_stage_agc, "ablation",
                  "A4 — single- vs two-stage AGC on the ELDO integrator") {
  uwb::SystemConfig sys;
  const double clamp = sys.integrator_clamp;
  const double adc_target = 0.75 * sys.adc_vmax;

  // Two independent acquisitions (same channel/noise draws, different AGC
  // policy); fan them across the pool. Additive offset from the base seed:
  // --seed=1 reproduces the curated operating point.
  const std::uint64_t link_seed = ctx.seed + 4;
  const auto outcomes = ctx.pool.map<AgcOutcome>(
      2, [&](std::size_t i) { return run_link(/*two_stage=*/i == 1, link_seed); });

  base::Table t("Single-stage vs two-stage AGC at the 9.9 m operating point");
  t.set_header({"AGC", "VGA [dB]", "post x", "sq peak [mV]", "vs 104 mV range",
                "energy sample [V]", "vs ADC target"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    t.add_row({i == 1 ? "two-stage (§5)" : "single-stage",
               base::Table::num(o.vga_db, 1), base::Table::num(o.post_scale, 2),
               base::Table::num(o.sq_peak * 1e3, 0),
               base::Table::num(o.sq_peak / clamp, 1) + " x",
               base::Table::num(o.mean_signal_v, 3),
               base::Table::num(o.mean_signal_v / adc_target, 2) + " x"});
    ctx.sink.notef("%s done (synced=%d)", i == 1 ? "two-stage" : "single-stage",
                   o.synced ? 1 : 0);
  }
  ctx.sink.note("");
  ctx.sink.table(t, "agc_policies");

  ctx.sink.note(
      "Reading: the single-stage AGC drives the squared signal far beyond\n"
      "the integrator's ~104 mV linear range while still undershooting the\n"
      "ADC target (the §5 conflict). The two-stage policy keeps the input\n"
      "near the range and restores the ADC level digitally — the\n"
      "architectural adjustment the paper's mixed-level simulation\n"
      "suggested before circuit redesign.");
  return 0;
}
