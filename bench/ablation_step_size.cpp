// ablation_step_size — sensitivity of the Table-1 CPU costs (and of the
// demodulated traffic) to the fixed solver step.
//
// The paper fixes 0.05 ns; this ablation shows how the CPU-time ratios and
// the decoded-bit agreement move across {0.05, 0.1, 0.2, 0.4} ns for the
// IDEAL and ELDO variants. The embedded Newton solver is A-stable, so the
// circuit variant degrades gracefully rather than diverging.
#include <cstdio>
#include <vector>

#include "base/table.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

using namespace uwbams;

int main() {
  const auto scale = benchutil::scale_from_env();
  std::printf("=== Ablation A1: time-step sensitivity (scale: %s) ===\n\n",
              benchutil::scale_name(scale));

  const double duration =
      (scale == benchutil::Scale::kFast) ? 1.5e-6 : 6e-6;

  base::Table t("CPU time and error count vs solver step (" +
                base::Table::num(duration * 1e6, 0) + " us sim)");
  t.set_header({"dt [ns]", "IDEAL cpu [s]", "ELDO cpu [s]", "ratio",
                "IDEAL errs", "ELDO errs", "bits"});

  for (double dt_ns : {0.05, 0.1, 0.2, 0.4}) {
    core::SystemRunConfig cfg;
    cfg.duration = duration;
    cfg.sys.dt = dt_ns * 1e-9;
    cfg.ebn0_db = 12.0;

    cfg.kind = core::IntegratorKind::kIdeal;
    const auto ideal = core::run_system_simulation(cfg);
    cfg.kind = core::IntegratorKind::kSpice;
    const auto eldo = core::run_system_simulation(cfg);

    t.add_row({base::Table::num(dt_ns, 2),
               base::Table::num(ideal.cpu_seconds, 2),
               base::Table::num(eldo.cpu_seconds, 2),
               base::Table::num(eldo.cpu_seconds /
                                    std::max(ideal.cpu_seconds, 1e-9),
                                1) + " x",
               std::to_string(ideal.bit_errors),
               std::to_string(eldo.bit_errors),
               std::to_string(ideal.bits_demodulated)});
    std::printf("dt = %.2f ns done\n", dt_ns);
    std::fflush(stdout);
  }
  std::printf("\n%s\n", t.render().c_str());
  std::printf(
      "Reading: CPU cost scales ~1/dt for both fidelities; the ELDO/IDEAL\n"
      "ratio is roughly step-independent, so the paper's Table-1 conclusion\n"
      "does not hinge on its particular 0.05 ns choice.\n");
  return 0;
}
