// ablation_step_size — sensitivity of the Table-1 CPU costs (and of the
// demodulated traffic) to the fixed solver step.
//
// The paper fixes 0.05 ns; this ablation shows how the CPU-time ratios and
// the decoded-bit agreement move across {0.05, 0.1, 0.2, 0.4} ns for the
// IDEAL and ELDO variants. The embedded Newton solver is A-stable, so the
// circuit variant degrades gracefully rather than diverging.
//
// Serial on purpose: like table1_cpu, the measured quantity is CPU time.
#include <algorithm>

#include "base/table.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "runner/runner.hpp"

using namespace uwbams;

REGISTER_SCENARIO(step_size, "ablation",
                  "A1 — solver step vs CPU time and decoded traffic") {
  const double duration = ctx.pick(1.5e-6, 6e-6, 6e-6);

  base::Table t("CPU time and error count vs solver step (" +
                base::Table::num(duration * 1e6, 0) + " us sim)");
  t.set_header({"dt [ns]", "IDEAL cpu [s]", "ELDO cpu [s]", "ratio",
                "IDEAL errs", "ELDO errs", "bits"});

  auto spec = ctx.spec().duration(duration).ebn0(12.0);
  for (double dt_ns : {0.05, 0.1, 0.2, 0.4}) {
    spec.dt(dt_ns * 1e-9);
    const auto ideal = core::run_system_simulation(
        spec.integrator(core::IntegratorKind::kIdeal).run_config());
    const auto eldo = core::run_system_simulation(
        spec.integrator(core::IntegratorKind::kSpice).run_config());

    t.add_row({base::Table::num(dt_ns, 2),
               base::Table::num(ideal.cpu_seconds, 2),
               base::Table::num(eldo.cpu_seconds, 2),
               base::Table::num(
                   eldo.cpu_seconds / std::max(ideal.cpu_seconds, 1e-9), 1) +
                   " x",
               std::to_string(ideal.bit_errors),
               std::to_string(eldo.bit_errors),
               std::to_string(ideal.bits_demodulated)});
    ctx.sink.notef("dt = %.2f ns done", dt_ns);
  }
  ctx.sink.note("");
  ctx.sink.table(t, "step_size");

  ctx.sink.note(
      "Reading: CPU cost scales ~1/dt for both fidelities; the ELDO/IDEAL\n"
      "ratio is roughly step-independent, so the paper's Table-1 conclusion\n"
      "does not hinge on its particular 0.05 ns choice.");
  return 0;
}
