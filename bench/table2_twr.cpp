// table2_twr — reproduces Table 2: "TWR simulation results @ 9.9 m with
// IDEAL and ELDO integrator".
//
// Complete two-way-ranging exchanges (request/acquire/reply/acquire) over
// the 4a CM1 LOS channel with the recommended path loss, once per
// integrator fidelity. The paper's two observations under test:
//   * the ELDO integrator produces a *larger* distance offset (the AGC
//     drives the squared signal beyond its input range -> lower output ->
//     later threshold crossings), and
//   * a *smaller/comparable* spread (band-limiting of the detector).
//
// Iterations fan out across the pool; TwrConfig::channel_seed/noise_seed
// fix each iteration's seeds up front, so the sharded run reproduces the
// serial TwoWayRanging::run() loop bit for bit.
#include <string>
#include <vector>

#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "core/report.hpp"
#include "runner/runner.hpp"
#include "uwb/ranging.hpp"

using namespace uwbams;

REGISTER_SCENARIO(table2_twr, "bench",
                  "Table 2 — TWR distance estimates @ 9.9 m, CM1 LOS") {
  uwb::TwrConfig cfg;
  cfg.sys.dt = ctx.pick(0.2e-9, 0.2e-9, 0.1e-9);
  cfg.sys.seed = ctx.seed;
  cfg.iterations = ctx.pick(3, 10, 10);

  const std::vector<core::IntegratorKind> kinds = {
      core::IntegratorKind::kIdeal, core::IntegratorKind::kSpice};
  const auto n = static_cast<std::size_t>(cfg.iterations);

  ctx.sink.notef("running %zu x %d TWR exchanges ...", kinds.size(),
                 cfg.iterations);
  auto spec = ctx.spec()
                  .axis("kind", {0, 1})  // index into `kinds`
                  .repetitions(cfg.iterations);
  const auto flat = ctx.pool.map<uwb::TwrIteration>(
      spec.point_count(), [&](std::size_t t) {
        const auto pt = spec.point(t);
        uwb::TwoWayRanging twr(
            cfg, core::make_integrator_factory(
                     kinds[static_cast<std::size_t>(pt.at("kind"))], cfg.sys));
        return twr.run_iteration(cfg.channel_seed(pt.repetition),
                                 cfg.noise_seed(pt.repetition));
      });

  std::vector<core::NamedTwr> rows;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    core::NamedTwr named;
    named.name = core::to_string(kinds[k]);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& it = flat[k * n + i];
      if (!it.ok) ++named.result.failures;
      named.result.iterations.push_back(it);
    }
    rows.push_back(std::move(named));
  }

  ctx.sink.note("\n" + core::render_twr_table(rows, cfg.sys.distance));

  base::Table detail("Per-iteration distance estimates [m]");
  detail.set_header({"iter", rows[0].name, rows[1].name});
  for (std::size_t i = 0; i < n; ++i) {
    detail.add_row(
        {std::to_string(i),
         base::Table::num(rows[0].result.iterations[i].distance_estimate, 3),
         base::Table::num(rows[1].result.iterations[i].distance_estimate, 3)});
  }
  ctx.sink.table(detail, "iterations");
  for (const auto& r : rows) {
    ctx.sink.metric("mean_m_" + r.name, r.result.mean());
    ctx.sink.metric("stddev_m_" + r.name, r.result.stddev());
  }

  ctx.sink.note(
      "\nPaper Table 2 @ 9.9 m: IDEAL mean 10.10 m / var 0.49 m;"
      " ELDO mean 11.16 m / var 0.10 m.\n"
      "Shape check: the ELDO integrator's offset exceeds the IDEAL one (its\n"
      "limited input range lowers the integrated output, so the leading-edge\n"
      "threshold crossing happens later on both sides of the exchange). Our\n"
      "bias difference is smaller than the paper's because the AGC here has\n"
      "gain headroom and the ToA estimator interpolates between 2 ns bins —\n"
      "see the agc_operating_point ablation for the gain-limited regime.");
  return 0;
}
