// table2_twr — reproduces Table 2: "TWR simulation results @ 9.9 m with
// IDEAL and ELDO integrator".
//
// Ten complete two-way-ranging exchanges (request/acquire/reply/acquire)
// over the 4a CM1 LOS channel with the recommended path loss, once per
// integrator fidelity. The paper's two observations under test:
//   * the ELDO integrator produces a *larger* distance offset (the AGC
//     drives the squared signal beyond its input range -> lower output ->
//     later threshold crossings), and
//   * a *smaller/comparable* spread (band-limiting of the detector).
#include <cstdio>
#include <vector>

#include "base/table.hpp"
#include "bench_util.hpp"
#include "core/block_variant.hpp"
#include "core/report.hpp"
#include "uwb/ranging.hpp"

using namespace uwbams;

int main() {
  const auto scale = benchutil::scale_from_env();
  std::printf("=== Table 2 reproduction: TWR @ 9.9 m, CM1 LOS (scale: %s) ===\n\n",
              benchutil::scale_name(scale));

  uwb::TwrConfig cfg;
  cfg.sys.dt = (scale == benchutil::Scale::kFull) ? 0.1e-9 : 0.2e-9;
  cfg.iterations = (scale == benchutil::Scale::kFast) ? 3 : 10;

  std::vector<core::NamedTwr> rows;
  for (auto kind :
       {core::IntegratorKind::kIdeal, core::IntegratorKind::kSpice}) {
    std::printf("running %s (%d iterations) ...\n",
                core::to_string(kind).c_str(), cfg.iterations);
    std::fflush(stdout);
    uwb::TwoWayRanging twr(cfg,
                           core::make_integrator_factory(kind, cfg.sys));
    rows.push_back({core::to_string(kind), twr.run()});
  }

  std::printf("\n%s\n", core::render_twr_table(rows, cfg.sys.distance).c_str());

  base::Table detail("Per-iteration distance estimates [m]");
  detail.set_header({"iter", rows[0].name, rows[1].name});
  for (std::size_t i = 0; i < rows[0].result.iterations.size(); ++i) {
    detail.add_row(
        {std::to_string(i),
         base::Table::num(rows[0].result.iterations[i].distance_estimate, 3),
         base::Table::num(rows[1].result.iterations[i].distance_estimate, 3)});
  }
  detail.print();

  std::printf(
      "\nPaper Table 2 @ 9.9 m: IDEAL mean 10.10 m / var 0.49 m;"
      " ELDO mean 11.16 m / var 0.10 m.\n"
      "Shape check: the ELDO integrator's offset exceeds the IDEAL one (its\n"
      "limited input range lowers the integrated output, so the leading-edge\n"
      "threshold crossing happens later on both sides of the exchange). Our\n"
      "bias difference is smaller than the paper's because the AGC here has\n"
      "gain headroom and the ToA estimator interpolates between 2 ns bins —\n"
      "see bench/ablation_agc_headroom for the gain-limited regime.\n");
  return 0;
}
