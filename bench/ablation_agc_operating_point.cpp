// ablation_agc_operating_point — the paper's §5 tension, quantified on BER.
//
// Sweeps the AGC/calibration target (fraction of ADC full scale) and
// measures BER for the ideal and the transistor-level integrator at a high
// Eb/N0 point. Warm targets exploit the ADC but push the squared signal
// past the integrator's ~100 mV linear range (compression penalty for the
// real circuit); cold targets keep it linear, where the clamp censors noise
// spikes and the circuit *beats* the ideal detector — the operating-point
// dependence behind the paper's Fig. 6 crossover and Table 2 offset.
#include <cstdio>

#include "base/table.hpp"
#include "bench_util.hpp"
#include "core/block_variant.hpp"
#include "uwb/ber.hpp"

using namespace uwbams;

int main() {
  const auto scale = benchutil::scale_from_env();
  std::printf("=== Ablation A3: AGC operating point vs BER (scale: %s) ===\n\n",
              benchutil::scale_name(scale));

  const double ebn0 = 14.0;
  base::Table t("BER @ Eb/N0 = 14 dB vs calibration target");
  t.set_header({"target [% FS]", "IDEAL BER", "ELDO BER", "ELDO/IDEAL"});

  for (double frac : {0.10, 0.14, 0.22, 0.30}) {
    uwb::BerConfig cfg;
    cfg.sys.dt = 0.2e-9;
    cfg.ebn0_db = {ebn0};
    cfg.calibration_fraction = frac;
    cfg.max_bits = (scale == benchutil::Scale::kFast) ? 1500
                   : (scale == benchutil::Scale::kFull) ? 30000
                                                        : 8000;
    cfg.min_errors = 30;

    const auto ideal = uwb::run_ber_sweep(
        cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                           cfg.sys))[0];
    const auto eldo = uwb::run_ber_sweep(
        cfg, core::make_integrator_factory(core::IntegratorKind::kSpice,
                                           cfg.sys))[0];
    const double ratio = ideal.ber > 0 ? eldo.ber / ideal.ber : 0.0;
    t.add_row({base::Table::num(100 * frac, 0),
               base::Table::sci(ideal.ber, 2),
               base::Table::sci(eldo.ber, 2),
               base::Table::num(ratio, 2)});
    std::printf("target %.0f%% FS done\n", 100 * frac);
    std::fflush(stdout);
  }
  std::printf("\n%s\n", t.render().c_str());
  std::printf(
      "Reading: ELDO/IDEAL < 1 at cold targets (noise-spike censoring wins),\n"
      "> 1 at warm targets (signal compression wins). The single AGC cannot\n"
      "satisfy both constraints at once — the architectural finding the\n"
      "paper credits to its mixed-level methodology.\n");
  return 0;
}
