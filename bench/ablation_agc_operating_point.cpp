// ablation_agc_operating_point — the paper's §5 tension, quantified on BER.
//
// Sweeps the AGC/calibration target (fraction of ADC full scale) and
// measures BER for the ideal and the transistor-level integrator at a high
// Eb/N0 point. Warm targets exploit the ADC but push the squared signal
// past the integrator's ~100 mV linear range (compression penalty for the
// real circuit); cold targets keep it linear, where the clamp censors noise
// spikes and the circuit *beats* the ideal detector — the operating-point
// dependence behind the paper's Fig. 6 crossover and Table 2 offset.
#include <cstdint>
#include <vector>

#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "runner/runner.hpp"
#include "uwb/ber.hpp"

using namespace uwbams;

REGISTER_SCENARIO(agc_operating_point, "ablation",
                  "A3 — AGC calibration target vs BER at Eb/N0 = 14 dB") {
  const double ebn0 = 14.0;
  const std::vector<double> fractions = {0.10, 0.14, 0.22, 0.30};
  const std::vector<core::IntegratorKind> kinds = {
      core::IntegratorKind::kIdeal, core::IntegratorKind::kSpice};

  // One task per (target fraction, integrator kind) cell of the table.
  auto spec = ctx.spec()
                  .axis("target_fraction", fractions)
                  .axis("kind", {0, 1});  // index into `kinds`
  const auto cells = ctx.pool.map<uwb::BerPoint>(
      spec.point_count(), [&](std::size_t t) {
        const auto pt = spec.point(t);
        uwb::BerConfig cfg;
        cfg.sys.dt = 0.2e-9;
        cfg.sys.seed = ctx.seed;
        cfg.ebn0_db = {ebn0};
        cfg.calibration_fraction = pt.at("target_fraction");
        cfg.max_bits = ctx.pick<std::uint64_t>(1500, 8000, 30000);
        cfg.min_errors = 30;
        return uwb::run_ber_sweep(
            cfg, core::make_integrator_factory(
                     kinds[static_cast<std::size_t>(pt.at("kind"))],
                     cfg.sys))[0];
      });

  base::Table t("BER @ Eb/N0 = 14 dB vs calibration target");
  t.set_header({"target [% FS]", "IDEAL BER", "ELDO BER", "ELDO/IDEAL"});
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    const auto& ideal = cells[f * kinds.size() + 0];
    const auto& eldo = cells[f * kinds.size() + 1];
    const double ratio = ideal.ber > 0 ? eldo.ber / ideal.ber : 0.0;
    t.add_row({base::Table::num(100 * fractions[f], 0),
               base::Table::sci(ideal.ber, 2), base::Table::sci(eldo.ber, 2),
               base::Table::num(ratio, 2)});
  }
  ctx.sink.table(t, "ber_vs_target");

  ctx.sink.note(
      "Reading: ELDO/IDEAL < 1 at cold targets (noise-spike censoring wins),\n"
      "> 1 at warm targets (signal compression wins). The single AGC cannot\n"
      "satisfy both constraints at once — the architectural finding the\n"
      "paper credits to its mixed-level methodology.");
  return 0;
}
