// fig4_ac_response — reproduces Fig. 4: "Integrator AC response".
//
// Runs the small-signal AC sweep of the 31-transistor I&D netlist, fits the
// Phase-IV two-pole model, and prints both curves (they must overlap, as in
// the paper). Reports the extracted DC gain and pole frequencies against
// the paper's 21 dB / 0.886 MHz / 5.895 GHz.
#include <cmath>
#include <cstdio>

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/characterize.hpp"

using namespace uwbams;

int main() {
  std::printf("=== Fig. 4 reproduction: Integrate & Dump AC response ===\n\n");

  const auto ch = core::characterize_itd();

  base::Series series("Fig 4. |H(f)| of the I&D cell", "freq_hz");
  series.add_column("spice_mag_db");
  series.add_column("two_pole_model_db");
  for (std::size_t i = 0; i < ch.sweep.points.size(); ++i) {
    const double f = ch.sweep.points[i].freq;
    const double model =
        ch.ac.dc_gain_db -
        10.0 * std::log10((1.0 + std::pow(f / ch.ac.f_pole1, 2)) *
                          (1.0 + std::pow(f / ch.ac.f_pole2, 2)));
    series.add_row(f, {ch.sweep.mag_db(i), model});
  }
  series.print(5);
  std::printf("\n%s\n", series.ascii_plot(70, 22).c_str());

  base::Table t("Extracted vs paper (Fig. 4 figures of merit)");
  t.set_header({"Quantity", "Paper", "This reproduction"});
  t.add_row({"DC gain", "21 dB", base::Table::num(ch.ac.dc_gain_db, 2) + " dB"});
  t.add_row({"f_pole1", "0.886 MHz",
             base::Table::num(ch.ac.f_pole1 / 1e6, 3) + " MHz"});
  t.add_row({"f_pole2", "5.895 GHz",
             base::Table::num(ch.ac.f_pole2 / 1e9, 3) + " GHz"});
  t.add_row({"unity-gain freq", "~10 MHz",
             base::Table::num(ch.unity_gain_freq / 1e6, 2) + " MHz"});
  t.add_row({"input linear range", "~100 mV",
             base::Table::num(ch.input_linear_range * 1e3, 0) + " mV"});
  t.add_row({"model fit residual", "(overlaps)",
             base::Table::num(ch.ac.rms_error_db, 2) + " dB rms"});
  t.print();

  std::printf(
      "\nShape check: ideal-integrator (-20 dB/dec) band from ~%.1f MHz to "
      "~%.2f GHz;\nthe Phase-IV model overlaps the netlist response within "
      "%.2f dB rms.\n",
      ch.ac.f_pole1 * 3.0 / 1e6, ch.ac.f_pole2 / 3.0 / 1e9,
      ch.ac.rms_error_db);
  return 0;
}
