// fig4_ac — reproduces Fig. 4: "Integrator AC response".
//
// Runs the small-signal AC sweep of the 31-transistor I&D netlist, fits the
// Phase-IV two-pole model, and prints both curves (they must overlap, as in
// the paper). Reports the extracted DC gain and pole frequencies against
// the paper's 21 dB / 0.886 MHz / 5.895 GHz.
#include <cmath>

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/characterize.hpp"
#include "core/memo.hpp"
#include "runner/runner.hpp"

using namespace uwbams;

REGISTER_SCENARIO(fig4_ac, "bench",
                  "Fig. 4 — Integrate & Dump AC response + two-pole fit") {
  const auto ch = core::memo::characterize_itd_cached();

  base::Series series("Fig 4. |H(f)| of the I&D cell", "freq_hz");
  series.add_column("spice_mag_db");
  series.add_column("two_pole_model_db");
  for (std::size_t i = 0; i < ch.sweep.points.size(); ++i) {
    const double f = ch.sweep.points[i].freq;
    const double model =
        ch.ac.dc_gain_db -
        10.0 * std::log10((1.0 + std::pow(f / ch.ac.f_pole1, 2)) *
                          (1.0 + std::pow(f / ch.ac.f_pole2, 2)));
    series.add_row(f, {ch.sweep.mag_db(i), model});
  }
  ctx.sink.series(series, "ac_response", 5);
  ctx.sink.plot(series, 70, 22);

  base::Table t("Extracted vs paper (Fig. 4 figures of merit)");
  t.set_header({"Quantity", "Paper", "This reproduction"});
  t.add_row({"DC gain", "21 dB", base::Table::num(ch.ac.dc_gain_db, 2) + " dB"});
  t.add_row({"f_pole1", "0.886 MHz",
             base::Table::num(ch.ac.f_pole1 / 1e6, 3) + " MHz"});
  t.add_row({"f_pole2", "5.895 GHz",
             base::Table::num(ch.ac.f_pole2 / 1e9, 3) + " GHz"});
  t.add_row({"unity-gain freq", "~10 MHz",
             base::Table::num(ch.unity_gain_freq / 1e6, 2) + " MHz"});
  t.add_row({"input linear range", "~100 mV",
             base::Table::num(ch.input_linear_range * 1e3, 0) + " mV"});
  t.add_row({"model fit residual", "(overlaps)",
             base::Table::num(ch.ac.rms_error_db, 2) + " dB rms"});
  ctx.sink.table(t, "figures_of_merit");

  ctx.sink.metric("dc_gain_db", ch.ac.dc_gain_db);
  ctx.sink.metric("f_pole1_hz", ch.ac.f_pole1);
  ctx.sink.metric("f_pole2_hz", ch.ac.f_pole2);
  ctx.sink.metric("unity_gain_hz", ch.unity_gain_freq);
  ctx.sink.metric("input_linear_range_v", ch.input_linear_range);
  ctx.sink.metric("fit_rms_error_db", ch.ac.rms_error_db);

  ctx.sink.notef(
      "\nShape check: ideal-integrator (-20 dB/dec) band from ~%.1f MHz to "
      "~%.2f GHz;\nthe Phase-IV model overlaps the netlist response within "
      "%.2f dB rms.",
      ch.ac.f_pole1 * 3.0 / 1e6, ch.ac.f_pole2 / 3.0 / 1e9, ch.ac.rms_error_db);
  return 0;
}
