// fig6_ber — reproduces Fig. 6: "Comparison between BER curves with ideal
// and SPICE integrators".
//
// Monte-Carlo BER of the full chain (genie timing, AWGN, 2-PPM energy
// detection) for the ideal and the transistor-level integrator, with the
// semi-analytic energy-detection curve as reference. The paper's claim:
// the curves track each other with "a performance improvement of the real
// integrator at higher Eb/N0" — at the default (cold) AGC operating point
// the circuit's limited input range censors noise spikes and crosses below
// the ideal curve at high Eb/N0.
#include <cstdio>
#include <vector>

#include "base/table.hpp"
#include "bench_util.hpp"
#include "core/block_variant.hpp"
#include "uwb/ber.hpp"

using namespace uwbams;

int main() {
  const auto scale = benchutil::scale_from_env();
  std::printf("=== Fig. 6 reproduction: BER vs Eb/N0 (scale: %s) ===\n\n",
              benchutil::scale_name(scale));

  uwb::BerConfig cfg;
  cfg.sys.dt = 0.2e-9;  // 5 GS/s resolves the 500 MHz-class pulses
  cfg.ebn0_db = {0, 2, 4, 6, 8, 10, 12, 14, 16};
  switch (scale) {
    case benchutil::Scale::kFast:
      cfg.max_bits = 1000;
      cfg.min_errors = 20;
      break;
    case benchutil::Scale::kDefault:
      cfg.max_bits = 8000;
      cfg.min_errors = 40;
      break;
    case benchutil::Scale::kFull:
      cfg.max_bits = 60000;
      cfg.min_errors = 80;
      break;
  }

  const double tw = uwb::receiver_tw_product(cfg.sys);
  std::printf("Detector time-bandwidth product M = B*T = %.1f\n", tw);

  std::vector<std::vector<uwb::BerPoint>> curves;
  const std::vector<core::IntegratorKind> kinds = {
      core::IntegratorKind::kIdeal, core::IntegratorKind::kSpice};
  for (auto kind : kinds) {
    uwb::BerConfig c = cfg;
    if (kind == core::IntegratorKind::kSpice &&
        scale != benchutil::Scale::kFull) {
      c.max_bits = std::min<std::uint64_t>(c.max_bits, 6000);
    }
    std::printf("running %s ...\n", core::to_string(kind).c_str());
    std::fflush(stdout);
    curves.push_back(
        uwb::run_ber_sweep(c, core::make_integrator_factory(kind, c.sys)));
  }

  base::Series series("Fig 6. BER vs Eb/N0", "ebn0_db");
  series.add_column("ideal");
  series.add_column("eldo");
  series.add_column("theory");
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    series.add_row(curves[0][i].ebn0_db,
                   {curves[0][i].ber, curves[1][i].ber,
                    uwb::energy_detection_ber_theory(curves[0][i].ebn0_db, tw)});
  }
  std::printf("\n");
  series.print(4);
  std::printf("\n%s\n", series.ascii_plot(64, 20, /*log_y=*/true).c_str());

  base::Table t("Fig 6. measured points (95% half-widths)");
  t.set_header({"Eb/N0 [dB]", "IDEAL", "ELDO", "IDEAL bits", "ELDO bits"});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    t.add_row({base::Table::num(curves[0][i].ebn0_db, 0),
               base::Table::sci(curves[0][i].ber, 2) + " +/- " +
                   base::Table::sci(curves[0][i].half_width_95, 1),
               base::Table::sci(curves[1][i].ber, 2) + " +/- " +
                   base::Table::sci(curves[1][i].half_width_95, 1),
               std::to_string(curves[0][i].bits),
               std::to_string(curves[1][i].bits)});
  }
  t.print();

  std::printf(
      "\nShape check (paper Fig. 6): both detectors waterfall together; at\n"
      "low/mid Eb/N0 the curves overlap within the confidence interval, and\n"
      "at high Eb/N0 the circuit integrator edges below the ideal one (its\n"
      "input clamp censors large noise excursions). Run UWBAMS_FULL=1 for\n"
      "tighter confidence at the 1e-3..1e-4 points.\n");
  return 0;
}
