// fig6_ber — reproduces Fig. 6: "Comparison between BER curves with ideal
// and SPICE integrators".
//
// Monte-Carlo BER of the full chain (genie timing, AWGN, 2-PPM energy
// detection) for the ideal and the transistor-level integrator, with the
// semi-analytic energy-detection curve as reference. The paper's claim:
// the curves track each other with "a performance improvement of the real
// integrator at higher Eb/N0" — at the default (cold) AGC operating point
// the circuit's limited input range censors noise spikes and crosses below
// the ideal curve at high Eb/N0.
//
// Each (integrator, Eb/N0) pair is an independent task: run_ber_sweep seeds
// every point from the system seed and the Eb/N0 value alone, so the fanned
// sweep is bit-identical to the serial one for any --jobs value.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "core/equiv.hpp"
#include "runner/runner.hpp"
#include "uwb/ber.hpp"

using namespace uwbams;

REGISTER_SCENARIO_TIERS(fig6_ber, "bench",
                        "Fig. 6 — BER vs Eb/N0, ideal vs SPICE integrator",
                        "1k|8k|60k bits per point") {
  uwb::BerConfig base;
  base.sys.dt = 0.2e-9;  // 5 GS/s resolves the 500 MHz-class pulses
  base.sys.seed = ctx.seed;
  base.ebn0_db = {0, 2, 4, 6, 8, 10, 12, 14, 16};
  base.max_bits = ctx.pick<std::uint64_t>(1000, 8000, 60000);
  base.min_errors = ctx.pick<std::uint64_t>(20, 40, 80);

  const double tw = uwb::receiver_tw_product(base.sys);
  ctx.sink.notef("Detector time-bandwidth product M = B*T = %.1f\n", tw);

  const std::vector<core::IntegratorKind> kinds = {
      core::IntegratorKind::kIdeal, core::IntegratorKind::kSpice};
  const std::size_t npts = base.ebn0_db.size();

  auto spec = ctx.spec()
                  .axis("kind", {0, 1})  // index into `kinds`
                  .axis("ebn0_db", base.ebn0_db);
  const auto flat = ctx.pool.map<uwb::BerPoint>(
      spec.point_count(), [&](std::size_t t) {
        const auto pt = spec.point(t);
        const auto kind = kinds[static_cast<std::size_t>(pt.at("kind"))];
        uwb::BerConfig c = base;
        // The transistor-level point costs ~40x an ideal one; cap it below
        // paper scale (the old bench's behavior).
        if (kind == core::IntegratorKind::kSpice &&
            ctx.scale != runner::Scale::kFull)
          c.max_bits = std::min<std::uint64_t>(c.max_bits, 6000);
        c.ebn0_db = {pt.at("ebn0_db")};
        // ctx.variant() maps the declared exactness tier to the engine
        // profile: bit_exact keeps the defaults (CSVs byte-identical to
        // every prior PR), stat_equiv enables the optimized engine whose
        // results the golden-stats gate checks statistically.
        return uwb::run_ber_sweep(
            c, core::make_integrator_factory(kind, c.sys, ctx.variant()))[0];
      });

  std::vector<std::vector<uwb::BerPoint>> curves(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k)
    curves[k].assign(flat.begin() + static_cast<std::ptrdiff_t>(k * npts),
                     flat.begin() + static_cast<std::ptrdiff_t>((k + 1) * npts));

  base::Series series("Fig 6. BER vs Eb/N0", "ebn0_db");
  series.add_column("ideal");
  series.add_column("eldo");
  series.add_column("theory");
  for (std::size_t i = 0; i < npts; ++i) {
    series.add_row(curves[0][i].ebn0_db,
                   {curves[0][i].ber, curves[1][i].ber,
                    uwb::energy_detection_ber_theory(curves[0][i].ebn0_db, tw)});
  }
  ctx.sink.series(series, "ber_curves", 4);
  ctx.sink.plot(series, 64, 20, /*log_y=*/true);

  base::Table t("Fig 6. measured points (95% half-widths)");
  t.set_header({"Eb/N0 [dB]", "IDEAL", "ELDO", "IDEAL bits", "IDEAL errs",
                "ELDO bits", "ELDO errs"});
  for (std::size_t i = 0; i < npts; ++i) {
    t.add_row({base::Table::num(curves[0][i].ebn0_db, 0),
               base::Table::sci(curves[0][i].ber, 2) + " +/- " +
                   base::Table::sci(curves[0][i].half_width_95, 1),
               base::Table::sci(curves[1][i].ber, 2) + " +/- " +
                   base::Table::sci(curves[1][i].half_width_95, 1),
               std::to_string(curves[0][i].bits),
               std::to_string(curves[0][i].errors),
               std::to_string(curves[1][i].bits),
               std::to_string(curves[1][i].errors)});
  }
  ctx.sink.table(t, "points");

  std::uint64_t ideal_errors = 0, eldo_errors = 0, quarantined = 0;
  for (const auto& p : curves[0]) ideal_errors += p.errors;
  for (const auto& p : curves[1]) eldo_errors += p.errors;
  for (const auto& p : flat) quarantined += p.quarantined ? 1 : 0;
  ctx.sink.metric("tw_product", tw);
  ctx.sink.metric("ideal_total_errors", ideal_errors);
  ctx.sink.metric("eldo_total_errors", eldo_errors);
  ctx.sink.metric("quarantined", quarantined);
  if (quarantined > 0)
    ctx.sink.notef(
        "%llu BER point(s) quarantined after retries — zero-bit rows above\n",
        static_cast<unsigned long long>(quarantined));

  // Golden-stats artifact: one Wilson-CI check per (integrator, Eb/N0)
  // point plus the analytic T*W scalar — what `--golden` and the CI
  // stat_equiv gate compare runs against.
  core::StatArtifact stats(ctx.scenario_name,
                           runner::to_string(ctx.scale));
  const char* curve_names[] = {"ideal", "eldo"};
  for (std::size_t k = 0; k < kinds.size(); ++k)
    for (const auto& p : curves[k]) {
      char name[64];
      std::snprintf(name, sizeof name, "ber:%s@%gdB", curve_names[k],
                    p.ebn0_db);
      stats.add_ber(name, p.errors, p.bits);
    }
  stats.add_scalar("tw_product", tw, 1e-9);
  ctx.sink.golden_stats(stats.to_json());

  ctx.sink.note(
      "\nShape check (paper Fig. 6): both detectors waterfall together; at\n"
      "low/mid Eb/N0 the curves overlap within the confidence interval, and\n"
      "at high Eb/N0 the circuit integrator edges below the ideal one (its\n"
      "input clamp censors large noise excursions). Run --scale=full for\n"
      "tighter confidence at the 1e-3..1e-4 points.");
  return 0;
}
