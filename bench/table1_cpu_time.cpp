// table1_cpu_time — reproduces Table 1: "CPU time comparison".
//
// Runs the same 30 us system simulation (full receive chain, 2-PPM traffic,
// fixed 0.05 ns step, Newton/Raphson with EPS 1e-6 in the embedded solver)
// once per integrator fidelity and reports wall-clock CPU time. Absolute
// seconds differ from the paper's 2007 Xeon + ADMS/ELDO; the claim under
// test is the ordering and ratio structure: t(ELDO) >> t(VHDL-AMS) >
// t(IDEAL).
//
// Uses google-benchmark for the measurement loop of the two fast variants;
// the ELDO run is measured directly (one long run is more representative
// than repetitions for a 10-100 s simulation).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

using namespace uwbams;

namespace {

core::SystemRunConfig make_config(core::IntegratorKind kind, double duration) {
  core::SystemRunConfig cfg;
  cfg.kind = kind;
  cfg.duration = duration;
  cfg.sys.dt = 0.05e-9;  // the paper's fixed step
  return cfg;
}

double duration_from_scale() {
  switch (benchutil::scale_from_env()) {
    case benchutil::Scale::kFast: return 3e-6;
    case benchutil::Scale::kFull: return 30e-6;  // the paper's 30 us
    case benchutil::Scale::kDefault: return 30e-6;
  }
  return 30e-6;
}

std::vector<core::SystemRunResult> g_results;

void run_variant(benchmark::State& state, core::IntegratorKind kind) {
  const auto cfg = make_config(kind, duration_from_scale());
  core::SystemRunResult last;
  for (auto _ : state) {
    last = core::run_system_simulation(cfg);
    benchmark::DoNotOptimize(last.steps);
  }
  state.counters["sim_us"] = last.sim_seconds * 1e6;
  state.counters["steps"] = static_cast<double>(last.steps);
  state.counters["cpu_s"] = last.cpu_seconds;
  g_results.push_back(last);
}

void BM_Ideal(benchmark::State& state) {
  run_variant(state, core::IntegratorKind::kIdeal);
}
void BM_VhdlAms(benchmark::State& state) {
  run_variant(state, core::IntegratorKind::kBehavioral);
}
void BM_Eldo(benchmark::State& state) {
  run_variant(state, core::IntegratorKind::kSpice);
}

BENCHMARK(BM_Ideal)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_VhdlAms)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Eldo)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table 1 reproduction: CPU time comparison (scale: %s) ===\n",
              benchutil::scale_name(benchutil::scale_from_env()));
  std::printf("Workload: %.0f us system simulation @ 0.05 ns fixed step\n\n",
              duration_from_scale() * 1e6);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Dedup (benchmark may rerun): keep the last run of each kind.
  std::vector<core::SystemRunResult> per_kind;
  for (auto kind :
       {core::IntegratorKind::kIdeal, core::IntegratorKind::kBehavioral,
        core::IntegratorKind::kSpice}) {
    for (auto it = g_results.rbegin(); it != g_results.rend(); ++it) {
      if (it->kind == kind) {
        per_kind.push_back(*it);
        break;
      }
    }
  }
  std::printf("\n%s\n", core::render_cpu_table(per_kind).c_str());
  std::printf(
      "Paper Table 1 (30 us, IBM Xeon 3.0 GHz, ADMS/ELDO):\n"
      "  ELDO 59m33s : VHDL-AMS 20m37s : IDEAL 9m11s  (6.48x : 2.25x : 1x)\n"
      "Shape check: t(ELDO) >> t(VHDL-AMS) >= t(IDEAL). Our behavioral two-\n"
      "pole model adds only two ODE states to the chain, so its overhead\n"
      "over IDEAL is smaller than in the paper's VHDL-AMS runtime.\n");
  return 0;
}
