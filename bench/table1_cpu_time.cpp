// table1_cpu — reproduces Table 1: "CPU time comparison".
//
// Runs the same 30 us system simulation (full receive chain, 2-PPM traffic,
// fixed 0.05 ns step, Newton/Raphson with EPS 1e-6 in the embedded solver)
// once per integrator fidelity and reports wall-clock CPU time. Absolute
// seconds differ from the paper's 2007 Xeon + ADMS/ELDO; the claim under
// test is the ordering and ratio structure: t(ELDO) >> t(VHDL-AMS) >
// t(IDEAL).
//
// Deliberately serial (--jobs is ignored here): concurrent variants would
// contend for cores and distort exactly the CPU times the table reports.
#include <vector>

#include "base/table.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "runner/runner.hpp"

using namespace uwbams;

REGISTER_SCENARIO(table1_cpu, "bench",
                  "Table 1 — CPU time of IDEAL / VHDL-AMS / ELDO runs") {
  const double duration = ctx.pick(3e-6, 30e-6, 30e-6);
  ctx.sink.notef("Workload: %.0f us system simulation @ 0.05 ns fixed step\n",
                 duration * 1e6);

  std::vector<core::SystemRunResult> results;
  for (auto kind :
       {core::IntegratorKind::kIdeal, core::IntegratorKind::kBehavioral,
        core::IntegratorKind::kSpice}) {
    ctx.sink.notef("running %s ...", core::to_string(kind).c_str());
    const auto cfg = ctx.spec()
                         .dt(0.05e-9)  // the paper's fixed step
                         .integrator(kind)
                         .duration(duration)
                         .run_config();
    results.push_back(core::run_system_simulation(cfg));
  }

  ctx.sink.note("\n" + core::render_cpu_table(results));

  base::Table t("Table 1 raw measurements");
  t.set_header({"Model", "cpu_s", "sim_us", "steps", "bits", "errors"});
  for (const auto& r : results) {
    t.add_row({core::to_string(r.kind), base::Table::num(r.cpu_seconds, 3),
               base::Table::num(r.sim_seconds * 1e6, 1),
               std::to_string(r.steps), std::to_string(r.bits_demodulated),
               std::to_string(r.bit_errors)});
    ctx.sink.metric("cpu_s_" + core::to_string(r.kind), r.cpu_seconds);
  }
  ctx.sink.table(t, "cpu_times");
  ctx.sink.metric("eldo_over_ideal",
                  results[2].cpu_seconds /
                      (results[0].cpu_seconds > 0 ? results[0].cpu_seconds
                                                  : 1e-9));

  ctx.sink.note(
      "Paper Table 1 (30 us, IBM Xeon 3.0 GHz, ADMS/ELDO):\n"
      "  ELDO 59m33s : VHDL-AMS 20m37s : IDEAL 9m11s  (6.48x : 2.25x : 1x)\n"
      "Shape check: t(ELDO) >> t(VHDL-AMS) >= t(IDEAL). Our behavioral two-\n"
      "pole model adds only two ODE states to the chain, so its overhead\n"
      "over IDEAL is smaller than in the paper's VHDL-AMS runtime.");
  return 0;
}
