// netscale — the calibrated-surrogate large-scale ranging tier (group
// `netscale`).
//
//   surrogate_fit     calibrates the PHY surrogate against the full-physics
//                     TWR engine over a (range, noise, |dppm|, channel
//                     class) grid — CM1 and CM3 on every tier — then
//                     validates it on held-out seeds (the honesty gate).
//                     Emits surrogate.json — the cached artifact the other
//                     two scenarios can load via UWBAMS_SURROGATE.
//   netscale_static   event-driven ranging network at 100 / 10,000 / 20,000
//                     nodes: per-round per-tag multilateration over
//                     surrogate draws (BENCH_netscale.json).
//   netscale_mobility waypoint-mobile tags + anchor dropout + packet loss:
//                     the fault-injection variant.
//
// Every stochastic draw is keyed by fixed-purpose derive_seed sub-streams,
// so any --jobs value reproduces --jobs=1 bit for bit (the CI determinism
// gate byte-compares positions.csv, rounds.csv and surrogate.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/faults.hpp"
#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "core/equiv.hpp"
#include "net/calibrate.hpp"
#include "net/engine.hpp"
#include "net/surrogate.hpp"
#include "net/surrogate_cache.hpp"
#include "runner/runner.hpp"

using namespace uwbams;

namespace {

// The shared inline-calibration operating point: ranges bracket the link
// budget (nearest-cell lookup clamps 11 m upward to cover the 12 m
// max-range tail), one noise floor, three crystal splits spanning a
// U(-20, 20) ppm population's pairings.
net::CalibrationConfig engine_calibration(const runner::RunContext& ctx) {
  net::CalibrationConfig cal;
  cal.twr.sys.dt = 0.2e-9;
  cal.ranges_m = {3.0, 5.0, 7.0, 9.0, 11.0};
  cal.noise_psd = {8e-19};
  cal.dppm = {0.0, 20.0, 40.0};
  cal.channel_class = {0.0};  // CM1 deployments (the engine default)
  cal.samples_per_cell = ctx.pick(10, 12, 16);
  cal.seed = ctx.seed;
  return cal;
}

// The surrogate powering the network engine, by precedence: the
// UWBAMS_SURROGATE environment variable points at an explicit surrogate.json
// (the surrogate_fit artifact, loaded verbatim); else the UWBAMS_CACHE
// content-addressed store may already hold this exact calibration; else a
// tier-sized calibration runs inline (and feeds the store). All paths are
// bit-identical for any --jobs. Returns false on a bad cache file.
bool load_or_calibrate(const runner::RunContext& ctx, net::SurrogateTable* out,
                       std::string* source) {
  if (const char* path = std::getenv("UWBAMS_SURROGATE")) {
    std::ifstream in(path);
    if (!in) {
      ctx.sink.notef("FAIL: UWBAMS_SURROGATE='%s' cannot be opened", path);
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      *out = net::SurrogateTable::from_json(text.str());
    } catch (const std::exception& e) {
      ctx.sink.notef("FAIL: UWBAMS_SURROGATE='%s' rejected: %s", path,
                     e.what());
      return false;
    }
    *source = std::string("cached (") + path + ")";
    return true;
  }
  const auto cal = engine_calibration(ctx);
  ctx.sink.notef("calibrating surrogate: %zu cells x %d samples ...",
                 cal.cell_count(), cal.samples_per_cell);
  int quarantined = 0;
  *out = net::load_or_calibrate_surrogate(cal, core::IntegratorKind::kIdeal,
                                          &ctx.pool, &quarantined, source);
  if (quarantined > 0)
    ctx.sink.notef("%d calibration exchange(s) quarantined after retries "
                   "(counted as acquisition failures)",
                   quarantined);
  if (quarantined >= 0)
    ctx.sink.metric("calibration_quarantined",
                    static_cast<std::uint64_t>(quarantined));
  return true;
}

// positions.csv: one row per (round, tag), fixed %.6f formatting so the CI
// gate can byte-compare across --jobs and re-runs.
std::string positions_csv(const net::NetScaleResult& res) {
  std::string csv = "round,tag,true_x,true_y,est_x,est_y,err_m,links,solved\n";
  char buf[256];
  for (std::size_t r = 0; r < res.tag_rounds.size(); ++r) {
    const auto& rows = res.tag_rounds[r];
    for (std::size_t t = 0; t < rows.size(); ++t) {
      const net::TagRound& row = rows[t];
      std::snprintf(buf, sizeof buf,
                    "%zu,%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d\n", r, t,
                    row.true_x, row.true_y, row.est_x, row.est_y, row.err_m,
                    row.links, row.solved ? 1 : 0);
      csv += buf;
    }
  }
  return csv;
}

// Shared reporting + artifact block of the two engine scenarios.
void report_rounds(runner::RunContext& ctx, const net::NetScaleConfig& cfg,
                   const net::NetScaleEngine& eng,
                   const net::NetScaleResult& res, double wall) {
  base::Table rounds("Per-round network statistics");
  rounds.set_header({"round", "solved", "avail", "rmse_m", "p95_m",
                     "mean_links", "dark", "bias_m", "fails", "lost", "quar"});
  for (const auto& st : res.rounds) {
    rounds.add_row({std::to_string(st.round), std::to_string(st.tags_solved),
                    base::Table::num(st.availability, 4),
                    base::Table::num(st.rmse_m, 4),
                    base::Table::num(st.p95_err_m, 4),
                    base::Table::num(st.mean_links, 3),
                    std::to_string(st.anchors_dark),
                    base::Table::num(st.bias_est_m, 4),
                    std::to_string(st.toa_failures),
                    std::to_string(st.packets_lost),
                    std::to_string(st.tags_quarantined)});
  }
  ctx.sink.table(rounds, "rounds");
  ctx.sink.raw_artifact("positions.csv", positions_csv(res));

  const double tag_rounds =
      static_cast<double>(cfg.tag_count) * cfg.rounds;
  ctx.sink.notef("%d nodes (%zu anchors + %d tags), %d rounds: "
                 "availability %.4f, RMSE %.3f m, %.2f s "
                 "(%.0f tag-rounds/s)",
                 eng.node_count(), eng.anchors().size(), cfg.tag_count,
                 cfg.rounds, res.overall_availability, res.overall_rmse_m,
                 wall, tag_rounds / wall);
  ctx.sink.metric("nodes", static_cast<std::uint64_t>(eng.node_count()));
  ctx.sink.metric("anchors", static_cast<std::uint64_t>(eng.anchors().size()));
  ctx.sink.metric("tags", static_cast<std::uint64_t>(cfg.tag_count));
  ctx.sink.metric("rounds", static_cast<std::uint64_t>(cfg.rounds));
  ctx.sink.metric("availability", res.overall_availability);
  ctx.sink.metric("rmse_m", res.overall_rmse_m);
  ctx.sink.metric("toa_draws", res.total_draws);
  ctx.sink.metric("tags_quarantined", res.quarantined);
  if (res.quarantined > 0)
    ctx.sink.notef("%llu tag measurement(s) quarantined after retries "
                   "(kept as unsolved rows)",
                   static_cast<unsigned long long>(res.quarantined));

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"nodes\": %d,\n"
                "  \"anchors\": %zu,\n"
                "  \"tags\": %d,\n"
                "  \"rounds\": %d,\n"
                "  \"wall_seconds\": %.4f,\n"
                "  \"tag_rounds_per_second\": %.1f,\n"
                "  \"availability\": %.6f,\n"
                "  \"rmse_m\": %.6f,\n"
                "  \"toa_draws\": %llu,\n"
                "  \"jobs\": %d\n"
                "}\n",
                eng.node_count(), eng.anchors().size(), cfg.tag_count,
                cfg.rounds, wall, tag_rounds / wall,
                res.overall_availability, res.overall_rmse_m,
                static_cast<unsigned long long>(res.total_draws), ctx.jobs);
  ctx.sink.raw_artifact("BENCH_netscale.json", buf);
}

}  // namespace

REGISTER_SCENARIO_TIERS(surrogate_fit, "netscale",
                        "Calibrate the PHY surrogate vs the full-physics TWR "
                        "engine + held-out validation (surrogate.json)",
                        "8|40|108 cells x 10|16|24 samples") {
  net::CalibrationConfig cal;
  cal.twr.sys.dt = 0.2e-9;
  cal.seed = ctx.seed;
  cal.ranges_m = ctx.pick<std::vector<double>>(
      {5.0, 9.0}, {3.0, 5.0, 7.0, 9.0, 11.0},
      {3.0, 5.0, 7.0, 9.0, 11.0, 13.0});
  cal.noise_psd = ctx.pick<std::vector<double>>(
      {8e-19}, {4e-19, 8e-19}, {4e-19, 8e-19, 1.6e-18});
  cal.dppm = ctx.pick<std::vector<double>>({0.0, 40.0}, {0.0, 40.0},
                                           {0.0, 20.0, 40.0});
  // Two channel environments on every tier: the held-out gate must accept
  // the surrogate per class, not just on the historical CM1 point. The two
  // LOS classes — the NLOS path-loss laws (CM2: n=4.58, CM4: n=3.07 with
  // PL0=57.9 dB) sink these 5..13 m links ~30 dB below the LOS budget at
  // the paper's TX power, so no NLOS exchange acquires and their cells
  // would all be uncheckable p_fail=1 columns.
  cal.channel_class = {0.0, 2.0};  // CM1 (residential LOS), CM3 (office LOS)
  cal.samples_per_cell = ctx.pick(10, 16, 24);
  const int held_out = ctx.pick(6, 6, 8);
  const auto fact =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cal.twr.sys);

  ctx.sink.notef("calibrating %zu cells x %d samples (full physics, "
                 "%d workers) ...",
                 cal.cell_count(), cal.samples_per_cell, ctx.jobs);
  const auto t0 = std::chrono::steady_clock::now();
  int cal_quarantined = 0;
  std::string cal_source;
  const auto table = net::load_or_calibrate_surrogate(
      cal, core::IntegratorKind::kIdeal, &ctx.pool, &cal_quarantined,
      &cal_source);
  if (cal_quarantined < 0) {  // content-addressed hit: nothing was run
    ctx.sink.notef("calibration served from %s", cal_source.c_str());
    cal_quarantined = 0;
  }
  const double t_cal =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  base::Table cells("Fitted surrogate cells");
  cells.set_header({"range_m", "noise_psd", "dppm", "cm", "ok", "outl",
                    "p_fail", "p_outl", "bias_m", "spread_m"});
  for (const auto& c : table.cells()) {
    cells.add_row({base::Table::num(c.range_m, 1),
                   base::Table::num(c.noise_psd, 2),
                   base::Table::num(c.dppm, 0),
                   uwb::to_string(static_cast<uwb::ChannelClass>(
                       static_cast<int>(c.channel_class))),
                   std::to_string(c.ok),
                   std::to_string(c.outliers), base::Table::num(c.p_fail, 3),
                   base::Table::num(c.p_outlier, 3),
                   base::Table::num(c.bias_m, 4),
                   base::Table::num(c.spread_m, 4)});
  }
  ctx.sink.table(cells, "cells");
  ctx.sink.raw_artifact("surrogate.json", table.to_json());

  ctx.sink.notef("validating on %d held-out exchanges per cell ...", held_out);
  const auto report =
      net::validate_surrogate(table, cal, held_out, fact, &ctx.pool);

  base::Table val("Held-out validation");
  val.set_header({"range_m", "noise_psd", "dppm", "cm", "checked", "bias_d",
                  "bias_bound", "bias", "spread", "outl", "fail"});
  for (const auto& v : report.cells) {
    val.add_row({base::Table::num(v.range_m, 1),
                 base::Table::num(v.noise_psd, 2), base::Table::num(v.dppm, 0),
                 uwb::to_string(static_cast<uwb::ChannelClass>(
                     static_cast<int>(v.channel_class))),
                 v.checked ? "yes" : "skip",
                 base::Table::num(v.bias_delta_m, 4),
                 base::Table::num(v.bias_bound_m, 4),
                 v.checked ? (v.bias_ok ? "ok" : "FAIL") : "-",
                 v.checked ? (v.spread_ok ? "ok" : "FAIL") : "-",
                 v.checked ? (v.outlier_ok ? "ok" : "FAIL") : "-",
                 v.checked ? (v.fail_rate_ok ? "ok" : "FAIL") : "-"});
  }
  ctx.sink.table(val, "validation");

  ctx.sink.notef("%d/%d checked cells passed (%.1f s calibration)",
                 report.passed, report.checked, t_cal);
  ctx.sink.metric("cells", static_cast<std::uint64_t>(table.cell_count()));
  ctx.sink.metric("samples_per_cell",
                  static_cast<std::uint64_t>(cal.samples_per_cell));
  ctx.sink.metric("checked", static_cast<std::uint64_t>(report.checked));
  ctx.sink.metric("passed", static_cast<std::uint64_t>(report.passed));
  ctx.sink.metric("calibration_seconds", t_cal);
  ctx.sink.metric("quarantined", static_cast<std::uint64_t>(
                                     cal_quarantined + report.quarantined));
  if (cal_quarantined + report.quarantined > 0)
    ctx.sink.notef("%d exchange(s) quarantined after retries "
                   "(%d calibration, %d held-out)",
                   cal_quarantined + report.quarantined, cal_quarantined,
                   report.quarantined);

  // Gates: the held-out physics must agree with the fit. A single cell is
  // allowed to sit on a bound (small-sample statistics), but 90% of the
  // checked cells must be inside every interval, and at least one cell
  // must have been checkable at all.
  if (report.checked == 0) {
    ctx.sink.note("FAIL: no cell had enough samples to validate");
    return 1;
  }
  if (!core::accept::fraction_at_least(
          static_cast<std::uint64_t>(report.passed),
          static_cast<std::uint64_t>(report.checked),
          core::accept::kSurrogateMinCellPassFraction)) {
    ctx.sink.note("FAIL: held-out validation rejected more than 10% of the "
                  "checked surrogate cells");
    return 1;
  }
  // The channel-class axis must be *individually* validated: every class on
  // the grid needs at least one checked-and-passed cell, or the surrogate
  // could ship a class it was never compared against the physics on.
  for (const double cls : cal.channel_class) {
    int cls_checked = 0, cls_passed = 0;
    for (const auto& v : report.cells) {
      if (v.channel_class != cls || !v.checked) continue;
      ++cls_checked;
      if (v.pass()) ++cls_passed;
    }
    ctx.sink.metric(
        std::string("checked_") +
            uwb::to_string(
                static_cast<uwb::ChannelClass>(static_cast<int>(cls))),
        static_cast<std::uint64_t>(cls_checked));
    if (cls_checked == 0 || cls_passed == 0) {
      ctx.sink.notef("FAIL: channel class %s has no passing held-out cell",
                     uwb::to_string(static_cast<uwb::ChannelClass>(
                         static_cast<int>(cls))));
      return 1;
    }
  }
  return 0;
}

REGISTER_SCENARIO_TIERS(netscale_static, "netscale",
                        "Event-driven ranging network over the surrogate at "
                        "100 | 10k | 20k static nodes (BENCH_netscale.json)",
                        "100|10k|20k nodes x 4|5|6 rounds") {
  net::SurrogateTable table;
  std::string source;
  if (!load_or_calibrate(ctx, &table, &source)) return 1;

  net::NetScaleConfig cfg;
  cfg.seed = ctx.seed;
  // 5 m anchor spacing: links stay in the short-range surrogate cells
  // (sub-meter inlier spread) and every tag sees >= 4 anchors in budget.
  cfg.area_m = ctx.pick(30.0, 150.0, 210.0);
  cfg.anchor_grid = ctx.pick(6, 30, 42);
  cfg.tag_count = ctx.pick(64, 9100, 18236);  // nodes: 100 | 10,000 | 20,000
  cfg.rounds = ctx.pick(4, 5, 6);
  cfg.exchanges_per_link = 3;  // median-of-3, like RangingNetwork pairs
  cfg.noise_psd = 8e-19;
  cfg.ppm_spread = 20.0;

  net::NetScaleEngine eng(cfg, table);
  ctx.sink.notef("surrogate: %s; %d nodes (%zu anchors, %.0f m area), "
                 "%d rounds ...",
                 source.c_str(), eng.node_count(), eng.anchors().size(),
                 cfg.area_m, cfg.rounds);

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = eng.run(&ctx.pool);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report_rounds(ctx, cfg, eng, res, wall);

  // Gates: with every anchor alive and no packet loss, nearly every tag
  // must localize, and median-of-3 links over the calibrated spread must
  // keep the network RMSE near 1.5 m (the CM1 latch jitter at this
  // operating point genuinely measures ~1 m per exchange; before the
  // per-cell bias calibration and multi-exchange links the network sat
  // above 2 m). The fast (smoke) tier calibrates from fewer samples per
  // cell, so its per-cell estimates are noisier and its bound looser.
  const double rmse_gate = ctx.pick(core::accept::kNetscaleRmseGateFastM,
                                    core::accept::kNetscaleRmseGateM,
                                    core::accept::kNetscaleRmseGateM);
  // An installed fault plan (--fault-plan) legitimately quarantines
  // measurements and drags availability down — the clean-network
  // acceptance gates only apply to clean runs.
  if (base::faults::active()) {
    ctx.sink.note(
        "note: fault plan active — clean-network acceptance gates skipped");
    return 0;
  }
  if (res.overall_availability < core::accept::kNetscaleMinAvailability) {
    ctx.sink.note("FAIL: availability below 0.95 with no fault injection");
    return 1;
  }
  if (res.overall_rmse_m > rmse_gate) {
    ctx.sink.notef("FAIL: position RMSE above %.1f m", rmse_gate);
    return 1;
  }
  return 0;
}

REGISTER_SCENARIO_TIERS(netscale_mobility, "netscale",
                        "Waypoint-mobile tags + anchor dropout + packet loss "
                        "over the surrogate network",
                        "100|2.8k|9.4k nodes x 5|8|10 rounds") {
  net::SurrogateTable table;
  std::string source;
  if (!load_or_calibrate(ctx, &table, &source)) return 1;

  net::NetScaleConfig cfg;
  cfg.seed = ctx.seed;
  cfg.area_m = ctx.pick(30.0, 90.0, 150.0);  // 5 m anchor spacing
  cfg.anchor_grid = ctx.pick(6, 18, 30);
  cfg.tag_count = ctx.pick(64, 2500, 8500);
  cfg.rounds = ctx.pick(5, 8, 10);
  cfg.exchanges_per_link = 3;
  cfg.noise_psd = 8e-19;
  cfg.ppm_spread = 20.0;
  cfg.mobility = net::MobilityKind::kWaypoint;
  cfg.speed_mps = 1.5;
  cfg.packet_loss = 0.05;
  cfg.anchor_dropout = 0.05;
  cfg.dropout_rounds = 2;

  net::NetScaleEngine eng(cfg, table);
  ctx.sink.notef("surrogate: %s; %d nodes, %d rounds, waypoint %.1f m/s, "
                 "dropout %.2f (for %d rounds), loss %.2f ...",
                 source.c_str(), eng.node_count(), cfg.rounds, cfg.speed_mps,
                 cfg.anchor_dropout, cfg.dropout_rounds, cfg.packet_loss);

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = eng.run(&ctx.pool);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report_rounds(ctx, cfg, eng, res, wall);

  int max_dark = 0;
  for (const auto& st : res.rounds) max_dark = std::max(max_dark, st.anchors_dark);
  ctx.sink.metric("max_anchors_dark", static_cast<std::uint64_t>(max_dark));

  // Gates: the scenario's own modeled faults (anchor dropout, packet
  // loss) must actually bite yet the dense anchor grid keeps the network
  // serviceable. An injected plan piles quarantines on top of the modeled
  // faults, so the serviceability thresholds only apply without one.
  if (base::faults::active()) {
    ctx.sink.note(
        "note: fault plan active — serviceability acceptance gates skipped");
    return 0;
  }
  if (max_dark == 0) {
    ctx.sink.note("FAIL: anchor-dropout fault injection never fired");
    return 1;
  }
  if (res.overall_availability <
      core::accept::kNetscaleMinAvailabilityFaulted) {
    ctx.sink.note("FAIL: availability below 0.80 under fault injection");
    return 1;
  }
  if (res.overall_rmse_m > core::accept::kNetscaleRmseGateFaultedM) {
    ctx.sink.note("FAIL: position RMSE above 2.5 m under fault injection");
    return 1;
  }
  return 0;
}
