// coex — coexistence and channel-environment scenarios (group `coex`).
//
//   coex_ber            BER vs SIR under an in-band CW blocker, one curve
//                       per channel class (CM1 LOS, CM2 NLOS). The adaptive
//                       PNR threshold is exercised end-to-end in the
//                       ranging/receiver path; here the genie-timed
//                       detector measures the raw decision-statistic
//                       penalty of the blocker.
//   multiuser_ber       BER vs number of concurrent equal-power piconets
//                       (0..4 uncoordinated 2-PPM interferers with
//                       independent slot draws).
//   channel_class_sweep fig6-style BER vs Eb/N0 waterfall for CM1..CM4
//                       multipath realizations.
//
// Every point is an independent task seeded from (system seed, Eb/N0)
// alone, so the fanned sweep is bit-identical to --jobs=1 (the CI gate
// byte-compares the CSV artifacts across job counts).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "core/equiv.hpp"
#include "runner/runner.hpp"
#include "uwb/ber.hpp"
#include "uwb/channel.hpp"

using namespace uwbams;

namespace {

// Amplitude-defined signal-to-interference ratio: the blocker amplitude at
// the front-end input is rx_pulse_peak * 10^(-SIR/20).
double sir_amplitude(double rx_pulse_peak, double sir_db) {
  return rx_pulse_peak * std::pow(10.0, -sir_db / 20.0);
}

const char* class_name(double code) {
  return uwb::to_string(
      static_cast<uwb::ChannelClass>(static_cast<int>(code)));
}

// Shared BENCH artifact of the coex group: one JSON block per scenario run.
void bench_artifact(runner::RunContext& ctx, const char* scenario,
                    std::size_t points, std::uint64_t bits,
                    std::uint64_t errors, double wall) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"scenario\": \"%s\",\n"
                "  \"points\": %zu,\n"
                "  \"bits\": %llu,\n"
                "  \"errors\": %llu,\n"
                "  \"wall_seconds\": %.4f,\n"
                "  \"bits_per_second\": %.1f,\n"
                "  \"jobs\": %d\n"
                "}\n",
                scenario, points, static_cast<unsigned long long>(bits),
                static_cast<unsigned long long>(errors), wall,
                static_cast<double>(bits) / std::max(wall, 1e-9), ctx.jobs);
  ctx.sink.raw_artifact("BENCH_coex.json", buf);
}

// Two-sided significance guard: fails only when `worse` measured
// *significantly better* than `better` (their 95% intervals disjoint in
// the wrong direction). Monte-Carlo noise at smoke-tier bit counts can
// blur the ordering; it cannot produce a confident inversion.
bool significantly_better(const uwb::BerPoint& worse,
                          const uwb::BerPoint& better) {
  return worse.ber + worse.half_width_95 <
         better.ber - better.half_width_95;
}

}  // namespace

REGISTER_SCENARIO_TIERS(coex_ber, "coex",
                        "BER vs SIR under a CW blocker, per channel class "
                        "(CM1/CM2)",
                        "0.6k|4k|20k bits per point") {
  uwb::BerConfig base;
  base.sys.dt = 0.2e-9;
  base.sys.seed = ctx.seed;
  base.max_bits = ctx.pick<std::uint64_t>(600, 4000, 20000);
  base.min_errors = ctx.pick<std::uint64_t>(15, 30, 60);

  // Fixed mid-waterfall operating point: errors accumulate fast enough to
  // compare SIR points, clean BER is still well below coin-flip.
  const double ebn0 = 10.0;
  const std::vector<double> classes = {0.0, 1.0};  // CM1, CM2
  // 40 dB is the effectively-clean reference; 0 dB puts the blocker at the
  // pulse amplitude.
  const std::vector<double> sir_db = {40.0, 20.0, 10.0, 0.0};

  auto spec = ctx.spec().axis("class", classes).axis("sir_db", sir_db);
  const auto t0 = std::chrono::steady_clock::now();
  const auto flat = ctx.pool.map<uwb::BerPoint>(
      spec.point_count(), [&](std::size_t t) {
        const auto pt = spec.point(t);
        uwb::BerConfig c = base;
        c.ebn0_db = {ebn0};
        c.sys.multipath = true;
        uwb::apply_channel_class(
            &c.sys, static_cast<uwb::ChannelClass>(
                        static_cast<int>(pt.at("class"))));
        c.sys.interference.cw_amplitude =
            sir_amplitude(c.rx_pulse_peak, pt.at("sir_db"));
        return uwb::run_ber_sweep(
            c, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                             c.sys, ctx.variant()))[0];
      });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  base::Series series("BER vs SIR (CW blocker)", "sir_db");
  for (const double cls : classes) series.add_column(class_name(cls));
  for (std::size_t s = 0; s < sir_db.size(); ++s) {
    std::vector<double> row;
    for (std::size_t k = 0; k < classes.size(); ++k)
      row.push_back(flat[k * sir_db.size() + s].ber);
    series.add_row(sir_db[s], row);
  }
  ctx.sink.series(series, "ber_sir", 4);
  ctx.sink.plot(series, 64, 18, /*log_y=*/true);

  base::Table t("BER vs SIR per channel class");
  t.set_header({"class", "sir_db", "ber", "hw95", "bits", "errors"});
  std::uint64_t bits = 0, errors = 0, quarantined = 0;
  for (std::size_t k = 0; k < classes.size(); ++k)
    for (std::size_t s = 0; s < sir_db.size(); ++s) {
      const uwb::BerPoint& p = flat[k * sir_db.size() + s];
      t.add_row({class_name(classes[k]), base::Table::num(sir_db[s], 0),
                 base::Table::sci(p.ber, 2), base::Table::sci(p.half_width_95, 1),
                 std::to_string(p.bits), std::to_string(p.errors)});
      bits += p.bits;
      errors += p.errors;
      quarantined += p.quarantined ? 1 : 0;
    }
  ctx.sink.table(t, "points");
  ctx.sink.metric("quarantined", quarantined);
  bench_artifact(ctx, "coex_ber", flat.size(), bits, errors, wall);

  core::StatArtifact stats(ctx.scenario_name, runner::to_string(ctx.scale));
  for (std::size_t k = 0; k < classes.size(); ++k)
    for (std::size_t s = 0; s < sir_db.size(); ++s) {
      const uwb::BerPoint& p = flat[k * sir_db.size() + s];
      char name[64];
      std::snprintf(name, sizeof name, "ber:%s@sir%gdB",
                    class_name(classes[k]), sir_db[s]);
      stats.add_ber(name, p.errors, p.bits);
    }
  ctx.sink.golden_stats(stats.to_json());

  if (quarantined > 0) {
    ctx.sink.note("FAIL: quarantined BER point(s) in the SIR sweep");
    return 1;
  }
  // Physics sanity per class: the 0 dB blocker cannot measure
  // *significantly better* than the clean 40 dB reference.
  for (std::size_t k = 0; k < classes.size(); ++k) {
    const uwb::BerPoint& clean = flat[k * sir_db.size()];
    const uwb::BerPoint& jammed = flat[(k + 1) * sir_db.size() - 1];
    if (significantly_better(jammed, clean)) {
      ctx.sink.notef("FAIL: %s BER at 0 dB SIR significantly below the "
                     "clean reference",
                     class_name(classes[k]));
      return 1;
    }
  }
  return 0;
}

REGISTER_SCENARIO_TIERS(multiuser_ber, "coex",
                        "BER vs number of concurrent equal-power piconets "
                        "(0..4 uncoordinated interferers)",
                        "0.6k|4k|20k bits per point") {
  uwb::BerConfig base;
  base.sys.dt = 0.2e-9;
  base.sys.seed = ctx.seed;
  base.max_bits = ctx.pick<std::uint64_t>(600, 4000, 20000);
  base.min_errors = ctx.pick<std::uint64_t>(15, 30, 60);

  const double ebn0 = 10.0;
  const std::vector<double> piconets = {0.0, 1.0, 2.0, 4.0};

  auto spec = ctx.spec().axis("piconets", piconets);
  const auto t0 = std::chrono::steady_clock::now();
  const auto flat = ctx.pool.map<uwb::BerPoint>(
      spec.point_count(), [&](std::size_t t) {
        const auto pt = spec.point(t);
        uwb::BerConfig c = base;
        c.ebn0_db = {ebn0};
        c.sys.interference.uwb_count = static_cast<int>(pt.at("piconets"));
        // Equal-power piconets: each interferer's pulses arrive at the
        // victim's own received amplitude (the dense-deployment worst
        // case of the paper's multi-user scenario).
        c.sys.interference.uwb_amplitude = c.rx_pulse_peak;
        return uwb::run_ber_sweep(
            c, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                             c.sys, ctx.variant()))[0];
      });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  base::Series series("BER vs concurrent piconets", "piconets");
  series.add_column("ber");
  for (std::size_t i = 0; i < piconets.size(); ++i)
    series.add_row(piconets[i], {flat[i].ber});
  ctx.sink.series(series, "ber_piconets", 4);

  base::Table t("BER vs concurrent piconets");
  t.set_header({"piconets", "ber", "hw95", "bits", "errors"});
  std::uint64_t bits = 0, errors = 0, quarantined = 0;
  for (std::size_t i = 0; i < piconets.size(); ++i) {
    const uwb::BerPoint& p = flat[i];
    t.add_row({base::Table::num(piconets[i], 0), base::Table::sci(p.ber, 2),
               base::Table::sci(p.half_width_95, 1), std::to_string(p.bits),
               std::to_string(p.errors)});
    bits += p.bits;
    errors += p.errors;
    quarantined += p.quarantined ? 1 : 0;
  }
  ctx.sink.table(t, "points");
  ctx.sink.metric("quarantined", quarantined);
  bench_artifact(ctx, "multiuser_ber", flat.size(), bits, errors, wall);

  core::StatArtifact stats(ctx.scenario_name, runner::to_string(ctx.scale));
  for (std::size_t i = 0; i < piconets.size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof name, "ber:%gpiconets", piconets[i]);
    stats.add_ber(name, flat[i].errors, flat[i].bits);
  }
  ctx.sink.golden_stats(stats.to_json());

  if (quarantined > 0) {
    ctx.sink.note("FAIL: quarantined BER point(s) in the piconet sweep");
    return 1;
  }
  // Four equal-power interferers cannot measure significantly better than
  // the interference-free baseline.
  if (significantly_better(flat.back(), flat.front())) {
    ctx.sink.note("FAIL: 4-piconet BER significantly below the clean "
                  "baseline");
    return 1;
  }
  return 0;
}

REGISTER_SCENARIO_TIERS(channel_class_sweep, "coex",
                        "Fig. 6-style BER vs Eb/N0 waterfall per channel "
                        "class (CM1..CM4)",
                        "0.6k|4k|20k bits per point") {
  uwb::BerConfig base;
  base.sys.dt = 0.2e-9;
  base.sys.seed = ctx.seed;
  base.max_bits = ctx.pick<std::uint64_t>(600, 4000, 20000);
  base.min_errors = ctx.pick<std::uint64_t>(15, 30, 60);

  const std::vector<double> classes = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ebn0_db = {4.0, 8.0, 12.0, 16.0};

  auto spec = ctx.spec().axis("class", classes).axis("ebn0_db", ebn0_db);
  const auto t0 = std::chrono::steady_clock::now();
  const auto flat = ctx.pool.map<uwb::BerPoint>(
      spec.point_count(), [&](std::size_t t) {
        const auto pt = spec.point(t);
        uwb::BerConfig c = base;
        c.ebn0_db = {pt.at("ebn0_db")};
        c.sys.multipath = true;
        uwb::apply_channel_class(
            &c.sys, static_cast<uwb::ChannelClass>(
                        static_cast<int>(pt.at("class"))));
        return uwb::run_ber_sweep(
            c, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                             c.sys, ctx.variant()))[0];
      });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  base::Series series("BER vs Eb/N0 per channel class", "ebn0_db");
  for (const double cls : classes) series.add_column(class_name(cls));
  for (std::size_t e = 0; e < ebn0_db.size(); ++e) {
    std::vector<double> row;
    for (std::size_t k = 0; k < classes.size(); ++k)
      row.push_back(flat[k * ebn0_db.size() + e].ber);
    series.add_row(ebn0_db[e], row);
  }
  ctx.sink.series(series, "ber_classes", 4);
  ctx.sink.plot(series, 64, 18, /*log_y=*/true);

  base::Table t("BER per channel class");
  t.set_header({"class", "ebn0_db", "ber", "hw95", "bits", "errors"});
  std::uint64_t bits = 0, errors = 0, quarantined = 0;
  for (std::size_t k = 0; k < classes.size(); ++k)
    for (std::size_t e = 0; e < ebn0_db.size(); ++e) {
      const uwb::BerPoint& p = flat[k * ebn0_db.size() + e];
      t.add_row({class_name(classes[k]), base::Table::num(ebn0_db[e], 0),
                 base::Table::sci(p.ber, 2), base::Table::sci(p.half_width_95, 1),
                 std::to_string(p.bits), std::to_string(p.errors)});
      bits += p.bits;
      errors += p.errors;
      quarantined += p.quarantined ? 1 : 0;
    }
  ctx.sink.table(t, "points");
  ctx.sink.metric("quarantined", quarantined);
  bench_artifact(ctx, "channel_class_sweep", flat.size(), bits, errors, wall);

  core::StatArtifact stats(ctx.scenario_name, runner::to_string(ctx.scale));
  for (std::size_t k = 0; k < classes.size(); ++k)
    for (std::size_t e = 0; e < ebn0_db.size(); ++e) {
      const uwb::BerPoint& p = flat[k * ebn0_db.size() + e];
      char name[64];
      std::snprintf(name, sizeof name, "ber:%s@%gdB", class_name(classes[k]),
                    p.ebn0_db);
      stats.add_ber(name, p.errors, p.bits);
    }
  ctx.sink.golden_stats(stats.to_json());

  if (quarantined > 0) {
    ctx.sink.note("FAIL: quarantined BER point(s) in the class sweep");
    return 1;
  }
  // Waterfall sanity per class: the top of each curve cannot sit
  // significantly below its own bottom (energy detection must not get
  // *worse* with more Eb/N0 on any class's multipath statistics).
  for (std::size_t k = 0; k < classes.size(); ++k) {
    const uwb::BerPoint& low = flat[k * ebn0_db.size()];
    const uwb::BerPoint& high = flat[(k + 1) * ebn0_db.size() - 1];
    if (significantly_better(low, high)) {
      ctx.sink.notef("FAIL: %s BER rises with Eb/N0", class_name(classes[k]));
      return 1;
    }
  }
  ctx.sink.note(
      "\nShape check: CM1 (LOS) waterfalls the steepest; the NLOS classes\n"
      "lose the strong first path, so their curves flatten toward higher\n"
      "Eb/N0 — the genie-timed window captures only part of the dispersed\n"
      "energy.");
  return 0;
}
