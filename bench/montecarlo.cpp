// Monte-Carlo / PVT-corner scenarios — the statistical closure of the
// top-down flow (docs/characterization.md walks the full pipeline).
//
//   mc_itd        mismatch-only Monte-Carlo at the nominal corner: N
//                 re-characterizations of the 31-transistor cell with
//                 per-device Pelgrom draws, parameter quantiles and yield
//                 against the §4 constraints;
//   corner_ber    the five PVT sign-off corners, each re-characterized and
//                 its fitted Phase-IV model pushed through the behavioral
//                 BER chain — the corner spread of the paper's Fig. 6;
//   yield_report  the full closure: §4 constraint extraction -> nominal
//                 characterization -> corner-sampled mismatch Monte-Carlo
//                 -> pass/fail per trial + yield summary (yield.json,
//                 BENCH_mc.json).
//
// All three fan their independent trials over ctx.pool; every random input
// of trial i derives from derive_seed(seed, i) alone, so artifacts are
// bit-identical for any --jobs value (CI byte-compares trials.csv).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/faults.hpp"
#include "base/random.hpp"
#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "core/equiv.hpp"
#include "core/memo.hpp"
#include "core/montecarlo.hpp"
#include "runner/runner.hpp"
#include "uwb/ber.hpp"

using namespace uwbams;

namespace {

// Shared system setup of the behavioral BER propagation: the fig6 genie
// link at the coarse (0.2 ns) behavioral step.
uwb::SystemConfig ber_system(std::uint64_t seed) {
  uwb::SystemConfig sys;
  sys.dt = 0.2e-9;
  sys.preamble_symbols = 0;
  sys.multipath = false;
  sys.distance = 1.0;
  sys.seed = seed;
  return sys;
}

void print_quantiles(runner::RunContext& ctx, const core::McSummary& s) {
  base::Table t("Characterized-parameter distributions (converged trials)");
  t.set_header({"parameter", "p05", "median", "p95", "mean"});
  auto row = [&t](const char* name, const base::QuantileSummary& q,
                  double scale, const char* unit) {
    t.add_row({name, base::Table::num(q.p05 * scale, 3),
               base::Table::num(q.p50 * scale, 3),
               base::Table::num(q.p95 * scale, 3),
               std::string(base::Table::num(q.mean * scale, 3)) + " " + unit});
  };
  row("DC gain", s.gain_db, 1.0, "dB");
  row("pole 1", s.f_pole1_hz, 1e-6, "MHz");
  row("pole 2", s.f_pole2_hz, 1e-9, "GHz");
  row("unity-gain freq", s.unity_gain_hz, 1e-6, "MHz");
  row("input linear range", s.input_range_v, 1e3, "mV");
  row("slew rate", s.slew_rate_vps, 1e-6, "V/us");
  ctx.sink.table(t, "");
}

// Execution options shared by the MC scenarios: the CLI's retry policy and
// the per-scenario checkpoint directory, tagged with everything that makes
// this run's results unique (so a stale checkpoint is rejected on resume).
core::McRunOptions mc_run_options(const runner::RunContext& ctx) {
  core::McRunOptions opts;
  opts.policy = ctx.policy;
  opts.checkpoint_dir = ctx.checkpoint_dir;
  opts.resume = ctx.resume;
  opts.run_tag = ctx.scenario_name + "|" + runner::to_string(ctx.scale) + "|" +
                 core::to_string(ctx.tier);
  return opts;
}

void emit_summary_metrics(runner::RunContext& ctx, const core::McResult& mc) {
  const core::McSummary& s = mc.summary;
  ctx.sink.metric("trials", static_cast<std::uint64_t>(s.trials));
  ctx.sink.metric("passes", static_cast<std::uint64_t>(s.passes));
  ctx.sink.metric("yield", s.yield);
  ctx.sink.metric("quarantined", static_cast<std::uint64_t>(s.quarantined));
  if (s.quarantined > 0)
    ctx.sink.notef("%d trial(s) quarantined after retries (counted as yield "
                   "failures; reasons in trials.csv)",
                   s.quarantined);
  ctx.sink.metric("gain_db_p50", s.gain_db.p50);
  ctx.sink.metric("gain_db_sigma_est", (s.gain_db.p95 - s.gain_db.p05) / 3.29);
  ctx.sink.metric("input_range_v_p05", s.input_range_v.p05);
  ctx.sink.metric("slew_rate_vps_p05", s.slew_rate_vps.p05);
}

}  // namespace

REGISTER_SCENARIO_TIERS(mc_itd, "mc",
                        "Mismatch Monte-Carlo characterization of the I&D "
                        "cell",
                        "8|50|200 trials") {
  core::McConfig cfg;
  cfg.trials = ctx.pick(8, 50, 200);
  cfg.seed = ctx.seed;
  cfg.sigma_scale = 1.0;  // nominal Pelgrom mismatch, TT corner, no BER leg
  if (ctx.tier == core::ExactnessTier::kStatEquiv) {
    // Optimized characterization engine: AC pivot reuse across the grid
    // and across each trial block, stat_equiv transient profile for the
    // range/slew runs. Gated statistically, not byte-compared.
    spice::apply_stat_equiv_profile(&cfg.characterize.transient);
    cfg.characterize.reuse_ac_factorization = true;
  }

  // Criteria: §4 channel statistics + the nominal characterization. The
  // constraints run at the paper's system operating point (9.9 m CM1,
  // default config), not the genie BER link.
  const auto constraints = core::extract_constraints(
      uwb::SystemConfig{}, ctx.pick(20, 100, 100), ctx.seed + 41);
  const auto nominal = core::memo::characterize_itd_cached(cfg.sizing);
  const auto criteria = core::YieldCriteria::from_constraints(constraints, nominal);

  ctx.sink.notef("%d mismatch trials at TT 1.80 V / 27 C (sigma x%.1f), "
                 "%d workers",
                 cfg.trials, cfg.sigma_scale, ctx.jobs);
  const auto mc =
      core::run_monte_carlo(cfg, criteria, ctx.pool, mc_run_options(ctx));

  print_quantiles(ctx, mc.summary);
  ctx.sink.notef("yield %d/%d (%.1f%%) against the §4 constraints "
                 "(range >= %.1f mV, slew >= %.2f V/us)",
                 mc.summary.passes, mc.summary.trials, 100.0 * mc.summary.yield,
                 1e3 * criteria.min_input_range, 1e-6 * criteria.min_slew_rate);
  emit_summary_metrics(ctx, mc);
  ctx.sink.raw_artifact("trials.csv", core::trials_to_csv(mc.trials));
  ctx.sink.raw_artifact("yield.json", core::summary_to_json(mc));

  // Sanity gates: the mismatch draws must actually spread the parameters
  // (a zero spread means the per-device cards stopped varying), and the
  // nominal-window medians must stay in the paper's Fig. 4 ballpark.
  // An installed fault plan legitimately quarantines trials and can skew
  // the quantiles — the gates only apply to clean runs.
  if (base::faults::active()) {
    ctx.sink.note("note: fault plan active — clean-run acceptance gates skipped");
    return 0;
  }
  if (mc.summary.gain_db.p95 - mc.summary.gain_db.p05 <= 0.0) {
    ctx.sink.note("FAIL: mismatch produced no parameter spread");
    return 1;
  }
  if (mc.summary.gain_db.p50 < 18.0 || mc.summary.gain_db.p50 > 24.0) {
    ctx.sink.note("FAIL: median gain left the nominal window");
    return 1;
  }
  return 0;
}

REGISTER_SCENARIO_TIERS(corner_ber, "mc",
                        "BER across the five PVT sign-off corners",
                        "2|3|6 Eb/N0 pts x 0.4k|4k|20k bits") {
  const auto corners = core::standard_corners();
  const std::vector<double> ebn0 =
      ctx.pick<std::vector<double>>({10, 14}, {6, 10, 14}, {4, 6, 8, 10, 12, 14});
  const std::uint64_t max_bits = ctx.pick(400, 4000, 20000);

  struct CornerRow {
    core::McTrial trial;
    std::vector<uwb::BerPoint> points;
  };
  // One task per corner: re-characterize at the corner (no mismatch), then
  // run the behavioral BER curve with the corner's fitted model.
  const auto rows = ctx.pool.map<CornerRow>(
      corners.size(), [&](std::size_t i) {
        core::McConfig cfg;
        cfg.corner = corners[i];
        cfg.seed = base::derive_seed(ctx.seed, i);
        cfg.sigma_scale = 0.0;  // corners only
        cfg.sys = ber_system(ctx.seed);
        // Criteria are not used for pass/fail here; judge against nothing.
        CornerRow row;
        row.trial = core::run_mc_trial(cfg, 0, core::YieldCriteria{});
        if (!row.trial.converged) return row;

        uwb::BerConfig bc;
        // One shared noise seed for every corner: the BER comparison is
        // paired (common random numbers), so corner-to-corner differences
        // reflect the corner's fitted model, not independent noise draws.
        bc.sys = ber_system(base::derive_seed(ctx.seed, 100));
        bc.ebn0_db = ebn0;
        bc.max_bits = max_bits;
        bc.jobs = 1;  // corners are already fanned
        core::VariantOptions vo;
        vo.behavioral = row.trial.params;
        vo.behavioral_uses_clamp = true;
        row.points = uwb::run_ber_sweep(
            bc, core::make_integrator_factory(
                    core::IntegratorKind::kBehavioral, bc.sys, vo));
        return row;
      });

  base::Table t("Corner characterization (behavioral params re-fit per corner)");
  t.set_header({"corner", "gain [dB]", "f1 [MHz]", "f2 [GHz]", "range [mV]",
                "slew [V/us]"});
  base::Series curves("BER vs Eb/N0 per PVT corner", "ebn0_db");
  for (const auto& r : rows) curves.add_column(spice::to_string(r.trial.corner.process));
  for (std::size_t k = 0; k < ebn0.size(); ++k) {
    std::vector<double> col;
    for (const auto& r : rows)
      col.push_back(k < r.points.size() ? r.points[k].ber : -1.0);
    curves.add_row(ebn0[k], col);
  }
  int bad = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& tr = rows[i].trial;
    if (!tr.converged) {
      ++bad;
      t.add_row({corners[i].label(), "did not converge", "-", "-", "-", "-"});
      continue;
    }
    t.add_row({corners[i].label(), base::Table::num(tr.dc_gain_db, 2),
               base::Table::num(tr.f_pole1 * 1e-6, 3),
               base::Table::num(tr.f_pole2 * 1e-9, 3),
               base::Table::num(tr.input_linear_range * 1e3, 1),
               base::Table::num(tr.slew_rate * 1e-6, 2)});
    ctx.sink.metric(std::string("gain_db_") + spice::to_string(tr.corner.process),
                    tr.dc_gain_db);
    if (!rows[i].points.empty())
      ctx.sink.metric(std::string("ber_") + spice::to_string(tr.corner.process),
                      rows[i].points.back().ber);
  }
  ctx.sink.table(t, "corner_params");
  ctx.sink.series(curves, "corner_ber");

  // Injected faults (spice.nonconverge, runner.task) can legitimately fail
  // corner characterizations — the clean-run gates below don't apply.
  if (base::faults::active()) {
    ctx.sink.note("note: fault plan active — clean-run acceptance gates skipped");
    return 0;
  }
  if (bad > 0) {
    ctx.sink.notef("FAIL: %d corner(s) did not characterize", bad);
    return 1;
  }
  // The FF/SS gain split must bracket TT: if the corner cards stopped
  // biting, every corner collapses onto the nominal fit.
  double g_tt = 0, g_ff = 0, g_ss = 0;
  for (const auto& r : rows) {
    if (r.trial.corner.process == spice::Corner::kTT) g_tt = r.trial.dc_gain_db;
    if (r.trial.corner.process == spice::Corner::kFF) g_ff = r.trial.dc_gain_db;
    if (r.trial.corner.process == spice::Corner::kSS) g_ss = r.trial.dc_gain_db;
  }
  if (g_ff == g_tt && g_ss == g_tt) {
    ctx.sink.note("FAIL: corner cards had no effect on the characterized gain");
    return 1;
  }
  return 0;
}

REGISTER_SCENARIO_TIERS(yield_report, "mc",
                        "Yield sign-off: corner+mismatch MC vs the §4 "
                        "constraints (BENCH_mc.json)",
                        "12|100|400 trials") {
  core::McConfig cfg;
  cfg.trials = ctx.pick(12, 100, 400);
  cfg.seed = ctx.seed;
  cfg.sigma_scale = 1.0;
  cfg.sample_corners = true;  // cross mismatch with the PVT corner set
  cfg.sys = ber_system(ctx.seed);
  // Behavioral BER propagation per trial is the expensive leg; the fast
  // tier (CI smoke + determinism gate) keeps it off.
  cfg.with_ber = ctx.pick(false, true, true);
  cfg.ber_bits = ctx.pick<std::uint64_t>(0, 500, 2000);
  cfg.ebn0_db = 12.0;
  if (ctx.tier == core::ExactnessTier::kStatEquiv) {
    // Same optimized-engine profile as mc_itd; the golden-stats artifact
    // below is what gates these runs.
    spice::apply_stat_equiv_profile(&cfg.characterize.transient);
    cfg.characterize.reuse_ac_factorization = true;
  }

  const auto constraints = core::extract_constraints(
      uwb::SystemConfig{}, ctx.pick(20, 100, 100), ctx.seed + 41);
  const auto nominal = core::memo::characterize_itd_cached(cfg.sizing);
  const auto criteria =
      core::YieldCriteria::from_constraints(constraints, nominal);

  ctx.sink.notef("§4 constraints from %d CM1 realizations: input range >= "
                 "%.1f mV, slew >= %.2f V/us",
                 constraints.realizations, 1e3 * criteria.min_input_range,
                 1e-6 * criteria.min_slew_rate);
  ctx.sink.notef("%d corner-sampled mismatch trials (BER propagation: %s), "
                 "%d workers",
                 cfg.trials, cfg.with_ber ? "on" : "off", ctx.jobs);

  const auto t0 = std::chrono::steady_clock::now();
  const auto mc =
      core::run_monte_carlo(cfg, criteria, ctx.pool, mc_run_options(ctx));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  print_quantiles(ctx, mc.summary);
  const core::McSummary& s = mc.summary;
  ctx.sink.notef("yield %d/%d (%.1f%%)  [range %d, slew %d, bandwidth %d, "
                 "gain %d, no-converge %d, quarantined %d]",
                 s.passes, s.trials, 100.0 * s.yield, s.fail_input_range,
                 s.fail_slew_rate, s.fail_bandwidth, s.fail_gain,
                 s.fail_no_converge, s.quarantined);
  ctx.sink.notef("%d trials in %.2f s (%.1f trials/s)", s.trials, wall,
                 s.trials / wall);

  emit_summary_metrics(ctx, mc);
  ctx.sink.metric("trials_per_second", s.trials / wall);
  ctx.sink.raw_artifact("trials.csv", core::trials_to_csv(mc.trials));
  ctx.sink.raw_artifact("yield.json", core::summary_to_json(mc));

  // Golden-stats artifact: yield as a binomial check, the characterized
  // parameter populations as KS sample checks, and the §4-derived criteria
  // as tight scalars (they come from the tier-independent nominal path).
  {
    core::StatArtifact stats(ctx.scenario_name, runner::to_string(ctx.scale));
    stats.add_ber("yield:failures",
                  static_cast<std::uint64_t>(s.trials - s.passes),
                  static_cast<std::uint64_t>(s.trials));
    std::vector<double> gains, ugfs, ranges, slews;
    for (const auto& tr : mc.trials) {
      if (!tr.converged) continue;
      gains.push_back(tr.dc_gain_db);
      ugfs.push_back(tr.unity_gain_freq);
      ranges.push_back(tr.input_linear_range);
      slews.push_back(tr.slew_rate);
    }
    stats.add_sample("gain_db", gains);
    stats.add_sample("unity_gain_hz", ugfs);
    stats.add_sample("input_linear_range_v", ranges);
    stats.add_sample("slew_rate_vps", slews);
    stats.add_scalar("criteria:min_input_range_v", criteria.min_input_range,
                     1e-9);
    stats.add_scalar("criteria:min_slew_rate_vps", criteria.min_slew_rate,
                     1e-9);
    ctx.sink.golden_stats(stats.to_json());
  }

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"trials\": %d,\n"
                "  \"wall_seconds\": %.4f,\n"
                "  \"trials_per_second\": %.3f,\n"
                "  \"yield\": %.6f,\n"
                "  \"with_ber\": %s,\n"
                "  \"jobs\": %d\n"
                "}\n",
                s.trials, wall, s.trials / wall, s.yield,
                cfg.with_ber ? "true" : "false", ctx.jobs);
  ctx.sink.raw_artifact("BENCH_mc.json", buf);

  // Gate: a healthy process must not collapse. The nominal cell clears
  // every criterion with wide margin, so a sub-50% yield signals a broken
  // corner/mismatch model (or criteria drift), not statistics. Quarantined
  // trials count as failures, so a fault drill is exempt.
  if (base::faults::active()) {
    ctx.sink.note("note: fault plan active — yield acceptance gate skipped");
    return 0;
  }
  if (s.yield < 0.5) {
    ctx.sink.note("FAIL: yield collapsed below 50%");
    return 1;
  }
  return 0;
}
