// ablation_model_order — how much Phase-IV model fidelity is enough?
//
// The paper's model carries the DC gain and two poles, and its Fig. 5
// transient visibly deviates from ELDO because the input linear range is
// not modeled. This ablation quantifies the end-of-integration error vs
// the netlist for four model orders across input amplitudes:
//   ideal K/s  ->  one pole  ->  two poles (paper)  ->  two poles + clamp.
#include <cmath>

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/characterize.hpp"
#include "core/memo.hpp"
#include "runner/runner.hpp"
#include "uwb/integrator.hpp"

using namespace uwbams;

namespace {

double integrate_value(uwb::IntegrateAndDump& itd, double& input, double vin,
                       double t_int) {
  const double dt = 0.2e-9;
  double t = 0.0;
  auto run = [&](uwb::IntegrateAndDump::Mode m, double dur) {
    itd.set_mode(m);
    for (const double end = t + dur; t < end - dt / 2; t += dt)
      itd.step(t, dt);
  };
  input = 0.0;
  run(uwb::IntegrateAndDump::Mode::kDump, 40e-9);
  input = vin;
  run(uwb::IntegrateAndDump::Mode::kIntegrate, t_int);
  return itd.output();
}

}  // namespace

REGISTER_SCENARIO(model_order, "ablation",
                  "A2 — Phase-IV model order vs ELDO integration error") {
  const auto ch = core::memo::characterize_itd_cached();
  const auto cal = core::to_behavioral_params(ch, false);
  auto cal_clamp = core::to_behavioral_params(ch, true);

  base::Table t("End-of-integration error vs ELDO (100 ns window)");
  t.set_header({"vin [mV]", "ideal K/s", "1-pole", "2-pole (paper)",
                "2-pole + clamp", "ELDO [V]"});

  for (double vin : {0.01, 0.03, 0.06, 0.10, 0.20, 0.40}) {
    double in0 = 0, in1 = 0, in2 = 0, in3 = 0, in4 = 0;
    uwb::IdealIntegrator m_ideal(&in0, units::db_to_lin(cal.dc_gain_db) * 2 *
                                           units::pi * cal.f_pole1);
    uwb::TwoPoleParams one_pole = cal;
    one_pole.f_pole2 = 1e12;  // push the second pole out of the picture
    uwb::TwoPoleIntegrator m_1p(&in1, one_pole);
    uwb::TwoPoleIntegrator m_2p(&in2, cal);
    uwb::TwoPoleIntegrator m_2pc(&in3, cal_clamp);
    uwb::SpiceIntegrator m_spice(&in4);

    const double t_int = 100e-9;
    const double v_ref = integrate_value(m_spice, in4, vin, t_int);
    auto err = [&](uwb::IntegrateAndDump& m, double& in) {
      const double v = integrate_value(m, in, vin, t_int);
      return 100.0 * (v - v_ref) / std::max(std::abs(v_ref), 1e-9);
    };
    t.add_row({base::Table::num(vin * 1e3, 0),
               base::Table::num(err(m_ideal, in0), 1) + " %",
               base::Table::num(err(m_1p, in1), 1) + " %",
               base::Table::num(err(m_2p, in2), 1) + " %",
               base::Table::num(err(m_2pc, in3), 1) + " %",
               base::Table::num(v_ref, 4)});
    ctx.sink.notef("vin = %.0f mV done", vin * 1e3);
  }
  ctx.sink.note("");
  ctx.sink.table(t, "model_order_error");

  ctx.sink.notef(
      "Reading: the paper's linear two-pole model is accurate in the linear\n"
      "range and drifts for vin beyond ~%.0f mV (its Fig. 5 mismatch); adding\n"
      "the characterized input clamp — the refinement the paper lists as\n"
      "future work — removes most of the remaining error at large drive.",
      ch.input_linear_range * 1e3);
  return 0;
}
