// ranging — the clock-nonideality + multi-node extensions of the paper's §5
// two-way-ranging experiment (group `ranging`).
//
//   twr_clock       ToA/distance bias vs the responder's crystal ppm offset:
//                   the classic TWR drift-bias line bias = -0.5 c PT delta_b
//                   (the paper's RTT - PT subtraction assumes it away), plus
//                   the ppm-compensated variant that removes it again.
//   ranging_network N-node TWR network over independent CM1 pair channels
//                   with per-node clock offsets; least-squares 2-D position
//                   solve over the pairwise estimates (BENCH_ranging.json).
//
// Both scenarios fan their independent simulations across the pool with all
// seeds fixed up front, so any --jobs value reproduces --jobs=1 bit for bit
// (the CI determinism gate byte-compares ranging_network's pairs.csv).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "base/random.hpp"
#include "base/stats.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "core/equiv.hpp"
#include "runner/runner.hpp"
#include "uwb/network.hpp"
#include "uwb/ranging.hpp"

using namespace uwbams;

REGISTER_SCENARIO_TIERS(twr_clock, "ranging",
                        "TWR distance bias vs crystal ppm offset (drift-bias "
                        "line + ppm compensation)",
                        "3|7|11 ppm pts x 2|4|8 iter") {
  // A long processing time makes the PT-scaling term dominate the
  // estimator jitter: at PT = 40 us, 1 ppm of responder offset biases the
  // distance by -0.5 c PT 1e-6 ~ -6 mm.
  uwb::TwrConfig base_cfg;
  base_cfg.sys.dt = ctx.pick(0.2e-9, 0.2e-9, 0.1e-9);
  base_cfg.sys.seed = ctx.seed;
  base_cfg.processing_time = 40e-6;
  // The engine computes both: distance_raw and the compensated
  // distance_estimate (TwrConfig::compensate_ppm), so the compensated
  // column below gates the shipped correction, not a re-derived copy.
  base_cfg.compensate_ppm = true;
  const int iterations = ctx.pick(2, 4, 8);
  const std::vector<double> ppm_values =
      ctx.pick<std::vector<double>>({-80.0, 0.0, 80.0},
                                    {-100.0, -50.0, -20.0, 0.0, 20.0, 50.0, 100.0},
                                    {-100.0, -75.0, -50.0, -25.0, -10.0, 0.0,
                                     10.0, 25.0, 50.0, 75.0, 100.0});

  // The iteration seeds are shared across ppm points (channel fixed, noise
  // per iteration), so the estimator jitter is common-mode along the sweep
  // and the clock term stands out cleanly.
  ctx.sink.notef("sweeping %zu ppm offsets x %d iterations, PT = %.0f us ...",
                 ppm_values.size(), iterations,
                 1e6 * base_cfg.processing_time);
  const auto n_iter = static_cast<std::size_t>(iterations);
  const auto flat = ctx.pool.map<uwb::TwrIteration>(
      ppm_values.size() * n_iter, [&](std::size_t t) {
        uwb::TwrConfig cfg = base_cfg;
        cfg.clock_b.ppm = ppm_values[t / n_iter];
        const int rep = static_cast<int>(t % n_iter);
        uwb::TwoWayRanging twr(
            cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                               cfg.sys));
        return twr.run_iteration(cfg.channel_seed(rep), cfg.noise_seed(rep));
      });

  // Reference mean at ppm = 0 isolates the clock-induced part of the bias
  // from the (seed-shared) estimator offset. If every ppm = 0 iteration
  // failed to acquire (possible on an unlucky --seed's fixed realization),
  // fall back to the grand mean over all ok iterations — a constant offset
  // cancels in the slope fits either way, but the bias_m column must not
  // silently become the absolute distance.
  base::RunningStats ref_st;
  base::RunningStats grand_st;
  for (std::size_t p = 0; p < ppm_values.size(); ++p) {
    for (std::size_t i = 0; i < n_iter; ++i) {
      const auto& it = flat[p * n_iter + i];
      if (!it.ok) continue;
      grand_st.add(it.distance_raw);
      if (ppm_values[p] == 0.0) ref_st.add(it.distance_raw);
    }
  }
  if (ref_st.count() == 0)
    ctx.sink.note("note: no ppm=0 acquisition succeeded; bias_m is "
                  "referenced to the grand mean instead");
  const double ref_mean =
      ref_st.count() > 0 ? ref_st.mean() : grand_st.mean();

  base::Series series("TWR bias vs responder clock offset", "ppm_b");
  series.add_column("mean_raw_m");
  series.add_column("bias_m");
  series.add_column("mean_compensated_m");
  series.add_column("failures");
  std::vector<double> xs, ys, ys_comp;
  const double c = units::speed_of_light;
  const double pt = base_cfg.processing_time;
  int total_failures = 0;
  for (std::size_t p = 0; p < ppm_values.size(); ++p) {
    base::RunningStats raw;
    base::RunningStats comp;
    int failures = 0;
    for (std::size_t i = 0; i < n_iter; ++i) {
      const auto& it = flat[p * n_iter + i];
      if (!it.ok) {
        ++failures;
        continue;
      }
      raw.add(it.distance_raw);
      comp.add(it.distance_estimate);  // the engine's compensated value
    }
    total_failures += failures;
    series.add_row(ppm_values[p],
                   {raw.mean(), raw.mean() - ref_mean, comp.mean(),
                    static_cast<double>(failures)});
    if (raw.count() > 0) {
      xs.push_back(ppm_values[p]);
      ys.push_back(raw.mean() - ref_mean);
      ys_comp.push_back(comp.mean() - ref_mean);
    }
  }
  ctx.sink.series(series, "bias_vs_ppm");

  const auto fit = base::fit_line(xs, ys);
  const auto fit_comp = base::fit_line(xs, ys_comp);
  const double theory = -0.5 * c * pt * 1e-6;  // m per ppm of delta_b
  ctx.sink.notef("fitted bias slope %.4g m/ppm (theory -0.5 c PT = %.4g), "
                 "compensated slope %.4g, %d acquisition failures",
                 fit.slope, theory, fit_comp.slope, total_failures);
  ctx.sink.metric("bias_slope_m_per_ppm", fit.slope);
  ctx.sink.metric("theory_slope_m_per_ppm", theory);
  ctx.sink.metric("compensated_slope_m_per_ppm", fit_comp.slope);
  ctx.sink.metric("failures", static_cast<std::uint64_t>(total_failures));

  // Gates: the drift-bias line must track the PT-scaling prediction
  // (theory is negative, so the [high x, low x] theory band brackets it
  // from below and above), and compensation must cancel most of the slope.
  // Limits live in core::accept (shared with the CI jobs).
  if (fit.slope > core::accept::kTwrSlopeBandLow * theory ||
      fit.slope < core::accept::kTwrSlopeBandHigh * theory) {
    ctx.sink.note("FAIL: drift-bias slope is not the predicted "
                  "-0.5 c PT line");
    return 1;
  }
  if (std::abs(fit_comp.slope) >
      core::accept::kTwrCompensatedSlopeMax * std::abs(theory)) {
    ctx.sink.note("FAIL: ppm compensation left most of the drift slope in");
    return 1;
  }
  return 0;
}

REGISTER_SCENARIO_TIERS(ranging_network, "ranging",
                        "N-node TWR network: per-pair CM1 distances + 2-D "
                        "position solve (BENCH_ranging.json)",
                        "4|8|16 nodes x 2|2|3 exch") {
  uwb::NetworkConfig cfg;
  cfg.sys.dt = ctx.pick(0.2e-9, 0.2e-9, 0.1e-9);
  cfg.sys.seed = ctx.seed;
  cfg.node_count = ctx.pick(4, 8, 16);
  // 5 m radius keeps the longest link (the 10 m diameter) inside the range
  // the link budget is tuned for; 12 m+ links start failing acquisition.
  cfg.layout_radius = 5.0;
  cfg.ppm_spread = 20.0;  // a realistic crystal population
  cfg.compensate_ppm = true;
  // Two exchanges even on the fast tier: a pair is only lost when *every*
  // exchange fails to acquire, and the fresh-channel redraw makes a double
  // failure rare.
  cfg.exchanges_per_pair = ctx.pick(2, 2, 3);

  uwb::RangingNetwork net(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                         cfg.sys));
  ctx.sink.notef("%d nodes on a %.1f m circle -> %d pairs x %d exchanges, "
                 "ppm spread +/-%.0f, %d workers ...",
                 cfg.node_count, cfg.layout_radius, net.pair_count(),
                 cfg.exchanges_per_pair, cfg.ppm_spread, ctx.jobs);

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = net.run(&ctx.pool);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  base::Table pairs("Per-pair distance estimates [m]");
  pairs.set_header({"node_a", "node_b", "true_m", "est_m", "err_m",
                    "failures"});
  for (const auto& m : res.pairs) {
    pairs.add_row({std::to_string(m.node_a), std::to_string(m.node_b),
                   base::Table::num(m.true_distance, 4),
                   m.ok() ? base::Table::num(m.est_distance, 4) : "n/a",
                   m.ok() ? base::Table::num(m.est_distance - m.true_distance, 4)
                          : "n/a",
                   std::to_string(m.failures)});
  }
  ctx.sink.table(pairs, "pairs");

  base::Table solved("Solved positions [m]");
  solved.set_header({"node", "ppm", "true_x", "true_y", "est_x", "est_y",
                     "err_m"});
  for (int k = 0; k < cfg.node_count; ++k) {
    const auto& t = res.positions[static_cast<std::size_t>(k)];
    const auto& s = res.solved[static_cast<std::size_t>(k)];
    const double err = std::hypot(t.x - s.x, t.y - s.y);
    solved.add_row({std::to_string(k),
                    base::Table::num(res.node_ppm[static_cast<std::size_t>(k)], 2),
                    base::Table::num(t.x, 3), base::Table::num(t.y, 3),
                    base::Table::num(s.x, 3), base::Table::num(s.y, 3),
                    k < cfg.anchor_count ? "anchor"
                                         : base::Table::num(err, 3)});
  }
  ctx.sink.table(solved, "positions");

  ctx.sink.notef("distance RMSE %.3f m, position RMSE %.3f m, "
                 "%d failed pairs, %.2f s (%.2f pairs/s)",
                 res.distance_rmse, res.position_rmse, res.failed_pairs, wall,
                 res.pairs.size() / wall);
  ctx.sink.metric("nodes", static_cast<std::uint64_t>(cfg.node_count));
  ctx.sink.metric("pairs", static_cast<std::uint64_t>(res.pairs.size()));
  ctx.sink.metric("failed_pairs", static_cast<std::uint64_t>(res.failed_pairs));
  ctx.sink.metric("distance_rmse_m", res.distance_rmse);
  ctx.sink.metric("position_rmse_m", res.position_rmse);
  ctx.sink.metric("range_bias_m", res.range_bias);

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"nodes\": %d,\n"
                "  \"pairs\": %zu,\n"
                "  \"exchanges_per_pair\": %d,\n"
                "  \"wall_seconds\": %.4f,\n"
                "  \"pairs_per_second\": %.3f,\n"
                "  \"distance_rmse_m\": %.6f,\n"
                "  \"position_rmse_m\": %.6f,\n"
                "  \"failed_pairs\": %d,\n"
                "  \"jobs\": %d\n"
                "}\n",
                cfg.node_count, res.pairs.size(), cfg.exchanges_per_pair, wall,
                res.pairs.size() / wall, res.distance_rmse, res.position_rmse,
                res.failed_pairs, ctx.jobs);
  ctx.sink.raw_artifact("BENCH_ranging.json", buf);

  // Golden-stats artifact: acquisition failures as a binomial check, the
  // per-pair ranging errors as a KS population, and the two RMSE figures as
  // loosely-toleranced scalars (this scenario runs the ideal integrator, so
  // under bit_exact a refreshed golden reproduces byte-for-byte; the bands
  // exist for stat_equiv engine changes that reach the link layer).
  {
    core::StatArtifact stats(ctx.scenario_name, runner::to_string(ctx.scale));
    stats.add_ber("pairs:failed",
                  static_cast<std::uint64_t>(res.failed_pairs),
                  static_cast<std::uint64_t>(res.pairs.size()));
    std::vector<double> errs;
    for (const auto& m : res.pairs)
      if (m.ok()) errs.push_back(m.est_distance - m.true_distance);
    stats.add_sample("pair_error_m", errs);
    stats.add_scalar("distance_rmse_m", res.distance_rmse, 0.25, 0.05);
    stats.add_scalar("position_rmse_m", res.position_rmse, 0.25, 0.05);
    ctx.sink.golden_stats(stats.to_json());
  }

  // Gates: the network must measure most pairs and localize to sub-meter
  // RMSE — the per-pair engine at these distances is good to ~0.3 m and
  // the solver averages over many pairs, so meter-scale errors signal a
  // broken channel/clock/seed pipeline rather than statistics. Limits live
  // in core::accept (shared with the CI jobs).
  if (static_cast<double>(res.failed_pairs) >
      core::accept::kRangingMaxFailedPairFraction *
          static_cast<double>(res.pairs.size())) {
    ctx.sink.note("FAIL: more than a quarter of the pairs failed to range");
    return 1;
  }
  if (res.position_rmse > core::accept::kRangingMaxPositionRmseM) {
    ctx.sink.note("FAIL: position RMSE above the accept limit");
    return 1;
  }
  return 0;
}
