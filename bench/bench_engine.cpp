// bench_engine — transient-engine microbenchmark tracking the fast path.
//
// Three standardized workloads exercise the engine layers this repo's
// "Table 1 CPU time" argument rests on (cheap transistor-level inner loop):
//
//   itd_fixed    the 31-MOSFET Integrate & Dump testbench stepped at the
//                system benches' rate with a noisy differential drive —
//                the fig6_ber inner loop in isolation;
//   itd_classic  the same workload with the fast path disabled
//                (per-iteration full assembly + fresh factorization) —
//                the speedup denominator;
//   rc_linear    a 12-section RC ladder — the linear-circuit path that
//                must run on a single cached factorization;
//   itd_adaptive the ITD cell under a pulsed control workload advanced by
//                the adaptive LTE stepper (accept/reject + event-aligned).
//
// Results go to stdout, to summary.json metrics, and — the part CI tracks
// across PRs — to the BENCH_engine.json artifact.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>

#include "runner/runner.hpp"
#include "spice/devices.hpp"
#include "spice/itd_builder.hpp"
#include "spice/transient.hpp"

using namespace uwbams;

namespace {

struct WorkloadResult {
  double wall_seconds = 0.0;
  double steps_per_second = 0.0;
  spice::TransientStats stats;
};

// Steps the ITD testbench with a seeded noisy differential input and the
// control cycle the receiver runs (integrate -> dump), mimicking the
// fig6_ber inner loop without the surrounding system chain.
WorkloadResult run_itd(std::uint64_t seed, int steps,
                       const spice::TransientOptions& topts) {
  spice::Circuit ckt;
  const auto tb = spice::build_itd_testbench(ckt, {});
  (void)tb;
  spice::TransientSession session(ckt, topts);
  auto& vinp = session.source("vinp");
  auto& vinm = session.source("vinm");
  auto& ctrlp = session.source("vctrlp");
  auto& ctrlm = session.source("vctrlm");
  ctrlp.set_override(1.8);
  ctrlm.set_override(0.0);  // integrate

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.01);
  const double dt = 0.2e-9;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) {
    const double u = noise(rng);
    vinp.set_override(0.9 + 0.5 * u);
    vinm.set_override(0.9 - 0.5 * u);
    if (i % 300 == 250)
      ctrlm.set_override(1.8);  // dump
    else if (i % 300 == 0)
      ctrlm.set_override(0.0);  // integrate
    session.step(dt);
  }
  WorkloadResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.steps_per_second = steps / r.wall_seconds;
  r.stats = session.stats();
  return r;
}

// 12-section RC ladder driven by a pulse: the linear single-factorization
// fast path.
WorkloadResult run_rc_ladder(int steps) {
  spice::Circuit ckt;
  const int in = ckt.node("in");
  int prev = in;
  for (int k = 0; k < 12; ++k) {
    const int next = ckt.node("n" + std::to_string(k));
    ckt.add<spice::Resistor>("r" + std::to_string(k), prev, next, 1e3);
    ckt.add<spice::Capacitor>("c" + std::to_string(k), next, 0, 1e-12);
    prev = next;
  }
  ckt.add<spice::VoltageSource>(
      "vin", in, 0,
      spice::Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 20e-9, 40e-9));

  spice::TransientSession session(ckt, {});
  const double dt = 0.05e-9;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) session.step(dt);
  WorkloadResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.steps_per_second = steps / r.wall_seconds;
  r.stats = session.stats();
  return r;
}

// ITD cell advanced by the adaptive LTE stepper over a pulsed control
// waveform (edges force event-aligned steps and rejections).
WorkloadResult run_itd_adaptive(double t_stop) {
  spice::Circuit ckt;
  const auto tb = spice::build_itd_testbench(ckt, {});
  (void)tb;
  spice::TransientOptions topts;
  topts.adaptive.enabled = true;
  topts.adaptive.dt_max = 2e-9;
  spice::TransientSession session(ckt, topts);
  // Drive the control rails from their pulse waveforms instead of
  // overrides so the stepper sees real breakpoints.
  auto& ctrlm = session.source("vctrlm");
  ctrlm.clear_override();
  const auto t0 = std::chrono::steady_clock::now();
  session.advance_to(t_stop);
  WorkloadResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.steps_per_second =
      static_cast<double>(session.stats().steps) / r.wall_seconds;
  r.stats = session.stats();
  return r;
}

std::string json_block(const char* name, const WorkloadResult& r,
                       bool trailing_comma) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "  \"%s\": {\n"
      "    \"wall_seconds\": %.6f,\n"
      "    \"steps_per_second\": %.1f,\n"
      "    \"steps\": %llu,\n"
      "    \"newton_iterations\": %llu,\n"
      "    \"factorizations\": %llu,\n"
      "    \"refactorizations\": %llu,\n"
      "    \"solves\": %llu,\n"
      "    \"accepted_steps\": %llu,\n"
      "    \"rejected_steps\": %llu,\n"
      "    \"fallback_steps\": %llu\n"
      "  }%s\n",
      name, r.wall_seconds, r.steps_per_second,
      static_cast<unsigned long long>(r.stats.steps),
      static_cast<unsigned long long>(r.stats.newton_iterations),
      static_cast<unsigned long long>(r.stats.factorizations),
      static_cast<unsigned long long>(r.stats.refactorizations),
      static_cast<unsigned long long>(r.stats.solves),
      static_cast<unsigned long long>(r.stats.accepted_steps),
      static_cast<unsigned long long>(r.stats.rejected_steps),
      static_cast<unsigned long long>(r.stats.fallback_steps),
      trailing_comma ? "," : "");
  return std::string(buf);
}

}  // namespace

REGISTER_SCENARIO(bench_engine, "bench",
                  "Transient-engine fast-path microbenchmark "
                  "(BENCH_engine.json)") {
  const int itd_steps = ctx.pick(20000, 100000, 400000);
  const int rc_steps = ctx.pick(20000, 100000, 400000);
  const double adaptive_t = ctx.pick(1e-6, 4e-6, 16e-6);

  ctx.sink.note("workload: ITD testbench (31 MOSFETs, 28 unknowns) + RC ladder");

  spice::TransientOptions fast;  // defaults = the fast path
  const WorkloadResult itd_fast = run_itd(ctx.seed, itd_steps, fast);
  ctx.sink.notef("itd_fixed    : %8.0f steps/s  (%.2f us/step, %.2f iters/step)",
                 itd_fast.steps_per_second, 1e6 / itd_fast.steps_per_second,
                 static_cast<double>(itd_fast.stats.newton_iterations) /
                     static_cast<double>(itd_fast.stats.steps));

  spice::TransientOptions classic;
  classic.lazy_jacobian = false;
  classic.reuse_factorization = false;
  const WorkloadResult itd_classic = run_itd(ctx.seed, itd_steps, classic);
  ctx.sink.notef("itd_classic  : %8.0f steps/s  (%.2f us/step) — fast path disabled",
                 itd_classic.steps_per_second,
                 1e6 / itd_classic.steps_per_second);
  const double speedup =
      itd_fast.steps_per_second / itd_classic.steps_per_second;
  ctx.sink.notef("fast-path speedup on the embedded-netlist loop: %.2fx",
                 speedup);

  const WorkloadResult rc = run_rc_ladder(rc_steps);
  ctx.sink.notef("rc_linear    : %8.0f steps/s  (factorizations: %llu)",
                 rc.steps_per_second,
                 static_cast<unsigned long long>(rc.stats.factorizations));

  const WorkloadResult adaptive = run_itd_adaptive(adaptive_t);
  ctx.sink.notef(
      "itd_adaptive : %llu accepted / %llu rejected steps over %.1f us",
      static_cast<unsigned long long>(adaptive.stats.accepted_steps),
      static_cast<unsigned long long>(adaptive.stats.rejected_steps),
      adaptive_t * 1e6);

  ctx.sink.metric("itd_fixed_steps_per_second", itd_fast.steps_per_second);
  ctx.sink.metric("itd_classic_steps_per_second",
                  itd_classic.steps_per_second);
  ctx.sink.metric("fast_path_speedup", speedup);
  ctx.sink.metric("rc_linear_factorizations", rc.stats.factorizations);
  ctx.sink.metric("adaptive_rejected_steps", adaptive.stats.rejected_steps);

  std::string json = "{\n";
  json += json_block("itd_fixed", itd_fast, true);
  json += json_block("itd_classic", itd_classic, true);
  json += json_block("rc_linear", rc, true);
  json += json_block("itd_adaptive", adaptive, false);
  json += "}\n";
  ctx.sink.raw_artifact("BENCH_engine.json", json);

  // Sanity gates so CI fails loudly if the fast path regresses to the
  // classic engine's behavior.
  if (rc.stats.factorizations != 1) {
    ctx.sink.note("FAIL: linear circuit took more than one factorization");
    return 1;
  }
  if (speedup < 1.2) {
    ctx.sink.notef("FAIL: fast path no faster than classic engine (%.2fx)",
                   speedup);
    return 1;
  }
  return 0;
}
