// fig5_transient — reproduces Fig. 5: "Integrators transient responses".
//
// Identical stimulus (integrate a differential step, hold, dump) through
// the three I&D fidelities. The VHDL-AMS (linear two-pole) model matches
// ELDO for small inputs and deviates for large ones — "distortions caused
// by the limited linear input range of the circuit not contemplated in the
// model" (paper §5).
#include <string>

#include "base/table.hpp"
#include "base/trace.hpp"
#include "core/block_variant.hpp"
#include "core/characterize.hpp"
#include "core/memo.hpp"
#include "runner/runner.hpp"
#include "uwb/integrator.hpp"

using namespace uwbams;

namespace {

base::Trace run_cycle(uwb::IntegrateAndDump& itd, double& input,
                      double vin_diff, const char* name) {
  base::Trace trace(name, 4);
  const double dt = 0.2e-9;
  double t = 0.0;
  auto run = [&](uwb::IntegrateAndDump::Mode m, double dur) {
    itd.set_mode(m);
    for (const double end = t + dur; t < end - dt / 2; t += dt) {
      itd.step(t, dt);
      trace.record(t, itd.output());
    }
  };
  input = 0.0;
  run(uwb::IntegrateAndDump::Mode::kDump, 40e-9);
  input = vin_diff;
  run(uwb::IntegrateAndDump::Mode::kIntegrate, 300e-9);
  input = 0.0;
  run(uwb::IntegrateAndDump::Mode::kHold, 150e-9);
  run(uwb::IntegrateAndDump::Mode::kDump, 60e-9);
  return trace;
}

}  // namespace

REGISTER_SCENARIO(fig5_transient, "bench",
                  "Fig. 5 — integrate/hold/dump transients at 3 fidelities") {
  // Phase IV model calibrated from the netlist (the paper's flow).
  const auto ch = core::memo::characterize_itd_cached();
  const auto cal = core::to_behavioral_params(ch, /*with_clamp=*/false);
  uwb::SystemConfig sys = ctx.spec().system();

  for (double vin : {0.02, 0.08}) {
    double in_ideal = 0, in_model = 0, in_spice = 0;
    uwb::IdealIntegrator ideal(&in_ideal, sys.integrator_k);
    uwb::TwoPoleIntegrator model(&in_model, cal);
    uwb::SpiceIntegrator spice_itd(&in_spice);

    auto tr_i = run_cycle(ideal, in_ideal, vin, "IDEAL");
    auto tr_m = run_cycle(model, in_model, vin, "VHDL-AMS");
    auto tr_s = run_cycle(spice_itd, in_spice, vin, "ELDO");

    const std::string mv = base::Table::num(vin * 1e3, 0);
    base::Series series("Fig 5. transient responses, vin = " + mv + " mV",
                        "t_ns");
    series.add_column("IDEAL");
    series.add_column("VHDL-AMS");
    series.add_column("ELDO");
    for (std::size_t i = 0; i < tr_i.times().size(); i += 8) {
      const double t = tr_i.times()[i];
      series.add_row(t * 1e9, {tr_i.values()[i], tr_m.at(t), tr_s.at(t)});
    }
    ctx.sink.series(series, "transient_" + mv + "mv", 6, /*print_rows=*/false);
    ctx.sink.plot(series, 70, 18);

    // End-of-integration values and the model-vs-netlist mismatch.
    const double t_eoi = 40e-9 + 300e-9 - 1e-9;
    const double vi = tr_i.at(t_eoi), vm = tr_m.at(t_eoi), vs = tr_s.at(t_eoi);
    base::Table t("End-of-integration value, vin = " + mv + " mV");
    t.set_header({"Model", "V_out [V]", "vs ELDO"});
    t.add_row({"IDEAL", base::Table::num(vi, 4),
               base::Table::num(100.0 * (vi - vs) / vs, 1) + " %"});
    t.add_row({"VHDL-AMS", base::Table::num(vm, 4),
               base::Table::num(100.0 * (vm - vs) / vs, 1) + " %"});
    t.add_row({"ELDO", base::Table::num(vs, 4), "-"});
    ctx.sink.table(t, "end_of_integration_" + mv + "mv");
    ctx.sink.metric("eoi_ideal_" + mv + "mv_v", vi);
    ctx.sink.metric("eoi_model_" + mv + "mv_v", vm);
    ctx.sink.metric("eoi_eldo_" + mv + "mv_v", vs);
  }

  ctx.sink.notef(
      "Shape check (paper Fig. 5): the linear VHDL-AMS model tracks ELDO for\n"
      "small inputs; at large inputs the netlist compresses (limited ~%.0f mV\n"
      "linear input range) and the mismatch grows — the deficiency the paper\n"
      "uses to motivate refining the Phase-IV model.",
      ch.input_linear_range * 1e3);
  return 0;
}
