// fig5_transient — reproduces Fig. 5: "Integrators transient responses".
//
// Identical stimulus (integrate a differential step, hold, dump) through
// the three I&D fidelities. The VHDL-AMS (linear two-pole) model matches
// ELDO for small inputs and deviates for large ones — "distortions caused
// by the limited linear input range of the circuit not contemplated in the
// model" (paper §5).
#include <cstdio>
#include <memory>
#include <vector>

#include "base/table.hpp"
#include "base/trace.hpp"
#include "core/block_variant.hpp"
#include "core/characterize.hpp"
#include "uwb/integrator.hpp"

using namespace uwbams;

namespace {

base::Trace run_cycle(uwb::IntegrateAndDump& itd, double& input,
                      double vin_diff, const char* name) {
  base::Trace trace(name, 4);
  const double dt = 0.2e-9;
  double t = 0.0;
  auto run = [&](uwb::IntegrateAndDump::Mode m, double dur) {
    itd.set_mode(m);
    for (const double end = t + dur; t < end - dt / 2; t += dt) {
      itd.step(t, dt);
      trace.record(t, itd.output());
    }
  };
  input = 0.0;
  run(uwb::IntegrateAndDump::Mode::kDump, 40e-9);
  input = vin_diff;
  run(uwb::IntegrateAndDump::Mode::kIntegrate, 300e-9);
  input = 0.0;
  run(uwb::IntegrateAndDump::Mode::kHold, 150e-9);
  run(uwb::IntegrateAndDump::Mode::kDump, 60e-9);
  return trace;
}

}  // namespace

int main() {
  std::printf("=== Fig. 5 reproduction: integrate -> hold -> dump ===\n\n");

  // Phase IV model calibrated from the netlist (the paper's flow).
  const auto ch = core::characterize_itd();
  const auto cal = core::to_behavioral_params(ch, /*with_clamp=*/false);
  uwb::SystemConfig sys;

  for (double vin : {0.02, 0.08}) {
    double in_ideal = 0, in_model = 0, in_spice = 0;
    uwb::IdealIntegrator ideal(&in_ideal, sys.integrator_k);
    uwb::TwoPoleIntegrator model(&in_model, cal);
    uwb::SpiceIntegrator spice_itd(&in_spice);

    auto tr_i = run_cycle(ideal, in_ideal, vin, "IDEAL");
    auto tr_m = run_cycle(model, in_model, vin, "VHDL-AMS");
    auto tr_s = run_cycle(spice_itd, in_spice, vin, "ELDO");

    base::Series series(
        std::string("Fig 5. transient responses, vin = ") +
            base::Table::num(vin * 1e3, 0) + " mV",
        "t_ns");
    series.add_column("IDEAL");
    series.add_column("VHDL-AMS");
    series.add_column("ELDO");
    for (std::size_t i = 0; i < tr_i.times().size(); i += 8) {
      const double t = tr_i.times()[i];
      series.add_row(t * 1e9, {tr_i.values()[i], tr_m.at(t), tr_s.at(t)});
    }
    std::printf("%s\n", series.ascii_plot(70, 18).c_str());

    // End-of-integration values and the model-vs-netlist mismatch.
    const double t_eoi = 40e-9 + 300e-9 - 1e-9;
    const double vi = tr_i.at(t_eoi), vm = tr_m.at(t_eoi), vs = tr_s.at(t_eoi);
    base::Table t(std::string("End-of-integration value, vin = ") +
                  base::Table::num(vin * 1e3, 0) + " mV");
    t.set_header({"Model", "V_out [V]", "vs ELDO"});
    t.add_row({"IDEAL", base::Table::num(vi, 4),
               base::Table::num(100.0 * (vi - vs) / vs, 1) + " %"});
    t.add_row({"VHDL-AMS", base::Table::num(vm, 4),
               base::Table::num(100.0 * (vm - vs) / vs, 1) + " %"});
    t.add_row({"ELDO", base::Table::num(vs, 4), "-"});
    t.print();
    std::printf("\n");
  }

  std::printf(
      "Shape check (paper Fig. 5): the linear VHDL-AMS model tracks ELDO for\n"
      "small inputs; at large inputs the netlist compresses (limited ~%.0f mV\n"
      "linear input range) and the mismatch grows — the deficiency the paper\n"
      "uses to motivate refining the Phase-IV model.\n",
      ch.input_linear_range * 1e3);
  return 0;
}
