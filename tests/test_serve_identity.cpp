// test_serve_identity — the content-key contract behind every cache layer:
//
//   * canonical JSON identity: reordering keys or reformatting whitespace
//     of a document never changes its content key (parse -> canonical
//     re-render -> hash), and write -> parse -> write is byte-stable;
//   * completeness: mutating *every* field the visit_fields templates
//     declare flips the key — the suite iterates the fields
//     programmatically, so it grows with the visitor automatically — and
//     sizeof/field-count pins make a knob added to a struct but not to its
//     visitor fail loudly here instead of silently not being hashed;
//   * strictness: unknown keys, missing keys, truncated hex and
//     non-integral ints are rejected on the way in;
//   * exact round trips: from_json(to_json(x)) == x member-for-member,
//     including spec_from_json(spec_to_json(s)) == s for a spec of every
//     registered scenario (this binary links the scenario registrations);
//   * pinned reference vectors: like test_faults pins fnv1a64, the keys of
//     default-constructed documents are pinned so an accidental change to
//     the canonical rendering (field rename, %.17g regression, kCodeVersion
//     edit) is caught even when it is self-consistent.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/checkpoint.hpp"
#include "base/faults.hpp"
#include "base/json.hpp"
#include "core/canonical.hpp"
#include "runner/registry.hpp"
#include "runner/spec_json.hpp"
#include "serve/protocol.hpp"

using namespace uwbams;
namespace canon = core::canonical;

namespace {

// ------------------------------------------------------------ field walking

template <typename T>
int field_count() {
  T obj{};
  int n = 0;
  canon::visit_fields(obj, [&n](const char*, auto&) { ++n; });
  return n;
}

void mutate(double& f) { f += 1.5; }
void mutate(int& f) { f += 1; }
void mutate(bool& f) { f = !f; }
void mutate(std::uint64_t& f) { f += 1; }
void mutate(std::vector<double>& f) { f.push_back(42.0); }
void mutate(spice::Integrator& f) {
  f = f == spice::Integrator::kTrapezoidal ? spice::Integrator::kBackwardEuler
                                           : spice::Integrator::kTrapezoidal;
}
void mutate(spice::Corner& f) {
  f = f == spice::Corner::kTT ? spice::Corner::kFF : spice::Corner::kTT;
}
void mutate(uwb::ChannelClass& f) {
  f = f == uwb::ChannelClass::kCm1 ? uwb::ChannelClass::kCm2
                                   : uwb::ChannelClass::kCm1;
}

// Mutates only the target-th visited field, recording its name.
struct FieldMutator {
  int target = 0;
  int index = 0;
  std::string name;
  template <typename F>
  void operator()(const char* field_name, F& f) {
    if (index++ != target) return;
    name = field_name;
    mutate(f);
  }
};

// Every field declared in T's visitor must flip the key of to_json(T).
template <typename T, typename ToJson>
void expect_every_field_keyed(const char* what, ToJson&& to_json_fn) {
  const std::uint64_t base_key = canon::key_of(to_json_fn(T{}));
  const int n = field_count<T>();
  ASSERT_GT(n, 0) << what;
  for (int k = 0; k < n; ++k) {
    T mutated{};
    FieldMutator m{k};
    canon::visit_fields(mutated, m);
    EXPECT_NE(canon::key_of(to_json_fn(mutated)), base_key)
        << what << ": mutating field '" << m.name
        << "' did not change the content key";
  }
}

// Round trip through the canonical JSON must reproduce the mutated value
// exactly (catches a field serialized but mis-parsed, or vice versa).
template <typename T, typename ToJson, typename FromJson>
void expect_every_field_round_trips(const char* what, ToJson&& to_json_fn,
                                    FromJson&& from_json_fn) {
  const int n = field_count<T>();
  for (int k = 0; k < n; ++k) {
    T mutated{};
    FieldMutator m{k};
    canon::visit_fields(mutated, m);
    T back{};
    from_json_fn(to_json_fn(mutated), &back);
    EXPECT_EQ(canon::key_of(to_json_fn(back)),
              canon::key_of(to_json_fn(mutated)))
        << what << ": field '" << m.name << "' did not round-trip";
  }
}

std::string reorder_ws(const std::string& compact) {
  // Re-render with indentation: same document, different bytes.
  return base::parse_json(compact).dump(2);
}

}  // namespace

// ------------------------------------------------- canonical form stability

TEST(CanonicalIdentity, ParseDumpIsByteStable) {
  const std::string once = canon::to_json(uwb::SystemConfig{}).dump(0);
  const std::string twice = base::parse_json(once).dump(0);
  EXPECT_EQ(once, twice);
}

TEST(CanonicalIdentity, WhitespaceAndKeyOrderDoNotChangeTheKey) {
  const base::JsonValue doc = canon::to_json(uwb::SystemConfig{});
  const std::uint64_t key = canon::key_of(doc);
  // Indented re-render parses back to the same canonical document.
  EXPECT_EQ(canon::key_of(base::parse_json(reorder_ws(doc.dump(0)))), key);
  // JsonObject is a sorted map: any insertion order renders identically,
  // so a hand-built document with "reversed" insertion hashes the same.
  base::JsonObject a;
  a["zeta"] = base::JsonValue(1.0);
  a["alpha"] = base::JsonValue(2.0);
  base::JsonObject b;
  b["alpha"] = base::JsonValue(2.0);
  b["zeta"] = base::JsonValue(1.0);
  EXPECT_EQ(base::JsonValue(a).dump(0), base::JsonValue(b).dump(0));
}

// ------------------------------------------------------- completeness pins
//
// Two tripwires per struct: the visitor field count (a field added to the
// visitor updates the pin here deliberately) and sizeof (a field added to
// the *struct* but not the visitor changes sizeof while the count stays —
// the mismatch forces whoever adds the knob to wire it into the visitor).

TEST(CanonicalCompleteness, FieldCountAndSizeofPins) {
  EXPECT_EQ(field_count<uwb::ClockConfig>(), 5);
  EXPECT_EQ(field_count<uwb::SystemConfig>(), 43);
  EXPECT_EQ(field_count<uwb::InterferenceConfig>(), 6);
  EXPECT_EQ(field_count<spice::ModelVariation>(), 8);
  EXPECT_EQ(field_count<spice::ItdSizing>(), 37);
  EXPECT_EQ(field_count<spice::AdaptiveOptions>(), 8);
  EXPECT_EQ(field_count<spice::OpOptions>(), 6);
  EXPECT_EQ(field_count<spice::TransientOptions>(), 15);
  EXPECT_EQ(field_count<core::CharacterizeOptions>(), 7);
  EXPECT_EQ(field_count<uwb::TwrConfig>(), 5);

  EXPECT_EQ(sizeof(uwb::ClockConfig), 40u);
  EXPECT_EQ(sizeof(uwb::SystemConfig), 416u);
  EXPECT_EQ(sizeof(uwb::InterferenceConfig), 48u);
  EXPECT_EQ(sizeof(spice::ModelVariation), 64u);
  EXPECT_EQ(sizeof(spice::ItdSizing), 360u);
  EXPECT_EQ(sizeof(spice::AdaptiveOptions), 64u);
  EXPECT_EQ(sizeof(spice::OpOptions), 64u);
  EXPECT_EQ(sizeof(spice::TransientOptions), 200u);
  EXPECT_EQ(sizeof(core::CharacterizeOptions), 256u);
  EXPECT_EQ(sizeof(uwb::TwrConfig), 536u);
}

// --------------------------------------------------------- mutation suite

TEST(CanonicalMutation, EveryFieldFlipsTheKey) {
  expect_every_field_keyed<uwb::ClockConfig>(
      "ClockConfig", [](const uwb::ClockConfig& c) { return canon::to_json(c); });
  expect_every_field_keyed<uwb::SystemConfig>(
      "SystemConfig",
      [](const uwb::SystemConfig& c) { return canon::to_json(c); });
  expect_every_field_keyed<uwb::InterferenceConfig>(
      "InterferenceConfig",
      [](const uwb::InterferenceConfig& c) { return canon::to_json(c); });
  expect_every_field_keyed<spice::ModelVariation>(
      "ModelVariation",
      [](const spice::ModelVariation& c) { return canon::to_json(c); });
  expect_every_field_keyed<spice::ItdSizing>(
      "ItdSizing", [](const spice::ItdSizing& c) { return canon::to_json(c); });
  expect_every_field_keyed<spice::AdaptiveOptions>(
      "AdaptiveOptions",
      [](const spice::AdaptiveOptions& c) { return canon::to_json(c); });
  expect_every_field_keyed<spice::OpOptions>(
      "OpOptions", [](const spice::OpOptions& c) { return canon::to_json(c); });
  expect_every_field_keyed<spice::TransientOptions>(
      "TransientOptions",
      [](const spice::TransientOptions& c) { return canon::to_json(c); });
  expect_every_field_keyed<core::CharacterizeOptions>(
      "CharacterizeOptions",
      [](const core::CharacterizeOptions& c) { return canon::to_json(c); });
  expect_every_field_keyed<uwb::TwrConfig>(
      "TwrConfig", [](const uwb::TwrConfig& c) { return canon::to_json(c); });
}

TEST(CanonicalMutation, EveryFieldRoundTrips) {
  expect_every_field_round_trips<uwb::SystemConfig>(
      "SystemConfig",
      [](const uwb::SystemConfig& c) { return canon::to_json(c); },
      [](const base::JsonValue& d, uwb::SystemConfig* out) {
        canon::from_json(d, out);
      });
  expect_every_field_round_trips<uwb::InterferenceConfig>(
      "InterferenceConfig",
      [](const uwb::InterferenceConfig& c) { return canon::to_json(c); },
      [](const base::JsonValue& d, uwb::InterferenceConfig* out) {
        canon::from_json(d, out);
      });
  expect_every_field_round_trips<spice::TransientOptions>(
      "TransientOptions",
      [](const spice::TransientOptions& c) { return canon::to_json(c); },
      [](const base::JsonValue& d, spice::TransientOptions* out) {
        canon::from_json(d, out);
      });
  expect_every_field_round_trips<core::CharacterizeOptions>(
      "CharacterizeOptions",
      [](const core::CharacterizeOptions& c) { return canon::to_json(c); },
      [](const base::JsonValue& d, core::CharacterizeOptions* out) {
        canon::from_json(d, out);
      });
  expect_every_field_round_trips<uwb::TwrConfig>(
      "TwrConfig", [](const uwb::TwrConfig& c) { return canon::to_json(c); },
      [](const base::JsonValue& d, uwb::TwrConfig* out) {
        canon::from_json(d, out);
      });
}

TEST(CanonicalMutation, NestedStructsFlipTheParentKey) {
  // Nested sub-objects are serialized by the parent's to_json even though
  // the parent's visitor does not walk them; prove they reach the key.
  uwb::SystemConfig sys;
  const std::uint64_t base_key = canon::key_of(canon::to_json(sys));
  sys.clock.ppm += 1.5;
  EXPECT_NE(canon::key_of(canon::to_json(sys)), base_key);

  uwb::SystemConfig jammed;
  jammed.interference.cw_amplitude = 1e-3;
  EXPECT_NE(canon::key_of(canon::to_json(jammed)), base_key);

  uwb::TwrConfig twr;
  const std::uint64_t twr_key = canon::key_of(canon::to_json(twr));
  twr.clock_b.node_id += 1;
  EXPECT_NE(canon::key_of(canon::to_json(twr)), twr_key);

  spice::ItdSizing sizing;
  const std::uint64_t sz_key = canon::key_of(canon::to_json(sizing));
  sizing.variation.mismatch_seed += 1;
  EXPECT_NE(canon::key_of(canon::to_json(sizing)), sz_key);

  core::CharacterizeOptions ch;
  const std::uint64_t ch_key = canon::key_of(canon::to_json(ch));
  ch.transient.op.max_iterations += 1;
  EXPECT_NE(canon::key_of(canon::to_json(ch)), ch_key);
}

// ------------------------------------------------------------- strictness

TEST(CanonicalStrictness, RejectsUnknownMissingAndMalformed) {
  const base::JsonValue doc = canon::to_json(uwb::ClockConfig{});
  uwb::ClockConfig out;

  base::JsonObject extra = doc.as_object();
  extra["typo_knob"] = base::JsonValue(1.0);
  EXPECT_THROW(canon::from_json(base::JsonValue(extra), &out),
               base::JsonError);

  base::JsonObject missing = doc.as_object();
  missing.erase("ppm");
  EXPECT_THROW(canon::from_json(base::JsonValue(missing), &out),
               base::JsonError);

  base::JsonObject bad_hex = doc.as_object();
  bad_hex["node_id"] = base::JsonValue(std::string("17"));  // no 0x prefix
  EXPECT_THROW(canon::from_json(base::JsonValue(bad_hex), &out),
               base::JsonError);

  base::JsonValue sys_doc = canon::to_json(uwb::SystemConfig{});
  base::JsonObject frac = sys_doc.as_object();
  frac["adc_bits"] = base::JsonValue(3.5);  // int field, non-integral
  uwb::SystemConfig sys_out;
  EXPECT_THROW(canon::from_json(base::JsonValue(frac), &sys_out),
               base::JsonError);
}

TEST(CanonicalStrictness, WorkspaceBearingOptionsRefuseToHash) {
  core::CharacterizeOptions opts;
  linalg::LuFactor<std::complex<double>> ws;
  opts.ac_workspace = &ws;
  EXPECT_THROW(canon::to_json(opts), std::invalid_argument);
}

// ------------------------------------------------------- request identity

TEST(RequestIdentity, WireFormVariationsShareAKey) {
  const std::string canonical_line =
      "{\"schema\":\"uwbams-serve-v1\",\"op\":\"run\",\"scenario\":"
      "\"fig6_ber\",\"scale\":\"fast\",\"seed\":7}";
  const std::string reordered =
      "  { \"seed\": 7 ,  \"scale\": \"fast\",\n"
      "    \"scenario\": \"fig6_ber\", \"op\": \"run\",\n"
      "    \"schema\": \"uwbams-serve-v1\" }  ";
  const std::string hex_seed =
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"fig6_ber\","
      "\"scale\":\"fast\",\"seed\":\"0x0000000000000007\"}";
  const auto a = serve::Request::parse(canonical_line);
  const auto b = serve::Request::parse(reordered);
  const auto c = serve::Request::parse(hex_seed);  // op defaults to run
  EXPECT_EQ(a.content_key(), b.content_key());
  EXPECT_EQ(a.content_key(), c.content_key());
  EXPECT_EQ(a.to_line(), b.to_line());
  EXPECT_EQ(a.to_line(), c.to_line());
}

TEST(RequestIdentity, EveryRequestKnobFlipsTheKey) {
  serve::Request base;
  base.scenario = "fig6_ber";
  const std::uint64_t key = base.content_key();

  serve::Request r = base;
  r.scenario = "mc_itd";
  EXPECT_NE(r.content_key(), key);

  r = base;
  r.scale = runner::Scale::kFull;
  EXPECT_NE(r.content_key(), key);

  r = base;
  r.tier = core::ExactnessTier::kStatEquiv;
  EXPECT_NE(r.content_key(), key);

  r = base;
  r.seed = 2;
  EXPECT_NE(r.content_key(), key);
}

// -------------------------------------------------------- spec round trips

TEST(SpecRoundTrip, EveryRegisteredScenarioSpecRoundTripsExactly) {
  const auto scenarios = runner::ScenarioRegistry::instance().list();
  ASSERT_FALSE(scenarios.empty());
  for (const runner::Scenario* s : scenarios) {
    for (const runner::Scale scale :
         {runner::Scale::kFast, runner::Scale::kDefault}) {
      const runner::ScenarioSpec spec(s->info.name, scale, 12345,
                                      core::ExactnessTier::kBitExact);
      const runner::ScenarioSpec back =
          runner::spec_from_json(runner::spec_to_json(spec));
      EXPECT_TRUE(back == spec) << s->info.name;
      EXPECT_EQ(runner::spec_content_key(back),
                runner::spec_content_key(spec))
          << s->info.name;
    }
  }
}

TEST(SpecRoundTrip, RichSpecRoundTripsExactly) {
  runner::ScenarioSpec spec("fig6_ber", runner::Scale::kFull, 99,
                            core::ExactnessTier::kStatEquiv);
  spec.dt(0.1e-9)
      .distance(7.25)
      .multipath(true)
      .integrator(core::IntegratorKind::kBehavioral)
      .duration(42e-6)
      .ebn0(13.5)
      .axis("ebn0_db", {0.0, 4.0, 8.0})
      .axis("distance", {1.0, 3.0})
      .repetitions(5);
  spec.system().clock.ppm = 17.0;
  const runner::ScenarioSpec back =
      runner::spec_from_json(runner::spec_to_json(spec));
  EXPECT_TRUE(back == spec);
  // Axis declaration order is part of the identity (row-major expansion).
  runner::ScenarioSpec swapped("fig6_ber", runner::Scale::kFull, 99,
                               core::ExactnessTier::kStatEquiv);
  swapped.dt(0.1e-9)
      .distance(7.25)
      .multipath(true)
      .integrator(core::IntegratorKind::kBehavioral)
      .duration(42e-6)
      .ebn0(13.5)
      .axis("distance", {1.0, 3.0})
      .axis("ebn0_db", {0.0, 4.0, 8.0})
      .repetitions(5);
  swapped.system().clock.ppm = 17.0;
  EXPECT_NE(runner::spec_content_key(spec),
            runner::spec_content_key(swapped));
}

TEST(SpecRoundTrip, StrictParseRejectsDrift) {
  const runner::ScenarioSpec spec("fig6_ber");
  base::JsonObject doc =
      runner::spec_to_json_value(spec).as_object();
  doc["surprise"] = base::JsonValue(1.0);
  EXPECT_THROW(runner::spec_from_json(base::JsonValue(doc)),
               base::JsonError);

  base::JsonObject wrong = runner::spec_to_json_value(spec).as_object();
  wrong["schema"] = base::JsonValue(std::string("uwbams-spec-v0"));
  EXPECT_THROW(runner::spec_from_json(base::JsonValue(wrong)),
               base::JsonError);
}

// -------------------------------------------------- pinned reference keys
//
// Like test_faults pins fnv1a64(""): these fail iff the canonical rendering
// itself changes — a renamed field, a changed enum spelling, a kCodeVersion
// bump — all of which invalidate every existing cache entry and must be a
// conscious decision, not a side effect.

TEST(ReferenceVectors, PinnedContentKeys) {
  EXPECT_EQ(base::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(canon::key_of(base::JsonValue(base::JsonObject{})),
            base::fnv1a64("{}"));
  EXPECT_EQ(base::hex_u64(canon::key_of(canon::to_json(uwb::ClockConfig{}))),
            "0x22d580087fdd066f");
  EXPECT_EQ(base::hex_u64(canon::key_of(canon::to_json(uwb::SystemConfig{}))),
            "0x34e5dc2a9cbe93c1");
  EXPECT_EQ(
      base::hex_u64(canon::key_of(canon::to_json(spice::TransientOptions{}))),
      "0x248288238207882a");
  EXPECT_EQ(base::hex_u64(
                runner::spec_content_key(runner::ScenarioSpec("pinned"))),
            "0x8200392562a065e3");
  serve::Request req;
  req.scenario = "pinned";
  EXPECT_EQ(base::hex_u64(req.content_key()), "0xe63c206e5b8eddb1");
}
