// Tests for the dense matrix and LU solver used by the MNA engine.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "base/random.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace uwbams;
using linalg::ComplexMatrix;
using linalg::LuFactor;
using linalg::RealMatrix;

TEST(Matrix, BasicOps) {
  RealMatrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  const auto y = m.multiply({1.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
}

TEST(Matrix, Identity) {
  const auto id = RealMatrix::identity(4);
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_EQ(id.multiply(x), x);
}

TEST(Lu, Solves2x2) {
  RealMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = linalg::solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  RealMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = linalg::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  RealMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactor<double>{a}, std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  RealMatrix a(2, 3);
  EXPECT_THROW(LuFactor<double>{a}, std::invalid_argument);
}

TEST(Lu, ReusableFactorMultipleRhs) {
  RealMatrix a(3, 3);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  a(1, 2) = 1;
  a(2, 1) = 1;
  a(2, 2) = 2;
  LuFactor<double> lu(a);
  for (const auto& b :
       {std::vector<double>{1, 0, 0}, std::vector<double>{0, 1, 0}}) {
    const auto x = lu.solve(b);
    const auto back = a.multiply(x);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-12);
  }
}

TEST(Lu, ComplexSolve) {
  using cd = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = cd{1, 1};
  a(0, 1) = cd{0, 0};
  a(1, 0) = cd{0, 0};
  a(1, 1) = cd{0, 2};
  const auto x = linalg::solve(a, std::vector<cd>{cd{2, 0}, cd{0, 4}});
  EXPECT_NEAR(std::abs(x[0] - cd{1, -1}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - cd{2, 0}), 0.0, 1e-12);
}

// Property sweep: random diagonally-dominant systems of growing size must
// solve to machine-level residual.
class LuRandomSystem : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSystem, ResidualIsTiny) {
  const int n = GetParam();
  base::Rng rng(1000 + static_cast<std::uint64_t>(n));
  RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      const double v = rng.uniform(-1.0, 1.0);
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      row_sum += std::abs(v);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) =
        row_sum + 1.0;  // diagonal dominance
  }
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-10.0, 10.0);
  const auto b = a.multiply(x_true);
  const auto x = linalg::solve(a, b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)],
                1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystem,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Complex property sweep mirroring the AC solve path.
class LuRandomComplex : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomComplex, ResidualIsTiny) {
  using cd = std::complex<double>;
  const int n = GetParam();
  base::Rng rng(2000 + static_cast<std::uint64_t>(n));
  ComplexMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      const cd v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      row_sum += std::abs(v);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) =
        cd{row_sum + 1.0, rng.uniform(-1, 1)};
  }
  std::vector<cd> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = cd{rng.uniform(-5, 5), rng.uniform(-5, 5)};
  const auto b = a.multiply(x_true);
  const auto x = linalg::solve(a, b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x[static_cast<std::size_t>(i)] -
                         x_true[static_cast<std::size_t>(i)]),
                0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomComplex,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

// ---------------------------------------------------------------------------
// Workspace API: factor / refactor (pivot reuse) / solve_in_place.

// Random sparse diagonally-dominant matrix with ~`density` off-diagonal
// fill, plus the pattern describing it.
RealMatrix random_sparse(base::Rng& rng, int n, double density,
                         linalg::SparsityPattern* pattern) {
  RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  *pattern = linalg::SparsityPattern(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      if (rng.uniform(0.0, 1.0) > density) continue;
      const double v = rng.uniform(-1.0, 1.0);
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      pattern->add(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      row_sum += std::abs(v);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) = row_sum + 1.0;
    pattern->add(static_cast<std::size_t>(r), static_cast<std::size_t>(r));
  }
  return a;
}

TEST(LuWorkspace, SolveInPlaceMatchesSolve) {
  base::Rng rng(77);
  linalg::SparsityPattern pat;
  const auto a = random_sparse(rng, 12, 0.4, &pat);
  LuFactor<double> lu;
  lu.factor(a);
  std::vector<double> b(12);
  for (auto& v : b) v = rng.uniform(-3.0, 3.0);
  const auto x1 = lu.solve(b);
  auto x2 = b;
  lu.solve_in_place(x2);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

// The acceptance bar from the issue: reused-pivot refactor solutions agree
// with fresh partial-pivoting LU solutions to 1e-10, across perturbed
// matrices and with/without a sparsity pattern (the pattern path must
// reproduce fill-in exactly).
TEST(LuWorkspace, RefactorMatchesFreshFactorTo1em10) {
  base::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    linalg::SparsityPattern pat;
    const int n = 5 + trial;
    const auto a0 = random_sparse(rng, n, 0.35, &pat);
    const bool with_pattern = (trial % 2) == 0;
    LuFactor<double> lu;
    lu.factor(a0, with_pattern ? &pat : nullptr);
    for (int rep = 0; rep < 5; ++rep) {
      // Perturb values only (structure fixed), then refactor with the
      // frozen pivot order.
      auto a = a0;
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c) {
          auto& v = a(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
          if (v != 0.0) v *= 1.0 + 0.05 * rng.uniform(-1.0, 1.0);
        }
      ASSERT_TRUE(lu.refactor(a));
      std::vector<double> b(static_cast<std::size_t>(n));
      for (auto& v : b) v = rng.uniform(-2.0, 2.0);
      const auto x_reused = lu.solve(b);
      const auto x_fresh = linalg::solve(a, b);
      for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(x_reused[i], x_fresh[i], 1e-10);
    }
  }
}

TEST(LuWorkspace, RefactorDetectsDegradedPivot) {
  // Factor with a dominant (0,0) pivot, then hand refactor() a matrix whose
  // natural pivot order is different: the frozen order must be refused.
  RealMatrix a(2, 2);
  a(0, 0) = 10.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 10.0;
  LuFactor<double> lu;
  lu.factor(a);
  RealMatrix bad = a;
  bad(0, 0) = 1e-9;  // pivot collapses relative to the column below
  EXPECT_FALSE(lu.refactor(bad));
  EXPECT_FALSE(lu.valid());
  EXPECT_GT(lu.pivot_ratio(), 1e3);  // degradation ratio is reported
  // A fresh factorization recovers (different pivot order).
  lu.factor(bad);
  EXPECT_TRUE(lu.valid());
  const auto x = lu.solve({1.0, 2.0});
  const auto back = bad.multiply(x);
  EXPECT_NEAR(back[0], 1.0, 1e-9);
  EXPECT_NEAR(back[1], 2.0, 1e-9);
}

TEST(LuWorkspace, RefactorRejectsShapeMismatch) {
  LuFactor<double> lu;
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  EXPECT_FALSE(lu.refactor(a));  // never factored
  lu.factor(a);
  RealMatrix b(3, 3);
  EXPECT_FALSE(lu.refactor(b));  // size change needs a fresh factor
}

TEST(LuWorkspace, SolveWithoutFactorThrows) {
  LuFactor<double> lu;
  std::vector<double> b{1.0};
  EXPECT_THROW(lu.solve_in_place(b), std::logic_error);
}

}  // namespace
