// Tests for the dense matrix and LU solver used by the MNA engine.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "base/random.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace uwbams;
using linalg::ComplexMatrix;
using linalg::LuFactor;
using linalg::RealMatrix;

TEST(Matrix, BasicOps) {
  RealMatrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  const auto y = m.multiply({1.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
}

TEST(Matrix, Identity) {
  const auto id = RealMatrix::identity(4);
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_EQ(id.multiply(x), x);
}

TEST(Lu, Solves2x2) {
  RealMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = linalg::solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  RealMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = linalg::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  RealMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactor<double>{a}, std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  RealMatrix a(2, 3);
  EXPECT_THROW(LuFactor<double>{a}, std::invalid_argument);
}

TEST(Lu, ReusableFactorMultipleRhs) {
  RealMatrix a(3, 3);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  a(1, 2) = 1;
  a(2, 1) = 1;
  a(2, 2) = 2;
  LuFactor<double> lu(a);
  for (const auto& b :
       {std::vector<double>{1, 0, 0}, std::vector<double>{0, 1, 0}}) {
    const auto x = lu.solve(b);
    const auto back = a.multiply(x);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-12);
  }
}

TEST(Lu, ComplexSolve) {
  using cd = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = cd{1, 1};
  a(0, 1) = cd{0, 0};
  a(1, 0) = cd{0, 0};
  a(1, 1) = cd{0, 2};
  const auto x = linalg::solve(a, std::vector<cd>{cd{2, 0}, cd{0, 4}});
  EXPECT_NEAR(std::abs(x[0] - cd{1, -1}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - cd{2, 0}), 0.0, 1e-12);
}

// Property sweep: random diagonally-dominant systems of growing size must
// solve to machine-level residual.
class LuRandomSystem : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSystem, ResidualIsTiny) {
  const int n = GetParam();
  base::Rng rng(1000 + static_cast<std::uint64_t>(n));
  RealMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      const double v = rng.uniform(-1.0, 1.0);
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      row_sum += std::abs(v);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) =
        row_sum + 1.0;  // diagonal dominance
  }
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-10.0, 10.0);
  const auto b = a.multiply(x_true);
  const auto x = linalg::solve(a, b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)],
                1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystem,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Complex property sweep mirroring the AC solve path.
class LuRandomComplex : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomComplex, ResidualIsTiny) {
  using cd = std::complex<double>;
  const int n = GetParam();
  base::Rng rng(2000 + static_cast<std::uint64_t>(n));
  ComplexMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      const cd v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      row_sum += std::abs(v);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) =
        cd{row_sum + 1.0, rng.uniform(-1, 1)};
  }
  std::vector<cd> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = cd{rng.uniform(-5, 5), rng.uniform(-5, 5)};
  const auto b = a.multiply(x_true);
  const auto x = linalg::solve(a, b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x[static_cast<std::size_t>(i)] -
                         x_true[static_cast<std::size_t>(i)]),
                0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomComplex,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

}  // namespace
