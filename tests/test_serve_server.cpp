// test_serve_server — the unix-socket transport end to end, plus the
// concurrency soak from the server-grade test layer: one server, eight
// client threads, a few hundred mixed requests; every cached response must
// be byte-identical to its cold twin, duplicate in-flight requests must
// coalesce onto one computation, and shutdown must drain cleanly. The file
// runs under ASan+UBSan in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/json.hpp"
#include "base/parallel.hpp"
#include "runner/registry.hpp"
#include "runner/sink.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace uwbams;

namespace {

// A cheap deterministic scenario with a deliberate ~10ms body so concurrent
// duplicate requests genuinely overlap in flight.
REGISTER_SCENARIO(serve_soak_probe, "test", "serve soak probe") {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::string csv = "i,v\n";
  char buf[64];
  for (int i = 0; i < 4; ++i) {
    std::snprintf(buf, sizeof buf, "%d,%llu\n", i,
                  static_cast<unsigned long long>(ctx.seed ^ (0x9e3779b9ULL * i)));
    csv += buf;
  }
  ctx.sink.raw_artifact("soak.csv", csv);
  return 0;
}

std::string socket_path(const char* tag) {
  // sun_path is ~108 bytes; keep well under.
  char buf[96];
  std::snprintf(buf, sizeof buf, "/tmp/uwbams_%s_%d.sock", tag,
                static_cast<int>(::getpid()));
  return buf;
}

std::string run_line(std::uint64_t seed) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"schema\":\"uwbams-serve-v1\",\"scenario\":"
                "\"serve_soak_probe\",\"scale\":\"fast\",\"seed\":%llu}",
                static_cast<unsigned long long>(seed));
  return buf;
}

std::string result_of(const std::string& response) {
  return base::parse_json(response).at("result").dump(0);
}

struct ServerFixture {
  serve::ResultCache cache;
  base::ParallelRunner pool;
  serve::ScenarioService service;
  serve::Server server;

  explicit ServerFixture(const char* tag)
      : cache("", 64),
        pool(2),
        service(cache, pool),
        server(socket_path(tag), service) {
    server.start();
  }
  ~ServerFixture() { server.stop(); }
};

}  // namespace

TEST(Server, PingRunWarmStatsShutdown) {
  ServerFixture fx("basic");
  serve::Client client(fx.server.socket_path());

  const base::JsonValue pong = base::parse_json(
      client.roundtrip("{\"schema\":\"uwbams-serve-v1\",\"op\":\"ping\"}"));
  EXPECT_EQ(pong.at("status").as_string(), "ok");

  const std::string cold = client.roundtrip(run_line(5));
  EXPECT_EQ(base::parse_json(cold).at("cache").as_string(), "miss");
  const std::string warm = client.roundtrip(run_line(5));
  EXPECT_EQ(base::parse_json(warm).at("cache").as_string(), "hit");
  EXPECT_EQ(result_of(warm), result_of(cold));

  const base::JsonValue stats = base::parse_json(client.roundtrip(
      "{\"schema\":\"uwbams-serve-v1\",\"op\":\"stats\"}"));
  EXPECT_EQ(stats.at("stats").at("computations").as_number(), 1.0);
  EXPECT_EQ(stats.at("stats").at("cache_hits").as_number(), 1.0);

  base::parse_json(client.roundtrip(
      "{\"schema\":\"uwbams-serve-v1\",\"op\":\"shutdown\"}"));
  EXPECT_TRUE(fx.service.wait_shutdown_for(2000));
}

TEST(Server, MalformedLineKeepsTheConnectionUsable) {
  ServerFixture fx("robust");
  serve::Client client(fx.server.socket_path());

  const base::JsonValue err =
      base::parse_json(client.roundtrip("this is not json"));
  EXPECT_EQ(err.at("status").as_string(), "error");

  // The same connection still serves well-formed requests.
  const base::JsonValue ok = base::parse_json(client.roundtrip(run_line(9)));
  EXPECT_EQ(ok.at("status").as_string(), "ok");
  EXPECT_EQ(fx.service.stats().errors, 1u);
}

TEST(Server, OversizedRequestIsRefusedNotBuffered) {
  ServerFixture fx("oversize");
  serve::Client client(fx.server.socket_path());
  std::string huge(serve::kMaxRequestBytes + 64, 'x');
  const base::JsonValue err = base::parse_json(client.roundtrip(huge));
  EXPECT_EQ(err.at("status").as_string(), "error");
  // The server closed this connection after refusing; a new one works.
  serve::Client fresh(fx.server.socket_path());
  EXPECT_EQ(base::parse_json(fresh.roundtrip(run_line(3)))
                .at("status")
                .as_string(),
            "ok");
}

TEST(Server, ConcurrentDuplicatesCoalesceToOneComputation) {
  ServerFixture fx("coalesce");
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      serve::Client client(fx.server.socket_path());
      responses[i] = client.roundtrip(run_line(777));
    });
  for (auto& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(base::parse_json(responses[i]).at("status").as_string(), "ok")
        << responses[i];
    EXPECT_EQ(result_of(responses[i]), result_of(responses[0]));
  }
  const auto stats = fx.service.stats();
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.computations + stats.cache_hits + stats.coalesced,
            static_cast<std::uint64_t>(kClients));
}

TEST(Server, SoakMixedColdWarmDuplicateByteIdentity) {
  ServerFixture fx("soak");
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  constexpr std::uint64_t kSeeds = 5;  // 5 distinct keys, heavily repeated

  std::mutex mu;
  std::map<std::uint64_t, std::string> first_seen;  // seed -> result bytes
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      serve::Client client(fx.server.socket_path());
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::uint64_t seed = (t * 31u + i * 7u) % kSeeds;
        const std::string response = client.roundtrip(run_line(seed));
        const base::JsonValue doc = base::parse_json(response);
        if (doc.at("status").as_string() != "ok") {
          ++failures;
          continue;
        }
        const std::string bytes = doc.at("result").dump(0);
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = first_seen.emplace(seed, bytes);
        if (!inserted && it->second != bytes) ++failures;
      }
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(first_seen.size(), kSeeds);

  const auto stats = fx.service.stats();
  // One computation per distinct key, never more: everything else was a
  // cache hit or coalesced onto an in-flight twin.
  EXPECT_EQ(stats.computations, kSeeds);
  EXPECT_EQ(stats.computations + stats.cache_hits + stats.coalesced,
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
  EXPECT_EQ(stats.errors, 0u);

  // Clean shutdown drain.
  serve::Client client(fx.server.socket_path());
  base::parse_json(client.roundtrip(
      "{\"schema\":\"uwbams-serve-v1\",\"op\":\"shutdown\"}"));
  EXPECT_TRUE(fx.service.wait_shutdown_for(2000));
  fx.server.stop();  // idempotent with the fixture destructor
}
