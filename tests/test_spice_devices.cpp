// Device-level tests: stamps checked against closed-form circuit solutions,
// MOSFET region equations, waveform shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "base/units.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::spice;

TEST(Circuit, NodeNamesCaseInsensitiveGround) {
  Circuit c;
  EXPECT_EQ(c.node("0"), 0);
  EXPECT_EQ(c.node("gnd"), 0);
  EXPECT_EQ(c.node("GND"), 0);
  const NodeId a = c.node("A");
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.find_node("missing"), -1);
}

TEST(Circuit, DuplicateDeviceNameRejected) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<Resistor>("R1", a, c.ground(), 1e3);
  EXPECT_THROW(c.add<Resistor>("r1", a, c.ground(), 2e3), std::invalid_argument);
}

TEST(Op, VoltageDivider) {
  Circuit c;
  const NodeId in = c.node("in"), mid = c.node("mid");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(10.0));
  c.add<Resistor>("R1", in, mid, 3e3);
  c.add<Resistor>("R2", mid, c.ground(), 1e3);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, mid), 2.5, 1e-9);
  EXPECT_NEAR(c.voltage_in(r.x, in), 10.0, 1e-9);
}

TEST(Op, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n = c.node("n");
  // 1 mA flowing from ground into n (source from n=- terminal ordering).
  c.add<CurrentSource>("I1", c.ground(), n, Waveform::dc(1e-3));
  c.add<Resistor>("R1", n, c.ground(), 2e3);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, n), 2.0, 1e-9);
}

TEST(Op, VsourceBranchCurrent) {
  Circuit c;
  const NodeId in = c.node("in");
  auto& v = c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(5.0));
  c.add<Resistor>("R1", in, c.ground(), 1e3);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  // Positive branch current flows from + through the source: here the source
  // delivers 5 mA into R1, so the branch current is -5 mA.
  EXPECT_NEAR(v.current_in(r.x), -5e-3, 1e-9);
}

TEST(Op, VcvsGain) {
  Circuit c;
  const NodeId in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(0.5));
  c.add<Vcvs>("E1", out, c.ground(), in, c.ground(), 8.0);
  c.add<Resistor>("RL", out, c.ground(), 1e3);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, out), 4.0, 1e-9);
}

TEST(Op, VccsTransconductance) {
  Circuit c;
  const NodeId in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(1.0));
  // i = gm*v(in) flowing from out to ground => v(out) = -gm*R*v(in).
  c.add<Vccs>("G1", out, c.ground(), in, c.ground(), 2e-3);
  c.add<Resistor>("RL", out, c.ground(), 1e3);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, out), -2.0, 1e-9);
}

TEST(Op, InductorIsDcShort) {
  Circuit c;
  const NodeId in = c.node("in"), mid = c.node("mid");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(1.0));
  c.add<Resistor>("R1", in, mid, 1e3);
  c.add<Inductor>("L1", mid, c.ground(), 1e-6);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, mid), 0.0, 1e-9);
}

TEST(Waveform, PulseShape) {
  const auto w = Waveform::pulse(0.0, 1.8, 10e-9, 1e-9, 2e-9, 5e-9, 20e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(9.9e-9), 0.0);
  EXPECT_NEAR(w.value(10.5e-9), 0.9, 1e-9);     // mid-rise
  EXPECT_DOUBLE_EQ(w.value(13e-9), 1.8);        // flat top
  EXPECT_NEAR(w.value(17e-9), 0.9, 1e-9);       // mid-fall
  EXPECT_DOUBLE_EQ(w.value(19.5e-9), 0.0);      // back to v1
  EXPECT_DOUBLE_EQ(w.value(33e-9), 1.8);        // periodic repeat
}

TEST(Waveform, SineAndPwl) {
  const auto s = Waveform::sine(1.0, 0.5, 1e6);
  EXPECT_NEAR(s.value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.value(0.25e-6), 1.5, 1e-9);
  const auto p = Waveform::pwl({0.0, 1.0, 2.0}, {0.0, 10.0, 10.0});
  EXPECT_NEAR(p.value(0.5), 5.0, 1e-12);
  EXPECT_NEAR(p.value(1.5), 10.0, 1e-12);
  EXPECT_NEAR(p.value(5.0), 10.0, 1e-12);
}

TEST(Waveform, OverrideTakesPrecedence) {
  Circuit c;
  const NodeId n = c.node("n");
  auto& v = c.add<VoltageSource>("V1", n, c.ground(), Waveform::dc(1.0));
  c.add<Resistor>("R1", n, c.ground(), 1.0);
  v.set_override(7.0);
  auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, n), 7.0, 1e-9);
  v.clear_override();
  r = solve_op(c);
  EXPECT_NEAR(c.voltage_in(r.x, n), 1.0, 1e-9);
}

// ---------------------------------------------------------------- MOSFET

Mosfet make_nmos(Circuit& c, double w = 1e-6, double l = 0.18e-6) {
  return Mosfet("M1", c.node("d"), c.node("g"), c.node("s"), c.node("b"),
                builtin_model("nmos"), w, l);
}

TEST(Mosfet, CutoffBelowThreshold) {
  Circuit c;
  const auto m = make_nmos(c);
  const auto e = m.evaluate(1.0, 0.3, 0.0, 0.0);  // vgs < vt0
  EXPECT_EQ(e.region, MosEval::Region::kCutoff);
  EXPECT_DOUBLE_EQ(e.ids, 0.0);
}

TEST(Mosfet, SaturationCurrentMatchesLevel1) {
  Circuit c;
  const auto m = make_nmos(c, 1.8e-6, 0.18e-6);
  const MosModel mod = builtin_model("nmos");
  const double vgs = 0.9, vds = 1.5;
  const auto e = m.evaluate(vds, vgs, 0.0, 0.0);
  EXPECT_EQ(e.region, MosEval::Region::kSaturation);
  const double leff = 0.18e-6 - 2 * mod.ld;
  const double beta = mod.kp * 1.8e-6 / leff;
  const double vov = vgs - mod.vt0;
  const double expect = 0.5 * beta * vov * vov * (1 + mod.lambda * vds);
  EXPECT_NEAR(e.ids, expect, expect * 1e-9);
  EXPECT_NEAR(e.gm, beta * vov * (1 + mod.lambda * vds), e.gm * 1e-9);
}

TEST(Mosfet, TriodeCurrentMatchesLevel1) {
  Circuit c;
  const auto m = make_nmos(c, 1.8e-6, 0.18e-6);
  const MosModel mod = builtin_model("nmos");
  const double vgs = 1.2, vds = 0.2;  // vds < vov
  const auto e = m.evaluate(vds, vgs, 0.0, 0.0);
  EXPECT_EQ(e.region, MosEval::Region::kTriode);
  const double leff = 0.18e-6 - 2 * mod.ld;
  const double beta = mod.kp * 1.8e-6 / leff;
  const double vov = vgs - mod.vt0;
  const double expect =
      beta * (vov * vds - 0.5 * vds * vds) * (1 + mod.lambda * vds);
  EXPECT_NEAR(e.ids, expect, expect * 1e-9);
}

TEST(Mosfet, BodyEffectRaisesThreshold) {
  Circuit c;
  const auto m = make_nmos(c);
  const auto e0 = m.evaluate(1.0, 1.0, 0.0, 0.0);
  // Source 0.5 V above bulk: vsb = 0.5 raises vth.
  const auto e1 = m.evaluate(1.5, 1.5, 0.5, 0.0);
  EXPECT_GT(e1.vth, e0.vth);
  EXPECT_LT(e1.ids, e0.ids);  // same vgs/vds but higher vth
}

TEST(Mosfet, SourceDrainSymmetry) {
  Circuit c;
  const auto m = make_nmos(c);
  const auto fwd = m.evaluate(0.1, 1.0, 0.0, 0.0);
  // Swap drain/source: current magnitude must match (bulk at the low side).
  const auto rev = m.evaluate(0.0, 1.0, 0.1, 0.0);
  EXPECT_NEAR(fwd.ids, rev.ids, std::abs(fwd.ids) * 0.05);
}

TEST(Mosfet, PmosPolarityMirrorsNmos) {
  Circuit c;
  Mosfet p("MP", c.node("d"), c.node("g"), c.node("s"), c.node("b"),
           builtin_model("pmos"), 1e-6, 0.18e-6);
  // Source at 1.8 V (as in a real PMOS), gate 0.9 V, drain 0.5 V.
  const auto e = p.evaluate(0.5, 0.9, 1.8, 1.8);
  EXPECT_EQ(e.region, MosEval::Region::kSaturation);
  EXPECT_GT(e.ids, 0.0);
  EXPECT_GT(e.gm, 0.0);
}

TEST(Mosfet, DiodeConnectedOp) {
  // Vdd -- R -- (d=g) M1 -- gnd: classic bias diode; check the OP current.
  Circuit c;
  const NodeId vdd = c.node("vdd"), n = c.node("n");
  c.add<VoltageSource>("V1", vdd, c.ground(), Waveform::dc(1.8));
  c.add<Resistor>("R1", vdd, n, 748e3);
  c.add<Mosfet>("M1", n, n, c.ground(), c.ground(), builtin_model("nmos"),
                0.36e-6, 0.18e-6);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  const double vn = c.voltage_in(r.x, n);
  EXPECT_GT(vn, 0.45);  // above vt0
  EXPECT_LT(vn, 0.75);
  const double i = (1.8 - vn) / 748e3;
  EXPECT_NEAR(i, 1.7e-6, 0.4e-6);  // the bias-network design current
}

TEST(Mosfet, InverterTransfersRailToRail) {
  Circuit c;
  const NodeId vdd = c.node("vdd"), in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("Vdd", vdd, c.ground(), Waveform::dc(1.8));
  auto& vin = c.add<VoltageSource>("Vin", in, c.ground(), Waveform::dc(0.0));
  c.add<Mosfet>("MN", out, in, c.ground(), c.ground(), builtin_model("nmos"),
                0.36e-6, 0.18e-6);
  c.add<Mosfet>("MP", out, in, vdd, vdd, builtin_model("pmos"), 0.72e-6,
                0.18e-6);
  auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(c.voltage_in(r.x, out), 1.75);  // input low -> output high
  vin.set_override(1.8);
  r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(c.voltage_in(r.x, out), 0.05);  // input high -> output low
}

// Parameterized region sweep: for a grid of (vgs, vds) the reported region
// must satisfy the Level-1 region inequalities and gm/gds must be
// consistent with finite differences of ids.
struct BiasPoint {
  double vgs, vds;
};

class MosfetRegionSweep : public ::testing::TestWithParam<BiasPoint> {};

TEST_P(MosfetRegionSweep, DerivativesMatchFiniteDifference) {
  Circuit c;
  const auto m = make_nmos(c, 2e-6, 0.18e-6);
  const auto [vgs, vds] = GetParam();
  const auto e = m.evaluate(vds, vgs, 0.0, 0.0);
  const double h = 1e-6;
  const auto eg = m.evaluate(vds, vgs + h, 0.0, 0.0);
  const auto ed = m.evaluate(vds + h, vgs, 0.0, 0.0);
  EXPECT_NEAR(e.gm, (eg.ids - e.ids) / h, std::max(1e-9, e.gm * 1e-3));
  EXPECT_NEAR(e.gds, (ed.ids - e.ids) / h, std::max(1e-9, e.gds * 1e-3));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MosfetRegionSweep,
    ::testing::Values(BiasPoint{0.6, 0.05}, BiasPoint{0.6, 0.5},
                      BiasPoint{0.6, 1.5}, BiasPoint{0.9, 0.1},
                      BiasPoint{0.9, 0.9}, BiasPoint{1.2, 0.3},
                      BiasPoint{1.2, 1.7}, BiasPoint{1.8, 0.6}));

}  // namespace
