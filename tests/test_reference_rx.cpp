// Phase-I cross-validation: the independent reference detector must agree
// with theory, and the full AMS chain must agree with the reference — the
// paper's "BER curves perfectly overlapped the Matlab ones" check.
#include <gtest/gtest.h>

#include "core/block_variant.hpp"
#include "uwb/ber.hpp"
#include "uwb/reference_rx.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::uwb;

TEST(ReferenceRx, ErrorFreeAtHighSnr) {
  SystemConfig sys;
  sys.dt = 0.2e-9;
  const auto r = reference_ber(sys, 24.0, 300, 1);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.bits, 300u);
}

TEST(ReferenceRx, MonotoneInSnr) {
  SystemConfig sys;
  sys.dt = 0.2e-9;
  const auto lo = reference_ber(sys, 2.0, 1500, 2);
  const auto mid = reference_ber(sys, 8.0, 1500, 2);
  const auto hi = reference_ber(sys, 14.0, 1500, 2);
  EXPECT_GT(lo.ber(), mid.ber());
  EXPECT_GT(mid.ber(), hi.ber());
}

TEST(ReferenceRx, TracksTheoryWhenBandlimited) {
  // With the reference bandlimited like the chain's VGA, its BER must land
  // near the chi-square Gaussian approximation.
  SystemConfig sys;
  sys.dt = 0.2e-9;
  const double tw = receiver_tw_product(sys);
  for (double ebn0 : {6.0, 10.0}) {
    const auto r = reference_ber(sys, ebn0, 4000, 3, sys.vga_bandwidth);
    const double th = energy_detection_ber_theory(ebn0, tw);
    EXPECT_GT(r.ber(), th / 2.5) << ebn0;
    EXPECT_LT(r.ber(), th * 2.5) << ebn0;
  }
}

TEST(ReferenceRx, PhaseOneCrossValidation) {
  // The paper's Phase-I claim, at reproduction scale: the AMS-chain BER and
  // the reference BER overlap within Monte-Carlo confidence.
  BerConfig cfg;
  cfg.sys.dt = 0.2e-9;
  cfg.sys.multipath = false;
  cfg.sys.distance = 1.0;
  cfg.sys.preamble_symbols = 0;
  cfg.ebn0_db = {8.0};
  cfg.max_bits = 3000;
  cfg.min_errors = 60;
  const auto chain = run_ber_sweep(
      cfg,
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys))[0];
  const auto ref = reference_ber(cfg.sys, 8.0, 4000, 11, cfg.sys.vga_bandwidth);
  // Same detector physics: agreement within ~2x (front-end saturation and
  // quantization differ slightly).
  EXPECT_GT(chain.ber, ref.ber() / 2.0);
  EXPECT_LT(chain.ber, ref.ber() * 2.0);
}

TEST(ReferenceRx, Reproducible) {
  SystemConfig sys;
  sys.dt = 0.2e-9;
  const auto a = reference_ber(sys, 6.0, 500, 9);
  const auto b = reference_ber(sys, 6.0, 500, 9);
  EXPECT_EQ(a.errors, b.errors);
}

}  // namespace
