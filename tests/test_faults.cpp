// Fault-tolerant execution layer (base/faults.hpp, base/parallel.hpp
// tolerant paths, base/checkpoint.hpp, core/montecarlo.hpp integration):
//   * FaultPlan round-trip and strict-parse rejection,
//   * fault decisions are deterministic in the key — the same plan
//     quarantines the same tasks for any --jobs value,
//   * retry semantics: fail_attempts faults clear on retry, persistent
//     faults exhaust retries into structured TaskFailure records,
//   * Monte-Carlo quarantine accounting (placeholder trials, yield
//     denominators, CSV columns) and the satellite fix that a failed
//     characterization captures the exception text,
//   * checkpoint/resume: byte-identical artifacts after full, partial and
//     corrupted-shard resumes, stale-checkpoint rejection, and quarantined
//     tasks being re-attempted (never checkpointed).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/checkpoint.hpp"
#include "base/faults.hpp"
#include "base/json.hpp"
#include "base/parallel.hpp"
#include "core/montecarlo.hpp"

namespace {

namespace fs = std::filesystem;
using namespace uwbams;

// Every test that installs a plan must clear it: the plan is process-wide
// state and would otherwise leak faults into unrelated tests.
class FaultsTest : public ::testing::Test {
 protected:
  void TearDown() override { base::faults::clear(); }
};

base::FaultRule make_rule(const std::string& site, double rate = 1.0) {
  base::FaultRule r;
  r.site = site;
  r.rate = rate;
  return r;
}

base::FaultPlan make_plan(std::vector<base::FaultRule> rules,
                          std::uint64_t seed = 1) {
  base::FaultPlan p;
  p.seed = seed;
  p.rules = std::move(rules);
  return p;
}

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ------------------------------------------------------------- plan parsing

TEST(FaultPlan, JsonRoundTripIsExact) {
  base::FaultRule a = make_rule("runner.task", 0.25);
  a.fail_attempts = 1;
  a.message = "flaky worker";
  base::FaultRule b = make_rule("checkpoint.shard");
  b.abort = true;
  b.fire_after = 4;
  b.max_fires = 2;
  const base::FaultPlan plan = make_plan({a, b}, 77);

  const base::FaultPlan back = base::FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.rules.size(), plan.rules.size());
  EXPECT_EQ(back.rules[0], plan.rules[0]);
  EXPECT_EQ(back.rules[1], plan.rules[1]);
  // Canonical serialization: a second round trip is byte-identical.
  EXPECT_EQ(back.to_json(), plan.to_json());
}

TEST(FaultPlan, StrictParseRejectsMistakes) {
  // Unknown or missing schema.
  EXPECT_THROW(base::FaultPlan::from_json(R"({"rules":[]})"),
               std::runtime_error);
  EXPECT_THROW(
      base::FaultPlan::from_json(R"({"schema":"nope/9","rules":[]})"),
      std::runtime_error);
  const std::string head = R"({"schema":"uwbams.fault_plan/1","rules":[)";
  // Unknown site.
  EXPECT_THROW(
      base::FaultPlan::from_json(head + R"({"site":"bogus.site"}]})"),
      std::runtime_error);
  // Unknown rule key (typo'd plans must fail loudly, not silently no-op).
  EXPECT_THROW(base::FaultPlan::from_json(
                   head + R"({"site":"runner.task","rat":0.5}]})"),
               std::runtime_error);
  // Bad action vocabulary.
  EXPECT_THROW(base::FaultPlan::from_json(
                   head + R"({"site":"runner.task","action":"retry"}]})"),
               std::runtime_error);
  // Out-of-range values.
  EXPECT_THROW(base::FaultPlan::from_json(
                   head + R"({"site":"runner.task","rate":1.5}]})"),
               std::runtime_error);
  EXPECT_THROW(base::FaultPlan::from_json(
                   head + R"({"site":"runner.task","fail_attempts":0}]})"),
               std::runtime_error);
  // A correct minimal plan parses.
  const base::FaultPlan ok =
      base::FaultPlan::from_json(head + R"({"site":"runner.task"}]})");
  ASSERT_EQ(ok.rules.size(), 1u);
  EXPECT_EQ(ok.rules[0].rate, 1.0);
}

TEST(FaultPlan, KnownSitesCoverTheProbedVocabulary) {
  const auto& sites = base::faults::known_sites();
  for (const char* s : {"runner.task", "spice.nonconverge", "sink.write",
                        "net.calibrate", "netscale.measure",
                        "checkpoint.shard"}) {
    bool found = false;
    for (const auto& k : sites) found = found || k == s;
    EXPECT_TRUE(found) << "missing site " << s;
  }
}

TEST(FaultPlan, Fnv1a64MatchesReferenceVectors) {
  EXPECT_EQ(base::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(base::fnv1a64("runner.task"), base::fnv1a64("sink.write"));
}

// -------------------------------------------------------------- fault probes

TEST_F(FaultsTest, ProbeIsNoOpWithoutPlanAndFiresWithOne) {
  EXPECT_FALSE(base::faults::active());
  EXPECT_NO_THROW(base::faults::check("sink.write", 1));
  base::faults::install(make_plan({make_rule("sink.write")}));
  EXPECT_TRUE(base::faults::active());
  EXPECT_THROW(base::faults::check("sink.write", 1), base::FaultInjected);
  EXPECT_NO_THROW(base::faults::check("runner.task", 1));  // other site
  base::faults::clear();
  EXPECT_NO_THROW(base::faults::check("sink.write", 1));
}

TEST_F(FaultsTest, InjectedMessageNamesTheSite) {
  base::FaultRule r = make_rule("net.calibrate");
  r.message = "exchange timed out";
  base::faults::install(make_plan({r}));
  try {
    base::faults::check("net.calibrate", 9);
    FAIL() << "expected FaultInjected";
  } catch (const base::FaultInjected& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exchange timed out"), std::string::npos);
    EXPECT_NE(what.find("[site=net.calibrate]"), std::string::npos);
  }
}

TEST_F(FaultsTest, FailAttemptsGatesOnAttemptScope) {
  base::FaultRule r = make_rule("sink.write");
  r.fail_attempts = 1;  // fire on attempt 0 only
  base::faults::install(make_plan({r}));
  EXPECT_EQ(base::faults::current_attempt(), 0);
  EXPECT_THROW(base::faults::check("sink.write", 5), base::FaultInjected);
  {
    base::faults::AttemptScope retry(1);
    EXPECT_EQ(base::faults::current_attempt(), 1);
    EXPECT_NO_THROW(base::faults::check("sink.write", 5));
  }
  EXPECT_EQ(base::faults::current_attempt(), 0);
  EXPECT_THROW(base::faults::check("sink.write", 5), base::FaultInjected);
}

TEST_F(FaultsTest, FireAfterAndMaxFiresCountMatches) {
  base::FaultRule r = make_rule("checkpoint.shard");
  r.fire_after = 2;
  r.max_fires = 2;
  base::faults::install(make_plan({r}));
  // Matches 1-2 skipped, 3-4 fire, 5+ exhausted.
  EXPECT_NO_THROW(base::faults::check("checkpoint.shard", 0));
  EXPECT_NO_THROW(base::faults::check("checkpoint.shard", 1));
  EXPECT_THROW(base::faults::check("checkpoint.shard", 2),
               base::FaultInjected);
  EXPECT_THROW(base::faults::check("checkpoint.shard", 3),
               base::FaultInjected);
  EXPECT_NO_THROW(base::faults::check("checkpoint.shard", 4));
  EXPECT_NO_THROW(base::faults::check("checkpoint.shard", 5));
}

TEST_F(FaultsTest, AbortRuleExitsLikeAKill) {
  base::FaultRule r = make_rule("checkpoint.shard");
  r.abort = true;
  base::faults::install(make_plan({r}));
  EXPECT_EXIT(base::faults::check("checkpoint.shard", 0),
              ::testing::ExitedWithCode(43), "aborting at site");
}

// ------------------------------------------------- tolerant runner semantics

TEST_F(FaultsTest, SameFaultSetForAnyJobCount) {
  constexpr std::size_t kTasks = 32;
  base::faults::install(make_plan({make_rule("runner.task", 0.5)}, 3));

  // Predict the fired set from the probe itself: the decision depends on
  // (plan seed, site, rule index, key) alone.
  std::set<std::size_t> predicted;
  for (std::size_t i = 0; i < kTasks; ++i) {
    try {
      base::faults::check("runner.task", i);
    } catch (const base::FaultInjected&) {
      predicted.insert(i);
    }
  }
  ASSERT_GT(predicted.size(), 0u) << "pick a plan seed that fires";
  ASSERT_LT(predicted.size(), kTasks) << "pick a plan seed that spares some";

  base::TaskPolicy no_retry;
  no_retry.max_retries = 0;
  for (const int jobs : {1, 8}) {
    const base::ParallelRunner pool(jobs);
    const auto failures =
        pool.for_each_tolerant(kTasks, [](std::size_t) {}, no_retry);
    std::set<std::size_t> fired;
    for (const auto& f : failures) {
      fired.insert(f.index);
      EXPECT_EQ(f.attempts, 1);
      EXPECT_NE(f.reason.find("[site=runner.task]"), std::string::npos);
    }
    EXPECT_EQ(fired, predicted) << "jobs=" << jobs;
  }
}

TEST_F(FaultsTest, RetryClearsAttemptScopedFaults) {
  base::FaultRule r = make_rule("runner.task");
  r.fail_attempts = 1;  // every task fails once, then succeeds
  base::faults::install(make_plan({r}));
  base::TaskPolicy policy;
  policy.max_retries = 1;
  std::vector<int> attempts(6, 0);
  const auto failures = base::ParallelRunner(3).for_each_tolerant(
      attempts.size(),
      [&](std::size_t i) {
        attempts[i] = base::faults::current_attempt() + 1;
      },
      policy);
  EXPECT_TRUE(failures.empty());
  for (const int a : attempts) EXPECT_EQ(a, 2);  // succeeded on the retry
}

TEST_F(FaultsTest, PersistentFaultExhaustsRetriesIntoQuarantine) {
  base::faults::install(make_plan({make_rule("runner.task")}));
  base::TaskPolicy policy;
  policy.max_retries = 2;
  const auto failures = base::ParallelRunner(2).for_each_tolerant(
      4, [](std::size_t) {}, policy);
  ASSERT_EQ(failures.size(), 4u);
  for (std::size_t k = 0; k < failures.size(); ++k) {
    EXPECT_EQ(failures[k].index, k);  // sorted by index
    EXPECT_EQ(failures[k].attempts, 3);
    EXPECT_FALSE(failures[k].reason.empty());
  }
}

TEST(ParallelRunner, ForEachAggregatesMultipleFailures) {
  const base::ParallelRunner pool(4);
  try {
    pool.for_each(8, [](std::size_t i) {
      if (i % 2 == 1) throw std::runtime_error("odd task " +
                                               std::to_string(i));
    });
    FAIL() << "expected aggregate failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 of 8 tasks failed"), std::string::npos);
    EXPECT_NE(what.find("task 1: odd task 1"), std::string::npos);
  }
}

// ------------------------------------------------------- checkpoint journal

TEST(Checkpoint, HexAndHashHelpers) {
  EXPECT_EQ(base::hex_u64(0), "0x0000000000000000");
  EXPECT_EQ(base::hex_u64(0xdeadbeefULL), "0x00000000deadbeef");
  EXPECT_EQ(base::content_hash("abc"), base::fnv1a64("abc"));
  EXPECT_EQ(base::CheckpointStore::shard_name(7), "shard_000007.json");
}

TEST(Checkpoint, RecordResumeAndStaleRejection) {
  const std::string dir = temp_dir("ckpt_unit");
  // Payloads must be JSON: resume re-validates each shard and treats
  // anything unparseable as torn.
  const std::string payload = R"({"value": 1})";
  {
    base::CheckpointStore st(dir, "run-a", 0x123, 3, false);
    EXPECT_EQ(st.completed_count(), 0u);
    st.record(1, payload);
    EXPECT_TRUE(st.completed(1));
    EXPECT_EQ(st.payload(1), payload);
    EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "shard_000001.json"));
  }
  {
    // Resume with a matching identity loads the completed shard.
    base::CheckpointStore st(dir, "run-a", 0x123, 3, true);
    EXPECT_EQ(st.completed_count(), 1u);
    EXPECT_TRUE(st.completed(1));
    EXPECT_FALSE(st.completed(0));
    EXPECT_EQ(st.payload(1), payload);
    EXPECT_EQ(st.payload(0), "");
  }
  // A different content key or task count is a *different run*: rejected.
  EXPECT_THROW(base::CheckpointStore(dir, "run-a", 0x124, 3, true),
               std::runtime_error);
  EXPECT_THROW(base::CheckpointStore(dir, "run-a", 0x123, 4, true),
               std::runtime_error);
  // A fresh (non-resume) open wipes the previous journal.
  {
    base::CheckpointStore st(dir, "run-b", 0x999, 3, false);
    EXPECT_EQ(st.completed_count(), 0u);
  }
  base::CheckpointStore st(dir, "run-b", 0x999, 3, true);
  EXPECT_EQ(st.completed_count(), 0u) << "stale shard survived the wipe";
}

TEST(Checkpoint, ResumeWithoutManifestStartsFresh) {
  const std::string dir = temp_dir("ckpt_fresh");
  base::CheckpointStore st(dir, "run", 1, 2, true);  // nothing to resume
  EXPECT_EQ(st.completed_count(), 0u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest.json"));
}

// -------------------------------------------------- Monte-Carlo integration

core::McConfig small_mc(std::uint64_t seed, int trials) {
  core::McConfig cfg;
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.sigma_scale = 1.0;
  cfg.characterize.points_per_decade = 4;
  cfg.characterize.measure_linear_range = false;
  cfg.characterize.measure_slew = true;
  return cfg;
}

core::McRunOptions ckpt_opts(const std::string& dir, bool resume) {
  core::McRunOptions opts;
  opts.checkpoint_dir = dir;
  opts.resume = resume;
  opts.run_tag = "test_faults|fast|bit_exact";
  return opts;
}

TEST(MonteCarloTrialJson, RoundTripPreservesEveryField) {
  core::McTrial t = core::run_mc_trial(small_mc(5, 1), 0,
                                       core::YieldCriteria{});
  ASSERT_TRUE(t.converged);
  // Exercise the fields a real converged trial leaves at defaults,
  // including a seed above 2^53 (would corrupt as a JSON double).
  t.seed = 0xdeadbeefcafebabeULL;
  t.failure_reason = "it broke";
  t.attempts = 3;
  t.quarantined = true;
  t.ber = 0.015625;

  const core::McTrial back = core::trial_from_json(core::trial_to_json(t));
  EXPECT_EQ(back.index, t.index);
  EXPECT_EQ(back.seed, t.seed);
  EXPECT_EQ(back.corner.process, t.corner.process);
  EXPECT_EQ(back.corner.vdd, t.corner.vdd);
  EXPECT_EQ(back.corner.temp_c, t.corner.temp_c);
  EXPECT_EQ(back.converged, t.converged);
  EXPECT_EQ(back.dc_gain_db, t.dc_gain_db);
  EXPECT_EQ(back.f_pole1, t.f_pole1);
  EXPECT_EQ(back.f_pole2, t.f_pole2);
  EXPECT_EQ(back.unity_gain_freq, t.unity_gain_freq);
  EXPECT_EQ(back.input_linear_range, t.input_linear_range);
  EXPECT_EQ(back.slew_rate, t.slew_rate);
  EXPECT_EQ(back.fit_rms_error_db, t.fit_rms_error_db);
  EXPECT_EQ(back.params.dc_gain_db, t.params.dc_gain_db);
  EXPECT_EQ(back.params.f_pole1, t.params.f_pole1);
  EXPECT_EQ(back.params.f_pole2, t.params.f_pole2);
  EXPECT_EQ(back.params.input_clamp, t.params.input_clamp);
  EXPECT_EQ(back.ber, t.ber);
  EXPECT_EQ(back.violations, t.violations);
  EXPECT_EQ(back.pass, t.pass);
  EXPECT_EQ(back.failure_reason, t.failure_reason);
  EXPECT_EQ(back.attempts, t.attempts);
  EXPECT_EQ(back.quarantined, t.quarantined);
}

TEST_F(FaultsTest, FailedCharacterizationCapturesTheReason) {
  base::FaultRule r = make_rule("spice.nonconverge");
  r.message = "solver diverged";
  base::faults::install(make_plan({r}));
  const core::McTrial t = core::run_mc_trial(small_mc(5, 1), 0,
                                             core::YieldCriteria{});
  EXPECT_FALSE(t.converged);
  EXPECT_FALSE(t.quarantined);  // failed in-task, not quarantined
  EXPECT_NE(t.failure_reason.find("solver diverged"), std::string::npos);
  EXPECT_TRUE(t.violations & core::kViolNoConverge);
  EXPECT_FALSE(t.pass);
}

TEST_F(FaultsTest, McQuarantineIsDeterministicAcrossJobs) {
  const auto cfg = small_mc(11, 8);
  const core::YieldCriteria crit{};
  base::faults::install(make_plan({make_rule("runner.task", 0.5)}, 3));

  core::McRunOptions opts;  // no checkpoint, default policy
  const auto r1 = core::run_monte_carlo(cfg, crit, base::ParallelRunner(1),
                                        opts);
  const auto r8 = core::run_monte_carlo(cfg, crit, base::ParallelRunner(8),
                                        opts);
  ASSERT_GT(r1.summary.quarantined, 0);
  ASSERT_LT(r1.summary.quarantined, cfg.trials);
  EXPECT_EQ(r1.summary.quarantined, r8.summary.quarantined);
  // Quarantined work feeds the yield denominator as no-converge failures.
  EXPECT_GE(r1.summary.fail_no_converge, r1.summary.quarantined);
  EXPECT_EQ(r1.summary.trials, cfg.trials);
  // The artifact CI byte-compares across --jobs stays byte-identical even
  // with injected quarantines.
  const std::string csv1 = core::trials_to_csv(r1.trials);
  EXPECT_EQ(csv1, core::trials_to_csv(r8.trials));
  EXPECT_EQ(core::summary_to_json(r1), core::summary_to_json(r8));
  // Structured failure records surface in the CSV.
  EXPECT_NE(csv1.find("attempts,quarantined,failure_reason"),
            std::string::npos);
  EXPECT_NE(csv1.find("[site=runner.task]"), std::string::npos);
  for (const auto& t : r1.trials) {
    if (!t.quarantined) continue;
    EXPECT_FALSE(t.converged);
    EXPECT_FALSE(t.pass);
    EXPECT_TRUE(t.violations & core::kViolNoConverge);
    EXPECT_EQ(t.attempts, 2);  // default policy: one retry
    EXPECT_FALSE(t.failure_reason.empty());
  }
}

TEST_F(FaultsTest, McRetrySucceedsWithoutQuarantine) {
  base::FaultRule r = make_rule("runner.task");
  r.fail_attempts = 1;
  base::faults::install(make_plan({r}));
  core::McRunOptions opts;
  opts.policy.max_retries = 1;
  const auto res = core::run_monte_carlo(small_mc(7, 3),
                                         core::YieldCriteria{},
                                         base::ParallelRunner(2), opts);
  EXPECT_EQ(res.summary.quarantined, 0);
  EXPECT_EQ(res.summary.fail_no_converge, 0);
  for (const auto& t : res.trials) {
    EXPECT_TRUE(t.converged);
    EXPECT_EQ(t.attempts, 2);  // honest accounting: succeeded on the retry
  }
}

TEST(MonteCarloCheckpoint, ResumeIsByteIdenticalToUninterrupted) {
  const auto cfg = small_mc(11, 4);
  const core::YieldCriteria crit{};
  const base::ParallelRunner serial(1);
  const base::ParallelRunner pool8(8);

  const auto clean = core::run_monte_carlo(cfg, crit, serial);
  const std::string clean_csv = core::trials_to_csv(clean.trials);
  const std::string clean_json = core::summary_to_json(clean);

  // A checkpointing run changes no bytes of the artifacts.
  const std::string dir = temp_dir("mc_ckpt");
  const auto fresh =
      core::run_monte_carlo(cfg, crit, pool8, ckpt_opts(dir, false));
  EXPECT_EQ(core::trials_to_csv(fresh.trials), clean_csv);
  EXPECT_EQ(core::summary_to_json(fresh), clean_json);

  // Fully-checkpointed resume (different job count than the writer).
  const auto resumed =
      core::run_monte_carlo(cfg, crit, serial, ckpt_opts(dir, true));
  EXPECT_EQ(core::trials_to_csv(resumed.trials), clean_csv);
  EXPECT_EQ(core::summary_to_json(resumed), clean_json);

  // Partial checkpoint: a missing shard and a torn (garbage) shard are
  // recomputed, still byte-identical.
  fs::remove(fs::path(dir) / base::CheckpointStore::shard_name(1));
  {
    std::ofstream torn(fs::path(dir) / base::CheckpointStore::shard_name(2),
                       std::ios::trunc);
    torn << "{ not json";
  }
  const auto partial =
      core::run_monte_carlo(cfg, crit, pool8, ckpt_opts(dir, true));
  EXPECT_EQ(core::trials_to_csv(partial.trials), clean_csv);
  EXPECT_EQ(core::summary_to_json(partial), clean_json);
}

TEST(MonteCarloCheckpoint, StaleCheckpointIsRejectedOnResume) {
  const auto cfg = small_mc(11, 2);
  const core::YieldCriteria crit{};
  const base::ParallelRunner serial(1);
  const std::string dir = temp_dir("mc_stale");
  (void)core::run_monte_carlo(cfg, crit, serial, ckpt_opts(dir, false));

  // Different seed -> different content key -> different run: resuming
  // against the old journal must throw, never mix results.
  EXPECT_THROW(core::run_monte_carlo(small_mc(12, 2), crit, serial,
                                     ckpt_opts(dir, true)),
               std::runtime_error);
  // Different run tag (scenario|scale|tier) is a different run too.
  auto other_tag = ckpt_opts(dir, true);
  other_tag.run_tag = "test_faults|fast|stat_equiv";
  EXPECT_THROW(core::run_monte_carlo(cfg, crit, serial, other_tag),
               std::runtime_error);
  // The matching identity still resumes fine.
  EXPECT_NO_THROW(core::run_monte_carlo(cfg, crit, serial,
                                        ckpt_opts(dir, true)));
}

TEST_F(FaultsTest, QuarantinedTasksAreReattemptedOnResume) {
  const auto cfg = small_mc(21, 8);
  const core::YieldCriteria crit{};
  const base::ParallelRunner serial(1);

  const auto clean = core::run_monte_carlo(cfg, crit, serial);
  const std::string clean_csv = core::trials_to_csv(clean.trials);

  // First pass with injected task failures: the survivors checkpoint,
  // the quarantined tasks must NOT (their placeholders are not results).
  const std::string dir = temp_dir("mc_requar");
  base::faults::install(make_plan({make_rule("runner.task", 0.5)}, 3));
  const auto faulted =
      core::run_monte_carlo(cfg, crit, serial, ckpt_opts(dir, false));
  ASSERT_GT(faulted.summary.quarantined, 0);
  ASSERT_LT(faulted.summary.quarantined, cfg.trials);
  for (const auto& t : faulted.trials) {
    const bool shard_exists = fs::exists(
        fs::path(dir) /
        base::CheckpointStore::shard_name(static_cast<std::size_t>(t.index)));
    EXPECT_EQ(shard_exists, !t.quarantined) << "trial " << t.index;
  }

  // Second pass with the fault gone (a transient outage healed): resume
  // re-attempts exactly the quarantined tasks and the final artifact is
  // byte-identical to a run that never failed.
  base::faults::clear();
  const auto healed =
      core::run_monte_carlo(cfg, crit, serial, ckpt_opts(dir, true));
  EXPECT_EQ(healed.summary.quarantined, 0);
  EXPECT_EQ(core::trials_to_csv(healed.trials), clean_csv);
  EXPECT_EQ(core::summary_to_json(healed), core::summary_to_json(clean));
}

}  // namespace
