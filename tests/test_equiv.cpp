// Mutation self-tests of the statistical-equivalence harness (core/equiv):
// the gate behind the stat_equiv tier is only trustworthy if we can show it
// *rejects* — an identical run must pass every check, and an injected
// perturbation of each check kind (BER count, fitted scalar, Monte-Carlo
// population) must fail exactly that check. Also pins the artifact's
// canonical serialization: a JSON round-trip must be byte-stable, and a
// schema or scenario mismatch must be an error, not a silent pass.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/json.hpp"
#include "core/equiv.hpp"

namespace {

using namespace uwbams;
using core::EquivReport;
using core::ExactnessTier;
using core::StatArtifact;

// A representative artifact: one check of each kind, with the kinds of
// values the real scenarios emit (a BER point, a fitted pole, a trial
// population).
StatArtifact make_artifact() {
  StatArtifact art("fig6_ber", "fast");
  art.add_ber("ber:eldo@12dB", 37, 2000);
  art.add_scalar("f_pole1_hz", 0.886e6, 0.02);
  std::vector<double> gains;
  for (int i = 0; i < 40; ++i) gains.push_back(20.0 + 0.05 * (i % 11));
  art.add_sample("gain_db", gains);
  return art;
}

bool check_passed(const EquivReport& rep, const std::string& name) {
  for (const auto& c : rep.checks)
    if (c.name == name) return c.passed;
  ADD_FAILURE() << "check '" << name << "' missing from report";
  return false;
}

TEST(EquivGate, IdenticalRunPassesEveryCheck) {
  const auto rep = core::compare_stats(make_artifact(), make_artifact());
  EXPECT_TRUE(rep.passed);
  ASSERT_EQ(rep.checks.size(), 3u);
  for (const auto& c : rep.checks) EXPECT_TRUE(c.passed) << c.name;
}

TEST(EquivGate, PerturbedBerCountFails) {
  // 37/2000 vs 110/2000: the Wilson 95% intervals are disjoint — a ~3x
  // error-rate shift must not slip through the binomial check.
  auto cand = make_artifact();
  cand.add_ber("ber:eldo@12dB", 110, 2000);
  const auto rep = core::compare_stats(make_artifact(), cand);
  EXPECT_FALSE(rep.passed);
  EXPECT_FALSE(check_passed(rep, "ber:eldo@12dB"));
  EXPECT_TRUE(check_passed(rep, "f_pole1_hz"));
  EXPECT_TRUE(check_passed(rep, "gain_db"));
}

TEST(EquivGate, BerWithinStatisticalNoisePasses) {
  // 37 vs 45 errors out of 2000 is well inside the shared Wilson CI: the
  // gate must tolerate seed-level noise or stat_equiv is bit_exact in
  // disguise.
  auto cand = make_artifact();
  cand.add_ber("ber:eldo@12dB", 45, 2000);
  EXPECT_TRUE(core::compare_stats(make_artifact(), cand).passed);
}

TEST(EquivGate, OutOfToleranceScalarFails) {
  // The golden carries rel_tol = 2%; a 5% pole shift must fail, and the
  // tolerance must come from the golden side (the candidate cannot loosen
  // its own gate).
  auto cand = make_artifact();
  cand.add_scalar("f_pole1_hz", 0.886e6 * 1.05, /*rel_tol=*/1.0);
  const auto rep = core::compare_stats(make_artifact(), cand);
  EXPECT_FALSE(rep.passed);
  EXPECT_FALSE(check_passed(rep, "f_pole1_hz"));
  EXPECT_TRUE(check_passed(rep, "ber:eldo@12dB"));
}

TEST(EquivGate, ScalarInsideToleranceChecksPass) {
  auto cand = make_artifact();
  cand.add_scalar("f_pole1_hz", 0.886e6 * 1.01, 0.02);
  EXPECT_TRUE(core::compare_stats(make_artifact(), cand).passed);
}

TEST(EquivGate, ShiftedPopulationFailsKs) {
  // A constant ToA-offset-style shift of the whole population: every CDF
  // point moves, KS D -> ~1, the sample check must reject.
  auto cand = make_artifact();
  std::vector<double> shifted;
  for (int i = 0; i < 40; ++i) shifted.push_back(21.5 + 0.05 * (i % 11));
  cand.add_sample("gain_db", shifted);
  const auto rep = core::compare_stats(make_artifact(), cand);
  EXPECT_FALSE(rep.passed);
  EXPECT_FALSE(check_passed(rep, "gain_db"));
}

TEST(EquivGate, MissingOrExtraChecksFail) {
  // The golden's check set is part of the contract: dropping a check (an
  // optimization that silently stops measuring something) fails, as does
  // inventing one the golden never pinned.
  StatArtifact fewer("fig6_ber", "fast");
  fewer.add_ber("ber:eldo@12dB", 37, 2000);
  fewer.add_scalar("f_pole1_hz", 0.886e6, 0.02);
  EXPECT_FALSE(core::compare_stats(make_artifact(), fewer).passed);
  auto extra = make_artifact();
  extra.add_scalar("made_up", 1.0, 0.1);
  EXPECT_FALSE(core::compare_stats(make_artifact(), extra).passed);
}

TEST(EquivGate, ScenarioMismatchFails) {
  StatArtifact other("yield_report", "fast");
  other.add_ber("ber:eldo@12dB", 37, 2000);
  other.add_scalar("f_pole1_hz", 0.886e6, 0.02);
  std::vector<double> gains;
  for (int i = 0; i < 40; ++i) gains.push_back(20.0 + 0.05 * (i % 11));
  other.add_sample("gain_db", gains);
  const auto rep = core::compare_stats(make_artifact(), other);
  EXPECT_FALSE(rep.passed);
  EXPECT_FALSE(check_passed(rep, "scenario"));
}

TEST(EquivGate, KindMismatchFails) {
  auto cand = make_artifact();
  cand.add_scalar("ber:eldo@12dB", 0.0185, 0.1);  // was a ber check
  EXPECT_FALSE(core::compare_stats(make_artifact(), cand).passed);
}

TEST(EquivGate, EmptyReportIsAFailure) {
  // Two empty artifacts share zero checks; "nothing was compared" must not
  // read as a pass.
  StatArtifact a("s", "fast"), b("s", "fast");
  EXPECT_FALSE(core::compare_stats(a, b).passed);
}

TEST(StatArtifactJson, RoundTripIsByteStable) {
  const auto art = make_artifact();
  const std::string once = art.to_json();
  const std::string twice = StatArtifact::from_json(once).to_json();
  EXPECT_EQ(once, twice);  // canonical form: refreshed goldens diff cleanly
}

TEST(StatArtifactJson, RoundTripPreservesEveryCheck) {
  const auto art = StatArtifact::from_json(make_artifact().to_json());
  EXPECT_EQ(art.scenario(), "fig6_ber");
  EXPECT_EQ(art.scale(), "fast");
  const auto rep = core::compare_stats(make_artifact(), art);
  EXPECT_TRUE(rep.passed);
  EXPECT_EQ(rep.checks.size(), 3u);
}

TEST(StatArtifactJson, SchemaMismatchThrows) {
  auto text = make_artifact().to_json();
  const auto pos = text.find("uwbams-golden-stats-v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 22, "uwbams-golden-stats-v9");
  EXPECT_THROW(StatArtifact::from_json(text), base::JsonError);
}

TEST(ExactnessTierNames, ParseAndPrintAgree) {
  ExactnessTier t = ExactnessTier::kBitExact;
  EXPECT_TRUE(core::parse_exactness_tier("stat_equiv", &t));
  EXPECT_EQ(t, ExactnessTier::kStatEquiv);
  EXPECT_TRUE(core::parse_exactness_tier("BIT_EXACT", &t));
  EXPECT_EQ(t, ExactnessTier::kBitExact);
  EXPECT_FALSE(core::parse_exactness_tier("exactish", &t));
  EXPECT_STREQ(core::to_string(ExactnessTier::kStatEquiv), "stat_equiv");
}

}  // namespace
