// Integration tests of the two-way ranging engine (Table 2 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "base/parallel.hpp"
#include "core/block_variant.hpp"
#include "uwb/ranging.hpp"

namespace {

using namespace uwbams;

uwb::TwrConfig fast_cfg() {
  uwb::TwrConfig cfg;
  cfg.sys.dt = 0.2e-9;
  return cfg;
}

TEST(Twr, SingleExchangeIdealIntegrator) {
  auto cfg = fast_cfg();
  uwb::TwoWayRanging twr(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                         cfg.sys));
  const auto it = twr.run_iteration(/*channel_seed=*/1, /*noise_seed=*/18);
  ASSERT_TRUE(it.ok);
  EXPECT_NEAR(it.distance_estimate, 9.9, 1.5);
  EXPECT_LT(std::abs(it.toa_bias_a), 8e-9);
  EXPECT_LT(std::abs(it.toa_bias_b), 8e-9);
}

TEST(Twr, ReproducibleWithSameSeeds) {
  auto cfg = fast_cfg();
  uwb::TwoWayRanging twr(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                         cfg.sys));
  const auto a = twr.run_iteration(3, 5);
  const auto b = twr.run_iteration(3, 5);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_DOUBLE_EQ(a.distance_estimate, b.distance_estimate);
}

TEST(Twr, FixedChannelStatsAreTight) {
  // Paper mode: one CM1 realization, noise re-drawn -> small spread.
  // The realization is drawn from the derive_seed channel sub-stream (the
  // PR-5 re-seeding; an intentional Table-2 baseline change): seed 2 gives
  // a representative LOS realization — per-realization leading-edge bias
  // can reach several meters on unlucky dispersed draws, which is physics,
  // not spread.
  auto cfg = fast_cfg();
  cfg.sys.seed = 2;
  cfg.iterations = 4;
  uwb::TwoWayRanging twr(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                         cfg.sys));
  const auto res = twr.run();
  EXPECT_EQ(res.failures, 0);
  EXPECT_NEAR(res.mean(), 9.9, 1.2);
  EXPECT_LT(res.stddev(), 0.5);
}

TEST(Twr, DistanceScalesWithTruth) {
  auto cfg = fast_cfg();
  const auto fact =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);
  cfg.sys.distance = 6.0;
  uwb::TwoWayRanging twr6(cfg, fact);
  const auto d6 = twr6.run_iteration(2, 31);
  cfg.sys.distance = 12.0;
  uwb::TwoWayRanging twr12(cfg, fact);
  const auto d12 = twr12.run_iteration(2, 31);
  ASSERT_TRUE(d6.ok);
  ASSERT_TRUE(d12.ok);
  EXPECT_NEAR(d12.distance_estimate - d6.distance_estimate, 6.0, 1.5);
}

TEST(Twr, ShardedRunIsBitIdenticalToSerial) {
  // table2_twr fans iterations across the pool with the per-iteration
  // seeds fixed up front (TwrConfig::channel_seed / noise_seed, both
  // derive_seed sub-streams): any job count must reproduce the serial
  // run() loop bit for bit.
  auto cfg = fast_cfg();
  cfg.sys.seed = 2;
  cfg.iterations = 4;
  uwb::TwoWayRanging twr(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                         cfg.sys));
  const auto serial = twr.run();

  base::ParallelRunner pool(8);
  const auto sharded = pool.map<uwb::TwrIteration>(
      static_cast<std::size_t>(cfg.iterations), [&](std::size_t i) {
        const int rep = static_cast<int>(i);
        uwb::TwoWayRanging worker(
            cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                               cfg.sys));
        return worker.run_iteration(cfg.channel_seed(rep),
                                    cfg.noise_seed(rep));
      });
  ASSERT_EQ(serial.iterations.size(), sharded.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(serial.iterations[i].ok, sharded[i].ok);
    EXPECT_EQ(serial.iterations[i].distance_estimate,
              sharded[i].distance_estimate);
    EXPECT_EQ(serial.iterations[i].toa_bias_a, sharded[i].toa_bias_a);
    EXPECT_EQ(serial.iterations[i].toa_bias_b, sharded[i].toa_bias_b);
  }
}

TEST(TwrResult, StatsHelpers) {
  uwb::TwrResult r;
  for (double d : {10.0, 10.2, 9.8}) {
    uwb::TwrIteration it;
    it.ok = true;
    it.distance_estimate = d;
    r.iterations.push_back(it);
  }
  uwb::TwrIteration bad;  // failures excluded from the statistics
  r.iterations.push_back(bad);
  r.failures = 1;
  EXPECT_NEAR(r.mean(), 10.0, 1e-12);
  EXPECT_NEAR(r.variance(), 0.04, 1e-12);
  EXPECT_NEAR(r.stddev(), 0.2, 1e-12);
}

}  // namespace
