// Monte-Carlo / corner characterization pipeline (core/montecarlo.hpp,
// spice/model_card.hpp corner+mismatch layer):
//   * corner-card round-trip and shift directions per corner,
//   * mismatch determinism (seed+name -> card, independent of build order),
//   * a nominal-corner trial reproduces characterize_itd() bit for bit,
//   * run_monte_carlo is bit-identical across worker counts and re-runs,
//   * yield judging and artifact rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/parallel.hpp"
#include "base/stats.hpp"
#include "core/characterize.hpp"
#include "core/montecarlo.hpp"
#include "spice/model_card.hpp"

namespace {

using namespace uwbams;
using spice::Corner;
using spice::ModelVariation;
using spice::MosModel;

TEST(CornerCard, RoundTripAllCorners) {
  std::size_t n = 0;
  const Corner* corners = spice::all_corners(&n);
  ASSERT_EQ(n, 5u);
  for (std::size_t i = 0; i < n; ++i) {
    Corner parsed;
    ASSERT_TRUE(spice::parse_corner(spice::to_string(corners[i]), &parsed));
    EXPECT_EQ(parsed, corners[i]);
  }
  Corner c;
  EXPECT_TRUE(spice::parse_corner("ss", &c));  // case-insensitive
  EXPECT_EQ(c, Corner::kSS);
  EXPECT_TRUE(spice::parse_corner("fS", &c));
  EXPECT_EQ(c, Corner::kFS);
  EXPECT_FALSE(spice::parse_corner("XX", &c));
  EXPECT_FALSE(spice::parse_corner("", &c));
}

TEST(CornerCard, NominalVariationIsIdentity) {
  const ModelVariation nominal;
  ASSERT_TRUE(nominal.is_nominal());
  for (const char* name : {"nmos", "pmos", "nmos_lv", "pmos_lv"}) {
    const MosModel base = spice::builtin_model(name);
    const MosModel out = nominal.apply(base, "M1", 1e-6, 0.18e-6);
    EXPECT_EQ(out.vt0, base.vt0);
    EXPECT_EQ(out.kp, base.kp);
    EXPECT_EQ(out.gamma, base.gamma);
    EXPECT_EQ(out.lambda, base.lambda);
    EXPECT_EQ(out.tox, base.tox);
    EXPECT_EQ(out.cj, base.cj);
  }
}

TEST(CornerCard, CornerShiftDirections) {
  const MosModel n = spice::builtin_model("nmos");
  const MosModel p = spice::builtin_model("pmos");
  auto at = [&](Corner corner, const MosModel& base) {
    ModelVariation v;
    v.corner = corner;
    return v.apply(base, "M1", 1e-6, 0.18e-6);
  };
  // FF: both devices fast — smaller |vt0|, larger kp.
  EXPECT_LT(at(Corner::kFF, n).vt0, n.vt0);
  EXPECT_GT(at(Corner::kFF, n).kp, n.kp);
  EXPECT_GT(at(Corner::kFF, p).vt0, p.vt0);  // -0.48 -> closer to 0
  EXPECT_GT(at(Corner::kFF, p).kp, p.kp);
  // SS: both slow.
  EXPECT_GT(at(Corner::kSS, n).vt0, n.vt0);
  EXPECT_LT(at(Corner::kSS, n).kp, n.kp);
  EXPECT_LT(at(Corner::kSS, p).vt0, p.vt0);
  EXPECT_LT(at(Corner::kSS, p).kp, p.kp);
  // FS: fast nMOS, slow pMOS; SF the mirror.
  EXPECT_LT(at(Corner::kFS, n).vt0, n.vt0);
  EXPECT_LT(at(Corner::kFS, p).vt0, p.vt0);
  EXPECT_GT(at(Corner::kSF, n).vt0, n.vt0);
  EXPECT_GT(at(Corner::kSF, p).vt0, p.vt0);
  // TT at reference temperature stays put.
  EXPECT_EQ(at(Corner::kTT, n).vt0, n.vt0);
}

TEST(CornerCard, TemperatureShifts) {
  const MosModel n = spice::builtin_model("nmos");
  ModelVariation hot;
  hot.temp_c = 85.0;
  ASSERT_FALSE(hot.is_nominal());
  const MosModel h = hot.apply(n, "M1", 1e-6, 0.18e-6);
  EXPECT_LT(h.kp, n.kp);    // mobility degrades
  EXPECT_LT(h.vt0, n.vt0);  // threshold magnitude drops
  ModelVariation cold;
  cold.temp_c = -40.0;
  const MosModel c = cold.apply(n, "M1", 1e-6, 0.18e-6);
  EXPECT_GT(c.kp, n.kp);
  EXPECT_GT(c.vt0, n.vt0);
}

TEST(CornerCard, MismatchIsDeterministicPerDeviceName) {
  const MosModel base = spice::builtin_model("nmos");
  ModelVariation v;
  v.sigma_scale = 1.0;
  v.mismatch_seed = 7;
  const MosModel a1 = v.apply(base, "M1", 1e-6, 0.18e-6);
  const MosModel a2 = v.apply(base, "M1", 1e-6, 0.18e-6);
  EXPECT_EQ(a1.vt0, a2.vt0);  // same seed + name -> same card, any order
  EXPECT_EQ(a1.kp, a2.kp);
  const MosModel b = v.apply(base, "M2", 1e-6, 0.18e-6);
  EXPECT_NE(a1.vt0, b.vt0);  // streams are per device
  ModelVariation w = v;
  w.mismatch_seed = 8;
  EXPECT_NE(w.apply(base, "M1", 1e-6, 0.18e-6).vt0, a1.vt0);
  // Pelgrom scaling: a 100x larger device draws a 10x smaller sigma, so
  // its |delta| is smaller for the same stream.
  const MosModel big = v.apply(base, "M1", 100e-6, 0.18e-6);
  EXPECT_LT(std::abs(big.vt0 - base.vt0), std::abs(a1.vt0 - base.vt0) + 1e-12);
}

TEST(Quantiles, SummarizeKnownSample) {
  const auto q = base::summarize_quantiles({5, 1, 3, 2, 4});
  EXPECT_EQ(q.count, 5u);
  EXPECT_DOUBLE_EQ(q.mean, 3.0);
  EXPECT_DOUBLE_EQ(q.min, 1.0);
  EXPECT_DOUBLE_EQ(q.max, 5.0);
  EXPECT_DOUBLE_EQ(q.p50, 3.0);
  // Degenerate inputs are well-defined (see test_base for the full edge
  // coverage): empty -> all-zero summary with count 0.
  EXPECT_EQ(base::summarize_quantiles({}).count, 0u);
}

TEST(Corners, StandardCornerSet) {
  const auto corners = core::standard_corners(1.8, 0.05, -40.0, 85.0);
  ASSERT_EQ(corners.size(), 5u);
  EXPECT_EQ(corners[0].process, Corner::kTT);
  EXPECT_DOUBLE_EQ(corners[0].vdd, 1.8);
  EXPECT_GT(corners[1].vdd, 1.8);       // FF overvolted...
  EXPECT_DOUBLE_EQ(corners[1].temp_c, -40.0);  // ...and cold
  EXPECT_LT(corners[2].vdd, 1.8);       // SS undervolted...
  EXPECT_DOUBLE_EQ(corners[2].temp_c, 85.0);   // ...and hot
  EXPECT_EQ(core::PvtCorner{}.label(), "TT @ 1.80 V / 27 C");
}

// The nominal-corner trial must be *the same measurement* as today's
// characterize_itd(): same circuit, same sweep, same transients — bit for
// bit. This pins the statistical layer to the historical flow.
TEST(MonteCarlo, NominalTrialReproducesCharacterizeItdBitForBit) {
  const auto ch = core::characterize_itd();
  core::McConfig cfg;
  cfg.sigma_scale = 0.0;  // nominal corner, no mismatch
  const auto trial = core::run_mc_trial(cfg, 0, core::YieldCriteria{});
  ASSERT_TRUE(trial.converged);
  EXPECT_EQ(trial.dc_gain_db, ch.ac.dc_gain_db);
  EXPECT_EQ(trial.f_pole1, ch.ac.f_pole1);
  EXPECT_EQ(trial.f_pole2, ch.ac.f_pole2);
  EXPECT_EQ(trial.unity_gain_freq, ch.unity_gain_freq);
  EXPECT_EQ(trial.input_linear_range, ch.input_linear_range);
  EXPECT_EQ(trial.slew_rate, ch.slew_rate);
  EXPECT_EQ(trial.params.dc_gain_db, ch.ac.dc_gain_db);
  EXPECT_EQ(trial.params.input_clamp, ch.input_linear_range);
}

// Small-but-real Monte-Carlo config: coarse AC grid, no linear-range
// search, mismatch on.
core::McConfig small_mc(std::uint64_t seed, int trials) {
  core::McConfig cfg;
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.sigma_scale = 1.0;
  cfg.characterize.points_per_decade = 4;
  cfg.characterize.measure_linear_range = false;
  cfg.characterize.measure_slew = true;
  return cfg;
}

void expect_trials_identical(const std::vector<core::McTrial>& a,
                             const std::vector<core::McTrial>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].corner.process, b[i].corner.process);
    EXPECT_EQ(a[i].converged, b[i].converged);
    EXPECT_EQ(a[i].dc_gain_db, b[i].dc_gain_db);
    EXPECT_EQ(a[i].f_pole1, b[i].f_pole1);
    EXPECT_EQ(a[i].f_pole2, b[i].f_pole2);
    EXPECT_EQ(a[i].slew_rate, b[i].slew_rate);
    EXPECT_EQ(a[i].ber, b[i].ber);
    EXPECT_EQ(a[i].violations, b[i].violations);
  }
}

TEST(MonteCarlo, BitIdenticalAcrossJobsAndReruns) {
  const auto cfg = small_mc(11, 4);
  const core::YieldCriteria criteria{};
  const base::ParallelRunner serial(1);
  const base::ParallelRunner pool8(8);
  const auto r1 = core::run_monte_carlo(cfg, criteria, serial);
  const auto r8 = core::run_monte_carlo(cfg, criteria, pool8);
  expect_trials_identical(r1.trials, r8.trials);
  EXPECT_EQ(core::trials_to_csv(r1.trials), core::trials_to_csv(r8.trials));

  const auto r1b = core::run_monte_carlo(cfg, criteria, serial);
  expect_trials_identical(r1.trials, r1b.trials);

  // A different base seed must actually change the draws.
  const auto other =
      core::run_monte_carlo(small_mc(12, 4), criteria, serial);
  bool any_differs = false;
  for (std::size_t i = 0; i < other.trials.size(); ++i)
    any_differs |= other.trials[i].dc_gain_db != r1.trials[i].dc_gain_db;
  EXPECT_TRUE(any_differs);
}

TEST(MonteCarlo, MismatchSpreadsParameters) {
  const auto r = core::run_monte_carlo(small_mc(3, 4), core::YieldCriteria{},
                                       base::ParallelRunner(2));
  ASSERT_EQ(r.summary.trials, 4);
  ASSERT_EQ(r.summary.fail_no_converge, 0);
  EXPECT_GT(r.summary.gain_db.max, r.summary.gain_db.min);
  // The spread stays physical: mismatch moves gain by fractions of a dB
  // to a few dB, not tens.
  EXPECT_LT(r.summary.gain_db.max - r.summary.gain_db.min, 10.0);
}

TEST(MonteCarlo, CornerSamplingDrawsFromTheCornerSet) {
  auto cfg = small_mc(5, 6);
  cfg.sample_corners = true;
  const auto r = core::run_monte_carlo(cfg, core::YieldCriteria{},
                                       base::ParallelRunner(2));
  bool non_tt = false;
  for (const auto& t : r.trials) non_tt |= t.corner.process != Corner::kTT;
  EXPECT_TRUE(non_tt) << "corner sampling never left TT in 6 draws";
}

TEST(MonteCarlo, BerPropagationRuns) {
  auto cfg = small_mc(9, 1);
  cfg.with_ber = true;
  cfg.ber_bits = 100;
  cfg.ebn0_db = 14.0;
  cfg.sys.dt = 0.2e-9;
  cfg.sys.preamble_symbols = 0;
  cfg.sys.multipath = false;
  const auto trial = core::run_mc_trial(cfg, 0, core::YieldCriteria{});
  ASSERT_TRUE(trial.converged);
  EXPECT_GE(trial.ber, 0.0);
  EXPECT_LE(trial.ber, 1.0);
}

// A skipped measurement must not be judged (or modeled) as a measured 0:
// with measure_linear_range off, the range criterion is dropped for the
// trial and the behavioral model stays un-clamped.
TEST(MonteCarlo, SkippedMeasurementsAreNotJudgedAsZero) {
  auto cfg = small_mc(4, 1);  // measure_linear_range = false
  core::YieldCriteria criteria;
  criteria.min_input_range = 0.01;  // would fail against an unmeasured 0.0
  criteria.nominal_gain_db = 21.0;
  criteria.gain_tol_db = 10.0;
  const auto trial = core::run_mc_trial(cfg, 0, criteria);
  ASSERT_TRUE(trial.converged);
  EXPECT_FALSE(trial.violations & core::kViolInputRange);
  EXPECT_EQ(trial.params.input_clamp, 0.0);  // clamp disabled, not "0 V"

  auto measured = cfg;
  measured.characterize.measure_linear_range = true;
  const auto full = core::run_mc_trial(measured, 0, criteria);
  ASSERT_TRUE(full.converged);
  EXPECT_GT(full.params.input_clamp, 0.0);  // measured -> clamp transfers
}

TEST(MonteCarlo, JudgeTrialFlagsEachCriterion) {
  core::McTrial t;
  t.converged = true;
  t.dc_gain_db = 21.0;
  t.unity_gain_freq = 10e6;
  t.input_linear_range = 0.1;
  t.slew_rate = 2e6;
  core::YieldCriteria c;
  c.min_input_range = 0.05;
  c.min_slew_rate = 1e6;
  c.min_unity_gain_hz = 5e6;
  c.nominal_gain_db = 21.0;
  core::judge_trial(&t, c);
  EXPECT_TRUE(t.pass);

  core::McTrial bad = t;
  bad.input_linear_range = 0.01;
  bad.slew_rate = 0.5e6;
  bad.unity_gain_freq = 1e6;
  bad.dc_gain_db = 26.0;
  core::judge_trial(&bad, c);
  EXPECT_FALSE(bad.pass);
  EXPECT_TRUE(bad.violations & core::kViolInputRange);
  EXPECT_TRUE(bad.violations & core::kViolSlewRate);
  EXPECT_TRUE(bad.violations & core::kViolBandwidth);
  EXPECT_TRUE(bad.violations & core::kViolGain);

  core::McTrial dead;
  dead.converged = false;
  core::judge_trial(&dead, c);
  EXPECT_FALSE(dead.pass);
  EXPECT_TRUE(dead.violations & core::kViolNoConverge);
}

TEST(MonteCarlo, ArtifactsRender) {
  const auto r = core::run_monte_carlo(small_mc(2, 2), core::YieldCriteria{},
                                       base::ParallelRunner(1));
  const std::string csv = core::trials_to_csv(r.trials);
  // Header + one line per trial.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3);
  EXPECT_NE(csv.find("dc_gain_db"), std::string::npos);
  const std::string json = core::summary_to_json(r);
  EXPECT_NE(json.find("\"yield\""), std::string::npos);
  EXPECT_NE(json.find("\"input_linear_range_v\""), std::string::npos);
}

}  // namespace
