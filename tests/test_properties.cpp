// Cross-module property tests: frequency-domain behaviour of the
// behavioral ODE states probed with time-domain sinusoids, quantizer
// round trips, channel invariants, counter arithmetic, and waveform
// sampling invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "ams/ode.hpp"
#include "base/parallel.hpp"
#include "base/random.hpp"
#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "core/equiv.hpp"
#include "core/montecarlo.hpp"
#include "uwb/adc.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/transceiver.hpp"

namespace {

using namespace uwbams;

// Measures |H(f)| of a discrete-time state by driving a sine and taking
// the steady-state amplitude ratio.
template <typename State>
double probe_gain(State& s, double freq, double dt, double tau_slowest) {
  const double w = 2 * units::pi * freq;
  // Settle past both the drive periodicity and the slowest natural mode,
  // then measure the final quarter of the run.
  const double t_total = std::max(8.0 / freq, 8.0 * tau_slowest);
  const int n = static_cast<int>(t_total / dt);
  double peak = 0.0;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    const double y = s.step(std::sin(w * t), dt);
    t += dt;
    if (i > 3 * n / 4) peak = std::max(peak, std::abs(y));
  }
  return peak;
}

class OnePoleFrequency : public ::testing::TestWithParam<double> {};

TEST_P(OnePoleFrequency, MagnitudeMatchesTransferFunction) {
  const double f = GetParam();
  const double f0 = 5e6;
  ams::OnePoleState s(2.0, 2 * units::pi * f0);
  const double dt = 1.0 / (f * 400.0);  // 400 samples per period
  const double measured = probe_gain(s, f, dt, 1.0 / (2 * units::pi * f0));
  const double expect = 2.0 / std::sqrt(1.0 + (f / f0) * (f / f0));
  EXPECT_NEAR(measured, expect, 0.05 * expect) << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Decades, OnePoleFrequency,
                         ::testing::Values(5e5, 2e6, 5e6, 2e7, 5e7));

class TwoPoleFrequency : public ::testing::TestWithParam<double> {};

TEST_P(TwoPoleFrequency, MagnitudeMatchesCascade) {
  const double f = GetParam();
  // The paper's Phase-IV parameters.
  const double k = units::db_to_lin(21.0), f1 = 0.886e6, f2 = 5.895e9;
  ams::TwoPoleState s(k, 2 * units::pi * f1, 2 * units::pi * f2);
  const double dt = 1.0 / (f * 500.0);
  const double measured = probe_gain(s, f, dt, 1.0 / (2 * units::pi * f1));
  const double expect = k / std::sqrt((1 + std::pow(f / f1, 2)) *
                                      (1 + std::pow(f / f2, 2)));
  EXPECT_NEAR(measured, expect, 0.08 * expect) << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Band, TwoPoleFrequency,
                         ::testing::Values(1e5, 1e6, 1e7, 1e8));

TEST(TwoPoleState, IntegratorBandSlope) {
  // Between the poles the response must fall ~20 dB per decade — the
  // "approximates an ideal integrator" band of Fig. 4.
  const double k = units::db_to_lin(21.0), f1 = 0.886e6, f2 = 5.895e9;
  ams::TwoPoleState a(k, 2 * units::pi * f1, 2 * units::pi * f2);
  ams::TwoPoleState b(k, 2 * units::pi * f1, 2 * units::pi * f2);
  const double tau1 = 1.0 / (2 * units::pi * f1);
  const double g10m = probe_gain(a, 10e6, 0.2e-9, tau1);
  const double g100m = probe_gain(b, 100e6, 0.02e-9, tau1);
  EXPECT_NEAR(units::lin_to_db(g10m / g100m), 20.0, 1.5);
}

TEST(AdcDac, RoundTripWithinLsb) {
  base::Rng rng(4);
  const uwb::Adc adc(6, 0.0, 0.5);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.0, 0.5);
    EXPECT_NEAR(adc.code_to_voltage(adc.quantize(v)), v, 0.5 * adc.lsb() + 1e-12);
  }
  const uwb::Dac dac(6, 0.0, 40.0);
  for (int code = 0; code <= dac.max_code(); ++code)
    EXPECT_EQ(dac.nearest_code(dac.value(code)), code);
}

TEST(Channel, RealizationDeterministicPerSeed) {
  base::Rng a(123), b(123);
  const auto ra = uwb::generate_cm1(a);
  const auto rb = uwb::generate_cm1(b);
  ASSERT_EQ(ra.taps.size(), rb.taps.size());
  for (std::size_t i = 0; i < ra.taps.size(); ++i) {
    EXPECT_EQ(ra.taps[i].delay, rb.taps[i].delay);
    EXPECT_EQ(ra.taps[i].gain, rb.taps[i].gain);
  }
}

TEST(Channel, FirstPathIsStrongLos) {
  // With the 4a LOS first-path m-factor, the first tap should carry a
  // non-negligible share of the energy in most realizations.
  base::Rng rng(31);
  int strong = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto cr = uwb::generate_cm1(rng);
    const double p0 = cr.taps.front().gain * cr.taps.front().gain;
    if (p0 > 0.02) ++strong;  // > 2 % of total (unit) energy
  }
  EXPECT_GT(strong, n / 2);
}

TEST(Channel, ExcessDelayTruncated) {
  base::Rng rng(37);
  uwb::SalehValenzuelaParams p;
  p.max_excess_delay = 60e-9;
  for (int i = 0; i < 40; ++i) {
    const auto cr = uwb::generate_cm1(rng, p);
    EXPECT_LE(cr.taps.back().delay, 60e-9 + 1e-12);
  }
}

TEST(Transceiver, FoldBySymbols) {
  uwb::SystemConfig sys;  // Ts = 128 ns
  ams::Kernel kernel(sys.dt);
  uwb::ChannelBlock chan(sys, nullptr);
  const auto factory = [&](const double* in) {
    return std::make_unique<uwb::IdealIntegrator>(in, sys.integrator_k);
  };
  uwb::Transceiver node(kernel, sys, chan.out(), factory);
  EXPECT_NEAR(node.fold_by_symbols(66e-9), 66e-9, 1e-15);
  EXPECT_NEAR(node.fold_by_symbols(128e-9 + 66e-9), 66e-9, 1e-15);
  // 5*Ts folds to a representative congruent to 0 (floating-point fmod may
  // return either end of the interval).
  const double r5 = node.fold_by_symbols(5 * 128e-9);
  EXPECT_LT(std::min(r5, 128e-9 - r5), 1e-12);
  EXPECT_NEAR(node.fold_by_symbols(-10e-9), 118e-9, 1e-15);
}

TEST(Pulse, SampledCoversWholeSupport) {
  const uwb::GaussianMonocycle p(2, 0.7e-9, 1.0);
  const double dt = 0.1e-9;
  const auto s = p.sampled(dt);
  // 2 * half_duration / dt samples (+/- rounding).
  EXPECT_NEAR(static_cast<double>(s.size()), 2 * p.half_duration() / dt, 2.0);
  // Ends are negligible; the peak appears in the middle.
  EXPECT_LT(std::abs(s.front()), 5e-4);
  EXPECT_LT(std::abs(s.back()), 5e-4);
  double peak = 0.0;
  for (double v : s) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 1.0, 1e-3);
}

TEST(Pulse, EnergyScalesQuadratically) {
  const uwb::GaussianMonocycle a(2, 0.7e-9, 0.5);
  const uwb::GaussianMonocycle b(2, 0.7e-9, 1.0);
  EXPECT_NEAR(b.energy() / a.energy(), 4.0, 1e-9);
}

// --- exactness-tier contracts -------------------------------------------
//
// The two tiers promise different things and both promises are testable:
//  * bit_exact: same seed => byte-identical artifacts for any worker count
//    (the PR 1/3 determinism contract);
//  * stat_equiv: the optimized engine profile may flip marginal bits, but
//    (a) it keeps the jobs-invariance contract (the Monte-Carlo block
//    layout depends only on trial index), and (b) its results pass the
//    statistical-equivalence gate against a bit_exact run of the same seed.

core::McConfig tier_mc_config(bool stat_equiv) {
  core::McConfig cfg;
  cfg.trials = 8;
  cfg.seed = 7;
  cfg.sigma_scale = 1.0;
  if (stat_equiv) {
    spice::apply_stat_equiv_profile(&cfg.characterize.transient);
    cfg.characterize.reuse_ac_factorization = true;
  }
  return cfg;
}

core::StatArtifact tier_mc_stats(const core::McResult& mc) {
  core::StatArtifact stats("tier_contract", "fast");
  stats.add_ber("yield:failures",
                static_cast<std::uint64_t>(mc.summary.trials -
                                           mc.summary.passes),
                static_cast<std::uint64_t>(mc.summary.trials));
  std::vector<double> gains, slews;
  for (const auto& tr : mc.trials) {
    if (!tr.converged) continue;
    gains.push_back(tr.dc_gain_db);
    slews.push_back(tr.slew_rate);
  }
  stats.add_sample("gain_db", gains);
  stats.add_sample("slew_rate_vps", slews);
  return stats;
}

TEST(TierContract, BitExactIsByteIdenticalAcrossJobs) {
  const auto cfg = tier_mc_config(false);
  base::ParallelRunner one(1), four(4);
  const auto a = core::run_monte_carlo(cfg, {}, one);
  const auto b = core::run_monte_carlo(cfg, {}, four);
  EXPECT_EQ(core::trials_to_csv(a.trials), core::trials_to_csv(b.trials));
}

TEST(TierContract, StatEquivKeepsJobsInvariance) {
  // The cross-trial AC-workspace blocks are fixed-size and indexed by trial
  // alone, so even the optimized engine reproduces byte-for-byte across
  // worker counts — and a fortiori passes the statistical gate.
  const auto cfg = tier_mc_config(true);
  base::ParallelRunner one(1), four(4);
  const auto a = core::run_monte_carlo(cfg, {}, one);
  const auto b = core::run_monte_carlo(cfg, {}, four);
  EXPECT_EQ(core::trials_to_csv(a.trials), core::trials_to_csv(b.trials));
  const auto rep = core::compare_stats(tier_mc_stats(a), tier_mc_stats(b));
  EXPECT_TRUE(rep.passed) << rep.to_text();
}

TEST(TierContract, StatEquivIsEquivalentToBitExact) {
  // The whole point of the tier: the optimized engine must be statistically
  // indistinguishable from the exact one on the same seed.
  base::ParallelRunner pool(2);
  const auto exact = core::run_monte_carlo(tier_mc_config(false), {}, pool);
  const auto fast = core::run_monte_carlo(tier_mc_config(true), {}, pool);
  const auto rep = core::compare_stats(tier_mc_stats(exact),
                                       tier_mc_stats(fast));
  EXPECT_TRUE(rep.passed) << rep.to_text();
}

TEST(TierContract, VariantOptionsFollowTheTier) {
  const auto exact = core::variant_for_tier(core::ExactnessTier::kBitExact);
  const auto fast = core::variant_for_tier(core::ExactnessTier::kStatEquiv);
  // bit_exact must keep the historical engine defaults...
  const spice::TransientOptions defaults;
  EXPECT_EQ(exact.transient.chord_tol_scale, defaults.chord_tol_scale);
  EXPECT_EQ(exact.transient.cosim_decimation, defaults.cosim_decimation);
  EXPECT_EQ(exact.transient.packed_solve, defaults.packed_solve);
  // ...while stat_equiv enables the optimized profile.
  EXPECT_GT(fast.transient.chord_tol_scale, exact.transient.chord_tol_scale);
  EXPECT_GT(fast.transient.cosim_decimation, 1);
  EXPECT_TRUE(fast.transient.packed_solve);
  EXPECT_TRUE(fast.transient.fused_commit);
}

// Path-loss + unit-energy CIR: received energy through the sampled channel
// equals (amplitude scale)^2 within tap-quantization error.
TEST(Channel, EnergyConservationThroughBlock) {
  uwb::SystemConfig sys;
  sys.dt = 0.1e-9;
  sys.distance = 1.0;
  double input = 0.0;
  uwb::ChannelBlock chan(sys, &input);
  base::Rng rng(91);
  const auto cr = uwb::generate_cm1(rng);
  chan.set_realization(cr, 0.25);
  chan.set_noise_psd(0.0);

  // Drive a single unit impulse; collect output energy.
  input = 1.0;
  chan.step(0.0, sys.dt);
  input = 0.0;
  double e_out = *chan.out() * *chan.out();
  for (int i = 1; i < 4000; ++i) {
    chan.step(i * sys.dt, sys.dt);
    e_out += *chan.out() * *chan.out();
  }
  // Impulse energy in = 1 (unit sample); channel scales by 0.25^2 and taps
  // have unit total energy. Taps merging onto the same sample grid slot can
  // interfere, so allow a loose band.
  EXPECT_GT(e_out, 0.25 * 0.25 * 0.5);
  EXPECT_LT(e_out, 0.25 * 0.25 * 2.0);
}

}  // namespace
