// Tests for the methodology layer: two-pole fitting, characterization,
// constraints extraction, the experiment runner, and report formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/characterize.hpp"
#include "core/constraints.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace {

using namespace uwbams;

std::pair<std::vector<double>, std::vector<double>> synth_response(
    double k_db, double f1, double f2) {
  std::vector<double> f, m;
  for (double lf = 3.0; lf <= 10.7; lf += 0.1) {
    const double freq = std::pow(10.0, lf);
    f.push_back(freq);
    m.push_back(k_db - 10.0 * std::log10((1 + std::pow(freq / f1, 2)) *
                                         (1 + std::pow(freq / f2, 2))));
  }
  return {f, m};
}

TEST(TwoPoleFit, RecoversExactSynthetic) {
  const auto [f, m] = synth_response(21.0, 0.886e6, 5.895e9);
  const auto fit = core::fit_two_pole(f, m);
  EXPECT_NEAR(fit.dc_gain_db, 21.0, 0.2);
  EXPECT_NEAR(fit.f_pole1 / 0.886e6, 1.0, 0.05);
  EXPECT_NEAR(fit.f_pole2 / 5.895e9, 1.0, 0.15);
  EXPECT_LT(fit.rms_error_db, 0.1);
}

struct FitCase {
  double k_db, f1, f2;
};

class TwoPoleFitSweep : public ::testing::TestWithParam<FitCase> {};

TEST_P(TwoPoleFitSweep, RecoversParameters) {
  const auto [k_db, f1, f2] = GetParam();
  const auto [f, m] = synth_response(k_db, f1, f2);
  const auto fit = core::fit_two_pole(f, m);
  EXPECT_NEAR(fit.dc_gain_db, k_db, 0.3);
  EXPECT_NEAR(fit.f_pole1 / f1, 1.0, 0.08);
  EXPECT_NEAR(fit.f_pole2 / f2, 1.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwoPoleFitSweep,
    ::testing::Values(FitCase{10.0, 0.5e6, 1e9}, FitCase{21.0, 1e6, 6e9},
                      FitCase{30.0, 0.2e6, 0.5e9}, FitCase{15.0, 2e6, 2e9},
                      FitCase{25.0, 0.8e6, 10e9}));

TEST(TwoPoleFit, RejectsBadInput) {
  std::vector<double> f{1, 2, 3}, m{0, 0, 0};
  EXPECT_THROW(core::fit_two_pole(f, m), std::invalid_argument);
}

TEST(Characterize, ItdMatchesPaperBallpark) {
  const auto ch = core::characterize_itd();
  // Fig. 4 / §4 figures: 21 dB, 0.886 MHz, GHz-range second pole, ~100 mV
  // linear input range. Accept windows around them.
  EXPECT_GT(ch.ac.dc_gain_db, 18.0);
  EXPECT_LT(ch.ac.dc_gain_db, 24.0);
  EXPECT_GT(ch.ac.f_pole1, 0.4e6);
  EXPECT_LT(ch.ac.f_pole1, 2e6);
  EXPECT_GT(ch.ac.f_pole2, 0.5e9);
  EXPECT_LT(ch.ac.f_pole2, 10e9);
  EXPECT_GT(ch.unity_gain_freq, 4e6);
  EXPECT_LT(ch.unity_gain_freq, 25e6);
  EXPECT_GT(ch.input_linear_range, 0.05);
  EXPECT_LT(ch.input_linear_range, 0.3);
  EXPECT_GT(ch.slew_rate, 1e5);
  EXPECT_LT(ch.ac.rms_error_db, 3.0);

  const auto p = core::to_behavioral_params(ch, true);
  EXPECT_EQ(p.f_pole1, ch.ac.f_pole1);
  EXPECT_EQ(p.input_clamp, ch.input_linear_range);
  EXPECT_EQ(core::to_behavioral_params(ch, false).input_clamp, 0.0);
}

TEST(Constraints, ExtractsSaneFigures) {
  uwb::SystemConfig sys;
  const auto c = core::extract_constraints(sys, 100, 42);
  EXPECT_EQ(c.realizations, 100);
  EXPECT_GT(c.squared_peak_p99, 0.0);
  EXPECT_GT(c.slew_rate_p99, 0.0);
  EXPECT_GT(c.rms_delay_spread_mean, 3e-9);
  EXPECT_LT(c.rms_delay_spread_mean, 40e-9);
  EXPECT_GE(c.rms_delay_spread_p90, c.rms_delay_spread_mean);
  EXPECT_GT(c.window_energy_capture_mean, 0.4);
  EXPECT_LE(c.window_energy_capture_mean, 1.0);
}

TEST(Constraints, Reproducible) {
  uwb::SystemConfig sys;
  const auto a = core::extract_constraints(sys, 25, 7);
  const auto b = core::extract_constraints(sys, 25, 7);
  EXPECT_EQ(a.squared_peak_p99, b.squared_peak_p99);
  EXPECT_EQ(a.rms_delay_spread_p90, b.rms_delay_spread_p90);
}

TEST(Experiment, RunsAndCounts) {
  core::SystemRunConfig cfg;
  cfg.duration = 1.5e-6;
  cfg.sys.dt = 0.2e-9;
  cfg.kind = core::IntegratorKind::kIdeal;
  const auto r = core::run_system_simulation(cfg);
  EXPECT_GT(r.cpu_seconds, 0.0);
  EXPECT_NEAR(r.sim_seconds, 1.5e-6, 0.05e-6);
  EXPECT_GT(r.steps, 5000u);
  EXPECT_GT(r.bits_demodulated, 5u);
  // At the default 10 dB operating point some bits may err, but not most.
  EXPECT_LT(static_cast<double>(r.bit_errors),
            0.3 * static_cast<double>(r.bits_demodulated));
}

TEST(Experiment, SpiceCostsMoreThanIdeal) {
  core::SystemRunConfig cfg;
  cfg.duration = 0.8e-6;
  cfg.sys.dt = 0.2e-9;
  cfg.kind = core::IntegratorKind::kIdeal;
  const auto ideal = core::run_system_simulation(cfg);
  cfg.kind = core::IntegratorKind::kSpice;
  const auto spice = core::run_system_simulation(cfg);
  EXPECT_GT(spice.cpu_seconds, 3.0 * ideal.cpu_seconds);
  EXPECT_EQ(spice.bits_demodulated, ideal.bits_demodulated);
}

TEST(Report, FormatsTables) {
  EXPECT_EQ(core::format_duration(3573.0), "59 m 33 s");
  EXPECT_EQ(core::format_duration(551.0), "9 m 11 s");
  std::vector<core::SystemRunResult> runs(2);
  runs[0].kind = core::IntegratorKind::kIdeal;
  runs[0].cpu_seconds = 10.0;
  runs[0].sim_seconds = 30e-6;
  runs[1].kind = core::IntegratorKind::kSpice;
  runs[1].cpu_seconds = 65.0;
  runs[1].sim_seconds = 30e-6;
  const std::string table = core::render_cpu_table(runs);
  EXPECT_NE(table.find("IDEAL"), std::string::npos);
  EXPECT_NE(table.find("ELDO"), std::string::npos);
  EXPECT_NE(table.find("6.50 x"), std::string::npos);
}

}  // namespace
