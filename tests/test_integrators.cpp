// Tests for the three Integrate & Dump fidelities and their agreement —
// the substitute-and-play contract.
#include <gtest/gtest.h>

#include <cmath>

#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "uwb/integrator.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::uwb;

// Drives one dump/integrate/hold cycle and returns the value after each.
struct CycleResult {
  double after_dump, after_integrate, after_hold;
};

CycleResult run_cycle(IntegrateAndDump& itd, double& input, double vin,
                      double t_int = 100e-9, double dt = 0.2e-9) {
  CycleResult r{};
  double t = 0.0;
  auto run = [&](IntegrateAndDump::Mode m, double dur) {
    itd.set_mode(m);
    for (const double end = t + dur; t < end - dt / 2; t += dt)
      itd.step(t, dt);
  };
  input = 0.0;
  run(IntegrateAndDump::Mode::kDump, 30e-9);
  r.after_dump = itd.output();
  input = vin;
  run(IntegrateAndDump::Mode::kIntegrate, t_int);
  r.after_integrate = itd.output();
  input = 0.0;
  run(IntegrateAndDump::Mode::kHold, 50e-9);
  r.after_hold = itd.output();
  return r;
}

TEST(IdealIntegrator, RampHoldDump) {
  double in = 0.0;
  IdealIntegrator itd(&in, 6.23e7);
  const auto r = run_cycle(itd, in, 0.05);
  EXPECT_NEAR(r.after_dump, 0.0, 1e-12);
  // Trapezoidal startup halves the first input sample: K*vin*dt/2 offset.
  EXPECT_NEAR(r.after_integrate, 6.23e7 * 0.05 * 100e-9, 5e-4);
  EXPECT_NEAR(r.after_hold, r.after_integrate, 1e-12);  // perfect hold
  itd.set_mode(IntegrateAndDump::Mode::kDump);
  itd.step(0, 1e-9);
  EXPECT_EQ(itd.output(), 0.0);
  EXPECT_EQ(itd.kind(), "IDEAL");
}

TEST(TwoPoleIntegrator, MatchesFirstOrderTheory) {
  // For t << 1/w2 settling and t ~ tau1, output follows
  // K*vin*(1 - exp(-t/tau1)).
  TwoPoleParams p;  // paper defaults: 21 dB, 0.886 MHz, 5.895 GHz
  double in = 0.0;
  TwoPoleIntegrator itd(&in, p);
  const auto r = run_cycle(itd, in, 0.05);
  const double k = units::db_to_lin(p.dc_gain_db);
  const double tau1 = 1.0 / (2 * units::pi * p.f_pole1);
  const double expect = k * 0.05 * (1.0 - std::exp(-100e-9 / tau1));
  EXPECT_NEAR(r.after_integrate, expect, 0.03 * expect);
  EXPECT_NEAR(r.after_hold, r.after_integrate, 1e-12);
  EXPECT_EQ(itd.kind(), "VHDL-AMS");
}

TEST(TwoPoleIntegrator, ClampCompressesLargeInputs) {
  TwoPoleParams lin;
  TwoPoleParams clamped = lin;
  clamped.input_clamp = 0.104;
  double in_l = 0.0, in_c = 0.0;
  TwoPoleIntegrator itd_l(&in_l, lin);
  TwoPoleIntegrator itd_c(&in_c, clamped);
  // Small input: identical.
  const auto small_l = run_cycle(itd_l, in_l, 0.05);
  const auto small_c = run_cycle(itd_c, in_c, 0.05);
  EXPECT_NEAR(small_l.after_integrate, small_c.after_integrate, 1e-9);
  // Large input: the clamped model saturates at clamp-level drive.
  const auto big_l = run_cycle(itd_l, in_l, 0.4);
  const auto big_c = run_cycle(itd_c, in_c, 0.4);
  EXPECT_NEAR(big_c.after_integrate,
              small_c.after_integrate * (0.104 / 0.05), 0.05);
  EXPECT_GT(big_l.after_integrate, 2.5 * big_c.after_integrate);
}

TEST(SpiceIntegrator, CycleBehavesLikeBehavioral) {
  double in = 0.0;
  SpiceIntegrator itd(&in);
  const auto r = run_cycle(itd, in, 0.04);
  EXPECT_NEAR(r.after_dump, 0.0, 0.02);
  EXPECT_GT(r.after_integrate, 0.1);  // integrated up
  // Hold droop below 20%.
  EXPECT_NEAR(r.after_hold, r.after_integrate,
              0.2 * r.after_integrate + 5e-3);
  EXPECT_EQ(itd.kind(), "ELDO");
}

TEST(SpiceIntegrator, MultirateDecimationMatchesLockstep) {
  // The stat_equiv profile runs the embedded solver once per N macro
  // samples (sample-and-hold drive, step dt*N). Under a DC drive the
  // hold is exact, so the decimated cell must land on the same
  // window-edge outputs as the lockstep one up to the larger step's
  // truncation error. decim=7 does not divide the dump (150) or
  // integrate (500) sample counts, so set_mode's flush of the pending
  // partial group is exercised at every window edge.
  spice::TransientOptions fast;
  fast.cosim_decimation = 7;
  double in_1 = 0.0, in_n = 0.0;
  SpiceIntegrator lock(&in_1);
  SpiceIntegrator deci(&in_n, {}, fast);
  const auto r1 = run_cycle(lock, in_1, 0.04);
  const auto rn = run_cycle(deci, in_n, 0.04);
  EXPECT_NEAR(rn.after_dump, r1.after_dump, 0.02);
  EXPECT_GT(rn.after_integrate, 0.1);  // still integrates up
  EXPECT_NEAR(rn.after_integrate, r1.after_integrate,
              0.05 * r1.after_integrate + 5e-3);
  EXPECT_NEAR(rn.after_hold, r1.after_hold, 0.05 * r1.after_hold + 5e-3);
}

TEST(SpiceIntegrator, PolarityMatchesBehavioralVariants) {
  // Positive input must integrate upward for all fidelities.
  double in = 0.0;
  SpiceIntegrator spice(&in);
  const auto rs = run_cycle(spice, in, 0.03);
  double in2 = 0.0;
  TwoPoleIntegrator model(&in2, TwoPoleParams{});
  const auto rm = run_cycle(model, in2, 0.03);
  EXPECT_GT(rs.after_integrate, 0.0);
  EXPECT_GT(rm.after_integrate, 0.0);
}

// Substitute-and-play property: for inputs inside the linear range all
// three fidelities agree on the integrated value within a modest tolerance.
class VariantAgreement : public ::testing::TestWithParam<double> {};

TEST_P(VariantAgreement, LinearRangeAgreement) {
  const double vin = GetParam();
  uwb::SystemConfig sys;
  double in_i = 0, in_b = 0, in_s = 0;
  const auto fi = core::make_integrator_factory(core::IntegratorKind::kIdeal, sys);
  const auto fb =
      core::make_integrator_factory(core::IntegratorKind::kBehavioral, sys);
  const auto fs = core::make_integrator_factory(core::IntegratorKind::kSpice, sys);
  auto ii = fi(&in_i);
  auto ib = fb(&in_b);
  auto is = fs(&in_s);
  const double t_int = 50e-9;  // short window: pole-1 droop < 10%
  const auto ri = run_cycle(*ii, in_i, vin, t_int);
  const auto rb = run_cycle(*ib, in_b, vin, t_int);
  const auto rs = run_cycle(*is, in_s, vin, t_int);
  EXPECT_NEAR(rb.after_integrate, ri.after_integrate,
              0.25 * ri.after_integrate);
  EXPECT_NEAR(rs.after_integrate, ri.after_integrate,
              0.35 * ri.after_integrate + 0.01);
}

INSTANTIATE_TEST_SUITE_P(SmallSignals, VariantAgreement,
                         ::testing::Values(0.01, 0.02, 0.04, 0.06));

TEST(BlockVariant, NamesAndFactories) {
  EXPECT_EQ(core::to_string(core::IntegratorKind::kIdeal), "IDEAL");
  EXPECT_EQ(core::to_string(core::IntegratorKind::kSpice), "ELDO");
  EXPECT_EQ(core::to_string(core::IntegratorKind::kBehavioral), "VHDL-AMS");
  uwb::SystemConfig sys;
  double in = 0.0;
  for (auto kind :
       {core::IntegratorKind::kIdeal, core::IntegratorKind::kBehavioral}) {
    auto itd = core::make_integrator_factory(kind, sys)(&in);
    ASSERT_NE(itd, nullptr);
    EXPECT_EQ(itd->mode(), IntegrateAndDump::Mode::kDump);
  }
}

TEST(BlockVariant, BehavioralClampPolicy) {
  uwb::SystemConfig sys;
  double in = 0.0;
  core::VariantOptions opts;
  opts.behavioral_uses_clamp = true;
  auto itd = core::make_integrator_factory(core::IntegratorKind::kBehavioral,
                                           sys, opts)(&in);
  auto* tp = dynamic_cast<TwoPoleIntegrator*>(itd.get());
  ASSERT_NE(tp, nullptr);
  EXPECT_NEAR(tp->params().input_clamp, sys.integrator_clamp, 1e-12);
  // Default (paper-faithful): linear.
  auto itd2 = core::make_integrator_factory(core::IntegratorKind::kBehavioral,
                                            sys)(&in);
  EXPECT_EQ(dynamic_cast<TwoPoleIntegrator*>(itd2.get())->params().input_clamp,
            0.0);
}

}  // namespace
