// Tests for the AMS co-simulation kernel, ODE states and the spice bridge.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "ams/kernel.hpp"
#include "ams/ode.hpp"
#include "ams/spice_bridge.hpp"
#include "base/units.hpp"
#include "spice/devices.hpp"

namespace {

using namespace uwbams;

class Recorder : public ams::AnalogBlock {
 public:
  explicit Recorder(const double* in) : in_(in) {}
  void step(double t, double) override {
    times.push_back(t);
    values.push_back(*in_);
  }
  const double* in_;
  std::vector<double> times, values;
};

class Ramp : public ams::AnalogBlock {
 public:
  void step(double, double dt) override { out += dt; }
  double out = 0.0;
};

TEST(Kernel, FixedStepAdvancesTime) {
  ams::Kernel k(1e-9);
  Ramp r;
  k.add_analog(r);
  k.run_until(100e-9);
  EXPECT_EQ(k.steps(), 100u);
  EXPECT_NEAR(k.time(), 100e-9, 1e-15);
  EXPECT_NEAR(r.out, 100e-9, 1e-15);
}

TEST(Kernel, RejectsBadDt) {
  EXPECT_THROW(ams::Kernel(0.0), std::invalid_argument);
  EXPECT_THROW(ams::Kernel(-1.0), std::invalid_argument);
}

TEST(Kernel, BlocksStepInRegistrationOrder) {
  ams::Kernel k(1e-9);
  Ramp r;
  Recorder rec(&r.out);
  k.add_analog(r);
  k.add_analog(rec);
  k.step();
  // Recorder sees the ramp already updated within the same step.
  EXPECT_NEAR(rec.values.at(0), 1e-9, 1e-18);
}

struct CountingProcess : ams::DigitalProcess {
  void wake(ams::Kernel&, double t) override { wake_times.push_back(t); }
  std::vector<double> wake_times;
};

TEST(Kernel, EventsFireAtScheduledTimes) {
  ams::Kernel k(1e-9);
  CountingProcess p;
  k.schedule(p, 5e-9);
  k.schedule(p, 2e-9);
  k.schedule(p, 2e-9);  // same time: fires twice
  k.run_until(10e-9);
  ASSERT_EQ(p.wake_times.size(), 3u);
  EXPECT_NEAR(p.wake_times[0], 2e-9, 1e-12);
  EXPECT_NEAR(p.wake_times[1], 2e-9, 1e-12);
  EXPECT_NEAR(p.wake_times[2], 5e-9, 1e-12);
}

TEST(Kernel, CallbackAndPastSchedulingRejected) {
  ams::Kernel k(1e-9);
  int fired = 0;
  k.schedule_callback(3e-9, [&](double) { ++fired; });
  k.run_until(10e-9);
  EXPECT_EQ(fired, 1);
  EXPECT_THROW(k.schedule_callback(1e-9, [](double) {}), std::invalid_argument);
}

TEST(Kernel, EventsBeforeAnalogStep) {
  // An event scheduled at t must run before the analog blocks step from t.
  ams::Kernel k(1e-9);
  Ramp r;
  double ramp_at_event = -1.0;
  k.add_analog(r);
  k.schedule_callback(5e-9, [&](double) { ramp_at_event = r.out; });
  k.run_until(10e-9);
  EXPECT_NEAR(ramp_at_event, 5e-9, 1e-15);  // 5 steps completed, 6th not yet
}

TEST(Ode, IdealIntegratorRampsLinearly) {
  ams::IdealIntegratorState s(2.0);
  const double dt = 1e-3;
  for (int i = 0; i < 1000; ++i) s.step(1.0, dt);
  EXPECT_NEAR(s.value(), 2.0, 2e-3);  // y = k * t = 2 * 1
  s.reset();
  EXPECT_EQ(s.value(), 0.0);
}

TEST(Ode, OnePoleStepResponse) {
  const double omega = 2 * units::pi * 1e6;
  ams::OnePoleState s(3.0, omega);
  const double dt = 1e-9;
  double t = 0;
  for (int i = 0; i < 2000; ++i) {
    s.step(1.0, dt);
    t += dt;
    const double expect = 3.0 * (1.0 - std::exp(-omega * t));
    EXPECT_NEAR(s.value(), expect, 0.01) << "t=" << t;
  }
}

TEST(Ode, TwoPoleDcGainAndCascade) {
  ams::TwoPoleState s(units::db_to_lin(21.0), 2 * units::pi * 1e6,
                      2 * units::pi * 1e9);
  const double dt = 0.1e-9;
  for (int i = 0; i < 200000; ++i) s.step(0.01, dt);  // 20 us >> tau1
  EXPECT_NEAR(s.value(), units::db_to_lin(21.0) * 0.01, 1e-4);
}

TEST(Ode, TrapezoidalStableForStiffPole) {
  // omega*dt = 2*pi*5.9GHz*0.05ns ~ 1.85: explicit Euler would be at its
  // stability margin; trapezoidal must remain smooth and bounded.
  ams::OnePoleState s(1.0, 2 * units::pi * 5.9e9);
  const double dt = 0.05e-9;
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double v = s.step(1.0, dt);
    EXPECT_LE(v, 1.2);
    EXPECT_GE(v, prev - 1e-9);  // monotone rise, no ringing
    prev = v;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

// --- SpiceBridge -----------------------------------------------------------

TEST(SpiceBridge, RcTracksAnalyticStep) {
  // Behavioral source driving an embedded spice RC through the bridge.
  auto ckt = std::make_unique<spice::Circuit>();
  const auto in = ckt->node("in");
  const auto out = ckt->node("out");
  ckt->add<spice::VoltageSource>("vin", in, ckt->ground(),
                                 spice::Waveform::dc(0.0));
  ckt->add<spice::Resistor>("R1", in, out, 1e3);
  ckt->add<spice::Capacitor>("C1", out, ckt->ground(), 1e-9);

  double drive = 0.0;
  spice::TransientOptions topts;
  ams::SpiceBridge bridge(std::move(ckt), topts);
  bridge.bind_input("vin", &drive);
  const double* vout = bridge.bind_output("out");

  ams::Kernel k(10e-9);
  k.add_analog(bridge);
  k.run_until(100e-9);
  EXPECT_NEAR(*vout, 0.0, 1e-9);

  drive = 1.0;  // step at t = 100 ns
  const double t0 = k.time();
  k.run_until(t0 + 3e-6);
  const double tau = 1e-6;
  const double expect = 1.0 - std::exp(-(k.time() - t0) / tau);
  EXPECT_NEAR(*vout, expect, 0.02);
}

TEST(SpiceBridge, PrimeUsesCurrentInputs) {
  auto ckt = std::make_unique<spice::Circuit>();
  const auto n = ckt->node("n");
  ckt->add<spice::VoltageSource>("vin", n, ckt->ground(),
                                 spice::Waveform::dc(0.0));
  ckt->add<spice::Resistor>("R1", n, ckt->ground(), 1e3);
  double drive = 2.5;
  ams::SpiceBridge bridge(std::move(ckt), {});
  bridge.bind_input("vin", &drive);
  bridge.prime();
  EXPECT_NEAR(bridge.v("n"), 2.5, 1e-6);
}

TEST(SpiceBridge, BadBindingsThrow) {
  auto ckt = std::make_unique<spice::Circuit>();
  ckt->add<spice::Resistor>("R1", ckt->node("a"), ckt->ground(), 1e3);
  double sig = 0.0;
  ams::SpiceBridge bridge(std::move(ckt), {});
  EXPECT_THROW(bridge.bind_input("missing", &sig), std::invalid_argument);
  EXPECT_THROW(bridge.bind_output("nosuch"), std::invalid_argument);
  EXPECT_THROW(bridge.v("a"), std::logic_error);  // before prime
}

TEST(SpiceBridge, SlewLimitBoundsDriveRate) {
  auto ckt = std::make_unique<spice::Circuit>();
  const auto n = ckt->node("n");
  ckt->add<spice::VoltageSource>("vin", n, ckt->ground(),
                                 spice::Waveform::dc(0.0));
  ckt->add<spice::Resistor>("R1", n, ckt->ground(), 1e3);
  double drive = 0.0;
  ams::SpiceBridge bridge(std::move(ckt), {});
  bridge.bind_input("vin", &drive, 1.0);  // 1 V/ns
  bridge.prime();
  drive = 10.0;
  bridge.step(0.0, 1e-9);
  EXPECT_NEAR(bridge.v("n"), 1.0, 1e-6);  // limited to 1 V in 1 ns
  bridge.step(1e-9, 1e-9);
  EXPECT_NEAR(bridge.v("n"), 2.0, 1e-6);
}

}  // namespace
