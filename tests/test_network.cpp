// Tests of the clock-nonideality layer (uwb/clock.hpp) and the multi-node
// ranging network (uwb/network.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>

#include "base/parallel.hpp"
#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "uwb/clock.hpp"
#include "uwb/network.hpp"
#include "uwb/ranging.hpp"

namespace {

using namespace uwbams;

// ---------------------------------------------------------------- ClockModel

TEST(ClockModel, IdentityIsExact) {
  uwb::ClockModel ideal;
  EXPECT_TRUE(ideal.is_identity());
  for (double t : {0.0, 1e-9, 12.345e-6, 1.0, -3.0e-6}) {
    EXPECT_EQ(ideal.local_time(t), t);   // bit-exact, not just NEAR
    EXPECT_EQ(ideal.true_time(t), t);
    EXPECT_EQ(ideal.event_true_time(t), t);
    EXPECT_EQ(ideal.jitter_at(t), 0.0);
  }
}

TEST(ClockModel, PpmOffsetMapsBothWays) {
  uwb::ClockConfig cfg;
  cfg.ppm = 40.0;
  uwb::ClockModel clk(cfg, /*base_seed=*/7);
  EXPECT_FALSE(clk.is_identity());
  const double t = 100e-6;
  // +40 ppm: the local clock runs fast.
  EXPECT_NEAR(clk.local_time(t) - t, 40e-6 * t, 1e-18);
  // Round trip to double precision.
  EXPECT_NEAR(clk.true_time(clk.local_time(t)), t, 1e-18);
}

TEST(ClockModel, DriftAndOffsetRoundTrip) {
  uwb::ClockConfig cfg;
  cfg.ppm = -25.0;
  cfg.drift_ppm_per_s = 3.0;
  cfg.offset = 2e-9;
  uwb::ClockModel clk(cfg, 7);
  for (double t : {1e-6, 50e-6, 0.3}) {
    const double tau = clk.local_time(t);
    EXPECT_NEAR(clk.true_time(tau), t, 1e-15);
  }
}

TEST(ClockModel, JitterIsDeterministicPerNodeAndSeed) {
  uwb::ClockConfig cfg;
  cfg.jitter_rms = 10e-12;
  cfg.node_id = 0;
  uwb::ClockConfig cfg1 = cfg;
  cfg1.node_id = 1;
  uwb::ClockModel a(cfg, 42), a2(cfg, 42), b(cfg1, 42), c(cfg, 43);
  const double t = 12.5e-6;
  // Same (seed, node, edge) -> same draw; different node or seed -> an
  // independent stream.
  EXPECT_EQ(a.jitter_at(t), a2.jitter_at(t));
  EXPECT_NE(a.jitter_at(t), b.jitter_at(t));
  EXPECT_NE(a.jitter_at(t), c.jitter_at(t));
  // Magnitude is jitter-scale, and distinct edges draw independently.
  EXPECT_LT(std::abs(a.jitter_at(t)), 10 * cfg.jitter_rms);
  EXPECT_NE(a.jitter_at(t), a.jitter_at(t + 1e-9));
}

// ------------------------------------------------- clock-threaded TWR engine

uwb::TwrConfig fast_twr() {
  uwb::TwrConfig cfg;
  cfg.sys.dt = 0.2e-9;
  return cfg;
}

TEST(TwrClock, ZeroNonidealityIsBitExactIdentity) {
  // The nominal ClockModel must be invisible: an explicit all-zero
  // ClockConfig reproduces the default-config estimate bit for bit (the
  // pin that guarantees the historical Table-2 path is unchanged).
  auto base = fast_twr();
  uwb::TwoWayRanging twr_default(
      base, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                          base.sys));
  const auto ref = twr_default.run_iteration(3, 5);

  auto cfg = fast_twr();
  cfg.clock_a = uwb::ClockConfig{};
  cfg.clock_b = uwb::ClockConfig{};
  uwb::TwoWayRanging twr_zero(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                         cfg.sys));
  const auto zero = twr_zero.run_iteration(3, 5);
  ASSERT_TRUE(ref.ok);
  ASSERT_TRUE(zero.ok);
  EXPECT_EQ(ref.distance_estimate, zero.distance_estimate);
  EXPECT_EQ(ref.toa_bias_a, zero.toa_bias_a);
  EXPECT_EQ(ref.toa_bias_b, zero.toa_bias_b);
}

TEST(TwrClock, ResponderPpmOffsetBiasesWithPredictedSign) {
  // bias = 0.5 c PT (delta_a - delta_b): a *fast* responder crystal
  // (+ppm on B) shortens the measured RTT -> underestimated distance, and
  // symmetrically for a slow one. A long PT makes the term dominate the
  // (seed-shared) estimator jitter.
  auto cfg = fast_twr();
  cfg.processing_time = 40e-6;
  const auto fact =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);

  cfg.clock_b.ppm = 150.0;
  uwb::TwoWayRanging fast_b(cfg, fact);
  const auto est_fast = fast_b.run_iteration(3, 5);
  cfg.clock_b.ppm = -150.0;
  uwb::TwoWayRanging slow_b(cfg, fact);
  const auto est_slow = slow_b.run_iteration(3, 5);
  ASSERT_TRUE(est_fast.ok);
  ASSERT_TRUE(est_slow.ok);

  const double predicted_split = 0.5 * units::speed_of_light *
                                 cfg.processing_time * 2.0 * 150e-6;
  const double split = est_slow.distance_raw - est_fast.distance_raw;
  EXPECT_GT(split, 0.0);  // slow B overestimates relative to fast B
  EXPECT_NEAR(split, predicted_split, 0.5 * predicted_split);
}

TEST(TwrClock, PpmCompensationRemovesTheBias) {
  auto cfg = fast_twr();
  cfg.processing_time = 40e-6;
  const auto fact =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);
  // Zero-ppm baseline with the same seeds: the estimator's own offset is
  // common-mode, so compensation quality is judged against it, not against
  // the true distance.
  uwb::TwoWayRanging ideal_clk(cfg, fact);
  const auto baseline = ideal_clk.run_iteration(3, 5);

  cfg.clock_b.ppm = 150.0;
  cfg.compensate_ppm = true;
  uwb::TwoWayRanging twr(cfg, fact);
  const auto it = twr.run_iteration(3, 5);
  ASSERT_TRUE(baseline.ok);
  ASSERT_TRUE(it.ok);

  const double bias_term =
      0.5 * units::speed_of_light * cfg.processing_time * 150e-6;
  // Raw and compensated straddle the bias term exactly.
  EXPECT_NEAR(it.distance_estimate - it.distance_raw, bias_term,
              1e-9 * bias_term + 1e-12);
  // The raw estimate carries most of the drift bias; the compensated one
  // lands back near the zero-ppm baseline.
  EXPECT_GT(std::abs(it.distance_raw - baseline.distance_estimate),
            0.5 * bias_term);
  // The residual is second-order: at 150 ppm the responder's windows also
  // drift ~ns across its acquisition, which moves the ToA estimate itself.
  EXPECT_LT(std::abs(it.distance_estimate - baseline.distance_estimate),
            0.4 * bias_term);
}

TEST(TwrClock, SurvivesJitterOffsetAndDrift) {
  // Realistic per-edge jitter, a start offset and drift must not crash the
  // exchange (a jitter draw can map an edge before the kernel's current
  // time; the controller clamps it to "fires immediately").
  auto cfg = fast_twr();
  cfg.clock_a.ppm = 12.0;
  cfg.clock_a.jitter_rms = 100e-12;
  cfg.clock_a.offset = 80e-9;
  cfg.clock_b.ppm = -9.0;
  cfg.clock_b.drift_ppm_per_s = 50.0;
  cfg.clock_b.jitter_rms = 100e-12;
  uwb::TwoWayRanging twr(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                         cfg.sys));
  const auto it = twr.run_iteration(3, 5);
  ASSERT_TRUE(it.ok);
  EXPECT_NEAR(it.distance_estimate, cfg.sys.distance, 3.0);
}

// ------------------------------------------------------------ seed derivation

TEST(TwrSeeds, ChannelAndNoiseStreamsNeverCollide) {
  // The fixed-purpose derive_seed sub-streams keep channel and noise draws
  // independent for any (seed, iteration): across a grid of seeds and
  // iterations, no channel seed may equal any noise seed (the old additive
  // arithmetic aliased them across nearby seeds).
  std::set<std::uint64_t> channel, noise;
  for (std::uint64_t s = 1; s <= 40; ++s) {
    uwb::TwrConfig cfg;
    cfg.sys.seed = s;
    cfg.fresh_channel_per_iteration = true;
    for (int i = 0; i < 25; ++i) {
      channel.insert(cfg.channel_seed(i));
      noise.insert(cfg.noise_seed(i));
    }
  }
  EXPECT_EQ(channel.size(), 40u * 25u);
  EXPECT_EQ(noise.size(), 40u * 25u);
  for (const auto s : channel) EXPECT_EQ(noise.count(s), 0u);
}

TEST(TwrSeeds, FixedChannelModeKeepsOneRealizationPerSeed) {
  uwb::TwrConfig cfg;
  cfg.sys.seed = 9;
  cfg.fresh_channel_per_iteration = false;
  EXPECT_EQ(cfg.channel_seed(0), cfg.channel_seed(7));
  cfg.fresh_channel_per_iteration = true;
  EXPECT_NE(cfg.channel_seed(0), cfg.channel_seed(7));
}

// --------------------------------------------------------------- the network

uwb::IntegratorFactory network_factory(const uwb::NetworkConfig& cfg) {
  return core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);
}

uwb::NetworkConfig fast_network(int nodes) {
  uwb::NetworkConfig cfg;
  cfg.sys.dt = 0.2e-9;
  cfg.sys.seed = 11;
  cfg.node_count = nodes;
  cfg.exchanges_per_pair = 1;
  return cfg;
}

TEST(RangingNetwork, RejectsUnderAnchoredConfigs) {
  // run() hands anchor_count to the position solver; configurations that
  // could only throw *after* paying for the simulation are rejected at
  // construction instead.
  auto cfg = fast_network(2);  // fewer nodes than the 3 default anchors
  EXPECT_THROW(uwb::RangingNetwork(cfg, network_factory(cfg)),
               std::invalid_argument);
  auto cfg2 = fast_network(4);
  cfg2.anchor_count = 2;  // not enough anchors for the 2-D gauge
  EXPECT_THROW(uwb::RangingNetwork(cfg2, network_factory(cfg2)),
               std::invalid_argument);
}

TEST(RangingNetwork, PairEnumerationCoversTheUpperTriangle) {
  auto cfg = fast_network(5);
  uwb::RangingNetwork net(cfg, network_factory(cfg));
  ASSERT_EQ(net.pair_count(), 10);
  std::set<std::pair<int, int>> seen;
  for (int k = 0; k < net.pair_count(); ++k) {
    const auto [i, j] = net.pair_nodes(k);
    EXPECT_LT(i, j);
    EXPECT_GE(i, 0);
    EXPECT_LT(j, 5);
    seen.insert({i, j});
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RangingNetwork, NodeClocksAreDeterministicPerNodeId) {
  auto cfg = fast_network(6);
  cfg.ppm_spread = 20.0;
  uwb::RangingNetwork net1(cfg, network_factory(cfg));
  uwb::RangingNetwork net2(cfg, network_factory(cfg));
  ASSERT_EQ(net1.node_ppm().size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(net1.node_ppm()[i], net2.node_ppm()[i]);
    EXPECT_LE(std::abs(net1.node_ppm()[i]), 20.0);
  }
  // The draws actually spread (not all equal).
  EXPECT_NE(net1.node_ppm()[0], net1.node_ppm()[1]);
  // And move with the seed.
  auto cfg2 = cfg;
  cfg2.sys.seed = 12;
  uwb::RangingNetwork net3(cfg2, network_factory(cfg2));
  EXPECT_NE(net1.node_ppm()[0], net3.node_ppm()[0]);
}

TEST(RangingNetwork, BitIdenticalAcrossJobCounts) {
  auto cfg = fast_network(4);
  cfg.ppm_spread = 20.0;
  uwb::RangingNetwork net(cfg, network_factory(cfg));
  base::ParallelRunner serial(1), pool(8);
  const auto r1 = net.run(&serial);
  const auto r8 = net.run(&pool);
  ASSERT_EQ(r1.pairs.size(), r8.pairs.size());
  for (std::size_t k = 0; k < r1.pairs.size(); ++k) {
    EXPECT_EQ(r1.pairs[k].est_distance, r8.pairs[k].est_distance);
    EXPECT_EQ(r1.pairs[k].failures, r8.pairs[k].failures);
  }
  EXPECT_EQ(r1.position_rmse, r8.position_rmse);
}

TEST(RangingNetwork, MeasuresAndLocalizesASquareLayout) {
  auto cfg = fast_network(4);
  cfg.exchanges_per_pair = 2;
  // 7-9.9 m pairwise distances: inside the link budget's working range
  // (the 12.7 m diagonal of a 9 m square ranges marginally).
  cfg.positions = {{0.0, 0.0}, {7.0, 0.0}, {0.0, 7.0}, {7.0, 7.0}};
  uwb::RangingNetwork net(cfg, network_factory(cfg));
  const auto res = net.run();
  ASSERT_EQ(res.pairs.size(), 6u);
  EXPECT_EQ(res.failed_pairs, 0);
  for (const auto& m : res.pairs) {
    ASSERT_TRUE(m.ok());
    // The CM1 leading-edge latch is late, never early: per-pair errors sit
    // in [-1, +5] m depending on the realization (see docs/ranging.md).
    EXPECT_GT(m.est_distance, m.true_distance - 1.5);
    EXPECT_LT(m.est_distance, m.true_distance + 5.0);
  }
  // Nodes 0..2 anchor the gauge; node 3 must come back near (7, 7) after
  // the solver's common-bias estimate absorbs the shared latch delay.
  const auto& p3 = res.solved[3];
  EXPECT_NEAR(p3.x, 7.0, 2.0);
  EXPECT_NEAR(p3.y, 7.0, 2.0);
  EXPECT_LT(res.position_rmse, 2.0);
}

TEST(RangingNetwork, AllFailedPairsAreExplicitNotSentinel) {
  // Regression: est_distance used to carry a -1.0 "failed" sentinel that a
  // caller could silently feed to the solver as a negative distance. Links
  // far outside the budget (~100 m) make every exchange fail to acquire;
  // the run must finish, flag every pair via ok()/ok_exchanges, and leave
  // est_distance at its inert default instead of a magic value.
  auto cfg = fast_network(4);
  cfg.positions = {{0.0, 0.0}, {100.0, 0.0}, {0.0, 100.0}, {100.0, 100.0}};
  uwb::RangingNetwork net(cfg, network_factory(cfg));
  const auto res = net.run();
  ASSERT_EQ(res.pairs.size(), 6u);
  EXPECT_EQ(res.failed_pairs, 6);
  for (const auto& m : res.pairs) {
    EXPECT_FALSE(m.ok());
    EXPECT_EQ(m.ok_exchanges, 0);
    EXPECT_EQ(m.failures, m.exchanges);
    EXPECT_EQ(m.est_distance, 0.0);  // untouched default, not -1
  }
  // With zero usable observations the solver still returns a well-formed
  // layout (anchors pinned; the unknown stays at its trilateration-free
  // init) and the aggregate metrics stay finite.
  ASSERT_EQ(res.solved.size(), 4u);
  EXPECT_TRUE(std::isfinite(res.position_rmse));
  EXPECT_EQ(res.distance_rmse, 0.0);
}

// ------------------------------------------------------------ position solver

TEST(PositionSolver, RecoversExactGeometryFromExactDistances) {
  const std::vector<uwb::NodePosition> truth = {
      {0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 3}};
  std::vector<uwb::PairDistance> obs;
  for (int i = 0; i < 5; ++i)
    for (int j = i + 1; j < 5; ++j)
      obs.push_back({i, j,
                     std::hypot(truth[i].x - truth[j].x,
                                truth[i].y - truth[j].y)});
  // Unknowns start from a deliberately wrong init.
  auto init = truth;
  init[3] = {2.0, 2.0};
  init[4] = {8.0, 8.0};
  const auto solved = uwb::solve_positions_2d(init, 3, obs);
  for (int k = 3; k < 5; ++k) {
    EXPECT_NEAR(solved[k].x, truth[k].x, 1e-6);
    EXPECT_NEAR(solved[k].y, truth[k].y, 1e-6);
  }
}

TEST(PositionSolver, RejectsDegenerateGauge) {
  const std::vector<uwb::NodePosition> pts = {{0, 0}, {1, 0}, {2, 0}};
  EXPECT_THROW(uwb::solve_positions_2d(pts, 2, {}), std::invalid_argument);
  EXPECT_THROW(uwb::solve_positions_2d(pts, 4, {}), std::invalid_argument);
}

}  // namespace
