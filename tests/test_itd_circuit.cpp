// Tests for the 31-transistor Integrate & Dump cell: transistor count,
// operating point sanity, AC response shape (Fig. 4 targets), transient
// integrate/hold/dump behaviour, and builder/netlist equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "base/units.hpp"
#include "spice/ac.hpp"
#include "spice/itd_builder.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::spice;

TEST(ItdCell, HasExactly31Mosfets) {
  Circuit c;
  build_integrate_and_dump(c);
  EXPECT_EQ(c.count_devices_with_prefix("M"), 31u);
}

TEST(ItdCell, OperatingPointConverges) {
  Circuit c;
  const auto tb = build_itd_testbench(c);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged) << "strategy=" << r.strategy;

  // Bias rails must land in sensible windows.
  const double vbias1 = c.voltage_in(r.x, c.find_node("Vbias1"));
  EXPECT_GT(vbias1, 0.45);
  EXPECT_LT(vbias1, 0.75);
  const double vref = c.voltage_in(r.x, c.find_node("Vref"));
  EXPECT_GT(vref, 0.7);
  EXPECT_LT(vref, 1.2);
  // OTA outputs near the CM reference, and balanced.
  const double voutp = c.voltage_in(r.x, tb.t.outp);
  const double voutm = c.voltage_in(r.x, tb.t.outm);
  EXPECT_NEAR(voutp, voutm, 5e-3);
  EXPECT_GT(voutp, 0.5);
  EXPECT_LT(voutp, 1.4);
  // With switches in "integrate", the cap terminals track the OTA outputs.
  EXPECT_NEAR(c.voltage_in(r.x, tb.t.out_intp), voutp, 20e-3);
}

TEST(ItdCell, AcResponseShapeMatchesFig4) {
  Circuit c;
  const auto tb = build_itd_testbench(c);
  const auto op = solve_op(c);
  ASSERT_TRUE(op.converged);

  const auto freqs = log_frequency_grid(1e3, 50e9, 10);
  const auto sweep = run_ac(c, op.x, freqs, tb.t.out_intp, tb.t.out_intm);

  // DC gain in the paper is 21 dB; accept the 18-25 dB window here, the
  // characterization bench reports the exact figure.
  const double dc_gain_db = sweep.mag_db(0);
  EXPECT_GT(dc_gain_db, 18.0);
  EXPECT_LT(dc_gain_db, 25.0);

  // Find the -3 dB corner (first pole): paper 0.886 MHz; accept 0.3-3 MHz.
  double f1 = 0.0;
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    if (sweep.mag_db(i) < dc_gain_db - 3.0) {
      f1 = sweep.points[i].freq;
      break;
    }
  }
  EXPECT_GT(f1, 0.3e6);
  EXPECT_LT(f1, 3e6);

  // Magnitude at the grid point nearest to f.
  auto mag_near = [&](double f) {
    std::size_t best = 0;
    double best_err = 1e300;
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      const double err = std::abs(std::log10(sweep.points[i].freq / f));
      if (err < best_err) {
        best_err = err;
        best = i;
      }
    }
    return sweep.mag_db(best);
  };

  // In the integrator band the slope must be ~ -20 dB/decade: compare
  // 30 MHz and 300 MHz.
  EXPECT_NEAR(mag_near(30e6) - mag_near(300e6), 20.0, 3.0);

  // Beyond the second pole the roll-off steepens: slope from 5 GHz to
  // 50 GHz must exceed 25 dB/decade.
  EXPECT_GT(mag_near(5e9) - mag_near(50e9), 25.0);
}

TEST(ItdCell, TransientIntegrateHoldDump) {
  // Canonical I&D control cycle (paper: the reset gate dumps the charge
  // "prior to restart integration", i.e. while the transmission gates are
  // closed again and the OTA anchors the common mode):
  //   reset (ctrlp=1, ctrlm=1)  ->  integrate (1,0)  ->  hold (0,0)  -> ...
  Circuit c;
  const auto tb = build_itd_testbench(c);
  TransientOptions topts;
  topts.dt = 0.1e-9;
  TransientSession sim(c, topts);
  auto& vinp = sim.source("vinp");
  auto& vinm = sim.source("vinm");
  auto& vctrlp = sim.source("vctrlp");
  auto& vctrlm = sim.source("vctrlm");

  auto vout = [&] { return sim.v(tb.t.out_intp) - sim.v(tb.t.out_intm); };

  // Phase 0: reset (switches closed, reset on) for 50 ns.
  vctrlp.set_override(1.8);
  vctrlm.set_override(1.8);
  vinp.set_override(0.9);
  vinm.set_override(0.9);
  sim.run_until(50e-9);
  const double v_reset = vout();
  EXPECT_NEAR(v_reset, 0.0, 20e-3);

  // Phase 1: integrate a 40 mV differential input for 300 ns.
  vctrlm.set_override(0.0);
  vinp.set_override(0.9 + 0.02);
  vinm.set_override(0.9 - 0.02);
  sim.run_until(350e-9);
  const double v_int = vout();
  EXPECT_GT(std::abs(v_int), 0.05);  // output actually integrated

  // Phase 2: hold for 200 ns — differential value must persist (the pair's
  // common mode is free to wander; only the differential matters).
  vctrlp.set_override(0.0);
  vinp.set_override(0.9);
  vinm.set_override(0.9);
  sim.run_until(550e-9);
  const double v_hold = vout();
  EXPECT_NEAR(v_hold, v_int, std::abs(v_int) * 0.2 + 5e-3);

  // Phase 3: dump — close the switches and fire the reset.
  vctrlp.set_override(1.8);
  vctrlm.set_override(1.8);
  sim.run_until(650e-9);
  EXPECT_NEAR(vout(), 0.0, 20e-3);
}

TEST(ItdCell, IntegrationIsLinearInSmallSignalRange)
{
  // Integrated output after a fixed window should scale ~linearly with the
  // input for small inputs and compress for inputs beyond the ~100 mV
  // linear range (the effect behind the paper's Fig. 5 mismatch).
  auto integrate = [](double vin_diff) {
    Circuit c;
    const auto tb = build_itd_testbench(c);
    TransientOptions topts;
    topts.dt = 0.1e-9;
    TransientSession sim(c, topts);
    sim.source("vctrlp").set_override(1.8);
    sim.source("vctrlm").set_override(1.8);  // reset while switches closed
    sim.run_until(50e-9);
    sim.source("vctrlm").set_override(0.0);
    sim.source("vinp").set_override(0.9 + vin_diff / 2);
    sim.source("vinm").set_override(0.9 - vin_diff / 2);
    sim.run_until(150e-9);  // 100 ns integration
    return sim.v(tb.t.out_intp) - sim.v(tb.t.out_intm);
  };
  const double v20 = integrate(0.020);
  const double v40 = integrate(0.040);
  const double v300 = integrate(0.300);
  // Small-signal linearity: doubling the input ~doubles the output.
  EXPECT_NEAR(v40 / v20, 2.0, 0.35);
  // Compression: a 300 mV input yields far less than 15x the 20 mV output.
  EXPECT_LT(std::abs(v300), std::abs(v20) * 15.0 * 0.75);
}

TEST(ItdCell, TextNetlistMatchesBuilder) {
  // The shipped .cir file and the programmatic builder must describe the
  // same circuit: same MOSFET count and matching operating points.
  Circuit text_ckt;
  parse_netlist_file(itd_netlist_path(), text_ckt);
  EXPECT_EQ(text_ckt.count_devices_with_prefix("Xitd.M"), 31u);

  const auto op_text = solve_op(text_ckt);
  ASSERT_TRUE(op_text.converged);

  Circuit built;
  const auto tb = build_itd_testbench(built);
  const auto op_built = solve_op(built);
  ASSERT_TRUE(op_built.converged);

  const double voutp_text =
      text_ckt.voltage_in(op_text.x, text_ckt.find_node("Xitd.Outp"));
  const double voutp_built = built.voltage_in(op_built.x, tb.t.outp);
  EXPECT_NEAR(voutp_text, voutp_built, 1e-3);

  const double vb1_text =
      text_ckt.voltage_in(op_text.x, text_ckt.find_node("Xitd.Vbias1"));
  const double vb1_built =
      built.voltage_in(op_built.x, built.find_node("Vbias1"));
  EXPECT_NEAR(vb1_text, vb1_built, 1e-3);
}

}  // namespace
