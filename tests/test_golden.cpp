// Golden-stats regression gate: re-runs the three pinned scenarios
// (fig6_ber, yield_report, ranging_network) in-process at the fast scale
// with the default bit_exact tier and seed 1 — exactly the configuration
// tools/refresh_golden.sh pins — and holds their golden_stats.json against
// tests/golden/. Because the run is bit_exact and the serialization is
// canonical (sorted keys, %.17g), the regenerated artifact must be
// byte-identical, not merely statistically equivalent; a diff here means
// the physics changed and the golden needs a deliberate refresh:
//
//   tools/refresh_golden.sh   (one command, commit the diff it leaves)
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/equiv.hpp"
#include "runner/registry.hpp"
#include "runner/sink.hpp"

#ifndef UWBAMS_GOLDEN_DIR
#error "UWBAMS_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace uwbams;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs a registered scenario the way the CLI does (fast scale, seed 1,
// one worker, no output directory) and returns the sink it filled.
int run_scenario(const std::string& name, runner::ResultSink* sink) {
  const auto* s = runner::ScenarioRegistry::instance().find(name);
  if (s == nullptr) {
    ADD_FAILURE() << "scenario '" << name << "' is not registered";
    return -1;
  }
  runner::ParallelRunner pool(1);
  runner::RunContext ctx{name, runner::Scale::kFast, pool.jobs(),
                         1,    *sink,               pool,
                         core::ExactnessTier::kBitExact};
  return s->fn(ctx);
}

class GoldenStats : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenStats, FastRunReproducesPinnedGolden) {
  const std::string name = GetParam();
  const std::string pinned =
      read_file(std::string(UWBAMS_GOLDEN_DIR) + "/" + name +
                ".golden_stats.json");
  ASSERT_FALSE(pinned.empty())
      << "tests/golden/" << name << ".golden_stats.json is missing "
      << "(run tools/refresh_golden.sh)";

  runner::ResultSink sink(name, "");
  ASSERT_EQ(run_scenario(name, &sink), 0) << name << " scenario failed";
  ASSERT_FALSE(sink.golden_stats().empty())
      << name << " registered no golden stats";

  // The statistical gate must hold against the pinned golden...
  const auto report =
      core::compare_stats(core::StatArtifact::from_json(pinned),
                          core::StatArtifact::from_json(sink.golden_stats()));
  EXPECT_TRUE(report.passed) << report.to_text();

  // ...and under bit_exact the canonical serialization pins the run down
  // to the byte, so drift below the statistical thresholds is caught too.
  EXPECT_EQ(sink.golden_stats(), pinned)
      << "bit_exact fast run no longer reproduces the pinned golden; if "
         "the change is intentional, run tools/refresh_golden.sh and "
         "commit the refreshed files";
}

INSTANTIATE_TEST_SUITE_P(PinnedScenarios, GoldenStats,
                         ::testing::Values("ranging_network", "yield_report",
                                           "fig6_ber"));

}  // namespace
