// test_serve — the socket-free server layers:
//
//   * ResultCache: memory LRU semantics, the disk level's tmp+rename
//     durability and cross-instance hits, statistics;
//   * request parsing robustness (satellite of the server-grade test
//     layer): malformed / truncated / oversized / mis-versioned requests
//     are structured errors, never crashes and never partial execution —
//     this file runs under ASan+UBSan in CI;
//   * ScenarioService end to end (in-process, no sockets): cold compute,
//     warm byte-identical cache hit, failed runs not cached, control ops;
//   * the cache clients: the characterize memo (core/memo.hpp) and the
//     surrogate calibration cache (net/surrogate_cache.hpp) return
//     bit-identical results on a repeat and key on every knob.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "base/json.hpp"
#include "base/parallel.hpp"
#include "core/memo.hpp"
#include "net/surrogate_cache.hpp"
#include "runner/registry.hpp"
#include "runner/runner.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

using namespace uwbams;
namespace fs = std::filesystem;

namespace {

std::string temp_dir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       (std::string("uwbams_") + tag + "_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

// A cheap deterministic scenario the service tests run: one artifact whose
// bytes depend on the seed, plus a short narration line.
REGISTER_SCENARIO(serve_unit_probe, "test", "serve unit-test probe") {
  std::string csv = "index,value\n";
  char buf[64];
  for (int i = 0; i < 8; ++i) {
    std::snprintf(buf, sizeof buf, "%d,%llu\n", i,
                  static_cast<unsigned long long>(ctx.seed * 1000003ULL + i));
    csv += buf;
  }
  ctx.sink.note("probe ran");
  ctx.sink.raw_artifact("probe.csv", csv);
  ctx.sink.raw_artifact("scale.txt",
                        std::string(runner::to_string(ctx.scale)) + "\n");
  return 0;
}

REGISTER_SCENARIO(serve_unit_fails, "test", "serve unit-test failing probe") {
  ctx.sink.raw_artifact("partial.csv", "should never be served\n");
  return 3;
}

std::string result_of(const std::string& response) {
  // The payload embeds verbatim and is canonical compact, so parse ->
  // dump(0) of the `result` member reproduces its exact bytes.
  return base::parse_json(response).at("result").dump(0);
}

}  // namespace

// -------------------------------------------------------------- ResultCache

TEST(ResultCache, MemoryLruHitsAndEviction) {
  serve::ResultCache cache("", 2);
  std::string out;
  EXPECT_FALSE(cache.get(1, &out));
  cache.put(1, "one");
  cache.put(2, "two");
  ASSERT_TRUE(cache.get(1, &out));  // 1 becomes most-recent
  EXPECT_EQ(out, "one");
  cache.put(3, "three");  // evicts 2, the least-recent
  EXPECT_FALSE(cache.get(2, &out));
  ASSERT_TRUE(cache.get(1, &out));
  ASSERT_TRUE(cache.get(3, &out));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.mem_hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ResultCache, DiskLevelSurvivesTheInstance) {
  const std::string dir = temp_dir("cache");
  const std::string payload = "{\"x\":1}";
  {
    serve::ResultCache cache(dir, 4);
    cache.put(0xabcdef, payload);
  }
  // No tmp residue: writes are tmp + rename.
  for (const auto& e : fs::directory_iterator(dir))
    EXPECT_EQ(e.path().extension(), ".json") << e.path();
  serve::ResultCache fresh(dir, 4);
  std::string out;
  ASSERT_TRUE(fresh.get(0xabcdef, &out));
  EXPECT_EQ(out, payload);
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  // Promoted to memory: a second get is a memory hit.
  ASSERT_TRUE(fresh.get(0xabcdef, &out));
  EXPECT_EQ(fresh.stats().mem_hits, 1u);
  fs::remove_all(dir);
}

namespace {

// Ages an on-disk entry so the size-capped eviction sees a deterministic
// recency order regardless of filesystem mtime resolution.
void age_entry(const std::string& path, int hours_ago) {
  fs::last_write_time(path, fs::file_time_type::clock::now() -
                                std::chrono::hours(hours_ago));
}

std::uintmax_t dir_bytes(const std::string& dir) {
  std::uintmax_t total = 0;
  for (const auto& e : fs::directory_iterator(dir)) total += e.file_size();
  return total;
}

}  // namespace

TEST(ResultCache, DiskCapEvictsLeastRecentlyUsed) {
  const std::string dir = temp_dir("cache_cap");
  const std::string payload(100, 'x');
  {
    serve::ResultCache cache(dir, 1);
    cache.set_disk_max_bytes(250);  // fits two 100-byte entries
    cache.put(1, payload);
    age_entry(cache.entry_path(1), 4);
    cache.put(2, payload);
    age_entry(cache.entry_path(2), 3);
    cache.put(3, payload);  // 300 bytes > 250: evicts 1 (oldest)
    age_entry(cache.entry_path(3), 2);
    cache.put(4, payload);  // evicts 2
    EXPECT_EQ(cache.stats().disk_evictions, 2u);
  }
  EXPECT_LE(dir_bytes(dir), 250u);
  serve::ResultCache fresh(dir, 4);
  std::string out;
  EXPECT_FALSE(fresh.get(1, &out));
  EXPECT_FALSE(fresh.get(2, &out));
  EXPECT_TRUE(fresh.get(3, &out));
  EXPECT_TRUE(fresh.get(4, &out));
  fs::remove_all(dir);
}

TEST(ResultCache, DiskReadRefreshesRecencySoHotEntriesSurvive) {
  const std::string dir = temp_dir("cache_touch");
  const std::string payload(100, 'x');
  {
    serve::ResultCache warmup(dir, 1);
    warmup.put(1, payload);
    warmup.put(2, payload);
  }
  age_entry(serve::ResultCache(dir).entry_path(1), 5);  // 1 is the oldest...
  age_entry(serve::ResultCache(dir).entry_path(2), 4);
  serve::ResultCache cache(dir, 1);
  cache.set_disk_max_bytes(250);
  std::string out;
  ASSERT_TRUE(cache.get(1, &out));  // ...but the disk hit touches it hot
  cache.put(3, payload);            // over cap: evicts 2, not 1
  serve::ResultCache fresh(dir, 4);
  EXPECT_TRUE(fresh.get(1, &out));
  EXPECT_FALSE(fresh.get(2, &out));
  EXPECT_TRUE(fresh.get(3, &out));
  fs::remove_all(dir);
}

TEST(ResultCache, OversizedPayloadSparesTheEntryJustWritten) {
  const std::string dir = temp_dir("cache_spare");
  serve::ResultCache cache(dir, 4);
  cache.set_disk_max_bytes(50);
  const std::string payload(100, 'x');  // alone it already exceeds the cap
  cache.put(1, payload);
  EXPECT_EQ(cache.stats().disk_evictions, 0u);  // never deletes itself
  age_entry(cache.entry_path(1), 1);
  cache.put(2, payload);  // evicts 1, spares 2 even though 2 > cap
  EXPECT_EQ(cache.stats().disk_evictions, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(1)));
  EXPECT_TRUE(fs::exists(cache.entry_path(2)));
  fs::remove_all(dir);
}

TEST(ResultCache, DiskCapInitializesFromTheEnvironment) {
  const std::string dir = temp_dir("cache_env");
  ::setenv("UWBAMS_CACHE_MAX_MB", "0.5", 1);
  serve::ResultCache capped(dir, 4);
  ::unsetenv("UWBAMS_CACHE_MAX_MB");
  EXPECT_EQ(capped.disk_max_bytes(), 512u * 1024u);
  serve::ResultCache uncapped(dir, 4);
  EXPECT_EQ(uncapped.disk_max_bytes(), 0u);  // default: unbounded
  fs::remove_all(dir);
}

// -------------------------------------------------------- protocol parsing

TEST(Protocol, StrictParseAcceptsTheCanonicalLine) {
  serve::Request req;
  req.scenario = "fig6_ber";
  req.scale = runner::Scale::kFast;
  req.seed = 7;
  const serve::Request back = serve::Request::parse(req.to_line());
  EXPECT_EQ(back.scenario, "fig6_ber");
  EXPECT_EQ(back.scale, runner::Scale::kFast);
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.content_key(), req.content_key());
}

TEST(Protocol, MalformedRequestsAreStructuredErrors) {
  const char* bad[] = {
      "",                                            // empty
      "not json at all",                             // garbage
      "{\"schema\":\"uwbams-serve-v1\"",             // truncated
      "[1,2,3]",                                     // not an object
      "{\"op\":\"run\",\"scenario\":\"x\"}",         // missing schema
      "{\"schema\":\"uwbams-serve-v2\",\"scenario\":\"x\"}",  // wrong version
      "{\"schema\":\"uwbams-serve-v1\",\"op\":\"fly\"}",      // unknown op
      "{\"schema\":\"uwbams-serve-v1\"}",            // run without scenario
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"x\",\"sede\":1}",
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"x\",\"scale\":\"big\"}",
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"x\",\"tier\":\"gold\"}",
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"x\",\"seed\":1.5}",
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"x\",\"seed\":\"17\"}",
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"x\",\"seed\":\"0xzz\"}",
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":true}",  // kind mismatch
  };
  for (const char* line : bad)
    EXPECT_THROW(serve::Request::parse(line), serve::ProtocolError) << line;
  // Oversized: refused before parsing.
  std::string huge = "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"";
  huge += std::string(serve::kMaxRequestBytes, 'a');
  huge += "\"}";
  EXPECT_THROW(serve::Request::parse(huge), serve::ProtocolError);
}

TEST(Protocol, SeedAboveDoublePrecisionNeedsHex) {
  // 2^53 + 1 is not exactly representable; the hex form is.
  EXPECT_THROW(
      serve::Request::parse("{\"schema\":\"uwbams-serve-v1\",\"scenario\":"
                            "\"x\",\"seed\":9007199254740993}"),
      serve::ProtocolError);
  const serve::Request req = serve::Request::parse(
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"x\","
      "\"seed\":\"0xdeadbeefcafebabe\"}");
  EXPECT_EQ(req.seed, 0xdeadbeefcafebabeULL);
}

// ------------------------------------------------------- service semantics

TEST(Service, ErrorsAreResponsesNeverCrashesNeverPartialRuns) {
  serve::ResultCache cache;
  base::ParallelRunner pool(1);
  serve::ScenarioService svc(cache, pool);
  for (const std::string line :
       {std::string("garbage"), std::string("{\"schema\":\"wrong\"}"),
        std::string("{\"schema\":\"uwbams-serve-v1\",\"scenario\":"
                    "\"no_such_scenario\"}")}) {
    const base::JsonValue resp = base::parse_json(svc.handle_line(line));
    EXPECT_EQ(resp.at("status").as_string(), "error") << line;
    EXPECT_FALSE(resp.at("error").as_string().empty()) << line;
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 3u);
  EXPECT_EQ(stats.computations, 0u);  // nothing partially executed
}

TEST(Service, ColdThenWarmIsByteIdenticalAndCached) {
  serve::ResultCache cache;
  base::ParallelRunner pool(2);
  serve::ScenarioService svc(cache, pool);
  const std::string line =
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"serve_unit_probe\","
      "\"scale\":\"fast\",\"seed\":11}";

  const std::string cold = svc.handle_line(line);
  const base::JsonValue cold_doc = base::parse_json(cold);
  EXPECT_EQ(cold_doc.at("status").as_string(), "ok");
  EXPECT_EQ(cold_doc.at("cache").as_string(), "miss");
  const base::JsonValue payload = cold_doc.at("result");
  EXPECT_EQ(payload.at("schema").as_string(), "uwbams-serve-result-v1");
  EXPECT_EQ(payload.at("scenario").as_string(), "serve_unit_probe");
  EXPECT_EQ(payload.at("status").as_number(), 0.0);
  const std::string probe_csv =
      payload.at("artifacts").at("probe.csv").as_string();
  EXPECT_NE(probe_csv.find("0,11000033\n"), std::string::npos);

  const std::string warm = svc.handle_line(line);
  EXPECT_EQ(base::parse_json(warm).at("cache").as_string(), "hit");
  EXPECT_EQ(result_of(warm), result_of(cold));

  // A different seed is a different key: cold again.
  const std::string other = svc.handle_line(
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"serve_unit_probe\","
      "\"scale\":\"fast\",\"seed\":12}");
  EXPECT_EQ(base::parse_json(other).at("cache").as_string(), "miss");
  EXPECT_NE(result_of(other), result_of(cold));

  const auto stats = svc.stats();
  EXPECT_EQ(stats.computations, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(Service, FailedRunsAreErrorsAndNotCached) {
  serve::ResultCache cache;
  base::ParallelRunner pool(1);
  serve::ScenarioService svc(cache, pool);
  const std::string line =
      "{\"schema\":\"uwbams-serve-v1\",\"scenario\":\"serve_unit_fails\"}";
  for (int attempt = 0; attempt < 2; ++attempt) {
    const base::JsonValue resp = base::parse_json(svc.handle_line(line));
    EXPECT_EQ(resp.at("status").as_string(), "error");
    EXPECT_NE(resp.at("error").as_string().find("serve_unit_fails"),
              std::string::npos);
  }
  // Both attempts computed: a failure must never be served from cache.
  EXPECT_EQ(svc.stats().computations, 2u);
  EXPECT_EQ(svc.stats().cache_hits, 0u);
}

TEST(Service, ControlOps) {
  serve::ResultCache cache;
  base::ParallelRunner pool(1);
  serve::ScenarioService svc(cache, pool);
  const base::JsonValue pong = base::parse_json(
      svc.handle_line("{\"schema\":\"uwbams-serve-v1\",\"op\":\"ping\"}"));
  EXPECT_EQ(pong.at("op").as_string(), "ping");
  EXPECT_EQ(pong.at("status").as_string(), "ok");

  const base::JsonValue stats = base::parse_json(
      svc.handle_line("{\"schema\":\"uwbams-serve-v1\",\"op\":\"stats\"}"));
  EXPECT_EQ(stats.at("stats").at("requests").as_number(), 2.0);

  EXPECT_FALSE(svc.shutdown_requested());
  base::parse_json(svc.handle_line(
      "{\"schema\":\"uwbams-serve-v1\",\"op\":\"shutdown\"}"));
  EXPECT_TRUE(svc.shutdown_requested());
  EXPECT_TRUE(svc.wait_shutdown_for(1));
}

// ------------------------------------------------------- characterize memo

TEST(Memo, CharacterizationRoundTripIsExact) {
  core::ItdCharacterization ch;
  ch.ac = {37.123456789012345, 1.25e6, 3.5e9, 0.0625};
  ch.unity_gain_freq = 1.9999999999999998e8;
  ch.input_linear_range = 0.123456789;
  ch.slew_rate = 8.75e6;
  ch.sweep.points.push_back({1e3, {0.1234567890123456, -2.5e-3}});
  ch.sweep.points.push_back({1e9, {-7.0, 1.0 / 3.0}});
  const core::ItdCharacterization back =
      core::memo::characterization_from_json(
          core::memo::characterization_to_json(ch));
  EXPECT_EQ(back.ac.dc_gain_db, ch.ac.dc_gain_db);
  EXPECT_EQ(back.ac.f_pole1, ch.ac.f_pole1);
  EXPECT_EQ(back.ac.f_pole2, ch.ac.f_pole2);
  EXPECT_EQ(back.ac.rms_error_db, ch.ac.rms_error_db);
  EXPECT_EQ(back.unity_gain_freq, ch.unity_gain_freq);
  EXPECT_EQ(back.input_linear_range, ch.input_linear_range);
  EXPECT_EQ(back.slew_rate, ch.slew_rate);
  ASSERT_EQ(back.sweep.points.size(), ch.sweep.points.size());
  for (std::size_t i = 0; i < ch.sweep.points.size(); ++i) {
    EXPECT_EQ(back.sweep.points[i].freq, ch.sweep.points[i].freq);
    EXPECT_EQ(back.sweep.points[i].value, ch.sweep.points[i].value);
  }
}

TEST(Memo, KeysOnEveryKnobAndCodeVersion) {
  const spice::ItdSizing sizing;
  core::CharacterizeOptions opts;
  const std::uint64_t key = core::memo::characterize_content_key(sizing, opts);

  spice::ItdSizing other_sizing;
  other_sizing.c_int *= 2.0;
  EXPECT_NE(core::memo::characterize_content_key(other_sizing, opts), key);

  core::CharacterizeOptions other_opts;
  other_opts.points_per_decade += 1;
  EXPECT_NE(core::memo::characterize_content_key(sizing, other_opts), key);

  core::CharacterizeOptions other_transient;
  other_transient.transient.reltol *= 0.5;
  EXPECT_NE(core::memo::characterize_content_key(sizing, other_transient),
            key);
}

TEST(Memo, RepeatCharacterizationIsAMemoryHitAndBitIdentical) {
  core::memo::reset_for_tests();
  // A deliberately coarse, transient-free setup keeps this test fast; the
  // memo key covers these knobs, so the coarse entries cannot leak into
  // a full-fidelity caller.
  core::CharacterizeOptions opts;
  opts.points_per_decade = 2;
  opts.measure_linear_range = false;
  opts.measure_slew = false;
  const auto cold = core::memo::characterize_itd_cached({}, opts);
  EXPECT_EQ(core::memo::stats().misses, 1u);
  const auto warm = core::memo::characterize_itd_cached({}, opts);
  EXPECT_EQ(core::memo::stats().mem_hits, 1u);
  EXPECT_EQ(warm.ac.dc_gain_db, cold.ac.dc_gain_db);
  EXPECT_EQ(warm.ac.f_pole1, cold.ac.f_pole1);
  EXPECT_EQ(warm.ac.f_pole2, cold.ac.f_pole2);
  EXPECT_EQ(warm.unity_gain_freq, cold.unity_gain_freq);
  ASSERT_EQ(warm.sweep.points.size(), cold.sweep.points.size());
  for (std::size_t i = 0; i < cold.sweep.points.size(); ++i)
    EXPECT_EQ(warm.sweep.points[i].value, cold.sweep.points[i].value);
  // The memo result matches a direct, un-memoized call bit for bit.
  const auto direct = core::characterize_itd({}, opts);
  EXPECT_EQ(warm.ac.dc_gain_db, direct.ac.dc_gain_db);
  EXPECT_EQ(warm.slew_rate, direct.slew_rate);
  core::memo::reset_for_tests();
}

// -------------------------------------------------------- surrogate cache

TEST(SurrogateCache, KeysOnEveryKnob) {
  net::CalibrationConfig cfg;
  const std::uint64_t key =
      net::surrogate_content_key(cfg, core::IntegratorKind::kIdeal);

  EXPECT_NE(net::surrogate_content_key(cfg, core::IntegratorKind::kBehavioral),
            key);

  net::CalibrationConfig c1 = cfg;
  c1.seed += 1;
  EXPECT_NE(net::surrogate_content_key(c1, core::IntegratorKind::kIdeal), key);

  net::CalibrationConfig c2 = cfg;
  c2.samples_per_cell += 1;
  EXPECT_NE(net::surrogate_content_key(c2, core::IntegratorKind::kIdeal), key);

  net::CalibrationConfig c3 = cfg;
  c3.ranges_m.push_back(13.0);
  EXPECT_NE(net::surrogate_content_key(c3, core::IntegratorKind::kIdeal), key);

  net::CalibrationConfig c4 = cfg;
  c4.twr.sys.dt *= 2.0;
  EXPECT_NE(net::surrogate_content_key(c4, core::IntegratorKind::kIdeal), key);

  net::CalibrationConfig c5 = cfg;
  c5.outlier_threshold_m *= 2.0;
  EXPECT_NE(net::surrogate_content_key(c5, core::IntegratorKind::kIdeal), key);
}

TEST(SurrogateCache, RepeatCalibrationIsServedFromTheCache) {
  net::CalibrationConfig cfg;
  cfg.ranges_m = {5.0};
  cfg.noise_psd = {8e-19};
  cfg.dppm = {0.0};
  cfg.samples_per_cell = 2;
  cfg.seed = 424242;  // a key no other test warms
  base::ParallelRunner pool(2);

  int quar = -7;
  std::string source;
  const auto cold = net::load_or_calibrate_surrogate(
      cfg, core::IntegratorKind::kIdeal, &pool, &quar, &source);
  EXPECT_GE(quar, 0);
  EXPECT_EQ(source, "inline calibration");

  const auto warm = net::load_or_calibrate_surrogate(
      cfg, core::IntegratorKind::kIdeal, &pool, &quar, &source);
  EXPECT_EQ(quar, -1);  // nothing ran
  EXPECT_NE(source.find("cache"), std::string::npos);
  EXPECT_TRUE(warm == cold);               // table-level equality
  EXPECT_EQ(warm.to_json(), cold.to_json());  // byte-level equality
}
