// Analysis-level tests: transient against analytic RC/RLC solutions, AC
// against closed-form transfer functions, fallback robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "base/units.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::spice;

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // 1 kOhm / 1 nF low-pass driven by a step at t=0 (via PULSE).
  Circuit c;
  const NodeId in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(),
                       Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-9);
  TransientOptions opts;
  opts.dt = 10e-9;  // tau/100
  TransientSession sim(c, opts);
  const double tau = 1e-6;
  for (int i = 0; i < 300; ++i) {
    sim.step();
    const double expect = 1.0 - std::exp(-sim.time() / tau);
    EXPECT_NEAR(sim.v(out), expect, 5e-3) << "t=" << sim.time();
  }
}

TEST(Transient, RcMatchesForSweptTimeConstants) {
  // Property: normalized step response is invariant across RC values.
  for (const double r : {100.0, 10e3}) {
    for (const double cap : {10e-12, 1e-9}) {
      Circuit c;
      const NodeId in = c.node("in"), out = c.node("out");
      c.add<VoltageSource>("V1", in, c.ground(),
                           Waveform::pulse(0.0, 1.0, 0.0, 1e-15, 1e-15, 1.0, 2.0));
      c.add<Resistor>("R1", in, out, r);
      c.add<Capacitor>("C1", out, c.ground(), cap);
      const double tau = r * cap;
      TransientOptions opts;
      opts.dt = tau / 50.0;
      TransientSession sim(c, opts);
      sim.run_until(tau);
      EXPECT_NEAR(sim.v(out), 1.0 - std::exp(-1.0), 0.01)
          << "R=" << r << " C=" << cap;
    }
  }
}

TEST(Transient, SeriesRlcRingingFrequency) {
  // Underdamped series RLC: check the ringing period of the cap voltage.
  Circuit c;
  const NodeId in = c.node("in"), mid = c.node("mid"), out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(),
                       Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
  c.add<Resistor>("R1", in, mid, 10.0);
  c.add<Inductor>("L1", mid, out, 1e-6);
  c.add<Capacitor>("C1", out, c.ground(), 1e-9);
  // f0 = 1/(2*pi*sqrt(LC)) = 5.03 MHz.
  TransientOptions opts;
  opts.dt = 1e-9;
  TransientSession sim(c, opts);
  // Find the first two maxima crossing points via 1.0-level crossings.
  double first_cross = -1.0, second_cross = -1.0;
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    sim.step();
    const double v = sim.v(out);
    if (prev < 1.0 && v >= 1.0) {
      if (first_cross < 0)
        first_cross = sim.time();
      else if (second_cross < 0)
        second_cross = sim.time();
    }
    prev = v;
  }
  ASSERT_GT(first_cross, 0.0);
  ASSERT_GT(second_cross, 0.0);
  const double period = second_cross - first_cross;
  const double f0 = 1.0 / (2 * units::pi * std::sqrt(1e-6 * 1e-9));
  EXPECT_NEAR(period, 1.0 / f0, 0.1 / f0);
}

TEST(Transient, EnergyConservationLcTank) {
  // Lossless LC tank started from a charged cap: total energy must be
  // conserved by the trapezoidal method to good accuracy.
  Circuit c;
  const NodeId n = c.node("n");
  c.add<Inductor>("L1", n, c.ground(), 1e-6);
  c.add<Capacitor>("C1", n, c.ground(), 1e-9);
  // Kick the tank with a short current pulse.
  c.add<CurrentSource>("I1", c.ground(), n,
                       Waveform::pulse(0.0, 1e-3, 0.0, 1e-9, 1e-9, 50e-9, 1.0));
  TransientOptions opts;
  opts.dt = 2e-9;
  TransientSession sim(c, opts);
  sim.run_until(100e-9);  // pulse over; tank now rings freely
  double vmax1 = 0.0;
  sim.run_until(1.1e-6);
  for (int i = 0; i < 400; ++i) {
    sim.step();
    vmax1 = std::max(vmax1, std::abs(sim.v(n)));
  }
  double vmax2 = 0.0;
  sim.run_until(5e-6);
  for (int i = 0; i < 400; ++i) {
    sim.step();
    vmax2 = std::max(vmax2, std::abs(sim.v(n)));
  }
  EXPECT_GT(vmax1, 0.0);
  EXPECT_NEAR(vmax2 / vmax1, 1.0, 0.02);  // <2% amplitude drift
}

TEST(Transient, SineSourceTracks) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::sine(0.0, 1.0, 10e6));
  c.add<Resistor>("R1", in, c.ground(), 1e3);
  TransientOptions opts;
  opts.dt = 1e-9;
  TransientSession sim(c, opts);
  for (int i = 0; i < 200; ++i) {
    sim.step();
    EXPECT_NEAR(sim.v(in), std::sin(2 * units::pi * 10e6 * sim.time()), 1e-6);
  }
}

TEST(Ac, RcLowPassMagnitudeAndPhase) {
  Circuit c;
  const NodeId in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(0.0), 1.0);
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-9);
  const auto op = solve_op(c);
  ASSERT_TRUE(op.converged);
  const double fc = 1.0 / (2 * units::pi * 1e3 * 1e-9);  // 159 kHz
  const auto sweep = run_ac(c, op.x, std::vector<double>{fc}, out);
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_NEAR(sweep.mag_db(0), -3.0103, 0.01);
  EXPECT_NEAR(sweep.phase_deg(0), -45.0, 0.1);
}

TEST(Ac, RcHighPassShape) {
  Circuit c;
  const NodeId in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(0.0), 1.0);
  c.add<Capacitor>("C1", in, out, 1e-9);
  c.add<Resistor>("R1", out, c.ground(), 1e3);
  const auto op = solve_op(c);
  ASSERT_TRUE(op.converged);
  const auto freqs = log_frequency_grid(1e3, 100e6, 2);
  const auto sweep = run_ac(c, op.x, freqs, out);
  // Rising 20 dB/dec below fc, flat above.
  EXPECT_LT(sweep.mag_db(0), -40.0);
  EXPECT_NEAR(sweep.mag_db(sweep.points.size() - 1), 0.0, 0.1);
}

TEST(Ac, GridIsLogSpaced) {
  const auto freqs = log_frequency_grid(1e3, 1e6, 10);
  ASSERT_EQ(freqs.size(), 31u);
  EXPECT_NEAR(freqs.front(), 1e3, 1e-6);
  EXPECT_NEAR(freqs.back(), 1e6, 1.0);
  for (std::size_t i = 1; i < freqs.size(); ++i)
    EXPECT_NEAR(freqs[i] / freqs[i - 1], std::pow(10.0, 0.1), 1e-9);
}

TEST(Ac, CommonSourceAmpGainIsGmRout) {
  // NMOS common-source stage with resistive load: |Av| ~ gm*(Rd||ro).
  Circuit c;
  const NodeId vdd = c.node("vdd"), in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("Vdd", vdd, c.ground(), Waveform::dc(1.8));
  c.add<VoltageSource>("Vin", in, c.ground(), Waveform::dc(0.6), 1.0);
  c.add<Resistor>("Rd", vdd, out, 20e3);
  auto& m = c.add<Mosfet>("M1", out, in, c.ground(), c.ground(),
                          builtin_model("nmos"), 5e-6, 0.5e-6);
  const auto op = solve_op(c);
  ASSERT_TRUE(op.converged);
  const auto e = m.evaluate_at(op.x);
  ASSERT_EQ(e.region, MosEval::Region::kSaturation);
  const double ro = 1.0 / e.gds;
  const double av_expect = e.gm * (20e3 * ro) / (20e3 + ro);
  const auto sweep = run_ac(c, op.x, std::vector<double>{1e3}, out);
  EXPECT_NEAR(std::abs(sweep.points[0].value), av_expect, av_expect * 0.01);
  // Inverting stage: phase ~ 180 deg.
  EXPECT_NEAR(std::abs(sweep.phase_deg(0)), 180.0, 1.0);
}

TEST(Transient, MosInverterSwitchingDelayFinite) {
  // Drive a loaded inverter with a fast pulse; output must swing rail to
  // rail and show a finite RC-limited transition.
  Circuit c;
  const NodeId vdd = c.node("vdd"), in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("Vdd", vdd, c.ground(), Waveform::dc(1.8));
  c.add<VoltageSource>("Vin", in, c.ground(),
                       Waveform::pulse(0.0, 1.8, 1e-9, 50e-12, 50e-12, 5e-9, 10e-9));
  c.add<Mosfet>("MN", out, in, c.ground(), c.ground(), builtin_model("nmos"),
                1e-6, 0.18e-6);
  c.add<Mosfet>("MP", out, in, vdd, vdd, builtin_model("pmos"), 2e-6, 0.18e-6);
  c.add<Capacitor>("CL", out, c.ground(), 20e-15);
  TransientOptions opts;
  opts.dt = 10e-12;
  TransientSession sim(c, opts);
  double vmin = 2.0, vmax = -1.0;
  for (int i = 0; i < 900; ++i) {
    sim.step();
    vmin = std::min(vmin, sim.v(out));
    vmax = std::max(vmax, sim.v(out));
  }
  EXPECT_LT(vmin, 0.05);
  EXPECT_GT(vmax, 1.75);
}

TEST(Op, StrategyReportedAndDiagnosticsCount) {
  Circuit c;
  const NodeId n = c.node("n");
  c.add<VoltageSource>("V1", n, c.ground(), Waveform::dc(1.0));
  c.add<Resistor>("R1", n, c.ground(), 1e3);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.strategy, "newton");
  EXPECT_GE(r.iterations, 1);
}

}  // namespace
