// Netlist front-end tests: value suffixes, cards, subckt flattening, and
// equivalence between the text netlist and the programmatic builder.
#include <gtest/gtest.h>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/op.hpp"

namespace {

using namespace uwbams::spice;

TEST(SpiceValue, Suffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5k"), 1.5e3);
  EXPECT_DOUBLE_EQ(parse_spice_value("10meg"), 10e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("3t"), 3e12);
  EXPECT_DOUBLE_EQ(parse_spice_value("4m"), 4e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("5u"), 5e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("6n"), 6e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("7p"), 7e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("8f"), 8e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-9"), 1e-9);
  EXPECT_THROW(parse_spice_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("1x"), std::invalid_argument);
}

TEST(Parser, DividerFromText) {
  Circuit c;
  parse_netlist(R"(* divider
V1 in 0 DC 10
R1 in mid 3k
R2 mid 0 1k
.end
)",
                c);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, c.find_node("mid")), 2.5, 1e-9);
}

TEST(Parser, ContinuationAndComments) {
  Circuit c;
  parse_netlist("* title comment\n"
                "V1 in 0\n"
                "+ DC 5 ; inline comment\n"
                "R1 in 0 1k\n",
                c);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, c.find_node("in")), 5.0, 1e-9);
}

TEST(Parser, PulseSourceCard) {
  Circuit c;
  parse_netlist("V1 a 0 PULSE(0 1.8 10n 1n 1n 5n 20n)\nR1 a 0 1k\n", c);
  auto* v = dynamic_cast<VoltageSource*>(c.find_device("V1"));
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v->value(13e-9), 1.8);
}

TEST(Parser, ModelCardOverrides) {
  Circuit c;
  parse_netlist(R"(.model mynmos nmos vt0=0.6 kp=100u lambda=0.2
M1 d g 0 0 mynmos W=2u L=0.5u
V1 d 0 DC 1.8
V2 g 0 DC 1.2
)",
                c);
  auto* m = dynamic_cast<Mosfet*>(c.find_device("M1"));
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->model().vt0, 0.6);
  EXPECT_DOUBLE_EQ(m->model().kp, 100e-6);
  EXPECT_DOUBLE_EQ(m->model().lambda, 0.2);
  EXPECT_DOUBLE_EQ(m->width(), 2e-6);
  EXPECT_DOUBLE_EQ(m->length(), 0.5e-6);
}

TEST(Parser, SubcktFlattening) {
  Circuit c;
  parse_netlist(R"(* subckt test
.subckt divider top bot mid
R1 top mid 1k
R2 mid bot 1k
.ends
V1 in 0 DC 8
Xd1 in 0 m1 divider
Xd2 m1 0 m2 divider
)",
                c);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  // Xd2 loads Xd1's lower leg: v(m1) = 8 * (1k||2k)/(1k + 1k||2k) = 3.2.
  EXPECT_NEAR(c.voltage_in(r.x, c.find_node("m1")), 3.2, 1e-9);
  EXPECT_NEAR(c.voltage_in(r.x, c.find_node("m2")), 1.6, 1e-9);
  // Internal devices got instance-prefixed names.
  EXPECT_NE(c.find_device("Xd1.R1"), nullptr);
  EXPECT_NE(c.find_device("Xd2.R2"), nullptr);
}

TEST(Parser, NestedSubckts) {
  Circuit c;
  parse_netlist(R"(.subckt leg a b
R1 a b 2k
.ends
.subckt pair top bot
Xl1 top mid leg
Xl2 mid bot leg
.ends
V1 in 0 DC 4
Xp in 0 pair
)",
                c);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NE(c.find_device("Xp.Xl1.R1"), nullptr);
  EXPECT_NEAR(c.voltage_in(r.x, c.find_node("Xp.mid")), 2.0, 1e-9);
}

TEST(Parser, ErrorsAreDescriptive) {
  Circuit c1;
  EXPECT_THROW(parse_netlist("R1 a 0\n", c1), std::invalid_argument);
  Circuit c2;
  // Note the leading comment: a bare first line would be read as the SPICE
  // deck title, so the unsupported card must not be first.
  EXPECT_THROW(parse_netlist("* deck\nQ1 a b c model\n", c2),
               std::invalid_argument);
  Circuit c3;
  EXPECT_THROW(parse_netlist("X1 a b nosuch\n", c3), std::invalid_argument);
  Circuit c4;
  EXPECT_THROW(parse_netlist(".subckt foo a\nR1 a 0 1k\n", c4),
               std::invalid_argument);
}

TEST(Parser, VcvsVccsCards) {
  Circuit c;
  parse_netlist(R"(V1 in 0 DC 1
E1 e 0 in 0 4
RLe e 0 1k
G1 0 g in 0 1m
RLg g 0 2k
)",
                c);
  const auto r = solve_op(c);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(c.voltage_in(r.x, c.find_node("e")), 4.0, 1e-9);
  EXPECT_NEAR(c.voltage_in(r.x, c.find_node("g")), 2.0, 1e-9);
}

}  // namespace
