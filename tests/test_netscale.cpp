// test_netscale — the src/net/ surrogate + event-driven engine tier.
//
// Three layers of guarantees:
//   * artifact layer: the JSON parser round-trips the surrogate table byte
//     for byte and rejects malformed/mangled files loudly;
//   * statistical layer: the calibrated surrogate matches *held-out*
//     full-physics TWR exchanges (bias confidence interval, spread band,
//     outlier/failure binomial bounds) — the surrogate-vs-engine honesty
//     gate CI runs on every push;
//   * determinism layer: calibration and the network engine are
//     bit-identical across worker counts and re-runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/parallel.hpp"
#include "base/random.hpp"
#include "core/block_variant.hpp"
#include "net/calibrate.hpp"
#include "net/engine.hpp"
#include "base/json.hpp"
#include "net/mobility.hpp"
#include "net/surrogate.hpp"

using namespace uwbams;

namespace {

// Synthetic table over a grid wide enough for the engine's 12 m link
// budget; every cell carries the same mixture parameters.
net::SurrogateTable synthetic_table(double bias, double spread,
                                    double p_fail = 0.0,
                                    double p_outlier = 0.0) {
  net::SurrogateTable t({3.0, 6.0, 9.0, 12.0}, {8e-19}, {0.0, 40.0},
                        /*channel_class=*/{0.0, 1.0}, 4.8,
                        /*calib_seed=*/7, /*samples_per_cell=*/8);
  for (std::size_t i = 0; i < t.cell_count(); ++i) {
    auto& c = t.cell_at(i);
    c.samples = 8;
    c.ok = 8;
    c.outliers = 0;
    c.p_fail = p_fail;
    c.p_outlier = p_outlier;
    c.bias_m = bias;
    c.spread_m = spread;
    c.outlier_bias_m = 9.6;
    c.outlier_spread_m = 0.5;
  }
  return t;
}

uwb::IntegratorFactory ideal_factory() {
  return core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                       uwb::SystemConfig{});
}

// Small single-cell calibration config: full physics, so keep the exchange
// count low (each exchange is ~45 ms of waveform simulation).
net::CalibrationConfig tiny_calibration() {
  net::CalibrationConfig cal;
  cal.twr.sys.dt = 0.2e-9;
  cal.ranges_m = {8.0};
  cal.noise_psd = {8e-19};
  cal.dppm = {0.0};
  cal.samples_per_cell = 6;
  cal.seed = 11;
  return cal;
}

}  // namespace

// ----------------------------------------------------------------- JSON

TEST(NetJson, RoundTripPreservesValuesAndIsByteStable) {
  base::JsonObject obj;
  obj["name"] = base::JsonValue("table");
  obj["count"] = base::JsonValue(3);
  obj["scale"] = base::JsonValue(0.1);  // not exactly representable
  obj["flag"] = base::JsonValue(true);
  base::JsonArray arr;
  arr.emplace_back(1.5);
  arr.emplace_back("two");
  arr.emplace_back(base::JsonValue());
  obj["items"] = base::JsonValue(std::move(arr));
  const base::JsonValue v{std::move(obj)};

  const std::string text = v.dump(2);
  const base::JsonValue parsed = base::parse_json(text);
  EXPECT_EQ(parsed.at("name").as_string(), "table");
  EXPECT_EQ(parsed.at("count").as_number(), 3.0);
  EXPECT_EQ(parsed.at("scale").as_number(), 0.1);
  EXPECT_TRUE(parsed.at("flag").as_bool());
  ASSERT_EQ(parsed.at("items").as_array().size(), 3u);
  EXPECT_TRUE(parsed.at("items").as_array()[2].is_null());
  // parse -> dump is the identity on canonical output (%.17g + sorted keys).
  EXPECT_EQ(parsed.dump(2), text);
}

TEST(NetJson, RejectsMalformedInput) {
  EXPECT_THROW(base::parse_json("{"), base::JsonError);
  EXPECT_THROW(base::parse_json("[1, 2,]"), base::JsonError);
  EXPECT_THROW(base::parse_json("{\"a\": 1} garbage"), base::JsonError);
  EXPECT_THROW(base::parse_json("{\"a\" 1}"), base::JsonError);
  EXPECT_THROW(base::parse_json(""), base::JsonError);
  // Kind mismatches on access are schema errors, also loud.
  const base::JsonValue v = base::parse_json("{\"a\": 1}");
  EXPECT_THROW(v.at("missing"), base::JsonError);
  EXPECT_THROW(v.at("a").as_string(), base::JsonError);
}

// ------------------------------------------------------------- surrogate

TEST(Surrogate, JsonRoundTripIsExact) {
  net::SurrogateTable t = synthetic_table(0.8, 0.3, 0.05, 0.02);
  t.cell_at(3).bias_m = 1.23456789012345;  // exercise %.17g fidelity
  const std::string text = t.to_json();
  const net::SurrogateTable back = net::SurrogateTable::from_json(text);
  EXPECT_TRUE(t == back);
  EXPECT_EQ(back.to_json(), text);  // byte-stable cache round trip
}

TEST(Surrogate, FromJsonRejectsMangledTables) {
  const net::SurrogateTable t = synthetic_table(0.5, 0.2);
  // Schema renames, shuffled cells and out-of-range stats are all fatal.
  std::string bad_schema = t.to_json();
  const auto pos = bad_schema.find("uwbams-surrogate-v2");
  ASSERT_NE(pos, std::string::npos);
  bad_schema.replace(pos, 19, "uwbams-surrogate-v9");
  EXPECT_THROW(net::SurrogateTable::from_json(bad_schema),
               std::invalid_argument);

  std::string bad_prob = t.to_json();
  const auto ppos = bad_prob.find("\"p_fail\": 0");
  ASSERT_NE(ppos, std::string::npos);
  bad_prob.replace(ppos, 11, "\"p_fail\": 2");
  EXPECT_THROW(net::SurrogateTable::from_json(bad_prob),
               std::invalid_argument);

  EXPECT_THROW(net::SurrogateTable::from_json("{\"schema\": \"x\"}"),
               std::invalid_argument);
  EXPECT_THROW(net::SurrogateTable::from_json("not json"), base::JsonError);
}

TEST(Surrogate, LookupSelectsNearestCellAndClamps) {
  net::SurrogateTable t = synthetic_table(0.0, 0.1);
  // Tag each cell with a recognizable bias = range + dppm/100.
  for (std::size_t i = 0; i < t.cell_count(); ++i) {
    auto& c = t.cell_at(i);
    c.bias_m = c.range_m + c.dppm / 100.0 + c.channel_class * 1000.0;
  }
  EXPECT_EQ(t.lookup(6.4, 8e-19, 0.0, 0.0).bias_m, 6.0);
  EXPECT_EQ(t.lookup(7.6, 8e-19, 0.0, 0.0).bias_m, 9.0);
  EXPECT_EQ(t.lookup(0.1, 8e-19, 0.0, 0.0).bias_m, 3.0);    // clamped low
  EXPECT_EQ(t.lookup(100.0, 8e-19, 0.0, 0.0).bias_m, 12.0); // clamped high
  EXPECT_EQ(t.lookup(6.0, 8e-19, 35.0, 0.0).bias_m, 6.4);   // dppm axis
  EXPECT_EQ(t.lookup(6.0, 8e-19, -35.0, 0.0).bias_m, 6.4);  // |dppm| symmetric
  // Channel-class axis: nearest code, clamped like every other axis.
  EXPECT_EQ(t.lookup(6.0, 8e-19, 0.0, 1.0).bias_m, 1006.0);
  EXPECT_EQ(t.lookup(6.0, 8e-19, 0.0, 3.0).bias_m, 1006.0);  // clamped
}

TEST(Surrogate, DrawMatchesCellStatistics) {
  const net::SurrogateTable t = synthetic_table(1.0, 0.25, 0.1, 0.0);
  base::Rng rng(42);
  int ok = 0;
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto d = t.draw(6.0, 8e-19, 0.0, 0.0, rng);
    if (!d.ok) continue;
    ++ok;
    sum += d.error_m;
    EXPECT_EQ(d.distance_m, 6.0 + d.error_m);
  }
  const double fail_rate = 1.0 - static_cast<double>(ok) / n;
  EXPECT_NEAR(fail_rate, 0.1, 0.03);
  EXPECT_NEAR(sum / ok, 1.0, 0.05);

  const net::SurrogateTable dead = synthetic_table(0.0, 0.1, 1.0);
  base::Rng rng2(43);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(dead.draw(6.0, 8e-19, 0.0, 0.0, rng2).ok);
}

TEST(Surrogate, ConstructorRejectsBadAxes) {
  EXPECT_THROW(net::SurrogateTable({}, {1e-19}, {0.0}, {0.0}, 4.8, 1, 4),
               std::invalid_argument);
  EXPECT_THROW(
      net::SurrogateTable({5.0, 5.0}, {1e-19}, {0.0}, {0.0}, 4.8, 1, 4),
      std::invalid_argument);
  EXPECT_THROW(net::SurrogateTable({5.0}, {1e-19}, {0.0}, {0.0}, -1.0, 1, 4),
               std::invalid_argument);
  EXPECT_THROW(net::SurrogateTable({5.0}, {1e-19}, {0.0}, {}, 4.8, 1, 4),
               std::invalid_argument);
  EXPECT_THROW(
      net::SurrogateTable({5.0}, {1e-19}, {0.0}, {1.0, 0.0}, 4.8, 1, 4),
      std::invalid_argument);
}

// ------------------------------------------------ calibration determinism

TEST(Calibrate, BitIdenticalAcrossJobsAndMatchesSerial) {
  const auto cal = tiny_calibration();
  const auto fact = ideal_factory();
  const base::ParallelRunner pool1(1);
  const base::ParallelRunner pool8(8);
  const auto serial = net::calibrate_surrogate(cal, fact, nullptr);
  const auto j1 = net::calibrate_surrogate(cal, fact, &pool1);
  const auto j8 = net::calibrate_surrogate(cal, fact, &pool8);
  EXPECT_TRUE(serial == j1);
  EXPECT_TRUE(serial == j8);
  EXPECT_EQ(j1.to_json(), j8.to_json());  // artifact is byte-identical too
}

// ------------------------------------- surrogate vs full physics (held out)

TEST(Calibrate, HeldOutValidationAgreesWithFullPhysics) {
  // Two ranges, one cell row each: enough statistics to check the bias CI
  // and the rate bounds while staying affordable (~30 full exchanges).
  net::CalibrationConfig cal;
  cal.twr.sys.dt = 0.2e-9;
  cal.ranges_m = {5.0, 9.0};
  cal.noise_psd = {8e-19};
  cal.dppm = {0.0};
  cal.samples_per_cell = 10;
  cal.seed = 21;
  const auto fact = ideal_factory();
  const base::ParallelRunner pool(8);

  const auto table = net::calibrate_surrogate(cal, fact, &pool);
  const auto report = net::validate_surrogate(table, cal, 6, fact, &pool);

  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_GE(report.checked, 1);
  // The held-out seeds are disjoint from calibration, so agreement here is
  // a genuine statistical match, not seed reuse.
  EXPECT_EQ(report.passed, report.checked) << "surrogate drifted from the "
                                              "full-physics engine";
  for (const auto& v : report.cells) {
    if (!v.checked) continue;
    EXPECT_LE(v.bias_delta_m, v.bias_bound_m);
  }
  // The fitted cells must capture the leading-edge latch physics: the CM1
  // energy detector latches late, never early, so the inlier bias of a
  // mostly-acquiring cell cannot be meaningfully negative.
  for (const auto& c : table.cells()) {
    if (c.ok - c.outliers < 4) continue;
    EXPECT_GT(c.bias_m, -0.5);
  }
  // Validation must also be deterministic across worker counts.
  const auto report_j1 = net::validate_surrogate(table, cal, 6, fact, nullptr);
  ASSERT_EQ(report_j1.cells.size(), report.cells.size());
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(report_j1.cells[i].held_bias_m, report.cells[i].held_bias_m);
    EXPECT_EQ(report_j1.cells[i].ok, report.cells[i].ok);
  }
}

// ---------------------------------------------------------------- mobility

TEST(Mobility, StaysInsideAreaAndIsDeterministic) {
  const net::MobilityConfig cfg{net::MobilityKind::kWaypoint, 2.0, 30.0};
  net::MobilityModel a(cfg, 8, 99);
  net::MobilityModel b(cfg, 8, 99);
  std::vector<double> xa(8, 15.0), ya(8, 15.0), xb(8, 15.0), yb(8, 15.0);
  for (int step = 0; step < 50; ++step) {
    for (std::size_t t = 0; t < 8; ++t) {
      a.advance(t, 1.0, &xa[t], &ya[t]);
      b.advance(t, 1.0, &xb[t], &yb[t]);
      EXPECT_GE(xa[t], 0.0);
      EXPECT_LE(xa[t], 30.0);
      EXPECT_GE(ya[t], 0.0);
      EXPECT_LE(ya[t], 30.0);
      EXPECT_EQ(xa[t], xb[t]);
      EXPECT_EQ(ya[t], yb[t]);
    }
  }
  // Tags actually move.
  EXPECT_NE(xa[0], 15.0);

  // Velocity model: specular bounce keeps tags inside too.
  const net::MobilityConfig vcfg{net::MobilityKind::kVelocity, 3.0, 20.0};
  net::MobilityModel v(vcfg, 4, 7);
  std::vector<double> x(4, 10.0), y(4, 10.0);
  for (int step = 0; step < 40; ++step)
    for (std::size_t t = 0; t < 4; ++t) {
      v.advance(t, 1.0, &x[t], &y[t]);
      EXPECT_GE(x[t], 0.0);
      EXPECT_LE(x[t], 20.0);
      EXPECT_GE(y[t], 0.0);
      EXPECT_LE(y[t], 20.0);
    }
}

// ------------------------------------------------------------------ engine

TEST(Engine, ValidatesConfig) {
  const auto table = synthetic_table(0.0, 0.1);
  net::NetScaleConfig cfg;
  cfg.anchor_grid = 1;
  EXPECT_THROW(net::NetScaleEngine(cfg, table), std::invalid_argument);
  cfg = {};
  cfg.tag_count = 0;
  EXPECT_THROW(net::NetScaleEngine(cfg, table), std::invalid_argument);
  cfg = {};
  cfg.max_links_per_tag = 2;
  EXPECT_THROW(net::NetScaleEngine(cfg, table), std::invalid_argument);
  cfg = {};
  cfg.rounds = 0;
  EXPECT_THROW(net::NetScaleEngine(cfg, table), std::invalid_argument);
  EXPECT_THROW(net::NetScaleEngine({}, net::SurrogateTable{}),
               std::invalid_argument);
}

namespace {

net::NetScaleConfig engine_config() {
  net::NetScaleConfig cfg;
  cfg.seed = 5;
  cfg.area_m = 40.0;
  cfg.anchor_grid = 6;
  cfg.tag_count = 50;
  cfg.rounds = 3;
  cfg.ppm_spread = 20.0;
  return cfg;
}

void expect_results_equal(const net::NetScaleResult& a,
                          const net::NetScaleResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  ASSERT_EQ(a.tag_rounds.size(), b.tag_rounds.size());
  EXPECT_EQ(a.overall_rmse_m, b.overall_rmse_m);
  EXPECT_EQ(a.overall_availability, b.overall_availability);
  EXPECT_EQ(a.total_draws, b.total_draws);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].rmse_m, b.rounds[r].rmse_m);
    EXPECT_EQ(a.rounds[r].tags_solved, b.rounds[r].tags_solved);
    EXPECT_EQ(a.rounds[r].anchors_dark, b.rounds[r].anchors_dark);
    EXPECT_EQ(a.rounds[r].bias_est_m, b.rounds[r].bias_est_m);
    ASSERT_EQ(a.tag_rounds[r].size(), b.tag_rounds[r].size());
    for (std::size_t t = 0; t < a.tag_rounds[r].size(); ++t) {
      const auto& x = a.tag_rounds[r][t];
      const auto& y = b.tag_rounds[r][t];
      EXPECT_EQ(x.true_x, y.true_x);
      EXPECT_EQ(x.true_y, y.true_y);
      EXPECT_EQ(x.est_x, y.est_x);
      EXPECT_EQ(x.est_y, y.est_y);
      EXPECT_EQ(x.err_m, y.err_m);
      EXPECT_EQ(x.links, y.links);
      EXPECT_EQ(x.solved, y.solved);
    }
  }
}

}  // namespace

TEST(Engine, BitIdenticalAcrossJobsAndReruns) {
  const auto table = synthetic_table(0.7, 0.3, 0.05, 0.02);
  // Exercise every stochastic subsystem: mobility, dropout, loss, outliers.
  net::NetScaleConfig cfg = engine_config();
  cfg.mobility = net::MobilityKind::kWaypoint;
  cfg.packet_loss = 0.05;
  cfg.anchor_dropout = 0.1;
  cfg.dropout_rounds = 1;

  const base::ParallelRunner pool1(1);
  const base::ParallelRunner pool8(8);
  net::NetScaleEngine e_serial(cfg, table);
  net::NetScaleEngine e1(cfg, table);
  net::NetScaleEngine e8(cfg, table);
  net::NetScaleEngine e8b(cfg, table);
  const auto r_serial = e_serial.run(nullptr);
  const auto r1 = e1.run(&pool1);
  const auto r8 = e8.run(&pool8);
  const auto r8b = e8b.run(&pool8);
  expect_results_equal(r_serial, r1);
  expect_results_equal(r1, r8);
  expect_results_equal(r8, r8b);  // re-run on a fresh engine
}

TEST(Engine, ExactTableLocalizesExactly) {
  // Zero bias, zero spread, no failures: every draw returns the true
  // distance, so every tag must localize to numerical precision.
  const auto table = synthetic_table(0.0, 0.0);
  net::NetScaleEngine eng(engine_config(), table);
  const auto res = eng.run(nullptr);
  EXPECT_EQ(res.overall_availability, 1.0);
  EXPECT_LT(res.overall_rmse_m, 1e-6);
}

TEST(Engine, MultiExchangeMedianTightensTheFix) {
  // Same network, 1 vs 3 exchanges per link: the link estimate becomes
  // the median of 3 draws, shrinking the effective spread, so the
  // network RMSE must drop and the draw bookkeeping must triple.
  const auto table = synthetic_table(0.0, 0.8);
  net::NetScaleConfig cfg = engine_config();
  net::NetScaleEngine one(cfg, table);
  const auto r1 = one.run(nullptr);
  cfg.exchanges_per_link = 3;
  net::NetScaleEngine three(cfg, table);
  const auto r3 = three.run(nullptr);
  EXPECT_EQ(r3.overall_availability, 1.0);
  EXPECT_LT(r3.overall_rmse_m, r1.overall_rmse_m);
  EXPECT_EQ(r3.total_draws, 3 * r1.total_draws);

  cfg.exchanges_per_link = 0;
  EXPECT_THROW(net::NetScaleEngine(cfg, table), std::invalid_argument);
}

TEST(Engine, PerLinkCellBiasIsCalibratedOut) {
  // A large *calibrated* bias (it is in the table) with a small spread:
  // every link subtracts its own cell's bias_m, so the network localizes
  // accurately with no anchor-anchor help at all, and the residual
  // common-bias estimate stays near zero.
  const auto table = synthetic_table(1.2, 0.05);
  net::NetScaleConfig cfg = engine_config();
  cfg.bias_links_per_round = 0;
  net::NetScaleEngine eng(cfg, table);
  const auto res = eng.run(nullptr);
  EXPECT_EQ(res.overall_availability, 1.0);
  EXPECT_LT(res.overall_rmse_m, 0.4);
  EXPECT_EQ(res.rounds.back().bias_est_m, 0.0);
}

TEST(Engine, AnchorBiasCalibrationRemovesUncalibratedBias) {
  // A deployment bias the surrogate calibration never saw (uncal_bias_m
  // models post-installation antenna/cable delay): the anchor-anchor
  // residual calibration must estimate and subtract it, leaving a small
  // RMSE. With it left in, every range is ~1.2 m long and the solve is
  // off by far more than the spread.
  const auto table = synthetic_table(0.3, 0.05);
  net::NetScaleConfig cfg = engine_config();
  cfg.uncal_bias_m = 1.2;
  net::NetScaleEngine eng(cfg, table);
  const auto res = eng.run(nullptr);
  EXPECT_EQ(res.overall_availability, 1.0);
  EXPECT_LT(res.overall_rmse_m, 0.4);
  // The per-round estimate converges on the injected deployment bias.
  EXPECT_NEAR(res.rounds.back().bias_est_m, 1.2, 0.1);

  // Same network with the residual calibration disabled: visibly worse.
  net::NetScaleConfig no_cal = cfg;
  no_cal.bias_links_per_round = 0;
  net::NetScaleEngine eng2(no_cal, table);
  const auto res2 = eng2.run(nullptr);
  EXPECT_GT(res2.overall_rmse_m, res.overall_rmse_m);
  EXPECT_GT(res2.overall_rmse_m, 0.8);
}

TEST(Engine, FullDropoutKillsAvailability) {
  const auto table = synthetic_table(0.0, 0.1);
  net::NetScaleConfig cfg = engine_config();
  cfg.anchor_dropout = 1.0;
  cfg.dropout_rounds = 100;  // never recover within the run
  net::NetScaleEngine eng(cfg, table);
  const auto res = eng.run(nullptr);
  EXPECT_EQ(res.overall_availability, 0.0);
  for (const auto& st : res.rounds)
    EXPECT_EQ(st.anchors_dark, 36);  // every 6x6 grid anchor dark
}

TEST(Engine, DropoutRecoveryRestoresAnchors) {
  const auto table = synthetic_table(0.0, 0.1);
  net::NetScaleConfig cfg = engine_config();
  cfg.rounds = 6;
  cfg.anchor_dropout = 0.5;
  cfg.dropout_rounds = 1;  // drop for one round, recover the next
  net::NetScaleEngine eng(cfg, table);
  const auto res = eng.run(nullptr);
  // With recovery every round, the network never collapses entirely.
  int max_dark = 0;
  for (const auto& st : res.rounds) max_dark = std::max(max_dark, st.anchors_dark);
  EXPECT_GT(max_dark, 0);               // faults fired
  EXPECT_LT(max_dark, 36);              // but recovery kept anchors cycling
  EXPECT_GT(res.overall_availability, 0.3);
}

TEST(Engine, OutlierDrawsAreTrimmedByTheSolver) {
  // 15% wrong-slot outliers at ~9.6 m: the solver's robust re-solve must
  // keep the RMSE near the inlier spread, far below the outlier scale.
  const auto table = synthetic_table(0.3, 0.2, 0.0, 0.15);
  net::NetScaleEngine eng(engine_config(), table);
  const auto res = eng.run(nullptr);
  EXPECT_GT(res.overall_availability, 0.95);
  EXPECT_LT(res.overall_rmse_m, 1.5);
}
