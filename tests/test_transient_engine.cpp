// Tests for the fast-path transient engine: structure-locked MNA workspace
// and device footprints, factorization reuse (pivot reuse + chord
// iterations), the linear single-factorization path, adaptive LTE stepping
// with event alignment, and the Newton failure diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <string>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/engine_counters.hpp"
#include "spice/itd_builder.hpp"
#include "spice/mosfet.hpp"
#include "spice/transient.hpp"

namespace {

using namespace uwbams;
using spice::Capacitor;
using spice::Circuit;
using spice::Resistor;
using spice::TransientOptions;
using spice::TransientSession;
using spice::VoltageSource;
using spice::Waveform;

// Simple RC lowpass: 1 kOhm / 1 pF (tau = 1 ns) driven by a 1 V step-ish
// pulse.
Circuit make_rc(double delay_s = 1e-9) {
  Circuit ckt;
  const int in = ckt.node("in");
  const int out = ckt.node("out");
  ckt.add<Resistor>("r1", in, out, 1e3);
  ckt.add<Capacitor>("c1", out, 0, 1e-12);
  ckt.add<VoltageSource>(
      "vin", in, 0,
      Waveform::pulse(0.0, 1.0, delay_s, 0.05e-9, 0.05e-9, 100e-9, 200e-9));
  return ckt;
}

// A small nonlinear circuit: common-source NMOS with resistive load.
Circuit make_mos_amp() {
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int drain = ckt.node("d");
  const int gate = ckt.node("g");
  ckt.add<VoltageSource>("vdd", vdd, 0, Waveform::dc(1.8));
  ckt.add<VoltageSource>("vg", gate, 0, Waveform::dc(0.9));
  ckt.add<Resistor>("rl", vdd, drain, 20e3);
  ckt.add<Capacitor>("cl", drain, 0, 50e-15);
  ckt.add<spice::Mosfet>("m1", drain, gate, 0, 0, spice::builtin_model("nmos"),
                         1e-6, 0.18e-6);
  return ckt;
}

TEST(FastPath, LinearCircuitUsesSingleFactorization) {
  Circuit ckt = make_rc();
  TransientSession s(ckt, {});
  ASSERT_TRUE(ckt.linear());
  for (int i = 0; i < 200; ++i) s.step(0.1e-9);
  // One factorization for the whole fixed-step transient, zero Newton
  // iterations beyond the single exact solve per step.
  EXPECT_EQ(s.stats().factorizations, 1u);
  EXPECT_EQ(s.stats().refactorizations, 0u);
  EXPECT_EQ(s.stats().newton_iterations, 200u);
  // Physics check: the cap charges toward 1 V with tau = 1 ns. After 19 ns
  // past the 1 ns delay, v_out ~ 1 - e^-19.
  EXPECT_NEAR(s.v("out"), 1.0, 1e-4);
}

TEST(FastPath, LinearCircuitRefactorsOnDtChange) {
  Circuit ckt = make_rc();
  TransientSession s(ckt, {});
  s.step(0.1e-9);
  s.step(0.1e-9);
  EXPECT_EQ(s.stats().factorizations, 1u);
  EXPECT_EQ(s.stats().refactorizations, 0u);
  // dt change -> companion conductances rescale -> pivot-order-reusing
  // refactor, not a fresh factorization.
  s.step(0.05e-9);
  EXPECT_EQ(s.stats().factorizations, 1u);
  EXPECT_EQ(s.stats().refactorizations, 1u);
  s.step(0.05e-9);  // cached again
  EXPECT_EQ(s.stats().refactorizations, 1u);
}

TEST(FastPath, ChordMatchesClassicNewtonWaveform) {
  // The same nonlinear transient solved by the chord fast path and by the
  // classic per-iteration full-Newton engine must agree to solver
  // tolerance at every committed step.
  Circuit fast_ckt = make_mos_amp();
  Circuit classic_ckt = make_mos_amp();
  TransientOptions fast;  // defaults: lazy Jacobian + pivot reuse
  TransientOptions classic;
  classic.lazy_jacobian = false;
  classic.reuse_factorization = false;
  TransientSession fast_s(fast_ckt, fast);
  TransientSession classic_s(classic_ckt, classic);
  auto& vg_fast = fast_s.source("vg");
  auto& vg_classic = classic_s.source("vg");
  std::mt19937_64 rng(42);
  std::normal_distribution<double> noise(0.0, 0.02);
  for (int i = 0; i < 500; ++i) {
    const double vg = 0.9 + 0.2 * std::sin(2e9 * 6.28 * fast_s.time()) +
                      noise(rng);
    vg_fast.set_override(vg);
    vg_classic.set_override(vg);
    fast_s.step(0.05e-9);
    classic_s.step(0.05e-9);
    ASSERT_NEAR(fast_s.v("d"), classic_s.v("d"), 5e-4)
        << "diverged at step " << i;
  }
  // And the fast path must actually have reused factorizations.
  EXPECT_LT(fast_s.stats().factorizations + fast_s.stats().refactorizations,
            classic_s.stats().factorizations / 2);
}

TEST(FastPath, ReusedPivotMatchesFreshLuClosely) {
  // reuse_factorization only (no chord): identical iteration scheme to the
  // classic engine, so solutions agree to 1e-10 per step.
  Circuit a_ckt = make_mos_amp();
  Circuit b_ckt = make_mos_amp();
  TransientOptions reuse;
  reuse.lazy_jacobian = false;
  reuse.reuse_factorization = true;
  TransientOptions fresh;
  fresh.lazy_jacobian = false;
  fresh.reuse_factorization = false;
  TransientSession sa(a_ckt, reuse);
  TransientSession sb(b_ckt, fresh);
  auto& va = sa.source("vg");
  auto& vb = sb.source("vg");
  for (int i = 0; i < 200; ++i) {
    const double vg = 0.9 + 0.3 * std::sin(1e9 * 6.28 * sa.time());
    va.set_override(vg);
    vb.set_override(vg);
    sa.step(0.05e-9);
    sb.step(0.05e-9);
    ASSERT_NEAR(sa.v("d"), sb.v("d"), 1e-10) << "diverged at step " << i;
  }
  EXPECT_GT(sa.stats().refactorizations, 0u);
  EXPECT_EQ(sb.stats().refactorizations, 0u);
}

TEST(FastPath, FootprintCoversEveryStampedEntry) {
  // Assemble a circuit containing every device type and check that all
  // nonzero matrix entries fall inside the declared footprint pattern, in
  // both OP and transient mode — the invariant the sparse reset and the
  // symbolic elimination rely on.
  Circuit ckt;
  const int n1 = ckt.node("n1"), n2 = ckt.node("n2"), n3 = ckt.node("n3"),
            n4 = ckt.node("n4");
  ckt.add<VoltageSource>("v1", n1, 0, Waveform::dc(1.0));
  ckt.add<Resistor>("r1", n1, n2, 1e3);
  ckt.add<Capacitor>("c1", n2, 0, 1e-12);
  ckt.add<spice::Inductor>("l1", n2, n3, 1e-9);
  ckt.add<spice::CurrentSource>("i1", n3, 0, Waveform::dc(1e-3));
  ckt.add<spice::Vcvs>("e1", n4, 0, n2, 0, 2.0);
  ckt.add<spice::Vccs>("g1", n3, 0, n4, 0, 1e-3);
  ckt.add<spice::Mosfet>("m1", n3, n2, 0, 0, spice::builtin_model("nmos"), 1e-6,
                         0.18e-6);
  ckt.prepare();
  const auto pattern = ckt.stamp_pattern();
  ASSERT_NE(pattern, nullptr);

  std::vector<double> x(ckt.unknown_count(), 0.3);
  for (const auto mode :
       {spice::AnalysisMode::kOp, spice::AnalysisMode::kTransient}) {
    spice::Mna<double> mna(ckt.unknown_count());
    spice::StampArgs args;
    args.mode = mode;
    args.method = spice::Integrator::kTrapezoidal;
    args.x = &x;
    args.t = 1e-9;
    args.dt = 0.1e-9;
    args.inv_dt = 1.0 / args.dt;
    args.gmin = 1e-12;
    for (const auto& dev : ckt.devices()) dev->stamp(mna, args);
    for (std::size_t r = 0; r < mna.size(); ++r)
      for (std::size_t c = 0; c < mna.size(); ++c)
        if (mna.matrix()(r, c) != 0.0)
          EXPECT_TRUE(pattern->contains(static_cast<int>(r),
                                        static_cast<int>(c)))
              << "entry (" << r << "," << c << ") outside footprint";
  }
}

TEST(FastPath, PatternLockedResetMatchesDenseClear) {
  Circuit ckt = make_mos_amp();
  ckt.prepare();
  std::vector<double> x(ckt.unknown_count(), 0.4);
  spice::StampArgs args;
  args.mode = spice::AnalysisMode::kTransient;
  args.x = &x;
  args.dt = 0.1e-9;
  args.inv_dt = 1.0 / args.dt;
  args.gmin = 1e-12;

  spice::Mna<double> dense(ckt.unknown_count());
  spice::Mna<double> locked(*ckt.stamp_pattern());
  for (int round = 0; round < 3; ++round) {
    dense.clear();
    locked.reset();
    for (const auto& dev : ckt.devices()) {
      dev->stamp(dense, args);
      dev->stamp(locked, args);
    }
    for (std::size_t r = 0; r < dense.size(); ++r) {
      EXPECT_DOUBLE_EQ(dense.rhs()[r], locked.rhs()[r]);
      for (std::size_t c = 0; c < dense.size(); ++c)
        EXPECT_DOUBLE_EQ(dense.matrix()(r, c), locked.matrix()(r, c));
    }
  }
}

TEST(FastPath, ResidualMatchesStampLinearization) {
  // F(x) computed by Device::residual must equal A(x)x - b(x) from the
  // device's stamp, for every device of the full ITD testbench.
  Circuit ckt;
  (void)spice::build_itd_testbench(ckt, {});
  TransientSession s(ckt, {});
  for (int i = 0; i < 20; ++i) s.step(0.2e-9);
  std::vector<double> x = s.solution();
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> d(-0.03, 0.03);
  for (auto& v : x) v += d(rng);
  spice::StampArgs args;
  args.mode = spice::AnalysisMode::kTransient;
  args.x = &x;
  args.t = s.time() + 0.2e-9;
  args.dt = 0.2e-9;
  args.inv_dt = 1.0 / args.dt;
  args.gmin = 1e-12;
  for (const auto& dev : ckt.devices()) {
    ASSERT_TRUE(dev->supports_residual()) << dev->name();
    spice::Mna<double> mna(ckt.unknown_count());
    dev->stamp(mna, args);
    const auto ax = mna.matrix().multiply(x);
    std::vector<double> f(ckt.unknown_count(), 0.0);
    dev->residual(f, args);
    for (std::size_t i = 0; i < f.size(); ++i)
      EXPECT_NEAR(f[i], ax[i] - mna.rhs()[i], 1e-9)
          << dev->name() << " row " << i;
  }
}

TEST(Adaptive, AcceptRejectAndGrowth) {
  Circuit ckt = make_rc(5e-9);
  TransientOptions topts;
  topts.dt = 0.01e-9;  // initial step proposal
  topts.adaptive.enabled = true;
  topts.adaptive.lte_abstol = 1e-5;
  topts.adaptive.lte_reltol = 1e-4;
  topts.adaptive.dt_max = 5e-9;
  TransientSession s(ckt, topts);
  s.advance_to(100e-9);
  EXPECT_DOUBLE_EQ(s.time(), 100e-9);
  const auto& st = s.stats();
  EXPECT_GT(st.accepted_steps, 0u);
  // The pulse edges must force rejections (step shrink) somewhere.
  EXPECT_GT(st.rejected_steps, 0u);
  // Step growth: far fewer steps than the fixed 0.01 ns grid would take
  // (10000), because flat regions run at dt_max.
  EXPECT_LT(st.steps, 2000u);
  // Accuracy: compare against a fine fixed-step reference.
  Circuit ref_ckt = make_rc(5e-9);
  TransientOptions ref;
  ref.dt = 0.01e-9;
  TransientSession r(ref_ckt, ref);
  r.run_until(100e-9);
  EXPECT_NEAR(s.v("out"), r.v("out"), 1e-3);
}

TEST(Adaptive, LandsExactlyOnStopTime) {
  Circuit ckt = make_rc();
  TransientOptions topts;
  topts.adaptive.enabled = true;
  TransientSession s(ckt, topts);
  for (int k = 1; k <= 5; ++k) {
    const double target = 1.7e-9 * k;  // deliberately not a dt multiple
    s.advance_to(target);
    EXPECT_DOUBLE_EQ(s.time(), target);
  }
}

TEST(Adaptive, WaveformEdgeReporting) {
  const auto pulse = Waveform::pulse(0.0, 1.0, 2e-9, 0.1e-9, 0.2e-9, 3e-9,
                                     10e-9);
  // Edges: delay 2ns, rise end 2.1ns, width end 5.1ns, fall end 5.3ns,
  // then periodic at +10ns.
  EXPECT_NEAR(pulse.next_edge(0.0), 2e-9, 1e-18);
  EXPECT_NEAR(pulse.next_edge(2e-9), 2.1e-9, 1e-18);
  EXPECT_NEAR(pulse.next_edge(2.1e-9), 5.1e-9, 1e-18);
  EXPECT_NEAR(pulse.next_edge(5.1e-9), 5.3e-9, 1e-18);
  EXPECT_NEAR(pulse.next_edge(5.3e-9), 12e-9, 1e-18);
  EXPECT_NEAR(pulse.next_edge(11.9e-9), 12e-9, 1e-18);
  const auto flat = Waveform::dc(1.0);
  EXPECT_TRUE(std::isinf(flat.next_edge(0.0)));
  const auto pwl = Waveform::pwl({0.0, 1e-9, 3e-9}, {0.0, 1.0, 0.5});
  EXPECT_NEAR(pwl.next_edge(0.5e-9), 1e-9, 1e-18);
  EXPECT_NEAR(pwl.next_edge(1e-9), 3e-9, 1e-18);
  EXPECT_TRUE(std::isinf(pwl.next_edge(3e-9)));
}

TEST(Adaptive, FixedFallbackWhenDisabled) {
  Circuit ckt = make_rc();
  TransientSession s(ckt, {});  // adaptive disabled
  s.advance_to(3.3e-9);
  EXPECT_DOUBLE_EQ(s.time(), 3.3e-9);
  EXPECT_GT(s.stats().steps, 0u);
}

TEST(Diagnostics, NonconvergenceIsRecordedWithReason) {
  Circuit ckt = make_mos_amp();
  TransientOptions topts;
  topts.max_newton = 1;  // force Newton failures on any real movement
  topts.lazy_jacobian = false;
  TransientSession s(ckt, topts);
  auto& vg = s.source("vg");
  bool threw = false;
  try {
    for (int i = 0; i < 50; ++i) {
      vg.set_override(i % 2 ? 1.6 : 0.2);  // violent swings
      s.step(0.5e-9);
    }
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("Newton"), std::string::npos);
  }
  const auto& st = s.stats();
  // Whether or not the rescue ladder saved every step, the failure path
  // must have recorded diagnostics.
  if (st.nonconverged_failures > 0) {
    EXPECT_FALSE(st.last_failure.empty());
    EXPECT_NE(st.last_failure.find("did not converge"), std::string::npos);
    EXPECT_GT(st.last_failure_pivot_ratio, 0.0);
  }
  EXPECT_TRUE(threw || st.fallback_steps > 0 || st.nonconverged_failures == 0);
}

TEST(Diagnostics, EngineCountersAccumulateOnSessionDestruction) {
  const auto before = spice::engine_counters::snapshot();
  {
    Circuit ckt = make_rc();
    TransientSession s(ckt, {});
    for (int i = 0; i < 10; ++i) s.step(0.1e-9);
  }
  const auto after = spice::engine_counters::snapshot();
  EXPECT_EQ(after.sessions, before.sessions + 1);
  EXPECT_EQ(after.steps, before.steps + 10);
  EXPECT_GE(after.op_solves, before.op_solves + 1);
}

TEST(Diagnostics, ItdSessionStatsAreCoherent) {
  Circuit ckt;
  (void)spice::build_itd_testbench(ckt, {});
  TransientSession s(ckt, {});
  for (int i = 0; i < 500; ++i) s.step(0.2e-9);
  const auto& st = s.stats();
  EXPECT_EQ(st.steps, 500u);
  EXPECT_EQ(st.solves, st.newton_iterations);
  // The whole run must be served by a handful of fresh factorizations.
  EXPECT_LT(st.factorizations, 20u);
  EXPECT_GT(st.newton_iterations, 0u);
  EXPECT_EQ(st.singular_failures, 0u);
}

}  // namespace
