// Tests for DC sweep analysis, the netlist writer round trip, and extra
// device property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/dc_sweep.hpp"
#include "spice/devices.hpp"
#include "spice/itd_builder.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/netlist_writer.hpp"
#include "spice/op.hpp"

namespace {

using namespace uwbams::spice;

TEST(DcSweep, LinearDividerIsLinear) {
  Circuit c;
  const auto in = c.node("in"), mid = c.node("mid");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(0.0));
  c.add<Resistor>("R1", in, mid, 1e3);
  c.add<Resistor>("R2", mid, c.ground(), 1e3);
  const auto sweep = run_dc_sweep(c, "V1", -2.0, 2.0, 8, {{mid, 0}});
  ASSERT_EQ(sweep.size(), 9u);
  for (const auto& p : sweep) {
    ASSERT_TRUE(p.converged);
    EXPECT_NEAR(p.probes[0], 0.5 * p.source_value, 1e-9);
  }
  EXPECT_NEAR(dc_gain_at_midpoint(sweep), 0.5, 1e-9);
}

TEST(DcSweep, MosIvCurveRegions) {
  // NMOS output characteristic: sweep vds at fixed vgs; the drain current
  // must be monotone and flatten in saturation.
  Circuit c;
  const auto d = c.node("d"), g = c.node("g");
  c.add<VoltageSource>("Vg", g, c.ground(), Waveform::dc(1.0));
  auto& vd = c.add<VoltageSource>("Vd", d, c.ground(), Waveform::dc(0.0));
  (void)vd;
  c.add<Mosfet>("M1", d, g, c.ground(), c.ground(), builtin_model("nmos"),
                2e-6, 0.18e-6);
  const auto sweep = run_dc_sweep(c, "Vd", 0.0, 1.8, 18, {{d, 0}});
  // Reconstruct Id from the source branch... simpler: stamp check through a
  // series resistor variant:
  Circuit c2;
  const auto d2 = c2.node("d2"), g2 = c2.node("g2"), s2 = c2.node("s2");
  c2.add<VoltageSource>("Vg", g2, c2.ground(), Waveform::dc(1.0));
  c2.add<VoltageSource>("Vd", d2, c2.ground(), Waveform::dc(0.0));
  c2.add<Resistor>("Rs", s2, c2.ground(), 1.0);  // 1 ohm sense
  c2.add<Mosfet>("M1", d2, g2, s2, c2.ground(), builtin_model("nmos"), 2e-6,
                 0.18e-6);
  const auto sw = run_dc_sweep(c2, "Vd", 0.05, 1.8, 14, {{s2, 0}});
  double prev = -1.0;
  for (const auto& p : sw) {
    ASSERT_TRUE(p.converged);
    EXPECT_GE(p.probes[0], prev - 1e-9);  // Id monotone in vds
    prev = p.probes[0];
  }
  // Saturation flatness: last two points differ by < 5%.
  const double last = sw.back().probes[0];
  const double prev2 = sw[sw.size() - 2].probes[0];
  EXPECT_NEAR(last, prev2, 0.05 * last);
  (void)sweep;
}

TEST(DcSweep, ItdInputTransferShowsLinearRange) {
  // Differential DC transfer of the I&D cell (switches closed): linear
  // around zero, compressing beyond the ~100-150 mV range.
  Circuit c;
  const auto tb = build_itd_testbench(c);
  // Sweep the positive input around the 0.9 V common mode.
  const auto sweep = run_dc_sweep(c, "vinp", 0.9 - 0.3, 0.9 + 0.3, 24,
                                  {{tb.t.outm, tb.t.outp}});
  ASSERT_GE(sweep.size(), 25u);
  const double gain_mid = dc_gain_at_midpoint(sweep);
  EXPECT_GT(std::abs(gain_mid), 5.0);  // ~21 dB differential gain (half input)
  // Endpoint slope much smaller than midpoint slope (compression).
  const double edge_slope =
      (sweep[sweep.size() - 1].probes[0] - sweep[sweep.size() - 3].probes[0]) /
      (sweep[sweep.size() - 1].source_value - sweep[sweep.size() - 3].source_value);
  EXPECT_LT(std::abs(edge_slope), 0.4 * std::abs(gain_mid));
}

TEST(DcSweep, Errors) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), c.ground(), 1e3);
  EXPECT_THROW(run_dc_sweep(c, "nosuch", 0, 1, 4, {}), std::invalid_argument);
}

TEST(NetlistWriter, RoundTripDivider) {
  Circuit c;
  const auto in = c.node("in"), mid = c.node("mid");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(5.0));
  c.add<Resistor>("R1", in, mid, 3e3);
  c.add<Resistor>("R2", mid, c.ground(), 1e3);
  const std::string text = write_netlist(c);

  Circuit c2;
  parse_netlist(text, c2);
  const auto op = solve_op(c2);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(c2.voltage_in(op.x, c2.find_node("mid")), 1.25, 1e-9);
}

TEST(NetlistWriter, RoundTripItdCellMatchesOp) {
  // Export the programmatic 31-transistor cell, re-parse it, and compare
  // operating points — the full-circle interoperability check.
  Circuit built;
  const auto tb = build_itd_testbench(built);
  const auto op1 = solve_op(built);
  ASSERT_TRUE(op1.converged);

  const std::string text = write_netlist(built, "itd round trip");
  Circuit reparsed;
  parse_netlist(text, reparsed);
  EXPECT_EQ(reparsed.count_devices_with_prefix("M"), 31u);
  const auto op2 = solve_op(reparsed);
  ASSERT_TRUE(op2.converged);

  for (const char* n : {"Outp", "Outm", "Vbias1", "Vref", "Vcmfb"}) {
    const double v1 = built.voltage_in(op1.x, built.find_node(n));
    const double v2 = reparsed.voltage_in(op2.x, reparsed.find_node(n));
    EXPECT_NEAR(v1, v2, 1e-6) << n;
  }
  (void)tb;
}

TEST(NetlistWriter, EmitsModelCards) {
  Circuit c;
  c.add<VoltageSource>("Vd", c.node("d"), c.ground(), Waveform::dc(1.8));
  c.add<Mosfet>("M1", c.node("d"), c.node("d"), c.ground(), c.ground(),
                builtin_model("nmos_lv"), 1e-6, 0.18e-6);
  const std::string text = write_netlist(c);
  EXPECT_NE(text.find(".model nmos_lv nmos"), std::string::npos);
  EXPECT_NE(text.find("W=1e-06"), std::string::npos);
}

// Property sweep: MOSFET saturation current quadratic in overdrive.
class MosQuadratic : public ::testing::TestWithParam<double> {};

TEST_P(MosQuadratic, SaturationLaw) {
  const double vov = GetParam();
  Circuit c;
  Mosfet m("M1", c.node("d"), c.node("g"), c.node("s"), c.node("b"),
           builtin_model("nmos"), 2e-6, 0.36e-6);
  const auto mod = builtin_model("nmos");
  const auto e = m.evaluate(1.8, mod.vt0 + vov, 0.0, 0.0);
  ASSERT_EQ(e.region, MosEval::Region::kSaturation);
  const double leff = 0.36e-6 - 2 * mod.ld;
  const double expect =
      0.5 * mod.kp * (2e-6 / leff) * vov * vov * (1 + mod.lambda * 1.8);
  EXPECT_NEAR(e.ids, expect, 1e-9 + expect * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Overdrives, MosQuadratic,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.8));

// AC property: RC low-pass magnitude follows the one-pole law across
// frequency decades.
class RcLowPassDecades : public ::testing::TestWithParam<double> {};

TEST_P(RcLowPassDecades, OnePoleLaw) {
  const double f = GetParam();
  Circuit c;
  const auto in = c.node("in"), out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(), Waveform::dc(0.0), 1.0);
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-9);
  const auto op = solve_op(c);
  const auto sweep = run_ac(c, op.x, std::vector<double>{f}, out);
  const double fc = 1.0 / (2 * 3.14159265358979 * 1e-6);
  const double expect_db = -10.0 * std::log10(1.0 + (f / fc) * (f / fc));
  EXPECT_NEAR(sweep.mag_db(0), expect_db, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Decades, RcLowPassDecades,
                         ::testing::Values(1e3, 1e4, 1e5, 1e6, 1e7, 1e8));

}  // namespace
