// Integration tests of the assembled link: genie BER against the
// semi-analytic reference, acquisition on clean channels, and the
// window-controller timing.
#include <gtest/gtest.h>

#include <cmath>

#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "uwb/ber.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/receiver.hpp"
#include "uwb/transmitter.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::uwb;

SystemConfig fast_sys() {
  SystemConfig sys;
  sys.dt = 0.2e-9;
  sys.distance = 1.0;
  sys.multipath = false;
  return sys;
}

TEST(GenieLink, ErrorFreeAtHighSnr) {
  BerConfig cfg;
  cfg.sys = fast_sys();
  cfg.ebn0_db = {22.0};
  cfg.max_bits = 400;
  cfg.min_errors = 1000;  // never stop early
  const auto pts = run_ber_sweep(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys));
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].errors, 0u);
  EXPECT_GE(pts[0].bits, 400u);
}

TEST(GenieLink, TracksSemiAnalyticReference) {
  BerConfig cfg;
  cfg.sys = fast_sys();
  cfg.ebn0_db = {6.0, 10.0};
  cfg.max_bits = 2000;
  cfg.min_errors = 50;
  const auto pts = run_ber_sweep(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys));
  const double tw = receiver_tw_product(cfg.sys);
  for (const auto& p : pts) {
    const double theory = energy_detection_ber_theory(p.ebn0_db, tw);
    // Within a factor ~2 of the Gaussian-approximation reference.
    EXPECT_GT(p.ber, theory / 2.5) << "Eb/N0=" << p.ebn0_db;
    EXPECT_LT(p.ber, theory * 2.5) << "Eb/N0=" << p.ebn0_db;
  }
}

TEST(GenieLink, BerMonotoneInSnr) {
  BerConfig cfg;
  cfg.sys = fast_sys();
  cfg.ebn0_db = {2.0, 8.0, 14.0};
  cfg.max_bits = 1200;
  cfg.min_errors = 40;
  const auto pts = run_ber_sweep(
      cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys));
  EXPECT_GT(pts[0].ber, pts[1].ber);
  EXPECT_GT(pts[1].ber, pts[2].ber);
}

TEST(TheoryReference, LimitsBehave) {
  // More dof (larger TW) is strictly worse for the energy detector.
  EXPECT_GT(energy_detection_ber_theory(10.0, 50.0),
            energy_detection_ber_theory(10.0, 10.0));
  // High SNR drives the BER to zero; low SNR toward 1/2.
  EXPECT_LT(energy_detection_ber_theory(25.0, 18.0), 1e-6);
  EXPECT_NEAR(energy_detection_ber_theory(-20.0, 18.0), 0.5, 0.05);
}

TEST(Acquisition, SyncsOnCleanAwgnChannel) {
  SystemConfig sys = fast_sys();
  sys.preamble_symbols = 80;
  sys.noise_est_windows = 16;

  ams::Kernel kernel(sys.dt);
  Transmitter tx(sys);
  ChannelBlock chan(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(chan);
  chan.set_input(tx.out());
  const double rx_peak = 2e-3;
  chan.set_awgn_only(rx_peak / sys.pulse_amplitude);
  const GaussianMonocycle pulse(2, sys.pulse_sigma, rx_peak);
  chan.set_noise_psd(pulse.energy() * sys.pulses_per_symbol /
                     units::db_to_pow(22.0));

  Receiver rx(kernel, sys,
              chan.out(),
              core::make_integrator_factory(core::IntegratorKind::kIdeal, sys));
  double toa = -1.0;
  rx.on_sync([&](double t) { toa = t; });
  rx.start_acquire(kernel, 50e-9);

  Packet p;
  p.preamble_symbols = sys.preamble_symbols;
  p.payload = {false, true};
  const double t_start = sys.noise_est_windows * sys.slot_period() + 0.4e-6;
  tx.send(p, t_start);
  kernel.run_until(t_start + p.duration(sys.symbol_period) + 1e-6);

  ASSERT_TRUE(rx.sync_done());
  ASSERT_GT(toa, 0.0);
  // ToA is symbol-periodic; compare modulo Ts against the true arrival.
  const double true_arrival = tx.first_pulse_time() -
                              3.5 * sys.pulse_sigma +  // burst energy onset
                              sys.distance / units::speed_of_light;
  double err = std::fmod(toa - true_arrival, sys.symbol_period);
  if (err > sys.symbol_period / 2) err -= sys.symbol_period;
  if (err < -sys.symbol_period / 2) err += sys.symbol_period;
  EXPECT_LT(std::abs(err), 6e-9) << "ToA error " << err * 1e9 << " ns";
}

TEST(Controller, WindowCadenceAndRetiming) {
  SystemConfig sys = fast_sys();
  ams::Kernel kernel(sys.dt);
  double input = 0.0;
  IdealIntegrator itd(&input, sys.integrator_k);
  kernel.add_analog(itd);
  Adc adc(sys.adc_bits, sys.adc_vmin, sys.adc_vmax);
  std::vector<WindowSample> samples;
  ItdController ctl(itd, adc, sys.slot_period(), sys.reset_width,
                    sys.integration_window,
                    [&](const WindowSample& s) { samples.push_back(s); });
  ctl.start(kernel, 100e-9);
  kernel.run_until(100e-9 + 5 * sys.slot_period());
  ASSERT_GE(samples.size(), 4u);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_NEAR(samples[i].window_start - samples[i - 1].window_start,
                sys.slot_period(), 1e-12);
  // Retiming applies to the very next window.
  const double retime = samples.back().window_start + 3 * sys.slot_period() +
                        7e-9;
  ctl.set_next_window_start(retime);
  const std::size_t n_before = samples.size();
  kernel.run_until(retime + 2 * sys.slot_period());
  // One window was already in flight when the retime was issued; the
  // pending start applies to the window decided at its sample callback.
  ASSERT_GT(samples.size(), n_before + 1);
  EXPECT_NEAR(samples[n_before + 1].window_start, retime, 1e-12);
}

TEST(Controller, RestartInvalidatesOldCycle) {
  SystemConfig sys = fast_sys();
  ams::Kernel kernel(sys.dt);
  double input = 0.0;
  IdealIntegrator itd(&input, sys.integrator_k);
  kernel.add_analog(itd);
  Adc adc(sys.adc_bits, sys.adc_vmin, sys.adc_vmax);
  std::vector<WindowSample> samples;
  ItdController ctl(itd, adc, sys.slot_period(), sys.reset_width,
                    sys.integration_window,
                    [&](const WindowSample& s) { samples.push_back(s); });
  ctl.start(kernel, 50e-9);
  kernel.run_until(300e-9);
  // Restart on a fresh grid: no duplicate/racing windows afterwards.
  ctl.start(kernel, kernel.time() + 100e-9);
  samples.clear();
  kernel.run_until(kernel.time() + 4 * sys.slot_period());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].window_start - samples[i - 1].window_start,
                sys.slot_period(), 1e-12)
        << "duplicate cycle detected";
  }
}

}  // namespace

namespace {

using namespace uwbams;
using namespace uwbams::uwb;

TEST(Acquisition, DecodesPayloadAfterSfd) {
  // Full packet reception through real acquisition: NE/PS/AGC/sync, then
  // SFD detection and payload demodulation (the "Demod & Data Processing"
  // back end of Fig. 1).
  SystemConfig sys;
  sys.dt = 0.2e-9;
  sys.distance = 1.0;
  sys.multipath = false;
  sys.preamble_symbols = 80;
  sys.noise_est_windows = 16;

  ams::Kernel kernel(sys.dt);
  Transmitter tx(sys);
  ChannelBlock chan(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(chan);
  chan.set_input(tx.out());
  const double rx_peak = 2e-3;
  chan.set_awgn_only(rx_peak / sys.pulse_amplitude);
  const GaussianMonocycle pulse(2, sys.pulse_sigma, rx_peak);
  chan.set_noise_psd(pulse.energy() * sys.pulses_per_symbol /
                     units::db_to_pow(20.0));

  Receiver rx(kernel, sys, chan.out(),
              core::make_integrator_factory(core::IntegratorKind::kIdeal, sys));
  base::Rng rng(77);
  Packet p;
  p.preamble_symbols = sys.preamble_symbols;
  p.sfd_symbols = 1;
  p.payload = rng.bits(16);
  rx.collect_payload(static_cast<int>(p.payload.size()));
  rx.start_acquire(kernel, 50e-9);

  // Leave room for noise-floor gain backoff passes before the packet.
  const double t_start = 2.2e-6;
  tx.send(p, t_start);
  kernel.run_until(t_start + p.duration(sys.symbol_period) + 2e-6);

  ASSERT_TRUE(rx.sync_done());
  ASSERT_TRUE(rx.payload_complete());
  ASSERT_EQ(rx.received_payload().size(), p.payload.size());
  int errors = 0;
  for (std::size_t i = 0; i < p.payload.size(); ++i)
    if (rx.received_payload()[i] != p.payload[i]) ++errors;
  EXPECT_EQ(errors, 0) << "payload bit errors after real acquisition";
}

TEST(PacketSfd, SlotAssignmentWithSfd) {
  Packet p;
  p.preamble_symbols = 2;
  p.sfd_symbols = 1;
  p.payload = {false, true};
  EXPECT_EQ(p.total_symbols(), 5);
  EXPECT_EQ(p.slot_of_symbol(0), 0);
  EXPECT_EQ(p.slot_of_symbol(1), 0);
  EXPECT_EQ(p.slot_of_symbol(2), 1);  // SFD
  EXPECT_EQ(p.slot_of_symbol(3), 0);
  EXPECT_EQ(p.slot_of_symbol(4), 1);
}

}  // namespace
