// Tests for the unified scenario API: registry lookup, sweep-axis
// expansion, deterministic parallel execution, fork seeding, and the
// CSV/JSON result sink.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/random.hpp"
#include "core/block_variant.hpp"
#include "runner/cli.hpp"
#include "runner/runner.hpp"
#include "uwb/ber.hpp"

namespace {

using namespace uwbams;
using runner::ParallelRunner;
using runner::ResultSink;
using runner::RunContext;
using runner::Scale;
using runner::ScenarioRegistry;
using runner::ScenarioSpec;

// --- registry ------------------------------------------------------------

REGISTER_SCENARIO(runner_test_probe, "test", "registration smoke probe") {
  ctx.sink.metric("answer", std::uint64_t{42});
  return ctx.scale == Scale::kFast ? 0 : 7;
}

TEST(Registry, FindAndRunRegisteredScenario) {
  const auto* s = ScenarioRegistry::instance().find("runner_test_probe");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->info.group, "test");

  ResultSink sink("runner_test_probe", "");
  ParallelRunner pool(1);
  RunContext ctx{"runner_test_probe", Scale::kFast, 1, 1, sink, pool};
  EXPECT_EQ(s->fn(ctx), 0);
  RunContext full{"runner_test_probe", Scale::kFull, 1, 1, sink, pool};
  EXPECT_EQ(s->fn(full), 7);
}

TEST(Registry, UnknownNameIsNull) {
  EXPECT_EQ(ScenarioRegistry::instance().find("no_such_scenario"), nullptr);
}

TEST(Registry, DuplicateNameThrows) {
  EXPECT_THROW(ScenarioRegistry::instance().add(
                   {"runner_test_probe", "test", "dup", ""},
                   [](RunContext&) { return 0; }),
               std::logic_error);
}

// --- scale-tier annotations ----------------------------------------------

REGISTER_SCENARIO_TIERS(runner_test_tiers_probe, "test",
                        "tier annotation probe", "1|10|100 widgets") {
  (void)ctx;
  return 0;
}

TEST(Registry, TiersAnnotationIsStoredAndListed) {
  const auto* s =
      ScenarioRegistry::instance().find("runner_test_tiers_probe");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->info.tiers, "1|10|100 widgets");
  EXPECT_EQ(runner::scales_label(s->info), "1|10|100 widgets");

  // Plain REGISTER_SCENARIO leaves tiers empty and --list falls back to
  // the generic tier names.
  const auto* plain = ScenarioRegistry::instance().find("runner_test_probe");
  ASSERT_NE(plain, nullptr);
  EXPECT_TRUE(plain->info.tiers.empty());
  EXPECT_EQ(runner::scales_label(plain->info), "fast|default|full");
}

TEST(Registry, ShippedScenariosAnnotateTheirTiers) {
  // The satellite contract: the headline scenarios spell out what --scale
  // changes. (Not every scenario must, but these ship annotated.)
  for (const char* name :
       {"ranging_network", "fig6_ber", "yield_report", "surrogate_fit",
        "netscale_static", "netscale_mobility"}) {
    const auto* s = ScenarioRegistry::instance().find(name);
    if (s == nullptr) continue;  // registry content depends on link set
    EXPECT_FALSE(s->info.tiers.empty()) << name;
  }
}

TEST(Registry, ListSortsAndFilters) {
  const auto all = ScenarioRegistry::instance().list();
  ASSERT_FALSE(all.empty());
  for (std::size_t i = 1; i < all.size(); ++i) {
    const auto& a = all[i - 1]->info;
    const auto& b = all[i]->info;
    EXPECT_TRUE(a.group < b.group || (a.group == b.group && a.name < b.name));
  }
  for (const auto* s : ScenarioRegistry::instance().list("test"))
    EXPECT_EQ(s->info.group, "test");
}

// --- spec expansion ------------------------------------------------------

TEST(ScenarioSpec, CartesianExpansionRowMajor) {
  ScenarioSpec spec("sweep_test");
  spec.axis("a", {1.0, 2.0}).axis("b", {10.0, 20.0, 30.0});
  EXPECT_EQ(spec.grid_size(), 6u);
  EXPECT_EQ(spec.point_count(), 6u);

  const auto pts = spec.points();
  ASSERT_EQ(pts.size(), 6u);
  // Last axis fastest.
  EXPECT_DOUBLE_EQ(pts[0].at("a"), 1.0);
  EXPECT_DOUBLE_EQ(pts[0].at("b"), 10.0);
  EXPECT_DOUBLE_EQ(pts[1].at("b"), 20.0);
  EXPECT_DOUBLE_EQ(pts[3].at("a"), 2.0);
  EXPECT_DOUBLE_EQ(pts[3].at("b"), 10.0);
  EXPECT_THROW(pts[0].at("nope"), std::out_of_range);
}

TEST(ScenarioSpec, RepetitionsAreInnermost) {
  ScenarioSpec spec("rep_test");
  spec.axis("x", {5.0, 6.0}).repetitions(3);
  EXPECT_EQ(spec.point_count(), 6u);
  const auto pts = spec.points();
  EXPECT_EQ(pts[0].repetition, 0);
  EXPECT_EQ(pts[2].repetition, 2);
  EXPECT_DOUBLE_EQ(pts[2].at("x"), 5.0);
  EXPECT_DOUBLE_EQ(pts[3].at("x"), 6.0);
  EXPECT_EQ(pts[3].repetition, 0);
}

TEST(ScenarioSpec, SeedsAreDeterministicAndDistinct) {
  ScenarioSpec spec("seed_test");
  spec.seed(99).axis("x", {1, 2, 3, 4});
  const auto a = spec.points();
  const auto b = spec.points();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].seed, spec.point(i).seed);
    for (std::size_t j = i + 1; j < a.size(); ++j)
      EXPECT_NE(a[i].seed, a[j].seed);
  }
  // Different base seed, different streams.
  ScenarioSpec other("seed_test");
  other.seed(100).axis("x", {1, 2, 3, 4});
  EXPECT_NE(other.point(0).seed, spec.point(0).seed);
}

TEST(ScenarioSpec, FluentBuilderFillsRunConfig) {
  ScenarioSpec spec("cfg_test", Scale::kFull, 12);
  spec.dt(0.1e-9)
      .distance(4.5)
      .multipath(false)
      .integrator(core::IntegratorKind::kSpice)
      .duration(5e-6)
      .ebn0(13.0)
      .tune([](uwb::SystemConfig& sys) { sys.payload_bits = 8; });
  const auto cfg = spec.run_config();
  EXPECT_EQ(cfg.kind, core::IntegratorKind::kSpice);
  EXPECT_DOUBLE_EQ(cfg.duration, 5e-6);
  EXPECT_DOUBLE_EQ(cfg.ebn0_db, 13.0);
  EXPECT_DOUBLE_EQ(cfg.sys.dt, 0.1e-9);
  EXPECT_DOUBLE_EQ(cfg.sys.distance, 4.5);
  EXPECT_FALSE(cfg.sys.multipath);
  EXPECT_EQ(cfg.sys.payload_bits, 8);
  EXPECT_EQ(cfg.sys.seed, 12u);
  EXPECT_EQ(spec.pick(1, 2, 3), 3);
}

// --- parallel runner -----------------------------------------------------

TEST(ParallelRunner, MapPreservesOrderAcrossJobCounts) {
  auto square = [](std::size_t i) { return static_cast<int>(i * i); };
  const auto serial = ParallelRunner(1).map<int>(64, square);
  const auto parallel = ParallelRunner(4).map<int>(64, square);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelRunner, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  ParallelRunner(8).for_each(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, PropagatesTaskExceptions) {
  EXPECT_THROW(ParallelRunner(4).for_each(16,
                                          [](std::size_t i) {
                                            if (i == 7)
                                              throw std::runtime_error("boom");
                                          }),
               std::runtime_error);
}

TEST(ParallelRunner, ZeroJobsMeansHardwareConcurrency) {
  EXPECT_GE(ParallelRunner(0).jobs(), 1);
}

// --- fork seeding --------------------------------------------------------

TEST(RngFork, DeterministicRegardlessOfDrawOrder) {
  base::Rng a(123);
  base::Rng b(123);
  for (int i = 0; i < 50; ++i) b.uniform();  // advance b's state only

  base::Rng fa = a.fork(5);
  base::Rng fb = b.fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.uniform(), fb.uniform());
}

TEST(RngFork, StreamsDiffer) {
  base::Rng root(7);
  base::Rng s0 = root.fork(0);
  base::Rng s1 = root.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (s0.uniform() == s1.uniform()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngFork, DeriveSeedIsStableAndNonZero) {
  EXPECT_EQ(base::derive_seed(1, 2), base::derive_seed(1, 2));
  EXPECT_NE(base::derive_seed(1, 2), base::derive_seed(1, 3));
  EXPECT_NE(base::derive_seed(1, 2), base::derive_seed(2, 2));
  for (std::uint64_t s = 0; s < 64; ++s) EXPECT_NE(base::derive_seed(0, s), 0u);
}

// --- result sink ---------------------------------------------------------

class SinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("uwbams_sink_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::filesystem::path dir_;
};

TEST_F(SinkTest, SeriesCsvRoundTrip) {
  base::Series s("roundtrip", "x");
  s.add_column("y1");
  s.add_column("y2");
  s.add_row(1.0, {0.1234567890123456, -2.5});
  s.add_row(2.0, {3e-11, 1.0 / 3.0});

  ResultSink sink("scn", dir_.string());
  sink.series(s, "data", 6, /*print_rows=*/false);

  const auto csv = slurp(dir_ / "scn" / "data.csv");
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,y1,y2");
  // %.17g round-trips doubles exactly.
  std::vector<std::vector<double>> rows;
  while (std::getline(in, line)) {
    std::vector<double> row;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) row.push_back(std::stod(cell));
    rows.push_back(row);
  }
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], 0.1234567890123456);
  EXPECT_EQ(rows[1][1], 3e-11);
  EXPECT_EQ(rows[1][2], 1.0 / 3.0);
}

TEST_F(SinkTest, TableCsvQuotesSpecialCells) {
  base::Table t("quoting");
  t.set_header({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with, comma", "says \"hi\""});

  ResultSink sink("scn", dir_.string());
  sink.table(t, "table");
  const auto csv = slurp(dir_ / "scn" / "table.csv");
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with, comma\",\"says \"\"hi\"\"\"\n"),
            std::string::npos);
}

TEST_F(SinkTest, SummaryJsonHoldsMetricsAndArtifacts) {
  ResultSink sink("scn", dir_.string());
  base::Series s("tiny", "x");
  s.add_column("y");
  s.add_row(0.0, {1.0});
  sink.series(s, "curve", 6, /*print_rows=*/false);
  sink.metric("ber", 0.125);
  sink.metric("bits", std::uint64_t{4096});
  sink.metric("note", std::string("hello \"world\""));
  sink.finish(0, 1.5);

  const auto json = slurp(dir_ / "scn" / "summary.json");
  EXPECT_NE(json.find("\"scenario\": \"scn\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"ber\": 0.125"), std::string::npos);
  EXPECT_NE(json.find("\"bits\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"note\": \"hello \\\"world\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"curve.csv\""), std::string::npos);
}

TEST_F(SinkTest, NoOutDirWritesNothing) {
  ResultSink sink("scn", "");
  base::Table t("t");
  t.set_header({"a"});
  t.add_row({"1"});
  sink.table(t, "ignored");
  sink.metric("x", 1.0);
  sink.finish(0, 0.1);
  EXPECT_TRUE(sink.artifacts().empty());
  EXPECT_EQ(sink.dir(), "");
}

// --- parallel == serial for a real sweep ---------------------------------

// A miniature fig6-style BER sweep: the per-point seeding depends only on
// the config, so fanning points across workers must reproduce the serial
// sweep exactly (same bits, same error counts).
TEST(ParallelEquivalence, BerSweepMatchesSerial) {
  uwb::BerConfig cfg;
  cfg.sys.dt = 0.4e-9;
  cfg.ebn0_db = {6.0, 10.0};
  cfg.max_bits = 200;
  cfg.min_errors = 5;
  cfg.batch_bits = 100;

  const auto factory =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);
  const auto serial = uwb::run_ber_sweep(cfg, factory);

  const auto parallel = ParallelRunner(2).map<uwb::BerPoint>(
      cfg.ebn0_db.size(), [&](std::size_t i) {
        uwb::BerConfig c = cfg;
        c.ebn0_db = {cfg.ebn0_db[i]};
        return uwb::run_ber_sweep(
            c, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                             c.sys))[0];
      });

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].bits, parallel[i].bits);
    EXPECT_EQ(serial[i].errors, parallel[i].errors);
    EXPECT_DOUBLE_EQ(serial[i].ber, parallel[i].ber);
  }
}

}  // namespace
