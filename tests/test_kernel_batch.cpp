// Batched-vs-scalar equivalence of the AMS kernel and the batched blocks.
//
// The batched dataflow contract is *bit-identity*: for any batch capacity
// (1, a prime, a power of two, or the event-aligned maximum) every
// waveform sample, window sample and BER count must equal the per-sample
// path exactly — same operation order, same RNG draw order. The same
// holds for the parallel Eb/N0 sweep at every job count. These tests
// compare doubles with EXPECT_EQ on purpose.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "ams/kernel.hpp"
#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "uwb/ber.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/ranging.hpp"
#include "uwb/receiver.hpp"
#include "uwb/transmitter.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::uwb;

// Scoped environment override restoring the previous state on destruction
// (other suites in this binary must not inherit a forced-scalar kernel).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// Batch-capable waveform recorder (sink block, no output of its own).
class BatchTap : public ams::AnalogBlock {
 public:
  explicit BatchTap(const double* in) : in_(in) {}
  void step(double, double) override { values.push_back(*in_); }
  bool supports_batch() const override { return true; }
  void step_block(const double*, double, int n) override {
    for (int i = 0; i < n; ++i) values.push_back(in_[i]);
  }
  std::vector<double> values;

 private:
  const double* in_;
};

SystemConfig batch_sys() {
  SystemConfig sys;
  sys.dt = 0.2e-9;
  sys.distance = 1.0;
  sys.multipath = false;
  sys.seed = 11;
  return sys;
}

// Runs tx -> CM1 channel (+AWGN) for `t_stop` with irregularly scheduled
// no-op events (to force event-bounded batch splits) and records the
// channel output waveform.
std::vector<double> run_chain_waveform(int capacity) {
  SystemConfig sys = batch_sys();
  ams::Kernel kernel(sys.dt);
  if (capacity > 0) kernel.enable_batching(capacity);

  Transmitter tx(sys);
  ChannelBlock chan(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(chan);
  chan.set_input(tx.out());
  BatchTap tap(chan.out());
  kernel.add_analog(tap);

  base::Rng rng(42);
  chan.set_realization(generate_cm1(rng), 3e-3);
  chan.set_noise_psd(2e-18);
  chan.reseed(99);

  Packet p;
  p.preamble_symbols = 2;
  p.payload = {true, false, true};
  tx.send(p, 30e-9);

  // Irregular event times exercise mid-stream batch boundaries.
  std::function<void(double)> tick = [&](double now) {
    kernel.schedule_callback(now + 13.7e-9, tick);
  };
  kernel.schedule_callback(5e-9, tick);

  kernel.run_until(p.duration(sys.symbol_period) + 60e-9);
  return tap.values;
}

TEST(KernelBatch, WaveformsBitIdenticalAcrossCapacities) {
  const auto scalar = run_chain_waveform(0);  // batching never enabled
  ASSERT_GT(scalar.size(), 1000u);
  for (int capacity : {1, 7, 64, ams::kMaxBatch}) {
    const auto batched = run_chain_waveform(capacity);
    ASSERT_EQ(batched.size(), scalar.size()) << "capacity " << capacity;
    for (std::size_t i = 0; i < scalar.size(); ++i)
      ASSERT_EQ(batched[i], scalar[i])
          << "sample " << i << " at capacity " << capacity;
  }
}

// Genie-mode receiver: window samples (time, code and pre-quantization
// analog value) must match exactly for every capacity and every
// integrator fidelity.
std::vector<WindowSample> run_genie_samples(core::IntegratorKind kind,
                                            int capacity) {
  SystemConfig sys = batch_sys();
  sys.seed = 5;
  ams::Kernel kernel(sys.dt);
  if (capacity > 0) kernel.enable_batching(capacity);

  Transmitter tx(sys);
  ChannelBlock chan(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(chan);
  chan.set_input(tx.out());
  const double rx_peak = 8e-3;
  chan.set_awgn_only(rx_peak / sys.pulse_amplitude);
  const GaussianMonocycle pulse(2, sys.pulse_sigma, rx_peak);
  chan.set_noise_psd(pulse.energy() * sys.pulses_per_symbol /
                     units::db_to_pow(10.0));
  chan.reseed(123);

  Receiver rx(kernel, sys, chan.out(),
              core::make_integrator_factory(kind, sys));
  rx.keep_samples(true);

  base::Rng rng(7);
  Packet p;
  p.preamble_symbols = 0;
  p.payload = rng.bits(kind == core::IntegratorKind::kSpice ? 4 : 24);
  const double t_start = 2.0 * sys.slot_period();
  tx.send(p, t_start);
  rx.start_genie(kernel, t_start + sys.distance / units::speed_of_light,
                 p.payload);
  kernel.run_until(t_start + p.duration(sys.symbol_period) + 1e-6);
  return rx.samples();
}

void expect_same_samples(const std::vector<WindowSample>& a,
                         const std::vector<WindowSample>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].window_start, b[i].window_start) << what << " #" << i;
    ASSERT_EQ(a[i].code, b[i].code) << what << " #" << i;
    ASSERT_EQ(a[i].analog, b[i].analog) << what << " #" << i;
  }
}

TEST(KernelBatch, WindowSamplesBitIdenticalIdealIntegrator) {
  const auto scalar = run_genie_samples(core::IntegratorKind::kIdeal, 0);
  ASSERT_GT(scalar.size(), 10u);
  for (int capacity : {1, 7, 64, ams::kMaxBatch}) {
    const auto batched = run_genie_samples(core::IntegratorKind::kIdeal,
                                           capacity);
    expect_same_samples(scalar, batched, "ideal");
  }
}

TEST(KernelBatch, WindowSamplesBitIdenticalTwoPoleIntegrator) {
  const auto scalar = run_genie_samples(core::IntegratorKind::kBehavioral, 0);
  const auto batched =
      run_genie_samples(core::IntegratorKind::kBehavioral, ams::kMaxBatch);
  expect_same_samples(scalar, batched, "two-pole");
}

TEST(KernelBatch, WindowSamplesBitIdenticalSpiceIntegrator) {
  // The co-simulated netlist is the expensive fidelity: a short payload
  // still crosses several full window cycles (dump/integrate/hold/ADC).
  const auto scalar = run_genie_samples(core::IntegratorKind::kSpice, 0);
  ASSERT_GT(scalar.size(), 4u);
  const auto batched =
      run_genie_samples(core::IntegratorKind::kSpice, ams::kMaxBatch);
  expect_same_samples(scalar, batched, "spice");
}

TEST(KernelBatch, BatchHistogramAccountsForEverySample) {
  if (const char* env = std::getenv("UWBAMS_FORCE_SCALAR");
      env != nullptr && env[0] == '1')
    GTEST_SKIP() << "forced-scalar run: batching disabled by design";
  SystemConfig sys = batch_sys();
  ams::Kernel kernel(sys.dt);
  kernel.enable_batching(64);

  Transmitter tx(sys);
  ChannelBlock chan(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(chan);
  chan.set_input(tx.out());
  chan.set_awgn_only(1e-3);
  chan.set_noise_psd(1e-18);

  Receiver rx(kernel, sys, chan.out(),
              core::make_integrator_factory(core::IntegratorKind::kIdeal, sys));
  base::Rng rng(3);
  Packet p;
  p.preamble_symbols = 0;
  p.payload = rng.bits(8);
  tx.send(p, 100e-9);
  rx.start_genie(kernel, 100e-9 + sys.distance / units::speed_of_light,
                 p.payload);
  kernel.run_until(p.duration(sys.symbol_period) + 1e-6);

  ASSERT_TRUE(kernel.batching_active());
  const auto& hist = kernel.batch_histogram();
  ASSERT_EQ(hist.size(), static_cast<std::size_t>(ams::kMaxBatch) + 1);
  std::uint64_t total = 0, batches = 0, above_capacity = 0;
  for (std::size_t n = 0; n < hist.size(); ++n) {
    total += n * hist[n];
    batches += hist[n];
    if (n > 64) above_capacity += hist[n];
  }
  EXPECT_EQ(total, kernel.steps());
  EXPECT_EQ(above_capacity, 0u);
  // Event-bounded: the controller's window phases force sub-capacity
  // batches, so there must be more batches than steps/capacity alone.
  EXPECT_GT(batches, kernel.steps() / 64);
}

TEST(KernelBatch, BerCountsBitIdenticalForcedScalarVsBatched) {
  BerConfig cfg;
  cfg.sys = batch_sys();
  cfg.ebn0_db = {8.0};
  cfg.max_bits = 600;
  cfg.min_errors = 1000;  // fixed workload
  const auto factory =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);

  std::vector<BerPoint> scalar, batched, small_batch;
  {
    ScopedEnv force("UWBAMS_FORCE_SCALAR", "1");
    scalar = run_ber_sweep(cfg, factory);
  }
  batched = run_ber_sweep(cfg, factory);
  {
    ScopedEnv cap("UWBAMS_BATCH_CAP", "7");
    small_batch = run_ber_sweep(cfg, factory);
  }
  ASSERT_EQ(scalar.size(), 1u);
  EXPECT_EQ(scalar[0].bits, batched[0].bits);
  EXPECT_EQ(scalar[0].errors, batched[0].errors);
  EXPECT_EQ(scalar[0].ber, batched[0].ber);
  EXPECT_EQ(scalar[0].bits, small_batch[0].bits);
  EXPECT_EQ(scalar[0].errors, small_batch[0].errors);
  EXPECT_EQ(scalar[0].ber, small_batch[0].ber);
}

TEST(KernelBatch, ParallelSweepMatchesSerialAtEveryJobCount) {
  BerConfig cfg;
  cfg.sys = batch_sys();
  cfg.sys.seed = 21;
  cfg.ebn0_db = {4.0, 8.0, 12.0};
  cfg.max_bits = 400;
  cfg.min_errors = 25;
  const auto factory =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);

  cfg.jobs = 1;
  const auto serial = run_ber_sweep(cfg, factory);
  ASSERT_EQ(serial.size(), 3u);
  for (int jobs : {2, 3, 8}) {
    cfg.jobs = jobs;
    const auto parallel = run_ber_sweep(cfg, factory);
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs " << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].ebn0_db, serial[i].ebn0_db) << "jobs " << jobs;
      EXPECT_EQ(parallel[i].bits, serial[i].bits) << "jobs " << jobs;
      EXPECT_EQ(parallel[i].errors, serial[i].errors) << "jobs " << jobs;
      EXPECT_EQ(parallel[i].ber, serial[i].ber) << "jobs " << jobs;
    }
  }
}

TEST(KernelBatch, AcquireModeRangingBitIdentical) {
  // Full acquisition (NE -> PS -> AGC -> coarse -> fine) through the
  // batched kernel: the TWR distance estimate must match the per-sample
  // path bit for bit.
  TwrConfig cfg;
  cfg.sys.dt = 0.2e-9;
  cfg.sys.distance = 3.0;
  cfg.sys.multipath = false;
  cfg.sys.preamble_symbols = 80;
  cfg.sys.noise_est_windows = 16;
  cfg.sys.seed = 9;
  cfg.iterations = 1;
  cfg.noise_psd = 1e-19;
  const auto factory =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, cfg.sys);

  TwrResult scalar, batched;
  {
    ScopedEnv force("UWBAMS_FORCE_SCALAR", "1");
    scalar = TwoWayRanging(cfg, factory).run();
  }
  batched = TwoWayRanging(cfg, factory).run();
  ASSERT_EQ(scalar.iterations.size(), 1u);
  ASSERT_EQ(batched.iterations.size(), 1u);
  ASSERT_TRUE(scalar.iterations[0].ok);
  ASSERT_TRUE(batched.iterations[0].ok);
  EXPECT_EQ(scalar.iterations[0].distance_estimate,
            batched.iterations[0].distance_estimate);
  EXPECT_EQ(scalar.iterations[0].toa_bias_a, batched.iterations[0].toa_bias_a);
  EXPECT_EQ(scalar.iterations[0].toa_bias_b, batched.iterations[0].toa_bias_b);
}

}  // namespace
