// Tests for the channel-environment axis: the CM1..CM4 class table, the
// pinned CM1 identity, the memoizable draw_realizations entry point and the
// interference sources that ride the same SystemConfig.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "ams/kernel.hpp"
#include "base/random.hpp"
#include "base/stats.hpp"
#include "core/memo.hpp"
#include "uwb/channel.hpp"
#include "uwb/frontend.hpp"
#include "uwb/interference.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::uwb;

bool same_taps(const ChannelRealization& a, const ChannelRealization& b) {
  if (a.taps.size() != b.taps.size()) return false;
  for (std::size_t i = 0; i < a.taps.size(); ++i)
    if (a.taps[i].delay != b.taps[i].delay || a.taps[i].gain != b.taps[i].gain)
      return false;
  return true;
}

// ------------------------------------------------------------- class table

TEST(ChannelClass, Cm1ParamsAreTheStructDefaults) {
  // The refactor hinges on this identity: everything that used the
  // parameterless generate_cm1() path before the class table existed must
  // keep producing the same bits through channel_class_params(kCm1).
  EXPECT_EQ(channel_class_params(ChannelClass::kCm1), SalehValenzuelaParams{});
}

TEST(ChannelClass, Cm1PathLossMatchesSystemConfigDefaults) {
  SystemConfig sys;
  const double exp0 = sys.path_loss_exponent;
  const double pl0 = sys.path_loss_db_1m;
  apply_channel_class(&sys, ChannelClass::kCm1);
  EXPECT_EQ(sys.channel_class, ChannelClass::kCm1);
  EXPECT_EQ(sys.path_loss_exponent, exp0);
  EXPECT_EQ(sys.path_loss_db_1m, pl0);
}

TEST(ChannelClass, ClassesDifferWhereTheyMust) {
  const auto cm1 = channel_class_params(ChannelClass::kCm1);
  const auto cm2 = channel_class_params(ChannelClass::kCm2);
  const auto cm3 = channel_class_params(ChannelClass::kCm3);
  const auto cm4 = channel_class_params(ChannelClass::kCm4);
  // LOS flag: residential/office LOS keep the enhanced first path, the
  // NLOS classes must not.
  EXPECT_TRUE(cm1.los);
  EXPECT_FALSE(cm2.los);
  EXPECT_TRUE(cm3.los);
  EXPECT_FALSE(cm4.los);
  // Every class carries its own cluster statistics.
  EXPECT_NE(cm2, cm1);
  EXPECT_NE(cm3, cm1);
  EXPECT_NE(cm4, cm3);
  // NLOS path loss is steeper than the same environment's LOS law.
  double n_los = 0.0, n_nlos = 0.0, pl0 = 0.0;
  channel_class_path_loss(ChannelClass::kCm1, &n_los, &pl0);
  channel_class_path_loss(ChannelClass::kCm2, &n_nlos, &pl0);
  EXPECT_GT(n_nlos, n_los);
  channel_class_path_loss(ChannelClass::kCm3, &n_los, &pl0);
  channel_class_path_loss(ChannelClass::kCm4, &n_nlos, &pl0);
  EXPECT_GT(n_nlos, n_los);
}

TEST(ChannelClass, NamesRoundTrip) {
  for (int c = 0; c < kChannelClassCount; ++c) {
    const auto cls = static_cast<ChannelClass>(c);
    ChannelClass parsed{};
    EXPECT_TRUE(parse_channel_class(to_string(cls), &parsed)) << c;
    EXPECT_EQ(parsed, cls);
  }
  ChannelClass parsed{};
  EXPECT_FALSE(parse_channel_class("cm5", &parsed));
  EXPECT_FALSE(parse_channel_class("CM1", &parsed));
  EXPECT_FALSE(parse_channel_class("", &parsed));
}

// ------------------------------------------------------ draw-path identity

TEST(ChannelDraws, Cm1GenerateSvMatchesHistoricalGenerateCm1) {
  base::Rng a(7), b(7);
  for (int i = 0; i < 20; ++i) {
    const auto via_sv =
        generate_sv(a, channel_class_params(ChannelClass::kCm1));
    const auto via_cm1 = generate_cm1(b);
    EXPECT_TRUE(same_taps(via_sv, via_cm1)) << "draw " << i;
  }
}

TEST(ChannelDraws, UncachedMatchesHistoricalSequentialPattern) {
  // draw_realizations_uncached(seed, n) must be bit-identical to the
  // pattern every pre-refactor call site used: one sequential Rng.
  const std::uint64_t seed = 0xfeedULL;
  const auto drawn = draw_realizations_uncached(
      ChannelClass::kCm1, channel_class_params(ChannelClass::kCm1), seed, 3);
  ASSERT_EQ(drawn.size(), 3u);
  base::Rng rng(seed);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(same_taps(drawn[static_cast<std::size_t>(i)],
                          generate_cm1(rng)))
        << "draw " << i;
}

TEST(ChannelDraws, ProviderPathIsBitIdenticalToUncached) {
  // This test binary links core, whose memo installs the provider hook; a
  // warm (memoized) draw must be byte-identical to the raw one.
  core::memo::reset_for_tests();
  const auto params = channel_class_params(ChannelClass::kCm2);
  const auto cold = draw_realizations(ChannelClass::kCm2, params, 99, 2);
  const auto warm = draw_realizations(ChannelClass::kCm2, params, 99, 2);
  const auto raw = draw_realizations_uncached(ChannelClass::kCm2, params, 99, 2);
  ASSERT_EQ(cold.size(), 2u);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_TRUE(same_taps(cold[i], raw[i]));
    EXPECT_TRUE(same_taps(warm[i], raw[i]));
  }
  if (core::memo::enabled()) {
    const auto st = core::memo::stats();
    EXPECT_EQ(st.channel_misses, 1u);
    EXPECT_EQ(st.channel_mem_hits, 1u);
  }
}

TEST(ChannelDraws, MemoSerializationRoundTripsExactly) {
  const auto draws = draw_realizations_uncached(
      ChannelClass::kCm4, channel_class_params(ChannelClass::kCm4), 31, 2);
  const auto back =
      core::memo::channel_draws_from_json(core::memo::channel_draws_to_json(draws));
  ASSERT_EQ(back.size(), draws.size());
  for (std::size_t i = 0; i < draws.size(); ++i)
    EXPECT_TRUE(same_taps(back[i], draws[i]));
}

TEST(ChannelDraws, ContentKeySeparatesEveryKnob) {
  const auto params = channel_class_params(ChannelClass::kCm1);
  const auto key = core::memo::channel_draws_content_key(
      ChannelClass::kCm1, params, 1, 2);
  EXPECT_NE(key, core::memo::channel_draws_content_key(ChannelClass::kCm2,
                                                       params, 1, 2));
  EXPECT_NE(key, core::memo::channel_draws_content_key(ChannelClass::kCm1,
                                                       params, 2, 2));
  EXPECT_NE(key, core::memo::channel_draws_content_key(ChannelClass::kCm1,
                                                       params, 1, 3));
  auto tweaked = params;
  tweaked.ray_decay += 1e-12;
  EXPECT_NE(key, core::memo::channel_draws_content_key(ChannelClass::kCm1,
                                                       tweaked, 1, 2));
}

// ------------------------------------------------- per-class realizations

TEST(ChannelStats, RealizationInvariantsHoldForEveryClass) {
  for (int c = 0; c < kChannelClassCount; ++c) {
    const auto cls = static_cast<ChannelClass>(c);
    const auto p = channel_class_params(cls);
    base::Rng rng(17 + static_cast<std::uint64_t>(c));
    for (int i = 0; i < 50; ++i) {
      const auto cr = generate_sv(rng, p);
      ASSERT_FALSE(cr.taps.empty());
      EXPECT_NEAR(cr.total_energy(), 1.0, 1e-9);
      EXPECT_EQ(cr.taps.front().delay, 0.0);
      for (std::size_t k = 1; k < cr.taps.size(); ++k)
        EXPECT_GE(cr.taps[k].delay, cr.taps[k - 1].delay);
      EXPECT_LE(cr.taps.back().delay, p.max_excess_delay + 1e-15);
      EXPECT_LE(cr.taps.size(), static_cast<std::size_t>(p.max_taps));
    }
  }
}

TEST(ChannelStats, PerClassDelaySpreadsSitInTheirTg4aBands) {
  // 400 draws per class from a fixed seed; bands bracket the truncated
  // (max_excess_delay, max_taps) model's empirical means with generous
  // margin. Office (CM3/CM4) is markedly tighter than residential
  // (CM1/CM2), and each environment's NLOS class disperses more than its
  // LOS sibling.
  double rms_mean[kChannelClassCount];
  double med_mean[kChannelClassCount];
  for (int c = 0; c < kChannelClassCount; ++c) {
    const auto p = channel_class_params(static_cast<ChannelClass>(c));
    base::Rng rng(12345);
    base::RunningStats rms, med;
    for (int i = 0; i < 400; ++i) {
      const auto cr = generate_sv(rng, p);
      rms.add(cr.rms_delay_spread());
      med.add(cr.mean_excess_delay());
    }
    rms_mean[c] = rms.mean();
    med_mean[c] = med.mean();
  }
  // Per-class absolute bands [ns].
  EXPECT_GT(rms_mean[0], 10e-9);  // CM1 ~ 15.7 ns
  EXPECT_LT(rms_mean[0], 22e-9);
  EXPECT_GT(rms_mean[1], 13e-9);  // CM2 ~ 18.5 ns
  EXPECT_LT(rms_mean[1], 26e-9);
  EXPECT_GT(rms_mean[2], 4e-9);   // CM3 ~ 7.8 ns
  EXPECT_LT(rms_mean[2], 12e-9);
  EXPECT_GT(rms_mean[3], 5e-9);   // CM4 ~ 8.5 ns
  EXPECT_LT(rms_mean[3], 13e-9);
  // Orderings that must hold for the model to mean anything.
  EXPECT_GT(rms_mean[1], rms_mean[0]);  // NLOS > LOS, residential
  EXPECT_GT(med_mean[1], med_mean[0]);
  EXPECT_GT(med_mean[3], med_mean[2]);  // NLOS > LOS, office
  EXPECT_LT(std::max(rms_mean[2], rms_mean[3]),
            std::min(rms_mean[0], rms_mean[1]));  // office < residential
}

TEST(ChannelStats, MeanExcessDelayMatchesHandComputation) {
  ChannelRealization cr;
  cr.taps = {{0.0, std::sqrt(0.5)}, {10e-9, std::sqrt(0.3)},
             {40e-9, -std::sqrt(0.2)}};
  // First moment of the tap powers: 0.5*0 + 0.3*10ns + 0.2*40ns = 11 ns.
  EXPECT_NEAR(cr.mean_excess_delay(), 11e-9, 1e-15);
}

// ------------------------------------------------------------ interference

TEST(Interference, EmptyConfigAliasesTheInputPointer) {
  SystemConfig sys;
  ASSERT_FALSE(sys.interference.any());
  ams::Kernel kernel(sys.dt);
  double rf[ams::kMaxBatch] = {};
  InterferenceSet set(kernel, sys, rf);
  EXPECT_FALSE(set.active());
  // The bit-exactness contract: no interference means no summing block at
  // all — the receiver reads the very same buffer it always did.
  EXPECT_EQ(set.out(), rf);
}

TEST(Interference, CwToneScalarAndBatchAgree) {
  CwTone a(2e-3, 0.31e9, 0.4), b(2e-3, 0.31e9, 0.4);
  const double dt = 0.2e-9;
  double t[8];
  for (int i = 0; i < 8; ++i) t[i] = 1e-9 + i * dt;
  b.step_block(t, dt, 8);
  for (int i = 0; i < 8; ++i) {
    a.step(t[i], dt);
    EXPECT_EQ(a.out()[0], b.out()[i]) << i;
  }
}

TEST(Interference, SummingJunctionBatchMatchesScalar) {
  double in1[ams::kMaxBatch], in2[ams::kMaxBatch];
  base::Rng rng(3);
  for (int i = 0; i < 16; ++i) {
    in1[i] = rng.gaussian();
    in2[i] = rng.gaussian();
  }
  SummingJunction scalar({in1, in2});
  SummingJunction batch({in1, in2});
  batch.step_block(nullptr, 0.2e-9, 16);
  // Scalar path reads index 0 only, so walk it sample by sample against
  // the batch result via shifted copies.
  for (int i = 0; i < 16; ++i) {
    double a[1] = {in1[i]}, b[1] = {in2[i]};
    SummingJunction one({a, b});
    one.step(0.0, 0.2e-9);
    EXPECT_EQ(one.out()[0], batch.out()[i]) << i;
    EXPECT_EQ(one.out()[0], in1[i] + in2[i]) << i;
  }
}

TEST(Interference, PiconetDrawsAreHashKeyedNotSequential) {
  // The slot of symbol k is a pure hash of (seed, k): sampling the signal
  // at any time must not depend on which times were sampled before —
  // that's what makes the batched path trivially bit-identical.
  SystemConfig sys;
  sys.interference.uwb_count = 1;
  sys.interference.uwb_amplitude = 5e-3;
  PiconetInterferer p1(sys, 77), p2(sys, 77);
  const auto sample = [&](PiconetInterferer& p, double t) {
    p.step(t, sys.dt);
    return p.out()[0];
  };
  const double probe[] = {3.1e-6, 0.4e-6, 1.9e-6, 0.4e-6};
  std::vector<double> forward;
  for (const double t : probe) forward.push_back(sample(p1, t));
  // p2 samples in a different order; matching times must match values.
  EXPECT_EQ(sample(p2, probe[1]), forward[1]);
  EXPECT_EQ(sample(p2, probe[3]), forward[3]);
  EXPECT_EQ(sample(p2, probe[0]), forward[0]);
  EXPECT_EQ(forward[1], forward[3]);  // same time, same value
  // A different interferer seed is a different piconet.
  PiconetInterferer p3(sys, 78);
  bool any_diff = false;
  for (double t = 0.0; t < 4e-6; t += 7e-9)
    if (sample(p3, t) != sample(p1, t)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Interference, InterferenceConfigAnyGates) {
  InterferenceConfig ic;
  EXPECT_FALSE(ic.any());
  ic.cw_amplitude = 1e-3;
  EXPECT_TRUE(ic.any());
  ic.cw_amplitude = 0.0;
  ic.uwb_count = 2;
  EXPECT_FALSE(ic.any());  // count without amplitude is inert
  ic.uwb_amplitude = 1e-3;
  EXPECT_TRUE(ic.any());
}

}  // namespace
