// Keeps docs/scenarios.md honest: every scenario registered in the binary
// must be documented (by a `### <name>` heading), and every documented
// scenario heading must still exist in the registry. Links the same
// scenario object library as uwbams_run, so the registry here is exactly
// the CLI's.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "runner/registry.hpp"

#ifndef UWBAMS_DOCS_DIR
#error "UWBAMS_DOCS_DIR must point at the repo's docs directory"
#endif

namespace {

using uwbams::runner::ScenarioRegistry;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// `### <name>` headings of docs/scenarios.md.
std::set<std::string> documented_scenarios(const std::string& text) {
  std::set<std::string> names;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("### ", 0) != 0) continue;
    std::string name = line.substr(4);
    // Strip trailing annotations like "### fig6_ber — Fig. 6".
    const auto cut = name.find_first_of(" \t");
    if (cut != std::string::npos) name = name.substr(0, cut);
    if (!name.empty()) names.insert(name);
  }
  return names;
}

TEST(Docs, ScenariosPageExists) {
  const std::string text = read_file(std::string(UWBAMS_DOCS_DIR) + "/scenarios.md");
  ASSERT_FALSE(text.empty()) << "docs/scenarios.md is missing or empty";
}

TEST(Docs, EveryRegisteredScenarioIsDocumented) {
  const std::string text = read_file(std::string(UWBAMS_DOCS_DIR) + "/scenarios.md");
  ASSERT_FALSE(text.empty());
  const auto documented = documented_scenarios(text);
  auto& registry = ScenarioRegistry::instance();
  ASSERT_GT(registry.size(), 0u) << "scenario registrations not linked in";
  for (const auto* s : registry.list()) {
    EXPECT_TRUE(documented.count(s->info.name))
        << "scenario '" << s->info.name
        << "' is registered but has no `### " << s->info.name
        << "` section in docs/scenarios.md";
  }
}

TEST(Docs, NoStaleScenarioSections) {
  const std::string text = read_file(std::string(UWBAMS_DOCS_DIR) + "/scenarios.md");
  ASSERT_FALSE(text.empty());
  auto& registry = ScenarioRegistry::instance();
  for (const auto& name : documented_scenarios(text)) {
    EXPECT_NE(registry.find(name), nullptr)
        << "docs/scenarios.md documents '" << name
        << "' which is not a registered scenario";
  }
}

TEST(Docs, CorePagesExist) {
  EXPECT_FALSE(read_file(std::string(UWBAMS_DOCS_DIR) + "/methodology.md").empty())
      << "docs/methodology.md is missing";
  EXPECT_FALSE(read_file(std::string(UWBAMS_DOCS_DIR) + "/architecture.md").empty())
      << "docs/architecture.md is missing";
  EXPECT_FALSE(
      read_file(std::string(UWBAMS_DOCS_DIR) + "/characterization.md").empty())
      << "docs/characterization.md is missing";
}

// scenarios.md organizes its sections by group; a scenario registered
// under a group the page has no section structure for would be filed
// nowhere a reader looks. Keep the group vocabulary closed.
TEST(Docs, ScenarioGroupsAreKnown) {
  const std::set<std::string> known = {"bench",    "mc",      "netscale",
                                       "ranging",  "ablation", "example",
                                       "coex"};
  for (const auto* s : ScenarioRegistry::instance().list()) {
    EXPECT_TRUE(known.count(s->info.group))
        << "scenario '" << s->info.name << "' uses unknown group '"
        << s->info.group
        << "' — add the group to docs/scenarios.md and this test";
  }
}

// The ranging walk-through (docs/ranging.md) must exist and cover both
// scenarios of the `ranging` group plus the clock-error algebra it
// documents (closed vocabulary, like the characterization page below).
TEST(Docs, RangingPageCoversRangingScenarios) {
  const std::string text =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/ranging.md");
  ASSERT_FALSE(text.empty()) << "docs/ranging.md is missing";
  for (const char* needle :
       {"twr_clock", "ranging_network", "ClockModel", "processing time"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "docs/ranging.md does not mention '" << needle << "'";
  }
}

// The large-scale networking walk-through (docs/netscale.md) must exist
// and cover the calibrate -> validate -> simulate workflow: all three
// `netscale` scenarios, the surrogate cache hand-off, and the solver /
// fault knobs a reader needs to interpret the results.
TEST(Docs, NetscalePageCoversNetscaleScenarios) {
  const std::string text =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/netscale.md");
  ASSERT_FALSE(text.empty()) << "docs/netscale.md is missing";
  for (const char* needle :
       {"surrogate_fit", "netscale_static", "netscale_mobility",
        "UWBAMS_SURROGATE", "surrogate.json", "packet_loss",
        "anchor_dropout", "held-out"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "docs/netscale.md does not mention '" << needle << "'";
  }
}

// The channel-environment walk-through (docs/channels.md) must exist and
// cover the vocabulary a reader needs to drive the axis: the four class
// names, the knobs, the seeding/identity contract, the coex scenarios and
// the caching hand-offs. The catalog's coex section must point at it.
TEST(Docs, ChannelsPageCoversTheEnvironmentAxis) {
  const std::string text =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/channels.md");
  ASSERT_FALSE(text.empty()) << "docs/channels.md is missing";
  for (const char* needle :
       {"cm1", "cm2", "cm3", "cm4", "channel_class", "Saleh-Valenzuela",
        "apply_channel_class", "path-loss", "InterferenceConfig",
        "cw_amplitude", "uwb_count", "kInterferencePurpose", "derive_seed",
        "coex_ber", "multiuser_ber", "channel_class_sweep",
        "uwbams-surrogate-v2", "uwbams-channel-draws-v1", "UWBAMS_CACHE",
        "UWBAMS_CACHE_MAX_MB", "bit-identical", "held-out"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "docs/channels.md does not mention '" << needle << "'";
  }
  const std::string catalog =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/scenarios.md");
  ASSERT_FALSE(catalog.empty());
  for (const char* needle : {"channels.md", "BENCH_coex.json"}) {
    EXPECT_NE(catalog.find(needle), std::string::npos)
        << "docs/scenarios.md does not mention '" << needle << "'";
  }
}

// The exactness-tier contract (methodology.md) must keep covering the
// vocabulary a reader needs to drive and refresh the stat_equiv gate:
// both tier names, the CLI flags, the artifact/report file names, the
// two statistical tests behind the checks, and the refresh command.
TEST(Docs, MethodologyPageCoversExactnessTiers) {
  const std::string text =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/methodology.md");
  ASSERT_FALSE(text.empty());
  for (const char* needle :
       {"Exactness tiers", "bit_exact", "stat_equiv", "--tier", "--golden",
        "--equiv-check", "golden_stats.json", "equiv_report.json",
        "tests/golden/", "tools/refresh_golden.sh", "Wilson",
        "Kolmogorov", "cosim_decimation"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "docs/methodology.md does not mention '" << needle << "'";
  }
  // The catalog's conventions must point readers at the tier contract.
  const std::string catalog =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/scenarios.md");
  ASSERT_FALSE(catalog.empty());
  for (const char* needle : {"--tier=bit_exact|stat_equiv", "golden_stats.json"}) {
    EXPECT_NE(catalog.find(needle), std::string::npos)
        << "docs/scenarios.md does not mention '" << needle << "'";
  }
}

// The fault-tolerance contract (robustness.md) must keep covering the
// vocabulary a reader needs to drive the layer: the four CLI flags and
// the env fallback, every fault-plan probe site (closed vocabulary, both
// directions checked by tests/test_faults.cpp), the retry-shape knob,
// the checkpoint journal files and identity key, and the inspection
// tool. The catalog's conventions must point readers at the page.
TEST(Docs, RobustnessPageCoversFaultTolerance) {
  const std::string text =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/robustness.md");
  ASSERT_FALSE(text.empty()) << "docs/robustness.md is missing";
  for (const char* needle :
       {"--fault-plan", "UWBAMS_FAULT_PLAN", "--checkpoint", "--resume",
        "--retries", "runner.task", "spice.nonconverge", "sink.write",
        "net.calibrate", "netscale.measure", "checkpoint.shard",
        "fail_attempts", "quarantine", "manifest.json", "content_key",
        "byte-identical", "tools/inspect_checkpoint.sh"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "docs/robustness.md does not mention '" << needle << "'";
  }
  const std::string catalog =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/scenarios.md");
  ASSERT_FALSE(catalog.empty());
  for (const char* needle : {"robustness.md", "--retries", "--checkpoint"}) {
    EXPECT_NE(catalog.find(needle), std::string::npos)
        << "docs/scenarios.md does not mention '" << needle << "'";
  }
}

// Every scenario the catalog documents must also appear in the
// characterization walk-through's command blocks or the paper map when it
// reproduces a paper artifact; at minimum the three statistical scenarios
// must be walked through (they are the page's subject).
TEST(Docs, CharacterizationPageCoversStatisticalScenarios) {
  const std::string text =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/characterization.md");
  ASSERT_FALSE(text.empty());
  for (const char* name : {"mc_itd", "corner_ber", "yield_report"}) {
    EXPECT_NE(text.find(name), std::string::npos)
        << "docs/characterization.md does not mention scenario '" << name
        << "'";
  }
}

// The scenario-server contract (service.md) must keep covering the
// vocabulary a reader needs to drive the server and trust its cache: the
// wire schema, the ops, the key contract (what is hashed, what is
// excluded, how invalidation works), the durability mechanics, and the
// intermediate memoization env knobs. The catalog's conventions must
// point readers at the page.
TEST(Docs, ServicePageCoversTheServerContract) {
  const std::string text =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/service.md");
  ASSERT_FALSE(text.empty()) << "docs/service.md is missing";
  for (const char* needle :
       {"uwbams-serve-v1", "uwbams-serve-result-v1", "--connect",
        "--socket", "--cache", "--mem-entries", "--shutdown", "content key",
        "uwbams-serve-run/1", "kCodeVersion", "FNV-1a", "coalesced",
        "kMaxRequestBytes", "UWBAMS_CACHE", "UWBAMS_MEMO",
        "UWBAMS_SURROGATE", "manifest.json", "byte-identical", "rename(2)",
        "--jobs` is excluded"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "docs/service.md does not mention '" << needle << "'";
  }
  const std::string catalog =
      read_file(std::string(UWBAMS_DOCS_DIR) + "/scenarios.md");
  ASSERT_FALSE(catalog.empty());
  for (const char* needle : {"service.md", "uwbams_serve", "--connect"}) {
    EXPECT_NE(catalog.find(needle), std::string::npos)
        << "docs/scenarios.md does not mention '" << needle << "'";
  }
}

}  // namespace
