// Tests for base utilities: random distributions, statistics, tables, traces.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/random.hpp"
#include "base/stats.hpp"
#include "base/table.hpp"
#include "base/trace.hpp"
#include "base/units.hpp"

namespace {

using namespace uwbams;
using base::Rng;

TEST(Units, DbConversionsRoundTrip) {
  EXPECT_NEAR(units::db_to_lin(20.0), 10.0, 1e-12);
  EXPECT_NEAR(units::lin_to_db(100.0), 40.0, 1e-12);
  EXPECT_NEAR(units::db_to_pow(10.0), 10.0, 1e-12);
  EXPECT_NEAR(units::pow_to_db(1000.0), 30.0, 1e-12);
  for (double db : {-17.0, -3.0, 0.0, 6.0, 21.0}) {
    EXPECT_NEAR(units::lin_to_db(units::db_to_lin(db)), db, 1e-9);
    EXPECT_NEAR(units::pow_to_db(units::db_to_pow(db)), db, 1e-9);
  }
}

TEST(Units, ThermalVoltage) {
  EXPECT_NEAR(units::thermal_voltage(27.0), 0.02585, 2e-4);
}

TEST(Rng, Reproducible) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  base::RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  base::RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.exponential(4.0));
  EXPECT_NEAR(st.mean(), 0.25, 0.01);
}

TEST(Rng, NakagamiSecondMoment) {
  // E[x^2] must equal omega for any m.
  Rng rng(13);
  for (double m : {0.7, 1.0, 3.0}) {
    base::RunningStats st;
    for (int i = 0; i < 100000; ++i) {
      const double x = rng.nakagami(m, 2.5);
      st.add(x * x);
    }
    EXPECT_NEAR(st.mean(), 2.5, 0.08) << "m=" << m;
  }
}

TEST(Rng, NakagamiM1IsRayleigh) {
  // m=1 Nakagami amplitude = Rayleigh: var(x^2) = omega^2.
  Rng rng(17);
  base::RunningStats st;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.nakagami(1.0, 1.0);
    st.add(x * x);
  }
  EXPECT_NEAR(st.variance(), 1.0, 0.05);
}

TEST(Rng, LognormalDbMedian) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal_db(0.0, 3.0));
  EXPECT_NEAR(base::percentile_of(xs, 50.0), 1.0, 0.05);
}

TEST(Rng, PoissonArrivalRate) {
  Rng rng(23);
  double t = 0.0;
  int count = 0;
  while (t < 1000.0) {
    t = rng.poisson_arrival_after(t, 5.0);
    ++count;
  }
  EXPECT_NEAR(count / 1000.0, 5.0, 0.3);
}

TEST(RunningStats, AgainstClosedForm) {
  base::RunningStats st;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), 5u);
  EXPECT_DOUBLE_EQ(st.mean(), 4.0);
  EXPECT_NEAR(st.variance(), 12.5, 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 10.0);
}

TEST(RunningStats, MatchesBatchHelpers) {
  Rng rng(3);
  std::vector<double> xs;
  base::RunningStats st;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(rng.uniform(-5, 5));
    st.add(xs.back());
  }
  EXPECT_NEAR(st.mean(), base::mean_of(xs), 1e-9);
  EXPECT_NEAR(st.variance(), base::variance_of(xs), 1e-9);
}

TEST(BerCounter, CountsAndInterval) {
  base::BerCounter c;
  for (int i = 0; i < 1000; ++i) c.add(i % 100 == 0);
  EXPECT_EQ(c.bits(), 1000u);
  EXPECT_EQ(c.errors(), 10u);
  EXPECT_DOUBLE_EQ(c.ber(), 0.01);
  EXPECT_GT(c.half_width_95(), 0.0);
  EXPECT_LT(c.half_width_95(), 0.02);
  EXPECT_TRUE(c.converged(10));
  EXPECT_FALSE(c.converged(11));
}

TEST(Stats, Percentile) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(base::percentile_of(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(base::percentile_of(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(base::percentile_of(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(base::percentile_of(xs, 25), 2.0);
}

TEST(Stats, QuantileSummaryEdgeCases) {
  // Empty: a well-defined all-zero summary (count 0), not a throw or UB
  // interpolation indices.
  const auto empty = base::summarize_quantiles({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.min, 0.0);
  EXPECT_EQ(empty.p05, 0.0);
  EXPECT_EQ(empty.p95, 0.0);
  EXPECT_EQ(empty.max, 0.0);

  // Single element: every quantile collapses onto the value.
  const auto one = base::summarize_quantiles({42.5});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 42.5);
  EXPECT_DOUBLE_EQ(one.min, 42.5);
  EXPECT_DOUBLE_EQ(one.p05, 42.5);
  EXPECT_DOUBLE_EQ(one.p50, 42.5);
  EXPECT_DOUBLE_EQ(one.p95, 42.5);
  EXPECT_DOUBLE_EQ(one.max, 42.5);

  // Two elements interpolate sanely (no index overrun at the extremes).
  const auto two = base::summarize_quantiles({1.0, 3.0});
  EXPECT_EQ(two.count, 2u);
  EXPECT_DOUBLE_EQ(two.min, 1.0);
  EXPECT_DOUBLE_EQ(two.max, 3.0);
  EXPECT_DOUBLE_EQ(two.p50, 2.0);
  EXPECT_GE(two.p05, 1.0);
  EXPECT_LE(two.p95, 3.0);

  // percentile_of keeps its contract: the empty input still throws (the
  // summary wrapper is the defined-degenerate entry point).
  EXPECT_THROW(base::percentile_of({}, 50.0), std::invalid_argument);
}

TEST(Stats, LineFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.5 - 0.25 * i);
  }
  const auto f = base::fit_line(x, y);
  EXPECT_NEAR(f.intercept, 3.5, 1e-9);
  EXPECT_NEAR(f.slope, -0.25, 1e-9);
}

TEST(Table, RendersAllCells) {
  base::Table t("Table X. demo");
  t.set_header({"model", "value"});
  t.add_row({"IDEAL", base::Table::num(1.5, 2)});
  t.add_row({"ELDO", base::Table::num(2.25, 2)});
  const std::string s = t.render();
  EXPECT_NE(s.find("Table X. demo"), std::string::npos);
  EXPECT_NE(s.find("IDEAL"), std::string::npos);
  EXPECT_NE(s.find("2.25"), std::string::npos);
}

TEST(Series, StoresColumnsAndPlots) {
  base::Series s("fig", "x");
  s.add_column("a");
  s.add_column("b");
  for (int i = 1; i <= 10; ++i)
    s.add_row(i, {static_cast<double>(i), 1.0 / i});
  EXPECT_EQ(s.rows(), 10u);
  EXPECT_THROW(s.add_row(11, {1.0}), std::invalid_argument);
  EXPECT_FALSE(s.ascii_plot(40, 10, true).empty());
  EXPECT_NE(s.render().find("fig"), std::string::npos);
}

TEST(Trace, RecordInterpolateCross) {
  base::Trace tr("v");
  for (int i = 0; i <= 100; ++i) tr.record(i * 0.1, i * 0.01);  // ramp 0..1
  EXPECT_EQ(tr.size(), 101u);
  EXPECT_NEAR(tr.at(5.05), 0.505, 1e-12);
  EXPECT_NEAR(tr.first_crossing(0.5), 5.0, 0.11);
  EXPECT_DOUBLE_EQ(tr.max_value(), 1.0);
  EXPECT_DOUBLE_EQ(tr.min_value(), 0.0);
}

TEST(Trace, Decimation) {
  base::Trace tr("v", 10);
  for (int i = 0; i < 100; ++i) tr.record(i, i);
  EXPECT_EQ(tr.size(), 10u);
}

TEST(Trace, CsvHasHeaderAndRows) {
  base::Trace tr("sig");
  tr.record(0.0, 1.0);
  tr.record(1.0, 2.0);
  const std::string csv = tr.to_csv();
  EXPECT_NE(csv.find("t,sig"), std::string::npos);
  EXPECT_NE(csv.find("\n"), std::string::npos);
}

}  // namespace
