// Tests for the UWB building blocks: pulses, packets, transmitter, channel,
// front end, ADC/DAC, demodulator, NE/PS, AGC.
#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hpp"
#include "base/stats.hpp"
#include "base/units.hpp"
#include "uwb/adc.hpp"
#include "uwb/agc.hpp"
#include "uwb/channel.hpp"
#include "uwb/demodulator.hpp"
#include "uwb/frontend.hpp"
#include "uwb/packet.hpp"
#include "uwb/preamble_sense.hpp"
#include "uwb/pulse.hpp"
#include "uwb/transmitter.hpp"

namespace {

using namespace uwbams;
using namespace uwbams::uwb;

TEST(Pulse, PeakEqualsAmplitude) {
  const GaussianMonocycle p(2, 0.7e-9, 0.5);
  EXPECT_NEAR(p.value(0.0), 0.5, 1e-12);
  // Order-1 peak at t = sigma.
  const GaussianMonocycle p1(1, 0.7e-9, 0.5);
  EXPECT_NEAR(p1.value(0.7e-9), 0.5, 1e-9);
}

TEST(Pulse, EnergyClosedFormMatchesNumeric) {
  for (int order : {1, 2}) {
    const GaussianMonocycle p(order, 0.7e-9, 0.3);
    const double dt = 1e-12;
    double e_num = 0.0;
    for (double t = -6e-9; t <= 6e-9; t += dt) e_num += p.value(t) * p.value(t) * dt;
    EXPECT_NEAR(p.energy(), e_num, p.energy() * 1e-3) << "order=" << order;
  }
}

TEST(Pulse, InvalidParamsThrow) {
  EXPECT_THROW(GaussianMonocycle(3, 1e-9, 1.0), std::invalid_argument);
  EXPECT_THROW(GaussianMonocycle(2, -1e-9, 1.0), std::invalid_argument);
}

TEST(Packet, SlotAssignment) {
  Packet p;
  p.preamble_symbols = 3;
  p.payload = {true, false, true};
  EXPECT_EQ(p.total_symbols(), 6);
  EXPECT_EQ(p.slot_of_symbol(0), 0);  // preamble in slot 0
  EXPECT_EQ(p.slot_of_symbol(2), 0);
  EXPECT_EQ(p.slot_of_symbol(3), 1);  // payload bit 1
  EXPECT_EQ(p.slot_of_symbol(4), 0);
  EXPECT_EQ(p.slot_of_symbol(5), 1);
  EXPECT_THROW(p.slot_of_symbol(6), std::out_of_range);
  EXPECT_NEAR(p.duration(128e-9), 6 * 128e-9, 1e-15);
}

TEST(Transmitter, PlacesBurstInCorrectSlot) {
  SystemConfig sys;
  sys.dt = 0.1e-9;
  Transmitter tx(sys);
  Packet p;
  p.preamble_symbols = 0;
  p.payload = {false, true};
  tx.send(p, 0.0);

  double e_sym0_slot0 = 0, e_sym0_slot1 = 0, e_sym1_slot0 = 0, e_sym1_slot1 = 0;
  for (double t = 0; t < 2 * sys.symbol_period; t += sys.dt) {
    tx.step(t, sys.dt);
    const double e = (*tx.out()) * (*tx.out()) * sys.dt;
    const int sym = static_cast<int>(t / sys.symbol_period);
    const bool slot1 = std::fmod(t, sys.symbol_period) >= sys.slot_period();
    if (sym == 0) (slot1 ? e_sym0_slot1 : e_sym0_slot0) += e;
    else (slot1 ? e_sym1_slot1 : e_sym1_slot0) += e;
  }
  EXPECT_GT(e_sym0_slot0, 100 * e_sym0_slot1);  // bit 0 -> slot 0
  EXPECT_GT(e_sym1_slot1, 100 * e_sym1_slot0);  // bit 1 -> slot 1
  // Burst energy ~ Np * single pulse energy; overlapping alternating-sign
  // tails add constructively, so allow up to ~60% excess.
  const GaussianMonocycle pulse(2, sys.pulse_sigma, sys.pulse_amplitude);
  const double e1 = sys.pulses_per_symbol * pulse.energy();
  EXPECT_GT(e_sym0_slot0, 0.8 * e1);
  EXPECT_LT(e_sym0_slot0, 1.7 * e1);
}

TEST(Transmitter, FirstPulseTimeAndBusy) {
  SystemConfig sys;
  Transmitter tx(sys);
  EXPECT_THROW(tx.first_pulse_time(), std::logic_error);
  Packet p;
  p.preamble_symbols = 2;
  tx.send(p, 1e-6);
  EXPECT_NEAR(tx.first_pulse_time(), 1e-6 + tx.pulse_offset_in_slot(), 1e-15);
  EXPECT_TRUE(tx.busy(1.1e-6));
  EXPECT_FALSE(tx.busy(2e-6));
}

TEST(Channel, PathLossLaw) {
  EXPECT_NEAR(path_loss_db(1.0, 43.9, 1.79), 43.9, 1e-12);
  EXPECT_NEAR(path_loss_db(10.0, 43.9, 1.79), 43.9 + 17.9, 1e-9);
  EXPECT_THROW(path_loss_db(0.0, 43.9, 1.79), std::invalid_argument);
  // Monotone in distance.
  double prev = 0.0;
  for (double d : {1.0, 2.0, 5.0, 9.9, 20.0}) {
    const double pl = path_loss_db(d, 43.9, 1.79);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(Channel, Cm1RealizationsAreUnitEnergySorted) {
  base::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto cr = generate_cm1(rng);
    EXPECT_NEAR(cr.total_energy(), 1.0, 1e-9);
    EXPECT_EQ(cr.taps.front().delay, 0.0);  // first path defines zero delay
    for (std::size_t k = 1; k < cr.taps.size(); ++k)
      EXPECT_GE(cr.taps[k].delay, cr.taps[k - 1].delay);
    EXPECT_LE(cr.taps.size(), 64u);
  }
}

TEST(Channel, Cm1DelaySpreadInPlausibleRange) {
  // CM1 residential LOS: RMS delay spread ~ 10-25 ns on average.
  base::Rng rng(11);
  base::RunningStats st;
  for (int i = 0; i < 200; ++i) st.add(generate_cm1(rng).rms_delay_spread());
  EXPECT_GT(st.mean(), 5e-9);
  EXPECT_LT(st.mean(), 30e-9);
}

TEST(Channel, RebuildMidRunDiscardsHistoryAndCountsIt) {
  // Contract regression (see ChannelBlock header): set_distance() /
  // set_realization() / set_awgn_only() rebuild the sampled delay line and
  // clear propagation history. Rebuilding while a waveform is still in
  // flight drops it — the guard counter must record exactly that case, and
  // the line must come back consistent (write position reset, silence out).
  SystemConfig sys;
  sys.dt = 0.1e-9;
  sys.distance = 3.0;
  double input = 0.0;
  ChannelBlock chan(sys, &input);
  chan.set_awgn_only(0.5);
  chan.set_noise_psd(0.0);
  EXPECT_EQ(chan.history_discards(), 0u);  // drained-line rebuilds are free

  // Put an impulse in flight, then rebuild mid-propagation.
  input = 1.0;
  chan.step(0.0, sys.dt);
  input = 0.0;
  chan.step(sys.dt, sys.dt);
  chan.set_distance(6.0);  // mid-run: the in-flight impulse is dropped
  EXPECT_EQ(chan.history_discards(), 1u);

  // The dropped impulse must never emerge; the line is silent and usable.
  const int prop_samples = static_cast<int>(
      std::round(6.0 / units::speed_of_light / sys.dt)) + 4;
  for (int i = 0; i < prop_samples; ++i) {
    chan.step(i * sys.dt, sys.dt);
    ASSERT_EQ(*chan.out(), 0.0) << "stale history leaked at sample " << i;
  }

  // A fresh impulse propagates with the new distance exactly.
  input = 1.0;
  chan.step(0.0, sys.dt);
  input = 0.0;
  const int d = static_cast<int>(
      std::round(6.0 / units::speed_of_light / sys.dt));
  double out_at_delay = -1.0;
  for (int i = 1; i <= d + 2; ++i) {
    chan.step(i * sys.dt, sys.dt);
    if (i == d) out_at_delay = *chan.out();
  }
  EXPECT_NEAR(out_at_delay, 0.5, 1e-12);

  // Between-packet rebuild on the drained line: no further discards.
  chan.set_distance(3.0);
  EXPECT_EQ(chan.history_discards(), 1u);
}

TEST(Channel, BlockDelaysAndScales) {
  SystemConfig sys;
  sys.dt = 0.1e-9;
  sys.distance = 3.0;  // 10 ns propagation
  double input = 0.0;
  ChannelBlock chan(sys, &input);
  chan.set_awgn_only(0.5);
  chan.set_noise_psd(0.0);
  // Impulse at the first step.
  input = 1.0;
  chan.step(0.0, sys.dt);
  input = 0.0;
  const int prop_samples = static_cast<int>(
      std::round(sys.distance / units::speed_of_light / sys.dt));
  double out_at_delay = 0.0;
  for (int i = 1; i <= prop_samples + 2; ++i) {
    chan.step(i * sys.dt, sys.dt);
    if (i == prop_samples) out_at_delay = *chan.out();
  }
  EXPECT_NEAR(out_at_delay, 0.5, 1e-12);
}

TEST(Channel, NoiseVarianceMatchesPsd) {
  SystemConfig sys;
  sys.dt = 0.1e-9;
  double input = 0.0;
  ChannelBlock chan(sys, &input);
  chan.set_awgn_only(1.0);
  const double n0 = 4e-18;
  chan.set_noise_psd(n0);
  base::RunningStats st;
  for (int i = 0; i < 200000; ++i) {
    chan.step(i * sys.dt, sys.dt);
    st.add(*chan.out());
  }
  EXPECT_NEAR(st.variance(), 0.5 * n0 * sys.sample_rate(),
              0.02 * 0.5 * n0 * sys.sample_rate());
}

TEST(Amplifier, GainAndSaturation) {
  double in = 0.01;
  Amplifier amp(&in, 20.0, 0.5);  // 10x, clamp 0.5
  amp.step(0, 1e-9);
  EXPECT_NEAR(*amp.out(), 0.1, 1e-12);
  in = 0.2;
  amp.step(0, 1e-9);
  EXPECT_NEAR(*amp.out(), 0.5, 1e-12);  // clamped
  in = -0.2;
  amp.step(0, 1e-9);
  EXPECT_NEAR(*amp.out(), -0.5, 1e-12);
  amp.set_gain_db(0.0);
  in = 0.3;
  amp.step(0, 1e-9);
  EXPECT_NEAR(*amp.out(), 0.3, 1e-12);
}

TEST(Amplifier, BandwidthLimitsStepResponse) {
  double in = 0.0;
  Amplifier amp(&in, 0.0, 10.0, 100e6);  // 100 MHz pole
  in = 1.0;
  const double dt = 0.1e-9;
  double t = 0.0;
  for (int i = 0; i < 16; ++i) {
    amp.step(t, dt);
    t += dt;
  }
  const double tau = 1.0 / (2 * units::pi * 100e6);
  EXPECT_NEAR(*amp.out(), 1.0 - std::exp(-t / tau), 0.02);
}

TEST(Squarer, SquaresInput) {
  double in = -0.3;
  Squarer sq(&in, 2.0);
  sq.step(0, 1e-9);
  EXPECT_NEAR(*sq.out(), 2.0 * 0.09, 1e-12);
  EXPECT_GE(*sq.out(), 0.0);
}

TEST(Adc, QuantizationAndSaturation) {
  const Adc adc(5, 0.0, 0.5);
  EXPECT_EQ(adc.max_code(), 31);
  EXPECT_EQ(adc.quantize(-1.0), 0);
  EXPECT_EQ(adc.quantize(0.0), 0);
  EXPECT_EQ(adc.quantize(0.5), 31);
  EXPECT_EQ(adc.quantize(99.0), 31);
  EXPECT_NEAR(adc.code_to_voltage(adc.quantize(0.25)), 0.25, adc.lsb());
  EXPECT_THROW(Adc(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(Adc(5, 1, 0), std::invalid_argument);
}

// Property: quantization is monotone and within half an LSB over a sweep of
// resolutions.
class AdcResolution : public ::testing::TestWithParam<int> {};

TEST_P(AdcResolution, MonotoneAndTight) {
  const Adc adc(GetParam(), 0.0, 1.6);
  int prev = -1;
  for (double v = 0.0; v <= 1.6; v += 0.01) {
    const int code = adc.quantize(v);
    EXPECT_GE(code, prev);
    prev = code;
    EXPECT_NEAR(adc.code_to_voltage(code), v, 0.5 * adc.lsb() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcResolution, ::testing::Values(3, 4, 5, 6, 8, 10));

TEST(Dac, CodesAndNearest) {
  const Dac dac(6, 0.0, 40.0);
  EXPECT_EQ(dac.max_code(), 63);
  EXPECT_NEAR(dac.value(0), 0.0, 1e-12);
  EXPECT_NEAR(dac.value(63), 40.0, 1e-12);
  EXPECT_EQ(dac.nearest_code(dac.value(17)), 17);
  EXPECT_EQ(dac.nearest_code(-5.0), 0);
  EXPECT_EQ(dac.nearest_code(99.0), 63);
}

TEST(Demodulator, DecisionAndCounting) {
  PpmDemodulator d;
  EXPECT_FALSE(d.decide(10, 3));  // slot 0 stronger -> bit 0
  EXPECT_TRUE(d.decide(3, 10));   // slot 1 stronger -> bit 1
  d.record(true, true);
  d.record(true, false);
  EXPECT_EQ(d.ber().bits(), 2u);
  EXPECT_EQ(d.ber().errors(), 1u);
}

TEST(Demodulator, TieBreakIsBalanced) {
  PpmDemodulator d;
  int ones = 0;
  for (int i = 0; i < 2000; ++i)
    if (d.decide(5, 5)) ++ones;
  EXPECT_GT(ones, 700);
  EXPECT_LT(ones, 1300);
}

TEST(NoiseEstimatorAndSense, DetectsAlternatingPreamble) {
  NoiseEstimator ne(8);
  for (int i = 0; i < 8; ++i) ne.add(i % 2);  // codes 0/1 noise
  ASSERT_TRUE(ne.done());
  PreambleSense ps(ne, 4.0, 2);
  // Preamble energy arrives in alternating windows (slot 0 only).
  EXPECT_FALSE(ps.add(9));
  EXPECT_FALSE(ps.add(0));
  EXPECT_TRUE(ps.add(9));  // 2 hits within the last 4 windows
  EXPECT_TRUE(ps.detected());
}

TEST(NoiseEstimatorAndSense, IgnoresIsolatedSpike) {
  NoiseEstimator ne(8);
  for (int i = 0; i < 8; ++i) ne.add(0);
  PreambleSense ps(ne, 4.0, 2);
  EXPECT_FALSE(ps.add(9));  // one spike
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(ps.add(0));
  EXPECT_FALSE(ps.detected());
}

TEST(Agc, ConvergesTowardTarget) {
  double in = 0.01;
  Amplifier vga(&in, 20.0, 10.0);
  AgcConfig cfg;
  cfg.target_code = 24;
  cfg.adc_max_code = 31;
  AgcController agc(vga, cfg);
  // Simulated plant: peak code proportional to gain^2 (energy domain).
  auto code_for_gain = [](double gain_db) {
    return static_cast<int>(
        std::min(31.0, 24.0 * units::db_to_pow(gain_db - 26.0)));
  };
  for (int i = 0; i < 8; ++i) agc.update(code_for_gain(agc.gain_db()));
  EXPECT_NEAR(agc.gain_db(), 26.0, 1.5);  // lands near the solving gain
}

TEST(Agc, BacksOffWhenSaturated) {
  double in = 0.01;
  Amplifier vga(&in, 40.0, 10.0);
  AgcConfig cfg;
  AgcController agc(vga, cfg);
  const double g0 = agc.gain_db();
  agc.update(cfg.adc_max_code);  // saturated reading
  EXPECT_LT(agc.gain_db(), g0);
}

}  // namespace
