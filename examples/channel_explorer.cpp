// channel_explorer — the §4 design-constraint analysis.
//
// Generates N IEEE 802.15.4a CM1 realizations, reports their statistics,
// and extracts the integrator design constraints the paper derives "from
// the analysis of 100 UWB TG4a CM1 waveform realizations": required slew
// rate, worst-case squared-signal peak (input-range sizing), and the
// integration-window energy capture.
//
// The per-realization statistics use Rng::fork so each draw has its own
// deterministic sub-stream — the fan-out is reproducible at any job count.
#include <cstdint>

#include "base/random.hpp"
#include "base/stats.hpp"
#include "base/table.hpp"
#include "core/constraints.hpp"
#include "runner/runner.hpp"
#include "uwb/channel.hpp"

using namespace uwbams;

REGISTER_SCENARIO(channel_explorer, "example",
                  "CM1 channel statistics + §4 design constraints") {
  const int n_realizations = ctx.pick(30, 100, 400);

  // Raw channel statistics. Each realization draws from its own forked
  // sub-stream, so the aggregate is independent of evaluation order.
  struct Draw {
    double spread_ns, taps, peak;
  };
  base::Rng root(ctx.seed + 41);
  const auto draws = ctx.pool.map<Draw>(
      static_cast<std::size_t>(n_realizations), [&](std::size_t i) {
        base::Rng rng = root.fork(i);
        const auto cr = uwb::generate_cm1(rng);
        return Draw{cr.rms_delay_spread() * 1e9,
                    static_cast<double>(cr.taps.size()), cr.peak_gain()};
      });
  base::RunningStats spread, ntaps, peak;
  for (const auto& d : draws) {
    spread.add(d.spread_ns);
    ntaps.add(d.taps);
    peak.add(d.peak);
  }

  base::Table t1("CM1 statistics over " + std::to_string(n_realizations) +
                 " realizations (unit-energy CIRs)");
  t1.set_header({"Quantity", "mean", "min", "max"});
  t1.add_row({"RMS delay spread [ns]", base::Table::num(spread.mean(), 1),
              base::Table::num(spread.min(), 1),
              base::Table::num(spread.max(), 1)});
  t1.add_row({"kept taps", base::Table::num(ntaps.mean(), 1),
              base::Table::num(ntaps.min(), 0),
              base::Table::num(ntaps.max(), 0)});
  t1.add_row({"peak |gain|", base::Table::num(peak.mean(), 2),
              base::Table::num(peak.min(), 2),
              base::Table::num(peak.max(), 2)});
  ctx.sink.table(t1, "cm1_statistics");

  // Integrator design constraints at the Table-2 operating point.
  uwb::SystemConfig sys = ctx.spec().system();
  const auto c = core::extract_constraints(sys, n_realizations, ctx.seed + 41);
  base::Table t2("Integrator constraints from " +
                 std::to_string(n_realizations) +
                 " CM1 realizations (paper §4)");
  t2.set_header({"Constraint", "value"});
  t2.add_row({"squared-signal peak (p99)",
              base::Table::num(c.squared_peak_p99 * 1e3, 1) + " mV"});
  t2.add_row({"required output slew rate (p99)",
              base::Table::num(c.slew_rate_p99 * 1e-6, 2) + " V/us"});
  t2.add_row({"RMS delay spread (mean / p90)",
              base::Table::num(c.rms_delay_spread_mean * 1e9, 1) + " / " +
                  base::Table::num(c.rms_delay_spread_p90 * 1e9, 1) + " ns"});
  t2.add_row({"32 ns window energy capture",
              base::Table::num(100 * c.window_energy_capture_mean, 1) + " %"});
  ctx.sink.table(t2, "design_constraints");

  ctx.sink.metric("squared_peak_p99_v", c.squared_peak_p99);
  ctx.sink.metric("slew_rate_p99_v_per_s", c.slew_rate_p99);
  ctx.sink.metric("window_energy_capture_mean", c.window_energy_capture_mean);

  ctx.sink.note(
      "\nReading: the p99 squared-signal peak sizes the integrator's input\n"
      "linear range (the cell delivers ~100 mV); the spread statistics size\n"
      "the 32 ns integration window.");
  return 0;
}
