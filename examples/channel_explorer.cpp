// channel_explorer — the §4 design-constraint analysis.
//
// Generates N IEEE 802.15.4a CM1 realizations, reports their statistics,
// and extracts the integrator design constraints the paper derives "from
// the analysis of 100 UWB TG4a CM1 waveform realizations": required slew
// rate, worst-case squared-signal peak (input-range sizing), and the
// integration-window energy capture.
#include <cstdio>

#include "base/random.hpp"
#include "base/stats.hpp"
#include "base/table.hpp"
#include "core/constraints.hpp"
#include "uwb/channel.hpp"

using namespace uwbams;

int main() {
  std::printf("=== CM1 channel exploration + §4 design constraints ===\n\n");

  // Raw channel statistics over 100 draws.
  base::Rng rng(42);
  base::RunningStats spread, ntaps, peak;
  for (int i = 0; i < 100; ++i) {
    const auto cr = uwb::generate_cm1(rng);
    spread.add(cr.rms_delay_spread() * 1e9);
    ntaps.add(static_cast<double>(cr.taps.size()));
    peak.add(cr.peak_gain());
  }
  base::Table t1("CM1 statistics over 100 realizations (unit-energy CIRs)");
  t1.set_header({"Quantity", "mean", "min", "max"});
  t1.add_row({"RMS delay spread [ns]", base::Table::num(spread.mean(), 1),
              base::Table::num(spread.min(), 1),
              base::Table::num(spread.max(), 1)});
  t1.add_row({"kept taps", base::Table::num(ntaps.mean(), 1),
              base::Table::num(ntaps.min(), 0),
              base::Table::num(ntaps.max(), 0)});
  t1.add_row({"peak |gain|", base::Table::num(peak.mean(), 2),
              base::Table::num(peak.min(), 2),
              base::Table::num(peak.max(), 2)});
  t1.print();

  // Integrator design constraints at the Table-2 operating point.
  uwb::SystemConfig sys;
  const auto c = core::extract_constraints(sys, 100, 42);
  base::Table t2("Integrator constraints from 100 CM1 realizations (paper §4)");
  t2.set_header({"Constraint", "value"});
  t2.add_row({"squared-signal peak (p99)",
              base::Table::num(c.squared_peak_p99 * 1e3, 1) + " mV"});
  t2.add_row({"required output slew rate (p99)",
              base::Table::num(c.slew_rate_p99 * 1e-6, 2) + " V/us"});
  t2.add_row({"RMS delay spread (mean / p90)",
              base::Table::num(c.rms_delay_spread_mean * 1e9, 1) + " / " +
                  base::Table::num(c.rms_delay_spread_p90 * 1e9, 1) + " ns"});
  t2.add_row({"32 ns window energy capture",
              base::Table::num(100 * c.window_energy_capture_mean, 1) + " %"});
  t2.print();

  std::printf(
      "\nReading: the p99 squared-signal peak sizes the integrator's input\n"
      "linear range (the cell delivers ~100 mV); the spread statistics size\n"
      "the 32 ns integration window.\n");
  return 0;
}
