// spice_playground — the transistor-level simulator standalone.
//
// Loads the shipped Integrate & Dump netlist through the SPICE-dialect
// parser, solves its operating point, runs an AC sweep and a short
// transient — the ELDO-role substrate without any of the system layers.
#include <cstdio>

#include "base/table.hpp"
#include "spice/ac.hpp"
#include "spice/itd_builder.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

using namespace uwbams;

int main() {
  std::printf("=== SPICE playground: the I&D netlist standalone ===\n\n");

  spice::Circuit ckt;
  spice::parse_netlist_file(spice::itd_netlist_path(), ckt);
  std::printf("loaded %s\n  devices: %zu (%zu MOSFETs), nodes: %zu\n\n",
              spice::itd_netlist_path().c_str(), ckt.device_count(),
              ckt.count_devices_with_prefix("Xitd.M"), ckt.node_count());

  // Operating point.
  const auto op = spice::solve_op(ckt);
  std::printf("operating point: %s in %d iterations (strategy: %s)\n",
              op.converged ? "converged" : "FAILED", op.iterations,
              op.strategy.c_str());
  base::Table t("Key bias nodes");
  t.set_header({"node", "V"});
  for (const char* n : {"Xitd.Vbias1", "Xitd.Vref", "Xitd.Outp", "Xitd.Outm",
                        "Xitd.Vcmfb"}) {
    t.add_row({n, base::Table::num(ckt.voltage_in(op.x, ckt.find_node(n)), 4)});
  }
  t.print();

  // AC sweep (the probe sources in the netlist carry the AC stimulus).
  const auto freqs = spice::log_frequency_grid(1e4, 10e9, 3);
  const auto sweep = spice::run_ac(ckt, op.x, freqs,
                                   ckt.find_node("Out_intp"),
                                   ckt.find_node("Out_intm"));
  std::printf("\nAC response |H| (differential output / differential input):\n");
  for (std::size_t i = 0; i < sweep.points.size(); i += 3)
    std::printf("  f = %10.3e Hz   %7.2f dB\n", sweep.points[i].freq,
                sweep.mag_db(i));

  // Short transient: integrate a 30 mV differential step for 100 ns.
  spice::TransientOptions topts;
  topts.dt = 0.2e-9;
  spice::TransientSession sim(ckt, topts);
  sim.source("Vctrlm").set_override(1.8);  // dump first
  sim.run_until(30e-9);
  sim.source("Vctrlm").set_override(0.0);
  sim.source("Vinp").set_override(0.915);
  sim.source("Vinm").set_override(0.885);
  sim.run_until(130e-9);
  std::printf("\ntransient: 30 mV differential input integrated for 100 ns\n"
              "  v(Out_intm) - v(Out_intp) = %.4f V\n"
              "  (%llu steps, %.2f Newton iterations/step)\n",
              sim.v("Out_intm") - sim.v("Out_intp"),
              static_cast<unsigned long long>(sim.steps_taken()),
              static_cast<double>(sim.total_newton_iterations()) /
                  static_cast<double>(sim.steps_taken()));
  return 0;
}
