// spice_playground — the transistor-level simulator standalone.
//
// Loads the shipped Integrate & Dump netlist through the SPICE-dialect
// parser, solves its operating point, runs an AC sweep and a short
// transient — the ELDO-role substrate without any of the system layers.
#include "base/table.hpp"
#include "runner/runner.hpp"
#include "spice/ac.hpp"
#include "spice/itd_builder.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/op.hpp"
#include "spice/transient.hpp"

using namespace uwbams;

REGISTER_SCENARIO(spice_playground, "example",
                  "The shipped I&D netlist standalone: OP, AC, transient") {
  spice::Circuit ckt;
  spice::parse_netlist_file(spice::itd_netlist_path(), ckt);
  ctx.sink.notef("loaded %s\n  devices: %zu (%zu MOSFETs), nodes: %zu\n",
                 spice::itd_netlist_path().c_str(), ckt.device_count(),
                 ckt.count_devices_with_prefix("Xitd.M"), ckt.node_count());

  // Operating point.
  const auto op = spice::solve_op(ckt);
  ctx.sink.notef("operating point: %s in %d iterations (strategy: %s)",
                 op.converged ? "converged" : "FAILED", op.iterations,
                 op.strategy.c_str());
  base::Table t("Key bias nodes");
  t.set_header({"node", "V"});
  for (const char* n : {"Xitd.Vbias1", "Xitd.Vref", "Xitd.Outp", "Xitd.Outm",
                        "Xitd.Vcmfb"}) {
    t.add_row({n, base::Table::num(ckt.voltage_in(op.x, ckt.find_node(n)), 4)});
  }
  ctx.sink.table(t, "bias_nodes");
  ctx.sink.metric("op_converged", op.converged ? "yes" : "no");
  ctx.sink.metric("op_iterations", static_cast<std::uint64_t>(op.iterations));

  // AC sweep (the probe sources in the netlist carry the AC stimulus).
  const auto freqs = spice::log_frequency_grid(1e4, 10e9, 3);
  const auto sweep = spice::run_ac(ckt, op.x, freqs, ckt.find_node("Out_intp"),
                                   ckt.find_node("Out_intm"));
  base::Series series("AC response |H| (diff out / diff in)", "freq_hz");
  series.add_column("mag_db");
  for (std::size_t i = 0; i < sweep.points.size(); ++i)
    series.add_row(sweep.points[i].freq, {sweep.mag_db(i)});
  ctx.sink.note("\nAC response |H| (differential output / differential input):");
  ctx.sink.series(series, "ac_response", 4, /*print_rows=*/false);
  ctx.sink.plot(series, 64, 16);

  // Short transient: integrate a 30 mV differential step for 100 ns.
  spice::TransientOptions topts;
  topts.dt = 0.2e-9;
  spice::TransientSession sim(ckt, topts);
  sim.source("Vctrlm").set_override(1.8);  // dump first
  sim.run_until(30e-9);
  sim.source("Vctrlm").set_override(0.0);
  sim.source("Vinp").set_override(0.915);
  sim.source("Vinm").set_override(0.885);
  sim.run_until(130e-9);
  const double vout = sim.v("Out_intm") - sim.v("Out_intp");
  ctx.sink.notef(
      "\ntransient: 30 mV differential input integrated for 100 ns\n"
      "  v(Out_intm) - v(Out_intp) = %.4f V\n"
      "  (%llu steps, %.2f Newton iterations/step)",
      vout, static_cast<unsigned long long>(sim.steps_taken()),
      static_cast<double>(sim.total_newton_iterations()) /
          static_cast<double>(sim.steps_taken()));
  ctx.sink.metric("transient_vout_v", vout);
  return op.converged ? 0 : 1;
}
