// methodology_flow — the paper's four-phase top-down flow, end to end.
//
// Walks the Integrate & Dump block through the methodology:
//   Phase I/II: behavioral system model (ideal I&D), functional check;
//   Phase III:  substitute-and-play — the same testbench with the
//               31-transistor netlist co-simulated in the loop;
//   III -> IV:  characterize the netlist (AC fit, linear range);
//   Phase IV:   calibrated two-pole model back in the system, with the
//               CPU-cost / accuracy trade the paper's Table 1 quantifies.
#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "core/characterize.hpp"
#include "core/memo.hpp"
#include "core/experiment.hpp"
#include "runner/runner.hpp"

using namespace uwbams;

REGISTER_SCENARIO(methodology_flow, "example",
                  "The four-phase AMS top-down flow on the I&D block") {
  auto spec = ctx.spec().dt(0.1e-9).duration(ctx.pick(1.5e-6, 4e-6, 4e-6))
                  .ebn0(14.0);

  // ---- Phase I/II: behavioral system, functional check.
  ctx.sink.note("[Phase II]  behavioral system simulation (ideal I&D)...");
  const auto phase2 = core::run_system_simulation(
      spec.integrator(core::IntegratorKind::kIdeal).run_config());
  ctx.sink.notef("            %llu bits demodulated, %llu errors, %.2f s CPU\n",
                 static_cast<unsigned long long>(phase2.bits_demodulated),
                 static_cast<unsigned long long>(phase2.bit_errors),
                 phase2.cpu_seconds);

  // ---- Phase III: transistor netlist in the same testbench.
  ctx.sink.note(
      "[Phase III] substitute-and-play: 31-transistor netlist in the loop...");
  const auto phase3 = core::run_system_simulation(
      spec.integrator(core::IntegratorKind::kSpice).run_config());
  ctx.sink.notef(
      "            %llu bits, %llu errors, %.2f s CPU (%.1fx Phase II)\n",
      static_cast<unsigned long long>(phase3.bits_demodulated),
      static_cast<unsigned long long>(phase3.bit_errors), phase3.cpu_seconds,
      phase3.cpu_seconds / phase2.cpu_seconds);

  // ---- Phase III -> IV: characterize the detailed block.
  ctx.sink.note("[III->IV]   characterizing the netlist (AC fit + ranges)...");
  const auto ch = core::memo::characterize_itd_cached();
  ctx.sink.notef(
      "            DC gain %.2f dB, poles %.3f MHz / %.2f GHz,\n"
      "            input linear range %.0f mV, slew %.2f V/us\n",
      ch.ac.dc_gain_db, ch.ac.f_pole1 / 1e6, ch.ac.f_pole2 / 1e9,
      ch.input_linear_range * 1e3, ch.slew_rate * 1e-6);

  // ---- Phase IV: calibrated behavioral model back in the system.
  ctx.sink.note("[Phase IV]  calibrated two-pole model in the system...");
  auto cfg4 = spec.integrator(core::IntegratorKind::kBehavioral).run_config();
  cfg4.variant.behavioral = core::to_behavioral_params(ch, false);
  const auto phase4 = core::run_system_simulation(cfg4);
  ctx.sink.notef("            %llu bits, %llu errors, %.2f s CPU\n",
                 static_cast<unsigned long long>(phase4.bits_demodulated),
                 static_cast<unsigned long long>(phase4.bit_errors),
                 phase4.cpu_seconds);

  base::Table t("Flow summary (the Table-1 trade at example scale)");
  t.set_header({"Phase", "Model", "CPU [s]", "errors"});
  t.add_row({"II", "IDEAL", base::Table::num(phase2.cpu_seconds, 2),
             std::to_string(phase2.bit_errors)});
  t.add_row({"III", "ELDO netlist", base::Table::num(phase3.cpu_seconds, 2),
             std::to_string(phase3.bit_errors)});
  t.add_row({"IV", "calibrated VHDL-AMS", base::Table::num(phase4.cpu_seconds, 2),
             std::to_string(phase4.bit_errors)});
  ctx.sink.table(t, "flow_summary");
  ctx.sink.metric("cpu_s_phase2", phase2.cpu_seconds);
  ctx.sink.metric("cpu_s_phase3", phase3.cpu_seconds);
  ctx.sink.metric("cpu_s_phase4", phase4.cpu_seconds);

  ctx.sink.note(
      "\nThe Phase-IV model recovers circuit-level behaviour at behavioral\n"
      "cost — 'unavoidable, if one aims at capturing the real circuits\n"
      "behavior while keeping under control the time budget' (paper §5).");
  return 0;
}
