// methodology_flow — the paper's four-phase top-down flow, end to end.
//
// Walks the Integrate & Dump block through the methodology:
//   Phase I/II: behavioral system model (ideal I&D), functional check;
//   Phase III:  substitute-and-play — the same testbench with the
//               31-transistor netlist co-simulated in the loop;
//   III -> IV:  characterize the netlist (AC fit, linear range);
//   Phase IV:   calibrated two-pole model back in the system, with the
//               CPU-cost / accuracy trade the paper's Table 1 quantifies.
#include <chrono>
#include <cstdio>

#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "core/characterize.hpp"
#include "core/experiment.hpp"

using namespace uwbams;

int main() {
  std::printf("=== The AMS top-down methodology on the I&D block ===\n\n");

  // ---- Phase I/II: behavioral system, functional check.
  std::printf("[Phase II]  behavioral system simulation (ideal I&D)...\n");
  core::SystemRunConfig cfg;
  cfg.duration = 4e-6;
  cfg.sys.dt = 0.1e-9;
  cfg.ebn0_db = 14.0;
  cfg.kind = core::IntegratorKind::kIdeal;
  const auto phase2 = core::run_system_simulation(cfg);
  std::printf("            %llu bits demodulated, %llu errors, %.2f s CPU\n\n",
              static_cast<unsigned long long>(phase2.bits_demodulated),
              static_cast<unsigned long long>(phase2.bit_errors),
              phase2.cpu_seconds);

  // ---- Phase III: transistor netlist in the same testbench.
  std::printf("[Phase III] substitute-and-play: 31-transistor netlist in the"
              " loop...\n");
  cfg.kind = core::IntegratorKind::kSpice;
  const auto phase3 = core::run_system_simulation(cfg);
  std::printf("            %llu bits, %llu errors, %.2f s CPU (%.1fx Phase II)\n\n",
              static_cast<unsigned long long>(phase3.bits_demodulated),
              static_cast<unsigned long long>(phase3.bit_errors),
              phase3.cpu_seconds, phase3.cpu_seconds / phase2.cpu_seconds);

  // ---- Phase III -> IV: characterize the detailed block.
  std::printf("[III->IV]   characterizing the netlist (AC fit + ranges)...\n");
  const auto ch = core::characterize_itd();
  std::printf("            DC gain %.2f dB, poles %.3f MHz / %.2f GHz,\n"
              "            input linear range %.0f mV, slew %.2f V/us\n\n",
              ch.ac.dc_gain_db, ch.ac.f_pole1 / 1e6, ch.ac.f_pole2 / 1e9,
              ch.input_linear_range * 1e3, ch.slew_rate * 1e-6);

  // ---- Phase IV: calibrated behavioral model back in the system.
  std::printf("[Phase IV]  calibrated two-pole model in the system...\n");
  cfg.kind = core::IntegratorKind::kBehavioral;
  cfg.variant.behavioral = core::to_behavioral_params(ch, false);
  const auto phase4 = core::run_system_simulation(cfg);
  std::printf("            %llu bits, %llu errors, %.2f s CPU\n\n",
              static_cast<unsigned long long>(phase4.bits_demodulated),
              static_cast<unsigned long long>(phase4.bit_errors),
              phase4.cpu_seconds);

  base::Table t("Flow summary (the Table-1 trade at example scale)");
  t.set_header({"Phase", "Model", "CPU [s]", "errors"});
  t.add_row({"II", "IDEAL", base::Table::num(phase2.cpu_seconds, 2),
             std::to_string(phase2.bit_errors)});
  t.add_row({"III", "ELDO netlist", base::Table::num(phase3.cpu_seconds, 2),
             std::to_string(phase3.bit_errors)});
  t.add_row({"IV", "calibrated VHDL-AMS",
             base::Table::num(phase4.cpu_seconds, 2),
             std::to_string(phase4.bit_errors)});
  t.print();
  std::printf(
      "\nThe Phase-IV model recovers circuit-level behaviour at behavioral\n"
      "cost — 'unavoidable, if one aims at capturing the real circuits\n"
      "behavior while keeping under control the time budget' (paper §5).\n");
  return 0;
}
