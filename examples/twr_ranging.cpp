// twr_ranging — two-way ranging between two transceivers.
//
// Runs complete TWR exchanges (request / acquire / timed reply / acquire)
// over the 802.15.4a CM1 channel at several distances and prints the
// estimated vs true distance — the locationing capability that motivates
// the paper's UWB SoC.
#include <cstdio>

#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "uwb/ranging.hpp"

using namespace uwbams;

int main() {
  std::printf("=== Two-way ranging across distances (ideal integrator) ===\n\n");

  base::Table t("TWR distance estimation, CM1 LOS channel");
  t.set_header({"true d [m]", "estimate [m]", "error [m]", "ToA bias A/B [ns]"});

  for (double d : {3.0, 6.0, 9.9, 15.0}) {
    uwb::TwrConfig cfg;
    cfg.sys.dt = 0.2e-9;
    cfg.sys.distance = d;
    cfg.iterations = 1;
    uwb::TwoWayRanging twr(
        cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                           cfg.sys));
    const auto it = twr.run_iteration(/*channel_seed=*/7, /*noise_seed=*/101);
    if (it.ok) {
      t.add_row({base::Table::num(d, 1),
                 base::Table::num(it.distance_estimate, 2),
                 base::Table::num(it.distance_estimate - d, 2),
                 base::Table::num(it.toa_bias_a * 1e9, 1) + " / " +
                     base::Table::num(it.toa_bias_b * 1e9, 1)});
    } else {
      t.add_row({base::Table::num(d, 1), "acquisition failed", "-", "-"});
    }
    std::printf("d = %.1f m done\n", d);
    std::fflush(stdout);
  }
  std::printf("\n%s\n", t.render().c_str());
  std::printf("Note: RTT folding limits unambiguous range to c*Ts/2 ~ 19 m\n"
              "at the default 128 ns symbol; the Counter block supplies the\n"
              "whole-symbol part in a real link.\n");
  return 0;
}
