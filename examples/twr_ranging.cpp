// twr_ranging — two-way ranging between two transceivers.
//
// Runs complete TWR exchanges (request / acquire / timed reply / acquire)
// over the 802.15.4a CM1 channel at several distances and prints the
// estimated vs true distance — the locationing capability that motivates
// the paper's UWB SoC. One task per distance, fanned across the pool.
#include <vector>

#include "base/table.hpp"
#include "core/block_variant.hpp"
#include "runner/runner.hpp"
#include "uwb/ranging.hpp"

using namespace uwbams;

REGISTER_SCENARIO(twr_ranging, "example",
                  "TWR distance estimation across distances (ideal I&D)") {
  const std::vector<double> distances = {3.0, 6.0, 9.9, 15.0};

  const auto iterations = ctx.pool.map<uwb::TwrIteration>(
      distances.size(), [&](std::size_t i) {
        uwb::TwrConfig cfg;
        cfg.sys.dt = 0.2e-9;
        cfg.sys.distance = distances[i];
        cfg.iterations = 1;
        uwb::TwoWayRanging twr(
            cfg, core::make_integrator_factory(core::IntegratorKind::kIdeal,
                                               cfg.sys));
        // Repo seed idiom: additive offsets from the base seed. The default
        // (--seed=1) reproduces the curated channel draw (7/101) for which
        // acquisition succeeds at all four distances.
        return twr.run_iteration(ctx.seed + 6, ctx.seed + 100);
      });

  base::Table t("TWR distance estimation, CM1 LOS channel");
  t.set_header({"true d [m]", "estimate [m]", "error [m]", "ToA bias A/B [ns]"});
  int failures = 0;
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const auto& it = iterations[i];
    if (it.ok) {
      t.add_row({base::Table::num(distances[i], 1),
                 base::Table::num(it.distance_estimate, 2),
                 base::Table::num(it.distance_estimate - distances[i], 2),
                 base::Table::num(it.toa_bias_a * 1e9, 1) + " / " +
                     base::Table::num(it.toa_bias_b * 1e9, 1)});
    } else {
      t.add_row({base::Table::num(distances[i], 1), "acquisition failed", "-",
                 "-"});
      ++failures;
    }
  }
  ctx.sink.table(t, "distances");
  ctx.sink.metric("failures", static_cast<std::uint64_t>(failures));

  ctx.sink.note(
      "Note: RTT folding limits unambiguous range to c*Ts/2 ~ 19 m\n"
      "at the default 128 ns symbol; the Counter block supplies the\n"
      "whole-symbol part in a real link.");
  return 0;
}
