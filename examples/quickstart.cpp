// quickstart — a complete UWB link in ~60 lines.
//
// Builds transmitter -> AWGN channel -> energy-detection receiver with the
// ideal integrator, sends one 2-PPM packet and demodulates it. This is the
// smallest end-to-end use of the public API.
#include "base/units.hpp"
#include "core/block_variant.hpp"
#include "runner/runner.hpp"
#include "uwb/ber.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/receiver.hpp"
#include "uwb/transmitter.hpp"

using namespace uwbams;

REGISTER_SCENARIO(quickstart, "example",
                  "Smallest end-to-end link: one packet over AWGN") {
  // 1. System parameters: one struct is the single source of truth.
  uwb::SystemConfig sys = ctx.spec()
                              .dt(0.2e-9)     // 5 GS/s analog resolution
                              .distance(1.0)  // short AWGN link for the demo
                              .multipath(false)
                              .system();

  // 2. The AMS kernel and the analog chain, in dataflow order. Batched
  //    execution is opt-in and bit-identical: blocks advance in
  //    event-bounded batches instead of one virtual call per 0.2 ns sample.
  ams::Kernel kernel(sys.dt);
  kernel.enable_batching();
  uwb::Transmitter tx(sys);
  uwb::ChannelBlock channel(sys, nullptr);
  kernel.add_analog(tx);
  kernel.add_analog(channel);
  channel.set_input(tx.out());

  // Set the link level: 10 mV received pulses at Eb/N0 = 14 dB.
  const double rx_peak = 10e-3;
  channel.set_awgn_only(rx_peak / sys.pulse_amplitude);
  const uwb::GaussianMonocycle pulse(2, sys.pulse_sigma, rx_peak);
  const double eb = pulse.energy() * sys.pulses_per_symbol;
  channel.set_noise_psd(eb / units::db_to_pow(14.0));

  // 3. The receiver, with the integrator fidelity chosen by a factory —
  //    swap kIdeal for kSpice and the same testbench co-simulates the
  //    31-transistor netlist (substitute-and-play).
  const auto factory =
      core::make_integrator_factory(core::IntegratorKind::kIdeal, sys);
  uwb::Receiver rx(kernel, sys, channel.out(), factory);
  rx.set_vga_gain_db(14.0);

  // 4. Send a packet and demodulate with known (genie) timing. Additive
  // offset from the base seed: --seed=1 reproduces the original demo draw.
  base::Rng rng(ctx.seed + 2025);
  uwb::Packet packet;
  packet.preamble_symbols = 0;
  packet.payload = rng.bits(128);
  const double t_start = sys.symbol_period;
  tx.send(packet, t_start);
  rx.start_genie(kernel, t_start + sys.distance / units::speed_of_light,
                 packet.payload);

  kernel.run_until(t_start + packet.duration(sys.symbol_period) +
                   sys.symbol_period);

  // 5. Results.
  const double theory =
      uwb::energy_detection_ber_theory(14.0, uwb::receiver_tw_product(sys));
  ctx.sink.notef("quickstart: sent %zu bits, received %llu, bit errors %llu",
                 packet.payload.size(),
                 static_cast<unsigned long long>(rx.ber().bits()),
                 static_cast<unsigned long long>(rx.ber().errors()));
  ctx.sink.notef("BER = %.4f at Eb/N0 = 14 dB (theory ~ %.4f)", rx.ber().ber(),
                 theory);
  ctx.sink.metric("bits", rx.ber().bits());
  ctx.sink.metric("errors", rx.ber().errors());
  ctx.sink.metric("ber", rx.ber().ber());
  ctx.sink.metric("ber_theory", theory);
  return 0;
}
