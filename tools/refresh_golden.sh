#!/bin/sh
# Refreshes the pinned golden-stats baselines in tests/golden/.
#
# The baselines are produced by a bit_exact run at the fast scale with
# seed 1 — the same configuration tests/test_golden.cpp re-runs — so a
# refresh from an unchanged tree is byte-identical and `git diff` after an
# intentional refresh shows exactly which checks moved.
#
# Usage:  tools/refresh_golden.sh [build-dir]     (default: build)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
scenarios="fig6_ber yield_report ranging_network"

cmake --build "$build" --target uwbams_run
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

# shellcheck disable=SC2086  # scenario list is intentionally word-split
"$build/uwbams_run" $scenarios --scale=fast --seed=1 --tier=bit_exact \
    --jobs=1 --out="$out"

for s in $scenarios; do
  cp "$out/$s/golden_stats.json" "$repo/tests/golden/$s.golden_stats.json"
  echo "refreshed tests/golden/$s.golden_stats.json"
done
echo "done — review 'git diff tests/golden/' and commit the refresh"
