#!/bin/sh
# Prints the completion status of a checkpoint directory written by
# `uwbams_run --checkpoint=DIR` (one subdirectory per scenario; see
# docs/robustness.md for the journal layout).
#
# For each checkpoint found: the manifest identity (schema, run tag,
# content key, task count), how many shards completed, and which task
# indices are still missing — including torn `.tmp` shards a killed run
# left behind (those are recomputed on resume).
#
# Usage:  tools/inspect_checkpoint.sh DIR
#         where DIR is the --checkpoint root or a single scenario's
#         checkpoint directory (contains manifest.json).
set -eu

if [ "$#" -ne 1 ]; then
  echo "usage: $0 CHECKPOINT_DIR" >&2
  exit 2
fi
root=$1
[ -d "$root" ] || { echo "$0: no such directory: $root" >&2; exit 2; }

# Pulls the value of a string/number field out of the one-object manifest.
manifest_field() {
  sed -n "s/^[[:space:]]*\"$2\":[[:space:]]*\"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" \
    "$1" | head -n 1
}

inspect_one() {
  dir=$1
  manifest="$dir/manifest.json"
  schema=$(manifest_field "$manifest" schema)
  run=$(manifest_field "$manifest" run)
  key=$(manifest_field "$manifest" content_key)
  total=$(manifest_field "$manifest" total_tasks)
  case $total in
    *.*) total=${total%%.*} ;;  # JSON numbers may render as "8.0"
  esac
  echo "$dir"
  echo "  schema:      ${schema:-<missing>}"
  echo "  run:         ${run:-<missing>}"
  echo "  content_key: ${key:-<missing>}"

  done_count=0
  torn_count=0
  missing=""
  i=0
  while [ "$i" -lt "${total:-0}" ]; do
    shard=$(printf 'shard_%06d.json' "$i")
    if [ -f "$dir/$shard" ]; then
      done_count=$((done_count + 1))
    else
      [ -f "$dir/$shard.tmp" ] && torn_count=$((torn_count + 1))
      missing="$missing $i"
    fi
    i=$((i + 1))
  done
  echo "  shards:      $done_count/${total:-?} completed" \
       "($torn_count torn .tmp left by a kill)"
  if [ -n "$missing" ]; then
    echo "  to compute: $missing"
  else
    echo "  to compute:  none — resume loads every task"
  fi
}

found=0
if [ -f "$root/manifest.json" ]; then
  inspect_one "$root"
  found=1
else
  for dir in "$root"/*/; do
    [ -f "$dir/manifest.json" ] || continue
    inspect_one "${dir%/}"
    found=1
  done
fi
if [ "$found" -eq 0 ]; then
  echo "$0: no manifest.json under $root — not a checkpoint directory" >&2
  exit 1
fi
