/// @file service.hpp
/// @brief Socket-independent request handler of `uwbams_serve`.
///
/// ScenarioService::handle_line is the whole server semantics — the socket
/// layer (server.hpp) only frames lines. Per run request:
///
///   1. strict-parse (protocol.hpp) and validate against ScenarioRegistry;
///   2. look up the content key in the ResultCache — a hit is answered
///      with the cached payload verbatim (byte-identical to the cold run);
///   3. coalesce: a second request for a key already being computed waits
///      for the in-flight computation instead of starting a twin;
///   4. compute: run the scenario body in-process on the shared
///      ParallelRunner with a quiet, capturing ResultSink, exactly the
///      RunContext shape the batch CLI builds — then cache the payload
///      (successful runs only) and respond.
///
/// Scenario bodies fan their sweeps across the shared pool themselves, so
/// computation is serialized under one execution mutex (two concurrent
/// bodies would just contend for the same cores); *requests* stay
/// concurrent — cache hits and coalesced waits never block behind a
/// running computation.
///
/// Responses embed the cached payload bytes verbatim inside the transport
/// envelope, so a client (or test) can extract `result` and byte-compare
/// warm vs cold directly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "base/parallel.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace uwbams::serve {

class ScenarioService {
 public:
  struct Stats {
    std::uint64_t requests = 0;      ///< lines handled (any op)
    std::uint64_t errors = 0;        ///< structured error responses
    std::uint64_t computations = 0;  ///< scenario bodies actually run
    std::uint64_t cache_hits = 0;    ///< run requests served from cache
    std::uint64_t coalesced = 0;     ///< run requests joined in-flight
  };

  /// `verbose` = let scenario narration through to stdout (debugging).
  ScenarioService(ResultCache& cache, base::ParallelRunner& pool,
                  bool verbose = false);

  /// Handles one request line (without trailing newline) and returns one
  /// response line (without trailing newline). Never throws: every
  /// failure — parse error, unknown scenario, scenario exception — is a
  /// structured error response.
  std::string handle_line(const std::string& line);

  /// True once a shutdown request was handled (or request_shutdown()
  /// called); the server loop drains and exits.
  bool shutdown_requested() const;
  /// Out-of-band shutdown trigger (signal handlers via a watcher thread).
  void request_shutdown();
  /// Blocks until shutdown is requested or `timeout_ms` elapsed; returns
  /// shutdown_requested(). Poll-friendly for signal-flag watchers.
  bool wait_shutdown_for(int timeout_ms);

  Stats stats() const;

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    std::string payload;  // valid when ok
    std::string error;    // valid when !ok
  };

  std::string handle_run(const Request& req);
  /// Runs the scenario and returns the canonical payload (compact JSON).
  /// @throws std::runtime_error on a non-zero scenario status or a
  /// scenario exception.
  std::string compute(const Request& req, std::uint64_t key);
  std::string respond(const char* cache_state, const std::string& payload,
                      double wall_seconds) const;

  ResultCache& cache_;
  base::ParallelRunner& pool_;
  bool verbose_;

  std::mutex exec_mu_;  ///< serializes scenario bodies (see file comment)

  std::mutex inflight_mu_;
  std::map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;

  mutable std::mutex state_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;
  Stats stats_;
};

}  // namespace uwbams::serve
