#include "serve/protocol.hpp"

#include <cmath>
#include <set>

#include "base/checkpoint.hpp"
#include "core/canonical.hpp"

namespace uwbams::serve {

namespace {

using base::JsonObject;
using base::JsonValue;

std::uint64_t parse_seed(const JsonValue& v) {
  if (v.kind() == JsonValue::Kind::kString) {
    const std::string& s = v.as_string();
    if (s.size() < 3 || s[0] != '0' || s[1] != 'x')
      throw ProtocolError("seed: expected a 0x-prefixed hex string");
    std::size_t pos = 0;
    unsigned long long out = 0;
    try {
      out = std::stoull(s.substr(2), &pos, 16);
    } catch (const std::exception&) {
      throw ProtocolError("seed: bad hex string '" + s + "'");
    }
    if (pos != s.size() - 2)
      throw ProtocolError("seed: bad hex string '" + s + "'");
    return out;
  }
  const double d = v.as_number();
  // 2^53 itself is excluded: any integer >= 2^53 may already have been
  // rounded to it by the double-typed JSON number path.
  if (std::nearbyint(d) != d || d < 0 || d >= 9007199254740992.0)
    throw ProtocolError(
        "seed: expected an exact non-negative integer below 2^53 (use a "
        "\"0x...\" string for larger seeds)");
  return static_cast<std::uint64_t>(d);
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kRun: return "run";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

Request Request::parse(const std::string& line) {
  if (line.size() > kMaxRequestBytes)
    throw ProtocolError("request exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes");
  JsonValue doc;
  try {
    doc = base::parse_json(line);
  } catch (const base::JsonError& e) {
    throw ProtocolError(std::string("malformed request: ") + e.what());
  }
  const JsonObject* obj;
  try {
    obj = &doc.as_object();
  } catch (const base::JsonError&) {
    throw ProtocolError("request must be a JSON object");
  }

  std::set<std::string> seen;
  const auto field = [&](const char* name) -> const JsonValue* {
    const auto it = obj->find(name);
    if (it == obj->end()) return nullptr;
    seen.insert(name);
    return &it->second;
  };

  try {
    const JsonValue* schema = field("schema");
    if (schema == nullptr) throw ProtocolError("missing key 'schema'");
    if (schema->as_string() != kProtocolSchema)
      throw ProtocolError("unsupported schema '" + schema->as_string() +
                          "' (this server speaks " + kProtocolSchema + ")");

    Request req;
    if (const JsonValue* op = field("op")) {
      const std::string& s = op->as_string();
      if (s == "run") req.op = Op::kRun;
      else if (s == "ping") req.op = Op::kPing;
      else if (s == "stats") req.op = Op::kStats;
      else if (s == "shutdown") req.op = Op::kShutdown;
      else throw ProtocolError("unknown op '" + s + "'");
    }
    if (const JsonValue* scenario = field("scenario"))
      req.scenario = scenario->as_string();
    if (const JsonValue* scale = field("scale")) {
      if (!runner::parse_scale(scale->as_string(), &req.scale))
        throw ProtocolError("unknown scale '" + scale->as_string() + "'");
    }
    if (const JsonValue* tier = field("tier")) {
      if (!core::parse_exactness_tier(tier->as_string(), &req.tier))
        throw ProtocolError("unknown tier '" + tier->as_string() + "'");
    }
    if (const JsonValue* seed = field("seed")) req.seed = parse_seed(*seed);

    for (const auto& [key, value] : *obj)
      if (seen.count(key) == 0)
        throw ProtocolError("unknown key '" + key + "'");

    if (req.op == Op::kRun && req.scenario.empty())
      throw ProtocolError("op 'run' needs a 'scenario'");
    return req;
  } catch (const base::JsonError& e) {
    // Typed-accessor kind mismatches (e.g. a boolean scale) surface here.
    throw ProtocolError(std::string("bad request: ") + e.what());
  }
}

std::string Request::to_line() const {
  JsonObject obj;
  obj["schema"] = JsonValue(std::string(kProtocolSchema));
  obj["op"] = JsonValue(std::string(to_string(op)));
  if (!scenario.empty()) obj["scenario"] = JsonValue(scenario);
  obj["scale"] = JsonValue(std::string(runner::to_string(scale)));
  obj["tier"] = JsonValue(std::string(core::to_string(tier)));
  obj["seed"] = JsonValue(base::hex_u64(seed));
  return JsonValue(std::move(obj)).dump(0);
}

std::uint64_t Request::content_key() const {
  JsonObject obj;
  obj["code_version"] = JsonValue(std::string(core::canonical::kCodeVersion));
  obj["kind"] = JsonValue(std::string("uwbams-serve-run/1"));
  obj["scenario"] = JsonValue(scenario);
  obj["scale"] = JsonValue(std::string(runner::to_string(scale)));
  obj["seed"] = JsonValue(base::hex_u64(seed));
  obj["tier"] = JsonValue(std::string(core::to_string(tier)));
  return core::canonical::key_of(JsonValue(std::move(obj)));
}

std::string error_line(const std::string& message) {
  JsonObject obj;
  obj["schema"] = JsonValue(std::string(kProtocolSchema));
  obj["status"] = JsonValue(std::string("error"));
  obj["error"] = JsonValue(message);
  return JsonValue(std::move(obj)).dump(0);
}

}  // namespace uwbams::serve
