/// @file protocol.hpp
/// @brief The newline-delimited JSON request protocol of `uwbams_serve`.
///
/// One request = one JSON object on one line; one response = one JSON
/// object on one line. Schema "uwbams-serve-v1". Request fields:
///
///   {"schema": "uwbams-serve-v1", "op": "run", "scenario": "fig6_ber",
///    "scale": "fast", "tier": "bit_exact", "seed": "0x0000000000000001"}
///
///   * `schema`   required; a version mismatch is a structured error, the
///                client and server must agree on the contract;
///   * `op`       "run" (default) | "ping" | "stats" | "shutdown";
///   * `scenario` required for "run": a ScenarioRegistry name;
///   * `scale`    optional, "fast"|"default"|"full" (default "default");
///   * `tier`     optional, "bit_exact"|"stat_equiv" (default bit_exact);
///   * `seed`     optional, a "0x..." string or an exact JSON integer
///                below 2^53 (default 1).
///
/// Unknown keys are rejected — a typo'd knob must not silently run the
/// default configuration under the caller's cache key. Parsing is strict
/// and total: any malformed, truncated, oversized or mis-versioned line
/// yields ProtocolError (the server answers a structured error response
/// and never partially executes).
///
/// The run content key hashes {code_version, kind, scenario, scale, seed,
/// tier} canonically — notably *not* the server's --jobs (scenario sweeps
/// are bit-identical across job counts; that is the repo's oldest CI
/// gate), so one warm cache serves any pool size.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "base/json.hpp"
#include "core/equiv.hpp"
#include "runner/scenario.hpp"

namespace uwbams::serve {

inline constexpr const char* kProtocolSchema = "uwbams-serve-v1";
inline constexpr const char* kResultSchema = "uwbams-serve-result-v1";
/// Upper bound on one request line (1 MiB): a run request is a few hundred
/// bytes; anything larger is hostile or corrupt and is refused before
/// parsing.
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

/// Thrown by Request::parse on any invalid request line.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class Op { kRun, kPing, kStats, kShutdown };

const char* to_string(Op op);

struct Request {
  Op op = Op::kRun;
  std::string scenario;
  runner::Scale scale = runner::Scale::kDefault;
  core::ExactnessTier tier = core::ExactnessTier::kBitExact;
  std::uint64_t seed = 1;

  /// Strict parse of one request line. @throws ProtocolError.
  static Request parse(const std::string& line);

  /// Canonical request line (compact). Field order / whitespace of the
  /// *wire* form never matters: the content key hashes the canonical
  /// re-rendering, so any equivalent line maps to the same cache entry.
  std::string to_line() const;

  /// FNV-1a content key of a run request (includes
  /// core::canonical::kCodeVersion; excludes server --jobs).
  std::uint64_t content_key() const;
};

/// One-line structured error response: {"error": msg, "schema": ...,
/// "status": "error"}.
std::string error_line(const std::string& message);

}  // namespace uwbams::serve
