#include "serve/service.hpp"

#include <chrono>
#include <exception>

#include "base/checkpoint.hpp"
#include "base/json.hpp"
#include "core/canonical.hpp"
#include "core/equiv.hpp"
#include "runner/registry.hpp"
#include "runner/sink.hpp"

namespace uwbams::serve {

namespace {

using base::JsonObject;
using base::JsonValue;

std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

ScenarioService::ScenarioService(ResultCache& cache,
                                 base::ParallelRunner& pool, bool verbose)
    : cache_(cache), pool_(pool), verbose_(verbose) {}

bool ScenarioService::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return shutdown_;
}

void ScenarioService::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_ = true;
  }
  shutdown_cv_.notify_all();
}

bool ScenarioService::wait_shutdown_for(int timeout_ms) {
  std::unique_lock<std::mutex> lock(state_mu_);
  shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] { return shutdown_; });
  return shutdown_;
}

ScenarioService::Stats ScenarioService::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

std::string ScenarioService::handle_line(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.requests;
  }
  Request req;
  try {
    req = Request::parse(line);
  } catch (const ProtocolError& e) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.errors;
    return error_line(e.what());
  }

  switch (req.op) {
    case Op::kPing: {
      JsonObject obj;
      obj["schema"] = JsonValue(std::string(kProtocolSchema));
      obj["status"] = JsonValue(std::string("ok"));
      obj["op"] = JsonValue(std::string("ping"));
      return JsonValue(std::move(obj)).dump(0);
    }
    case Op::kStats: {
      const Stats s = stats();
      const ResultCache::Stats cs = cache_.stats();
      JsonObject stats_obj;
      stats_obj["requests"] = JsonValue(static_cast<double>(s.requests));
      stats_obj["errors"] = JsonValue(static_cast<double>(s.errors));
      stats_obj["computations"] =
          JsonValue(static_cast<double>(s.computations));
      stats_obj["cache_hits"] = JsonValue(static_cast<double>(s.cache_hits));
      stats_obj["coalesced"] = JsonValue(static_cast<double>(s.coalesced));
      stats_obj["cache_mem_hits"] = JsonValue(static_cast<double>(cs.mem_hits));
      stats_obj["cache_disk_hits"] =
          JsonValue(static_cast<double>(cs.disk_hits));
      stats_obj["cache_misses"] = JsonValue(static_cast<double>(cs.misses));
      stats_obj["cache_puts"] = JsonValue(static_cast<double>(cs.puts));
      stats_obj["cache_evictions"] =
          JsonValue(static_cast<double>(cs.evictions));
      JsonObject obj;
      obj["schema"] = JsonValue(std::string(kProtocolSchema));
      obj["status"] = JsonValue(std::string("ok"));
      obj["op"] = JsonValue(std::string("stats"));
      obj["stats"] = JsonValue(std::move(stats_obj));
      return JsonValue(std::move(obj)).dump(0);
    }
    case Op::kShutdown: {
      request_shutdown();
      JsonObject obj;
      obj["schema"] = JsonValue(std::string(kProtocolSchema));
      obj["status"] = JsonValue(std::string("ok"));
      obj["op"] = JsonValue(std::string("shutdown"));
      return JsonValue(std::move(obj)).dump(0);
    }
    case Op::kRun: return handle_run(req);
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  ++stats_.errors;
  return error_line("unhandled op");
}

std::string ScenarioService::handle_run(const Request& req) {
  if (runner::ScenarioRegistry::instance().find(req.scenario) == nullptr) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.errors;
    return error_line("unknown scenario '" + req.scenario + "'");
  }
  const std::uint64_t key = req.content_key();
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::string payload;
  if (cache_.get(key, &payload)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.cache_hits;
    return respond("hit", payload, elapsed());
  }

  // Coalesce duplicate in-flight requests: exactly one producer per key;
  // everyone else waits for its outcome instead of computing a twin.
  std::shared_ptr<Inflight> fl;
  bool producer = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto& slot = inflight_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Inflight>();
      producer = true;
    }
    fl = slot;
  }

  if (!producer) {
    std::unique_lock<std::mutex> lock(fl->mu);
    fl->cv.wait(lock, [&] { return fl->done; });
    std::lock_guard<std::mutex> state_lock(state_mu_);
    if (!fl->ok) {
      ++stats_.errors;
      return error_line(fl->error);
    }
    ++stats_.coalesced;
    return respond("coalesced", fl->payload, elapsed());
  }

  bool ok = false;
  std::string error;
  try {
    payload = compute(req, key);
    cache_.put(key, payload);
    ok = true;
  } catch (const std::exception& e) {
    error = "scenario '" + req.scenario + "' failed: " + e.what();
  }
  {
    std::lock_guard<std::mutex> lock(fl->mu);
    fl->done = true;
    fl->ok = ok;
    fl->payload = payload;
    fl->error = error;
  }
  fl->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!ok) {
    ++stats_.errors;
    return error_line(error);
  }
  return respond("miss", payload, elapsed());
}

std::string ScenarioService::compute(const Request& req, std::uint64_t key) {
  std::lock_guard<std::mutex> exec_lock(exec_mu_);
  const runner::Scenario* s =
      runner::ScenarioRegistry::instance().find(req.scenario);
  if (s == nullptr)
    throw std::runtime_error("scenario vanished from the registry");
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.computations;
  }
  runner::ResultSink sink(req.scenario, "");
  sink.set_quiet(!verbose_);
  sink.enable_capture();
  runner::RunContext ctx{req.scenario, req.scale, pool_.jobs(),
                         req.seed,     sink,      pool_,
                         req.tier};
  const int status = s->fn(ctx);
  if (status != 0)
    throw std::runtime_error("non-zero status " + std::to_string(status));

  JsonObject artifacts;
  for (const auto& [name, content] : sink.captured())
    artifacts[name] = JsonValue(content);
  JsonObject p;
  p["schema"] = JsonValue(std::string(kResultSchema));
  p["code_version"] = JsonValue(std::string(core::canonical::kCodeVersion));
  p["key"] = JsonValue(base::hex_u64(key));
  p["scenario"] = JsonValue(req.scenario);
  p["scale"] = JsonValue(std::string(runner::to_string(req.scale)));
  p["tier"] = JsonValue(std::string(core::to_string(req.tier)));
  p["seed"] = JsonValue(base::hex_u64(req.seed));
  p["status"] = JsonValue(status);
  p["artifacts"] = JsonValue(std::move(artifacts));
  return JsonValue(std::move(p)).dump(0);
}

std::string ScenarioService::respond(const char* cache_state,
                                     const std::string& payload,
                                     double wall_seconds) const {
  // Hand-assembled so the cached payload bytes embed verbatim: a client
  // extracting `result` gets exactly what the cold run produced (and what
  // any later warm response will carry), enabling direct byte compares.
  std::string out = "{\"cache\":\"";
  out += cache_state;
  out += "\",\"result\":";
  out += payload;
  out += ",\"schema\":\"";
  out += kProtocolSchema;
  out += "\",\"status\":\"ok\",\"wall_seconds\":";
  out += g17(wall_seconds);
  out += "}";
  return out;
}

}  // namespace uwbams::serve
