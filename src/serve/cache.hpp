/// @file cache.hpp
/// @brief Content-addressed result cache: memory LRU in front of a disk
/// store.
///
/// Entries are keyed by the FNV-1a content key of a canonical document
/// (core/canonical.hpp): every result-affecting knob plus the code-version
/// constant, so a hit is *definitionally* the byte-identical result of the
/// same computation — the cache never needs to compare payloads, only
/// keys. Used by the `uwbams_serve` request handler (whole-scenario
/// results), the surrogate calibration (net::load_or_calibrate_surrogate)
/// and, in-memory only, the characterization memo (core/memo.hpp).
///
/// Disk layout (`dir` empty = memory-only):
///   entry_<0x%016llx>.json — the payload bytes, verbatim.
/// Writes go through tmp-file + rename (the CheckpointStore idiom), so a
/// kill mid-write never leaves a torn entry under the final name; a
/// corrupted or unreadable entry is treated as a miss and overwritten by
/// the next put. Payload validity is the caller's contract: layers that
/// must survive hostile on-disk edits (the surrogate loader) re-validate
/// the payload and fall back to recomputation on a parse failure.
///
/// The disk level is size-capped LRU: UWBAMS_CACHE_MAX_MB (or
/// set_disk_max_bytes) bounds the summed entry size; a put that pushes the
/// store past the cap deletes least-recently-used entries — oldest mtime
/// first, filename tie-break — until it fits, never touching the entry just
/// written. Disk reads refresh the entry's mtime, so a hot entry survives
/// churn. Default: unbounded (the historical behavior).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace uwbams::serve {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t mem_hits = 0;   ///< served from the memory LRU
    std::uint64_t disk_hits = 0;  ///< read back from the disk store
    std::uint64_t misses = 0;     ///< not present anywhere
    std::uint64_t puts = 0;       ///< entries stored
    std::uint64_t evictions = 0;  ///< memory entries displaced by LRU
    std::uint64_t disk_evictions = 0;  ///< disk entries removed by the cap
  };

  /// `dir` empty = memory-only. `mem_entries` bounds the LRU (>= 1). The
  /// disk cap initializes from UWBAMS_CACHE_MAX_MB when set (fractional
  /// megabytes accepted; <= 0 or unparsable means unbounded).
  explicit ResultCache(std::string dir = "", std::size_t mem_entries = 64);

  /// True (payload in *out) on a hit; promotes the entry to most-recent.
  /// A disk hit is pulled into the memory LRU.
  bool get(std::uint64_t key, std::string* out);
  /// Stores (overwriting) the payload under `key`, memory + disk.
  void put(std::uint64_t key, const std::string& payload);

  const std::string& dir() const { return dir_; }
  Stats stats() const;

  /// Overrides the disk size cap (bytes; 0 = unbounded). Takes effect on
  /// the next put — existing entries are not scanned eagerly.
  void set_disk_max_bytes(std::uintmax_t bytes);
  std::uintmax_t disk_max_bytes() const;

  /// entry_<0x%016llx>.json under `dir` ("" when memory-only).
  std::string entry_path(std::uint64_t key) const;

 private:
  void insert_mem_locked(std::uint64_t key, const std::string& payload);
  void evict_disk_locked(const std::string& spare_path);

  std::string dir_;
  std::size_t mem_entries_;
  std::uintmax_t disk_max_bytes_ = 0;  ///< 0 = unbounded
  // Most-recent-first (key, payload) list + key -> node index.
  std::list<std::pair<std::uint64_t, std::string>> lru_;
  std::map<std::uint64_t,
           std::list<std::pair<std::uint64_t, std::string>>::iterator>
      map_;
  Stats stats_;
  mutable std::mutex mu_;
};

}  // namespace uwbams::serve
