#include "serve/cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "base/checkpoint.hpp"

namespace uwbams::serve {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir, std::size_t mem_entries)
    : dir_(std::move(dir)), mem_entries_(mem_entries == 0 ? 1 : mem_entries) {
  if (!dir_.empty()) fs::create_directories(dir_);
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  if (dir_.empty()) return "";
  return (fs::path(dir_) / ("entry_" + base::hex_u64(key) + ".json")).string();
}

void ResultCache::insert_mem_locked(std::uint64_t key,
                                    const std::string& payload) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, payload);
  map_[key] = lru_.begin();
  while (lru_.size() > mem_entries_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool ResultCache::get(std::uint64_t key, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    *out = it->second->second;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.mem_hits;
    return true;
  }
  if (!dir_.empty()) {
    std::ifstream in(entry_path(key), std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      if (in.good() || in.eof()) {
        *out = ss.str();
        insert_mem_locked(key, *out);
        ++stats_.disk_hits;
        return true;
      }
    }
  }
  ++stats_.misses;
  return false;
}

void ResultCache::put(std::uint64_t key, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  insert_mem_locked(key, payload);
  ++stats_.puts;
  if (dir_.empty()) return;
  // tmp + rename: readers only ever see complete entries (rename within a
  // directory is atomic on POSIX), mirroring CheckpointStore::record.
  const fs::path final_path(entry_path(key));
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("ResultCache: cannot write " +
                               tmp_path.string());
    out << payload;
    if (!out)
      throw std::runtime_error("ResultCache: short write to " +
                               tmp_path.string());
  }
  fs::rename(tmp_path, final_path);
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uwbams::serve
