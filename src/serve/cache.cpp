#include "serve/cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "base/checkpoint.hpp"

namespace uwbams::serve {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir, std::size_t mem_entries)
    : dir_(std::move(dir)), mem_entries_(mem_entries == 0 ? 1 : mem_entries) {
  if (dir_.empty()) return;
  fs::create_directories(dir_);
  if (const char* mb = std::getenv("UWBAMS_CACHE_MAX_MB")) {
    char* end = nullptr;
    const double v = std::strtod(mb, &end);
    if (end != mb && v > 0.0)
      disk_max_bytes_ = static_cast<std::uintmax_t>(v * 1024.0 * 1024.0);
  }
}

void ResultCache::set_disk_max_bytes(std::uintmax_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  disk_max_bytes_ = bytes;
}

std::uintmax_t ResultCache::disk_max_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_max_bytes_;
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  if (dir_.empty()) return "";
  return (fs::path(dir_) / ("entry_" + base::hex_u64(key) + ".json")).string();
}

void ResultCache::insert_mem_locked(std::uint64_t key,
                                    const std::string& payload) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, payload);
  map_[key] = lru_.begin();
  while (lru_.size() > mem_entries_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool ResultCache::get(std::uint64_t key, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    *out = it->second->second;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.mem_hits;
    return true;
  }
  if (!dir_.empty()) {
    std::ifstream in(entry_path(key), std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      if (in.good() || in.eof()) {
        *out = ss.str();
        insert_mem_locked(key, *out);
        ++stats_.disk_hits;
        // Refresh the entry's recency so the size-capped eviction sees it
        // as hot (best-effort: a failed touch only ages it).
        std::error_code ec;
        fs::last_write_time(entry_path(key),
                            std::filesystem::file_time_type::clock::now(),
                            ec);
        return true;
      }
    }
  }
  ++stats_.misses;
  return false;
}

void ResultCache::put(std::uint64_t key, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  insert_mem_locked(key, payload);
  ++stats_.puts;
  if (dir_.empty()) return;
  // tmp + rename: readers only ever see complete entries (rename within a
  // directory is atomic on POSIX), mirroring CheckpointStore::record.
  const fs::path final_path(entry_path(key));
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("ResultCache: cannot write " +
                               tmp_path.string());
    out << payload;
    if (!out)
      throw std::runtime_error("ResultCache: short write to " +
                               tmp_path.string());
  }
  fs::rename(tmp_path, final_path);
  if (disk_max_bytes_ > 0) evict_disk_locked(final_path.string());
}

// Walks the store and deletes least-recently-used entries until the summed
// size fits under disk_max_bytes_. `spare_path` (the entry just written) is
// never deleted, so the cap degenerates gracefully: one oversized payload
// keeps exactly itself.
void ResultCache::evict_disk_locked(const std::string& spare_path) {
  struct DiskEntry {
    fs::file_time_type mtime;
    std::string path;
    std::uintmax_t size;
  };
  std::vector<DiskEntry> entries;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("entry_", 0) != 0 || de.path().extension() != ".json")
      continue;
    std::error_code fec;
    const std::uintmax_t size = de.file_size(fec);
    if (fec) continue;
    const fs::file_time_type mtime = de.last_write_time(fec);
    if (fec) continue;
    entries.push_back({mtime, de.path().string(), size});
    total += size;
  }
  if (ec || total <= disk_max_bytes_) return;
  // Oldest first; filename tie-break keeps the order total when a burst of
  // puts lands within the filesystem's mtime resolution.
  std::sort(entries.begin(), entries.end(),
            [](const DiskEntry& a, const DiskEntry& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  for (const DiskEntry& e : entries) {
    if (total <= disk_max_bytes_) break;
    if (e.path == spare_path) continue;
    std::error_code rec;
    if (fs::remove(e.path, rec) && !rec) {
      total -= e.size;
      ++stats_.disk_evictions;
    }
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uwbams::serve
