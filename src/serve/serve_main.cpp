// uwbams_serve — the long-lived scenario server (see docs/service.md).
#include "serve/serve_cli.hpp"

int main(int argc, char** argv) {
  return uwbams::serve::serve_main(argc, argv);
}
