#include "serve/serve_cli.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "base/json.hpp"
#include "base/parallel.hpp"
#include "core/equiv.hpp"
#include "runner/scenario.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace uwbams::serve {

namespace {

namespace fs = std::filesystem;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

bool take_value(const std::string& arg, const char* flag, std::string* out) {
  const std::size_t n = std::strlen(flag);
  if (arg.compare(0, n, flag) != 0 || arg.size() <= n || arg[n] != '=')
    return false;
  *out = arg.substr(n + 1);
  return true;
}

void serve_usage() {
  std::printf(
      "usage: uwbams_serve [--socket=PATH] [--cache=DIR] [--jobs=N]\n"
      "                    [--mem-entries=N] [--verbose]\n"
      "\n"
      "Long-lived scenario server: accepts newline-delimited JSON requests\n"
      "(schema uwbams-serve-v1) on a unix socket, shards scenario sweeps\n"
      "across a shared worker pool, and serves repeated requests\n"
      "byte-identically from a content-addressed result cache.\n"
      "\n"
      "  --socket=PATH       listen here (default /tmp/uwbams_serve.sock)\n"
      "  --cache=DIR         persist results on disk (also exported as\n"
      "                      UWBAMS_CACHE for intermediate memoization);\n"
      "                      omit for a memory-only cache\n"
      "  --jobs=N            worker pool size; 0 = hardware concurrency\n"
      "  --mem-entries=N     in-memory LRU capacity (default 64)\n"
      "  --verbose           let scenario narration through to stdout\n"
      "\n"
      "See docs/service.md for the protocol and the cache key contract.\n");
}

void client_usage() {
  std::printf(
      "usage: uwbams_run --connect=PATH scenario [scenario ...]\n"
      "                  [--scale=fast|default|full] [--seed=N]\n"
      "                  [--tier=bit_exact|stat_equiv] [--out=DIR]\n"
      "       uwbams_run --connect=PATH --ping | --stats | --shutdown\n"
      "\n"
      "Sends requests to a running uwbams_serve and, with --out, writes\n"
      "each response's artifacts plus a manifest.json (cache state, content\n"
      "key, server wall seconds) under DIR/<scenario>/.\n");
}

}  // namespace

int serve_main(int argc, const char* const* argv) {
  std::string socket_path = "/tmp/uwbams_serve.sock";
  std::string cache_dir;
  int jobs = 0;
  std::size_t mem_entries = 64;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--serve") continue;  // dispatch marker from uwbams_run
    if (arg == "--help" || arg == "-h") {
      serve_usage();
      return 0;
    }
    if (take_value(arg, "--socket", &socket_path)) continue;
    if (take_value(arg, "--cache", &cache_dir)) continue;
    if (take_value(arg, "--jobs", &value)) {
      jobs = std::atoi(value.c_str());
      continue;
    }
    if (take_value(arg, "--mem-entries", &value)) {
      const long n = std::atol(value.c_str());
      if (n <= 0) {
        std::fprintf(stderr, "uwbams_serve: --mem-entries must be > 0\n");
        return 2;
      }
      mem_entries = static_cast<std::size_t>(n);
      continue;
    }
    if (arg == "--verbose") {
      verbose = true;
      continue;
    }
    std::fprintf(stderr, "uwbams_serve: unknown argument '%s'\n",
                 arg.c_str());
    serve_usage();
    return 2;
  }

  if (!cache_dir.empty()) {
    // Scenario-internal memoization (surrogate calibration, characterize)
    // shares the same content-addressed store.
    ::setenv("UWBAMS_CACHE", cache_dir.c_str(), 1);
  }

  try {
    ResultCache cache(cache_dir, mem_entries);
    base::ParallelRunner pool(jobs);
    ScenarioService service(cache, pool, verbose);
    Server server(socket_path, service);
    server.start();

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::printf("uwbams_serve: listening on %s (jobs=%d, cache=%s)\n",
                socket_path.c_str(), pool.jobs(),
                cache_dir.empty() ? "<memory>" : cache_dir.c_str());
    std::fflush(stdout);

    // Signal handlers only set a flag (a condition variable is not
    // async-signal-safe); the main loop polls it alongside the in-band
    // shutdown request.
    while (!service.wait_shutdown_for(200)) {
      if (g_signal != 0) service.request_shutdown();
    }
    server.stop();

    const ScenarioService::Stats s = service.stats();
    std::printf(
        "uwbams_serve: shut down (requests=%llu errors=%llu "
        "computations=%llu cache_hits=%llu coalesced=%llu)\n",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.errors),
        static_cast<unsigned long long>(s.computations),
        static_cast<unsigned long long>(s.cache_hits),
        static_cast<unsigned long long>(s.coalesced));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "uwbams_serve: %s\n", e.what());
    return 1;
  }
}

namespace {

// Writes one run response's artifacts + manifest under out_dir/<scenario>/.
// Returns false (with a message) when the response is an error.
bool handle_run_response(const std::string& response,
                         const std::string& scenario,
                         const std::string& out_dir) {
  base::JsonValue doc = base::parse_json(response);
  const base::JsonObject& obj = doc.as_object();
  const auto status = obj.find("status");
  if (status == obj.end() || status->second.as_string() != "ok") {
    const auto err = obj.find("error");
    std::fprintf(stderr, "uwbams_run: request '%s' failed: %s\n",
                 scenario.c_str(),
                 err != obj.end() ? err->second.as_string().c_str()
                                  : "malformed response");
    return false;
  }
  const base::JsonObject& result = obj.at("result").as_object();
  const std::string cache_state = obj.at("cache").as_string();
  const double wall_seconds = obj.at("wall_seconds").as_number();
  std::printf("uwbams_run: %s done (cache=%s, wall=%.3fs)\n",
              scenario.c_str(), cache_state.c_str(), wall_seconds);

  if (out_dir.empty()) return true;
  const fs::path dir = fs::path(out_dir) / scenario;
  fs::create_directories(dir);
  const base::JsonObject& artifacts = result.at("artifacts").as_object();
  for (const auto& [name, content] : artifacts) {
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out << content.as_string();
    if (!out) {
      std::fprintf(stderr, "uwbams_run: cannot write %s\n",
                   (dir / name).string().c_str());
      return false;
    }
  }
  base::JsonObject manifest;
  manifest["cache"] = base::JsonValue(cache_state);
  manifest["key"] = result.at("key");
  manifest["scenario"] = base::JsonValue(scenario);
  manifest["schema"] =
      base::JsonValue(std::string("uwbams-serve-manifest-v1"));
  manifest["wall_seconds"] = base::JsonValue(wall_seconds);
  std::ofstream out(dir / "manifest.json",
                    std::ios::binary | std::ios::trunc);
  out << base::JsonValue(std::move(manifest)).dump(2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int client_main(int argc, const char* const* argv) {
  std::string socket_path;
  std::string out_dir;
  std::vector<std::string> scenarios;
  Request base_req;
  bool ping = false, stats = false, shutdown = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      client_usage();
      return 0;
    }
    if (take_value(arg, "--connect", &socket_path)) continue;
    if (take_value(arg, "--out", &out_dir)) continue;
    if (take_value(arg, "--scale", &value)) {
      if (!runner::parse_scale(value, &base_req.scale)) {
        std::fprintf(stderr, "uwbams_run: unknown scale '%s'\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    if (take_value(arg, "--tier", &value)) {
      if (!core::parse_exactness_tier(value, &base_req.tier)) {
        std::fprintf(stderr, "uwbams_run: unknown tier '%s'\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    if (take_value(arg, "--seed", &value)) {
      base_req.seed = std::strtoull(value.c_str(), nullptr, 0);
      continue;
    }
    if (arg == "--ping") {
      ping = true;
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    if (arg == "--shutdown") {
      shutdown = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "uwbams_run: unknown argument '%s'\n",
                   arg.c_str());
      client_usage();
      return 2;
    }
    scenarios.push_back(arg);
  }

  if (socket_path.empty()) {
    std::fprintf(stderr, "uwbams_run: --connect needs a socket path\n");
    return 2;
  }
  if (scenarios.empty() && !ping && !stats && !shutdown) {
    std::fprintf(stderr,
                 "uwbams_run: nothing to do (give a scenario, --ping, "
                 "--stats or --shutdown)\n");
    return 2;
  }

  try {
    Client client(socket_path);
    bool ok = true;

    if (ping) {
      Request req;
      req.op = Op::kPing;
      std::printf("%s\n", client.roundtrip(req.to_line()).c_str());
    }
    for (const std::string& scenario : scenarios) {
      Request req = base_req;
      req.op = Op::kRun;
      req.scenario = scenario;
      const std::string response = client.roundtrip(req.to_line());
      if (!handle_run_response(response, scenario, out_dir)) ok = false;
    }
    if (stats) {
      Request req;
      req.op = Op::kStats;
      std::printf("%s\n", client.roundtrip(req.to_line()).c_str());
    }
    if (shutdown) {
      Request req;
      req.op = Op::kShutdown;
      std::printf("%s\n", client.roundtrip(req.to_line()).c_str());
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "uwbams_run: %s\n", e.what());
    return 1;
  }
}

}  // namespace uwbams::serve
