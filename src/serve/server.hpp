/// @file server.hpp
/// @brief AF_UNIX line-framed transport for `uwbams_serve`.
///
/// Server owns a listening SOCK_STREAM unix-domain socket and a small
/// thread-per-connection accept loop; all request semantics live in the
/// ScenarioService it wraps (service.hpp). Framing is newline-delimited:
/// each complete line goes to ScenarioService::handle_line and the single
/// response line is written back. A connection whose buffered line exceeds
/// protocol kMaxRequestBytes gets one structured error response and is
/// closed — the server never allocates unboundedly for a hostile peer.
///
/// Client is the matching blocking connector used by the CLI request mode
/// and the tests: one roundtrip() = write a line, read a line.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace uwbams::serve {

class Server {
 public:
  /// Binds and listens on `socket_path` (an existing stale socket file is
  /// removed first). @throws std::runtime_error on any socket failure.
  Server(std::string socket_path, ScenarioService& service);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the accept loop in a background thread.
  void start();
  /// Stops accepting, shuts down live connections for reading (in-flight
  /// responses still drain), joins all threads, unlinks the socket file.
  /// Idempotent.
  void stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void accept_loop();
  void connection_loop(int fd);

  std::string socket_path_;
  ScenarioService& service_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Blocking unix-domain client: connect once, then any number of
/// line-in / line-out roundtrips on the same connection.
class Client {
 public:
  /// @throws std::runtime_error if the connect fails.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `line` (newline appended) and returns the response line
  /// (newline stripped). @throws std::runtime_error on a dropped
  /// connection.
  std::string roundtrip(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace uwbams::serve
