/// @file serve_cli.hpp
/// @brief Server / client entry points behind `uwbams_run --serve` and
/// `uwbams_run --connect=...` (also the `uwbams_serve` binary).
///
///   uwbams_run --serve [--socket=PATH] [--cache=DIR] [--jobs=N]
///                      [--mem-entries=N] [--verbose]
///   uwbams_run --connect=PATH scenario [...] [--scale=S] [--seed=N]
///                      [--tier=T] [--out=DIR]
///   uwbams_run --connect=PATH --ping | --stats | --shutdown
///
/// See docs/service.md for the wire protocol and cache key contract.
#pragma once

namespace uwbams::serve {

/// The long-lived server. Prints a "listening on <path>" readiness line,
/// then blocks until a shutdown request or SIGINT/SIGTERM; drains live
/// connections before exiting. Returns a process exit code.
int serve_main(int argc, const char* const* argv);

/// One-shot client: sends each requested scenario (or control op) to a
/// running server and writes artifacts + manifest.json under --out.
/// Returns non-zero if any request failed.
int client_main(int argc, const char* const* argv);

}  // namespace uwbams::serve
