#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace uwbams::serve {

namespace {

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; nothing useful to do with the tail
    }
    off += static_cast<std::size_t>(n);
  }
}

int make_listener(const std::string& path) {
  if (path.empty())
    throw std::runtime_error("Server: empty socket path");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("Server: socket path too long (" + path + ")");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("Server: socket(): ") +
                             std::strerror(errno));
  ::unlink(path.c_str());  // clear a stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("Server: bind(" + path +
                             "): " + std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw std::runtime_error(std::string("Server: listen(): ") +
                             std::strerror(err));
  }
  return fd;
}

}  // namespace

Server::Server(std::string socket_path, ScenarioService& service)
    : socket_path_(std::move(socket_path)),
      service_(service),
      listen_fd_(make_listener(socket_path_)) {}

Server::~Server() { stop(); }

void Server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close() alone may not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    fds = conn_fds_;
  }
  // Stop reading new requests; responses already being written still go
  // out, so shutdown drains rather than truncates.
  for (int fd : fds) ::shutdown(fd, SHUT_RD);
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  ::unlink(socket_path_.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Server::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      send_all(fd, service_.handle_line(line) + "\n");
      if (service_.shutdown_requested()) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxRequestBytes) {
      // Refuse mid-line before buffering an unbounded request.
      send_all(fd, error_line("request exceeds " +
                              std::to_string(kMaxRequestBytes) + " bytes") +
                       "\n");
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (service_.shutdown_requested()) {
    // Unblock the accept loop so the server's main poll can reap us.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int other : conn_fds_)
      if (other != fd) ::shutdown(other, SHUT_RD);
  }
}

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("Client: socket path too long (" + socket_path +
                             ")");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("Client: socket(): ") +
                             std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Client: connect(" + socket_path +
                             "): " + std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::roundtrip(const std::string& line) {
  send_all(fd_, line + "\n");
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string out = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return out;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw std::runtime_error("Client: server closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace uwbams::serve
