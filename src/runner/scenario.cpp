#include "runner/scenario.hpp"

#include <algorithm>
#include <cctype>

#include "base/random.hpp"

namespace uwbams::runner {

const char* to_string(Scale scale) {
  switch (scale) {
    case Scale::kFast: return "fast";
    case Scale::kDefault: return "default";
    case Scale::kFull: return "full";
  }
  return "?";
}

bool parse_scale(const std::string& text, Scale* out) {
  std::string s = text;
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "fast") *out = Scale::kFast;
  else if (s == "default") *out = Scale::kDefault;
  else if (s == "full") *out = Scale::kFull;
  else return false;
  return true;
}

ScenarioSpec& ScenarioSpec::axis(std::string axis_name,
                                 std::vector<double> values) {
  if (values.empty())
    throw std::invalid_argument("ScenarioSpec: axis '" + axis_name +
                                "' needs at least one value");
  for (const auto& a : axes_)
    if (a.name == axis_name)
      throw std::invalid_argument("ScenarioSpec: duplicate axis '" +
                                  axis_name + "'");
  axes_.push_back({std::move(axis_name), std::move(values)});
  return *this;
}

ScenarioSpec& ScenarioSpec::repetitions(int n) {
  if (n < 1)
    throw std::invalid_argument("ScenarioSpec: repetitions must be >= 1");
  repetitions_ = n;
  return *this;
}

std::size_t ScenarioSpec::grid_size() const {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

SweepPoint ScenarioSpec::point(std::size_t i) const {
  if (i >= point_count())
    throw std::out_of_range("ScenarioSpec::point: index out of range");
  SweepPoint pt;
  pt.index = i;
  // Row-major: repetition is the innermost (fastest) dimension, then the
  // last declared axis, and so on outward.
  std::size_t rem = i;
  pt.repetition = static_cast<int>(rem % static_cast<std::size_t>(repetitions_));
  rem /= static_cast<std::size_t>(repetitions_);
  pt.params.resize(axes_.size());
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const SweepAxis& ax = axes_[a];
    pt.params[a] = {ax.name, ax.values[rem % ax.values.size()]};
    rem /= ax.values.size();
  }
  pt.seed = base::derive_seed(sys_.seed, pt.index);
  return pt;
}

std::vector<SweepPoint> ScenarioSpec::points() const {
  std::vector<SweepPoint> out;
  const std::size_t n = point_count();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(point(i));
  return out;
}

}  // namespace uwbams::runner
