#include "runner/sink.hpp"

#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "base/faults.hpp"

namespace uwbams::runner {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // JSON has no inf/nan literals; encode them as strings.
  std::string s = buf;
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos)
    return "\"" + s + "\"";
  return s;
}

}  // namespace

ResultSink::ResultSink(std::string scenario, std::string out_dir)
    : scenario_(std::move(scenario)), out_dir_(std::move(out_dir)) {}

std::string ResultSink::dir() const {
  if (out_dir_.empty()) return "";
  return (std::filesystem::path(out_dir_) / scenario_).string();
}

void ResultSink::set_quiet(bool quiet) {
  std::lock_guard<std::mutex> lock(mu_);
  quiet_ = quiet;
}

void ResultSink::enable_capture() {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = true;
}

void ResultSink::note(const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (quiet_) return;
  std::cout << text << "\n" << std::flush;
}

void ResultSink::notef(const char* fmt, ...) {
  char buf[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  note(buf);
}

void ResultSink::write_artifact(const std::string& artifact,
                                const std::string& ext,
                                const std::string& content) {
  if (artifact.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (out_dir_.empty() && !capture_) return;
  const std::string filename =
      artifact.find('.') == std::string::npos ? artifact + ext : artifact;
  // Fault site: a simulated artifact-write failure, keyed by the target
  // filename (deterministic for any --jobs value or write order).
  base::faults::check("sink.write", base::fnv1a64(filename));
  if (!out_dir_.empty()) {
    const std::filesystem::path d(dir());
    std::filesystem::create_directories(d);
    const std::filesystem::path path = d / filename;
    std::ofstream out(path);
    if (!out)
      throw std::runtime_error("cannot write artifact: " + path.string());
    out << content;
  }
  if (capture_) captured_.emplace_back(filename, content);
  artifacts_.push_back(filename);
}

void ResultSink::table(const base::Table& t, const std::string& artifact) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!quiet_) std::cout << t.render() << std::flush;
  }
  write_artifact(artifact, ".csv", t.to_csv());
}

void ResultSink::series(const base::Series& s, const std::string& artifact,
                        int print_precision, bool print_rows) {
  if (print_rows) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!quiet_) std::cout << s.render(print_precision) << std::flush;
  }
  write_artifact(artifact, ".csv", s.to_csv());
}

void ResultSink::plot(const base::Series& s, int width, int height,
                      bool log_y) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!quiet_) std::cout << s.ascii_plot(width, height, log_y) << std::flush;
}

void ResultSink::trace(const base::Trace& t, const std::string& artifact) {
  write_artifact(artifact, ".csv", t.to_csv());
}

void ResultSink::metric(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.emplace_back(key, json_number(value));
}

void ResultSink::metric(const std::string& key, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.emplace_back(key, std::to_string(value));
}

void ResultSink::metric(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void ResultSink::perf(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  perf_.emplace_back(key, json_number(value));
}

void ResultSink::perf(const std::string& key, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  perf_.emplace_back(key, std::to_string(value));
}

void ResultSink::raw_artifact(const std::string& filename,
                              const std::string& content) {
  write_artifact(filename, "", content);
}

void ResultSink::golden_stats(const std::string& json) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    golden_stats_ = json;
  }
  write_artifact("golden_stats.json", "", json);
}

void ResultSink::finish(int status, double wall_seconds) {
  if (out_dir_.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::filesystem::path d(dir());
  std::filesystem::create_directories(d);
  std::ofstream out(d / "summary.json");
  out << "{\n";
  out << "  \"scenario\": \"" << json_escape(scenario_) << "\",\n";
  out << "  \"status\": " << status << ",\n";
  out << "  \"wall_seconds\": " << json_number(wall_seconds) << ",\n";
  out << "  \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << json_escape(metrics_[i].first)
        << "\": " << metrics_[i].second;
  }
  out << (metrics_.empty() ? "" : "\n  ") << "},\n";
  out << "  \"perf\": {";
  for (std::size_t i = 0; i < perf_.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << json_escape(perf_[i].first)
        << "\": " << perf_[i].second;
  }
  out << (perf_.empty() ? "" : "\n  ") << "},\n";
  out << "  \"artifacts\": [";
  for (std::size_t i = 0; i < artifacts_.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << json_escape(artifacts_[i]) << "\"";
  }
  out << (artifacts_.empty() ? "" : "\n  ") << "]\n";
  out << "}\n";
}

}  // namespace uwbams::runner
