// cli.hpp — the uwbams_run command-line driver.
//
//   uwbams_run --list [--group=bench]
//   uwbams_run fig6_ber --scale=fast --jobs=8 --out=results/
//   uwbams_run --all --scale=fast
//
// Scale resolution: the --scale flag, else "default" (the UWBAMS_FAST /
// UWBAMS_FULL env fallback from PR 1 was retired in PR 9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/registry.hpp"
#include "runner/scenario.hpp"

namespace uwbams::runner {

// The SCALES column of `--list`: the scenario's own fast|default|full tier
// annotation, or the generic tier names when it declared none.
inline std::string scales_label(const ScenarioInfo& info) {
  return info.tiers.empty() ? "fast|default|full" : info.tiers;
}

struct CliOptions {
  bool help = false;
  bool list = false;
  bool all = false;
  bool equiv_check = false;      // compare two golden_stats.json files
  std::string group;             // filter for --list / --all
  Scale scale = Scale::kDefault;
  bool scale_set = false;        // true when --scale was given
  core::ExactnessTier tier = core::ExactnessTier::kBitExact;
  std::string golden;            // golden_stats.json to gate the run against
  int jobs = 1;                  // 0 = hardware concurrency
  std::uint64_t seed = 1;
  std::string out_dir;           // empty = stdout only
  std::string fault_plan;        // JSON fault plan (also UWBAMS_FAULT_PLAN)
  std::string checkpoint;        // checkpoint root; "" disables
  bool resume = false;           // resume from --checkpoint
  int retries = 1;               // task retries before quarantine
  std::vector<std::string> scenarios;  // or the two files of --equiv-check
};

// Parses argv into `out`. Returns false (with a message on stderr) on
// malformed input.
bool parse_cli(int argc, const char* const* argv, CliOptions* out);

// Full driver: parse, resolve scale, select scenarios, run them.
// Returns a process exit code.
int run_cli(int argc, const char* const* argv);

}  // namespace uwbams::runner
