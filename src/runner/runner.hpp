// runner.hpp — umbrella header for scenario registrations.
//
// A scenario translation unit includes this and writes:
//
//   REGISTER_SCENARIO(fig6_ber, "bench", "Fig. 6 — BER vs Eb/N0") {
//     auto spec = ctx.spec().dt(0.2e-9).axis("ebn0_db", {...});
//     auto rows = ctx.pool.map<Row>(spec.point_count(), [&](std::size_t i) {
//       ...deterministic per-point work keyed on spec.point(i)...
//     });
//     ctx.sink.series(...); ctx.sink.metric(...);
//     return 0;
//   }
#pragma once

#include "runner/parallel.hpp"
#include "runner/registry.hpp"
#include "runner/scenario.hpp"
#include "runner/sink.hpp"
