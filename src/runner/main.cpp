// uwbams_run — the single CLI over every registered scenario, plus the
// serve/request modes from PR 9 (--serve starts the scenario server,
// --connect=PATH talks to one; see docs/service.md).
#include <cstring>

#include "runner/cli.hpp"
#include "serve/serve_cli.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0)
      return uwbams::serve::serve_main(argc, argv);
    if (std::strncmp(argv[i], "--connect=", 10) == 0)
      return uwbams::serve::client_main(argc, argv);
  }
  return uwbams::runner::run_cli(argc, argv);
}
