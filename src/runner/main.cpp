// uwbams_run — the single CLI over every registered scenario.
#include "runner/cli.hpp"

int main(int argc, char** argv) {
  return uwbams::runner::run_cli(argc, argv);
}
