#include "runner/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace uwbams::runner {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(ScenarioInfo info, ScenarioFn fn) {
  if (find(info.name) != nullptr)
    throw std::logic_error("duplicate scenario name: " + info.name);
  scenarios_.push_back({std::move(info), std::move(fn)});
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : scenarios_)
    if (s.info.name == name) return &s;
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::list(
    const std::string& group) const {
  std::vector<const Scenario*> out;
  for (const auto& s : scenarios_)
    if (group.empty() || s.info.group == group) out.push_back(&s);
  std::sort(out.begin(), out.end(), [](const Scenario* a, const Scenario* b) {
    if (a->info.group != b->info.group) return a->info.group < b->info.group;
    return a->info.name < b->info.name;
  });
  return out;
}

ScenarioRegistrar::ScenarioRegistrar(ScenarioInfo info, ScenarioFn fn) {
  ScenarioRegistry::instance().add(std::move(info), std::move(fn));
}

}  // namespace uwbams::runner
