#include "runner/spec_json.hpp"

#include <set>

#include "core/canonical.hpp"
#include "core/equiv.hpp"

namespace uwbams::runner {

namespace {

using base::JsonArray;
using base::JsonObject;
using base::JsonValue;

[[noreturn]] void fail(const std::string& what) {
  throw base::JsonError("spec_json: " + what);
}

const JsonValue& get(const JsonObject& obj, std::set<std::string>* seen,
                     const char* name) {
  const auto it = obj.find(name);
  if (it == obj.end()) fail(std::string("missing key '") + name + "'");
  seen->insert(name);
  return it->second;
}

int exact_int(const JsonValue& v, const char* name) {
  const double d = v.as_number();
  if (static_cast<double>(static_cast<int>(d)) != d)
    fail(std::string(name) + ": expected an exact integer");
  return static_cast<int>(d);
}

}  // namespace

base::JsonValue spec_to_json_value(const ScenarioSpec& spec) {
  JsonObject obj;
  obj["schema"] = JsonValue(std::string(kSpecSchema));
  obj["name"] = JsonValue(spec.name());
  obj["scale"] = JsonValue(std::string(to_string(spec.scale())));
  obj["tier"] = JsonValue(std::string(core::to_string(spec.tier())));
  obj["integrator"] = JsonValue(core::to_string(spec.integrator()));
  obj["duration"] = JsonValue(spec.duration());
  obj["ebn0_db"] = JsonValue(spec.ebn0());
  obj["repetitions"] = JsonValue(spec.repetitions());
  // Axes keep declaration order (row-major expansion order is part of the
  // seed-derivation identity), so they serialize as an array, not a map.
  JsonArray axes;
  axes.reserve(spec.axes().size());
  for (const SweepAxis& ax : spec.axes()) {
    JsonObject a;
    a["name"] = JsonValue(ax.name);
    JsonArray values;
    values.reserve(ax.values.size());
    for (double v : ax.values) values.emplace_back(v);
    a["values"] = JsonValue(std::move(values));
    axes.emplace_back(std::move(a));
  }
  obj["axes"] = JsonValue(std::move(axes));
  obj["system"] = core::canonical::to_json(spec.system());
  return JsonValue(std::move(obj));
}

std::string spec_to_json(const ScenarioSpec& spec) {
  return spec_to_json_value(spec).dump(2) + "\n";
}

ScenarioSpec spec_from_json(const base::JsonValue& doc) {
  const JsonObject& obj = doc.as_object();
  std::set<std::string> seen;
  const std::string& schema = get(obj, &seen, "schema").as_string();
  if (schema != kSpecSchema)
    fail("unsupported schema '" + schema + "' (want " + kSpecSchema + ")");

  ScenarioSpec spec(get(obj, &seen, "name").as_string());

  Scale scale;
  const std::string& scale_text = get(obj, &seen, "scale").as_string();
  if (!parse_scale(scale_text, &scale))
    fail("unknown scale '" + scale_text + "'");
  spec.with_scale(scale);

  core::ExactnessTier tier;
  const std::string& tier_text = get(obj, &seen, "tier").as_string();
  if (!core::parse_exactness_tier(tier_text, &tier))
    fail("unknown tier '" + tier_text + "'");
  spec.with_tier(tier);

  core::IntegratorKind kind;
  const std::string& kind_text = get(obj, &seen, "integrator").as_string();
  if (!core::canonical::parse_integrator_kind(kind_text, &kind))
    fail("unknown integrator '" + kind_text + "'");
  spec.integrator(kind);

  spec.duration(get(obj, &seen, "duration").as_number());
  spec.ebn0(get(obj, &seen, "ebn0_db").as_number());
  spec.repetitions(exact_int(get(obj, &seen, "repetitions"), "repetitions"));

  for (const JsonValue& av : get(obj, &seen, "axes").as_array()) {
    const JsonObject& a = av.as_object();
    std::set<std::string> axis_seen;
    const std::string& name = get(a, &axis_seen, "name").as_string();
    std::vector<double> values;
    for (const JsonValue& v : get(a, &axis_seen, "values").as_array())
      values.push_back(v.as_number());
    for (const auto& [key, value] : a)
      if (axis_seen.count(key) == 0)
        fail("axis '" + name + "': unknown key '" + key + "'");
    spec.axis(name, std::move(values));
  }

  uwb::SystemConfig sys;
  core::canonical::from_json(get(obj, &seen, "system"), &sys);
  spec.system(sys);

  for (const auto& [key, value] : obj)
    if (seen.count(key) == 0) fail("unknown key '" + key + "'");
  return spec;
}

ScenarioSpec spec_from_json(const std::string& text) {
  return spec_from_json(base::parse_json(text));
}

std::uint64_t spec_content_key(const ScenarioSpec& spec) {
  JsonObject obj;
  obj["code_version"] = JsonValue(std::string(core::canonical::kCodeVersion));
  obj["spec"] = spec_to_json_value(spec);
  return core::canonical::key_of(JsonValue(std::move(obj)));
}

}  // namespace uwbams::runner
