// registry.hpp — scenario self-registration and lookup.
//
// Every reproduction workload (paper figure/table benches, ablations,
// examples) registers itself at static-init time under a stable name, and
// the single `uwbams_run` CLI discovers and runs them by name — the
// replacement for fourteen hand-rolled main()s.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runner/scenario.hpp"

namespace uwbams::runner {

struct ScenarioInfo {
  std::string name;   // CLI name, e.g. "fig6_ber"
  std::string group;  // "bench" | "ablation" | "example"
  std::string title;  // one-line description shown by --list
  // Optional --scale tier annotation shown by --list, written as the
  // fast|default|full workloads in one compact string (e.g. "4|8|16 nodes").
  // Empty = the scenario has not spelled out its tiers.
  std::string tiers;
};

using ScenarioFn = std::function<int(RunContext&)>;

struct Scenario {
  ScenarioInfo info;
  ScenarioFn fn;
};

class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  // Throws std::logic_error on duplicate names (fail fast at startup).
  void add(ScenarioInfo info, ScenarioFn fn);
  const Scenario* find(const std::string& name) const;
  // All scenarios, sorted by (group, name). Optional group filter.
  std::vector<const Scenario*> list(const std::string& group = "") const;
  std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<Scenario> scenarios_;
};

// Static-init helper used by REGISTER_SCENARIO.
struct ScenarioRegistrar {
  ScenarioRegistrar(ScenarioInfo info, ScenarioFn fn);
};

}  // namespace uwbams::runner

// Defines and registers a scenario body:
//
//   REGISTER_SCENARIO(fig6_ber, "bench", "Fig. 6 — BER vs Eb/N0") {
//     auto spec = ctx.spec()...;
//     ...
//     return 0;
//   }
#define REGISTER_SCENARIO(id, group, title)                                  \
  static int uwbams_scenario_##id(::uwbams::runner::RunContext& ctx);        \
  static const ::uwbams::runner::ScenarioRegistrar uwbams_registrar_##id(    \
      {#id, group, title, ""}, &uwbams_scenario_##id);                       \
  static int uwbams_scenario_##id(::uwbams::runner::RunContext& ctx)

// REGISTER_SCENARIO plus the fast|default|full tier annotation `--list`
// prints in its SCALES column:
//
//   REGISTER_SCENARIO_TIERS(ranging_network, "ranging", "N-node TWR ...",
//                           "4|8|16 nodes") { ... }
#define REGISTER_SCENARIO_TIERS(id, group, title, tiers)                     \
  static int uwbams_scenario_##id(::uwbams::runner::RunContext& ctx);        \
  static const ::uwbams::runner::ScenarioRegistrar uwbams_registrar_##id(    \
      {#id, group, title, tiers}, &uwbams_scenario_##id);                    \
  static int uwbams_scenario_##id(::uwbams::runner::RunContext& ctx)
