// sink.hpp — structured result collection for scenarios.
//
// Replaces the benches' raw printf output with one object that (a) still
// narrates to stdout so interactive runs read like the old benches, and
// (b) when an output directory is given, emits machine-readable artifacts:
// one CSV per table/series/trace plus a summary.json with scalar metrics —
// the layer sweep post-processing and CI gates consume.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/table.hpp"
#include "base/trace.hpp"

namespace uwbams::runner {

class ResultSink {
 public:
  // `out_dir` empty = stdout only (no files). Otherwise artifacts land in
  // <out_dir>/<scenario>/, created on demand.
  ResultSink(std::string scenario, std::string out_dir);

  // Server mode (src/serve/): suppress the stdout narration — a request
  // handler must not interleave scenario chatter into the server's log.
  void set_quiet(bool quiet);
  // Server mode: keep every artifact's (filename, content) in memory even
  // without an output directory, so a request handler can assemble the
  // response payload without touching the filesystem. Artifact *bytes* are
  // identical to what write_artifact puts on disk — the property that
  // makes a cached response byte-compare equal to a --out batch run.
  void enable_capture();
  const std::vector<std::pair<std::string, std::string>>& captured() const {
    return captured_;
  }

  // Narrative line to stdout (replaces printf in scenario bodies).
  void note(const std::string& text);
  // printf-style convenience.
  void notef(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // Prints the table and, with an output dir, writes <artifact>.csv.
  // Empty artifact name = print only.
  void table(const base::Table& t, const std::string& artifact = "");
  // Prints the series rows and optionally writes <artifact>.csv.
  void series(const base::Series& s, const std::string& artifact = "",
              int print_precision = 6, bool print_rows = true);
  // ASCII plot to stdout only (shape checks in CI logs).
  void plot(const base::Series& s, int width = 64, int height = 20,
            bool log_y = false);
  // Waveform CSV artifact (not printed; traces are long).
  void trace(const base::Trace& t, const std::string& artifact);

  // Scalar results for summary.json.
  void metric(const std::string& key, double value);
  void metric(const std::string& key, std::uint64_t value);
  void metric(const std::string& key, const std::string& value);

  // Engine performance counters for the `perf` block of summary.json
  // (newton iterations, factorizations, accepted/rejected steps, wall
  // time...). The CLI driver fills these from the process-wide
  // spice::engine_counters delta around the scenario body; scenarios can
  // add their own.
  void perf(const std::string& key, double value);
  void perf(const std::string& key, std::uint64_t value);

  // Verbatim artifact (e.g. a pre-rendered JSON report like
  // BENCH_engine.json). The name is used as the file name as-is.
  void raw_artifact(const std::string& filename, const std::string& content);

  // The run's golden-stats artifact (core::StatArtifact::to_json): written
  // as golden_stats.json when an output dir is set, and kept in memory so
  // the CLI driver can run the --golden equivalence comparison without
  // re-reading files. Empty = the scenario registered no stats.
  void golden_stats(const std::string& json);
  const std::string& golden_stats() const { return golden_stats_; }

  // Called by the CLI driver once the scenario returns: writes
  // summary.json (when an output dir is set).
  void finish(int status, double wall_seconds);

  const std::string& scenario() const { return scenario_; }
  // <out_dir>/<scenario>, or "" when running stdout-only.
  std::string dir() const;
  const std::vector<std::string>& artifacts() const { return artifacts_; }

 private:
  void write_artifact(const std::string& artifact, const std::string& ext,
                      const std::string& content);

  std::string scenario_;
  std::string out_dir_;
  bool quiet_ = false;
  bool capture_ = false;
  std::string golden_stats_;
  std::vector<std::pair<std::string, std::string>> captured_;
  std::vector<std::string> artifacts_;
  // key -> already-rendered JSON value.
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<std::pair<std::string, std::string>> perf_;
  std::mutex mu_;
};

}  // namespace uwbams::runner
