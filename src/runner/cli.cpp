#include "runner/cli.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "base/faults.hpp"
#include "core/equiv.hpp"
#include "runner/parallel.hpp"
#include "runner/registry.hpp"
#include "runner/sink.hpp"
#include "spice/engine_counters.hpp"

namespace uwbams::runner {

namespace {

constexpr const char* kUsage =
    "usage: uwbams_run [options] [scenario ...]\n"
    "\n"
    "  --list            list registered scenarios (name, group, --scale\n"
    "                    tiers, title) and exit\n"
    "  --all             run every registered scenario\n"
    "  --group=G         with --list/--all: restrict to a group\n"
    "                    (bench | mc | netscale | ranging | ablation |\n"
    "                    example)\n"
    "  --scale=S         workload tier: fast | default | full\n"
    "  --tier=T          exactness tier: bit_exact (default; byte-compare\n"
    "                    gates hold) | stat_equiv (optimized engine; results\n"
    "                    gated by golden-stats equivalence)\n"
    "  --golden=FILE     after the run, compare the scenario's\n"
    "                    golden_stats.json against FILE and fail on\n"
    "                    statistical mismatch (writes equiv_report.json)\n"
    "  --equiv-check     standalone mode: uwbams_run --equiv-check\n"
    "                    GOLDEN.json CANDIDATE.json (no scenario is run)\n"
    "  --jobs=N          worker threads for sweeps (0 = all cores)\n"
    "  --seed=N          base seed for the scenario's sweeps\n"
    "  --out=DIR         write CSV/JSON artifacts under DIR/<scenario>/\n"
    "  --fault-plan=FILE deterministic fault-injection plan (JSON; see\n"
    "                    docs/robustness.md). UWBAMS_FAULT_PLAN is the env\n"
    "                    fallback when the flag is absent.\n"
    "  --checkpoint=DIR  shard completed sweep tasks under\n"
    "                    DIR/<scenario>/ so an interrupted run can resume\n"
    "  --resume          load completed shards from --checkpoint instead of\n"
    "                    recomputing them (rejects a stale checkpoint)\n"
    "  --retries=N       task re-runs before quarantine (default 1)\n"
    "  --help            this text\n"
    "\n"
    "Server mode (see docs/service.md):\n"
    "  uwbams_run --serve [--socket=PATH --cache=DIR --jobs=N]\n"
    "                    run the long-lived scenario server (uwbams_serve)\n"
    "  uwbams_run --connect=PATH [scenario ...] [--scale --seed --tier\n"
    "                    --out=DIR | --ping | --stats | --shutdown]\n"
    "                    send requests to a running server\n";

// Accepts "--key=value" or "--key value". Returns 1 on match (value in
// *value, *i advanced for the two-token form), 0 on no match, -1 when the
// key matched but no value followed.
int match_value_flag(const char* const* argv, int argc, int* i,
                     const std::string& key, std::string* value) {
  const std::string arg = argv[*i];
  if (arg.rfind(key + "=", 0) == 0) {
    *value = arg.substr(key.size() + 1);
    return 1;
  }
  if (arg == key) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "uwbams_run: %s needs a value\n", key.c_str());
      return -1;
    }
    *value = argv[++*i];
    return 1;
  }
  return 0;
}

// Reads a whole file; false (with a message) when it cannot be opened.
bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "uwbams_run: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Loads and compares two golden-stats artifacts; prints the report.
// Returns the process exit code.
int run_equiv_check(const std::string& golden_path,
                    const std::string& candidate_path) {
  std::string golden_text, candidate_text;
  if (!read_file(golden_path, &golden_text) ||
      !read_file(candidate_path, &candidate_text))
    return 2;
  try {
    const auto golden = core::StatArtifact::from_json(golden_text);
    const auto candidate = core::StatArtifact::from_json(candidate_text);
    const auto report = core::compare_stats(golden, candidate);
    std::printf("equiv_check: %s (golden) vs %s (candidate)\n%s",
                golden_path.c_str(), candidate_path.c_str(),
                report.to_text().c_str());
    return report.passed ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "uwbams_run: equiv-check failed: %s\n", e.what());
    return 2;
  }
}

}  // namespace

bool parse_cli(int argc, const char* const* argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    int m;
    if (arg == "--help" || arg == "-h") {
      out->help = true;
    } else if (arg == "--list") {
      out->list = true;
    } else if (arg == "--all") {
      out->all = true;
    } else if ((m = match_value_flag(argv, argc, &i, "--group", &value)) != 0) {
      if (m < 0) return false;
      out->group = value;
    } else if ((m = match_value_flag(argv, argc, &i, "--scale", &value)) != 0) {
      if (m < 0) return false;
      if (!parse_scale(value, &out->scale)) {
        std::fprintf(stderr,
                     "uwbams_run: bad --scale '%s' (fast|default|full)\n",
                     value.c_str());
        return false;
      }
      out->scale_set = true;
    } else if ((m = match_value_flag(argv, argc, &i, "--tier", &value)) != 0) {
      if (m < 0) return false;
      if (!core::parse_exactness_tier(value, &out->tier)) {
        std::fprintf(stderr,
                     "uwbams_run: bad --tier '%s' (bit_exact|stat_equiv)\n",
                     value.c_str());
        return false;
      }
    } else if ((m = match_value_flag(argv, argc, &i, "--golden", &value)) !=
               0) {
      if (m < 0) return false;
      out->golden = value;
    } else if (arg == "--equiv-check") {
      out->equiv_check = true;
    } else if ((m = match_value_flag(argv, argc, &i, "--jobs", &value)) != 0) {
      if (m < 0) return false;
      try {
        out->jobs = std::stoi(value);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "uwbams_run: bad --jobs '%s': %s\n",
                     value.c_str(), e.what());
        return false;
      }
      if (out->jobs < 0) {
        std::fprintf(stderr, "uwbams_run: --jobs must be >= 0\n");
        return false;
      }
    } else if ((m = match_value_flag(argv, argc, &i, "--seed", &value)) != 0) {
      if (m < 0) return false;
      try {
        out->seed = std::stoull(value);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "uwbams_run: bad --seed '%s': %s\n",
                     value.c_str(), e.what());
        return false;
      }
    } else if ((m = match_value_flag(argv, argc, &i, "--out", &value)) != 0) {
      if (m < 0) return false;
      out->out_dir = value;
    } else if ((m = match_value_flag(argv, argc, &i, "--fault-plan",
                                     &value)) != 0) {
      if (m < 0) return false;
      out->fault_plan = value;
    } else if ((m = match_value_flag(argv, argc, &i, "--checkpoint",
                                     &value)) != 0) {
      if (m < 0) return false;
      out->checkpoint = value;
    } else if (arg == "--resume") {
      out->resume = true;
    } else if ((m = match_value_flag(argv, argc, &i, "--retries", &value)) !=
               0) {
      if (m < 0) return false;
      try {
        out->retries = std::stoi(value);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "uwbams_run: bad --retries '%s': %s\n",
                     value.c_str(), e.what());
        return false;
      }
      if (out->retries < 0) {
        std::fprintf(stderr, "uwbams_run: --retries must be >= 0\n");
        return false;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "uwbams_run: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return false;
    } else {
      out->scenarios.push_back(arg);
    }
  }
  return true;
}

int run_cli(int argc, const char* const* argv) {
  CliOptions opt;
  if (!parse_cli(argc, argv, &opt)) return 2;
  if (opt.help) {
    std::printf("%s", kUsage);
    return 0;
  }

  if (opt.equiv_check) {
    if (opt.scenarios.size() != 2) {
      std::fprintf(stderr,
                   "uwbams_run: --equiv-check needs exactly two files "
                   "(golden, candidate)\n");
      return 2;
    }
    return run_equiv_check(opt.scenarios[0], opt.scenarios[1]);
  }

  auto& registry = ScenarioRegistry::instance();

  if (opt.list) {
    std::printf("%-20s %-10s %-34s %s\n", "NAME", "GROUP", "SCALES", "TITLE");
    for (const Scenario* s : registry.list(opt.group))
      std::printf("%-20s %-10s %-34s %s\n", s->info.name.c_str(),
                  s->info.group.c_str(), scales_label(s->info).c_str(),
                  s->info.title.c_str());
    return 0;
  }

  // Select scenarios.
  std::vector<const Scenario*> selected;
  if (opt.all) {
    selected = registry.list(opt.group);
    if (selected.empty()) {
      std::fprintf(stderr, "uwbams_run: no scenarios in group '%s'\n",
                   opt.group.c_str());
      return 2;
    }
  } else {
    for (const auto& name : opt.scenarios) {
      const Scenario* s = registry.find(name);
      if (s == nullptr) {
        std::fprintf(stderr,
                     "uwbams_run: unknown scenario '%s' (try --list)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(s);
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "uwbams_run: nothing to run\n%s", kUsage);
    return 2;
  }

  if (opt.resume && opt.checkpoint.empty()) {
    std::fprintf(stderr, "uwbams_run: --resume needs --checkpoint=DIR\n");
    return 2;
  }

  // Deterministic fault injection: --fault-plan, then the UWBAMS_FAULT_PLAN
  // env fallback. A malformed plan is a usage error, not a quarantined run.
  std::string plan_path = opt.fault_plan;
  if (plan_path.empty()) {
    if (const char* env = std::getenv("UWBAMS_FAULT_PLAN");
        env != nullptr && env[0] != '\0')
      plan_path = env;
  }
  if (!plan_path.empty()) {
    std::string plan_text;
    if (!read_file(plan_path, &plan_text)) return 2;
    try {
      base::faults::install(base::FaultPlan::from_json(plan_text));
      std::fprintf(stderr, "uwbams_run: fault plan '%s' active\n",
                   plan_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "uwbams_run: bad fault plan '%s': %s\n",
                   plan_path.c_str(), e.what());
      return 2;
    }
  }

  ParallelRunner pool(opt.jobs);
  int failures = 0;
  for (const Scenario* s : selected) {
    std::printf("=== %s — %s (scale: %s, tier: %s, jobs: %d) ===\n\n",
                s->info.name.c_str(), s->info.title.c_str(),
                to_string(opt.scale), core::to_string(opt.tier), pool.jobs());
    std::fflush(stdout);

    ResultSink sink(s->info.name, opt.out_dir);
    base::TaskPolicy policy;
    policy.max_retries = opt.retries;
    // Each scenario checkpoints under its own subdirectory so one --all run
    // can checkpoint several scenarios without mixing shards.
    const std::string ckpt_dir =
        opt.checkpoint.empty()
            ? std::string()
            : (std::filesystem::path(opt.checkpoint) / s->info.name).string();
    RunContext ctx{s->info.name, opt.scale, pool.jobs(),
                   opt.seed,      sink,      pool,
                   opt.tier,      policy,    ckpt_dir,
                   opt.resume};
    const auto engine0 = spice::engine_counters::snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    int status = 0;
    try {
      status = s->fn(ctx);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "uwbams_run: scenario '%s' failed: %s\n",
                   s->info.name.c_str(), e.what());
      status = 1;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Statistical-equivalence gate: compare the run's golden-stats artifact
    // against the pinned golden. A mismatch fails the scenario exactly like
    // a scenario-body FAIL does.
    if (status == 0 && !opt.golden.empty()) {
      std::string golden_text;
      if (!read_file(opt.golden, &golden_text)) {
        status = 1;
      } else if (sink.golden_stats().empty()) {
        std::fprintf(stderr,
                     "uwbams_run: scenario '%s' registered no golden stats "
                     "to compare against --golden\n",
                     s->info.name.c_str());
        status = 1;
      } else {
        try {
          const auto report = core::compare_stats(
              core::StatArtifact::from_json(golden_text),
              core::StatArtifact::from_json(sink.golden_stats()));
          sink.note("\nEquivalence vs " + opt.golden + ":\n" +
                    report.to_text());
          sink.raw_artifact("equiv_report.json", report.to_json());
          if (!report.passed) status = 1;
        } catch (const std::exception& e) {
          std::fprintf(stderr, "uwbams_run: equivalence gate failed: %s\n",
                       e.what());
          status = 1;
        }
      }
    }
    // Engine work this scenario caused, as a process-counter delta (every
    // retired TransientSession and OP solve lands here) -> summary.json
    // `perf` block.
    const auto engine1 = spice::engine_counters::snapshot();
    // Deliberately also present top-level in summary.json (same `wall`
    // value): the perf block is the self-contained engine record CI
    // tracks, the top-level field is the pre-existing schema.
    sink.perf("wall_seconds", wall);
    sink.perf("transient_sessions", engine1.sessions - engine0.sessions);
    sink.perf("transient_steps", engine1.steps - engine0.steps);
    sink.perf("accepted_steps", engine1.accepted_steps - engine0.accepted_steps);
    sink.perf("rejected_steps", engine1.rejected_steps - engine0.rejected_steps);
    sink.perf("fallback_steps", engine1.fallback_steps - engine0.fallback_steps);
    sink.perf("newton_iterations",
              engine1.newton_iterations - engine0.newton_iterations);
    sink.perf("factorizations", engine1.factorizations - engine0.factorizations);
    sink.perf("refactorizations",
              engine1.refactorizations - engine0.refactorizations);
    sink.perf("solves", engine1.solves - engine0.solves);
    sink.perf("singular_failures",
              engine1.singular_failures - engine0.singular_failures);
    sink.perf("nonconverged_failures",
              engine1.nonconverged_failures - engine0.nonconverged_failures);
    sink.perf("op_solves", engine1.op_solves - engine0.op_solves);
    sink.perf("op_iterations", engine1.op_iterations - engine0.op_iterations);
    sink.metric("scale", std::string(to_string(opt.scale)));
    sink.finish(status, wall);
    if (status != 0) ++failures;
    std::printf("\n--- %s: %s in %.2f s%s ---\n\n", s->info.name.c_str(),
                status == 0 ? "ok" : "FAILED", wall,
                sink.dir().empty()
                    ? ""
                    : (" (artifacts: " + sink.dir() + ")").c_str());
    std::fflush(stdout);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace uwbams::runner
