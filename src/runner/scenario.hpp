// scenario.hpp — declarative experiment specs for the unified scenario API.
//
// The paper's whole point is one environment that exercises the same system
// at many fidelities and workloads. ScenarioSpec is the experiment-description
// layer that makes that uniform: a scenario states its name, scale tier,
// seeds, sweep axes and system configuration once, and the runner expands it
// into deterministic, independently-seeded sweep points that a thread pool
// can execute in any order with bit-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/equiv.hpp"
#include "core/experiment.hpp"
#include "runner/parallel.hpp"
#include "uwb/config.hpp"

namespace uwbams::runner {

// Workload tier. Replaces the UWBAMS_FAST / UWBAMS_FULL env-var hack that
// each bench used to re-implement (the deprecated CLI fallback honoring
// those variables was retired in PR 9 — --scale is the only control now).
enum class Scale { kFast, kDefault, kFull };

const char* to_string(Scale scale);
// Accepts "fast" / "default" / "full" (case-insensitive).
bool parse_scale(const std::string& text, Scale* out);

// Scale-tier dispatch shared by ScenarioSpec::pick and RunContext::pick —
// the declarative replacement for the per-bench switch statements over the
// old env-var scale.
template <typename T>
T pick_by_scale(Scale scale, T fast, T def, T full) {
  switch (scale) {
    case Scale::kFast: return fast;
    case Scale::kFull: return full;
    case Scale::kDefault: break;
  }
  return def;
}

// One named parameter dimension of a sweep.
struct SweepAxis {
  std::string name;
  std::vector<double> values;

  bool operator==(const SweepAxis&) const = default;
};

// One expanded grid point. `seed` is derived from the spec's base seed and
// the point's linear index alone (base::derive_seed), so it does not depend
// on execution order or worker count — the property that makes
// --jobs=8 reproduce --jobs=1 bit for bit.
struct SweepPoint {
  std::size_t index = 0;   // linear index over grid x repetitions
  int repetition = 0;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> params;  // axis name -> value

  double at(const std::string& axis) const {
    for (const auto& [k, v] : params)
      if (k == axis) return v;
    throw std::out_of_range("SweepPoint: no axis named '" + axis + "'");
  }
};

// Declarative experiment description with a fluent builder over
// uwb::SystemConfig / core::SystemRunConfig.
//
//   auto spec = ctx.spec()
//                   .dt(0.2e-9)
//                   .integrator(core::IntegratorKind::kSpice)
//                   .axis("ebn0_db", {0, 4, 8, 12, 16})
//                   .repetitions(ctx.pick(3, 10, 10));
//   auto results = ctx.pool.map<R>(spec.point_count(), [&](std::size_t i) {
//     const auto pt = spec.point(i); ...
//   });
class ScenarioSpec {
 public:
  explicit ScenarioSpec(std::string name, Scale scale = Scale::kDefault,
                        std::uint64_t seed = 1,
                        core::ExactnessTier tier = core::ExactnessTier::kBitExact)
      : name_(std::move(name)), scale_(scale), tier_(tier) {
    sys_.seed = seed;
  }

  const std::string& name() const { return name_; }
  Scale scale() const { return scale_; }
  ScenarioSpec& with_scale(Scale s) { scale_ = s; return *this; }

  // Declared exactness contract of this run: bit_exact keeps the byte-
  // compare gates, stat_equiv trades them for golden-stats equivalence and
  // unlocks the optimized engine profile (core::variant_for_tier).
  core::ExactnessTier tier() const { return tier_; }
  ScenarioSpec& with_tier(core::ExactnessTier t) { tier_ = t; return *this; }

  template <typename T>
  T pick(T fast, T def, T full) const {
    return pick_by_scale(scale_, fast, def, full);
  }

  // --- seeds ------------------------------------------------------------
  std::uint64_t base_seed() const { return sys_.seed; }
  ScenarioSpec& seed(std::uint64_t s) { sys_.seed = s; return *this; }

  // --- system configuration (fluent over uwb::SystemConfig) -------------
  uwb::SystemConfig& system() { return sys_; }
  const uwb::SystemConfig& system() const { return sys_; }
  ScenarioSpec& system(const uwb::SystemConfig& sys) { sys_ = sys; return *this; }
  ScenarioSpec& dt(double dt_s) { sys_.dt = dt_s; return *this; }
  ScenarioSpec& distance(double meters) { sys_.distance = meters; return *this; }
  ScenarioSpec& multipath(bool on) { sys_.multipath = on; return *this; }
  // Arbitrary adjustments without breaking the fluent chain.
  ScenarioSpec& tune(const std::function<void(uwb::SystemConfig&)>& fn) {
    fn(sys_);
    return *this;
  }

  // --- run configuration (fluent over core::SystemRunConfig) ------------
  ScenarioSpec& integrator(core::IntegratorKind kind) { kind_ = kind; return *this; }
  ScenarioSpec& duration(double seconds) { duration_ = seconds; return *this; }
  ScenarioSpec& ebn0(double db) { ebn0_db_ = db; return *this; }
  core::IntegratorKind integrator() const { return kind_; }
  double duration() const { return duration_; }
  double ebn0() const { return ebn0_db_; }
  core::SystemRunConfig run_config() const {
    core::SystemRunConfig cfg;
    cfg.sys = sys_;
    cfg.kind = kind_;
    cfg.duration = duration_;
    cfg.ebn0_db = ebn0_db_;
    return cfg;
  }

  // --- sweep axes and expansion ------------------------------------------
  ScenarioSpec& axis(std::string axis_name, std::vector<double> values);
  ScenarioSpec& repetitions(int n);
  const std::vector<SweepAxis>& axes() const { return axes_; }
  int repetitions() const { return repetitions_; }

  // Product of axis sizes (1 when no axes are declared).
  std::size_t grid_size() const;
  // grid_size() * repetitions(): the task count a runner fans out.
  std::size_t point_count() const { return grid_size() * static_cast<std::size_t>(repetitions_); }
  // The i-th point of the row-major expansion (last axis fastest,
  // repetition innermost). Deterministic in i alone.
  SweepPoint point(std::size_t i) const;
  std::vector<SweepPoint> points() const;

  // Exact member-wise equality — the canonical JSON round-trip contract
  // (`spec_from_json(spec_to_json(s)) == s`, runner/spec_json.hpp).
  bool operator==(const ScenarioSpec& other) const {
    return name_ == other.name_ && scale_ == other.scale_ &&
           tier_ == other.tier_ && sys_ == other.sys_ &&
           kind_ == other.kind_ && duration_ == other.duration_ &&
           ebn0_db_ == other.ebn0_db_ && axes_ == other.axes_ &&
           repetitions_ == other.repetitions_;
  }

 private:
  std::string name_;
  Scale scale_;
  core::ExactnessTier tier_ = core::ExactnessTier::kBitExact;
  uwb::SystemConfig sys_;
  core::IntegratorKind kind_ = core::IntegratorKind::kIdeal;
  double duration_ = 30e-6;
  double ebn0_db_ = 10.0;
  std::vector<SweepAxis> axes_;
  int repetitions_ = 1;
};

class ResultSink;

// Everything a scenario body receives: the resolved scale/seed/jobs plus
// the sink that collects its artifacts and the pool that fans its sweeps.
struct RunContext {
  std::string scenario_name;
  Scale scale = Scale::kDefault;
  int jobs = 1;
  std::uint64_t seed = 1;
  ResultSink& sink;
  ParallelRunner& pool;
  core::ExactnessTier tier = core::ExactnessTier::kBitExact;
  // Fault-tolerant execution (PR 8): retry/quarantine policy for the
  // scenario's tolerant sweeps, plus the per-scenario checkpoint directory
  // ("" disables checkpointing) and whether to resume from it.
  base::TaskPolicy policy{};
  std::string checkpoint_dir{};
  bool resume = false;

  template <typename T>
  T pick(T fast, T def, T full) const {
    return pick_by_scale(scale, fast, def, full);
  }

  // Engine options matching this run's declared exactness tier.
  core::VariantOptions variant() const { return core::variant_for_tier(tier); }

  // A spec pre-loaded with this run's name, scale, base seed and tier.
  ScenarioSpec spec() const {
    return ScenarioSpec(scenario_name, scale, seed, tier);
  }
};

}  // namespace uwbams::runner
