// spec_json.hpp — canonical ScenarioSpec serialization (schema
// "uwbams-spec-v1") and the content key derived from it.
//
// The serve layer (src/serve/) and any future golden-config pin need one
// byte-stable, schema-versioned rendering of an experiment description:
// `spec_from_json(spec_to_json(s)) == s` exactly (every scalar compared
// bit-for-bit), and the content key — FNV-1a over the compact canonical
// dump plus core::canonical::kCodeVersion — changes iff a result-affecting
// knob (or the code generation) changes. The SystemConfig payload reuses
// core/canonical.hpp, so a knob added there is automatically covered here.
#pragma once

#include <cstdint>
#include <string>

#include "base/json.hpp"
#include "runner/scenario.hpp"

namespace uwbams::runner {

inline constexpr const char* kSpecSchema = "uwbams-spec-v1";

/// Canonical document: schema, name, scale, tier, integrator, duration,
/// ebn0_db, repetitions, the ordered axes array, and the full canonical
/// SystemConfig (which carries the base seed and clock).
base::JsonValue spec_to_json_value(const ScenarioSpec& spec);
/// spec_to_json_value(spec).dump(2) — the human-readable artifact form.
std::string spec_to_json(const ScenarioSpec& spec);

/// Strict inverse: unknown/missing keys, a wrong schema string, bad enum
/// names or duplicate axes throw base::JsonError (or std::invalid_argument
/// from the axis builder). Accepts a JsonValue or raw text.
ScenarioSpec spec_from_json(const base::JsonValue& doc);
ScenarioSpec spec_from_json(const std::string& text);

/// FNV-1a content key over {code_version, spec}: stable under key
/// reordering / whitespace of any textual source, flips for a mutation of
/// every result-affecting knob and for a kCodeVersion bump.
std::uint64_t spec_content_key(const ScenarioSpec& spec);

}  // namespace uwbams::runner
