// parallel.hpp — historical location of the worker pool.
//
// The implementation moved to base/parallel.hpp so library-level sweeps
// (uwb::run_ber_sweep) can use it without depending on the scenario layer.
// Scenario code keeps addressing it as runner::ParallelRunner.
#pragma once

#include "base/parallel.hpp"

namespace uwbams::runner {

using ParallelRunner = base::ParallelRunner;

}  // namespace uwbams::runner
