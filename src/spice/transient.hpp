// transient.hpp — resumable fixed-step transient analysis.
//
// TransientSession is the unit the AMS kernel co-simulates with: it owns the
// Newton state of one circuit and advances one time step at a time, letting
// ams::SpiceBridge interleave circuit steps with behavioral-model steps —
// the "substitute-and-play" mechanism of the paper's Phase III.
//
// Solver configuration follows the paper: fixed time step (0.05 ns in the
// system benches), Newton–Raphson per step, EPS-style tolerance 1e-6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/op.hpp"

namespace uwbams::spice {

struct TransientOptions {
  double dt = 0.05e-9;
  Integrator method = Integrator::kTrapezoidal;
  int max_newton = 60;
  double vabstol = 1e-6;
  double reltol = 1e-3;
  double gmin = 1e-12;
  OpOptions op;  // initial operating point options
};

class TransientSession {
 public:
  // Prepares the circuit, solves the initial operating point and primes the
  // dynamic device history. Throws std::runtime_error if the OP fails.
  TransientSession(Circuit& circuit, TransientOptions options = {});

  double time() const { return t_; }
  const TransientOptions& options() const { return opts_; }

  // Advance one step of options().dt (or an explicit dt). Throws
  // std::runtime_error if Newton fails even after the BE/sub-step fallback.
  void step() { step(opts_.dt); }
  void step(double dt);
  // Advance until `t_stop`, recording nothing. Convenience for tests.
  void run_until(double t_stop);

  // Solution access.
  double v(NodeId node) const { return circuit_->voltage_in(x_, node); }
  double v(const std::string& node_name) const;
  const std::vector<double>& solution() const { return x_; }
  const std::vector<double>& operating_point() const { return op_; }

  // Named voltage source handle for external driving (co-simulation).
  VoltageSource& source(const std::string& name);

  // Diagnostics.
  std::uint64_t total_newton_iterations() const { return newton_total_; }
  std::uint64_t steps_taken() const { return steps_; }
  std::uint64_t fallback_steps() const { return fallbacks_; }

 private:
  bool newton_step(double dt, Integrator method, std::vector<double>& x);
  void commit_all(const std::vector<double>& x, double dt);

  Circuit* circuit_;
  TransientOptions opts_;
  std::vector<double> x_;   // current committed solution
  std::vector<double> op_;  // initial operating point
  double t_ = 0.0;
  std::uint64_t newton_total_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace uwbams::spice
