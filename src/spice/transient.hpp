/// @file transient.hpp
/// @brief Resumable transient analysis with a reused fast-path workspace.
///
/// TransientSession is the unit the AMS kernel co-simulates with: it owns
/// the Newton state of one circuit and advances one time step at a time,
/// letting ams::SpiceBridge interleave circuit steps with behavioral-model
/// steps — the "substitute-and-play" mechanism of the paper's Phase III.
///
/// Solver configuration follows the paper: fixed time step (0.05 ns in the
/// system benches), Newton–Raphson per step, EPS-style tolerance 1e-6.
///
/// **Fast path.** The session owns one structure-locked Mna workspace and
/// one LuFactor for its whole lifetime: no per-iteration allocation, sparse
/// reset of the stamp pattern, and pivot-order reuse (`LuFactor::refactor`)
/// across Newton iterations and time steps, falling back to a fresh
/// partial-pivoting factorization when the frozen pivot sequence degrades.
/// Circuits with no nonlinear device skip Newton iteration entirely and
/// solve every step with a single cached factorization per (dt, method).
///
/// **Adaptive stepping.** advance_to() runs a trapezoidal
/// predictor-corrector loop with a local-truncation-error estimate,
/// growing/shrinking the step under accept/reject control and aligning
/// step boundaries to source waveform edges (Device::next_break). Enabled
/// per session through TransientOptions::adaptive; step() remains the
/// paper's fixed-step scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/lu.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/op.hpp"

namespace uwbams::spice {

class Mosfet;

/// Adaptive local-truncation-error step control (advance_to()).
///
/// The LTE of each candidate step is estimated from the difference between
/// the solved corrector and a linear history predictor; a step is accepted
/// when the worst normalized component error is below 1.
struct AdaptiveOptions {
  bool enabled = false;       ///< off = advance_to() uses fixed opts.dt steps
  double lte_abstol = 1e-4;   ///< absolute LTE target per component [V or A]
  double lte_reltol = 1e-3;   ///< relative LTE target (vs iterate magnitude)
  double dt_min = 1e-14;      ///< smallest step the controller may take [s]
  double dt_max = 0.0;        ///< largest step [s]; 0 = unlimited
  double grow_limit = 2.0;    ///< max step growth factor per accepted step
  double shrink = 0.25;       ///< smallest shrink factor per rejected step
  double safety = 0.9;        ///< controller safety factor on the LTE ratio
};

/// Per-session engine statistics (monotonic over the session's lifetime).
/// Flushed into the process-wide engine_counters on session destruction.
struct TransientStats {
  std::uint64_t steps = 0;               ///< committed macro steps
  std::uint64_t accepted_steps = 0;      ///< accepted step attempts
  std::uint64_t rejected_steps = 0;      ///< LTE or Newton rejections
  std::uint64_t fallback_steps = 0;      ///< BE / sub-step rescues
  std::uint64_t newton_iterations = 0;   ///< Newton iterations performed
  std::uint64_t factorizations = 0;      ///< fresh partial-pivot LU factors
  std::uint64_t refactorizations = 0;    ///< pivot-order-reusing refactors
  std::uint64_t solves = 0;              ///< forward/back substitutions
  std::uint64_t singular_failures = 0;   ///< singular-matrix Newton aborts
  std::uint64_t nonconverged_failures = 0;  ///< Newton iteration-cap hits
  /// Human-readable reason of the most recent Newton failure ("" = none):
  /// what failed, at which time, and the pivot ratio observed.
  std::string last_failure;
  /// Pivot ratio of the factorization involved in the last failure
  /// (degraded-column ratio for refused refactors).
  double last_failure_pivot_ratio = 0.0;
};

/// Transient solver configuration.
struct TransientOptions {
  double dt = 0.05e-9;       ///< fixed step size [s] (paper: 0.05 ns)
  Integrator method = Integrator::kTrapezoidal;  ///< companion method
  int max_newton = 60;       ///< Newton iteration cap per step attempt
  double vabstol = 1e-6;     ///< absolute convergence tolerance [V]
  double reltol = 1e-3;      ///< relative convergence tolerance
  double gmin = 1e-12;       ///< shunt at nonlinear terminals [S]
  /// Reuse the LU pivot order when the Jacobian is rebuilt (fresh
  /// partial-pivoting factorization only on pivot degradation). This knob
  /// governs rebuilds only; how often rebuilds happen is `lazy_jacobian`'s
  /// decision. To restore the pre-fast-path engine exactly (full assembly
  /// + fresh full-pivoting factorization every Newton iteration), disable
  /// **both** this and `lazy_jacobian` — as the equivalence tests and
  /// bench_engine's classic workload do.
  bool reuse_factorization = true;
  /// Warm-start each step's Newton iteration from the linear history
  /// extrapolation instead of the last committed solution. Off by default:
  /// for noise-driven co-simulation inputs the extrapolation is no better
  /// than the committed solution.
  bool predictor = false;
  /// Chord (modified-Newton) iterations: keep the factorized Jacobian
  /// across iterations and steps, evaluating only device currents
  /// (Device::residual) per iteration, and rebuild the Jacobian only when
  /// (dt, method) changes or an attempt needs more than
  /// `jacobian_refresh_every` iterations. The converged fixed point is the
  /// same nonlinear system solved to the same tolerances — only the
  /// iteration path (and its cost) differs. Requires every device to
  /// support residual(); automatically off otherwise.
  bool lazy_jacobian = true;
  /// Chord-iteration budget between Jacobian rebuilds within one step
  /// attempt (>= 1).
  int jacobian_refresh_every = 3;
  /// Chord iterations accept at `chord_tol_scale` times the Newton
  /// tolerance (vabstol/reltol). Chord convergence is linear rather than
  /// quadratic, so accepting at the plain tolerance leaves a larger
  /// distance-to-solution than full Newton would; tightening the chord
  /// acceptance closes that accuracy gap at the cost of roughly one extra
  /// (cheap) chord iteration per step.
  double chord_tol_scale = 0.1;
  /// Residual-based early acceptance for chord iterations: when every KCL
  /// residual entry is already below `iabstol` [A] *before* the solve, the
  /// iterate is accepted without the confirming solve-and-update. 0 = off
  /// (every acceptance goes through the update-norm test). The stat_equiv
  /// profile enables it at the classic SPICE abstol scale.
  double iabstol = 0.0;
  /// Multirate co-simulation at the bridge boundary: the spice wrapper
  /// (uwb::SpiceIntegrator) holds its input and takes one embedded solver
  /// step per `cosim_decimation` macro samples (step size dt*N), flushing
  /// pending samples at every control-phase edge so integrate/dump window
  /// timing is unchanged. 1 = lockstep (one solve per macro sample, the
  /// bit_exact behavior). Consumed by the co-simulation wrapper, not the
  /// transient engine itself.
  int cosim_decimation = 1;
  /// Pack L/U values contiguously after each factorization so chord solves
  /// stream them sequentially (LuFactor::set_packed_solve). Identical
  /// arithmetic; pays off when each factorization serves several solves.
  bool packed_solve = false;
  /// Mosfet::commit reuses the region recorded by the last device
  /// evaluation instead of recomputing it from the final iterate — can
  /// freeze the neighboring region's Meyer caps for a device landing
  /// exactly on a region boundary, so reserved for stat_equiv runs.
  bool fused_commit = false;
  AdaptiveOptions adaptive;  ///< adaptive stepping (advance_to) knobs
  OpOptions op;              ///< initial operating point options
};

/// The engine profile of the `stat_equiv` exactness tier: chord acceptance
/// at the plain Newton tolerance (the linear-convergence safety margin the
/// bit_exact default buys costs ~20% extra iterations), packed L/U solves
/// and fused device commits. Centralized here so every stat_equiv caller
/// (scenarios, tests, benches) means the same engine.
inline void apply_stat_equiv_profile(TransientOptions* opts) {
  opts->chord_tol_scale = 1.0;
  opts->iabstol = 1e-9;
  opts->vabstol = 1e-5;
  opts->cosim_decimation = 5;
  opts->packed_solve = true;
  opts->fused_commit = true;
}

/// Resumable transient analysis of one prepared Circuit.
class TransientSession {
 public:
  /// Prepares the circuit, solves the initial operating point and primes
  /// the dynamic device history.
  /// @throws std::runtime_error if the operating point fails to converge.
  explicit TransientSession(Circuit& circuit, TransientOptions options = {});
  /// Flushes this session's stats into the process-wide engine counters.
  ~TransientSession();
  /// Non-copyable (and, with the user-declared destructor, non-movable):
  /// the destructor's counter flush must run exactly once per session.
  TransientSession(const TransientSession&) = delete;
  TransientSession& operator=(const TransientSession&) = delete;

  /// Current simulation time [s].
  double time() const { return t_; }
  /// The solver configuration this session runs with.
  const TransientOptions& options() const { return opts_; }

  /// Advance one step of options().dt.
  void step() { step(opts_.dt); }
  /// Advance one step of an explicit dt [s], with the fixed-step rescue
  /// ladder (backward Euler, then four BE sub-steps).
  /// @throws std::runtime_error if Newton fails even after the fallbacks
  ///         (the message carries the recorded failure diagnostics).
  void step(double dt);
  /// Advance until `t_stop` with fixed opts.dt steps (legacy helper).
  void run_until(double t_stop);
  /// Advance exactly to `t_stop`. With adaptive stepping enabled this runs
  /// the LTE accept/reject loop (event-aligned, landing on t_stop); with it
  /// disabled it takes fixed opts.dt steps plus one remainder step.
  void advance_to(double t_stop);

  /// Voltage of `node` in the committed solution [V].
  double v(NodeId node) const { return circuit_->voltage_in(x_, node); }
  /// Voltage of the named node in the committed solution [V].
  /// @throws std::invalid_argument for an unknown node name.
  double v(const std::string& node_name) const;
  /// The committed solution vector (node voltages then branch currents).
  const std::vector<double>& solution() const { return x_; }
  /// The initial operating point this session started from.
  const std::vector<double>& operating_point() const { return op_; }

  /// Named voltage source handle for external driving (co-simulation).
  /// @throws std::invalid_argument when no such voltage source exists.
  VoltageSource& source(const std::string& name);

  /// Engine statistics accumulated so far.
  const TransientStats& stats() const { return stats_; }
  /// Total Newton iterations (legacy accessor; = stats().newton_iterations).
  std::uint64_t total_newton_iterations() const { return stats_.newton_iterations; }
  /// Committed steps (legacy accessor; = stats().steps).
  std::uint64_t steps_taken() const { return stats_.steps; }
  /// Fallback rescues (legacy accessor; = stats().fallback_steps).
  std::uint64_t fallback_steps() const { return stats_.fallback_steps; }

 private:
  bool newton_step(double dt, Integrator method, std::vector<double>& x);
  void extrapolate_into(double dt, std::vector<double>& out) const;
  void predict_into(double dt, std::vector<double>& x) const;
  void commit_all(const std::vector<double>& x, double dt);
  void note_history(double dt);
  double next_break_time() const;
  void record_failure(std::string reason, double pivot_ratio);

  Circuit* circuit_;
  TransientOptions opts_;
  std::vector<double> x_;   // current committed solution
  std::vector<double> op_;  // initial operating point
  double t_ = 0.0;
  TransientStats stats_;

  // --- reused fast-path workspace (no allocation after construction) ----
  // Devices split by concrete type so the per-iteration loops call
  // Mosfet::residual/stamp directly (devirtualized, inlinable); evaluation
  // order (linear devices first, then MOSFETs in netlist order) is fixed.
  std::vector<const Mosfet*> mosfets_;
  std::vector<const Device*> others_;
  // Devices whose commit()/state matters — stateless element types
  // (R, V, I, VCVS, VCCS) are filtered out of the per-step commit loop.
  std::vector<Device*> stateful_;
  std::shared_ptr<const MnaPattern> pattern_;
  Mna<double> mna_;
  linalg::LuFactor<double> lu_;
  bool lu_primed_ = false;       // lu_ holds a usable pivot order
  bool linear_lu_fresh_ = false; // linear path: factorization matches...
  double linear_lu_dt_ = -1.0;   // ...this (dt, method) pair
  Integrator linear_lu_method_ = Integrator::kTrapezoidal;
  double jac_dt_ = -1.0;         // (dt, method) the cached Jacobian was...
  Integrator jac_method_ = Integrator::kTrapezoidal;  // ...assembled for
  std::vector<double> x_work_;   // step candidate
  std::vector<double> x_new_;    // Newton iterate scratch
  std::vector<double> f_;        // residual / chord update scratch

  // --- predictor history for the adaptive LTE estimate ------------------
  std::vector<double> x_pred_;   // shared extrapolation scratch
  std::vector<double> x_prev_;   // solution one committed step back
  double dt_prev_ = 0.0;
  bool have_history_ = false;
  double dt_next_ = 0.0;         // adaptive controller's persisted proposal
};

}  // namespace uwbams::spice
