/// @file netlist_writer.hpp
/// @brief Emits a Circuit back to netlist text.
///
/// Completes the round trip with the parser: a circuit built
/// programmatically (e.g. by itd_builder) can be exported, re-parsed and
/// must describe the same system. Useful for debugging generated circuits
/// and for interoperability with external SPICE tools.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace uwbams::spice {

/// Serializes all devices of `circuit` as element cards with inline .model
/// cards for every distinct MOSFET parameter set. Waveform sources are
/// emitted at their DC value (time-dependent shapes are testbench-level
/// concerns; the exported deck is the topology + sizing).
std::string write_netlist(const Circuit& circuit,
                          const std::string& title = "exported by uwbams");

}  // namespace uwbams::spice
