/// @file model_card.hpp
/// @brief MOSFET model parameter cards.
///
/// A Level-1 (Shichman–Hodges) parameter set with Meyer capacitances. The
/// built-in cards approximate a 0.18 um mixed-mode 1.8 V CMOS process of the
/// class the paper uses (UMC 0.18 um), including the low-threshold (LV)
/// device flavors the integrator exploits for overdrive headroom.
#pragma once

#include <string>

namespace uwbams::spice {

struct MosModel {
  std::string name = "nmos";
  bool is_pmos = false;
  double vt0 = 0.45;      ///< zero-bias threshold voltage [V] (negative for PMOS)
  double kp = 280e-6;     ///< transconductance parameter u0*Cox [A/V^2]
  double gamma = 0.45;    ///< body-effect coefficient [sqrt(V)]
  double phi = 0.85;      ///< surface potential [V]
  double lambda = 0.08;   ///< channel-length modulation [1/V]
  double tox = 4.1e-9;    ///< gate oxide thickness [m]
  double ld = 0.01e-6;    ///< lateral diffusion [m]
  double cgso = 3.1e-10;  ///< G-S overlap capacitance per width [F/m]
  double cgdo = 3.1e-10;  ///< G-D overlap capacitance per width [F/m]
  double cgbo = 1.0e-10;  ///< G-B overlap capacitance per length [F/m]
  double cj = 1.0e-3;     ///< junction capacitance per area [F/m^2]
  double ldiff = 0.48e-6; ///< source/drain diffusion length [m] (for Cj area)

  /// Oxide capacitance per area [F/m^2].
  double cox() const;
};

/// Built-in 0.18 um-class cards: "nmos", "pmos", "nmos_lv", "pmos_lv".
/// Throws std::invalid_argument for unknown names.
MosModel builtin_model(const std::string& name);

}  // namespace uwbams::spice
