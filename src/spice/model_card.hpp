/// @file model_card.hpp
/// @brief MOSFET model parameter cards, process corners and mismatch.
///
/// A Level-1 (Shichman–Hodges) parameter set with Meyer capacitances. The
/// built-in cards approximate a 0.18 um mixed-mode 1.8 V CMOS process of the
/// class the paper uses (UMC 0.18 um), including the low-threshold (LV)
/// device flavors the integrator exploits for overdrive headroom.
///
/// The statistical layer on top of the nominal cards drives the Monte-Carlo
/// characterization pipeline (core/montecarlo.hpp): `Corner` names the five
/// classic process corners, and `ModelVariation` turns a nominal card into a
/// corner/temperature-shifted, per-device-mismatched card deterministically
/// (the mismatch draw depends only on the seed and the device name, never on
/// build order — the contract that keeps Monte-Carlo trials bit-identical
/// for any worker count).
#pragma once

#include <cstdint>
#include <string>

namespace uwbams::spice {

struct MosModel {
  std::string name = "nmos";
  bool is_pmos = false;
  double vt0 = 0.45;      ///< zero-bias threshold voltage [V] (negative for PMOS)
  double kp = 280e-6;     ///< transconductance parameter u0*Cox [A/V^2]
  double gamma = 0.45;    ///< body-effect coefficient [sqrt(V)]
  double phi = 0.85;      ///< surface potential [V]
  double lambda = 0.08;   ///< channel-length modulation [1/V]
  double tox = 4.1e-9;    ///< gate oxide thickness [m]
  double ld = 0.01e-6;    ///< lateral diffusion [m]
  double cgso = 3.1e-10;  ///< G-S overlap capacitance per width [F/m]
  double cgdo = 3.1e-10;  ///< G-D overlap capacitance per width [F/m]
  double cgbo = 1.0e-10;  ///< G-B overlap capacitance per length [F/m]
  double cj = 1.0e-3;     ///< junction capacitance per area [F/m^2]
  double ldiff = 0.48e-6; ///< source/drain diffusion length [m] (for Cj area)

  /// Oxide capacitance per area [F/m^2].
  double cox() const;
};

/// Built-in 0.18 um-class cards: "nmos", "pmos", "nmos_lv", "pmos_lv".
/// Throws std::invalid_argument for unknown names.
MosModel builtin_model(const std::string& name);

// ---------------------------------------------------------------------------
// Process corners and per-device mismatch.
// ---------------------------------------------------------------------------

/// The five classic process corners (nMOS speed / pMOS speed).
enum class Corner {
  kTT,  ///< typical / typical (nominal)
  kFF,  ///< fast / fast
  kSS,  ///< slow / slow
  kFS,  ///< fast nMOS / slow pMOS
  kSF,  ///< slow nMOS / fast pMOS
};

/// Short upper-case corner name ("TT", "FF", ...).
const char* to_string(Corner corner);

/// Parses a corner name (case-insensitive). Returns false on unknown text.
bool parse_corner(const std::string& text, Corner* out);

/// All five corners in declaration order (TT first).
const Corner* all_corners(std::size_t* count);

/// Deterministic PVT-corner + mismatch transform of a nominal model card.
///
/// The transform has three independent components, applied in this order:
///
///  1. **Process corner** — a fast device loses 40 mV of threshold
///     magnitude and gains 10% transconductance; a slow device the
///     opposite. Which polarity a device sees follows its type (nMOS /
///     pMOS) and the corner name.
///  2. **Temperature** — mobility degrades as (T/T0)^-1.5 (kp scales with
///     it) and the threshold magnitude drops 1.5 mV/K above the 27 C
///     reference, the standard Level-1 temperature model.
///  3. **Mismatch** — per-device Gaussian draws on vt0 (additive) and kp
///     (relative), with Pelgrom area scaling: sigma_vt = A_vt/sqrt(W*L),
///     sigma_kp/kp = A_kp/sqrt(W*L). The draw is seeded from
///     (mismatch_seed, device name) only, so it does not depend on the
///     order devices are built in — two circuits built from the same
///     seed agree device-by-device, which is what makes Monte-Carlo
///     trials reproducible across --jobs counts.
///
/// A default-constructed ModelVariation `is_nominal()` and `apply()` then
/// returns the base card *unchanged* (bit-for-bit), so nominal flows are
/// unaffected by the statistical layer.
struct ModelVariation {
  Corner corner = Corner::kTT;      ///< process corner
  double temp_c = 27.0;             ///< device temperature [Celsius]
  double sigma_scale = 0.0;         ///< mismatch amplitude (0 = off, 1 = nominal Pelgrom)
  std::uint64_t mismatch_seed = 0;  ///< base seed of the per-device draws

  /// Corner threshold shift magnitude [V] (fast: -, slow: +).
  double corner_dvt = 40e-3;
  /// Corner relative transconductance shift (fast: +, slow: -).
  double corner_dkp = 0.10;
  /// Pelgrom threshold-matching coefficient [V*m] (3.5 mV*um).
  double pelgrom_avt = 3.5e-9;
  /// Pelgrom relative-kp matching coefficient [m] (1% * um).
  double pelgrom_akp = 1.0e-8;

  /// True when apply() is the identity (TT, 27 C, no mismatch).
  bool is_nominal() const;

  /// Returns the corner/temperature/mismatch-adjusted card for one device
  /// instance. `device` is the instance name (e.g. "M7"); `w`/`l` are the
  /// drawn dimensions [m] used for Pelgrom area scaling.
  MosModel apply(const MosModel& base, const std::string& device,
                 double w, double l) const;
};

}  // namespace uwbams::spice
