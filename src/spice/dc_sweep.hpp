/// @file dc_sweep.hpp
/// @brief DC transfer-curve analysis.
///
/// Sweeps a named voltage source and records probe voltages at each
/// converged operating point (warm-started from the previous one). Used by
/// the characterization flow to trace the I&D input transfer curve (the DC
/// input linear range of the paper's §4) and by device-level tests for
/// MOSFET I-V curves.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/op.hpp"

namespace uwbams::spice {

struct DcSweepPoint {
  double source_value = 0.0;
  std::vector<double> probes;  ///< one entry per requested probe pair
  bool converged = false;
};

struct DcProbe {
  NodeId positive = 0;
  NodeId negative = 0;  ///< ground for single-ended probes
};

/// Sweeps `source_name` over [start, stop] in `steps` increments.
std::vector<DcSweepPoint> run_dc_sweep(Circuit& circuit,
                                       const std::string& source_name,
                                       double start, double stop, int steps,
                                       const std::vector<DcProbe>& probes,
                                       const OpOptions& options = {});

/// Convenience: differential small-signal gain of probe 0 around the sweep
/// midpoint, by central difference.
double dc_gain_at_midpoint(const std::vector<DcSweepPoint>& sweep);

}  // namespace uwbams::spice
