#include "spice/engine_counters.hpp"

#include <atomic>

#include "spice/transient.hpp"

namespace uwbams::spice::engine_counters {

namespace {

struct Counters {
  std::atomic<std::uint64_t> sessions{0};
  std::atomic<std::uint64_t> steps{0};
  std::atomic<std::uint64_t> accepted_steps{0};
  std::atomic<std::uint64_t> rejected_steps{0};
  std::atomic<std::uint64_t> fallback_steps{0};
  std::atomic<std::uint64_t> newton_iterations{0};
  std::atomic<std::uint64_t> factorizations{0};
  std::atomic<std::uint64_t> refactorizations{0};
  std::atomic<std::uint64_t> solves{0};
  std::atomic<std::uint64_t> singular_failures{0};
  std::atomic<std::uint64_t> nonconverged_failures{0};
  std::atomic<std::uint64_t> op_solves{0};
  std::atomic<std::uint64_t> op_iterations{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

}  // namespace

EngineCounterSnapshot snapshot() {
  Counters& c = counters();
  EngineCounterSnapshot s;
  s.sessions = c.sessions.load(std::memory_order_relaxed);
  s.steps = c.steps.load(std::memory_order_relaxed);
  s.accepted_steps = c.accepted_steps.load(std::memory_order_relaxed);
  s.rejected_steps = c.rejected_steps.load(std::memory_order_relaxed);
  s.fallback_steps = c.fallback_steps.load(std::memory_order_relaxed);
  s.newton_iterations = c.newton_iterations.load(std::memory_order_relaxed);
  s.factorizations = c.factorizations.load(std::memory_order_relaxed);
  s.refactorizations = c.refactorizations.load(std::memory_order_relaxed);
  s.solves = c.solves.load(std::memory_order_relaxed);
  s.singular_failures = c.singular_failures.load(std::memory_order_relaxed);
  s.nonconverged_failures =
      c.nonconverged_failures.load(std::memory_order_relaxed);
  s.op_solves = c.op_solves.load(std::memory_order_relaxed);
  s.op_iterations = c.op_iterations.load(std::memory_order_relaxed);
  return s;
}

void add_transient(const TransientStats& stats) {
  Counters& c = counters();
  c.sessions.fetch_add(1, std::memory_order_relaxed);
  c.steps.fetch_add(stats.steps, std::memory_order_relaxed);
  c.accepted_steps.fetch_add(stats.accepted_steps, std::memory_order_relaxed);
  c.rejected_steps.fetch_add(stats.rejected_steps, std::memory_order_relaxed);
  c.fallback_steps.fetch_add(stats.fallback_steps, std::memory_order_relaxed);
  c.newton_iterations.fetch_add(stats.newton_iterations,
                                std::memory_order_relaxed);
  c.factorizations.fetch_add(stats.factorizations, std::memory_order_relaxed);
  c.refactorizations.fetch_add(stats.refactorizations,
                               std::memory_order_relaxed);
  c.solves.fetch_add(stats.solves, std::memory_order_relaxed);
  c.singular_failures.fetch_add(stats.singular_failures,
                                std::memory_order_relaxed);
  c.nonconverged_failures.fetch_add(stats.nonconverged_failures,
                                    std::memory_order_relaxed);
}

void add_op(int iterations) {
  Counters& c = counters();
  c.op_solves.fetch_add(1, std::memory_order_relaxed);
  c.op_iterations.fetch_add(static_cast<std::uint64_t>(iterations > 0 ? iterations : 0),
                            std::memory_order_relaxed);
}

}  // namespace uwbams::spice::engine_counters
