/// @file ac.hpp
/// @brief Small-signal AC analysis.
///
/// Linearizes every device around a committed DC operating point and solves
/// the complex MNA system at each frequency. The stimulus is carried by the
/// AC magnitude/phase of voltage or current sources (set_ac on the source).
/// This is the analysis that regenerates the paper's Fig. 4 (integrator AC
/// response) and feeds the Phase-IV characterization fit.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "linalg/lu.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"

namespace uwbams::spice {

struct AcPoint {
  double freq = 0.0;                  ///< Hz
  std::complex<double> value{0.0, 0.0};  ///< probed differential voltage
};

struct AcSweep {
  std::vector<AcPoint> points;
  /// Magnitude in dB at index i.
  double mag_db(std::size_t i) const;
  /// Phase in degrees at index i.
  double phase_deg(std::size_t i) const;
};

/// AC solver configuration.
struct AcOptions {
  /// Reuse the complex LU pivot order across the frequency grid
  /// (linalg::LuFactor::refactor) instead of a fresh full-pivoting
  /// factorization per point, falling back to factor() when the frozen
  /// pivot sequence degrades. Same linear systems, different elimination
  /// rounding — reserved for stat_equiv runs; the default keeps the
  /// historical one-shot path bit-identical.
  bool reuse_factorization = false;
  /// Optional external workspace for `reuse_factorization`: the pivot
  /// order then also survives across run_ac calls on structurally
  /// identical circuits (e.g. across Monte-Carlo trials of one netlist).
  /// nullptr = per-call workspace. The caller owns thread confinement.
  linalg::LuFactor<std::complex<double>>* workspace = nullptr;
};

/// Runs an AC sweep. `op` must be a converged operating point of `circuit`
/// (use solve_op). The probe is v(probe_p) - v(probe_m).
AcSweep run_ac(Circuit& circuit, const std::vector<double>& op,
               std::span<const double> freqs, NodeId probe_p,
               NodeId probe_m = 0, const AcOptions& options = {});

/// Logarithmically spaced frequency grid, `points_per_decade` points per
/// decade from f_start to f_stop inclusive.
std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       int points_per_decade);

}  // namespace uwbams::spice
