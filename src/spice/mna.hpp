/// @file mna.hpp
/// @brief Modified Nodal Analysis matrix assembly.
///
/// `Mna<double>` carries the real system solved during OP and transient
/// Newton iterations; `Mna<std::complex<double>>` carries the small-signal
/// AC system. Ground (index -1) contributions are silently dropped, which
/// keeps device stamp code free of special cases.
///
/// **Fast path.** An `Mna` can be *structure-locked* to an `MnaPattern`
/// (the union of every device's stamp footprint, collected once by
/// `Circuit::prepare()`). A locked workspace is reused across Newton
/// iterations and time steps: `reset()` zeros only the structural nonzeros
/// and the RHS instead of the whole dense matrix, and no storage is ever
/// reallocated. The same pattern seeds `linalg::LuFactor`'s symbolic
/// elimination, so refactorizations skip structural zeros too.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace uwbams::spice {

/// Structural footprint of a set of device stamps on an MNA system.
///
/// Devices report every matrix entry they may ever touch through
/// `Device::footprint()`; the pattern must be a superset of all later
/// `Mna::add()` targets (ground indices are dropped symmetrically, so stamp
/// code and footprint code can share index arithmetic).
class MnaPattern {
 public:
  /// Pattern for an MNA system with n unknowns.
  explicit MnaPattern(std::size_t n) : pattern_(n) {}

  /// Number of unknowns.
  std::size_t size() const { return pattern_.size(); }

  /// Declares entry (i, j) as potentially stamped. Ground (< 0) is dropped.
  void add(int i, int j) {
    if (i < 0 || j < 0) return;
    pattern_.add(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  }

  /// Declares the full cross product of `nodes` (the footprint of a device
  /// that couples every listed terminal with every other, e.g. a MOSFET).
  void add_block(std::initializer_list<int> nodes) {
    for (int i : nodes)
      for (int j : nodes) add(i, j);
  }

  /// Declares every entry (fallback for devices with no precise footprint).
  void add_dense() { pattern_.fill(); }

  /// True if (i, j) was declared (ground always counts as covered).
  bool contains(int i, int j) const {
    if (i < 0 || j < 0) return true;
    return pattern_.contains(static_cast<std::size_t>(i),
                             static_cast<std::size_t>(j));
  }

  /// The linalg-layer view consumed by `LuFactor::factor()`.
  const linalg::SparsityPattern& sparsity() const { return pattern_; }

 private:
  linalg::SparsityPattern pattern_;
};

/// Assembled MNA system: matrix A and right-hand side b of A x = b.
template <typename T>
class Mna {
 public:
  /// Unlocked workspace of n unknowns (dense clear()).
  explicit Mna(std::size_t n) : a_(n, n), b_(n, T{}) {}

  /// Workspace structure-locked to `pattern` (enables sparse reset()).
  /// The entry list is copied; the pattern need not outlive the Mna.
  explicit Mna(const MnaPattern& pattern)
      : a_(pattern.size(), pattern.size()), b_(pattern.size(), T{}) {
    lock(pattern);
  }

  /// Number of unknowns.
  std::size_t size() const { return b_.size(); }

  /// Locks the workspace to `pattern`: reset() will zero only the declared
  /// entries from now on. Stamps outside the pattern are a logic error in
  /// the device's footprint() (covered by tests, not checked at runtime).
  void lock(const MnaPattern& pattern) {
    const std::size_t n = size();
    entries_.clear();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        if (pattern.sparsity().contains(r, c))
          entries_.push_back(static_cast<std::uint32_t>(r * n + c));
  }

  /// True when lock() has recorded a structural pattern.
  bool locked() const { return !entries_.empty(); }

  /// Dense zeroing of A and b (always correct, O(n^2)).
  void clear() {
    a_.fill(T{});
    for (auto& v : b_) v = T{};
  }

  /// Sparse-aware zeroing: only the locked structural entries of A (plus
  /// the whole RHS) are cleared. Falls back to clear() when unlocked.
  void reset() {
    if (entries_.empty()) {
      clear();
      return;
    }
    T* data = a_.row_ptr(0);
    for (std::uint32_t e : entries_) data[e] = T{};
    for (auto& v : b_) v = T{};
  }

  /// A(i,j) += g. Negative indices refer to ground and are dropped.
  void add(int i, int j, T g) {
    if (i < 0 || j < 0) return;
    a_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) += g;
  }

  /// b(i) += v. Ground (< 0) is dropped.
  void add_rhs(int i, T v) {
    if (i < 0) return;
    b_[static_cast<std::size_t>(i)] += v;
  }

  /// Conductance g between nodes i and j (standard two-terminal stamp).
  void stamp_conductance(int i, int j, T g) {
    add(i, i, g);
    add(j, j, g);
    add(i, j, -g);
    add(j, i, -g);
  }

  /// Current I flowing from node i to node j (into j).
  void stamp_current(int i, int j, T current) {
    add_rhs(i, -current);
    add_rhs(j, current);
  }

  /// The assembled matrix A.
  linalg::Matrix<T>& matrix() { return a_; }
  /// The assembled matrix A (const).
  const linalg::Matrix<T>& matrix() const { return a_; }
  /// The assembled right-hand side b.
  std::vector<T>& rhs() { return b_; }
  /// The assembled right-hand side b (const).
  const std::vector<T>& rhs() const { return b_; }

 private:
  linalg::Matrix<T> a_;
  std::vector<T> b_;
  std::vector<std::uint32_t> entries_;  // flat offsets of structural nonzeros
};

}  // namespace uwbams::spice
