// mna.hpp — Modified Nodal Analysis matrix assembly.
//
// Mna<double> carries the real system solved during OP and transient Newton
// iterations; Mna<std::complex<double>> carries the small-signal AC system.
// Ground (index -1) contributions are silently dropped, which keeps device
// stamp code free of special cases.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace uwbams::spice {

template <typename T>
class Mna {
 public:
  explicit Mna(std::size_t n) : a_(n, n), b_(n, T{}) {}

  std::size_t size() const { return b_.size(); }

  void clear() {
    a_.fill(T{});
    for (auto& v : b_) v = T{};
  }

  // A(i,j) += g. Negative indices refer to ground and are dropped.
  void add(int i, int j, T g) {
    if (i < 0 || j < 0) return;
    a_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) += g;
  }

  // b(i) += v.
  void add_rhs(int i, T v) {
    if (i < 0) return;
    b_[static_cast<std::size_t>(i)] += v;
  }

  // Conductance g between nodes i and j (standard two-terminal stamp).
  void stamp_conductance(int i, int j, T g) {
    add(i, i, g);
    add(j, j, g);
    add(i, j, -g);
    add(j, i, -g);
  }

  // Current I flowing from node i to node j (into j).
  void stamp_current(int i, int j, T current) {
    add_rhs(i, -current);
    add_rhs(j, current);
  }

  linalg::Matrix<T>& matrix() { return a_; }
  const linalg::Matrix<T>& matrix() const { return a_; }
  std::vector<T>& rhs() { return b_; }
  const std::vector<T>& rhs() const { return b_; }

 private:
  linalg::Matrix<T> a_;
  std::vector<T> b_;
};

}  // namespace uwbams::spice
