#include "spice/dc_sweep.hpp"

#include <stdexcept>

#include "spice/devices.hpp"

namespace uwbams::spice {

std::vector<DcSweepPoint> run_dc_sweep(Circuit& circuit,
                                       const std::string& source_name,
                                       double start, double stop, int steps,
                                       const std::vector<DcProbe>& probes,
                                       const OpOptions& options) {
  if (steps < 1) throw std::invalid_argument("run_dc_sweep: steps < 1");
  auto* src = dynamic_cast<VoltageSource*>(circuit.find_device(source_name));
  if (src == nullptr)
    throw std::invalid_argument("run_dc_sweep: no voltage source '" +
                                source_name + "'");

  std::vector<DcSweepPoint> out;
  out.reserve(static_cast<std::size_t>(steps) + 1);
  OpOptions opts = options;
  for (int i = 0; i <= steps; ++i) {
    const double v = start + (stop - start) * i / steps;
    src->set_override(v);
    const OpResult op = solve_op(circuit, opts);
    DcSweepPoint pt;
    pt.source_value = v;
    pt.converged = op.converged;
    if (op.converged) {
      for (const auto& p : probes)
        pt.probes.push_back(circuit.voltage_in(op.x, p.positive) -
                            circuit.voltage_in(op.x, p.negative));
      opts.initial_guess = op.x;  // warm-start the next point
    } else {
      pt.probes.assign(probes.size(), 0.0);
    }
    out.push_back(std::move(pt));
  }
  src->clear_override();
  return out;
}

double dc_gain_at_midpoint(const std::vector<DcSweepPoint>& sweep) {
  if (sweep.size() < 3 || sweep.front().probes.empty())
    throw std::invalid_argument("dc_gain_at_midpoint: need >=3 points");
  const std::size_t mid = sweep.size() / 2;
  const auto& lo = sweep[mid - 1];
  const auto& hi = sweep[mid + 1];
  const double dv = hi.source_value - lo.source_value;
  if (dv == 0.0) throw std::invalid_argument("dc_gain_at_midpoint: flat sweep");
  return (hi.probes[0] - lo.probes[0]) / dv;
}

}  // namespace uwbams::spice
