/// @file itd_builder.hpp
/// @brief The paper's Integrate & Dump cell (Fig. 3), 31 MOSFETs.
///
/// Fully differential current-mode Gm-C integrator in a 0.18 um 1.8 V flow:
///
///   * input stage: nMOS-LV source followers (aspect ratio ~20) with resistive
///     degeneration; the differential input current is limited to +/- Ib,
///     which produces the ~100 mV DC linear input range the paper reports;
///   * current mirrors: pMOS mirror ratio ~2 ("mirrored and amplified into
///     the output stage"), plus a unit pMOS / 1.8x nMOS path that returns the
///     opposite-phase current, giving an effective Gm ~ 62 uS;
///   * no cascodes in the output stage (paper: 1.6 V output swing), so the
///     output resistance and the 1 pF load set the low-frequency pole near
///     0.9 MHz and a DC gain near 21 dB;
///   * CMFB: resistive output sensing into a pMOS differential pair whose
///     mirrored current drives nMOS correction sinks at the outputs;
///   * integration switches: two transmission gates (Controlp, with an
///     on-cell inverter for the pMOS gates) plus an nMOS reset switch
///     (Controlm) across the integration capacitor;
///   * two auto-biasing networks (R + diode for Vbias1; a stacked diode
///     string for the CMFB reference).
///
/// Interface nodes use the paper's exact terminal names:
///   Inp, Inm, Controlp, Controlm, Vdd, Gnd(0), Out_intp, Out_intm.
#pragma once

#include <string>

#include "spice/circuit.hpp"
#include "spice/model_card.hpp"

namespace uwbams::spice {

/// All tunable elements of the cell. Defaults implement the sizing plan
/// described above; core::characterize extracts the achieved gain and poles.
struct ItdSizing {
  double vdd = 1.8;          ///< supply [V]
  double c_int = 1e-12;      ///< integration capacitor [F] (paper: 1 pF)
  double r_deg = 46.8e3;     ///< input degeneration resistor [ohm]
  double r_bias = 748e3;     ///< Vbias1 network resistor [ohm]
  double r_sense = 95e3;     ///< CMFB sense resistors [ohm]
  double r_cm_anchor = 20e3; ///< sense midpoint to Vref (CM recovery path)
  double r_tail = 188e3;     ///< CMFB tail resistor [ohm]
  double c_cmfb = 200e-15;   ///< CMFB compensation capacitor [F]

  /// Input followers (nmos_lv), aspect ratio ~20.
  double w_in = 3.6e-6, l_in = 0.18e-6;
  /// Follower current sinks + bias diode (nmos), ~1.7 uA each.
  double w_sink = 0.36e-6, l_sink = 0.18e-6;
  /// pMOS mirror diodes / 2x outputs / unit second path.
  double w_pdiode = 0.24e-6, l_pdiode = 0.18e-6;
  double w_pmir2 = 0.48e-6;   ///< 2x mirror ("aspect ratio of about 2")
  double w_pmir1 = 0.24e-6;   ///< unit mirror into the nMOS path
  /// nMOS second-mirror diodes and 1.8x outputs.
  double w_ndiode = 0.24e-6, l_ndiode = 0.18e-6;
  double w_nmir = 0.432e-6;
  /// CMFB devices.
  double w_cm_pair = 0.72e-6, l_cm_pair = 0.36e-6;
  double w_cm_diode = 0.36e-6, l_cm_diode = 0.18e-6;
  double w_cm_sink = 0.24e-6, l_cm_sink = 0.30e-6;
  /// Vref stack.
  double w_ref_p = 0.24e-6, l_ref_p = 3.2e-6;
  double w_ref_n = 0.26e-6, l_ref_n = 0.18e-6;
  /// Switches and control inverter. The reset device is sized wide so the
  /// dump completes within a few ns (its overdrive is body-effect limited).
  double w_tg_n = 2.0e-6, w_tg_p = 0.6e-6, l_tg = 0.18e-6;  ///< charge-balanced (Qp ~ Qn at the on-state overdrives)
  double w_rst = 2.0e-6, l_rst = 0.18e-6;
  double w_inv_n = 0.36e-6, w_inv_p = 0.72e-6, l_inv = 0.18e-6;

  /// Statistical condition of the build: process corner, temperature and
  /// per-device mismatch applied to every model card the builder draws
  /// (see ModelVariation). Defaults to nominal, which reproduces the
  /// unvaried cell bit-for-bit. Supply variation is expressed through
  /// `vdd` directly (core::PvtCorner sets both together).
  ModelVariation variation;
};

/// Interface node ids of a built cell.
struct ItdTerminals {
  NodeId inp = -1, inm = -1;
  NodeId controlp = -1, controlm = -1;
  NodeId vdd = -1;
  NodeId out_intp = -1, out_intm = -1;
  /// OTA outputs before the switches (useful probes).
  NodeId outp = -1, outm = -1;
};

/// Builds the cell into `circuit` (top level, no name prefix) and returns the
/// interface nodes. The cell contains exactly 31 MOSFETs.
ItdTerminals build_integrate_and_dump(Circuit& circuit,
                                      const ItdSizing& sizing = {});

/// Builds the complete standalone testbench used by the characterization and
/// the Fig. 4 / Fig. 5 benches: the cell plus Vdd / control / input sources.
/// Input sources are named "vinp"/"vinm" (drive via TransientSession::source
/// or set_ac), controls "vctrlp"/"vctrlm".
struct ItdTestbench {
  ItdTerminals t;
  double input_cm = 0.9;  ///< DC common mode applied to Inp/Inm
};
ItdTestbench build_itd_testbench(Circuit& circuit, const ItdSizing& sizing = {});

/// Path of the equivalent text netlist shipped in circuits/ (same topology,
/// parsed through the SPICE-dialect front end).
std::string itd_netlist_path();

}  // namespace uwbams::spice
