/// @file op.hpp
/// @brief DC operating point by damped Newton–Raphson.
///
/// Matches the solver configuration the paper reports for ELDO runs
/// (Newton/Raphson, accuracy EPS = 1e-6). If plain Newton fails, the solver
/// falls back to gmin stepping, then source stepping — the standard SPICE
/// homotopy ladder.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace uwbams::spice {

struct OpOptions {
  int max_iterations = 200;
  double vabstol = 1e-6;  ///< absolute voltage tolerance (paper's EPS)
  double reltol = 1e-3;   ///< relative tolerance
  double gmin = 1e-12;    ///< final gmin shunt at nonlinear devices
  double damping = 0.6;   ///< max voltage update per Newton iteration [V]
  std::vector<double> initial_guess;  ///< optional warm start
};

struct OpResult {
  std::vector<double> x;  ///< node voltages then branch currents
  bool converged = false;
  int iterations = 0;          ///< Newton iterations of the final solve
  std::string strategy;        ///< "newton", "gmin-stepping", "source-stepping"
};

/// Computes the DC operating point. Throws std::runtime_error only on
/// structural problems (singular matrix with full gmin); a non-converged
/// result is reported through OpResult::converged.
OpResult solve_op(Circuit& circuit, const OpOptions& options = {});

}  // namespace uwbams::spice
