#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "spice/devices.hpp"

namespace uwbams::spice {

Mosfet::Mosfet(std::string name, int d, int g, int s, int b, MosModel model,
               double width, double length)
    : Device(std::move(name)), d_(mna_index(d)), g_(mna_index(g)),
      s_(mna_index(s)), b_(mna_index(b)), model_(std::move(model)),
      width_(width), length_(length) {
  cap_nodes_ = {{{g_, s_}, {g_, d_}, {g_, b_}, {d_, b_}, {s_, b_}}};
}

MosEval Mosfet::evaluate(double vd, double vg, double vs, double vb) const {
  const double p = model_.is_pmos ? -1.0 : 1.0;
  // Flip into the NMOS-like frame.
  double vds = p * (vd - vs);
  double vgs = p * (vg - vs);
  double vbs = p * (vb - vs);
  // Symmetric device: if vds < 0 the roles of drain and source swap.
  if (vds < 0.0) {
    vds = -vds;
    vgs = p * (vg - vd);
    vbs = p * (vb - vd);
  }

  MosEval e;
  // Body effect: clamp the forward-bias case to keep sqrt well-defined.
  const double phi = model_.phi;
  const double sq_arg = std::max(phi - vbs, 0.02);
  const double dvth = model_.gamma * (std::sqrt(sq_arg) - std::sqrt(phi));
  const double vt0 = std::abs(model_.vt0);
  e.vth = vt0 + dvth;

  const double leff = std::max(length_ - 2.0 * model_.ld, 1e-8);
  const double beta = model_.kp * width_ / leff;
  const double vov = vgs - e.vth;
  const double lam = model_.lambda;
  const double dvth_dvbs = -model_.gamma / (2.0 * std::sqrt(sq_arg));

  if (vov <= 0.0) {
    e.region = MosEval::Region::kCutoff;
    // Hard cutoff; gmin shunts (added by the solver) keep the matrix regular.
    return e;
  }
  if (vds < vov) {
    e.region = MosEval::Region::kTriode;
    const double clm = 1.0 + lam * vds;
    e.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * (vov - vds) * clm +
            beta * (vov * vds - 0.5 * vds * vds) * lam;
  } else {
    e.region = MosEval::Region::kSaturation;
    const double clm = 1.0 + lam * vds;
    e.ids = 0.5 * beta * vov * vov * clm;
    e.gm = beta * vov * clm;
    e.gds = 0.5 * beta * vov * vov * lam;
  }
  // gmb = dIds/dvbs = (dIds/dvth)(dvth/dvbs) = (-gm)(dvth/dvbs).
  e.gmb = -e.gm * dvth_dvbs;
  return e;
}

MosEval Mosfet::evaluate_at(const std::vector<double>& x) const {
  return evaluate(v_at(x, d_), v_at(x, g_), v_at(x, s_), v_at(x, b_));
}

void Mosfet::stamp(Mna<double>& mna, const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const double vd = v_at(x, d_), vg = v_at(x, g_), vs = v_at(x, s_),
               vb = v_at(x, b_);
  const double p = model_.is_pmos ? -1.0 : 1.0;

  // Effective drain/source after symmetry swap (in actual node terms).
  const bool swapped = p * (vd - vs) < 0.0;
  const int nd = swapped ? s_ : d_;
  const int ns = swapped ? d_ : s_;
  const double vde = swapped ? vs : vd;
  const double vse = swapped ? vd : vs;

  const MosEval e = evaluate(vd, vg, vs, vb);

  // Conductance stamps are polarity-invariant (see header notes): the
  // current into the effective drain is
  //   I_D = gm*(vg - vse) + gds*(vde - vse) + gmb*(vb - vse) + Ieq
  // with Ieq = p*ids - gm*(vg-vse) - gds*(vde-vse) - gmb*(vb-vse).
  mna.add(nd, g_, e.gm);
  mna.add(nd, nd, e.gds);
  mna.add(nd, b_, e.gmb);
  mna.add(nd, ns, -(e.gm + e.gds + e.gmb));
  mna.add(ns, g_, -e.gm);
  mna.add(ns, nd, -e.gds);
  mna.add(ns, b_, -e.gmb);
  mna.add(ns, ns, e.gm + e.gds + e.gmb);

  const double ieq = p * e.ids - e.gm * (vg - vse) - e.gds * (vde - vse) -
                     e.gmb * (v_at(x, b_) - vse);
  mna.stamp_current(nd, ns, ieq);

  // gmin shunt keeps off devices from isolating nodes.
  if (args.gmin > 0.0) mna.stamp_conductance(d_, s_, args.gmin);

  // Meyer + junction capacitances, linear companions frozen at the last
  // committed solution (refreshed in commit()/init_state()).
  if (args.mode == AnalysisMode::kTransient) {
    for (std::size_t k = 0; k < caps_.size(); ++k) {
      stamp_cap_companion(mna, cap_nodes_[k].first, cap_nodes_[k].second,
                          caps_[k], args);
    }
  }
}

void Mosfet::stamp_cap_companion(Mna<double>& mna, int i, int j,
                                 const CapState& cs, const StampArgs& args) {
  if (cs.c <= 0.0) return;
  // Always backward Euler: see the CapState comment in the header.
  const double geq = cs.c / args.dt;
  mna.stamp_conductance(i, j, geq);
  mna.stamp_current(i, j, -geq * cs.v_prev);
}

std::array<double, 5> Mosfet::meyer_caps(const std::vector<double>& x) const {
  const MosEval e = evaluate_at(x);
  const double leff = std::max(length_ - 2.0 * model_.ld, 1e-8);
  const double cox_tot = model_.cox() * width_ * leff;
  const double ovl_s = model_.cgso * width_;
  const double ovl_d = model_.cgdo * width_;
  const double ovl_b = model_.cgbo * length_;
  const double cj = model_.cj * width_ * model_.ldiff;

  double cgs = ovl_s, cgd = ovl_d, cgb = ovl_b;
  switch (e.region) {
    case MosEval::Region::kCutoff:
      cgb += cox_tot;
      break;
    case MosEval::Region::kSaturation:
      cgs += (2.0 / 3.0) * cox_tot;
      break;
    case MosEval::Region::kTriode:
      cgs += 0.5 * cox_tot;
      cgd += 0.5 * cox_tot;
      break;
  }
  return {cgs, cgd, cgb, cj, cj};
}

void Mosfet::refresh_cap_values(const std::vector<double>& x) {
  const auto cs = meyer_caps(x);
  for (std::size_t k = 0; k < caps_.size(); ++k) caps_[k].c = cs[k];
}

void Mosfet::init_state(const std::vector<double>& op) {
  refresh_cap_values(op);
  for (std::size_t k = 0; k < caps_.size(); ++k) {
    caps_[k].v_prev =
        v_at(op, cap_nodes_[k].first) - v_at(op, cap_nodes_[k].second);
  }
}

void Mosfet::commit(const std::vector<double>& x, double, double) {
  for (std::size_t k = 0; k < caps_.size(); ++k) {
    caps_[k].v_prev =
        v_at(x, cap_nodes_[k].first) - v_at(x, cap_nodes_[k].second);
  }
  // Region may have changed: recompute Meyer values for the next step.
  refresh_cap_values(x);
}

void Mosfet::stamp_ac(Mna<std::complex<double>>& mna,
                      const std::vector<double>& op, double omega) const {
  using cd = std::complex<double>;
  const double vd = v_at(op, d_), vg = v_at(op, g_), vs = v_at(op, s_),
               vb = v_at(op, b_);
  const double p = model_.is_pmos ? -1.0 : 1.0;
  const bool swapped = p * (vd - vs) < 0.0;
  const int nd = swapped ? s_ : d_;
  const int ns = swapped ? d_ : s_;

  const MosEval e = evaluate(vd, vg, vs, vb);
  mna.add(nd, g_, cd{e.gm, 0.0});
  mna.add(nd, nd, cd{e.gds, 0.0});
  mna.add(nd, b_, cd{e.gmb, 0.0});
  mna.add(nd, ns, cd{-(e.gm + e.gds + e.gmb), 0.0});
  mna.add(ns, g_, cd{-e.gm, 0.0});
  mna.add(ns, nd, cd{-e.gds, 0.0});
  mna.add(ns, b_, cd{-e.gmb, 0.0});
  mna.add(ns, ns, cd{e.gm + e.gds + e.gmb, 0.0});

  const auto cs = meyer_caps(op);
  for (std::size_t k = 0; k < cs.size(); ++k) {
    if (cs[k] <= 0.0) continue;
    mna.stamp_conductance(cap_nodes_[k].first, cap_nodes_[k].second,
                          cd{0.0, omega * cs[k]});
  }
}

}  // namespace uwbams::spice
