#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "spice/devices.hpp"

namespace uwbams::spice {

Mosfet::Mosfet(std::string name, int d, int g, int s, int b, MosModel model,
               double width, double length)
    : Device(std::move(name)), d_(mna_index(d)), g_(mna_index(g)),
      s_(mna_index(s)), b_(mna_index(b)), model_(std::move(model)),
      width_(width), length_(length) {
  cap_nodes_ = {{{g_, s_}, {g_, d_}, {g_, b_}, {d_, b_}, {s_, b_}}};
  leff_ = std::max(length_ - 2.0 * model_.ld, 1e-8);
  beta_ = model_.kp * width_ / leff_;
  vt0_abs_ = std::abs(model_.vt0);
  sqrt_phi_ = std::sqrt(model_.phi);
  cox_tot_ = model_.cox() * width_ * leff_;
  ovl_s_ = model_.cgso * width_;
  ovl_d_ = model_.cgdo * width_;
  ovl_b_ = model_.cgbo * length_;
  cj_ = model_.cj * width_ * model_.ldiff;
}

void Mosfet::footprint(MnaPattern& pattern) const {
  // The conductance/current stamp couples all four terminals in either
  // drain/source orientation; the Meyer/junction companions and the gmin
  // shunt stay within the same 4x4 block.
  pattern.add_block({d_, g_, s_, b_});
}

MosEval Mosfet::evaluate(double vd, double vg, double vs, double vb) const {
  const double p = model_.is_pmos ? -1.0 : 1.0;
  // Flip into the NMOS-like frame.
  double vds = p * (vd - vs);
  double vgs = p * (vg - vs);
  double vbs = p * (vb - vs);
  // Symmetric device: if vds < 0 the roles of drain and source swap.
  if (vds < 0.0) {
    vds = -vds;
    vgs = p * (vg - vd);
    vbs = p * (vb - vd);
  }

  MosEval e;
  // Body effect: clamp the forward-bias case to keep sqrt well-defined.
  const double phi = model_.phi;
  const double sq_arg = std::max(phi - vbs, 0.02);
  const double dvth = model_.gamma * (std::sqrt(sq_arg) - sqrt_phi_);
  e.vth = vt0_abs_ + dvth;

  const double beta = beta_;
  const double vov = vgs - e.vth;
  const double lam = model_.lambda;
  const double dvth_dvbs = -model_.gamma / (2.0 * std::sqrt(sq_arg));

  if (vov <= 0.0) {
    e.region = MosEval::Region::kCutoff;
    // Hard cutoff; gmin shunts (added by the solver) keep the matrix regular.
    return e;
  }
  if (vds < vov) {
    e.region = MosEval::Region::kTriode;
    const double clm = 1.0 + lam * vds;
    e.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * (vov - vds) * clm +
            beta * (vov * vds - 0.5 * vds * vds) * lam;
  } else {
    e.region = MosEval::Region::kSaturation;
    const double clm = 1.0 + lam * vds;
    e.ids = 0.5 * beta * vov * vov * clm;
    e.gm = beta * vov * clm;
    e.gds = 0.5 * beta * vov * vov * lam;
  }
  // gmb = dIds/dvbs = (dIds/dvth)(dvth/dvbs) = (-gm)(dvth/dvbs).
  e.gmb = -e.gm * dvth_dvbs;
  return e;
}

MosEval Mosfet::evaluate_at(const std::vector<double>& x) const {
  return evaluate(v_at(x, d_), v_at(x, g_), v_at(x, s_), v_at(x, b_));
}

void Mosfet::stamp(Mna<double>& mna, const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const double vd = v_at(x, d_), vg = v_at(x, g_), vs = v_at(x, s_),
               vb = v_at(x, b_);
  const double p = model_.is_pmos ? -1.0 : 1.0;

  // Effective drain/source after symmetry swap (in actual node terms).
  // Direct sequential adds measure faster here than accumulating into a
  // local 4x4 block: the variable drain/source slots defeat register
  // allocation of the block and the flush branches mispredict.
  const bool swapped = p * (vd - vs) < 0.0;
  const int nd = swapped ? s_ : d_;
  const int ns = swapped ? d_ : s_;
  const double vde = swapped ? vs : vd;
  const double vse = swapped ? vd : vs;

  const MosEval e = evaluate(vd, vg, vs, vb);
  last_region_ = e.region;

  // Conductance stamps are polarity-invariant (see header notes): the
  // current into the effective drain is
  //   I_D = gm*(vg - vse) + gds*(vde - vse) + gmb*(vb - vse) + Ieq
  // with Ieq = p*ids - gm*(vg-vse) - gds*(vde-vse) - gmb*(vb-vse).
  mna.add(nd, g_, e.gm);
  mna.add(nd, nd, e.gds);
  mna.add(nd, b_, e.gmb);
  mna.add(nd, ns, -(e.gm + e.gds + e.gmb));
  mna.add(ns, g_, -e.gm);
  mna.add(ns, nd, -e.gds);
  mna.add(ns, b_, -e.gmb);
  mna.add(ns, ns, e.gm + e.gds + e.gmb);

  const double ieq = p * e.ids - e.gm * (vg - vse) - e.gds * (vde - vse) -
                     e.gmb * (vb - vse);
  mna.stamp_current(nd, ns, ieq);

  // gmin shunt keeps off devices from isolating nodes.
  if (args.gmin > 0.0) mna.stamp_conductance(d_, s_, args.gmin);

  // Meyer + junction capacitances, linear companions frozen at the last
  // committed solution (refreshed in commit()/init_state()). Always
  // backward Euler: see the CapState comment in the header.
  if (args.mode == AnalysisMode::kTransient) {
    for (std::size_t k = 0; k < caps_.size(); ++k) {
      const CapState& cs = caps_[k];
      if (cs.c <= 0.0) continue;
      const double geq = cs.c * args.inv_dt;
      const int i = cap_nodes_[k].first, j = cap_nodes_[k].second;
      mna.stamp_conductance(i, j, geq);
      mna.stamp_current(i, j, -geq * cs.v_prev);
    }
  }
}

double Mosfet::ids_effective(double vds, double vgs, double vbs,
                             MosEval::Region* region) const {
  const double sq_arg = std::max(model_.phi - vbs, 0.02);
  const double vth = vt0_abs_ + model_.gamma * (std::sqrt(sq_arg) - sqrt_phi_);
  const double vov = vgs - vth;
  if (vov <= 0.0) {
    *region = MosEval::Region::kCutoff;
    return 0.0;
  }
  const double clm = 1.0 + model_.lambda * vds;
  if (vds < vov) {
    *region = MosEval::Region::kTriode;
    return beta_ * (vov * vds - 0.5 * vds * vds) * clm;
  }
  *region = MosEval::Region::kSaturation;
  return 0.5 * beta_ * vov * vov * clm;
}

void Mosfet::residual(std::vector<double>& f, const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const double vd = v_at(x, d_), vg = v_at(x, g_), vs = v_at(x, s_),
               vb = v_at(x, b_);
  const double p = model_.is_pmos ? -1.0 : 1.0;
  double vds = p * (vd - vs);
  double vgs = p * (vg - vs);
  double vbs = p * (vb - vs);
  bool swapped = false;
  if (vds < 0.0) {
    vds = -vds;
    vgs = p * (vg - vd);
    vbs = p * (vb - vd);
    swapped = true;
  }
  const double id = p * ids_effective(vds, vgs, vbs, &last_region_);

  // Per-terminal accumulators (registers); one guarded flush at the end.
  double fd = swapped ? -id : id;
  double fs = swapped ? id : -id;
  double fg = 0.0, fb = 0.0;

  if (args.gmin > 0.0) {
    const double ig = args.gmin * (vd - vs);
    fd += ig;
    fs -= ig;
  }

  if (args.mode == AnalysisMode::kTransient) {
    // Cap pairs (g,s), (g,d), (g,b), (d,b), (s,b) read only the four
    // already-loaded terminal voltages.
    const double inv_dt = args.inv_dt;
    const CapState* cs = caps_.data();
    if (cs[0].c > 0.0) {
      const double ic = cs[0].c * inv_dt * (vg - vs - cs[0].v_prev);
      fg += ic;
      fs -= ic;
    }
    if (cs[1].c > 0.0) {
      const double ic = cs[1].c * inv_dt * (vg - vd - cs[1].v_prev);
      fg += ic;
      fd -= ic;
    }
    if (cs[2].c > 0.0) {
      const double ic = cs[2].c * inv_dt * (vg - vb - cs[2].v_prev);
      fg += ic;
      fb -= ic;
    }
    if (cs[3].c > 0.0) {
      const double ic = cs[3].c * inv_dt * (vd - vb - cs[3].v_prev);
      fd += ic;
      fb -= ic;
    }
    if (cs[4].c > 0.0) {
      const double ic = cs[4].c * inv_dt * (vs - vb - cs[4].v_prev);
      fs += ic;
      fb -= ic;
    }
  }

  if (d_ >= 0) f[static_cast<std::size_t>(d_)] += fd;
  if (g_ >= 0) f[static_cast<std::size_t>(g_)] += fg;
  if (s_ >= 0) f[static_cast<std::size_t>(s_)] += fs;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] += fb;
}

MosEval::Region Mosfet::region_at(const std::vector<double>& x) const {
  const double vd = v_at(x, d_), vg = v_at(x, g_), vs = v_at(x, s_),
               vb = v_at(x, b_);
  const double p = model_.is_pmos ? -1.0 : 1.0;
  double vds = p * (vd - vs);
  double vgs = p * (vg - vs);
  double vbs = p * (vb - vs);
  if (vds < 0.0) {
    vds = -vds;
    vgs = p * (vg - vd);
    vbs = p * (vb - vd);
  }
  const double sq_arg = std::max(model_.phi - vbs, 0.02);
  const double vth =
      vt0_abs_ + model_.gamma * (std::sqrt(sq_arg) - sqrt_phi_);
  const double vov = vgs - vth;
  if (vov <= 0.0) return MosEval::Region::kCutoff;
  return vds < vov ? MosEval::Region::kTriode : MosEval::Region::kSaturation;
}

std::array<double, 5> Mosfet::meyer_caps(const std::vector<double>& x) const {
  return caps_for_region(region_at(x));
}

std::array<double, 5> Mosfet::caps_for_region(MosEval::Region region) const {
  double cgs = ovl_s_, cgd = ovl_d_, cgb = ovl_b_;
  switch (region) {
    case MosEval::Region::kCutoff:
      cgb += cox_tot_;
      break;
    case MosEval::Region::kSaturation:
      cgs += (2.0 / 3.0) * cox_tot_;
      break;
    case MosEval::Region::kTriode:
      cgs += 0.5 * cox_tot_;
      cgd += 0.5 * cox_tot_;
      break;
  }
  return {cgs, cgd, cgb, cj_, cj_};
}

void Mosfet::refresh_cap_values(const std::vector<double>& x) {
  const auto cs = meyer_caps(x);
  for (std::size_t k = 0; k < caps_.size(); ++k) caps_[k].c = cs[k];
}

void Mosfet::init_state(const std::vector<double>& op) {
  last_region_ = region_at(op);
  refresh_cap_values(op);
  for (std::size_t k = 0; k < caps_.size(); ++k) {
    caps_[k].v_prev =
        v_at(op, cap_nodes_[k].first) - v_at(op, cap_nodes_[k].second);
  }
}

void Mosfet::commit(const std::vector<double>& x, double, double) {
  const double vd = v_at(x, d_), vg = v_at(x, g_), vs = v_at(x, s_),
               vb = v_at(x, b_);
  // cap_nodes_ order: (g,s), (g,d), (g,b), (d,b), (s,b).
  caps_[0].v_prev = vg - vs;
  caps_[1].v_prev = vg - vd;
  caps_[2].v_prev = vg - vb;
  caps_[3].v_prev = vd - vb;
  caps_[4].v_prev = vs - vb;
  // Region may have changed: recompute Meyer values for the next step. In
  // fused-commit mode the region recorded by the last evaluation stands in
  // for region_at(x) — see set_fused_commit() in the header.
  if (fused_commit_) {
    const auto cs = caps_for_region(last_region_);
    for (std::size_t k = 0; k < caps_.size(); ++k) caps_[k].c = cs[k];
  } else {
    refresh_cap_values(x);
  }
}

void Mosfet::stamp_ac(Mna<std::complex<double>>& mna,
                      const std::vector<double>& op, double omega) const {
  using cd = std::complex<double>;
  const double vd = v_at(op, d_), vg = v_at(op, g_), vs = v_at(op, s_),
               vb = v_at(op, b_);
  const double p = model_.is_pmos ? -1.0 : 1.0;
  const bool swapped = p * (vd - vs) < 0.0;
  const int nd = swapped ? s_ : d_;
  const int ns = swapped ? d_ : s_;

  const MosEval e = evaluate(vd, vg, vs, vb);
  mna.add(nd, g_, cd{e.gm, 0.0});
  mna.add(nd, nd, cd{e.gds, 0.0});
  mna.add(nd, b_, cd{e.gmb, 0.0});
  mna.add(nd, ns, cd{-(e.gm + e.gds + e.gmb), 0.0});
  mna.add(ns, g_, cd{-e.gm, 0.0});
  mna.add(ns, nd, cd{-e.gds, 0.0});
  mna.add(ns, b_, cd{-e.gmb, 0.0});
  mna.add(ns, ns, cd{e.gm + e.gds + e.gmb, 0.0});

  const auto cs = meyer_caps(op);
  for (std::size_t k = 0; k < cs.size(); ++k) {
    if (cs[k] <= 0.0) continue;
    mna.stamp_conductance(cap_nodes_[k].first, cap_nodes_[k].second,
                          cd{0.0, omega * cs[k]});
  }
}

}  // namespace uwbams::spice
