/// @file circuit.hpp
/// @brief Netlist container for the transistor-level simulator.
///
/// A Circuit owns a set of Devices connected at named nodes. Node 0 is
/// ground ("0" or "gnd"). After construction, prepare() assigns each
/// non-ground node a matrix index and each branch-current device (voltage
/// sources, inductors, VCVS) extra unknowns, defining the MNA system:
///
///   unknowns = [ v(node 1..N-1), i(branch 0..B-1) ]
///
/// This module plays the role ELDO plays in the paper: the authors import a
/// "Spice-like netlist" of one block into the system simulation; here the
/// same netlist is solved by spice::TransientSession (see transient.hpp) and
/// wrapped by ams::SpiceBridge.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/device.hpp"

namespace uwbams::spice {

using NodeId = int;  ///< 0 is ground

class Circuit {
 public:
  Circuit();
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;

  /// Returns the node id for `name`, creating it if needed. "0", "gnd" and
  /// "GND" all map to ground. Names are case-insensitive.
  NodeId node(const std::string& name);
  /// Returns the node id, or -1 if no such node exists (never creates).
  NodeId find_node(const std::string& name) const;
  NodeId ground() const { return 0; }
  std::size_t node_count() const { return node_names_.size(); }
  const std::string& node_name(NodeId n) const { return node_names_.at(static_cast<std::size_t>(n)); }

  /// Takes ownership of a device; returns a reference to it. Device names
  /// must be unique (case-insensitive).
  Device& add_device(std::unique_ptr<Device> dev);

  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    add_device(std::move(dev));
    return ref;
  }

  Device* find_device(const std::string& name);
  const Device* find_device(const std::string& name) const;
  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  std::size_t device_count() const { return devices_.size(); }
  /// Count devices whose name starts with the given prefix (case-insensitive);
  /// used e.g. to assert the integrate-and-dump cell has exactly 31 MOSFETs.
  std::size_t count_devices_with_prefix(const std::string& prefix) const;

  /// Assigns matrix indices, collects the union of all device stamp
  /// footprints and caches circuit linearity. Must be called after the last
  /// topology change and before any analysis. Safe to call repeatedly.
  void prepare();
  bool prepared() const { return prepared_; }

  /// Number of MNA unknowns (node voltages + branch currents).
  std::size_t unknown_count() const { return unknown_count_; }
  std::size_t branch_count() const { return branch_count_; }

  /// Union of every device's declared stamp footprint; null before
  /// prepare(). Shared so analysis workspaces can outlive prepare() calls.
  std::shared_ptr<const MnaPattern> stamp_pattern() const { return pattern_; }
  /// True when no device is nonlinear — transient analysis then solves each
  /// step with a single cached factorization and no Newton iteration.
  bool linear() const { return linear_; }
  /// True when every device implements Device::residual(), enabling the
  /// chord (lazy-Jacobian) transient iterations.
  bool residual_capable() const { return residual_capable_; }

  /// Matrix index of a node: -1 for ground, otherwise in [0, N-2].
  int node_index(NodeId n) const { return static_cast<int>(n) - 1; }

  /// Solution accessor: voltage of node `n` in an MNA solution vector.
  double voltage_in(const std::vector<double>& x, NodeId n) const;

 private:
  static std::string normalize(const std::string& s);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, std::size_t> device_ids_;
  std::size_t unknown_count_ = 0;
  std::size_t branch_count_ = 0;
  std::shared_ptr<MnaPattern> pattern_;
  bool linear_ = true;
  bool residual_capable_ = true;
  bool prepared_ = false;
};

}  // namespace uwbams::spice
