/// @file engine_counters.hpp
/// @brief Process-wide simulation-engine performance counters.
///
/// Every TransientSession flushes its TransientStats here on destruction
/// and solve_op() reports each operating-point solve, so a scenario's total
/// engine work can be read as a snapshot delta without threading stats
/// through every layer (sessions are buried inside receivers inside sweep
/// tasks). The runner CLI wraps each scenario in two snapshots and emits
/// the difference as the `perf` block of summary.json.
///
/// All counters are atomics: sweep workers update them concurrently.
#pragma once

#include <cstdint>

namespace uwbams::spice {

struct TransientStats;

/// Monotonic totals since process start.
struct EngineCounterSnapshot {
  std::uint64_t sessions = 0;            ///< TransientSessions retired
  std::uint64_t steps = 0;               ///< committed transient steps
  std::uint64_t accepted_steps = 0;      ///< accepted step attempts
  std::uint64_t rejected_steps = 0;      ///< rejected attempts (LTE or Newton)
  std::uint64_t fallback_steps = 0;      ///< BE / sub-step rescues
  std::uint64_t newton_iterations = 0;   ///< transient Newton iterations
  std::uint64_t factorizations = 0;      ///< fresh partial-pivot LU factors
  std::uint64_t refactorizations = 0;    ///< pivot-order-reusing refactors
  std::uint64_t solves = 0;              ///< forward/back substitutions
  std::uint64_t singular_failures = 0;   ///< solves hitting a singular matrix
  std::uint64_t nonconverged_failures = 0;  ///< Newton iteration-cap hits
  std::uint64_t op_solves = 0;           ///< operating-point solves
  std::uint64_t op_iterations = 0;       ///< operating-point Newton iterations
};

namespace engine_counters {

/// Current totals (coherent enough for before/after deltas; individual
/// counters are read with relaxed ordering).
EngineCounterSnapshot snapshot();

/// Accumulates a finished session's stats. Called by ~TransientSession().
void add_transient(const TransientStats& stats);

/// Records one operating-point solve of `iterations` Newton iterations.
void add_op(int iterations);

}  // namespace engine_counters

}  // namespace uwbams::spice
