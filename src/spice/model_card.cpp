#include "spice/model_card.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace uwbams::spice {

double MosModel::cox() const {
  constexpr double eps_ox = 3.9 * 8.854e-12;  // SiO2 permittivity [F/m]
  return eps_ox / tox;
}

MosModel builtin_model(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  MosModel m;
  if (key == "nmos") {
    m.name = "nmos";
    m.is_pmos = false;
    m.vt0 = 0.45;
    m.kp = 280e-6;
    m.lambda = 0.08;
  } else if (key == "pmos") {
    m.name = "pmos";
    m.is_pmos = true;
    m.vt0 = -0.48;
    m.kp = 90e-6;
    m.gamma = 0.40;
    m.lambda = 0.10;
  } else if (key == "nmos_lv") {
    // Low-threshold NMOS: larger overdrive at the same bias; used in the
    // integrator input stage per the paper's LV device choice.
    m.name = "nmos_lv";
    m.is_pmos = false;
    m.vt0 = 0.25;
    m.kp = 290e-6;
    m.lambda = 0.08;
    m.cj = 0.5e-3;  // lighter LDD junctions on the LV flavor
  } else if (key == "pmos_lv") {
    m.name = "pmos_lv";
    m.is_pmos = true;
    m.vt0 = -0.28;
    m.kp = 95e-6;
    m.gamma = 0.40;
    m.lambda = 0.10;
  } else {
    throw std::invalid_argument("builtin_model: unknown model '" + name + "'");
  }
  return m;
}

}  // namespace uwbams::spice
