#include "spice/model_card.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "base/random.hpp"

namespace uwbams::spice {

double MosModel::cox() const {
  constexpr double eps_ox = 3.9 * 8.854e-12;  // SiO2 permittivity [F/m]
  return eps_ox / tox;
}

MosModel builtin_model(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  MosModel m;
  if (key == "nmos") {
    m.name = "nmos";
    m.is_pmos = false;
    m.vt0 = 0.45;
    m.kp = 280e-6;
    m.lambda = 0.08;
  } else if (key == "pmos") {
    m.name = "pmos";
    m.is_pmos = true;
    m.vt0 = -0.48;
    m.kp = 90e-6;
    m.gamma = 0.40;
    m.lambda = 0.10;
  } else if (key == "nmos_lv") {
    // Low-threshold NMOS: larger overdrive at the same bias; used in the
    // integrator input stage per the paper's LV device choice.
    m.name = "nmos_lv";
    m.is_pmos = false;
    m.vt0 = 0.25;
    m.kp = 290e-6;
    m.lambda = 0.08;
    m.cj = 0.5e-3;  // lighter LDD junctions on the LV flavor
  } else if (key == "pmos_lv") {
    m.name = "pmos_lv";
    m.is_pmos = true;
    m.vt0 = -0.28;
    m.kp = 95e-6;
    m.gamma = 0.40;
    m.lambda = 0.10;
  } else {
    throw std::invalid_argument("builtin_model: unknown model '" + name + "'");
  }
  return m;
}

// ---------------------------------------------------------------------------
// Corners and mismatch.
// ---------------------------------------------------------------------------

const char* to_string(Corner corner) {
  switch (corner) {
    case Corner::kTT: return "TT";
    case Corner::kFF: return "FF";
    case Corner::kSS: return "SS";
    case Corner::kFS: return "FS";
    case Corner::kSF: return "SF";
  }
  return "TT";
}

bool parse_corner(const std::string& text, Corner* out) {
  std::string key = text;
  std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  if (key == "TT") *out = Corner::kTT;
  else if (key == "FF") *out = Corner::kFF;
  else if (key == "SS") *out = Corner::kSS;
  else if (key == "FS") *out = Corner::kFS;
  else if (key == "SF") *out = Corner::kSF;
  else return false;
  return true;
}

const Corner* all_corners(std::size_t* count) {
  static const Corner kCorners[] = {Corner::kTT, Corner::kFF, Corner::kSS,
                                    Corner::kFS, Corner::kSF};
  *count = sizeof kCorners / sizeof kCorners[0];
  return kCorners;
}

namespace {

// Device speed at a corner: +1 fast, -1 slow, 0 typical.
int corner_speed(Corner corner, bool is_pmos) {
  switch (corner) {
    case Corner::kTT: return 0;
    case Corner::kFF: return +1;
    case Corner::kSS: return -1;
    case Corner::kFS: return is_pmos ? -1 : +1;
    case Corner::kSF: return is_pmos ? +1 : -1;
  }
  return 0;
}

// Stable 64-bit FNV-1a over the device name: the mismatch sub-stream id
// must not depend on std::hash, whose value for a given string is
// implementation-defined. (The gaussian draws themselves go through
// std::normal_distribution, so full bit-stability is still only
// guaranteed per standard library — but the stream *layout* never is the
// reason two builds disagree.)
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool ModelVariation::is_nominal() const {
  return corner == Corner::kTT && temp_c == 27.0 && sigma_scale == 0.0;
}

MosModel ModelVariation::apply(const MosModel& base, const std::string& device,
                               double w, double l) const {
  if (is_nominal()) return base;

  MosModel m = base;
  const double sign = m.is_pmos ? -1.0 : 1.0;  // direction of |vt0| growth

  // 1. Process corner: threshold and transconductance move together.
  const int speed = corner_speed(corner, m.is_pmos);
  m.vt0 -= sign * corner_dvt * speed;
  m.kp *= 1.0 + corner_dkp * speed;

  // 2. Temperature: mobility ~ (T/T0)^-1.5, |vt0| drops 1.5 mV/K.
  constexpr double kT0 = 300.15;  // 27 C reference [K]
  const double t_k = temp_c + 273.15;
  m.kp *= std::pow(t_k / kT0, -1.5);
  m.vt0 -= sign * 1.5e-3 * (temp_c - 27.0);

  // 3. Per-device Gaussian mismatch with Pelgrom area scaling. The draw
  //    order (vt0 first, then kp) is part of the determinism contract.
  if (sigma_scale != 0.0) {
    base::Rng rng(base::derive_seed(mismatch_seed, fnv1a(device)));
    const double root_area = std::sqrt(w * l);
    const double sigma_vt = sigma_scale * pelgrom_avt / root_area;
    const double sigma_kp = sigma_scale * pelgrom_akp / root_area;
    m.vt0 += rng.gaussian(0.0, sigma_vt);
    // Clamp the relative kp draw so an extreme tail cannot flip the sign.
    m.kp *= std::max(0.2, 1.0 + rng.gaussian(0.0, sigma_kp));
  }
  return m;
}

}  // namespace uwbams::spice
