// devices.hpp — linear and source devices: R, C, L, V, I, VCVS, VCCS.
//
// Node connections are stored as MNA matrix indices (node id - 1; ground is
// -1). Dynamic devices keep trapezoidal/backward-Euler companion history that
// is updated by commit() after each accepted time step.
#pragma once

#include <string>
#include <vector>

#include "spice/device.hpp"

namespace uwbams::spice {

// Converts a NodeId to an MNA matrix index.
inline int mna_index(int node_id) { return node_id - 1; }

class Resistor final : public Device {
 public:
  Resistor(std::string name, int n1, int n2, double ohms);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  double resistance() const { return ohms_; }
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  double ohms_;
};

class Capacitor final : public Device {
 public:
  Capacitor(std::string name, int n1, int n2, double farads);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  void init_state(const std::vector<double>& op) override;
  void commit(const std::vector<double>& x, double t, double dt) override;
  double capacitance() const { return farads_; }
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  double farads_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

class Inductor final : public Device {
 public:
  Inductor(std::string name, int n1, int n2, double henries);
  int branches() const override { return 1; }
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  void init_state(const std::vector<double>& op) override;
  void commit(const std::vector<double>& x, double t, double dt) override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  double henries_;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

// Time-dependent source waveform: DC, PULSE, SIN, PWL — the subset of SPICE
// source shapes the testbenches need. An external override (used by the AMS
// co-simulation bridge) takes precedence over the waveform when engaged.
class Waveform {
 public:
  static Waveform dc(double v);
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period);
  static Waveform sine(double offset, double amplitude, double freq,
                       double delay = 0.0);
  static Waveform pwl(std::vector<double> times, std::vector<double> values);

  double value(double t) const;
  double dc_value() const { return value(0.0); }

 private:
  enum class Kind { kDc, kPulse, kSin, kPwl };
  Kind kind_ = Kind::kDc;
  // dc / pulse / sin parameters (interpretation depends on kind).
  double p_[7] = {0, 0, 0, 0, 0, 0, 0};
  std::vector<double> pwl_t_, pwl_v_;
};

class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, int n1, int n2, Waveform wf,
                double ac_mag = 0.0, double ac_phase_deg = 0.0);
  int branches() const override { return 1; }
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;

  // External drive used by the AMS co-simulation bridge: once set, the
  // override value replaces the waveform until clear_override().
  void set_override(double v) {
    override_ = v;
    has_override_ = true;
  }
  void clear_override() { has_override_ = false; }
  double value(double t) const;
  // Branch current in a solution vector (positive current flows from the +
  // node through the source to the - node).
  double current_in(const std::vector<double>& x) const;
  void set_ac(double mag, double phase_deg) {
    ac_mag_ = mag;
    ac_phase_deg_ = phase_deg;
  }
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  Waveform wf_;
  double ac_mag_;
  double ac_phase_deg_;
  double override_ = 0.0;
  bool has_override_ = false;
};

class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, int n1, int n2, Waveform wf,
                double ac_mag = 0.0);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  Waveform wf_;
  double ac_mag_;
};

// Voltage-controlled voltage source: v(a,b) = gain * v(ca, cb).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, int n1, int n2, int nc1, int nc2, double gain);
  int branches() const override { return 1; }
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_, ca_, cb_;
  double gain_;
};

// Voltage-controlled current source: i(a->b) = gm * v(ca, cb).
class Vccs final : public Device {
 public:
  Vccs(std::string name, int n1, int n2, int nc1, int nc2, double gm);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_, ca_, cb_;
  double gm_;
};

}  // namespace uwbams::spice
