/// @file devices.hpp
/// @brief Linear and source devices: R, C, L, V, I, VCVS, VCCS.
///
/// Node connections are stored as MNA matrix indices (node id - 1; ground
/// is -1). Dynamic devices keep trapezoidal/backward-Euler companion
/// history that is updated by commit() after each accepted time step.
/// Every device declares its exact stamp footprint for the structure-locked
/// fast path.
#pragma once

#include <string>
#include <vector>

#include "spice/device.hpp"

namespace uwbams::spice {

/// Converts a NodeId to an MNA matrix index (-1 = ground).
inline int mna_index(int node_id) { return node_id - 1; }

/// Ideal linear resistor.
class Resistor final : public Device {
 public:
  /// Resistor of `ohms` ohms between nodes n1 and n2 (NodeIds).
  /// @throws std::invalid_argument when ohms <= 0.
  Resistor(std::string name, int n1, int n2, double ohms);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  /// Resistance [ohm].
  double resistance() const { return ohms_; }
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  double ohms_;
  double g_;  // precomputed 1/ohms, the per-stamp value
};

/// Ideal linear capacitor (trapezoidal/BE companion in transient).
class Capacitor final : public Device {
 public:
  /// Capacitor of `farads` farads between nodes n1 and n2 (NodeIds).
  /// @throws std::invalid_argument when farads <= 0.
  Capacitor(std::string name, int n1, int n2, double farads);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  void init_state(const std::vector<double>& op) override;
  void commit(const std::vector<double>& x, double t, double dt) override;
  /// Capacitance [F].
  double capacitance() const { return farads_; }
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  double farads_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Ideal linear inductor (one branch-current unknown).
class Inductor final : public Device {
 public:
  /// Inductor of `henries` henries between nodes n1 and n2 (NodeIds).
  /// @throws std::invalid_argument when henries <= 0.
  Inductor(std::string name, int n1, int n2, double henries);
  int branches() const override { return 1; }
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  void init_state(const std::vector<double>& op) override;
  void commit(const std::vector<double>& x, double t, double dt) override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  double henries_;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

/// Time-dependent source waveform: DC, PULSE, SIN, PWL — the subset of
/// SPICE source shapes the testbenches need. An external override (used by
/// the AMS co-simulation bridge) takes precedence over the waveform when
/// engaged.
class Waveform {
 public:
  /// Constant value v [V or A].
  static Waveform dc(double v);
  /// SPICE PULSE(v1 v2 delay rise fall width period); times in seconds.
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period);
  /// SPICE SIN(offset amplitude freq) with optional start delay [s].
  static Waveform sine(double offset, double amplitude, double freq,
                       double delay = 0.0);
  /// Piecewise-linear waveform through (times[i], values[i]).
  /// @throws std::invalid_argument on an empty or mismatched point list.
  static Waveform pwl(std::vector<double> times, std::vector<double> values);

  /// Waveform value at time t [s].
  double value(double t) const;
  /// Value at t = 0 (the DC operating-point drive).
  double dc_value() const { return value(0.0); }
  /// Earliest slope discontinuity strictly after t [s], or +inf. PULSE
  /// reports its edge corners (periodically), PWL its corner times; DC and
  /// SIN are smooth. Used for event-aligned adaptive stepping.
  double next_edge(double t) const;

 private:
  enum class Kind { kDc, kPulse, kSin, kPwl };
  Kind kind_ = Kind::kDc;
  // dc / pulse / sin parameters (interpretation depends on kind).
  double p_[7] = {0, 0, 0, 0, 0, 0, 0};
  std::vector<double> pwl_t_, pwl_v_;
};

/// Independent voltage source (one branch-current unknown).
class VoltageSource final : public Device {
 public:
  /// Voltage source from n1 (+) to n2 (-) driven by `wf`, with optional
  /// small-signal AC stimulus (magnitude [V], phase [deg]).
  VoltageSource(std::string name, int n1, int n2, Waveform wf,
                double ac_mag = 0.0, double ac_phase_deg = 0.0);
  int branches() const override { return 1; }
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;

  /// External drive used by the AMS co-simulation bridge: once set, the
  /// override value replaces the waveform until clear_override().
  void set_override(double v) {
    override_ = v;
    has_override_ = true;
  }
  /// Re-engages the waveform after an override.
  void clear_override() { has_override_ = false; }
  /// Effective drive value at time t [s] (override wins over waveform).
  double value(double t) const;
  /// Branch current in a solution vector (positive current flows from the +
  /// node through the source to the - node).
  double current_in(const std::vector<double>& x) const;
  /// Sets the small-signal AC stimulus (magnitude [V], phase [deg]).
  void set_ac(double mag, double phase_deg) {
    ac_mag_ = mag;
    ac_phase_deg_ = phase_deg;
  }
  double next_break(double t) const override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  Waveform wf_;
  double ac_mag_;
  double ac_phase_deg_;
  double override_ = 0.0;
  bool has_override_ = false;
};

/// Independent current source (no extra unknowns).
class CurrentSource final : public Device {
 public:
  /// Current source pushing `wf` amps from n1 into n2.
  CurrentSource(std::string name, int n1, int n2, Waveform wf,
                double ac_mag = 0.0);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  double next_break(double t) const override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_;
  Waveform wf_;
  double ac_mag_;
};

/// Voltage-controlled voltage source: v(a,b) = gain * v(ca, cb).
class Vcvs final : public Device {
 public:
  /// VCVS across (n1, n2) controlled by v(nc1) - v(nc2).
  Vcvs(std::string name, int n1, int n2, int nc1, int nc2, double gain);
  int branches() const override { return 1; }
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_, ca_, cb_;
  double gain_;
};

/// Voltage-controlled current source: i(a->b) = gm * v(ca, cb).
class Vccs final : public Device {
 public:
  /// VCCS from n1 into n2 controlled by v(nc1) - v(nc2), transconductance
  /// gm [S].
  Vccs(std::string name, int n1, int n2, int nc1, int nc2, double gm);
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  std::string card(const Circuit& circuit) const override;

 private:
  int a_, b_, ca_, cb_;
  double gm_;
};

}  // namespace uwbams::spice
