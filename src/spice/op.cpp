#include "spice/op.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "spice/engine_counters.hpp"

namespace uwbams::spice {

namespace {

// One damped Newton solve at fixed (gmin, source_scale). Returns true on
// convergence; x is updated in place with the best iterate either way.
bool newton_solve(Circuit& ckt, std::vector<double>& x, double gmin,
                  double source_scale, const OpOptions& opts, int& iters_out) {
  const std::size_t n = ckt.unknown_count();
  Mna<double> mna(n);
  StampArgs args;
  args.mode = AnalysisMode::kOp;
  args.gmin = gmin;
  args.source_scale = source_scale;
  args.x = &x;

  for (int it = 0; it < opts.max_iterations; ++it) {
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp(mna, args);
    std::vector<double> x_new;
    try {
      x_new = linalg::solve(mna.matrix(), mna.rhs());
    } catch (const std::runtime_error&) {
      iters_out = it + 1;
      return false;  // singular at this homotopy point
    }

    // Damped update + convergence check.
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      max_delta = std::max(max_delta, std::abs(x_new[i] - x[i]));
    double alpha = 1.0;
    if (max_delta > opts.damping) alpha = opts.damping / max_delta;
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = x_new[i] - x[i];
      if (std::abs(delta) > opts.vabstol + opts.reltol * std::abs(x_new[i]))
        converged = false;
      x[i] += alpha * delta;
    }
    if (converged && alpha == 1.0) {
      iters_out = it + 1;
      return true;
    }
  }
  iters_out = opts.max_iterations;
  return false;
}

bool has_nonlinear(const Circuit& ckt) {
  for (const auto& d : ckt.devices())
    if (d->nonlinear()) return true;
  return false;
}

}  // namespace

OpResult solve_op(Circuit& circuit, const OpOptions& options) {
  circuit.prepare();
  OpResult res;
  res.x.assign(circuit.unknown_count(), 0.0);
  if (!options.initial_guess.empty() &&
      options.initial_guess.size() == res.x.size())
    res.x = options.initial_guess;

  // Linear circuits: one Newton iteration is exact.
  OpOptions opts = options;
  if (!has_nonlinear(circuit)) opts.max_iterations = std::max(2, 2);

  int iters = 0;
  if (newton_solve(circuit, res.x, options.gmin, 1.0, options, iters)) {
    res.converged = true;
    res.iterations = iters;
    res.strategy = "newton";
    engine_counters::add_op(iters);
    return res;
  }

  // Gmin stepping: start heavily shunted, relax towards the target gmin.
  {
    std::vector<double> x(circuit.unknown_count(), 0.0);
    bool ok = true;
    for (double g = 1e-2; g >= options.gmin * 0.99; g *= 0.1) {
      if (!newton_solve(circuit, x, g, 1.0, options, iters)) {
        ok = false;
        break;
      }
    }
    if (ok && newton_solve(circuit, x, options.gmin, 1.0, options, iters)) {
      res.x = x;
      res.converged = true;
      res.iterations = iters;
      res.strategy = "gmin-stepping";
      engine_counters::add_op(iters);
      return res;
    }
  }

  // Source stepping: ramp independent sources from 0 to full value.
  {
    std::vector<double> x(circuit.unknown_count(), 0.0);
    bool ok = true;
    for (double s = 0.1; s <= 1.0001; s += 0.1) {
      // Keep a moderately large gmin during the ramp for robustness.
      if (!newton_solve(circuit, x, std::max(options.gmin, 1e-9),
                        std::min(s, 1.0), options, iters)) {
        ok = false;
        break;
      }
    }
    if (ok && newton_solve(circuit, x, options.gmin, 1.0, options, iters)) {
      res.x = x;
      res.converged = true;
      res.iterations = iters;
      res.strategy = "source-stepping";
      engine_counters::add_op(iters);
      return res;
    }
  }

  res.converged = false;
  res.strategy = "failed";
  engine_counters::add_op(iters);
  return res;
}

}  // namespace uwbams::spice
