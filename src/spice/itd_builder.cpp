#include "spice/itd_builder.hpp"

#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace uwbams::spice {

ItdTerminals build_integrate_and_dump(Circuit& ckt, const ItdSizing& sz) {
  ItdTerminals t;
  // Interface nodes (paper terminal names).
  t.inp = ckt.node("Inp");
  t.inm = ckt.node("Inm");
  t.controlp = ckt.node("Controlp");
  t.controlm = ckt.node("Controlm");
  t.vdd = ckt.node("Vdd");
  t.out_intp = ckt.node("Out_intp");
  t.out_intm = ckt.node("Out_intm");
  const NodeId gnd = ckt.ground();

  // Internal nodes.
  const NodeId na = ckt.node("na");        // follower source, p side
  const NodeId nb = ckt.node("nb");        // follower source, m side
  const NodeId nd1 = ckt.node("nd1");      // pMOS diode node, p side
  const NodeId nd2 = ckt.node("nd2");      // pMOS diode node, m side
  const NodeId nx1 = ckt.node("nx1");      // nMOS second-mirror diode, p side
  const NodeId nx2 = ckt.node("nx2");      // nMOS second-mirror diode, m side
  t.outp = ckt.node("Outp");               // OTA output (before switches)
  t.outm = ckt.node("Outm");
  const NodeId ncm = ckt.node("ncm");      // CMFB sense midpoint
  const NodeId nt = ckt.node("nt");        // CMFB pair tail
  const NodeId ne1 = ckt.node("ne1");      // CMFB load diode, input side
  const NodeId vcmfb = ckt.node("Vcmfb");  // CMFB control voltage
  const NodeId vbias1 = ckt.node("Vbias1");
  const NodeId vref = ckt.node("Vref");
  const NodeId nrefm = ckt.node("nrefmid");
  const NodeId ctrlpb = ckt.node("ctrlp_bar");

  // Every device gets its own card: the sizing's ModelVariation folds the
  // process corner, temperature and the device's mismatch draw into the
  // builtin card. At the nominal variation this returns the builtin card
  // unchanged, so the unvaried cell is bit-identical to the historical one.
  const MosModel nmos_base = builtin_model("nmos");
  const MosModel pmos_base = builtin_model("pmos");
  const MosModel nmos_lv_base = builtin_model("nmos_lv");
  auto nmos = [&](const char* dev, double w, double l) {
    return sz.variation.apply(nmos_base, dev, w, l);
  };
  auto pmos = [&](const char* dev, double w, double l) {
    return sz.variation.apply(pmos_base, dev, w, l);
  };
  auto nmos_lv = [&](const char* dev, double w, double l) {
    return sz.variation.apply(nmos_lv_base, dev, w, l);
  };

  // --- Transconductance amplifier -----------------------------------------
  // Input source followers (LV for overdrive headroom; aspect ratio ~20).
  ckt.add<Mosfet>("M1", nd1, t.inp, na, gnd, nmos_lv("M1", sz.w_in, sz.l_in), sz.w_in, sz.l_in);
  ckt.add<Mosfet>("M2", nd2, t.inm, nb, gnd, nmos_lv("M2", sz.w_in, sz.l_in), sz.w_in, sz.l_in);
  // Follower current sinks (Vbias1).
  ckt.add<Mosfet>("M3", na, vbias1, gnd, gnd, nmos("M3", sz.w_sink, sz.l_sink), sz.w_sink, sz.l_sink);
  ckt.add<Mosfet>("M4", nb, vbias1, gnd, gnd, nmos("M4", sz.w_sink, sz.l_sink), sz.w_sink, sz.l_sink);
  // Degeneration resistor: differential input current i = vin_d * Gm_in.
  ckt.add<Resistor>("Rdeg", na, nb, sz.r_deg);
  // pMOS mirror diodes.
  ckt.add<Mosfet>("M5", nd1, nd1, t.vdd, t.vdd, pmos("M5", sz.w_pdiode, sz.l_pdiode), sz.w_pdiode, sz.l_pdiode);
  ckt.add<Mosfet>("M6", nd2, nd2, t.vdd, t.vdd, pmos("M6", sz.w_pdiode, sz.l_pdiode), sz.w_pdiode, sz.l_pdiode);
  // Direct 2x mirrors to the opposite outputs.
  ckt.add<Mosfet>("M7", t.outm, nd1, t.vdd, t.vdd, pmos("M7", sz.w_pmir2, sz.l_pdiode), sz.w_pmir2, sz.l_pdiode);
  ckt.add<Mosfet>("M8", t.outp, nd2, t.vdd, t.vdd, pmos("M8", sz.w_pmir2, sz.l_pdiode), sz.w_pmir2, sz.l_pdiode);
  // Second path: unit pMOS mirror -> nMOS diode -> 1.8x nMOS sink.
  ckt.add<Mosfet>("M9", nx1, nd1, t.vdd, t.vdd, pmos("M9", sz.w_pmir1, sz.l_pdiode), sz.w_pmir1, sz.l_pdiode);
  ckt.add<Mosfet>("M10", nx1, nx1, gnd, gnd, nmos("M10", sz.w_ndiode, sz.l_ndiode), sz.w_ndiode, sz.l_ndiode);
  ckt.add<Mosfet>("M11", t.outp, nx1, gnd, gnd, nmos("M11", sz.w_nmir, sz.l_ndiode), sz.w_nmir, sz.l_ndiode);
  ckt.add<Mosfet>("M12", nx2, nd2, t.vdd, t.vdd, pmos("M12", sz.w_pmir1, sz.l_pdiode), sz.w_pmir1, sz.l_pdiode);
  ckt.add<Mosfet>("M13", nx2, nx2, gnd, gnd, nmos("M13", sz.w_ndiode, sz.l_ndiode), sz.w_ndiode, sz.l_ndiode);
  ckt.add<Mosfet>("M14", t.outm, nx2, gnd, gnd, nmos("M14", sz.w_nmir, sz.l_ndiode), sz.w_nmir, sz.l_ndiode);

  // --- Common-mode feedback ------------------------------------------------
  ckt.add<Resistor>("Rs1", t.outp, ncm, sz.r_sense);
  ckt.add<Resistor>("Rs2", t.outm, ncm, sz.r_sense);
  // Resistive CM anchor: the sense midpoint alone conducts no common-mode
  // current, leaving the output CM to recover only through device gds
  // (~20 ns) after switching injection; tying it to Vref makes the dump
  // complete within the reset window.
  ckt.add<Resistor>("Rcm", ncm, vref, sz.r_cm_anchor);
  ckt.add<Resistor>("Rtail", t.vdd, nt, sz.r_tail);
  ckt.add<Mosfet>("M15", ne1, ncm, nt, t.vdd, pmos("M15", sz.w_cm_pair, sz.l_cm_pair), sz.w_cm_pair, sz.l_cm_pair);
  ckt.add<Mosfet>("M16", vcmfb, vref, nt, t.vdd, pmos("M16", sz.w_cm_pair, sz.l_cm_pair), sz.w_cm_pair, sz.l_cm_pair);
  ckt.add<Mosfet>("M17", ne1, ne1, gnd, gnd, nmos("M17", sz.w_cm_diode, sz.l_cm_diode), sz.w_cm_diode, sz.l_cm_diode);
  ckt.add<Mosfet>("M18", vcmfb, vcmfb, gnd, gnd, nmos("M18", sz.w_cm_diode, sz.l_cm_diode), sz.w_cm_diode, sz.l_cm_diode);
  // Correction sinks at the OTA outputs (ratio ~0.4 of M18).
  ckt.add<Mosfet>("M19", t.outp, vcmfb, gnd, gnd, nmos("M19", sz.w_cm_sink, sz.l_cm_sink), sz.w_cm_sink, sz.l_cm_sink);
  ckt.add<Mosfet>("M20", t.outm, vcmfb, gnd, gnd, nmos("M20", sz.w_cm_sink, sz.l_cm_sink), sz.w_cm_sink, sz.l_cm_sink);
  ckt.add<Capacitor>("Ccmfb", vcmfb, gnd, sz.c_cmfb);

  // --- Auto-biasing networks ----------------------------------------------
  // Network 1: R + nMOS diode -> Vbias1 (~1.7 uA reference).
  ckt.add<Resistor>("Rb", t.vdd, vbias1, sz.r_bias);
  ckt.add<Mosfet>("M21", vbias1, vbias1, gnd, gnd, nmos("M21", sz.w_sink, sz.l_sink), sz.w_sink, sz.l_sink);
  // Network 2: stacked diode string -> Vref (~0.94 V CM reference).
  ckt.add<Mosfet>("M22", vref, vref, t.vdd, t.vdd, pmos("M22", sz.w_ref_p, sz.l_ref_p), sz.w_ref_p, sz.l_ref_p);
  ckt.add<Mosfet>("M23", vref, vref, nrefm, gnd, nmos("M23", sz.w_ref_n, sz.l_ref_n), sz.w_ref_n, sz.l_ref_n);
  ckt.add<Mosfet>("M24", nrefm, nrefm, gnd, gnd, nmos("M24", sz.w_ref_n, sz.l_ref_n), sz.w_ref_n, sz.l_ref_n);

  // --- Integration switches -------------------------------------------------
  // Transmission gates OTA output -> integration capacitor (Controlp, with
  // the on-cell inverter providing the complementary pMOS gate drive).
  ckt.add<Mosfet>("M25", t.outp, t.controlp, t.out_intp, gnd, nmos("M25", sz.w_tg_n, sz.l_tg), sz.w_tg_n, sz.l_tg);
  ckt.add<Mosfet>("M26", t.outp, ctrlpb, t.out_intp, t.vdd, pmos("M26", sz.w_tg_p, sz.l_tg), sz.w_tg_p, sz.l_tg);
  ckt.add<Mosfet>("M27", t.outm, t.controlp, t.out_intm, gnd, nmos("M27", sz.w_tg_n, sz.l_tg), sz.w_tg_n, sz.l_tg);
  ckt.add<Mosfet>("M28", t.outm, ctrlpb, t.out_intm, t.vdd, pmos("M28", sz.w_tg_p, sz.l_tg), sz.w_tg_p, sz.l_tg);
  // Reset switch across the capacitor (Controlm).
  ckt.add<Mosfet>("M29", t.out_intp, t.controlm, t.out_intm, gnd, nmos("M29", sz.w_rst, sz.l_rst), sz.w_rst, sz.l_rst);
  // Control inverter.
  ckt.add<Mosfet>("M30", ctrlpb, t.controlp, gnd, gnd, nmos("M30", sz.w_inv_n, sz.l_inv), sz.w_inv_n, sz.l_inv);
  ckt.add<Mosfet>("M31", ctrlpb, t.controlp, t.vdd, t.vdd, pmos("M31", sz.w_inv_p, sz.l_inv), sz.w_inv_p, sz.l_inv);

  // Integration capacitor (the paper's nominal 1 pF load).
  ckt.add<Capacitor>("Cint", t.out_intp, t.out_intm, sz.c_int);

  return t;
}

ItdTestbench build_itd_testbench(Circuit& ckt, const ItdSizing& sz) {
  ItdTestbench tb;
  tb.t = build_integrate_and_dump(ckt, sz);
  const NodeId gnd = ckt.ground();
  ckt.add<VoltageSource>("vdd_src", tb.t.vdd, gnd, Waveform::dc(sz.vdd));
  // Differential input around the 0.9 V common mode; AC stimulus is applied
  // anti-symmetrically so v(inp)-v(inm) has unit magnitude.
  ckt.add<VoltageSource>("vinp", tb.t.inp, gnd, Waveform::dc(tb.input_cm), 0.5);
  ckt.add<VoltageSource>("vinm", tb.t.inm, gnd, Waveform::dc(tb.input_cm), 0.5,
                         180.0);
  // Controls default to "integrate" so AC analysis sees the closed switches.
  ckt.add<VoltageSource>("vctrlp", tb.t.controlp, gnd, Waveform::dc(sz.vdd));
  ckt.add<VoltageSource>("vctrlm", tb.t.controlm, gnd, Waveform::dc(0.0));
  return tb;
}

std::string itd_netlist_path() {
#ifdef UWBAMS_CIRCUITS_DIR
  return std::string(UWBAMS_CIRCUITS_DIR) + "/integrate_and_dump.cir";
#else
  return "circuits/integrate_and_dump.cir";
#endif
}

}  // namespace uwbams::spice
