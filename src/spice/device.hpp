/// @file device.hpp
/// @brief The device interface of the transistor-level simulator.
///
/// Devices stamp their companion models into an Mna system. Nonlinear
/// devices (MOSFETs) stamp the linearization around the current Newton
/// iterate; dynamic devices (capacitors, inductors, MOS capacitances) stamp
/// the trapezoidal or backward-Euler companion using committed history from
/// the previous accepted time step.
///
/// For the transient fast path every device additionally reports, once,
/// the set of matrix entries its stamp can ever touch (`footprint()`);
/// `Circuit::prepare()` unions those into the structure-locked workspace
/// that `TransientSession` reuses across Newton iterations.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "spice/mna.hpp"

namespace uwbams::spice {

class Circuit;

/// Analysis kind a stamp is being assembled for.
enum class AnalysisMode {
  kOp,         ///< DC operating point: capacitors open, inductors short
  kTransient,  ///< companion models active
};

/// Companion-model integration method for dynamic devices.
enum class Integrator {
  kTrapezoidal,    ///< second order, marginally stable (may ring)
  kBackwardEuler,  ///< first order, L-stable (damped)
};

/// Per-stamp context shared by all devices.
struct StampArgs {
  AnalysisMode mode = AnalysisMode::kOp;       ///< analysis being assembled
  Integrator method = Integrator::kTrapezoidal;  ///< companion method
  /// Current Newton iterate (node voltages then branch currents).
  const std::vector<double>* x = nullptr;
  double t = 0.0;       ///< end time of the step being solved [s]
  double dt = 0.0;      ///< step size [s] (0 during OP)
  double inv_dt = 0.0;  ///< 1/dt, precomputed once per step (0 during OP)
  // Homotopy controls used by the OP solver.
  double gmin = 0.0;          ///< shunt conductance at nonlinear terminals [S]
  double source_scale = 1.0;  ///< scales independent sources (source stepping)
};

/// Base class of every circuit element.
class Device {
 public:
  /// Constructs a device with a unique (per-circuit) name.
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// The netlist name of this device.
  const std::string& name() const { return name_; }

  /// Number of extra branch-current unknowns this device contributes.
  virtual int branches() const { return 0; }
  /// Called by Circuit::prepare() with the matrix index of the first branch.
  void set_branch_base(int base) { branch_base_ = base; }
  /// Matrix index of the first branch unknown (-1 when none assigned).
  int branch_base() const { return branch_base_; }

  /// True if the device requires Newton iteration (its stamp depends on x).
  virtual bool nonlinear() const { return false; }

  /// Large-signal stamp (OP and transient Newton iterations).
  virtual void stamp(Mna<double>& mna, const StampArgs& args) const = 0;

  /// Declares every matrix entry stamp() may ever touch. The default is the
  /// safe dense fallback; all built-in devices override it with their exact
  /// footprint. Must be a superset of stamp()'s add() targets for every
  /// analysis mode and operating region.
  virtual void footprint(MnaPattern& pattern) const { pattern.add_dense(); }

  /// True when residual() is implemented. When every device of a circuit
  /// supports it, the transient solver may run chord (modified-Newton)
  /// iterations that evaluate only device currents between Jacobian
  /// refreshes — the factorization-reuse fast path.
  virtual bool supports_residual() const { return false; }

  /// Adds this device's KCL/branch residual contributions at the iterate
  /// `args.x` into `f`: exactly A_dev(x)·x − b_dev(x) of the stamp() the
  /// same args would produce, but without forming the matrix. Only called
  /// when supports_residual() returns true.
  virtual void residual(std::vector<double>& f, const StampArgs& args) const {
    (void)f;
    (void)args;
  }

  /// Small-signal AC stamp around the committed operating point `op`.
  /// `omega` is the angular frequency [rad/s]. Devices must override (the
  /// DC linearization cannot be reused generically).
  virtual void stamp_ac(Mna<std::complex<double>>& mna,
                        const std::vector<double>& op, double omega) const = 0;

  /// Initialize dynamic state from a converged operating point.
  virtual void init_state(const std::vector<double>& op) { (void)op; }
  /// Accept the step: update history (capacitor charge/current, MOS region).
  virtual void commit(const std::vector<double>& x, double t, double dt) {
    (void)x;
    (void)t;
    (void)dt;
  }

  /// Earliest waveform discontinuity strictly after time t [s], or +inf.
  /// The adaptive stepper aligns step boundaries to these events (pulse and
  /// PWL sources override; smooth devices keep the default).
  virtual double next_break(double t) const {
    (void)t;
    return std::numeric_limits<double>::infinity();
  }

  /// Netlist element card for this device (see netlist_writer.hpp).
  virtual std::string card(const Circuit& circuit) const;

 protected:
  /// Reads the voltage at matrix index `idx` (-1 = ground) out of the
  /// iterate.
  static double v_at(const std::vector<double>& x, int idx) {
    return idx >= 0 ? x[static_cast<std::size_t>(idx)] : 0.0;
  }

 private:
  std::string name_;
  int branch_base_ = -1;
};

}  // namespace uwbams::spice
