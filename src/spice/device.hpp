// device.hpp — the device interface of the transistor-level simulator.
//
// Devices stamp their companion models into an Mna system. Nonlinear devices
// (MOSFETs) stamp the linearization around the current Newton iterate;
// dynamic devices (capacitors, inductors, MOS capacitances) stamp the
// trapezoidal or backward-Euler companion using committed history from the
// previous accepted time step.
#pragma once

#include <string>
#include <vector>

#include "spice/mna.hpp"

namespace uwbams::spice {

class Circuit;

enum class AnalysisMode {
  kOp,         // DC operating point: capacitors open, inductors short
  kTransient,  // companion models active
};

enum class Integrator {
  kTrapezoidal,
  kBackwardEuler,
};

// Per-stamp context shared by all devices.
struct StampArgs {
  AnalysisMode mode = AnalysisMode::kOp;
  Integrator method = Integrator::kTrapezoidal;
  // Current Newton iterate (node voltages then branch currents).
  const std::vector<double>* x = nullptr;
  double t = 0.0;   // end time of the step being solved
  double dt = 0.0;  // step size (0 during OP)
  // Homotopy controls used by the OP solver.
  double gmin = 0.0;          // shunt conductance at nonlinear terminals
  double source_scale = 1.0;  // scales independent sources (source stepping)
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  // Number of extra branch-current unknowns this device contributes.
  virtual int branches() const { return 0; }
  // Called by Circuit::prepare() with the matrix index of the first branch.
  void set_branch_base(int base) { branch_base_ = base; }
  int branch_base() const { return branch_base_; }

  // True if the device requires Newton iteration (its stamp depends on x).
  virtual bool nonlinear() const { return false; }

  // Large-signal stamp (OP and transient Newton iterations).
  virtual void stamp(Mna<double>& mna, const StampArgs& args) const = 0;

  // Small-signal AC stamp around the committed operating point `op`.
  // Default: re-use the DC stamp linearization is not possible generically,
  // so devices must override; linear resistive devices can forward to a
  // helper. `omega` is the angular frequency.
  virtual void stamp_ac(Mna<std::complex<double>>& mna,
                        const std::vector<double>& op, double omega) const = 0;

  // Initialize dynamic state from a converged operating point.
  virtual void init_state(const std::vector<double>& op) { (void)op; }
  // Accept the step: update history (capacitor charge/current, MOS region).
  virtual void commit(const std::vector<double>& x, double t, double dt) {
    (void)x;
    (void)t;
    (void)dt;
  }

  // Netlist element card for this device (see netlist_writer.hpp).
  virtual std::string card(const Circuit& circuit) const;

 protected:
  // Helper used by subclasses to read the voltage at matrix index `idx`
  // (-1 = ground) out of the iterate.
  static double v_at(const std::vector<double>& x, int idx) {
    return idx >= 0 ? x[static_cast<std::size_t>(idx)] : 0.0;
  }

 private:
  std::string name_;
  int branch_base_ = -1;
};

}  // namespace uwbams::spice
