#include "spice/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "base/units.hpp"
#include "linalg/lu.hpp"

namespace uwbams::spice {

double AcSweep::mag_db(std::size_t i) const {
  return units::lin_to_db(std::abs(points.at(i).value));
}

double AcSweep::phase_deg(std::size_t i) const {
  return std::arg(points.at(i).value) * 180.0 / units::pi;
}

AcSweep run_ac(Circuit& circuit, const std::vector<double>& op,
               std::span<const double> freqs, NodeId probe_p, NodeId probe_m,
               const AcOptions& options) {
  circuit.prepare();
  if (op.size() != circuit.unknown_count())
    throw std::invalid_argument("run_ac: operating point size mismatch");

  const std::size_t n = circuit.unknown_count();
  const int ip = circuit.node_index(probe_p);
  const int im = circuit.node_index(probe_m);

  // Pivot-order reuse across the grid (and, with an external workspace,
  // across structurally identical sweeps): the complex MNA matrix changes
  // smoothly with omega, so the frozen order stays acceptable for long
  // stretches, exactly as in the transient fast path.
  linalg::LuFactor<std::complex<double>> local;
  linalg::LuFactor<std::complex<double>>* lu =
      options.workspace != nullptr ? options.workspace : &local;

  AcSweep sweep;
  sweep.points.reserve(freqs.size());
  Mna<std::complex<double>> mna(n);
  for (double f : freqs) {
    const double omega = 2.0 * units::pi * f;
    mna.clear();
    for (const auto& dev : circuit.devices()) dev->stamp_ac(mna, op, omega);
    std::vector<std::complex<double>> x;
    if (options.reuse_factorization) {
      if (lu->size() != n || !lu->valid() || !lu->refactor(mna.matrix()))
        lu->factor(mna.matrix());
      x = mna.rhs();
      lu->solve_in_place(x);
    } else {
      x = linalg::solve(mna.matrix(), mna.rhs());
    }
    std::complex<double> vp =
        ip >= 0 ? x[static_cast<std::size_t>(ip)] : std::complex<double>{};
    std::complex<double> vm =
        im >= 0 ? x[static_cast<std::size_t>(im)] : std::complex<double>{};
    sweep.points.push_back({f, vp - vm});
  }
  return sweep;
}

std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       int points_per_decade) {
  if (f_start <= 0.0 || f_stop <= f_start || points_per_decade < 1)
    throw std::invalid_argument("log_frequency_grid: bad arguments");
  std::vector<double> freqs;
  const double lstart = std::log10(f_start);
  const double lstop = std::log10(f_stop);
  const double step = 1.0 / points_per_decade;
  for (double l = lstart; l <= lstop + 1e-12; l += step)
    freqs.push_back(std::pow(10.0, l));
  return freqs;
}

}  // namespace uwbams::spice
