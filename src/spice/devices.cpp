#include "spice/devices.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "base/units.hpp"

namespace uwbams::spice {

namespace {
using std::complex;
const complex<double> kJ{0.0, 1.0};
}  // namespace

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, int n1, int n2, double ohms)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)), ohms_(ohms),
      g_(1.0 / ohms) {
  if (ohms_ <= 0.0) throw std::invalid_argument("Resistor: non-positive value");
}

void Resistor::stamp(Mna<double>& mna, const StampArgs&) const {
  mna.stamp_conductance(a_, b_, g_);
}

void Resistor::footprint(MnaPattern& pattern) const {
  pattern.add_block({a_, b_});
}

void Resistor::residual(std::vector<double>& f, const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const double i = g_ * (v_at(x, a_) - v_at(x, b_));
  if (a_ >= 0) f[static_cast<std::size_t>(a_)] += i;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] -= i;
}

void Resistor::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                        double) const {
  mna.stamp_conductance(a_, b_, complex<double>{1.0 / ohms_, 0.0});
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, int n1, int n2, double farads)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      farads_(farads) {
  if (farads_ <= 0.0) throw std::invalid_argument("Capacitor: non-positive value");
}

void Capacitor::stamp(Mna<double>& mna, const StampArgs& args) const {
  if (args.mode == AnalysisMode::kOp) return;  // open in DC
  const bool trap = args.method == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * farads_ * args.inv_dt;
  const double ieq = trap ? (-geq * v_prev_ - i_prev_) : (-geq * v_prev_);
  mna.stamp_conductance(a_, b_, geq);
  mna.stamp_current(a_, b_, ieq);
}

void Capacitor::footprint(MnaPattern& pattern) const {
  pattern.add_block({a_, b_});
}

void Capacitor::residual(std::vector<double>& f, const StampArgs& args) const {
  if (args.mode == AnalysisMode::kOp) return;  // open in DC
  const std::vector<double>& x = *args.x;
  const bool trap = args.method == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * farads_ * args.inv_dt;
  const double ieq = trap ? (-geq * v_prev_ - i_prev_) : (-geq * v_prev_);
  const double i = geq * (v_at(x, a_) - v_at(x, b_)) + ieq;
  if (a_ >= 0) f[static_cast<std::size_t>(a_)] += i;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] -= i;
}

void Capacitor::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                         double omega) const {
  mna.stamp_conductance(a_, b_, kJ * omega * farads_);
}

void Capacitor::init_state(const std::vector<double>& op) {
  v_prev_ = v_at(op, a_) - v_at(op, b_);
  i_prev_ = 0.0;
}

void Capacitor::commit(const std::vector<double>& x, double, double dt) {
  const double v = v_at(x, a_) - v_at(x, b_);
  const double geq = 2.0 * farads_ / dt;
  // Trapezoidal current update; also valid history for a BE step start.
  i_prev_ = geq * (v - v_prev_) - i_prev_;
  v_prev_ = v;
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, int n1, int n2, double henries)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      henries_(henries) {
  if (henries_ <= 0.0) throw std::invalid_argument("Inductor: non-positive value");
}

void Inductor::stamp(Mna<double>& mna, const StampArgs& args) const {
  const int ib = branch_base();
  mna.add(a_, ib, 1.0);
  mna.add(b_, ib, -1.0);
  mna.add(ib, a_, 1.0);
  mna.add(ib, b_, -1.0);
  if (args.mode == AnalysisMode::kOp) {
    // Short in DC: v(a) - v(b) = 0, nothing else on the branch row.
    return;
  }
  const bool trap = args.method == Integrator::kTrapezoidal;
  const double req = (trap ? 2.0 : 1.0) * henries_ * args.inv_dt;
  mna.add(ib, ib, -req);
  const double rhs = trap ? (-req * i_prev_ - v_prev_) : (-req * i_prev_);
  mna.add_rhs(ib, rhs);
}

void Inductor::footprint(MnaPattern& pattern) const {
  pattern.add_block({a_, b_, branch_base()});
}

void Inductor::residual(std::vector<double>& f, const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const int ib = branch_base();
  const double i_br = v_at(x, ib);
  const double vab = v_at(x, a_) - v_at(x, b_);
  if (a_ >= 0) f[static_cast<std::size_t>(a_)] += i_br;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] -= i_br;
  if (args.mode == AnalysisMode::kOp) {
    f[static_cast<std::size_t>(ib)] += vab;  // short in DC
    return;
  }
  const bool trap = args.method == Integrator::kTrapezoidal;
  const double req = (trap ? 2.0 : 1.0) * henries_ * args.inv_dt;
  const double rhs = trap ? (-req * i_prev_ - v_prev_) : (-req * i_prev_);
  f[static_cast<std::size_t>(ib)] += vab - req * i_br - rhs;
}

void Inductor::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                        double omega) const {
  const int ib = branch_base();
  mna.add(a_, ib, complex<double>{1.0, 0.0});
  mna.add(b_, ib, complex<double>{-1.0, 0.0});
  mna.add(ib, a_, complex<double>{1.0, 0.0});
  mna.add(ib, b_, complex<double>{-1.0, 0.0});
  mna.add(ib, ib, -kJ * omega * henries_);
}

void Inductor::init_state(const std::vector<double>& op) {
  i_prev_ = v_at(op, branch_base());
  v_prev_ = 0.0;  // OP forces zero voltage across the inductor
}

void Inductor::commit(const std::vector<double>& x, double, double) {
  i_prev_ = v_at(x, branch_base());
  v_prev_ = v_at(x, a_) - v_at(x, b_);
}

// ---------------------------------------------------------------- Waveform

Waveform Waveform::dc(double v) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.p_[0] = v;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period) {
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.p_[0] = v1;
  w.p_[1] = v2;
  w.p_[2] = delay;
  w.p_[3] = rise;
  w.p_[4] = fall;
  w.p_[5] = width;
  w.p_[6] = period;
  return w;
}

Waveform Waveform::sine(double offset, double amplitude, double freq,
                        double delay) {
  Waveform w;
  w.kind_ = Kind::kSin;
  w.p_[0] = offset;
  w.p_[1] = amplitude;
  w.p_[2] = freq;
  w.p_[3] = delay;
  return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  if (times.size() != values.size() || times.empty())
    throw std::invalid_argument("Waveform::pwl: bad point list");
  Waveform w;
  w.kind_ = Kind::kPwl;
  w.pwl_t_ = std::move(times);
  w.pwl_v_ = std::move(values);
  return w;
}

double Waveform::value(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return p_[0];
    case Kind::kPulse: {
      const double v1 = p_[0], v2 = p_[1], td = p_[2], tr = p_[3], tf = p_[4],
                   pw = p_[5], per = p_[6];
      if (t < td) return v1;
      double tl = t - td;
      if (per > 0.0) tl = std::fmod(tl, per);
      if (tl < tr) return v1 + (v2 - v1) * (tr > 0 ? tl / tr : 1.0);
      tl -= tr;
      if (tl < pw) return v2;
      tl -= pw;
      if (tl < tf) return v2 + (v1 - v2) * (tf > 0 ? tl / tf : 1.0);
      return v1;
    }
    case Kind::kSin: {
      const double vo = p_[0], va = p_[1], f = p_[2], td = p_[3];
      if (t < td) return vo;
      return vo + va * std::sin(2.0 * units::pi * f * (t - td));
    }
    case Kind::kPwl: {
      if (t <= pwl_t_.front()) return pwl_v_.front();
      if (t >= pwl_t_.back()) return pwl_v_.back();
      for (std::size_t i = 1; i < pwl_t_.size(); ++i) {
        if (t <= pwl_t_[i]) {
          const double f =
              (t - pwl_t_[i - 1]) / (pwl_t_[i] - pwl_t_[i - 1]);
          return pwl_v_[i - 1] + f * (pwl_v_[i] - pwl_v_[i - 1]);
        }
      }
      return pwl_v_.back();
    }
  }
  return 0.0;
}

double Waveform::next_edge(double t) const {
  const double inf = std::numeric_limits<double>::infinity();
  switch (kind_) {
    case Kind::kDc:
    case Kind::kSin:
      return inf;
    case Kind::kPulse: {
      const double td = p_[2], tr = p_[3], tf = p_[4], pw = p_[5], per = p_[6];
      // Slope corners of one period, relative to the delayed origin.
      const double corners[4] = {0.0, tr, tr + pw, tr + pw + tf};
      // Candidate edges in the current and the next period.
      double base = td;
      if (per > 0.0 && t > td)
        base = td + std::floor((t - td) / per) * per;
      for (int cycle = 0; cycle < 2; ++cycle) {
        for (double c : corners) {
          const double edge = base + cycle * (per > 0.0 ? per : 0.0) + c;
          if (edge > t * (1.0 + 1e-12) + 1e-18) return edge;
        }
        if (per <= 0.0) break;
      }
      return inf;
    }
    case Kind::kPwl: {
      for (double tc : pwl_t_)
        if (tc > t * (1.0 + 1e-12) + 1e-18) return tc;
      return inf;
    }
  }
  return inf;
}

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string name, int n1, int n2, Waveform wf,
                             double ac_mag, double ac_phase_deg)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      wf_(wf), ac_mag_(ac_mag), ac_phase_deg_(ac_phase_deg) {}

double VoltageSource::value(double t) const {
  return has_override_ ? override_ : wf_.value(t);
}

double VoltageSource::current_in(const std::vector<double>& x) const {
  return v_at(x, branch_base());
}

void VoltageSource::stamp(Mna<double>& mna, const StampArgs& args) const {
  const int ib = branch_base();
  mna.add(a_, ib, 1.0);
  mna.add(b_, ib, -1.0);
  mna.add(ib, a_, 1.0);
  mna.add(ib, b_, -1.0);
  const double t = args.mode == AnalysisMode::kOp ? 0.0 : args.t;
  mna.add_rhs(ib, value(t) * args.source_scale);
}

void VoltageSource::footprint(MnaPattern& pattern) const {
  const int ib = branch_base();
  pattern.add(a_, ib);
  pattern.add(b_, ib);
  pattern.add(ib, a_);
  pattern.add(ib, b_);
}

double VoltageSource::next_break(double t) const {
  // Under an external override the waveform is not being played.
  if (has_override_) return std::numeric_limits<double>::infinity();
  return wf_.next_edge(t);
}

void VoltageSource::residual(std::vector<double>& f,
                             const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const int ib = branch_base();
  const double i_br = v_at(x, ib);
  if (a_ >= 0) f[static_cast<std::size_t>(a_)] += i_br;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] -= i_br;
  const double t = args.mode == AnalysisMode::kOp ? 0.0 : args.t;
  f[static_cast<std::size_t>(ib)] +=
      v_at(x, a_) - v_at(x, b_) - value(t) * args.source_scale;
}

void VoltageSource::stamp_ac(Mna<complex<double>>& mna,
                             const std::vector<double>&, double) const {
  const int ib = branch_base();
  mna.add(a_, ib, complex<double>{1.0, 0.0});
  mna.add(b_, ib, complex<double>{-1.0, 0.0});
  mna.add(ib, a_, complex<double>{1.0, 0.0});
  mna.add(ib, b_, complex<double>{-1.0, 0.0});
  const double ph = ac_phase_deg_ * units::pi / 180.0;
  mna.add_rhs(ib, ac_mag_ * complex<double>{std::cos(ph), std::sin(ph)});
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, int n1, int n2, Waveform wf,
                             double ac_mag)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      wf_(wf), ac_mag_(ac_mag) {}

void CurrentSource::stamp(Mna<double>& mna, const StampArgs& args) const {
  const double t = args.mode == AnalysisMode::kOp ? 0.0 : args.t;
  mna.stamp_current(a_, b_, wf_.value(t) * args.source_scale);
}

void CurrentSource::footprint(MnaPattern& pattern) const {
  // Pure RHS stamp; declare the diagonal of both terminals so a current
  // source alone never leaves a structurally empty matrix row.
  pattern.add(a_, a_);
  pattern.add(b_, b_);
}

double CurrentSource::next_break(double t) const { return wf_.next_edge(t); }

void CurrentSource::residual(std::vector<double>& f,
                             const StampArgs& args) const {
  const double t = args.mode == AnalysisMode::kOp ? 0.0 : args.t;
  const double cur = wf_.value(t) * args.source_scale;
  if (a_ >= 0) f[static_cast<std::size_t>(a_)] += cur;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] -= cur;
}

void CurrentSource::stamp_ac(Mna<complex<double>>& mna,
                             const std::vector<double>&, double) const {
  mna.stamp_current(a_, b_, complex<double>{ac_mag_, 0.0});
}

// --------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, int n1, int n2, int nc1, int nc2, double gain)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      ca_(mna_index(nc1)), cb_(mna_index(nc2)), gain_(gain) {}

void Vcvs::stamp(Mna<double>& mna, const StampArgs&) const {
  const int ib = branch_base();
  mna.add(a_, ib, 1.0);
  mna.add(b_, ib, -1.0);
  mna.add(ib, a_, 1.0);
  mna.add(ib, b_, -1.0);
  mna.add(ib, ca_, -gain_);
  mna.add(ib, cb_, gain_);
}

void Vcvs::residual(std::vector<double>& f, const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const int ib = branch_base();
  const double i_br = v_at(x, ib);
  if (a_ >= 0) f[static_cast<std::size_t>(a_)] += i_br;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] -= i_br;
  f[static_cast<std::size_t>(ib)] += v_at(x, a_) - v_at(x, b_) -
                                     gain_ * (v_at(x, ca_) - v_at(x, cb_));
}

void Vcvs::footprint(MnaPattern& pattern) const {
  const int ib = branch_base();
  pattern.add(a_, ib);
  pattern.add(b_, ib);
  pattern.add(ib, a_);
  pattern.add(ib, b_);
  pattern.add(ib, ca_);
  pattern.add(ib, cb_);
}

void Vcvs::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                    double) const {
  const int ib = branch_base();
  mna.add(a_, ib, complex<double>{1.0, 0.0});
  mna.add(b_, ib, complex<double>{-1.0, 0.0});
  mna.add(ib, a_, complex<double>{1.0, 0.0});
  mna.add(ib, b_, complex<double>{-1.0, 0.0});
  mna.add(ib, ca_, complex<double>{-gain_, 0.0});
  mna.add(ib, cb_, complex<double>{gain_, 0.0});
}

// --------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, int n1, int n2, int nc1, int nc2, double gm)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      ca_(mna_index(nc1)), cb_(mna_index(nc2)), gm_(gm) {}

void Vccs::stamp(Mna<double>& mna, const StampArgs&) const {
  mna.add(a_, ca_, gm_);
  mna.add(a_, cb_, -gm_);
  mna.add(b_, ca_, -gm_);
  mna.add(b_, cb_, gm_);
}

void Vccs::residual(std::vector<double>& f, const StampArgs& args) const {
  const std::vector<double>& x = *args.x;
  const double i = gm_ * (v_at(x, ca_) - v_at(x, cb_));
  if (a_ >= 0) f[static_cast<std::size_t>(a_)] += i;
  if (b_ >= 0) f[static_cast<std::size_t>(b_)] -= i;
}

void Vccs::footprint(MnaPattern& pattern) const {
  pattern.add(a_, ca_);
  pattern.add(a_, cb_);
  pattern.add(b_, ca_);
  pattern.add(b_, cb_);
}

void Vccs::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                    double) const {
  mna.add(a_, ca_, complex<double>{gm_, 0.0});
  mna.add(a_, cb_, complex<double>{-gm_, 0.0});
  mna.add(b_, ca_, complex<double>{-gm_, 0.0});
  mna.add(b_, cb_, complex<double>{gm_, 0.0});
}

}  // namespace uwbams::spice
