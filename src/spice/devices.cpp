#include "spice/devices.hpp"

#include <cmath>
#include <stdexcept>

#include "base/units.hpp"

namespace uwbams::spice {

namespace {
using std::complex;
const complex<double> kJ{0.0, 1.0};
}  // namespace

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, int n1, int n2, double ohms)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)), ohms_(ohms) {
  if (ohms_ <= 0.0) throw std::invalid_argument("Resistor: non-positive value");
}

void Resistor::stamp(Mna<double>& mna, const StampArgs&) const {
  mna.stamp_conductance(a_, b_, 1.0 / ohms_);
}

void Resistor::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                        double) const {
  mna.stamp_conductance(a_, b_, complex<double>{1.0 / ohms_, 0.0});
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, int n1, int n2, double farads)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      farads_(farads) {
  if (farads_ <= 0.0) throw std::invalid_argument("Capacitor: non-positive value");
}

void Capacitor::stamp(Mna<double>& mna, const StampArgs& args) const {
  if (args.mode == AnalysisMode::kOp) return;  // open in DC
  const bool trap = args.method == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * farads_ / args.dt;
  const double ieq = trap ? (-geq * v_prev_ - i_prev_) : (-geq * v_prev_);
  mna.stamp_conductance(a_, b_, geq);
  mna.stamp_current(a_, b_, ieq);
}

void Capacitor::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                         double omega) const {
  mna.stamp_conductance(a_, b_, kJ * omega * farads_);
}

void Capacitor::init_state(const std::vector<double>& op) {
  v_prev_ = v_at(op, a_) - v_at(op, b_);
  i_prev_ = 0.0;
}

void Capacitor::commit(const std::vector<double>& x, double, double dt) {
  const double v = v_at(x, a_) - v_at(x, b_);
  const double geq = 2.0 * farads_ / dt;
  // Trapezoidal current update; also valid history for a BE step start.
  i_prev_ = geq * (v - v_prev_) - i_prev_;
  v_prev_ = v;
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, int n1, int n2, double henries)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      henries_(henries) {
  if (henries_ <= 0.0) throw std::invalid_argument("Inductor: non-positive value");
}

void Inductor::stamp(Mna<double>& mna, const StampArgs& args) const {
  const int ib = branch_base();
  mna.add(a_, ib, 1.0);
  mna.add(b_, ib, -1.0);
  mna.add(ib, a_, 1.0);
  mna.add(ib, b_, -1.0);
  if (args.mode == AnalysisMode::kOp) {
    // Short in DC: v(a) - v(b) = 0, nothing else on the branch row.
    return;
  }
  const bool trap = args.method == Integrator::kTrapezoidal;
  const double req = (trap ? 2.0 : 1.0) * henries_ / args.dt;
  mna.add(ib, ib, -req);
  const double rhs = trap ? (-req * i_prev_ - v_prev_) : (-req * i_prev_);
  mna.add_rhs(ib, rhs);
}

void Inductor::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                        double omega) const {
  const int ib = branch_base();
  mna.add(a_, ib, complex<double>{1.0, 0.0});
  mna.add(b_, ib, complex<double>{-1.0, 0.0});
  mna.add(ib, a_, complex<double>{1.0, 0.0});
  mna.add(ib, b_, complex<double>{-1.0, 0.0});
  mna.add(ib, ib, -kJ * omega * henries_);
}

void Inductor::init_state(const std::vector<double>& op) {
  i_prev_ = v_at(op, branch_base());
  v_prev_ = 0.0;  // OP forces zero voltage across the inductor
}

void Inductor::commit(const std::vector<double>& x, double, double) {
  i_prev_ = v_at(x, branch_base());
  v_prev_ = v_at(x, a_) - v_at(x, b_);
}

// ---------------------------------------------------------------- Waveform

Waveform Waveform::dc(double v) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.p_[0] = v;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period) {
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.p_[0] = v1;
  w.p_[1] = v2;
  w.p_[2] = delay;
  w.p_[3] = rise;
  w.p_[4] = fall;
  w.p_[5] = width;
  w.p_[6] = period;
  return w;
}

Waveform Waveform::sine(double offset, double amplitude, double freq,
                        double delay) {
  Waveform w;
  w.kind_ = Kind::kSin;
  w.p_[0] = offset;
  w.p_[1] = amplitude;
  w.p_[2] = freq;
  w.p_[3] = delay;
  return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  if (times.size() != values.size() || times.empty())
    throw std::invalid_argument("Waveform::pwl: bad point list");
  Waveform w;
  w.kind_ = Kind::kPwl;
  w.pwl_t_ = std::move(times);
  w.pwl_v_ = std::move(values);
  return w;
}

double Waveform::value(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return p_[0];
    case Kind::kPulse: {
      const double v1 = p_[0], v2 = p_[1], td = p_[2], tr = p_[3], tf = p_[4],
                   pw = p_[5], per = p_[6];
      if (t < td) return v1;
      double tl = t - td;
      if (per > 0.0) tl = std::fmod(tl, per);
      if (tl < tr) return v1 + (v2 - v1) * (tr > 0 ? tl / tr : 1.0);
      tl -= tr;
      if (tl < pw) return v2;
      tl -= pw;
      if (tl < tf) return v2 + (v1 - v2) * (tf > 0 ? tl / tf : 1.0);
      return v1;
    }
    case Kind::kSin: {
      const double vo = p_[0], va = p_[1], f = p_[2], td = p_[3];
      if (t < td) return vo;
      return vo + va * std::sin(2.0 * units::pi * f * (t - td));
    }
    case Kind::kPwl: {
      if (t <= pwl_t_.front()) return pwl_v_.front();
      if (t >= pwl_t_.back()) return pwl_v_.back();
      for (std::size_t i = 1; i < pwl_t_.size(); ++i) {
        if (t <= pwl_t_[i]) {
          const double f =
              (t - pwl_t_[i - 1]) / (pwl_t_[i] - pwl_t_[i - 1]);
          return pwl_v_[i - 1] + f * (pwl_v_[i] - pwl_v_[i - 1]);
        }
      }
      return pwl_v_.back();
    }
  }
  return 0.0;
}

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string name, int n1, int n2, Waveform wf,
                             double ac_mag, double ac_phase_deg)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      wf_(wf), ac_mag_(ac_mag), ac_phase_deg_(ac_phase_deg) {}

double VoltageSource::value(double t) const {
  return has_override_ ? override_ : wf_.value(t);
}

double VoltageSource::current_in(const std::vector<double>& x) const {
  return v_at(x, branch_base());
}

void VoltageSource::stamp(Mna<double>& mna, const StampArgs& args) const {
  const int ib = branch_base();
  mna.add(a_, ib, 1.0);
  mna.add(b_, ib, -1.0);
  mna.add(ib, a_, 1.0);
  mna.add(ib, b_, -1.0);
  const double t = args.mode == AnalysisMode::kOp ? 0.0 : args.t;
  mna.add_rhs(ib, value(t) * args.source_scale);
}

void VoltageSource::stamp_ac(Mna<complex<double>>& mna,
                             const std::vector<double>&, double) const {
  const int ib = branch_base();
  mna.add(a_, ib, complex<double>{1.0, 0.0});
  mna.add(b_, ib, complex<double>{-1.0, 0.0});
  mna.add(ib, a_, complex<double>{1.0, 0.0});
  mna.add(ib, b_, complex<double>{-1.0, 0.0});
  const double ph = ac_phase_deg_ * units::pi / 180.0;
  mna.add_rhs(ib, ac_mag_ * complex<double>{std::cos(ph), std::sin(ph)});
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, int n1, int n2, Waveform wf,
                             double ac_mag)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      wf_(wf), ac_mag_(ac_mag) {}

void CurrentSource::stamp(Mna<double>& mna, const StampArgs& args) const {
  const double t = args.mode == AnalysisMode::kOp ? 0.0 : args.t;
  mna.stamp_current(a_, b_, wf_.value(t) * args.source_scale);
}

void CurrentSource::stamp_ac(Mna<complex<double>>& mna,
                             const std::vector<double>&, double) const {
  mna.stamp_current(a_, b_, complex<double>{ac_mag_, 0.0});
}

// --------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, int n1, int n2, int nc1, int nc2, double gain)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      ca_(mna_index(nc1)), cb_(mna_index(nc2)), gain_(gain) {}

void Vcvs::stamp(Mna<double>& mna, const StampArgs&) const {
  const int ib = branch_base();
  mna.add(a_, ib, 1.0);
  mna.add(b_, ib, -1.0);
  mna.add(ib, a_, 1.0);
  mna.add(ib, b_, -1.0);
  mna.add(ib, ca_, -gain_);
  mna.add(ib, cb_, gain_);
}

void Vcvs::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                    double) const {
  const int ib = branch_base();
  mna.add(a_, ib, complex<double>{1.0, 0.0});
  mna.add(b_, ib, complex<double>{-1.0, 0.0});
  mna.add(ib, a_, complex<double>{1.0, 0.0});
  mna.add(ib, b_, complex<double>{-1.0, 0.0});
  mna.add(ib, ca_, complex<double>{-gain_, 0.0});
  mna.add(ib, cb_, complex<double>{gain_, 0.0});
}

// --------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, int n1, int n2, int nc1, int nc2, double gm)
    : Device(std::move(name)), a_(mna_index(n1)), b_(mna_index(n2)),
      ca_(mna_index(nc1)), cb_(mna_index(nc2)), gm_(gm) {}

void Vccs::stamp(Mna<double>& mna, const StampArgs&) const {
  mna.add(a_, ca_, gm_);
  mna.add(a_, cb_, -gm_);
  mna.add(b_, ca_, -gm_);
  mna.add(b_, cb_, gm_);
}

void Vccs::stamp_ac(Mna<complex<double>>& mna, const std::vector<double>&,
                    double) const {
  mna.add(a_, ca_, complex<double>{gm_, 0.0});
  mna.add(a_, cb_, complex<double>{-gm_, 0.0});
  mna.add(b_, ca_, complex<double>{-gm_, 0.0});
  mna.add(b_, cb_, complex<double>{gm_, 0.0});
}

}  // namespace uwbams::spice
