#include "spice/circuit.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace uwbams::spice {

Circuit::Circuit() {
  // Node 0 is always ground.
  node_names_.push_back("0");
  node_ids_["0"] = 0;
  node_ids_["gnd"] = 0;
}

std::string Circuit::normalize(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

NodeId Circuit::node(const std::string& name) {
  const std::string key = normalize(name);
  auto it = node_ids_.find(key);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_ids_[key] = id;
  prepared_ = false;
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  auto it = node_ids_.find(normalize(name));
  return it != node_ids_.end() ? it->second : -1;
}

Device& Circuit::add_device(std::unique_ptr<Device> dev) {
  const std::string key = normalize(dev->name());
  if (device_ids_.count(key))
    throw std::invalid_argument("Circuit: duplicate device name '" + dev->name() + "'");
  device_ids_[key] = devices_.size();
  devices_.push_back(std::move(dev));
  prepared_ = false;
  return *devices_.back();
}

Device* Circuit::find_device(const std::string& name) {
  auto it = device_ids_.find(normalize(name));
  return it != device_ids_.end() ? devices_[it->second].get() : nullptr;
}

const Device* Circuit::find_device(const std::string& name) const {
  auto it = device_ids_.find(normalize(name));
  return it != device_ids_.end() ? devices_[it->second].get() : nullptr;
}

std::size_t Circuit::count_devices_with_prefix(const std::string& prefix) const {
  const std::string p = normalize(prefix);
  std::size_t n = 0;
  for (const auto& d : devices_) {
    const std::string name = normalize(d->name());
    if (name.size() >= p.size() && name.compare(0, p.size(), p) == 0) ++n;
  }
  return n;
}

void Circuit::prepare() {
  branch_count_ = 0;
  const int node_unknowns = static_cast<int>(node_names_.size()) - 1;
  for (auto& d : devices_) {
    const int b = d->branches();
    if (b > 0) {
      d->set_branch_base(node_unknowns + static_cast<int>(branch_count_));
      branch_count_ += static_cast<std::size_t>(b);
    }
  }
  unknown_count_ = static_cast<std::size_t>(node_unknowns) + branch_count_;
  // Collect the union of every device's stamp footprint (branch bases are
  // assigned above, so branch rows land at their final indices) and cache
  // whether any device needs Newton iteration.
  pattern_ = std::make_shared<MnaPattern>(unknown_count_);
  linear_ = true;
  residual_capable_ = true;
  for (const auto& d : devices_) {
    d->footprint(*pattern_);
    if (d->nonlinear()) linear_ = false;
    if (!d->supports_residual()) residual_capable_ = false;
  }
  prepared_ = true;
}

double Circuit::voltage_in(const std::vector<double>& x, NodeId n) const {
  const int idx = node_index(n);
  if (idx < 0) return 0.0;
  return x.at(static_cast<std::size_t>(idx));
}

}  // namespace uwbams::spice
