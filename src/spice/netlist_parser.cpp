#include "spice/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace uwbams::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// A logical line (after continuation join) split into tokens. Parentheses
// and commas act as separators so "PULSE(0 1.8 0 1n 1n 5n 10n)" tokenizes.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (c == '(' || c == ')' || c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

struct SubcktDef {
  std::vector<std::string> ports;
  std::vector<std::string> body;  // raw logical lines
};

struct ParserState {
  Circuit* ckt = nullptr;
  std::map<std::string, MosModel> models;
  std::map<std::string, SubcktDef> subckts;
};

bool is_number_start(const std::string& t) {
  return !t.empty() && (std::isdigit(static_cast<unsigned char>(t[0])) ||
                        t[0] == '-' || t[0] == '+' || t[0] == '.');
}

Waveform parse_waveform(const std::vector<std::string>& toks, std::size_t& i,
                        double& ac_mag, double& ac_phase) {
  Waveform wf = Waveform::dc(0.0);
  bool have_shape = false;
  while (i < toks.size()) {
    const std::string key = lower(toks[i]);
    if (key == "dc") {
      ++i;
      if (i >= toks.size()) throw std::invalid_argument("DC needs a value");
      wf = Waveform::dc(parse_spice_value(toks[i++]));
      have_shape = true;
    } else if (key == "ac") {
      ++i;
      if (i >= toks.size()) throw std::invalid_argument("AC needs a magnitude");
      ac_mag = parse_spice_value(toks[i++]);
      if (i < toks.size() && is_number_start(toks[i]))
        ac_phase = parse_spice_value(toks[i++]);
    } else if (key == "pulse") {
      ++i;
      std::vector<double> p;
      while (i < toks.size() && is_number_start(toks[i]))
        p.push_back(parse_spice_value(toks[i++]));
      if (p.size() < 7) p.resize(7, 0.0);
      wf = Waveform::pulse(p[0], p[1], p[2], p[3], p[4], p[5], p[6]);
      have_shape = true;
    } else if (key == "sin") {
      ++i;
      std::vector<double> p;
      while (i < toks.size() && is_number_start(toks[i]))
        p.push_back(parse_spice_value(toks[i++]));
      if (p.size() < 3) throw std::invalid_argument("SIN needs >= 3 values");
      wf = Waveform::sine(p[0], p[1], p[2], p.size() > 3 ? p[3] : 0.0);
      have_shape = true;
    } else if (key == "pwl") {
      ++i;
      std::vector<double> t, v;
      while (i + 1 < toks.size() && is_number_start(toks[i]) &&
             is_number_start(toks[i + 1])) {
        t.push_back(parse_spice_value(toks[i++]));
        v.push_back(parse_spice_value(toks[i++]));
      }
      wf = Waveform::pwl(std::move(t), std::move(v));
      have_shape = true;
    } else if (is_number_start(toks[i]) && !have_shape) {
      wf = Waveform::dc(parse_spice_value(toks[i++]));
      have_shape = true;
    } else {
      throw std::invalid_argument("unexpected source token '" + toks[i] + "'");
    }
  }
  return wf;
}

// key=value parameter scan starting at toks[i].
std::map<std::string, double> parse_params(const std::vector<std::string>& toks,
                                           std::size_t i) {
  std::map<std::string, double> params;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    const auto eq = t.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("expected key=value, got '" + t + "'");
    params[lower(t.substr(0, eq))] = parse_spice_value(t.substr(eq + 1));
  }
  return params;
}

void apply_model_params(MosModel& m, const std::map<std::string, double>& p) {
  for (const auto& [k, v] : p) {
    if (k == "vt0" || k == "vto") m.vt0 = v;
    else if (k == "kp") m.kp = v;
    else if (k == "gamma") m.gamma = v;
    else if (k == "phi") m.phi = v;
    else if (k == "lambda") m.lambda = v;
    else if (k == "tox") m.tox = v;
    else if (k == "ld") m.ld = v;
    else if (k == "cgso") m.cgso = v;
    else if (k == "cgdo") m.cgdo = v;
    else if (k == "cgbo") m.cgbo = v;
    else if (k == "cj") m.cj = v;
    else if (k == "ldiff") m.ldiff = v;
    else if (k == "level") { /* level-1 only; accepted and ignored */ }
    else throw std::invalid_argument("unknown .model parameter '" + k + "'");
  }
}

void parse_card(ParserState& st, const std::string& raw,
                const std::string& prefix,
                const std::map<std::string, std::string>& node_map);

// Resolve a node name through a subckt port mapping (or prefix local nodes).
std::string map_node(const std::string& name, const std::string& prefix,
                     const std::map<std::string, std::string>& node_map) {
  const std::string key = lower(name);
  if (key == "0" || key == "gnd") return "0";
  auto it = node_map.find(key);
  if (it != node_map.end()) return it->second;
  return prefix.empty() ? name : prefix + "." + name;
}

void expand_subckt(ParserState& st, const std::vector<std::string>& toks,
                   const std::string& prefix,
                   const std::map<std::string, std::string>& outer_map) {
  // Xname n1 n2 ... subcktname
  if (toks.size() < 3)
    throw std::invalid_argument("X card needs nodes and a subckt name");
  const std::string sub_name = lower(toks.back());
  auto it = st.subckts.find(sub_name);
  if (it == st.subckts.end())
    throw std::invalid_argument("unknown subckt '" + toks.back() + "'");
  const SubcktDef& def = it->second;
  const std::size_t n_nodes = toks.size() - 2;
  if (n_nodes != def.ports.size())
    throw std::invalid_argument("subckt '" + sub_name + "' expects " +
                                std::to_string(def.ports.size()) + " nodes");
  const std::string inst = prefix.empty() ? toks[0] : prefix + "." + toks[0];
  std::map<std::string, std::string> inner_map;
  for (std::size_t k = 0; k < n_nodes; ++k)
    inner_map[lower(def.ports[k])] = map_node(toks[1 + k], prefix, outer_map);
  for (const auto& line : def.body) parse_card(st, line, inst, inner_map);
}

void parse_card(ParserState& st, const std::string& raw,
                const std::string& prefix,
                const std::map<std::string, std::string>& node_map) {
  const auto toks = tokenize(raw);
  if (toks.empty()) return;
  const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(toks[0][0])));
  Circuit& ckt = *st.ckt;
  auto name = [&](const std::string& n) {
    return prefix.empty() ? n : prefix + "." + n;
  };
  auto node = [&](const std::string& n) {
    return ckt.node(map_node(n, prefix, node_map));
  };

  switch (kind) {
    case 'r':
      if (toks.size() < 4) throw std::invalid_argument("R card: Rname n1 n2 value");
      ckt.add<Resistor>(name(toks[0]), node(toks[1]), node(toks[2]),
                        parse_spice_value(toks[3]));
      return;
    case 'c':
      if (toks.size() < 4) throw std::invalid_argument("C card: Cname n1 n2 value");
      ckt.add<Capacitor>(name(toks[0]), node(toks[1]), node(toks[2]),
                         parse_spice_value(toks[3]));
      return;
    case 'l':
      if (toks.size() < 4) throw std::invalid_argument("L card: Lname n1 n2 value");
      ckt.add<Inductor>(name(toks[0]), node(toks[1]), node(toks[2]),
                        parse_spice_value(toks[3]));
      return;
    case 'v': {
      if (toks.size() < 3) throw std::invalid_argument("V card: Vname n+ n- ...");
      std::size_t i = 3;
      double ac_mag = 0.0, ac_phase = 0.0;
      Waveform wf = (toks.size() > 3)
                        ? parse_waveform(toks, i, ac_mag, ac_phase)
                        : Waveform::dc(0.0);
      ckt.add<VoltageSource>(name(toks[0]), node(toks[1]), node(toks[2]), wf,
                             ac_mag, ac_phase);
      return;
    }
    case 'i': {
      if (toks.size() < 3) throw std::invalid_argument("I card: Iname n+ n- ...");
      std::size_t i = 3;
      double ac_mag = 0.0, ac_phase = 0.0;
      Waveform wf = (toks.size() > 3)
                        ? parse_waveform(toks, i, ac_mag, ac_phase)
                        : Waveform::dc(0.0);
      ckt.add<CurrentSource>(name(toks[0]), node(toks[1]), node(toks[2]), wf,
                             ac_mag);
      return;
    }
    case 'e':
      if (toks.size() < 6)
        throw std::invalid_argument("E card: Ename n+ n- c+ c- gain");
      ckt.add<Vcvs>(name(toks[0]), node(toks[1]), node(toks[2]), node(toks[3]),
                    node(toks[4]), parse_spice_value(toks[5]));
      return;
    case 'g':
      if (toks.size() < 6)
        throw std::invalid_argument("G card: Gname n+ n- c+ c- gm");
      ckt.add<Vccs>(name(toks[0]), node(toks[1]), node(toks[2]), node(toks[3]),
                    node(toks[4]), parse_spice_value(toks[5]));
      return;
    case 'm': {
      if (toks.size() < 6)
        throw std::invalid_argument("M card: Mname d g s b model W=.. L=..");
      auto mit = st.models.find(lower(toks[5]));
      MosModel model =
          mit != st.models.end() ? mit->second : builtin_model(toks[5]);
      const auto params = parse_params(toks, 6);
      double w = 1e-6, l = 0.18e-6;
      for (const auto& [k, v] : params) {
        if (k == "w") w = v;
        else if (k == "l") l = v;
        else if (k == "m") w *= v;  // parallel multiplier folded into width
        else throw std::invalid_argument("unknown MOS parameter '" + k + "'");
      }
      ckt.add<Mosfet>(name(toks[0]), node(toks[1]), node(toks[2]),
                      node(toks[3]), node(toks[4]), model, w, l);
      return;
    }
    case 'x':
      expand_subckt(st, toks, prefix, node_map);
      return;
    default:
      throw std::invalid_argument("unsupported element card '" + toks[0] + "'");
  }
}

}  // namespace

double parse_spice_value(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty numeric value");
  std::size_t pos = 0;
  double v;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric value '" + token + "'");
  }
  std::string suffix = lower(token.substr(pos));
  if (suffix.empty()) return v;
  // "meg" must be checked before "m".
  if (suffix.rfind("meg", 0) == 0) return v * 1e6;
  switch (suffix[0]) {
    case 't': return v * 1e12;
    case 'g': return v * 1e9;
    case 'k': return v * 1e3;
    case 'm': return v * 1e-3;
    case 'u': return v * 1e-6;
    case 'n': return v * 1e-9;
    case 'p': return v * 1e-12;
    case 'f': return v * 1e-15;
    default:
      throw std::invalid_argument("unknown value suffix in '" + token + "'");
  }
}

void parse_netlist(const std::string& text, Circuit& circuit) {
  // Join continuation lines, strip comments.
  std::vector<std::string> logical;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (const auto semi = line.find(';'); semi != std::string::npos)
      line = line.substr(0, semi);
    // Trim leading whitespace.
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) { first = false; continue; }
    line = line.substr(start);
    if (line[0] == '*') { first = false; continue; }
    if (line[0] == '+') {
      if (logical.empty())
        throw std::invalid_argument("netlist: continuation with no previous line");
      logical.back() += " " + line.substr(1);
      continue;
    }
    // SPICE convention: the first line of a deck is its title.
    if (first && line[0] != '.') {
      first = false;
      // Heuristic: treat it as a card if it parses like one (our decks
      // always start with a comment or directive, so titles are rare).
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(line[0])));
      if (std::string("rclvieg mx").find(c) == std::string::npos) continue;
    }
    first = false;
    logical.push_back(line);
  }

  ParserState st;
  st.ckt = &circuit;

  // First pass: collect .model and .subckt definitions.
  std::vector<std::string> top_cards;
  for (std::size_t li = 0; li < logical.size(); ++li) {
    const std::string& l = logical[li];
    const auto toks = tokenize(l);
    const std::string head = lower(toks[0]);
    if (head == ".model") {
      if (toks.size() < 3)
        throw std::invalid_argument(".model needs a name and a type");
      MosModel m = builtin_model(toks[2]);  // "nmos"/"pmos" base
      m.name = lower(toks[1]);
      std::map<std::string, double> params;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        const auto eq = toks[i].find('=');
        if (eq == std::string::npos)
          throw std::invalid_argument(".model: expected key=value");
        params[lower(toks[i].substr(0, eq))] =
            parse_spice_value(toks[i].substr(eq + 1));
      }
      apply_model_params(m, params);
      st.models[m.name] = m;
    } else if (head == ".subckt") {
      if (toks.size() < 2) throw std::invalid_argument(".subckt needs a name");
      SubcktDef def;
      for (std::size_t i = 2; i < toks.size(); ++i) def.ports.push_back(toks[i]);
      ++li;
      while (li < logical.size() &&
             lower(tokenize(logical[li])[0]) != ".ends") {
        def.body.push_back(logical[li]);
        ++li;
      }
      if (li >= logical.size())
        throw std::invalid_argument(".subckt '" + toks[1] + "' missing .ends");
      st.subckts[lower(toks[1])] = std::move(def);
    } else if (head[0] == '.') {
      // .end/.tran/.op/.title etc.: ignored.
    } else {
      top_cards.push_back(l);
    }
  }

  // Second pass: elaborate element cards.
  for (const auto& card : top_cards) parse_card(st, card, "", {});
}

void parse_netlist_file(const std::string& path, Circuit& circuit) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open netlist file: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  parse_netlist(ss.str(), circuit);
}

}  // namespace uwbams::spice
