#include "spice/netlist_writer.hpp"

#include <cstdio>
#include <map>
#include <sstream>

#include "spice/device.hpp"
#include "spice/devices.hpp"
#include "spice/mosfet.hpp"

namespace uwbams::spice {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// Node name from an MNA matrix index (-1 = ground).
std::string node_of(const Circuit& ckt, int idx) {
  if (idx < 0) return "0";
  return ckt.node_name(idx + 1);
}

}  // namespace

// Default card: devices without serialization emit a comment.
std::string Device::card(const Circuit&) const {
  return "* " + name_ + " (no card form)";
}

std::string write_netlist(const Circuit& circuit, const std::string& title) {
  std::ostringstream os;
  os << "* " << title << "\n";

  // Distinct MOSFET model cards by name.
  std::map<std::string, const MosModel*> models;
  for (const auto& d : circuit.devices()) {
    if (const auto* m = dynamic_cast<const Mosfet*>(d.get()))
      models.emplace(m->model().name, &m->model());
  }
  for (const auto& [name, m] : models) {
    os << ".model " << name << " " << (m->is_pmos ? "pmos" : "nmos")
       << " vt0=" << num(m->vt0) << " kp=" << num(m->kp)
       << " gamma=" << num(m->gamma) << " phi=" << num(m->phi)
       << " lambda=" << num(m->lambda) << " tox=" << num(m->tox)
       << " ld=" << num(m->ld) << " cgso=" << num(m->cgso)
       << " cgdo=" << num(m->cgdo) << " cgbo=" << num(m->cgbo)
       << " cj=" << num(m->cj) << " ldiff=" << num(m->ldiff) << "\n";
  }

  for (const auto& d : circuit.devices()) os << d->card(circuit) << "\n";
  os << ".end\n";
  return os.str();
}

// ---- per-device card implementations ---------------------------------

std::string Resistor::card(const Circuit& ckt) const {
  return name() + " " + node_of(ckt, a_) + " " + node_of(ckt, b_) + " " +
         num(ohms_);
}

std::string Capacitor::card(const Circuit& ckt) const {
  return name() + " " + node_of(ckt, a_) + " " + node_of(ckt, b_) + " " +
         num(farads_);
}

std::string Inductor::card(const Circuit& ckt) const {
  return name() + " " + node_of(ckt, a_) + " " + node_of(ckt, b_) + " " +
         num(henries_);
}

std::string VoltageSource::card(const Circuit& ckt) const {
  std::string s = name() + " " + node_of(ckt, a_) + " " + node_of(ckt, b_) +
                  " DC " + num(wf_.dc_value());
  if (ac_mag_ != 0.0)
    s += " AC " + num(ac_mag_) + " " + num(ac_phase_deg_);
  return s;
}

std::string CurrentSource::card(const Circuit& ckt) const {
  return name() + " " + node_of(ckt, a_) + " " + node_of(ckt, b_) + " DC " +
         num(wf_.dc_value());
}

std::string Vcvs::card(const Circuit& ckt) const {
  return name() + " " + node_of(ckt, a_) + " " + node_of(ckt, b_) + " " +
         node_of(ckt, ca_) + " " + node_of(ckt, cb_) + " " + num(gain_);
}

std::string Vccs::card(const Circuit& ckt) const {
  return name() + " " + node_of(ckt, a_) + " " + node_of(ckt, b_) + " " +
         node_of(ckt, ca_) + " " + node_of(ckt, cb_) + " " + num(gm_);
}

std::string Mosfet::card(const Circuit& ckt) const {
  return name() + " " + node_of(ckt, d_) + " " + node_of(ckt, g_) + " " +
         node_of(ckt, s_) + " " + node_of(ckt, b_) + " " + model_.name +
         " W=" + num(width_) + " L=" + num(length_);
}

}  // namespace uwbams::spice
