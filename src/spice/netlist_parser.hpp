/// @file netlist_parser.hpp
/// @brief SPICE-like text netlist front end.
///
/// The paper imports the transistor-level I&D block as a "Spice-like netlist"
/// (ELDO) into the system simulation. This parser accepts the same class of
/// netlists and builds a spice::Circuit:
///
///   * element cards: R, C, L, V, I, E (VCVS), G (VCCS), M (MOSFET), X (subckt)
///   * .model (level-1 MOS parameters), .subckt/.ends (flattened on X cards)
///   * source shapes: DC, PULSE(...), SIN(...), PWL(...), AC mag [phase]
///   * engineering suffixes: f p n u m k meg g t
///   * '*' comments, ';' inline comments, '+' continuation lines
///
/// Unknown cards (e.g. .tran/.end) are ignored so real-world decks load.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace uwbams::spice {

/// Parses netlist text into `circuit`. Throws std::invalid_argument with a
/// line-numbered message on malformed cards.
void parse_netlist(const std::string& text, Circuit& circuit);

/// Loads a netlist file (throws std::runtime_error if unreadable).
void parse_netlist_file(const std::string& path, Circuit& circuit);

/// Parses an engineering-notation value ("1.5k", "0.5u", "10meg", "2.2p").
double parse_spice_value(const std::string& token);

}  // namespace uwbams::spice
