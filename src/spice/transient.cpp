#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "spice/engine_counters.hpp"
#include "spice/mosfet.hpp"

namespace uwbams::spice {

TransientSession::TransientSession(Circuit& circuit, TransientOptions options)
    : circuit_(&circuit), opts_(options), mna_(0) {
  circuit_->prepare();
  OpResult op = solve_op(*circuit_, opts_.op);
  if (!op.converged)
    throw std::runtime_error("TransientSession: operating point did not converge");
  op_ = op.x;
  x_ = op.x;
  for (const auto& dev : circuit_->devices()) dev->init_state(x_);
  // One structure-locked workspace for the session's whole lifetime.
  pattern_ = circuit_->stamp_pattern();
  mna_ = Mna<double>(*pattern_);
  for (const auto& dev : circuit_->devices()) {
    if (auto* m = dynamic_cast<Mosfet*>(dev.get())) {
      m->set_fused_commit(opts_.fused_commit);
      mosfets_.push_back(m);
    } else {
      others_.push_back(dev.get());
    }
    const Device* d = dev.get();
    const bool stateless = dynamic_cast<const Resistor*>(d) ||
                           dynamic_cast<const VoltageSource*>(d) ||
                           dynamic_cast<const CurrentSource*>(d) ||
                           dynamic_cast<const Vcvs*>(d) ||
                           dynamic_cast<const Vccs*>(d);
    if (!stateless) stateful_.push_back(dev.get());
  }
  lu_.set_packed_solve(opts_.packed_solve);
  x_work_ = x_;
  x_new_ = x_;
  x_prev_ = x_;
  dt_next_ = opts_.dt;
}

TransientSession::~TransientSession() {
  engine_counters::add_transient(stats_);
}

double TransientSession::v(const std::string& node_name) const {
  const NodeId n = circuit_->find_node(node_name);
  if (n < 0)
    throw std::invalid_argument("TransientSession: unknown node '" + node_name + "'");
  return v(n);
}

VoltageSource& TransientSession::source(const std::string& name) {
  Device* d = circuit_->find_device(name);
  auto* vs = dynamic_cast<VoltageSource*>(d);
  if (!vs)
    throw std::invalid_argument("TransientSession: no voltage source '" + name + "'");
  return *vs;
}

void TransientSession::record_failure(std::string reason, double pivot_ratio) {
  stats_.last_failure = std::move(reason);
  stats_.last_failure_pivot_ratio = pivot_ratio;
}

bool TransientSession::newton_step(double dt, Integrator method,
                                   std::vector<double>& x) {
  const std::size_t n = circuit_->unknown_count();
  StampArgs args;
  args.mode = AnalysisMode::kTransient;
  args.method = method;
  args.t = t_ + dt;
  args.dt = dt;
  args.inv_dt = 1.0 / dt;
  args.gmin = opts_.gmin;
  args.x = &x;

  if (circuit_->linear()) {
    // Linear circuits: no stamp depends on x, so one solve is exact and the
    // matrix depends only on (dt, method) — a single cached factorization
    // serves the whole transient at a fixed step.
    mna_.reset();
    for (const auto& dev : circuit_->devices()) dev->stamp(mna_, args);
    ++stats_.newton_iterations;
    if (!linear_lu_fresh_ || linear_lu_dt_ != dt ||
        linear_lu_method_ != method) {
      // A (dt, method) change only rescales companion values — same
      // structure — so the frozen pivot order usually survives: refactor
      // first (cheap, no pivot search; essential under adaptive stepping
      // where dt changes nearly every step) and fall back to a fresh
      // partial-pivoting factorization when it degrades.
      bool factored = false;
      if (opts_.reuse_factorization && lu_primed_) {
        if (lu_.refactor(mna_.matrix())) {
          ++stats_.refactorizations;
          factored = true;
        }
      }
      if (!factored) {
        try {
          lu_.factor(mna_.matrix(), &pattern_->sparsity());
        } catch (const std::runtime_error& e) {
          ++stats_.singular_failures;
          record_failure("singular matrix in linear step at t=" +
                             std::to_string(args.t) + ": " + e.what(),
                         lu_.pivot_ratio());
          linear_lu_fresh_ = false;
          return false;
        }
        ++stats_.factorizations;
      }
      linear_lu_fresh_ = true;
      linear_lu_dt_ = dt;
      linear_lu_method_ = method;
      lu_primed_ = true;
    }
    x = mna_.rhs();
    lu_.solve_in_place(x);
    ++stats_.solves;
    return true;
  }

  const bool chord = opts_.lazy_jacobian && circuit_->residual_capable();
  const int refresh_every = std::max(1, opts_.jacobian_refresh_every);
  // Chord iterations only contract while the cached Jacobian is close
  // enough; track the update norm and rebuild as soon as contraction stops
  // (mode switches, large drive edges) instead of waiting for the budget.
  constexpr double kChordClamp = 1.0;  // revert chord updates larger than this
  double prev_max_delta = std::numeric_limits<double>::infinity();
  bool chord_ok = chord;  // cleared for the attempt once chording misbehaves
  int chord_streak = 0;
  for (int it = 0; it < opts_.max_newton; ++it) {
    ++stats_.newton_iterations;
    const bool jac_stale = !lu_primed_ || jac_dt_ != dt || jac_method_ != method;
    const bool refresh =
        !chord_ok || jac_stale || (chord_streak >= refresh_every);
    double check = 0.0;  // NaN/inf sentinel over the update
    bool converged = true;
    if (refresh) {
      // Full Newton iteration: assemble the linearized system, factorize
      // (reusing the frozen pivot order when allowed, falling back to a
      // fresh partial-pivoting factorization when it degrades) and solve.
      mna_.reset();
      for (const Device* dev : others_) dev->stamp(mna_, args);
      for (const Mosfet* m : mosfets_) m->Mosfet::stamp(mna_, args);
      bool factored = false;
      if (opts_.reuse_factorization && lu_primed_) {
        if (lu_.refactor(mna_.matrix())) {
          ++stats_.refactorizations;
          factored = true;
        }
      }
      if (!factored) {
        // The symbolic analysis only pays off when the factorization will
        // be reused; a pure per-iteration engine factors densely.
        const linalg::SparsityPattern* sym =
            (opts_.reuse_factorization || chord) ? &pattern_->sparsity()
                                                 : nullptr;
        try {
          lu_.factor(mna_.matrix(), sym);
        } catch (const std::runtime_error& e) {
          ++stats_.singular_failures;
          record_failure("singular matrix at t=" + std::to_string(args.t) +
                             " (newton iteration " + std::to_string(it + 1) +
                             "): " + e.what(),
                         lu_.pivot_ratio());
          lu_primed_ = false;
          return false;
        }
        ++stats_.factorizations;
        lu_primed_ = true;
      }
      jac_dt_ = dt;
      jac_method_ = method;
      x_new_ = mna_.rhs();
      lu_.solve_in_place(x_new_);
      ++stats_.solves;
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double delta = x_new_[i] - x[i];
        check += delta;
        max_delta = std::max(max_delta, std::abs(delta));
        if (std::abs(delta) > opts_.vabstol + opts_.reltol * std::abs(x_new_[i]))
          converged = false;
      }
      x.swap(x_new_);
      prev_max_delta = max_delta;
      chord_streak = 0;
    } else {
      // Chord iteration: device currents only, solved against the cached
      // factorization. Same fixed point, no assembly, no factorization.
      f_.assign(n, 0.0);
      for (const Device* dev : others_) dev->residual(f_, args);
      for (const Mosfet* m : mosfets_) m->Mosfet::residual(f_, args);
      if (opts_.iabstol > 0.0) {
        // The KCL mismatch of the current iterate is already below the
        // current tolerance everywhere: accept without the confirming
        // solve-and-update (the update it would compute is O(|f|)).
        double max_f = 0.0;
        for (std::size_t i = 0; i < n; ++i)
          max_f = std::max(max_f, std::abs(f_[i]));
        if (max_f <= opts_.iabstol) return true;
      }
      lu_.solve_in_place(f_);
      ++stats_.solves;
      const double scale = opts_.chord_tol_scale;
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double delta = f_[i];
        check += delta;
        max_delta = std::max(max_delta, std::abs(delta));
        x[i] -= delta;
        if (std::abs(delta) >
            scale * (opts_.vabstol + opts_.reltol * std::abs(x[i])))
          converged = false;
      }
      ++chord_streak;
      if (std::isfinite(check) && max_delta > kChordClamp) {
        // The stale Jacobian sent the iterate flying; undo the update and
        // run full Newton for the rest of this attempt.
        for (std::size_t i = 0; i < n; ++i) x[i] += f_[i];
        chord_ok = false;
        continue;
      }
      // A chord pass that stops contracting (mode switches, region
      // chatter) would limit-cycle against the refreshes; fall back to
      // full Newton for the rest of this attempt instead.
      if (max_delta >= prev_max_delta) chord_ok = false;
      prev_max_delta = max_delta;
    }
    if (!std::isfinite(check)) {
      ++stats_.singular_failures;
      record_failure("non-finite Newton update at t=" + std::to_string(args.t) +
                         " (newton iteration " + std::to_string(it + 1) +
                         ", pivot ratio " + std::to_string(lu_.pivot_ratio()) +
                         ")",
                     lu_.pivot_ratio());
      lu_primed_ = false;
      return false;
    }
    if (converged) return true;
  }
  ++stats_.nonconverged_failures;
  record_failure("Newton did not converge in " +
                     std::to_string(opts_.max_newton) + " iterations at t=" +
                     std::to_string(t_ + dt) +
                     " (pivot ratio " + std::to_string(lu_.pivot_ratio()) + ")",
                 lu_.pivot_ratio());
  return false;
}

void TransientSession::commit_all(const std::vector<double>& x, double dt) {
  for (Device* dev : stateful_) dev->commit(x, t_ + dt, dt);
}

// Linear history extrapolation over dt — the one formula shared by the
// Newton warm start and the adaptive LTE reference.
void TransientSession::extrapolate_into(double dt,
                                        std::vector<double>& out) const {
  const double r = dt / dt_prev_;
  out.resize(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i)
    out[i] = x_[i] + (x_[i] - x_prev_[i]) * r;
}

void TransientSession::predict_into(double dt, std::vector<double>& x) const {
  if (!opts_.predictor || !have_history_ || dt_prev_ <= 0.0) {
    x = x_;
    return;
  }
  extrapolate_into(dt, x);
}

void TransientSession::note_history(double dt) {
  // x_work_ holds the accepted solution; keep the outgoing committed one as
  // the predictor history point.
  x_prev_ = x_;
  x_.swap(x_work_);
  dt_prev_ = dt;
  have_history_ = true;
}

void TransientSession::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument("TransientSession::step: dt <= 0");

  predict_into(dt, x_work_);  // predictor warm start (or committed solution)
  if (newton_step(dt, opts_.method, x_work_)) {
    commit_all(x_work_, dt);
    note_history(dt);
    t_ += dt;
    ++stats_.steps;
    ++stats_.accepted_steps;
    return;
  }

  // Fallback 1: backward Euler is more damped, often rescues the step.
  ++stats_.rejected_steps;
  x_work_ = x_;
  if (newton_step(dt, Integrator::kBackwardEuler, x_work_)) {
    commit_all(x_work_, dt);
    note_history(dt);
    t_ += dt;
    ++stats_.steps;
    ++stats_.accepted_steps;
    ++stats_.fallback_steps;
    return;
  }

  // Fallback 2: four BE sub-steps.
  ++stats_.rejected_steps;
  ++stats_.fallback_steps;
  const double sub = dt / 4.0;
  for (int k = 0; k < 4; ++k) {
    x_work_ = x_;
    if (!newton_step(sub, Integrator::kBackwardEuler, x_work_))
      throw std::runtime_error(
          "TransientSession: Newton failed at t=" + std::to_string(t_) +
          (stats_.last_failure.empty() ? "" : ": " + stats_.last_failure));
    commit_all(x_work_, sub);
    note_history(sub);
    t_ += sub;
    ++stats_.accepted_steps;
  }
  ++stats_.steps;
}

void TransientSession::run_until(double t_stop) {
  while (t_ < t_stop - 0.5 * opts_.dt) step(opts_.dt);
}

double TransientSession::next_break_time() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& dev : circuit_->devices())
    best = std::min(best, dev->next_break(t_));
  return best;
}

void TransientSession::advance_to(double t_stop) {
  const AdaptiveOptions& ao = opts_.adaptive;
  const double teps =
      1e-12 * std::max({std::abs(t_stop), opts_.dt, 1e-12});
  // Never rewind: committed device history lives at time(); snapping t_
  // backwards would desynchronize sources from companion state.
  if (t_stop <= t_ + teps) return;
  if (!ao.enabled) {
    // Full opts.dt steps while they fit, then one remainder step — never
    // stepping past t_stop (overshooting would commit device history at a
    // time the snap below rewinds away from).
    while (t_stop - t_ > opts_.dt * (1.0 + 1e-9)) step(opts_.dt);
    const double rem = t_stop - t_;
    if (rem > teps) step(rem);
    t_ = t_stop;
    return;
  }

  if (dt_next_ <= 0.0) dt_next_ = opts_.dt;
  while (t_ < t_stop - teps) {
    // The controller's proposal, before event clipping. Growth decisions
    // are based on this (not on the clipped step), so landing exactly on a
    // breakpoint or macro boundary does not collapse the step size.
    double proposal = dt_next_;
    if (ao.dt_max > 0.0) proposal = std::min(proposal, ao.dt_max);
    proposal = std::max(proposal, ao.dt_min);
    // Event-aligned stepping: land exactly on the nearer of t_stop and the
    // next source-waveform discontinuity, splitting the remainder so the
    // landing step is never a sliver.
    double dt = proposal;
    const double limit = std::min(t_stop, next_break_time());
    const double rem = limit - t_;
    if (dt >= rem)
      dt = rem;
    else if (dt > 0.5 * rem)
      dt = 0.5 * rem;
    if (dt <= 0.0) break;  // numerical corner: already at the limit

    predict_into(dt, x_work_);
    bool ok = newton_step(dt, opts_.method, x_work_);
    if (!ok) {
      x_work_ = x_;  // rescue from the committed solution, not the predictor
      ok = newton_step(dt, Integrator::kBackwardEuler, x_work_);
      if (ok) ++stats_.fallback_steps;
    }
    if (!ok) {
      ++stats_.rejected_steps;
      if (dt <= ao.dt_min * (1.0 + 1e-9))
        throw std::runtime_error(
            "TransientSession: Newton failed at minimum step, t=" +
            std::to_string(t_) +
            (stats_.last_failure.empty() ? "" : ": " + stats_.last_failure));
      dt_next_ = std::max(dt * ao.shrink, ao.dt_min);
      continue;
    }

    // LTE accept/reject: compare the corrector against the shared linear
    // history extrapolation (the same formula the Newton warm start uses);
    // the /3 matches the trapezoidal-vs-explicit error split.
    double err = 0.0;
    if (have_history_ && dt_prev_ > 0.0) {
      extrapolate_into(dt, x_pred_);
      for (std::size_t i = 0; i < x_.size(); ++i) {
        const double scale =
            ao.lte_abstol +
            ao.lte_reltol * std::max(std::abs(x_work_[i]), std::abs(x_[i]));
        err = std::max(err, std::abs(x_work_[i] - x_pred_[i]) / (3.0 * scale));
      }
    }
    if (err > 1.0 && dt > ao.dt_min * (1.0 + 1e-9)) {
      ++stats_.rejected_steps;
      const double f =
          std::max(ao.shrink, ao.safety * std::pow(err, -1.0 / 3.0));
      dt_next_ = std::max(dt * f, ao.dt_min);
      continue;
    }

    commit_all(x_work_, dt);
    note_history(dt);
    t_ += dt;
    ++stats_.steps;
    ++stats_.accepted_steps;
    double f = ao.grow_limit;
    if (err > 0.0)
      f = std::clamp(ao.safety * std::pow(err, -1.0 / 3.0), ao.shrink,
                     ao.grow_limit);
    // Grow from the unclipped proposal when the delivery was merely
    // event-aligned; the LTE at the (smaller) delivered dt can only have
    // been easier, so the proposal remains the controller's state.
    dt_next_ = std::max(std::max(dt, proposal) * f, ao.dt_min);
  }
  t_ = t_stop;  // snap off the accumulated landing rounding
}

}  // namespace uwbams::spice
