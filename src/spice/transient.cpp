#include "spice/transient.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace uwbams::spice {

TransientSession::TransientSession(Circuit& circuit, TransientOptions options)
    : circuit_(&circuit), opts_(options) {
  circuit_->prepare();
  OpResult op = solve_op(*circuit_, opts_.op);
  if (!op.converged)
    throw std::runtime_error("TransientSession: operating point did not converge");
  op_ = op.x;
  x_ = op.x;
  for (const auto& dev : circuit_->devices()) dev->init_state(x_);
}

double TransientSession::v(const std::string& node_name) const {
  const NodeId n = circuit_->find_node(node_name);
  if (n < 0)
    throw std::invalid_argument("TransientSession: unknown node '" + node_name + "'");
  return v(n);
}

VoltageSource& TransientSession::source(const std::string& name) {
  Device* d = circuit_->find_device(name);
  auto* vs = dynamic_cast<VoltageSource*>(d);
  if (!vs)
    throw std::invalid_argument("TransientSession: no voltage source '" + name + "'");
  return *vs;
}

bool TransientSession::newton_step(double dt, Integrator method,
                                   std::vector<double>& x) {
  const std::size_t n = circuit_->unknown_count();
  Mna<double> mna(n);
  StampArgs args;
  args.mode = AnalysisMode::kTransient;
  args.method = method;
  args.t = t_ + dt;
  args.dt = dt;
  args.gmin = opts_.gmin;
  args.x = &x;

  for (int it = 0; it < opts_.max_newton; ++it) {
    mna.clear();
    for (const auto& dev : circuit_->devices()) dev->stamp(mna, args);
    std::vector<double> x_new;
    try {
      x_new = linalg::solve(mna.matrix(), mna.rhs());
    } catch (const std::runtime_error&) {
      newton_total_ += static_cast<std::uint64_t>(it + 1);
      return false;
    }
    bool converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = x_new[i] - x[i];
      if (std::abs(delta) > opts_.vabstol + opts_.reltol * std::abs(x_new[i]))
        converged = false;
    }
    x = std::move(x_new);
    if (converged) {
      newton_total_ += static_cast<std::uint64_t>(it + 1);
      return true;
    }
  }
  newton_total_ += static_cast<std::uint64_t>(opts_.max_newton);
  return false;
}

void TransientSession::commit_all(const std::vector<double>& x, double dt) {
  for (const auto& dev : circuit_->devices()) dev->commit(x, t_ + dt, dt);
}

void TransientSession::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument("TransientSession::step: dt <= 0");

  std::vector<double> x = x_;  // warm start from committed solution
  if (newton_step(dt, opts_.method, x)) {
    commit_all(x, dt);
    x_ = std::move(x);
    t_ += dt;
    ++steps_;
    return;
  }

  // Fallback 1: backward Euler is more damped, often rescues the step.
  x = x_;
  if (newton_step(dt, Integrator::kBackwardEuler, x)) {
    commit_all(x, dt);
    x_ = std::move(x);
    t_ += dt;
    ++steps_;
    ++fallbacks_;
    return;
  }

  // Fallback 2: four BE sub-steps.
  ++fallbacks_;
  const double sub = dt / 4.0;
  for (int k = 0; k < 4; ++k) {
    x = x_;
    if (!newton_step(sub, Integrator::kBackwardEuler, x))
      throw std::runtime_error("TransientSession: Newton failed at t=" +
                               std::to_string(t_));
    commit_all(x, sub);
    x_ = std::move(x);
    t_ += sub;
  }
  ++steps_;
}

void TransientSession::run_until(double t_stop) {
  while (t_ < t_stop - 0.5 * opts_.dt) step(opts_.dt);
}

}  // namespace uwbams::spice
