/// @file mosfet.hpp
/// @brief Level-1 (Shichman–Hodges) MOSFET with Meyer capacitances.
///
/// The large-signal model covers cutoff / triode / saturation with body
/// effect and channel-length modulation; drain/source are symmetric (swapped
/// internally when vds < 0). Gate capacitances follow the piecewise Meyer
/// model and are evaluated at the last committed solution, so they act as
/// linear companions within each Newton solve — the same simplification
/// classic SPICE Meyer implementations make.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "spice/device.hpp"
#include "spice/model_card.hpp"

namespace uwbams::spice {

/// Static evaluation of the Level-1 equations; exposed for unit tests and
/// for the characterization tools.
struct MosEval {
  enum class Region { kCutoff, kTriode, kSaturation };
  Region region = Region::kCutoff;
  double ids = 0.0;  ///< drain current in the *effective* (flipped) frame [A]
  double gm = 0.0;
  double gds = 0.0;
  double gmb = 0.0;
  double vth = 0.0;
};

class Mosfet final : public Device {
 public:
  /// Nodes are NodeIds (ground = 0): drain, gate, source, bulk.
  Mosfet(std::string name, int d, int g, int s, int b, MosModel model,
         double width, double length);

  bool nonlinear() const override { return true; }
  void stamp(Mna<double>& mna, const StampArgs& args) const override;
  bool supports_residual() const override { return true; }
  void residual(std::vector<double>& f, const StampArgs& args) const override;
  void footprint(MnaPattern& pattern) const override;
  void stamp_ac(Mna<std::complex<double>>& mna, const std::vector<double>& op,
                double omega) const override;
  void init_state(const std::vector<double>& op) override;
  void commit(const std::vector<double>& x, double t, double dt) override;

  const MosModel& model() const { return model_; }
  double width() const { return width_; }
  double length() const { return length_; }

  /// Fused-commit mode (the stat_equiv engine profile): commit() reuses the
  /// operating region recorded by the last residual()/stamp() evaluation
  /// instead of recomputing region_at(x). The last evaluation happened at
  /// the pre-final-update Newton iterate, so a device sitting exactly on a
  /// region boundary can freeze the other region's Meyer values — a
  /// marginal-bit difference, which is why this is off under bit_exact.
  void set_fused_commit(bool on) { fused_commit_ = on; }

  /// Level-1 equations at the given terminal voltages (actual node frame).
  MosEval evaluate(double vd, double vg, double vs, double vb) const;
  /// Evaluation at a solution vector (e.g. an operating point).
  MosEval evaluate_at(const std::vector<double>& x) const;

  std::string card(const Circuit& circuit) const override;

 private:
  /// MOS parasitic capacitances are integrated with backward Euler even when
  /// the global method is trapezoidal: the Meyer model switches capacitance
  /// values at region boundaries, and an undamped trapezoidal companion then
  /// rings at control-signal edges and rectifies the ringing into spurious
  /// charge on floating nodes (observed as common-mode drift of the held
  /// integration capacitor). BE damps the ringing; the fF-scale parasitics
  /// lose no relevant accuracy.
  struct CapState {
    double c = 0.0;       ///< capacitance frozen for the current step [F]
    double v_prev = 0.0;  ///< committed voltage across the cap
  };

  /// Meyer capacitance values for the region at solution x.
  /// Order: Cgs, Cgd, Cgb, Cdb, Csb.
  std::array<double, 5> meyer_caps(const std::vector<double>& x) const;
  /// Meyer capacitance values for an already-known region (the fused-commit
  /// path). Must stay table-identical to meyer_caps().
  std::array<double, 5> caps_for_region(MosEval::Region region) const;
  /// Drain current in the effective (flipped) frame — the ids-only half of
  /// evaluate(), used by the derivative-free residual() hot path. Must stay
  /// formula-identical to evaluate(). Writes the operating region to
  /// *region as a byproduct (it falls out of the vov/vds comparisons).
  double ids_effective(double vds, double vgs, double vbs,
                       MosEval::Region* region) const;
  /// Operating region at solution x — the first half of evaluate(), without
  /// the current/conductance math. Kept decision-identical to evaluate() so
  /// commit()-time cap refreshes stay exact but cheap.
  MosEval::Region region_at(const std::vector<double>& x) const;
  void refresh_cap_values(const std::vector<double>& x);

  int d_, g_, s_, b_;  ///< MNA matrix indices
  MosModel model_;
  double width_, length_;
  /// Operating-point-independent values hoisted out of evaluate(), which
  /// runs once per device per Newton iteration on the transient hot path.
  double leff_;      ///< effective channel length [m]
  double beta_;      ///< kp * W / Leff [A/V^2]
  double vt0_abs_;   ///< |VT0| [V]
  double sqrt_phi_;  ///< sqrt(phi) [sqrt(V)]
  double cox_tot_;   ///< total gate oxide capacitance [F]
  double ovl_s_, ovl_d_, ovl_b_;  ///< overlap capacitances [F]
  double cj_;        ///< junction capacitance [F]
  /// Cap terminal index pairs, fixed at construction.
  std::array<std::pair<int, int>, 5> cap_nodes_;
  std::array<CapState, 5> caps_;
  /// Fused-commit support: region observed by the most recent
  /// residual()/stamp() evaluation (mutable — those entry points are const).
  bool fused_commit_ = false;
  mutable MosEval::Region last_region_ = MosEval::Region::kCutoff;
};

}  // namespace uwbams::spice
