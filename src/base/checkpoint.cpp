#include "base/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "base/faults.hpp"
#include "base/json.hpp"

namespace uwbams::base {

namespace fs = std::filesystem;

std::uint64_t content_hash(std::string_view canonical) {
  return fnv1a64(canonical);
}

std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string CheckpointStore::shard_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard_%06zu.json", index);
  return buf;
}

namespace {

bool read_whole_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::string run_id,
                                 std::uint64_t content_key,
                                 std::size_t total_tasks, bool resume)
    : dir_(std::move(dir)), run_id_(std::move(run_id)) {
  if (dir_.empty())
    throw std::invalid_argument("CheckpointStore: empty directory");
  done_.assign(total_tasks, false);
  payloads_.assign(total_tasks, "");
  fs::create_directories(dir_);
  const fs::path manifest = fs::path(dir_) / "manifest.json";

  std::string manifest_text;
  const bool have_manifest =
      resume && read_whole_file(manifest, &manifest_text);
  if (have_manifest) {
    JsonValue doc;
    try {
      doc = parse_json(manifest_text);
    } catch (const JsonError& e) {
      throw std::runtime_error("CheckpointStore: corrupt manifest in " + dir_ +
                               ": " + e.what());
    }
    if (!doc.has("schema") || doc.at("schema").as_string() != kSchema)
      throw std::runtime_error(
          "CheckpointStore: unknown checkpoint schema in " + dir_);
    const std::string key = hex_u64(content_key);
    if (doc.at("content_key").as_string() != key)
      throw std::runtime_error(
          "CheckpointStore: content hash mismatch in " + dir_ +
          " (checkpoint " + doc.at("content_key").as_string() +
          ", this run " + key +
          ") — the checkpoint belongs to a different config/seed/tier");
    if (static_cast<std::size_t>(doc.at("total_tasks").as_number()) !=
        total_tasks)
      throw std::runtime_error(
          "CheckpointStore: task count mismatch in " + dir_ +
          " — the checkpoint belongs to a different run shape");
    // Load every readable shard; a missing or torn shard is recomputed.
    for (std::size_t i = 0; i < total_tasks; ++i) {
      std::string text;
      if (!read_whole_file(fs::path(dir_) / shard_name(i), &text)) continue;
      try {
        parse_json(text);
      } catch (const JsonError&) {
        continue;  // torn/truncated shard: treat as not completed
      }
      done_[i] = true;
      payloads_[i] = std::move(text);
    }
    return;
  }

  // Fresh start (also the `--resume` path when nothing exists yet): drop
  // any leftovers from an unrelated previous run so shards never mix.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name == "manifest.json" || name.rfind("shard_", 0) == 0)
      fs::remove(entry.path());
  }
  JsonObject doc;
  doc["schema"] = kSchema;
  doc["run"] = run_id_;
  doc["content_key"] = hex_u64(content_key);
  doc["total_tasks"] = static_cast<double>(total_tasks);
  std::ofstream out(manifest, std::ios::binary);
  if (!out)
    throw std::runtime_error("CheckpointStore: cannot write " +
                             manifest.string());
  out << JsonValue(std::move(doc)).dump(2) << "\n";
}

std::size_t CheckpointStore::completed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const bool d : done_) n += d ? 1 : 0;
  return n;
}

bool CheckpointStore::completed(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < done_.size() && done_[index];
}

std::string CheckpointStore::payload(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < payloads_.size() ? payloads_[index] : std::string();
}

void CheckpointStore::record(std::size_t index, const std::string& payload) {
  if (index >= done_.size())
    throw std::out_of_range("CheckpointStore::record: bad shard index");
  faults::check("checkpoint.shard", static_cast<std::uint64_t>(index));
  const fs::path final_path = fs::path(dir_) / shard_name(index);
  const fs::path tmp_path = fs::path(dir_) / (shard_name(index) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary);
    if (!out)
      throw std::runtime_error("CheckpointStore: cannot write " +
                               tmp_path.string());
    out << payload;
  }
  fs::rename(tmp_path, final_path);
  std::lock_guard<std::mutex> lock(mu_);
  done_[index] = true;
  payloads_[index] = payload;
}

}  // namespace uwbams::base
