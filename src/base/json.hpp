/// @file json.hpp
/// @brief Minimal JSON value model + parser for the artifact formats (surrogate tables, golden stats).
///
/// The PHY surrogate table (surrogate.hpp) is a *cached calibration
/// artifact*: one run fits it from the full-physics TWR engine, later runs
/// load it back. That round trip needs a JSON reader the repo did not have
/// (sinks only ever wrote JSON). This is a deliberately small recursive-
/// descent parser over the full JSON grammar — objects, arrays, strings
/// with escapes, numbers, booleans, null — sufficient for artifacts this
/// repo writes and strict enough to reject truncated or hand-mangled files
/// loudly instead of mis-calibrating a 10k-node simulation silently.
///
/// Numbers are stored as double (the only numeric type the artifacts use)
/// and serialized with %.17g so a write -> parse -> write cycle is
/// byte-stable — the property the CI jobs-determinism gates byte-compare.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace uwbams::base {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
// std::map keeps object keys sorted, so serialization order is canonical
// regardless of insertion order — part of the byte-stability contract.
using JsonObject = std::map<std::string, JsonValue>;

/// Thrown by parse_json / the typed accessors on malformed input.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(int v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(JsonArray a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  JsonValue(JsonObject o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw JsonError on a kind mismatch (a schema error
  /// in the artifact being read).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field access; throws JsonError when the key is absent.
  const JsonValue& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool has(const std::string& key) const;

  /// Canonical serialization: sorted keys, %.17g numbers, `indent` spaces
  /// per nesting level (0 = compact single line).
  std::string dump(int indent = 2) const;

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws JsonError with an offset-annotated message.
JsonValue parse_json(const std::string& text);

}  // namespace uwbams::base
