#include "base/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace uwbams::base {

namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  throw JsonError(std::string("json: expected ") + wanted + ", got " +
                  kind_name(got));
}

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_number(std::string* out, double v) {
  if (!std::isfinite(v))
    throw JsonError("json: non-finite number cannot be serialized");
  char buf[32];
  // %.17g round-trips every double exactly -> byte-stable artifacts.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue();
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The artifacts are ASCII; encode BMP code points as UTF-8 so the
          // parser is still total over valid input.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("bad number");
    const std::string tok = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      return JsonValue(v);
    } catch (const std::exception&) {
      pos_ = start;
      fail("bad number '" + tok + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return kind_ == Kind::kObject && obj_.count(key) > 0;
}

void JsonValue::dump_to(std::string* out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull: *out += "null"; break;
    case Kind::kBool: *out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      *out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        *out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < arr_.size()) *out += ",";
        *out += nl;
      }
      *out += close_pad;
      *out += "]";
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      *out += nl;
      std::size_t i = 0;
      for (const auto& [k, v] : obj_) {
        *out += pad;
        append_escaped(out, k);
        *out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
        if (++i < obj_.size()) *out += ",";
        *out += nl;
      }
      *out += close_pad;
      *out += "}";
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  if (indent > 0) out += "\n";
  return out;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace uwbams::base
