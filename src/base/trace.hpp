// trace.hpp — waveform recording for analog signals.
//
// A Trace captures (t, v) samples from a simulation, optionally decimated
// so multi-million-step runs stay memory-bounded. Used by benches that
// reproduce transient figures and by tests that check waveform properties.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace uwbams::base {

class Trace {
 public:
  // decimation = keep every Nth sample (1 = keep all).
  explicit Trace(std::string name = "trace", std::size_t decimation = 1)
      : name_(std::move(name)), decimation_(decimation ? decimation : 1) {}

  void record(double t, double v);
  void clear();

  const std::string& name() const { return name_; }
  std::size_t size() const { return t_.size(); }
  bool empty() const { return t_.empty(); }
  const std::vector<double>& times() const { return t_; }
  const std::vector<double>& values() const { return v_; }

  // Value at time t by linear interpolation (clamped at the ends).
  double at(double t) const;
  double max_value() const;
  double min_value() const;
  // First time the trace crosses `level` rising (or -1 if never).
  double first_crossing(double level) const;
  // CSV dump ("t,v" lines) for offline plotting.
  std::string to_csv() const;

 private:
  std::string name_;
  std::size_t decimation_;
  std::size_t counter_ = 0;
  std::vector<double> t_;
  std::vector<double> v_;
};

}  // namespace uwbams::base
