// random.hpp — seeded random number generation for reproducible experiments.
//
// Every stochastic element of the framework (AWGN, channel realizations,
// payload bits) draws from an explicitly seeded Rng so that experiments are
// bit-reproducible given the same seed. Distributions beyond the standard
// library (Nakagami-m, Poisson arrival processes) are provided for the
// IEEE 802.15.4a channel model.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace uwbams::base {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  void reseed(std::uint64_t seed) { engine_.seed(seed); }

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  // Standard normal (mean 0, stddev 1).
  double gaussian();
  // Normal with given mean and stddev.
  double gaussian(double mean, double stddev);
  // Exponential with given rate (mean 1/rate).
  double exponential(double rate);
  // Lognormal where the *underlying dB value* is N(mean_db, sigma_db):
  // returns 10^(N(mean_db, sigma_db)/10) — the 4a shadowing convention.
  double lognormal_db(double mean_db, double sigma_db);
  // Nakagami-m distributed *amplitude* with E[x^2] = omega.
  // Implemented by sampling a Gamma(m, omega/m) power and taking sqrt.
  double nakagami(double m, double omega);
  // Random bit (fair coin).
  bool bit();
  // Vector of random bits.
  std::vector<bool> bits(std::size_t n);

  // Next arrival time of a Poisson process with given rate, after `now`.
  double poisson_arrival_after(double now, double rate);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace uwbams::base
