// random.hpp — seeded random number generation for reproducible experiments.
//
// Every stochastic element of the framework (AWGN, channel realizations,
// payload bits) draws from an explicitly seeded Rng so that experiments are
// bit-reproducible given the same seed. Distributions beyond the standard
// library (Nakagami-m, Poisson arrival processes) are provided for the
// IEEE 802.15.4a channel model.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace uwbams::base {

// Stateless seed mixer (splitmix64 over base ^ f(stream)). Two calls with
// the same (base, stream) always produce the same seed, and nearby streams
// land far apart, so worker seeds never collide or correlate.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : seed_(seed), engine_(seed) {}

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    engine_.seed(seed);
  }

  // Seed this engine was last (re)seeded with. Draws do not change it.
  std::uint64_t seed() const { return seed_; }

  // Deterministic sub-stream: an independent Rng derived from this one's
  // *seed* (not its current state), so fork(i) yields the same stream no
  // matter how many draws happened before or which worker calls it — the
  // property that makes parallel Monte-Carlo runs reproducible regardless
  // of the job count.
  Rng fork(std::uint64_t stream) const { return Rng(derive_seed(seed_, stream)); }

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  // Standard normal (mean 0, stddev 1).
  double gaussian();
  // Normal with given mean and stddev.
  double gaussian(double mean, double stddev);
  // Exponential with given rate (mean 1/rate).
  double exponential(double rate);
  // Lognormal where the *underlying dB value* is N(mean_db, sigma_db):
  // returns 10^(N(mean_db, sigma_db)/10) — the 4a shadowing convention.
  double lognormal_db(double mean_db, double sigma_db);
  // Nakagami-m distributed *amplitude* with E[x^2] = omega.
  // Implemented by sampling a Gamma(m, omega/m) power and taking sqrt.
  double nakagami(double m, double omega);
  // Random bit (fair coin).
  bool bit();
  // Vector of random bits.
  std::vector<bool> bits(std::size_t n);

  // Next arrival time of a Poisson process with given rate, after `now`.
  double poisson_arrival_after(double now, double rate);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_ = 1;
  std::mt19937_64 engine_;
};

}  // namespace uwbams::base
