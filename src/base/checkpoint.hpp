/// @file checkpoint.hpp
/// @brief Byte-stable checkpoint journal for resumable sweeps.
///
/// A long sweep (100k-trial Monte-Carlo, a 20k-node netscale campaign) is a
/// set of independent tasks whose results are deterministic in (config,
/// seed, task index). That makes resumption trivial *if* completed results
/// survive the process: CheckpointStore shards each completed task's
/// serialized result to disk as it finishes, and a restarted run loads the
/// shards back instead of recomputing — producing final artifacts
/// byte-identical to an uninterrupted run (the property CI gates).
///
/// Layout of a checkpoint directory:
///   manifest.json    — schema "uwbams.checkpoint/1", run id, the content
///                      key (a hash of scenario config + seed + tier) and
///                      the total task count;
///   shard_NNNNNN.json— the serialized result of task N, written via
///                      tmp-file + rename so a kill mid-write never leaves
///                      a torn shard under the final name.
///
/// Resume contract: `resume = true` requires any existing manifest to
/// match (schema, content key, task count) — a mismatch means the
/// checkpoint belongs to a *different* run (stale config, different seed
/// or tier) and is rejected with an exception rather than silently mixing
/// results. A missing manifest starts fresh (so `--resume` is idempotent).
/// Shards that are missing or unreadable are simply recomputed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace uwbams::base {

/// Content hash of a canonical config string (fnv1a64). The caller renders
/// every result-affecting knob into `canonical`; two runs share a
/// checkpoint only when their keys match.
std::uint64_t content_hash(std::string_view canonical);

/// "0x%016x" rendering used for 64-bit values inside JSON artifacts (JSON
/// numbers are doubles; a seed or hash above 2^53 would lose bits).
std::string hex_u64(std::uint64_t v);

class CheckpointStore {
 public:
  static constexpr const char* kSchema = "uwbams.checkpoint/1";

  /// Opens (creating if needed) `dir` for a run identified by
  /// (run_id, content_key, total_tasks).
  ///   resume = false: any previous manifest/shards in `dir` are removed
  ///                   and a fresh manifest is written;
  ///   resume = true : an existing manifest must match — schema, content
  ///                   key and task count — or std::runtime_error is
  ///                   thrown (stale/corrupted checkpoint rejection); all
  ///                   readable shards are loaded as completed.
  CheckpointStore(std::string dir, std::string run_id,
                  std::uint64_t content_key, std::size_t total_tasks,
                  bool resume);

  const std::string& dir() const { return dir_; }
  std::size_t total_tasks() const { return done_.size(); }
  std::size_t completed_count() const;
  bool completed(std::size_t index) const;
  /// Payload of a completed shard ("" when not completed).
  std::string payload(std::size_t index) const;

  /// Atomically records shard `index` (tmp + rename). Thread-safe across
  /// distinct indices. Probes the "checkpoint.shard" fault site *before*
  /// writing, so an injected abort kills the run with this shard missing.
  void record(std::size_t index, const std::string& payload);

  /// shard_NNNNNN.json
  static std::string shard_name(std::size_t index);

 private:
  std::string dir_;
  std::string run_id_;
  std::vector<bool> done_;
  std::vector<std::string> payloads_;
  mutable std::mutex mu_;
};

}  // namespace uwbams::base
