#include "base/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "base/faults.hpp"

namespace uwbams::base {

ParallelRunner::ParallelRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

namespace {

struct CaughtFailure {
  std::size_t index = 0;
  std::string what;
  std::exception_ptr error;
};

// Fans tasks over `workers` threads (or runs inline for workers <= 1) and
// hands every per-task failure to `on_failure` under a mutex. Failures
// never cancel the sweep: remaining tasks always drain, so jobs=1 and
// jobs=8 see the same failure set.
void fan_out(std::size_t n, std::size_t workers,
             const std::function<bool(std::size_t, CaughtFailure*)>& run_one,
             std::vector<CaughtFailure>* failures) {
  std::mutex mu;
  auto body = [&](std::size_t i) {
    CaughtFailure f;
    if (run_one(i, &f)) return;
    std::lock_guard<std::mutex> lock(mu);
    failures->push_back(std::move(f));
  };
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        body(i);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(worker);
    worker();
    for (auto& t : threads) t.join();
  }
  std::sort(failures->begin(), failures->end(),
            [](const CaughtFailure& a, const CaughtFailure& b) {
              return a.index < b.index;
            });
}

}  // namespace

void ParallelRunner::for_each(std::size_t n,
                              const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  std::vector<CaughtFailure> failures;
  fan_out(
      n, workers,
      [&](std::size_t i, CaughtFailure* f) {
        try {
          fn(i);
          return true;
        } catch (const std::exception& e) {
          f->index = i;
          f->what = e.what();
          f->error = std::current_exception();
        } catch (...) {
          f->index = i;
          f->what = "non-standard exception";
          f->error = std::current_exception();
        }
        return false;
      },
      &failures);
  if (failures.empty()) return;
  // One failed task: rethrow the original exception (type preserved).
  // Several: aggregate count + the first few messages so a multi-failure
  // sweep is diagnosable from one error string.
  if (failures.size() == 1) std::rethrow_exception(failures[0].error);
  constexpr std::size_t kShow = 4;
  std::string msg = "ParallelRunner::for_each: " +
                    std::to_string(failures.size()) + " of " +
                    std::to_string(n) + " tasks failed";
  for (std::size_t k = 0; k < std::min(kShow, failures.size()); ++k)
    msg += "; task " + std::to_string(failures[k].index) + ": " +
           failures[k].what;
  if (failures.size() > kShow)
    msg += "; ... (" + std::to_string(failures.size() - kShow) + " more)";
  throw std::runtime_error(msg);
}

std::vector<TaskFailure> ParallelRunner::for_each_tolerant(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    const TaskPolicy& policy) const {
  std::vector<TaskFailure> out;
  if (n == 0) return out;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  const int attempts = std::max(0, policy.max_retries) + 1;
  std::vector<CaughtFailure> failures;
  fan_out(
      n, workers,
      [&](std::size_t i, CaughtFailure* f) {
        std::string reason = "unknown error";
        for (int a = 0; a < attempts; ++a) {
          if (a > 0 && policy.backoff_s > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(policy.backoff_s * a));
          // The attempt scope lets injected faults (and honest accounting)
          // distinguish first runs from retries; the probe is keyed by the
          // task index alone, so the same plan quarantines the same tasks
          // for any worker count.
          faults::AttemptScope scope(a);
          try {
            faults::check("runner.task", static_cast<std::uint64_t>(i));
            fn(i);
            return true;
          } catch (const std::exception& e) {
            reason = e.what();
          } catch (...) {
            reason = "non-standard exception";
          }
        }
        f->index = i;
        f->what = std::move(reason);
        return false;
      },
      &failures);
  out.reserve(failures.size());
  for (auto& f : failures)
    out.push_back({f.index, attempts, std::move(f.what)});
  return out;
}

}  // namespace uwbams::base
