#include "base/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace uwbams::base {

ParallelRunner::ParallelRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

void ParallelRunner::for_each(std::size_t n,
                              const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace uwbams::base
