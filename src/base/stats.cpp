#include "base/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uwbams::base {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::variance_population() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void BerCounter::add(bool error) {
  ++bits_;
  if (error) ++errors_;
}

void BerCounter::add_bits(std::uint64_t bits, std::uint64_t errors) {
  bits_ += bits;
  errors_ += errors;
}

double BerCounter::ber() const {
  return bits_ > 0 ? static_cast<double>(errors_) / static_cast<double>(bits_)
                   : 0.0;
}

double BerCounter::half_width_95() const {
  if (bits_ == 0) return 1.0;
  const double z = 1.96;
  const double n = static_cast<double>(bits_);
  const double p = ber();
  const double denom = 1.0 + z * z / n;
  const double half = (z / denom) *
                      std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n));
  return half;
}

Interval wilson_interval_95(std::uint64_t successes, std::uint64_t trials) {
  if (trials == 0) return {0.0, 1.0};
  const double z = 1.96;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double denom = 1.0 + z * z / n;
  const double center = (p + z * z / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n));
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

double ks_threshold(std::size_t n, std::size_t m, double alpha) {
  if (n == 0 || m == 0) return 0.0;
  const double c = std::sqrt(-std::log(alpha / 2.0) / 2.0);
  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double rms_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double max_abs_of(std::span<const double> xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, std::abs(x));
  return m;
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile_of: empty input");
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

QuantileSummary summarize_quantiles(std::vector<double> xs) {
  QuantileSummary q;
  q.count = xs.size();
  // Degenerate inputs get well-defined summaries instead of throwing (or,
  // before this guard existed, risking out-of-range interpolation indices):
  // an empty sample is the all-zero summary (count = 0 tells the consumer
  // apart from a genuine all-zero sample), and a single sample collapses
  // every quantile onto the one value.
  if (xs.empty()) return q;
  q.mean = mean_of(xs);
  if (xs.size() == 1) {
    q.min = q.max = q.p05 = q.p25 = q.p50 = q.p75 = q.p95 = xs.front();
    return q;
  }
  std::sort(xs.begin(), xs.end());
  q.min = xs.front();
  q.max = xs.back();
  // xs is already sorted; percentile_of sorts again, but these samples are
  // yield-report sized (hundreds), not waveform sized.
  q.p05 = percentile_of(xs, 5.0);
  q.p25 = percentile_of(xs, 25.0);
  q.p50 = percentile_of(xs, 50.0);
  q.p75 = percentile_of(xs, 75.0);
  q.p95 = percentile_of(xs, 95.0);
  return q;
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("fit_line: need >= 2 equal-length samples");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-300)
    throw std::invalid_argument("fit_line: degenerate x values");
  LineFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  return f;
}

}  // namespace uwbams::base
