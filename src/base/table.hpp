// table.hpp — paper-style ASCII tables and data series for bench output.
//
// Every bench binary reproduces a table or figure from the paper. Table
// renders aligned ASCII tables (Table 1 / Table 2 style); Series renders
// x/y rows suitable for plotting (Fig. 4 / 5 / 6 style), with an optional
// coarse ASCII plot for at-a-glance shape checks in CI logs.
#pragma once

#include <string>
#include <vector>

namespace uwbams::base {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 4);
  static std::string sci(double v, int precision = 3);

  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data_rows() const { return rows_; }

  std::string render() const;
  void print() const;  // render() to stdout
  // RFC-4180-style CSV (header row first; cells quoted when needed).
  std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// A named set of y-columns over a shared x-column.
class Series {
 public:
  Series(std::string title, std::string x_label)
      : title_(std::move(title)), x_label_(std::move(x_label)) {}

  void add_column(std::string label) { labels_.push_back(std::move(label)); }
  // row.size() must equal the number of columns added.
  void add_row(double x, const std::vector<double>& row);

  std::size_t rows() const { return x_.size(); }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& column(std::size_t i) const { return cols_.at(i); }
  const std::string& title() const { return title_; }
  const std::string& x_label() const { return x_label_; }
  const std::vector<std::string>& labels() const { return labels_; }

  std::string render(int precision = 6) const;
  // CSV with %.17g values (round-trips doubles exactly).
  std::string to_csv() const;
  void print(int precision = 6) const;
  // Coarse ASCII plot, optionally with log10 y-axis (for BER curves).
  std::string ascii_plot(int width = 64, int height = 20, bool log_y = false) const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<std::string> labels_;
  std::vector<double> x_;
  std::vector<std::vector<double>> cols_;
};

}  // namespace uwbams::base
