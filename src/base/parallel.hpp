// parallel.hpp — worker pool for embarrassingly parallel sweeps.
//
// BER sweeps, Monte-Carlo TWR iterations and ablation grids are independent
// simulations; ParallelRunner fans them across std::threads. Results are
// stored by task index, and all seeding happens per task (ScenarioSpec /
// base::Rng::fork) before execution starts, so the output is identical for
// any job count — "--jobs=8" is purely a wall-clock knob.
//
// Lives in base/ (not runner/) so library-level sweeps like
// uwb::run_ber_sweep can fan out without depending on the scenario layer;
// runner/parallel.hpp re-exports the class under its historical name.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace uwbams::base {

// Retry/quarantine policy of the tolerant execution paths. Retries are
// deterministic re-runs: a task's seeds derive from its index alone, so a
// retry repeats the exact same computation — it only helps against faults
// that distinguish attempts (injected faults with fail_attempts, or real
// transient failures like I/O).
struct TaskPolicy {
  int max_retries = 1;     // re-runs before the task is quarantined
  double backoff_s = 0.0;  // linear backoff between attempts (attempt * backoff_s)
};

// A task that exhausted its retries: quarantined with a structured record
// instead of aborting the sweep.
struct TaskFailure {
  std::size_t index = 0;  // task index
  int attempts = 0;       // executions performed (retries + 1)
  std::string reason;     // what() of the last failure
};

class ParallelRunner {
 public:
  // jobs <= 0 selects std::thread::hardware_concurrency().
  explicit ParallelRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  // Runs fn(0) .. fn(n-1) across the pool. Tasks must not depend on each
  // other. Blocks until all tasks finish (failures drain, never cancel);
  // a single failed task rethrows its original exception, multiple
  // failures throw one std::runtime_error aggregating the count and the
  // first few task messages.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  // Like for_each but collects return values, ordered by task index.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  // Fault-tolerant variant: each task runs up to policy.max_retries + 1
  // times (inside a faults::AttemptScope, probing the "runner.task" fault
  // site with the task index as key); tasks that still fail are returned
  // as TaskFailure records, sorted by index — never thrown. The sweep
  // always completes.
  std::vector<TaskFailure> for_each_tolerant(
      std::size_t n, const std::function<void(std::size_t)>& fn,
      const TaskPolicy& policy = {}) const;

  // Tolerant map: quarantined indices keep their default-constructed R and
  // are listed in *failures (when non-null).
  template <typename R>
  std::vector<R> map_tolerant(std::size_t n,
                              const std::function<R(std::size_t)>& fn,
                              std::vector<TaskFailure>* failures,
                              const TaskPolicy& policy = {}) const {
    std::vector<R> out(n);
    auto f = for_each_tolerant(
        n, [&](std::size_t i) { out[i] = fn(i); }, policy);
    if (failures != nullptr) *failures = std::move(f);
    return out;
  }

 private:
  int jobs_;
};

}  // namespace uwbams::base
