// parallel.hpp — worker pool for embarrassingly parallel sweeps.
//
// BER sweeps, Monte-Carlo TWR iterations and ablation grids are independent
// simulations; ParallelRunner fans them across std::threads. Results are
// stored by task index, and all seeding happens per task (ScenarioSpec /
// base::Rng::fork) before execution starts, so the output is identical for
// any job count — "--jobs=8" is purely a wall-clock knob.
//
// Lives in base/ (not runner/) so library-level sweeps like
// uwb::run_ber_sweep can fan out without depending on the scenario layer;
// runner/parallel.hpp re-exports the class under its historical name.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace uwbams::base {

class ParallelRunner {
 public:
  // jobs <= 0 selects std::thread::hardware_concurrency().
  explicit ParallelRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  // Runs fn(0) .. fn(n-1) across the pool. Tasks must not depend on each
  // other. Blocks until all tasks finish; the first exception thrown by a
  // task is rethrown here (remaining tasks still drain).
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  // Like for_each but collects return values, ordered by task index.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  int jobs_;
};

}  // namespace uwbams::base
