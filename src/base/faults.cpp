#include "base/faults.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "base/json.hpp"
#include "base/random.hpp"

namespace uwbams::base {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Rule-key vocabulary is closed so a typo in a hand-written plan fails the
// parse instead of silently never firing.
const char* const kRuleKeys[] = {"site",       "rate",      "fail_attempts",
                                 "action",     "fire_after", "max_fires",
                                 "message"};

double require_number(const JsonValue& v, const char* what, double lo,
                      double hi) {
  const double x = v.as_number();
  if (!(x >= lo && x <= hi))
    throw std::runtime_error(std::string("FaultPlan: ") + what +
                             " out of range");
  return x;
}

}  // namespace

FaultPlan FaultPlan::from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.has("schema") || doc.at("schema").as_string() != kSchema)
    throw std::runtime_error(
        std::string("FaultPlan: expected schema \"") + kSchema + "\"");
  FaultPlan plan;
  if (doc.has("seed"))
    plan.seed = static_cast<std::uint64_t>(
        require_number(doc.at("seed"), "seed", 0.0, 9.007199254740992e15));
  const auto& known = faults::known_sites();
  for (const JsonValue& rv : doc.at("rules").as_array()) {
    const JsonObject& obj = rv.as_object();
    for (const auto& [key, unused] : obj) {
      (void)unused;
      bool ok = false;
      for (const char* k : kRuleKeys) ok = ok || key == k;
      if (!ok)
        throw std::runtime_error("FaultPlan: unknown rule key '" + key + "'");
    }
    FaultRule rule;
    rule.site = rv.at("site").as_string();
    bool site_known = false;
    for (const auto& s : known) site_known = site_known || s == rule.site;
    if (!site_known)
      throw std::runtime_error("FaultPlan: unknown site '" + rule.site + "'");
    if (rv.has("rate"))
      rule.rate = require_number(rv.at("rate"), "rate", 0.0, 1.0);
    if (rv.has("fail_attempts")) {
      rule.fail_attempts = static_cast<int>(
          require_number(rv.at("fail_attempts"), "fail_attempts", 1.0, 1e6));
    }
    if (rv.has("action")) {
      const std::string& action = rv.at("action").as_string();
      if (action == "abort")
        rule.abort = true;
      else if (action != "throw")
        throw std::runtime_error("FaultPlan: action must be throw|abort, got '" +
                                 action + "'");
    }
    if (rv.has("fire_after"))
      rule.fire_after = static_cast<std::uint64_t>(
          require_number(rv.at("fire_after"), "fire_after", 0.0, 1e15));
    if (rv.has("max_fires"))
      rule.max_fires = static_cast<std::int64_t>(
          require_number(rv.at("max_fires"), "max_fires", 1.0, 1e15));
    if (rv.has("message")) rule.message = rv.at("message").as_string();
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  JsonArray rule_values;
  for (const FaultRule& r : rules) {
    JsonObject obj;
    obj["site"] = r.site;
    obj["rate"] = r.rate;
    if (r.fail_attempts >= 0) obj["fail_attempts"] = r.fail_attempts;
    obj["action"] = r.abort ? "abort" : "throw";
    if (r.fire_after > 0) obj["fire_after"] = static_cast<double>(r.fire_after);
    if (r.max_fires >= 0) obj["max_fires"] = static_cast<double>(r.max_fires);
    if (!r.message.empty()) obj["message"] = r.message;
    rule_values.push_back(JsonValue(std::move(obj)));
  }
  JsonObject doc;
  doc["schema"] = kSchema;
  doc["seed"] = static_cast<double>(seed);
  doc["rules"] = JsonValue(std::move(rule_values));
  return JsonValue(std::move(doc)).dump(2) + "\n";
}

namespace faults {

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "runner.task",        // every tolerant ParallelRunner task
      "spice.nonconverge",  // characterize_itd entry (OP-solve failure)
      "sink.write",         // ResultSink artifact writes
      "net.calibrate",      // surrogate calibration/validation exchanges
      "netscale.measure",   // NetScaleEngine per-tag measurement
      "checkpoint.shard",   // CheckpointStore::record (kill-mid-run faults)
  };
  return sites;
}

namespace {

struct Installed {
  FaultPlan plan;
  // Process-wide match counters for fire_after/max_fires (arrival order;
  // see the header's determinism caveat).
  std::unique_ptr<std::atomic<std::uint64_t>[]> matches;
};

std::mutex g_mu;
std::shared_ptr<const Installed> g_plan;
std::atomic<bool> g_active{false};

thread_local int t_attempt = 0;

std::shared_ptr<const Installed> snapshot() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_plan;
}

}  // namespace

void install(const FaultPlan& plan) {
  auto inst = std::make_shared<Installed>();
  inst->plan = plan;
  inst->matches =
      std::make_unique<std::atomic<std::uint64_t>[]>(plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) inst->matches[i] = 0;
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = std::move(inst);
  g_active.store(true, std::memory_order_release);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan.reset();
  g_active.store(false, std::memory_order_release);
}

bool active() { return g_active.load(std::memory_order_acquire); }

void check(const char* site, std::uint64_t key) {
  if (!g_active.load(std::memory_order_acquire)) return;
  const auto inst = snapshot();
  if (!inst) return;
  const std::uint64_t site_hash = fnv1a64(site);
  for (std::size_t ri = 0; ri < inst->plan.rules.size(); ++ri) {
    const FaultRule& rule = inst->plan.rules[ri];
    if (rule.site != site) continue;
    if (rule.fail_attempts >= 0 && t_attempt >= rule.fail_attempts) continue;
    if (rule.rate < 1.0) {
      // The fire decision depends on (plan seed, site, rule index, key)
      // alone — identical for any worker count or execution order.
      Rng rng(derive_seed(derive_seed(derive_seed(inst->plan.seed, site_hash),
                                      static_cast<std::uint64_t>(ri)),
                          key));
      if (rng.uniform() >= rule.rate) continue;
    }
    if (rule.fire_after > 0 || rule.max_fires >= 0) {
      const std::uint64_t n = ++inst->matches[ri];
      if (n <= rule.fire_after) continue;
      if (rule.max_fires >= 0 &&
          n > rule.fire_after + static_cast<std::uint64_t>(rule.max_fires))
        continue;
    }
    if (rule.abort) {
      // Simulated kill: no destructors, no stream flushes — partial state
      // on disk is exactly what a real SIGKILL leaves behind.
      std::fprintf(stderr, "faults: aborting at site %s (injected)\n", site);
      std::_Exit(43);
    }
    std::string msg =
        rule.message.empty() ? std::string("injected fault") : rule.message;
    msg += std::string(" [site=") + site + "]";
    throw FaultInjected(msg);
  }
}

int current_attempt() { return t_attempt; }

AttemptScope::AttemptScope(int attempt) : prev_(t_attempt) {
  t_attempt = attempt;
}

AttemptScope::~AttemptScope() { t_attempt = prev_; }

}  // namespace faults

}  // namespace uwbams::base
