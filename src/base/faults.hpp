/// @file faults.hpp
/// @brief Deterministic fault injection for robustness testing.
///
/// Long sweeps must survive task failures, and the failure paths that make
/// that possible (retry, quarantine, checkpoint/resume) need to be
/// *testable* — which means failures must be injectable on demand and
/// reproducible. A FaultPlan names the failure sites the codebase exposes
/// (solver non-convergence, task-level exceptions in ParallelRunner,
/// artifact-write errors, surrogate-exchange failures, checkpoint shard
/// writes) and, per site, the probability and shape of the injected fault.
///
/// Determinism contract (same as every other stochastic layer in the
/// repo): whether a probe fires is decided by
///   Rng(derive_seed(derive_seed(derive_seed(plan.seed, fnv1a64(site)),
///                   rule_index), key)).uniform() < rate
/// where `key` is a caller-supplied value derived from the *work item*
/// (trial seed, task index, filename hash) — never from execution order or
/// worker id. The same plan + seed fires the same faults for any `--jobs`
/// value, so CI can byte-compare fault-injected artifacts across job
/// counts exactly like clean runs.
///
/// The exception: rules using `fire_after` / `max_fires` count *process-
/// wide* matches in arrival order, which is racy across workers by design.
/// They exist for abort-style kill faults ("die after ~N checkpoint
/// shards"), where the byte-determinism of the killed run is irrelevant —
/// only the resumed run's bytes are gated.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace uwbams::base {

/// FNV-1a 64-bit hash. Used to key fault sites and artifact names into the
/// derive_seed stream space, and as the checkpoint content hash — stable
/// across platforms and builds by construction.
std::uint64_t fnv1a64(std::string_view text);

/// One injection rule of a FaultPlan.
struct FaultRule {
  std::string site;          ///< one of faults::known_sites()
  double rate = 1.0;         ///< per-probe fire probability in [0, 1]
  /// Fire only while the probe runs inside attempt < fail_attempts of a
  /// retry loop (-1 = every attempt). `fail_attempts: 1` makes a fault
  /// that a single retry deterministically clears — the retry-then-succeed
  /// path — while the default makes retries refire (retry-then-quarantine).
  int fail_attempts = -1;
  bool abort = false;        ///< action "abort": _Exit instead of throwing
  /// Skip the first N rate-passing matches (process-wide, arrival order) —
  /// "kill after ~N checkpoint shards". 0 = fire from the first match.
  std::uint64_t fire_after = 0;
  std::int64_t max_fires = -1;  ///< stop after this many fires (-1 = unlimited)
  std::string message;       ///< optional custom exception text

  bool operator==(const FaultRule&) const = default;
};

/// A schema-versioned, JSON-serializable set of fault rules.
struct FaultPlan {
  static constexpr const char* kSchema = "uwbams.fault_plan/1";

  std::uint64_t seed = 1;  ///< decision stream seed (independent of --seed)
  std::vector<FaultRule> rules;

  /// Strict parse: rejects unknown schema versions, unknown rule keys,
  /// unknown sites and out-of-range values (std::runtime_error /
  /// JsonError), so a stale or mistyped plan fails loudly.
  static FaultPlan from_json(const std::string& text);
  /// Canonical serialization (sorted keys, %.17g): from_json(to_json(p))
  /// round-trips exactly.
  std::string to_json() const;
};

/// Thrown by an injected `throw`-action fault.
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace faults {

/// The closed site vocabulary. Adding an injection probe means adding its
/// name here (from_json validates against this list) and documenting it in
/// docs/robustness.md.
const std::vector<std::string>& known_sites();

/// Installs `plan` process-wide (replacing any previous plan). Probes are
/// no-ops until a plan is installed.
void install(const FaultPlan& plan);
/// Removes the installed plan.
void clear();
/// True when a plan is installed.
bool active();

/// The injection probe. No-op without an installed plan; with one,
/// evaluates every rule matching `site` against `key` and either returns
/// (no fire), throws FaultInjected, or — for abort rules — terminates the
/// process via _Exit (simulating a kill: no destructors, no flushes).
void check(const char* site, std::uint64_t key);

/// The current retry attempt (0-based) of the innermost AttemptScope on
/// this thread; 0 outside any scope. Lets sweep layers report honest
/// per-task attempt counts.
int current_attempt();

/// RAII attempt marker set by retry loops (ParallelRunner) so
/// FaultRule::fail_attempts can distinguish first runs from retries.
class AttemptScope {
 public:
  explicit AttemptScope(int attempt);
  ~AttemptScope();
  AttemptScope(const AttemptScope&) = delete;
  AttemptScope& operator=(const AttemptScope&) = delete;

 private:
  int prev_;
};

}  // namespace faults

}  // namespace uwbams::base
