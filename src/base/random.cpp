#include "base/random.hpp"

#include <cmath>

namespace uwbams::base {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // splitmix64 (Steele/Lea/Flood) over the combined value; the golden-ratio
  // stride decorrelates consecutive stream indices before mixing.
  std::uint64_t z = base ^ (stream + 0x9e3779b97f4a7c15ull);
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  // Never hand back 0: mt19937_64 accepts it, but a zero seed is a common
  // sentinel in configs and would alias with "unset".
  return z ? z : 0x9e3779b97f4a7c15ull;
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double Rng::gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::lognormal_db(double mean_db, double sigma_db) {
  const double db = gaussian(mean_db, sigma_db);
  return std::pow(10.0, db / 10.0);
}

double Rng::nakagami(double m, double omega) {
  // Power of a Nakagami-m amplitude is Gamma(shape=m, scale=omega/m).
  std::gamma_distribution<double> gamma(m, omega / m);
  return std::sqrt(gamma(engine_));
}

bool Rng::bit() { return uniform_int(0, 1) != 0; }

std::vector<bool> Rng::bits(std::size_t n) {
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = bit();
  return out;
}

double Rng::poisson_arrival_after(double now, double rate) {
  return now + exponential(rate);
}

}  // namespace uwbams::base
