#include "base/random.hpp"

#include <cmath>

namespace uwbams::base {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double Rng::gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::lognormal_db(double mean_db, double sigma_db) {
  const double db = gaussian(mean_db, sigma_db);
  return std::pow(10.0, db / 10.0);
}

double Rng::nakagami(double m, double omega) {
  // Power of a Nakagami-m amplitude is Gamma(shape=m, scale=omega/m).
  std::gamma_distribution<double> gamma(m, omega / m);
  return std::sqrt(gamma(engine_));
}

bool Rng::bit() { return uniform_int(0, 1) != 0; }

std::vector<bool> Rng::bits(std::size_t n) {
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = bit();
  return out;
}

double Rng::poisson_arrival_after(double now, double rate) {
  return now + exponential(rate);
}

}  // namespace uwbams::base
