// stats.hpp — streaming statistics and measurement helpers.
//
// RunningStats implements Welford's online algorithm so benches can
// accumulate millions of samples without storing them. BerCounter tracks
// bit errors together with a Wilson confidence interval so BER sweeps can
// stop early once the estimate is tight enough (or enough errors were seen).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace uwbams::base {

// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Unbiased sample variance (n-1 denominator).
  double variance() const;
  // Population variance (n denominator).
  double variance_population() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Bit-error-rate counter with early-stop support.
class BerCounter {
 public:
  void add(bool error);
  void add_bits(std::uint64_t bits, std::uint64_t errors);

  std::uint64_t bits() const { return bits_; }
  std::uint64_t errors() const { return errors_; }
  double ber() const;
  // Wilson score interval half-width at ~95% confidence.
  double half_width_95() const;
  // True once at least `min_errors` errors have been observed (Monte-Carlo
  // stopping rule: relative error of the BER estimate ~ 1/sqrt(errors)).
  bool converged(std::uint64_t min_errors) const { return errors_ >= min_errors; }

 private:
  std::uint64_t bits_ = 0;
  std::uint64_t errors_ = 0;
};

// Simple descriptive helpers over a span of samples.
double mean_of(std::span<const double> xs);
double variance_of(std::span<const double> xs);  // unbiased
double rms_of(std::span<const double> xs);
double max_abs_of(std::span<const double> xs);
// p in [0,100]; linear interpolation between order statistics.
double percentile_of(std::vector<double> xs, double p);

// Five-number-plus summary of a sample, built on percentile_of — the
// per-parameter record Monte-Carlo yield reports quote (min / p5 / p25 /
// median / p75 / p95 / max plus the mean). Degenerate inputs are
// well-defined: an empty sample returns the all-zero summary with
// count == 0, a single sample collapses every quantile onto that value.
struct QuantileSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0, max = 0.0;
  double p05 = 0.0, p25 = 0.0, p50 = 0.0, p75 = 0.0, p95 = 0.0;
};
QuantileSummary summarize_quantiles(std::vector<double> xs);

// Least-squares line fit y = a + b*x; returns {a, b}.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LineFit fit_line(std::span<const double> x, std::span<const double> y);

// Closed interval [lo, hi] on the real line.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool overlaps(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }
};

// Wilson score interval at ~95% confidence for a binomial proportion with
// `successes` out of `trials`. The same interval BerCounter::half_width_95
// is centered on; exposed standalone so equivalence checks can compare two
// BER measurements by CI overlap. trials == 0 returns the vacuous [0, 1].
Interval wilson_interval_95(std::uint64_t successes, std::uint64_t trials);

// Two-sample Kolmogorov–Smirnov statistic: sup |F_a(x) - F_b(x)| over the
// empirical CDFs. Either sample empty returns 1.0 (maximally distinct).
double ks_statistic(std::vector<double> a, std::vector<double> b);

// Rejection threshold for the two-sample KS test at significance `alpha`
// (asymptotic form): c(alpha) * sqrt((n + m) / (n * m)) with
// c(alpha) = sqrt(-ln(alpha / 2) / 2). Samples are "statistically
// equivalent" at level alpha when ks_statistic <= ks_threshold.
double ks_threshold(std::size_t n, std::size_t m, double alpha);

}  // namespace uwbams::base
