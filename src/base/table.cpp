#include "base/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace uwbams::base {

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto line = [&](char c) {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, c) + "+";
    return s + "\n";
  };
  auto fmt_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      s += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  os << title_ << "\n" << line('-');
  if (!header_.empty()) os << fmt_row(header_) << line('=');
  for (const auto& r : rows_) os << fmt_row(r);
  os << line('-');
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

namespace {

std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

std::string csv_row(const std::vector<std::string>& row) {
  std::string s;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) s += ',';
    s += csv_cell(row[i]);
  }
  return s + "\n";
}

}  // namespace

std::string Table::to_csv() const {
  std::string s;
  if (!header_.empty()) s += csv_row(header_);
  for (const auto& r : rows_) s += csv_row(r);
  return s;
}

void Series::add_row(double x, const std::vector<double>& row) {
  if (row.size() != labels_.size())
    throw std::invalid_argument("Series::add_row: column count mismatch");
  x_.push_back(x);
  if (cols_.size() != labels_.size()) cols_.resize(labels_.size());
  for (std::size_t i = 0; i < row.size(); ++i) cols_[i].push_back(row[i]);
}

std::string Series::render(int precision) const {
  std::ostringstream os;
  os << title_ << "\n" << x_label_;
  for (const auto& l : labels_) os << "\t" << l;
  os << "\n";
  char buf[64];
  for (std::size_t r = 0; r < x_.size(); ++r) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, x_[r]);
    os << buf;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      std::snprintf(buf, sizeof buf, "%.*g", precision, cols_[c][r]);
      os << "\t" << buf;
    }
    os << "\n";
  }
  return os.str();
}

void Series::print(int precision) const {
  std::cout << render(precision) << std::flush;
}

std::string Series::to_csv() const {
  std::ostringstream os;
  os << csv_cell(x_label_);
  for (const auto& l : labels_) os << "," << csv_cell(l);
  os << "\n";
  char buf[64];
  for (std::size_t r = 0; r < x_.size(); ++r) {
    std::snprintf(buf, sizeof buf, "%.17g", x_[r]);
    os << buf;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      std::snprintf(buf, sizeof buf, "%.17g", cols_[c][r]);
      os << "," << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::string Series::ascii_plot(int width, int height, bool log_y) const {
  if (x_.empty() || cols_.empty()) return "(empty series)\n";
  auto ty = [&](double v) {
    if (!log_y) return v;
    return std::log10(std::max(v, 1e-300));
  };
  double ymin = 1e300, ymax = -1e300;
  for (const auto& col : cols_)
    for (double v : col) {
      if (log_y && v <= 0.0) continue;
      ymin = std::min(ymin, ty(v));
      ymax = std::max(ymax, ty(v));
    }
  if (ymin > ymax) return "(no plottable data)\n";
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;
  const double xmin = x_.front(), xmax = x_.back();
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const char marks[] = {'*', 'o', '+', 'x', '#', '@'};
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    for (std::size_t r = 0; r < x_.size(); ++r) {
      if (log_y && cols_[c][r] <= 0.0) continue;
      const double fx = (xmax > xmin) ? (x_[r] - xmin) / (xmax - xmin) : 0.0;
      const double fy = (ty(cols_[c][r]) - ymin) / (ymax - ymin);
      const int px = std::clamp(static_cast<int>(fx * (width - 1)), 0, width - 1);
      const int py = std::clamp(static_cast<int>((1.0 - fy) * (height - 1)), 0,
                                height - 1);
      grid[static_cast<std::size_t>(py)][static_cast<std::size_t>(px)] =
          marks[c % (sizeof marks)];
    }
  }
  std::ostringstream os;
  os << title_ << "  [";
  for (std::size_t c = 0; c < labels_.size(); ++c)
    os << (c ? ", " : "") << marks[c % (sizeof marks)] << "=" << labels_[c];
  os << "]\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", log_y ? std::pow(10, ymax) : ymax);
  os << "  y_max=" << buf << "\n";
  for (const auto& row : grid) os << "  |" << row << "|\n";
  std::snprintf(buf, sizeof buf, "%.3g", log_y ? std::pow(10, ymin) : ymin);
  os << "  y_min=" << buf << "   x: " << xmin << " .. " << xmax << "\n";
  return os.str();
}

}  // namespace uwbams::base
