#include "base/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace uwbams::base {

void Trace::record(double t, double v) {
  if (counter_++ % decimation_ != 0) return;
  t_.push_back(t);
  v_.push_back(v);
}

void Trace::clear() {
  counter_ = 0;
  t_.clear();
  v_.clear();
}

double Trace::at(double t) const {
  if (t_.empty()) throw std::logic_error("Trace::at on empty trace");
  if (t <= t_.front()) return v_.front();
  if (t >= t_.back()) return v_.back();
  const auto it = std::lower_bound(t_.begin(), t_.end(), t);
  const auto i = static_cast<std::size_t>(it - t_.begin());
  const double t0 = t_[i - 1], t1 = t_[i];
  const double f = (t1 > t0) ? (t - t0) / (t1 - t0) : 0.0;
  return v_[i - 1] * (1.0 - f) + v_[i] * f;
}

double Trace::max_value() const {
  if (v_.empty()) throw std::logic_error("Trace::max_value on empty trace");
  return *std::max_element(v_.begin(), v_.end());
}

double Trace::min_value() const {
  if (v_.empty()) throw std::logic_error("Trace::min_value on empty trace");
  return *std::min_element(v_.begin(), v_.end());
}

double Trace::first_crossing(double level) const {
  for (std::size_t i = 1; i < v_.size(); ++i) {
    if (v_[i - 1] < level && v_[i] >= level) {
      const double f = (level - v_[i - 1]) / (v_[i] - v_[i - 1]);
      return t_[i - 1] + f * (t_[i] - t_[i - 1]);
    }
  }
  return -1.0;
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << "t," << name_ << "\n";
  char buf[96];
  for (std::size_t i = 0; i < t_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.9e,%.9e\n", t_[i], v_[i]);
    os << buf;
  }
  return os.str();
}

}  // namespace uwbams::base
