// units.hpp — physical constants, SI scale factors and dB helpers.
//
// All simulation quantities in uwbams are plain SI doubles (seconds, volts,
// amperes, hertz, meters). These helpers make literals readable:
//   double ts = 128.0 * units::ns;
//   double gain = units::db_to_lin(21.0);
#pragma once

#include <cmath>

namespace uwbams::units {

// SI scale factors (multiply a literal by these).
inline constexpr double femto = 1e-15;
inline constexpr double pico = 1e-12;
inline constexpr double nano = 1e-9;
inline constexpr double micro = 1e-6;
inline constexpr double milli = 1e-3;
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;

// Time.
inline constexpr double fs = 1e-15;
inline constexpr double ps = 1e-12;
inline constexpr double ns = 1e-9;
inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

// Frequency.
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// Capacitance / charge-domain.
inline constexpr double fF = 1e-15;
inline constexpr double pF = 1e-12;
inline constexpr double nF = 1e-9;

// Voltage / current.
inline constexpr double mV = 1e-3;
inline constexpr double uV = 1e-6;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;

// Physical constants.
inline constexpr double speed_of_light = 299'792'458.0;  // m/s
inline constexpr double boltzmann = 1.380649e-23;        // J/K
inline constexpr double elementary_charge = 1.602176634e-19;  // C
inline constexpr double pi = 3.14159265358979323846;

// Power/amplitude dB conversions.
// db_to_lin / lin_to_db operate on *amplitude* ratios (20 log10);
// db_to_pow / pow_to_db operate on *power* ratios (10 log10).
inline double db_to_lin(double db) { return std::pow(10.0, db / 20.0); }
inline double lin_to_db(double lin) { return 20.0 * std::log10(lin); }
inline double db_to_pow(double db) { return std::pow(10.0, db / 10.0); }
inline double pow_to_db(double p) { return 10.0 * std::log10(p); }

// Thermal voltage kT/q at a Celsius temperature.
inline double thermal_voltage(double temp_celsius) {
  return boltzmann * (temp_celsius + 273.15) / elementary_charge;
}

}  // namespace uwbams::units
