/// @file adc.hpp
/// @brief Uniform quantizers: the I&D-output ADC and the AGC gain DAC.
///
/// Quantization of both converters is one of the non-idealities the paper's
/// Phase II explicitly keeps in the behavioral system model.
#pragma once

namespace uwbams::uwb {

class Adc {
 public:
  Adc(int bits, double vmin, double vmax);

  int bits() const { return bits_; }
  int max_code() const { return max_code_; }
  double lsb() const { return lsb_; }
  /// Saturating uniform quantization.
  int quantize(double v) const;
  /// Center voltage of a code (inverse map).
  double code_to_voltage(int code) const;

 private:
  int bits_;
  int max_code_;
  double vmin_;
  double lsb_;
};

class Dac {
 public:
  Dac(int bits, double vmin, double vmax);

  int bits() const { return bits_; }
  int max_code() const { return max_code_; }
  double value(int code) const;  ///< code clamped to range
  /// Nearest code for a target value.
  int nearest_code(double v) const;

 private:
  int bits_;
  int max_code_;
  double vmin_;
  double step_;
};

}  // namespace uwbams::uwb
