/// @file synchronizer.hpp
/// @brief Integration-window controller (the "Synch" block).
///
/// The Synchronizer of Fig. 1 gives the I&D its timing: each window runs the
/// dump -> integrate -> hold cycle and ends with an ADC conversion of the
/// integrated value. The receiver FSM (receiver.hpp) retimes the windows
/// (coarse slot search, fine leading-edge sweep) by moving the next window
/// start — exactly the lock-on-preamble behaviour the paper describes.
#pragma once

#include <cstdint>
#include <functional>

#include "ams/kernel.hpp"
#include "uwb/adc.hpp"
#include "uwb/clock.hpp"
#include "uwb/integrator.hpp"

namespace uwbams::uwb {

struct WindowSample {
  std::int64_t index = 0;    ///< running window counter
  double window_start = 0;   ///< absolute time of the dump edge [s]
  int code = 0;              ///< ADC code of the integrated value
  double analog = 0.0;       ///< pre-quantization integrator output [V]
};

class ItdController {
 public:
  using SampleCallback = std::function<void(const WindowSample&)>;

  /// period: window repetition (slot period for 2-PPM demodulation);
  /// reset_width: dump duration at window start; t_int: integration length.
  /// reset_width + t_int + adc_delay must fit within the period.
  ItdController(IntegrateAndDump& itd, const Adc& adc, double period,
                double reset_width, double t_int, SampleCallback callback);

  /// (Re)starts the window cycle at the given absolute start time. Any
  /// previously scheduled cycle is invalidated (restart-safe: scheduled
  /// events carry an epoch tag and stale ones are ignored).
  void start(ams::Kernel& kernel, double first_window_start);
  /// Overrides the start of the *next* window (used by sync retiming). Must
  /// be in the future; subsequent windows continue at start + k*period.
  void set_next_window_start(double t) { pending_start_ = t; }
  double period() const { return period_; }
  /// Retunes the steady window cadence (takes effect from the next window).
  void set_period(double period) { period_ = period; }
  void set_integration_length(double t_int) { t_int_ = t_int; }

  /// Runs the whole window cycle on a node-local oscillator (clock.hpp):
  /// every time this controller tracks — window starts, phase edges,
  /// WindowSample::window_start — is then in *local* clock time, and each
  /// edge is converted local -> true (including its white-jitter draw) only
  /// when scheduled into the kernel. Null or identity clock = the historical
  /// bit-exact behaviour. The pointer must outlive the controller.
  void set_clock(const ClockModel* clock) { clock_ = clock; }

 private:
  void schedule_phase(ams::Kernel& kernel, double t, int phase);
  void run_phase(ams::Kernel& kernel, double t, int phase);

  IntegrateAndDump& itd_;
  const Adc& adc_;
  const ClockModel* clock_ = nullptr;
  double period_;
  double reset_width_;
  double t_int_;
  double adc_delay_ = 2e-9;  ///< settle time after the hold edge
  SampleCallback callback_;

  std::uint64_t epoch_ = 0;
  std::int64_t index_ = 0;
  double window_start_ = 0.0;
  double pending_start_ = -1.0;
};

}  // namespace uwbams::uwb
