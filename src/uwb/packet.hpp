/// @file packet.hpp
/// @brief 2-PPM packet framing.
///
/// The paper's packet is a non-modulated preamble (every pulse in slot 0,
/// used for noise estimation, preamble sense, AGC and synchronization)
/// followed by the 2-PPM-modulated payload. A '0' places the pulse in
/// [0, Ts/2), a '1' in [Ts/2, Ts).
#pragma once

#include <cstddef>
#include <vector>

namespace uwbams::uwb {

struct Packet {
  int preamble_symbols = 32;
  /// Start-of-frame delimiter: slot-1 symbols between preamble and payload.
  /// The receiver's data FSM starts collecting payload at the first decided
  /// '1' after synchronization.
  int sfd_symbols = 0;
  std::vector<bool> payload;

  int total_symbols() const {
    return preamble_symbols + sfd_symbols + static_cast<int>(payload.size());
  }
  /// Slot index (0/1) of symbol k: preamble pulses sit in slot 0, SFD in
  /// slot 1, payload per bit.
  int slot_of_symbol(int k) const;
  double duration(double symbol_period) const {
    return total_symbols() * symbol_period;
  }
};

}  // namespace uwbams::uwb
