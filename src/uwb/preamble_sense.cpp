#include "uwb/preamble_sense.hpp"

#include <algorithm>

namespace uwbams::uwb {

void NoiseEstimator::add(int code) {
  stats_.add(static_cast<double>(code));
  max_code_ = std::max(max_code_, code);
}

PreambleSense::PreambleSense(const NoiseEstimator& noise, double factor,
                             int hits_needed)
    : hits_needed_(hits_needed) {
  threshold_ = noise.mean() + std::max(factor * noise.stddev(), 2.0);
}

void PreambleSense::enable_adaptive_pnr(double ratio) { pnr_ratio_ = ratio; }

double PreambleSense::current_threshold() const {
  if (pnr_ratio_ <= 0.0) return threshold_;
  return std::max(threshold_, peak_code_ / pnr_ratio_);
}

bool PreambleSense::add(int code) {
  if (detected_) return true;
  if (pnr_ratio_ > 0.0)
    peak_code_ = std::max(peak_code_, static_cast<double>(code));
  const double thr = current_threshold();
  const unsigned span = 2u * static_cast<unsigned>(hits_needed_);
  history_ = (history_ << 1) | (static_cast<double>(code) > thr ? 1u : 0u);
  history_ &= (1u << span) - 1u;
  int hits = 0;
  for (unsigned i = 0; i < span; ++i)
    if ((history_ >> i) & 1u) ++hits;
  if (hits >= hits_needed_) detected_ = true;
  return detected_;
}

}  // namespace uwbams::uwb
