/// @file receiver.hpp
/// @brief The assembled energy-detection receiver.
///
/// Analog chain (registered into the AMS kernel in dataflow order):
///   rf input -> LNA -> VGA -> ( )^2 -> I&D (ideal / spice / behavioral)
/// Digital back end (event-driven):
///   ItdController windows + ADC -> RxFsm:
///     genie mode   — known timing, payload demodulation only (BER runs);
///     acquire mode — NE -> PS -> AGC -> coarse slot sync -> fine
///                    leading-edge ToA (ranging runs).
///
/// The integrator is injected through a factory, which is the
/// substitute-and-play seam: the same receiver is built with any of the
/// paper's three I&D fidelities.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ams/kernel.hpp"
#include "uwb/adc.hpp"
#include "uwb/agc.hpp"
#include "uwb/clock.hpp"
#include "uwb/config.hpp"
#include "uwb/demodulator.hpp"
#include "uwb/frontend.hpp"
#include "uwb/integrator.hpp"
#include "uwb/packet.hpp"
#include "uwb/preamble_sense.hpp"
#include "uwb/synchronizer.hpp"

namespace uwbams::uwb {

/// Tracks the peak |value| of an analog signal between resets; feeds the
/// AGC's saturation checks and the design-constraint extraction.
class PeakTracker : public ams::AnalogBlock {
 public:
  explicit PeakTracker(const double* input) : in_(input) {}
  void step(double, double) override;
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;
  double peak() const { return peak_; }
  void reset_peak() { peak_ = 0.0; }

 private:
  const double* in_;
  double peak_ = 0.0;
};

using IntegratorFactory =
    std::function<std::unique_ptr<IntegrateAndDump>(const double* input)>;

class Receiver {
 public:
  enum class SyncMode { kGenie, kAcquire };
  /// kAgcRefine re-runs the gain loop on the *aligned* window grid after the
  /// coarse search: the first AGC pass sees partially-captured bursts and
  /// settles high, which would saturate the fine-scan profile.
  enum class RxState {
    kIdle, kNoiseEst, kSense, kAgc, kCoarse, kAgcRefine, kFine, kData, kDone
  };

  /// Registers the analog chain into `kernel`. `rf_input` is the channel
  /// output; register transmitter and channel blocks before constructing.
  Receiver(ams::Kernel& kernel, const SystemConfig& cfg,
           const double* rf_input, const IntegratorFactory& make_integrator);

  /// --- genie mode (BER runs): known timing, payload-only packets.
  /// `capture_start` is the absolute time energy capture (the integrate
  /// phase) of the first slot-0 window should begin — normally packet start
  /// + propagation delay. The controller opens the window one reset width
  /// earlier so the dump completes right at capture_start.
  void start_genie(ams::Kernel& kernel, double capture_start,
                   const std::vector<bool>& sent_payload);

  /// --- acquire mode (ranging runs): full NE/PS/AGC/sync sequence.
  void start_acquire(ams::Kernel& kernel, double t_start);
  /// Callback fired once the fine ToA estimate is available.
  void on_sync(std::function<void(double toa)> cb) { sync_cb_ = std::move(cb); }
  /// Payload collection after acquisition: once synchronized, the data FSM
  /// waits for the SFD (first decided '1') and then collects `n_bits`
  /// decisions. Call before or after sync completes.
  void collect_payload(int n_bits) { payload_expected_ = n_bits; }
  const std::vector<bool>& received_payload() const { return rx_payload_; }
  bool payload_complete() const {
    return payload_expected_ > 0 &&
           static_cast<int>(rx_payload_.size()) >= payload_expected_;
  }

  /// Controls / results.
  void set_vga_gain_db(double g) { vga_->set_gain_db(g); }
  double vga_gain_db() const { return vga_->gain_db(); }
  const base::BerCounter& ber() const { return demod_.ber(); }
  RxState state() const { return state_; }
  bool sync_done() const { return state_ == RxState::kData || state_ == RxState::kDone; }
  double toa() const;
  const AgcController& agc() const { return *agc_; }
  IntegrateAndDump& integrator() { return *itd_; }
  /// This node's oscillator model: all acquisition timing (window starts,
  /// start_acquire/start_genie arguments, the ToA estimate) is in its local
  /// clock time; the window controller converts at the kernel boundary.
  const ClockModel& clock() const { return clock_; }
  PeakTracker& squared_peak() { return *sq_peak_; }
  /// All window samples seen (diagnostics; cleared on start_*).
  const std::vector<WindowSample>& samples() const { return samples_; }
  void keep_samples(bool on) { keep_samples_ = on; }

 private:
  void handle_sample(const WindowSample& s);
  void handle_genie(const WindowSample& s);
  void handle_acquire(const WindowSample& s);
  /// Slot-aligned anchor of the winning coarse (candidate, parity) pair,
  /// advanced by whole symbols past `current_window_start`.
  double winning_anchor(double current_window_start) const;
  void begin_fine_scan(double current_window_start);
  void finish_fine_scan();

  SystemConfig cfg_;
  ams::Kernel* kernel_;
  ClockModel clock_;

  /// Analog chain.
  std::unique_ptr<Amplifier> lna_;
  std::unique_ptr<Amplifier> vga_;
  std::unique_ptr<Squarer> squarer_;
  std::unique_ptr<PeakTracker> sq_peak_;
  std::unique_ptr<IntegrateAndDump> itd_;

  /// Digital back end.
  Adc adc_;
  std::unique_ptr<ItdController> controller_;
  std::unique_ptr<AgcController> agc_;
  PpmDemodulator demod_;

  SyncMode mode_ = SyncMode::kGenie;
  RxState state_ = RxState::kIdle;

  /// Genie bookkeeping.
  std::vector<bool> sent_payload_;
  std::optional<int> pending_slot0_;
  std::size_t genie_symbol_ = 0;

  /// Acquire bookkeeping.
  std::unique_ptr<NoiseEstimator> noise_;
  std::unique_ptr<PreambleSense> sense_;
  int agc_symbols_done_ = 0;
  int agc_refine_symbols_done_ = 0;
  int agc_peak_code_ = 0;
  int window_in_symbol_ = 0;
  /// Coarse scan: per-candidate grids shifted by Tint/2 over one slot, with
  /// per-parity scores (preamble pulses repeat every Ts = 2 slots, so the
  /// winning parity resolves the slot ambiguity).
  int coarse_candidate_ = 0;
  int coarse_windows_left_ = 0;
  int coarse_window_idx_ = 0;
  double coarse_shift_ = 0.0;
  int n_candidates_ = 0;
  std::vector<double> coarse_cand_starts_;
  std::vector<double> coarse_score_;  ///< [candidate * 2 + parity]
  /// Fine scan (short-window leading-edge search).
  std::vector<double> fine_offsets_;
  std::vector<double> fine_energy_;
  std::size_t fine_idx_ = 0;
  double fine_anchor_ = 0.0;
  double toa_est_ = -1.0;

  std::function<void(double)> sync_cb_;
  std::vector<WindowSample> samples_;
  bool keep_samples_ = false;

  /// Acquire-mode data phase.
  int payload_expected_ = 0;
  bool sfd_seen_ = false;
  std::optional<int> data_slot0_;
  std::vector<bool> rx_payload_;
};

}  // namespace uwbams::uwb
