/// @file transceiver.hpp
/// @brief A full UWB node: transmitter + receiver + TWR counter.
///
/// Mirrors the SoC of Fig. 1 at the node level. The antenna switch is
/// implicit: the receiver's acquisition is started only while the node is
/// not transmitting (half-duplex), and the node does not hear its own
/// transmitter (separate channel blocks carry each direction).
///
/// The Counter block of Fig. 1 is the ranging timestamp machinery: it
/// records when the node's first preamble pulse left the antenna and folds
/// round-trip intervals by whole symbol periods (the counter counts symbol
/// ticks; the fine ToA supplies the fraction).
#pragma once

#include <functional>
#include <memory>

#include "ams/kernel.hpp"
#include "uwb/config.hpp"
#include "uwb/interference.hpp"
#include "uwb/receiver.hpp"
#include "uwb/transmitter.hpp"

namespace uwbams::uwb {

class Transceiver {
 public:
  /// `rf_input` is the output of the channel block feeding this node's
  /// receiver. The transmitter output must be wired by the caller into the
  /// outgoing channel block. This one-shot constructor registers the
  /// transmit and receive chains back to back — use it when the rf_input
  /// producer is already registered.
  Transceiver(ams::Kernel& kernel, const SystemConfig& cfg,
              const double* rf_input, const IntegratorFactory& make_integrator);

  /// Two-phase construction for full-duplex testbenches that need forward
  /// dataflow registration (transmitters -> channels -> receivers), the
  /// order the batched kernel requires: this constructor registers only the
  /// transmitter; call build_rx() after registering the channel blocks.
  Transceiver(ams::Kernel& kernel, const SystemConfig& cfg);
  void build_rx(ams::Kernel& kernel, const double* rf_input,
                const IntegratorFactory& make_integrator);

  Transmitter& tx() { return *tx_; }
  /// @throws std::logic_error when two-phase construction was used and
  /// build_rx() has not run yet (the receive chain does not exist).
  Receiver& rx();
  const double* tx_out() const { return tx_->out(); }

  /// Sends a packet and records the counter timestamp of its first pulse.
  void send(const Packet& packet, double t_start);
  double last_tx_pulse_time() const { return t_tx_pulse_; }

  /// Counter arithmetic: folds an estimated round-trip interval into
  /// [0, Ts) — the counter tracks whole symbol periods, the fine ToA the
  /// remainder.
  double fold_by_symbols(double interval) const;

 private:
  SystemConfig cfg_;
  std::unique_ptr<Transmitter> tx_;
  /// Interference sources + summing junction between the channel output
  /// and the receiver chain (empty config: pass-through, no blocks).
  std::unique_ptr<InterferenceSet> interf_;
  std::unique_ptr<Receiver> rx_;
  double t_tx_pulse_ = -1.0;
};

}  // namespace uwbams::uwb
