#include "uwb/ranging.hpp"

#include <algorithm>
#include <cmath>

#include "base/random.hpp"
#include "base/units.hpp"
#include "uwb/transceiver.hpp"

namespace uwbams::uwb {

double TwrResult::mean() const {
  base::RunningStats st;
  for (const auto& it : iterations)
    if (it.ok) st.add(it.distance_estimate);
  return st.mean();
}

double TwrResult::variance() const {
  base::RunningStats st;
  for (const auto& it : iterations)
    if (it.ok) st.add(it.distance_estimate);
  return st.variance();
}

double TwrResult::stddev() const { return std::sqrt(variance()); }

TwoWayRanging::TwoWayRanging(const TwrConfig& cfg,
                             IntegratorFactory make_integrator)
    : cfg_(cfg), make_integrator_(std::move(make_integrator)) {}

TwrIteration TwoWayRanging::run_iteration(std::uint64_t channel_seed,
                                          std::uint64_t noise_seed) {
  // Each node runs on its own oscillator: same system parameters, its own
  // ClockConfig (node ids 0/1 pick the per-node jitter sub-streams). The
  // default identity clocks keep this the historical single-clock testbench
  // bit for bit.
  SystemConfig sys = cfg_.sys;
  sys.seed = noise_seed;
  SystemConfig sys_a = sys;
  sys_a.clock = cfg_.clock_a;
  SystemConfig sys_b = sys;
  sys_b.clock = cfg_.clock_b;
  // Distinct jitter sub-streams per side: callers that did not assign node
  // ids (both left at the same value) get the standalone 0/1 convention;
  // a network that did assign per-node ids keeps one oscillator identity
  // per node across every pair it appears in.
  if (cfg_.clock_a.node_id == cfg_.clock_b.node_id) {
    sys_a.clock.node_id = 0;
    sys_b.clock.node_id = 1;
  }
  TwrIteration result;

  ams::Kernel kernel(sys.dt);
  // Both nodes' chains are block-wired and batch-capable; the acquisition
  // FSMs run from digital events, which bound every batch. Registration is
  // in forward dataflow order (transmitters -> channels -> receivers) as
  // batching requires; the channels carry a one-sample input delay to
  // reproduce, bit for bit, the classic channel-before-transmitter
  // arrangement in which each channel read its input's previous sample.
  kernel.enable_batching();

  Transceiver node_a(kernel, sys_a);  // registers the transmitters only
  Transceiver node_b(kernel, sys_b);
  ChannelBlock chan_ab(sys, node_a.tx_out());
  ChannelBlock chan_ba(sys, node_b.tx_out());
  chan_ab.set_input_delay(1);
  chan_ba.set_input_delay(1);
  kernel.add_analog(chan_ab);
  kernel.add_analog(chan_ba);

  base::Rng rng(noise_seed);
  const double pl_db = path_loss_db(sys.distance, sys.path_loss_db_1m,
                                    sys.path_loss_exponent);
  const double amp_scale = units::db_to_lin(-pl_db);
  if (sys.multipath) {
    // Both directions' realizations come from one sequential stream seeded
    // by channel_seed — draw_realizations reproduces the historical
    // `Rng chan_rng(seed); generate_cm1(chan_rng) x 2` bit for bit, and
    // routes through the UWBAMS_CACHE memo when core::memo is linked.
    const auto reals = draw_realizations(
        sys.channel_class, channel_class_params(sys.channel_class),
        channel_seed, 2);
    chan_ab.set_realization(reals[0], amp_scale);
    chan_ba.set_realization(reals[1], amp_scale);
  } else {
    chan_ab.set_awgn_only(amp_scale);
    chan_ba.set_awgn_only(amp_scale);
  }
  chan_ab.set_noise_psd(cfg_.noise_psd);
  chan_ba.set_noise_psd(cfg_.noise_psd);
  // Fixed-purpose sub-streams of the iteration's noise seed (the old
  // noise_seed * 2 + 1 / + 2 arithmetic could alias another iteration's
  // streams).
  chan_ab.reseed(base::derive_seed(noise_seed, 1));
  chan_ba.reseed(base::derive_seed(noise_seed, 2));

  node_a.build_rx(kernel, chan_ba.out(), make_integrator_);
  node_b.build_rx(kernel, chan_ab.out(), make_integrator_);

  Packet request;
  request.preamble_symbols = sys.preamble_symbols;
  request.payload = rng.bits(static_cast<std::size_t>(sys.payload_bits));
  const double packet_duration = request.duration(sys.symbol_period);

  // B listens from the start; its noise estimation must finish before the
  // request arrives.
  node_b.rx().start_acquire(kernel, 50e-9);
  const double t_ne =
      sys.noise_est_windows * sys.slot_period() + 0.3e-6;
  const double t_request = t_ne + 0.1e-6;
  node_a.send(request, t_request);

  const double pt = cfg_.processing_time;
  double toa_b = -1.0, toa_a = -1.0;

  node_b.rx().on_sync([&](double toa) {
    toa_b = toa;
    // Reply so its first pulse leaves PT after the estimated request ToA.
    Packet reply = request;
    const double t_start =
        toa + pt - node_b.tx().pulse_offset_in_slot();
    node_b.send(reply, t_start);
  });
  node_a.rx().on_sync([&](double toa) { toa_a = toa; });

  // A turns its receiver around once its own transmission is over
  // (half-duplex antenna switch). The turnaround is an A-local decision:
  // schedule it through A's clock and hand the receiver an A-local start.
  const double t_a_listen = t_request + packet_duration + 0.1e-6;
  kernel.schedule_callback(
      std::max(kernel.time(),
               node_a.rx().clock().event_true_time(t_a_listen)),
      [&](double now) {
        node_a.rx().start_acquire(
            kernel, node_a.rx().clock().local_time(now) + 50e-9);
      });

  // Run long enough for the full exchange.
  const double t_end =
      t_request + pt + 2.0 * packet_duration + 3e-6;
  kernel.run_until(t_end);

  if (toa_a < 0.0 || toa_b < 0.0) return result;  // acquisition failed

  // RTT from A's counter: fold by symbol periods (the counter supplies the
  // whole-symbol count; fine ToA the remainder). Valid for RTT < Ts. With
  // nonideal clocks the PT countdown ran on B's oscillator while A measured
  // with its own, so the classic drift bias PT (delta_a - delta_b) remains
  // in the folded interval.
  const double rtt =
      node_a.fold_by_symbols(toa_a - node_a.last_tx_pulse_time() - pt);
  result.distance_raw = 0.5 * units::speed_of_light * rtt;
  // ppm compensation (see TwrConfig::compensate_ppm): remove the
  // first-order PT-scaling term using the configured clock rates.
  const double delta_ab =
      1e-6 * (cfg_.clock_a.ppm - cfg_.clock_b.ppm);
  const double rtt_comp = rtt - pt * delta_ab;
  result.distance_estimate =
      cfg_.compensate_ppm ? 0.5 * units::speed_of_light * rtt_comp
                          : result.distance_raw;

  // Per-side bias diagnostics against the true arrival times.
  const double prop = sys.distance / units::speed_of_light;
  auto fold_centered = [&](double x) {
    double r = node_a.fold_by_symbols(x);
    if (r > 0.5 * sys.symbol_period) r -= sys.symbol_period;
    return r;
  };
  result.toa_bias_b =
      fold_centered(toa_b - (node_a.last_tx_pulse_time() + prop));
  result.toa_bias_a =
      fold_centered(toa_a - (node_b.last_tx_pulse_time() + prop));
  result.ok = true;
  return result;
}

TwrResult TwoWayRanging::run() {
  TwrResult res;
  for (int i = 0; i < cfg_.iterations; ++i) {
    TwrIteration it = run_iteration(cfg_.channel_seed(i), cfg_.noise_seed(i));
    if (!it.ok) ++res.failures;
    res.iterations.push_back(it);
  }
  return res;
}

TwrIteration run_twr_exchange(const TwrConfig& cfg,
                              const IntegratorFactory& make_integrator,
                              int exchange) {
  TwoWayRanging engine(cfg, make_integrator);
  return engine.run_iteration(cfg.channel_seed(exchange),
                              cfg.noise_seed(exchange));
}

}  // namespace uwbams::uwb
