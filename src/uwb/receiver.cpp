#include "uwb/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uwbams::uwb {

void PeakTracker::step(double, double) {
  peak_ = std::max(peak_, std::abs(*in_));
}

void PeakTracker::step_block(const double* /*t*/, double /*dt*/, int n) {
  // reset_peak() arrives from digital events, which only fire at batch
  // boundaries, so a straight max-fold over the batch matches the
  // per-sample result exactly.
  double p = peak_;
  for (int i = 0; i < n; ++i) p = std::max(p, std::abs(in_[i]));
  peak_ = p;
}

Receiver::Receiver(ams::Kernel& kernel, const SystemConfig& cfg,
                   const double* rf_input,
                   const IntegratorFactory& make_integrator)
    : cfg_(cfg), kernel_(&kernel), clock_(cfg.clock, cfg.seed),
      adc_(cfg.adc_bits, cfg.adc_vmin, cfg.adc_vmax) {
  lna_ = std::make_unique<Amplifier>(rf_input, cfg.lna_gain_db, cfg.lna_sat,
                                     cfg.lna_bandwidth);
  vga_ = std::make_unique<Amplifier>(lna_->out(),
                                     0.5 * (cfg.vga_min_db + cfg.vga_max_db),
                                     cfg.vga_sat, cfg.vga_bandwidth);
  squarer_ = std::make_unique<Squarer>(vga_->out(), cfg.squarer_gain);
  sq_peak_ = std::make_unique<PeakTracker>(squarer_->out());
  itd_ = make_integrator(squarer_->out());

  kernel.add_analog(*lna_);
  kernel.add_analog(*vga_);
  kernel.add_analog(*squarer_);
  kernel.add_analog(*sq_peak_);
  kernel.add_analog(*itd_);

  controller_ = std::make_unique<ItdController>(
      *itd_, adc_, cfg.slot_period(), cfg.reset_width,
      cfg.integration_window,
      [this](const WindowSample& s) { handle_sample(s); });
  controller_->set_clock(&clock_);

  AgcConfig acfg;
  acfg.vga_min_db = cfg.vga_min_db;
  acfg.vga_max_db = cfg.vga_max_db;
  acfg.dac_bits = cfg.vga_dac_bits;
  acfg.adc_max_code = adc_.max_code();
  acfg.target_code = static_cast<int>(0.75 * adc_.max_code());
  acfg.post_gain_enabled = cfg.two_stage_agc;
  acfg.input_peak_target = 0.9 * cfg.integrator_clamp;
  agc_ = std::make_unique<AgcController>(*vga_, acfg);
}

double Receiver::toa() const {
  if (toa_est_ < 0.0) throw std::logic_error("Receiver::toa: no estimate yet");
  return toa_est_;
}

void Receiver::start_genie(ams::Kernel& kernel, double capture_start,
                           const std::vector<bool>& sent_payload) {
  mode_ = SyncMode::kGenie;
  state_ = RxState::kData;
  sent_payload_ = sent_payload;
  genie_symbol_ = 0;
  pending_slot0_.reset();
  demod_.reset_counts();
  samples_.clear();
  controller_->start(kernel, capture_start - cfg_.reset_width);
}

void Receiver::start_acquire(ams::Kernel& kernel, double t_start) {
  mode_ = SyncMode::kAcquire;
  state_ = RxState::kNoiseEst;
  // Listen near maximum sensitivity; the noise-floor backoff below and the
  // AGC after detection adjust from there.
  vga_->set_gain_db(cfg_.vga_max_db - 6.0);
  noise_ = std::make_unique<NoiseEstimator>(
      static_cast<std::size_t>(cfg_.noise_est_windows));
  sense_.reset();
  samples_.clear();
  toa_est_ = -1.0;
  // Listen with densely tiled windows: at the slot cadence, half the
  // timeline is never integrated and a burst can sit entirely in the blind
  // phase. The dense period is incommensurate with the slot, so the window
  // phase also drifts across the preamble.
  controller_->set_period(cfg_.reset_width + cfg_.integration_window + 4e-9);
  controller_->start(kernel, t_start);
}

void Receiver::handle_sample(const WindowSample& s) {
  if (keep_samples_) samples_.push_back(s);
  if (mode_ == SyncMode::kGenie)
    handle_genie(s);
  else
    handle_acquire(s);
}

void Receiver::handle_genie(const WindowSample& s) {
  // Windows alternate slot 0 / slot 1 of consecutive symbols.
  if (!pending_slot0_.has_value()) {
    pending_slot0_ = s.code;
    return;
  }
  const int e0 = *pending_slot0_;
  const int e1 = s.code;
  pending_slot0_.reset();
  const bool bit = demod_.decide(e0, e1);
  if (genie_symbol_ < sent_payload_.size())
    demod_.record(sent_payload_[genie_symbol_], bit);
  ++genie_symbol_;
  if (genie_symbol_ >= sent_payload_.size()) state_ = RxState::kDone;
}

void Receiver::handle_acquire(const WindowSample& s) {
  // Two-stage AGC variant rescales the energy digitally before the code
  // comparison (paper §5 architectural proposal).
  int code = s.code;
  if (agc_->post_scale() != 1.0)
    code = adc_.quantize(s.analog * agc_->post_scale());

  switch (state_) {
    case RxState::kNoiseEst:
      noise_->add(code);
      if (noise_->done()) {
        // Noise-floor-driven backoff: listening at maximum sensitivity can
        // leave the *noise alone* saturating the front end, which erases
        // the preamble contrast. Step the gain down and re-estimate until
        // the floor sits in the lower quarter of the ADC.
        if (noise_->mean() > 0.25 * adc_.max_code() &&
            vga_->gain_db() > cfg_.vga_min_db + 1.0) {
          vga_->set_gain_db(std::max(cfg_.vga_min_db, vga_->gain_db() - 6.0));
          // Short re-estimation passes keep the total NE time bounded.
          noise_ = std::make_unique<NoiseEstimator>(static_cast<std::size_t>(
              std::min(cfg_.noise_est_windows, 8)));
          break;
        }
        sense_ = std::make_unique<PreambleSense>(*noise_, cfg_.sense_factor, 2);
        // Interference environments get the adaptive PNR threshold (the
        // OTA-C peak-search idiom): blocker bursts raise the working
        // threshold so only a sustained preamble-grade train accumulates
        // hits. Inactive (empty interference set) = historical behavior.
        if (cfg_.interference.any()) sense_->enable_adaptive_pnr(4.0);
        state_ = RxState::kSense;
      }
      break;

    case RxState::kSense:
      if (sense_->add(code)) {
        // Preamble present: switch to the 2-PPM slot cadence for the gain
        // loop and the phase search.
        controller_->set_period(cfg_.slot_period());
        state_ = RxState::kAgc;
        agc_symbols_done_ = 0;
        agc_peak_code_ = 0;
        window_in_symbol_ = 0;
        sq_peak_->reset_peak();
      }
      break;

    case RxState::kAgc:
      agc_peak_code_ = std::max(agc_peak_code_, code);
      if (++window_in_symbol_ == 2) {  // one symbol observed
        agc_->update(agc_peak_code_, sq_peak_->peak());
        sq_peak_->reset_peak();
        agc_peak_code_ = 0;
        window_in_symbol_ = 0;
        if (++agc_symbols_done_ >= cfg_.agc_settle_symbols) {
          // Prepare the coarse phase scan over one slot period: candidate
          // grids shifted by Tint/2, `sync_symbols` windows scored each,
          // split by window parity to resolve the slot ambiguity.
          coarse_shift_ = cfg_.integration_window / 2.0;
          n_candidates_ = std::max(
              1,
              static_cast<int>(std::round(cfg_.slot_period() / coarse_shift_)));
          coarse_score_.assign(static_cast<std::size_t>(2 * n_candidates_), 0.0);
          coarse_cand_starts_.assign(static_cast<std::size_t>(n_candidates_), 0.0);
          coarse_candidate_ = 0;
          coarse_windows_left_ = 2 * cfg_.sync_symbols;
          coarse_window_idx_ = 0;
          const double start = s.window_start + 2.0 * cfg_.slot_period();
          coarse_cand_starts_[0] = start;
          controller_->set_next_window_start(start);
          state_ = RxState::kCoarse;
        }
      }
      break;

    case RxState::kCoarse: {
      // Preamble pulses repeat every Ts; windows tick at Ts/2, so scores
      // split by parity: the pulse-bearing parity wins and fixes the
      // symbol-phase (slot) alignment.
      const int parity = coarse_window_idx_ & 1;
      coarse_score_[static_cast<std::size_t>(2 * coarse_candidate_ + parity)] +=
          code;
      ++coarse_window_idx_;
      if (--coarse_windows_left_ == 0) {
        if (++coarse_candidate_ >= n_candidates_) {
          // Retime onto the winning phase and refine the gain there before
          // the fine scan: the first AGC pass ran on a misaligned grid.
          controller_->set_next_window_start(winning_anchor(s.window_start));
          agc_refine_symbols_done_ = 0;
          agc_peak_code_ = 0;
          window_in_symbol_ = 0;
          sq_peak_->reset_peak();
          state_ = RxState::kAgcRefine;
          break;
        }
        coarse_windows_left_ = 2 * cfg_.sync_symbols;
        coarse_window_idx_ = 0;
        // Candidate grid c is shifted by c*shift from candidate 0; advance
        // whole slots until safely past the current window. The parity
        // bookkeeping is relative to the stored candidate start.
        double next =
            coarse_cand_starts_[0] + coarse_candidate_ * coarse_shift_;
        while (next < s.window_start + cfg_.slot_period())
          next += cfg_.slot_period();
        coarse_cand_starts_[static_cast<std::size_t>(coarse_candidate_)] = next;
        controller_->set_next_window_start(next);
      }
      break;
    }

    case RxState::kAgcRefine:
      agc_peak_code_ = std::max(agc_peak_code_, code);
      if (++window_in_symbol_ == 2) {
        agc_->update(agc_peak_code_, sq_peak_->peak());
        sq_peak_->reset_peak();
        agc_peak_code_ = 0;
        window_in_symbol_ = 0;
        if (++agc_refine_symbols_done_ >= 4) begin_fine_scan(s.window_start);
      }
      break;

    case RxState::kFine: {
      // Raw (pre-post-scale) profile: the digital post-scale of the
      // two-stage AGC would lift the noise floor past the absolute
      // threshold; amplitude-matched profiles use the relative fallback.
      fine_energy_[fine_idx_] = s.analog;
      ++fine_idx_;
      if (fine_idx_ >= fine_offsets_.size()) {
        finish_fine_scan();
        break;
      }
      // One fine offset per symbol period, anchored on the same preamble
      // pulse position modulo Ts.
      const double symbol_base =
          s.window_start - fine_offsets_[fine_idx_ - 1];
      controller_->set_next_window_start(symbol_base + cfg_.symbol_period +
                                         fine_offsets_[fine_idx_]);
      break;
    }

    case RxState::kData: {
      if (payload_expected_ <= 0) break;  // sync-only use (e.g. ranging)
      if (!data_slot0_.has_value()) {
        data_slot0_ = code;
        break;
      }
      const bool bit = demod_.decide(*data_slot0_, code);
      data_slot0_.reset();
      if (!sfd_seen_) {
        // Preamble tail decodes as '0'; the first '1' is the SFD.
        if (bit) sfd_seen_ = true;
        break;
      }
      rx_payload_.push_back(bit);
      if (static_cast<int>(rx_payload_.size()) >= payload_expected_)
        state_ = RxState::kDone;
      break;
    }
    case RxState::kDone:
    case RxState::kIdle:
      break;
  }
}

double Receiver::winning_anchor(double current_window_start) const {
  // Best (candidate, parity) pair fixes the slot-aligned anchor phase; the
  // preamble repeats every Ts, so anchor + k*Ts hits the same position.
  const auto best =
      std::max_element(coarse_score_.begin(), coarse_score_.end());
  const int best_idx = static_cast<int>(best - coarse_score_.begin());
  const int cand = best_idx / 2;
  const int parity = best_idx % 2;
  double anchor = coarse_cand_starts_[static_cast<std::size_t>(cand)] +
                  parity * cfg_.slot_period();
  while (anchor < current_window_start + cfg_.slot_period())
    anchor += cfg_.symbol_period;
  return anchor;
}

void Receiver::begin_fine_scan(double current_window_start) {
  // Short-window leading-edge search: slide a fine_window-long integration
  // across the winning phase; the first window whose energy crosses the
  // (AGC-target-referenced) threshold has just swallowed the first path.
  // The max-energy coarse window can start well after the first path in
  // dispersed channels, so the sweep reaches a full window early.
  controller_->set_integration_length(cfg_.fine_window);
  fine_offsets_.clear();
  const double early = -(cfg_.integration_window + cfg_.fine_window);
  const double late = 1.5 * cfg_.fine_window;
  for (double off = early; off <= late; off += cfg_.fine_step)
    fine_offsets_.push_back(off);
  fine_energy_.assign(fine_offsets_.size(), 0.0);
  fine_idx_ = 0;

  double anchor = winning_anchor(current_window_start);
  while (anchor + fine_offsets_[0] <
         current_window_start + cfg_.slot_period())
    anchor += cfg_.symbol_period;
  fine_anchor_ = anchor;
  controller_->set_next_window_start(anchor + fine_offsets_[0]);
  state_ = RxState::kFine;
}

void Receiver::finish_fine_scan() {
  // Absolute threshold referenced to the level the AGC believes it set
  // (target code), scaled from the full window to the fine window. The
  // paper's Table 2 mechanism lives here: an integrator whose limited
  // input range delivers "a lower output voltage" crosses later, so its
  // ranging bias is larger.
  const double agc_target_v =
      adc_.code_to_voltage(static_cast<int>(0.75 * adc_.max_code()));
  double threshold = cfg_.leading_edge_fraction * agc_target_v *
                     (cfg_.fine_window / cfg_.integration_window);

  // Interference floor (gated — inactive sets keep the historical search
  // bit-identical): a CW blocker or piconet burst lifts the whole fine
  // profile, so the leading edge must clear a peak-to-noise-ratio floor
  // over the pre-edge energy (mean of the earliest profile quarter), not
  // just the absolute AGC-referenced level.
  double pnr_floor = 0.0;
  if (cfg_.interference.any() && !fine_energy_.empty()) {
    const std::size_t nq = std::max<std::size_t>(1, fine_energy_.size() / 4);
    double floor_sum = 0.0;
    for (std::size_t i = 0; i < nq; ++i) floor_sum += fine_energy_[i];
    pnr_floor = 2.0 * (floor_sum / static_cast<double>(nq));
    threshold = std::max(threshold, pnr_floor);
  }

  std::size_t cross = fine_energy_.size();
  double used_threshold = threshold;
  for (std::size_t i = 0; i < fine_energy_.size(); ++i) {
    if (fine_energy_[i] >= threshold) {
      cross = i;
      break;
    }
  }
  if (cross == fine_energy_.size()) {
    // Fallback: relative half-peak crossing (deep fades). The PNR floor
    // still applies, clamped to the peak so a crossing always exists.
    const double peak =
        *std::max_element(fine_energy_.begin(), fine_energy_.end());
    used_threshold = std::max(0.5 * peak, std::min(pnr_floor, peak));
    for (std::size_t i = 0; i < fine_energy_.size(); ++i) {
      if (fine_energy_[i] >= used_threshold) {
        cross = i;
        break;
      }
    }
  }

  // Interpolate the crossing between the bracketing offsets: sub-step
  // resolution, and — crucially — amplitude sensitivity: a lower energy
  // profile (the compressed circuit integrator) crosses later within the
  // bracket, which is how the paper's larger ELDO ranging offset arises.
  double cross_offset = fine_offsets_[cross];
  if (cross > 0 && fine_energy_[cross] > fine_energy_[cross - 1]) {
    const double frac = (used_threshold - fine_energy_[cross - 1]) /
                        (fine_energy_[cross] - fine_energy_[cross - 1]);
    cross_offset = fine_offsets_[cross - 1] +
                   std::clamp(frac, 0.0, 1.0) *
                       (fine_offsets_[cross] - fine_offsets_[cross - 1]);
  }

  // The crossing window's *capture span* is [start + reset, start + reset +
  // fine_window]; the first path sits just inside its trailing edge, one
  // calibrated edge-delay earlier.
  toa_est_ = fine_anchor_ + cross_offset + cfg_.reset_width +
             cfg_.fine_window - cfg_.toa_edge_correction;
  // Restore the demodulation window length and re-anchor the window grid
  // on the synchronized slot phase for the data phase.
  controller_->set_integration_length(cfg_.integration_window);
  controller_->set_next_window_start(
      winning_anchor(clock_.local_time(kernel_->time())));
  sfd_seen_ = false;
  data_slot0_.reset();
  rx_payload_.clear();
  state_ = RxState::kData;
  if (sync_cb_) sync_cb_(toa_est_);
}

}  // namespace uwbams::uwb
