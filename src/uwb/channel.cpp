#include "uwb/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "base/units.hpp"

namespace uwbams::uwb {

double ChannelRealization::total_energy() const {
  double e = 0.0;
  for (const auto& t : taps) e += t.gain * t.gain;
  return e;
}

double ChannelRealization::rms_delay_spread() const {
  const double e = total_energy();
  if (e <= 0.0) return 0.0;
  double m1 = 0.0, m2 = 0.0;
  for (const auto& t : taps) {
    const double p = t.gain * t.gain / e;
    m1 += p * t.delay;
    m2 += p * t.delay * t.delay;
  }
  return std::sqrt(std::max(m2 - m1 * m1, 0.0));
}

double ChannelRealization::peak_gain() const {
  double g = 0.0;
  for (const auto& t : taps) g = std::max(g, std::abs(t.gain));
  return g;
}

ChannelRealization generate_cm1(base::Rng& rng,
                                const SalehValenzuelaParams& p) {
  ChannelRealization cr;

  // Number of clusters: Poisson with mean L-bar, at least one (the LOS
  // cluster at zero excess delay).
  int n_clusters = 0;
  {
    // Poisson(mean_clusters) by exponential inter-arrival counting: the
    // number of rate-L arrivals in a unit interval.
    double acc = rng.exponential(p.mean_clusters);
    while (acc < 1.0) {
      ++n_clusters;
      acc += rng.exponential(p.mean_clusters);
    }
    n_clusters = std::max(1, n_clusters);
  }

  double t_cluster = 0.0;
  for (int c = 0; c < n_clusters; ++c) {
    if (c > 0) t_cluster = rng.poisson_arrival_after(t_cluster, p.cluster_rate);
    if (t_cluster > p.max_excess_delay) break;
    const double cluster_power = std::exp(-t_cluster / p.cluster_decay);

    double t_ray = 0.0;
    bool first_ray = true;
    while (true) {
      if (!first_ray) {
        const double rate =
            (rng.uniform() < p.ray_mix_beta) ? p.ray_rate1 : p.ray_rate2;
        t_ray = rng.poisson_arrival_after(t_ray, rate);
      }
      first_ray = false;
      if (t_cluster + t_ray > p.max_excess_delay) break;
      const double omega =
          cluster_power * std::exp(-t_ray / p.ray_decay);
      if (omega < 1e-5 * cluster_power && t_ray > 3.0 * p.ray_decay) break;
      // Nakagami-m magnitude with lognormal m (clamped to >= 0.5 where the
      // Nakagami distribution is defined). The LOS first path uses the
      // higher first-component m of the 4a report.
      double m = p.nakagami_m_median *
                 std::exp(p.nakagami_m_sigma * rng.gaussian());
      if (c == 0 && t_ray == 0.0) m = p.nakagami_m_first;
      m = std::max(m, 0.5);
      const double amp = rng.nakagami(m, omega);
      const double sign = rng.bit() ? 1.0 : -1.0;
      cr.taps.push_back({t_cluster + t_ray, sign * amp});
      if (static_cast<int>(cr.taps.size()) > 16 * p.max_taps) break;
    }
  }
  if (cr.taps.empty()) cr.taps.push_back({0.0, 1.0});

  // Keep the strongest max_taps taps (coverage vs. cost trade documented in
  // DESIGN.md), re-sort by delay, then normalize to unit energy.
  std::sort(cr.taps.begin(), cr.taps.end(),
            [](const ChannelTap& a, const ChannelTap& b) {
              return std::abs(a.gain) > std::abs(b.gain);
            });
  if (static_cast<int>(cr.taps.size()) > p.max_taps)
    cr.taps.resize(static_cast<std::size_t>(p.max_taps));
  std::sort(cr.taps.begin(), cr.taps.end(),
            [](const ChannelTap& a, const ChannelTap& b) {
              return a.delay < b.delay;
            });
  // Shift so the first kept tap defines zero excess delay (the LOS path).
  const double t0 = cr.taps.front().delay;
  for (auto& t : cr.taps) t.delay -= t0;

  const double e = cr.total_energy();
  const double norm = 1.0 / std::sqrt(e);
  for (auto& t : cr.taps) t.gain *= norm;
  return cr;
}

double path_loss_db(double distance_m, double pl0_db, double exponent) {
  if (distance_m <= 0.0)
    throw std::invalid_argument("path_loss_db: distance must be positive");
  return pl0_db + 10.0 * exponent * std::log10(distance_m);
}

ChannelBlock::ChannelBlock(const SystemConfig& cfg, const double* input)
    : cfg_(cfg), in_(input), n0_(cfg.noise_psd), distance_(cfg.distance),
      rng_(cfg.seed) {
  taps_.push_back({0.0, 1.0});
  rebuild_taps();
}

void ChannelBlock::set_realization(const ChannelRealization& realization,
                                   double amplitude_scale) {
  taps_ = realization.taps;
  scale_ = amplitude_scale;
  rebuild_taps();
}

void ChannelBlock::set_awgn_only(double amplitude_scale) {
  taps_.assign(1, ChannelTap{0.0, 1.0});
  scale_ = amplitude_scale;
  rebuild_taps();
}

void ChannelBlock::set_distance(double meters) {
  distance_ = meters;
  rebuild_taps();
}

void ChannelBlock::rebuild_taps() {
  const double prop_delay = distance_ / units::speed_of_light;
  sampled_.clear();
  int max_delay = 1;
  for (const auto& t : taps_) {
    const int d =
        static_cast<int>(std::round((prop_delay + t.delay) / cfg_.dt));
    sampled_.push_back({d, t.gain * scale_});
    max_delay = std::max(max_delay, d);
  }
  delay_line_.assign(static_cast<std::size_t>(max_delay + 2), 0.0);
  write_pos_ = 0;
}

void ChannelBlock::step(double /*t*/, double /*dt*/) {
  delay_line_[write_pos_] = (in_ != nullptr) ? *in_ : 0.0;
  const std::size_t n = delay_line_.size();
  double acc = 0.0;
  for (const auto& tap : sampled_) {
    const std::size_t idx =
        (write_pos_ + n - static_cast<std::size_t>(tap.delay_samples)) % n;
    acc += tap.gain * delay_line_[idx];
  }
  if (n0_ > 0.0)
    acc += rng_.gaussian() * std::sqrt(0.5 * n0_ * cfg_.sample_rate());
  out_ = acc;
  write_pos_ = (write_pos_ + 1) % n;
}

}  // namespace uwbams::uwb
