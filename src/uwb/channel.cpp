#include "uwb/channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "base/units.hpp"

namespace uwbams::uwb {

double ChannelRealization::total_energy() const {
  double e = 0.0;
  for (const auto& t : taps) e += t.gain * t.gain;
  return e;
}

double ChannelRealization::rms_delay_spread() const {
  const double e = total_energy();
  if (e <= 0.0) return 0.0;
  double m1 = 0.0, m2 = 0.0;
  for (const auto& t : taps) {
    const double p = t.gain * t.gain / e;
    m1 += p * t.delay;
    m2 += p * t.delay * t.delay;
  }
  return std::sqrt(std::max(m2 - m1 * m1, 0.0));
}

double ChannelRealization::mean_excess_delay() const {
  const double e = total_energy();
  if (e <= 0.0) return 0.0;
  double m1 = 0.0;
  for (const auto& t : taps) m1 += t.gain * t.gain / e * t.delay;
  return m1;
}

double ChannelRealization::peak_gain() const {
  double g = 0.0;
  for (const auto& t : taps) g = std::max(g, std::abs(t.gain));
  return g;
}

const char* to_string(ChannelClass c) {
  switch (c) {
    case ChannelClass::kCm1: return "cm1";
    case ChannelClass::kCm2: return "cm2";
    case ChannelClass::kCm3: return "cm3";
    case ChannelClass::kCm4: return "cm4";
  }
  return "?";
}

bool parse_channel_class(const std::string& text, ChannelClass* out) {
  for (const ChannelClass c : {ChannelClass::kCm1, ChannelClass::kCm2,
                               ChannelClass::kCm3, ChannelClass::kCm4}) {
    if (text == to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

// TG4a final-report cluster/ray columns. CM1 must equal the struct
// defaults exactly — test_channel pins `channel_class_params(kCm1) == {}`
// and every historical scenario rides on that identity.
SalehValenzuelaParams channel_class_params(ChannelClass cls) {
  SalehValenzuelaParams p;  // the CM1 column
  switch (cls) {
    case ChannelClass::kCm1:
      break;
    case ChannelClass::kCm2:  // residential NLOS
      p.cluster_rate = 0.12e9;
      p.ray_rate1 = 1.77e9;
      p.ray_rate2 = 0.15e9;
      p.ray_mix_beta = 0.045;
      p.cluster_decay = 26.27e-9;
      p.ray_decay = 17.50e-9;
      p.mean_clusters = 3.5;
      p.los = false;
      p.max_excess_delay = 200e-9;
      break;
    case ChannelClass::kCm3:  // office LOS
      p.cluster_rate = 0.016e9;
      p.ray_rate1 = 0.19e9;
      p.ray_rate2 = 2.97e9;
      p.ray_mix_beta = 0.0184;
      p.cluster_decay = 14.6e-9;
      p.ray_decay = 6.4e-9;
      p.mean_clusters = 5.4;
      break;
    case ChannelClass::kCm4:  // office NLOS
      p.cluster_rate = 0.19e9;
      p.ray_rate1 = 0.11e9;
      p.ray_rate2 = 2.09e9;
      p.ray_mix_beta = 0.0096;
      p.cluster_decay = 19.8e-9;
      p.ray_decay = 11.2e-9;
      p.mean_clusters = 3.1;
      p.los = false;
      p.max_excess_delay = 200e-9;
      break;
  }
  return p;
}

void channel_class_path_loss(ChannelClass cls, double* exponent,
                             double* pl0_db) {
  switch (cls) {
    case ChannelClass::kCm1: *exponent = 1.79; *pl0_db = 43.9; return;
    case ChannelClass::kCm2: *exponent = 4.58; *pl0_db = 48.7; return;
    case ChannelClass::kCm3: *exponent = 1.63; *pl0_db = 35.4; return;
    case ChannelClass::kCm4: *exponent = 3.07; *pl0_db = 57.9; return;
  }
  throw std::invalid_argument("channel_class_path_loss: bad class");
}

void apply_channel_class(SystemConfig* sys, ChannelClass cls) {
  sys->channel_class = cls;
  channel_class_path_loss(cls, &sys->path_loss_exponent,
                          &sys->path_loss_db_1m);
}

ChannelRealization generate_sv(base::Rng& rng,
                               const SalehValenzuelaParams& p) {
  ChannelRealization cr;

  // Number of clusters: Poisson with mean L-bar, at least one (the LOS
  // cluster at zero excess delay).
  int n_clusters = 0;
  {
    // Poisson(mean_clusters) by exponential inter-arrival counting: the
    // number of rate-L arrivals in a unit interval.
    double acc = rng.exponential(p.mean_clusters);
    while (acc < 1.0) {
      ++n_clusters;
      acc += rng.exponential(p.mean_clusters);
    }
    n_clusters = std::max(1, n_clusters);
  }

  double t_cluster = 0.0;
  for (int c = 0; c < n_clusters; ++c) {
    if (c > 0) t_cluster = rng.poisson_arrival_after(t_cluster, p.cluster_rate);
    if (t_cluster > p.max_excess_delay) break;
    const double cluster_power = std::exp(-t_cluster / p.cluster_decay);

    double t_ray = 0.0;
    bool first_ray = true;
    while (true) {
      if (!first_ray) {
        const double rate =
            (rng.uniform() < p.ray_mix_beta) ? p.ray_rate1 : p.ray_rate2;
        t_ray = rng.poisson_arrival_after(t_ray, rate);
      }
      first_ray = false;
      if (t_cluster + t_ray > p.max_excess_delay) break;
      const double omega =
          cluster_power * std::exp(-t_ray / p.ray_decay);
      if (omega < 1e-5 * cluster_power && t_ray > 3.0 * p.ray_decay) break;
      // Nakagami-m magnitude with lognormal m (clamped to >= 0.5 where the
      // Nakagami distribution is defined). The gaussian is drawn even when
      // the first-path override applies — the draw order is pinned. LOS
      // classes give the first path the higher first-component m of the
      // 4a report; NLOS classes fade every ray.
      double m = p.nakagami_m_median *
                 std::exp(p.nakagami_m_sigma * rng.gaussian());
      if (p.los && c == 0 && t_ray == 0.0) m = p.nakagami_m_first;
      m = std::max(m, 0.5);
      const double amp = rng.nakagami(m, omega);
      const double sign = rng.bit() ? 1.0 : -1.0;
      cr.taps.push_back({t_cluster + t_ray, sign * amp});
      if (static_cast<int>(cr.taps.size()) > 16 * p.max_taps) break;
    }
  }
  if (cr.taps.empty()) cr.taps.push_back({0.0, 1.0});

  // Keep the strongest max_taps taps (coverage vs. cost trade documented in
  // DESIGN.md), re-sort by delay, then normalize to unit energy.
  std::sort(cr.taps.begin(), cr.taps.end(),
            [](const ChannelTap& a, const ChannelTap& b) {
              return std::abs(a.gain) > std::abs(b.gain);
            });
  if (static_cast<int>(cr.taps.size()) > p.max_taps)
    cr.taps.resize(static_cast<std::size_t>(p.max_taps));
  std::sort(cr.taps.begin(), cr.taps.end(),
            [](const ChannelTap& a, const ChannelTap& b) {
              return a.delay < b.delay;
            });
  // Shift so the first kept tap defines zero excess delay (the LOS path).
  const double t0 = cr.taps.front().delay;
  for (auto& t : cr.taps) t.delay -= t0;

  const double e = cr.total_energy();
  const double norm = 1.0 / std::sqrt(e);
  for (auto& t : cr.taps) t.gain *= norm;
  return cr;
}

namespace {
// The installed memoizing provider (core/memo.cpp's registrar). A plain
// zero-initialized function pointer: no static-initialization-order hazard.
ChannelDrawProvider g_channel_draw_provider = nullptr;
}  // namespace

void set_channel_draw_provider(ChannelDrawProvider fn) {
  g_channel_draw_provider = fn;
}

std::vector<ChannelRealization> draw_realizations_uncached(
    ChannelClass cls, const SalehValenzuelaParams& params, std::uint64_t seed,
    int count) {
  (void)cls;  // the params carry the class; cls keys the memo document
  base::Rng rng(seed);
  std::vector<ChannelRealization> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(generate_sv(rng, params));
  return out;
}

std::vector<ChannelRealization> draw_realizations(
    ChannelClass cls, const SalehValenzuelaParams& params, std::uint64_t seed,
    int count) {
  if (g_channel_draw_provider != nullptr)
    return g_channel_draw_provider(cls, params, seed, count);
  return draw_realizations_uncached(cls, params, seed, count);
}

double path_loss_db(double distance_m, double pl0_db, double exponent) {
  if (distance_m <= 0.0)
    throw std::invalid_argument("path_loss_db: distance must be positive");
  return pl0_db + 10.0 * exponent * std::log10(distance_m);
}

ChannelBlock::ChannelBlock(const SystemConfig& cfg, const double* input)
    : cfg_(cfg), in_(input), n0_(cfg.noise_psd), distance_(cfg.distance),
      rng_(cfg.seed) {
  taps_.push_back({0.0, 1.0});
  rebuild_taps();
}

void ChannelBlock::set_realization(const ChannelRealization& realization,
                                   double amplitude_scale) {
  taps_ = realization.taps;
  scale_ = amplitude_scale;
  rebuild_taps();
}

void ChannelBlock::set_awgn_only(double amplitude_scale) {
  taps_.assign(1, ChannelTap{0.0, 1.0});
  scale_ = amplitude_scale;
  rebuild_taps();
}

void ChannelBlock::set_distance(double meters) {
  distance_ = meters;
  rebuild_taps();
}

void ChannelBlock::set_input_delay(int samples) {
  if (samples < 0)
    throw std::invalid_argument("ChannelBlock: negative input delay");
  input_delay_ = samples;
  rebuild_taps();
}

void ChannelBlock::rebuild_taps() {
  // Guard for the reconfiguration contract (see header): a rebuild resets
  // the line, so any waveform still propagating is silently dropped. Only
  // *live* history counts — the ring slots a tap of the outgoing
  // configuration could still read (the last max-delay samples); expired
  // samples awaiting overwrite are not in flight.
  if (!delay_line_.empty() && !sampled_.empty()) {
    const std::size_t len = delay_line_.size();
    std::size_t live = 0;
    for (const auto& tap : sampled_)
      live = std::max(live, static_cast<std::size_t>(tap.delay_samples));
    for (std::size_t k = 1; k <= live; ++k) {
      if (delay_line_[(write_pos_ + len - k) % len] != 0.0) {
        ++history_discards_;
        break;
      }
    }
  }
  const double prop_delay = distance_ / units::speed_of_light;
  sampled_.clear();
  int max_delay = 1;
  for (const auto& t : taps_) {
    const int d =
        static_cast<int>(std::round((prop_delay + t.delay) / cfg_.dt)) +
        input_delay_;
    sampled_.push_back({d, t.gain * scale_});
    max_delay = std::max(max_delay, d);
  }
  // kMaxBatch slots of headroom beyond the longest tap: step_block() writes
  // the whole batch before any tap reads, and the headroom guarantees those
  // writes never land on a slot an in-flight tap still needs.
  delay_line_.assign(
      static_cast<std::size_t>(max_delay + 2) + ams::kMaxBatch, 0.0);
  write_pos_ = 0;
}

void ChannelBlock::step(double /*t*/, double /*dt*/) {
  delay_line_[write_pos_] = (in_ != nullptr) ? *in_ : 0.0;
  const std::size_t n = delay_line_.size();
  double acc = 0.0;
  for (const auto& tap : sampled_) {
    const std::size_t idx =
        (write_pos_ + n - static_cast<std::size_t>(tap.delay_samples)) % n;
    acc += tap.gain * delay_line_[idx];
  }
  if (n0_ > 0.0)
    acc += rng_.gaussian() * std::sqrt(0.5 * n0_ * cfg_.sample_rate());
  out_[0] = acc;
  write_pos_ = (write_pos_ + 1) % n;
}

void ChannelBlock::step_block(const double* /*t*/, double /*dt*/, int n) {
  const std::size_t len = delay_line_.size();
  // Phase 1: write the whole batch into the ring. Tap reads only ever look
  // backwards (delay >= 0), and the kMaxBatch headroom keeps these writes
  // clear of every slot a tap can still read, so pre-writing is equivalent
  // to the per-sample interleaving.
  {
    std::size_t w = write_pos_;
    for (int i = 0; i < n; ++i) {
      delay_line_[w] = (in_ != nullptr) ? in_[i] : 0.0;
      if (++w == len) w = 0;
    }
  }
  // Phase 2: accumulate taps. Looping taps outer / samples inner adds each
  // sample's contributions in the same tap order as the per-sample path, so
  // the floating-point sums are bit-identical; the ring index advances by
  // increment-and-wrap instead of a per-read modulo.
  for (int i = 0; i < n; ++i) out_[i] = 0.0;
  for (const auto& tap : sampled_) {
    std::size_t idx =
        (write_pos_ + len - static_cast<std::size_t>(tap.delay_samples)) % len;
    const double g = tap.gain;
    for (int i = 0; i < n; ++i) {
      out_[i] += g * delay_line_[idx];
      if (++idx == len) idx = 0;
    }
  }
  // Phase 3: the AWGN draws, one per sample in sample order — the identical
  // RNG sequence of the per-sample path (the hoisted sqrt is the same value
  // the scalar expression recomputes).
  if (n0_ > 0.0) {
    const double s = std::sqrt(0.5 * n0_ * cfg_.sample_rate());
    for (int i = 0; i < n; ++i) out_[i] += rng_.gaussian() * s;
  }
  write_pos_ = (write_pos_ + static_cast<std::size_t>(n)) % len;
}

}  // namespace uwbams::uwb
