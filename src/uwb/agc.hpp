/// @file agc.hpp
/// @brief Automatic gain control with a quantizing gain DAC.
///
/// The VGA "adapts the signal gain in such a way that the input dynamics of
/// the ADC is fully exploited; its gain is controlled in steps using a DA
/// converter" (paper §2). The controller converts the energy-code error to a
/// gain-code correction in the dB domain (the integrator output scales with
/// the square of the voltage gain, hence the factor 10 rather than 20).
///
/// The paper's §5 conclusion proposes a *two-stage* AGC (input-amplitude
/// stage + integrator-output stage); set `post_gain_enabled` to exercise
/// that proposed architecture (see bench/ablation_two_stage_agc).
#pragma once

#include "uwb/adc.hpp"
#include "uwb/frontend.hpp"

namespace uwbams::uwb {

struct AgcConfig {
  double vga_min_db = 0.0;
  double vga_max_db = 40.0;
  int dac_bits = 6;
  int target_code = 24;  ///< desired peak energy code (of a 5-bit ADC: 0..31)
  int adc_max_code = 31;
  /// Proposed two-stage extension: a digital post-scale between integrator
  /// and ADC letting the input stage respect the integrator linear range.
  bool post_gain_enabled = false;
  double input_peak_target = 0.09;  ///< [V] squared-signal peak kept in range
};

class AgcController {
 public:
  AgcController(Amplifier& vga, const AgcConfig& cfg);

  /// One AGC iteration from the peak energy code observed over the last
  /// symbol (and, for the two-stage variant, the observed squared-signal
  /// peak voltage). Returns true if the gain changed.
  bool update(int peak_code, double squared_peak_v = 0.0);

  int gain_code() const { return code_; }
  double gain_db() const { return dac_.value(code_); }
  /// Digital post-scale applied to integrator samples (1.0 unless the
  /// two-stage architecture is enabled).
  double post_scale() const { return post_scale_; }
  int iterations() const { return iterations_; }

 private:
  Amplifier& vga_;
  AgcConfig cfg_;
  Dac dac_;
  int code_;
  double post_scale_ = 1.0;
  int iterations_ = 0;
};

}  // namespace uwbams::uwb
