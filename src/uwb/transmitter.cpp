#include "uwb/transmitter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uwbams::uwb {

Transmitter::Transmitter(const SystemConfig& cfg)
    : cfg_(cfg), clock_(cfg.clock, cfg.seed),
      pulse_(2, cfg.pulse_sigma, cfg.pulse_amplitude),
      // Center the first pulse early in the slot, leaving room for the
      // burst and the multipath tail inside the integration window.
      pulse_offset_(std::max(3.5 * cfg.pulse_sigma, 2e-9)) {}

void Transmitter::send(const Packet& packet, double t_start) {
  packet_ = packet;
  t_start_ = t_start;
  // One phase-noise draw per transmission on the start edge; the symbol
  // cadence inside the packet stays coherent with the (offset/drifting)
  // local oscillator.
  start_jitter_ = clock_.jitter_at(t_start);
}

bool Transmitter::busy(double t) const {
  return packet_.has_value() &&
         clock_.local_time(t) <
             t_start_ + packet_->duration(cfg_.symbol_period);
}

double Transmitter::first_pulse_time() const {
  if (!packet_.has_value())
    throw std::logic_error("Transmitter::first_pulse_time: nothing queued");
  return t_start_ + pulse_offset_;  // preamble symbol 0, slot 0
}

double Transmitter::sample_at(double t) const {
  if (!packet_.has_value()) return 0.0;
  // The waveform runs on the node's local timebase: identity clocks keep
  // rel == t - t_start_ bit for bit; a ppm-offset clock stretches the pulse
  // cadence, and the start-edge jitter shifts the whole packet.
  const double rel = clock_.local_time(t) - t_start_ - start_jitter_;
  if (rel < 0.0) return 0.0;
  const int sym = static_cast<int>(rel / cfg_.symbol_period);
  if (sym >= packet_->total_symbols()) return 0.0;
  const int slot = packet_->slot_of_symbol(sym);
  const double slot_start =
      sym * cfg_.symbol_period + slot * cfg_.slot_period();
  // Burst of pulses_per_symbol monocycles at pulse_spacing. Alternating
  // polarity (a fixed scrambling sequence) keeps neighbouring pulse tails
  // from interfering coherently; the energy detector is polarity-blind.
  const double first_center = slot_start + pulse_offset_;
  const double half = pulse_.half_duration();
  // Only pulses whose support can overlap this sample; the +/-1 widening
  // absorbs the floor/ceil rounding and the exact |t_rel| test below keeps
  // the accumulated sum identical to scanning the whole burst.
  int jlo = 0;
  int jhi = cfg_.pulses_per_symbol - 1;
  if (cfg_.pulse_spacing > 0.0) {
    const double off = rel - first_center;
    jlo = std::max(
        jlo, static_cast<int>(std::floor((off - half) / cfg_.pulse_spacing)) - 1);
    jhi = std::min(
        jhi, static_cast<int>(std::ceil((off + half) / cfg_.pulse_spacing)) + 1);
  }
  double acc = 0.0;
  for (int j = jlo; j <= jhi; ++j) {
    const double t_rel = rel - (first_center + j * cfg_.pulse_spacing);
    if (std::abs(t_rel) <= half)
      acc += ((j & 1) != 0 ? -1.0 : 1.0) * pulse_.value(t_rel);
  }
  return acc;
}

void Transmitter::step(double t, double /*dt*/) { out_[0] = sample_at(t); }

void Transmitter::step_block(const double* t, double /*dt*/, int n) {
  for (int i = 0; i < n; ++i) out_[i] = sample_at(t[i]);
}

}  // namespace uwbams::uwb
