/// @file frontend.hpp
/// @brief Analog front-end blocks: LNA/VGA amplifier and squarer.
///
/// Phase-II behavioral models: linear gain with hard saturation (the paper
/// keeps "saturation in the various stages" among the modeled
/// non-idealities) and an optional single-pole bandwidth limit. The VGA is
/// an Amplifier whose gain code is written by the AGC through a quantizing
/// DAC (uwb/dac in adc.hpp).
///
/// Both blocks are batch-capable: out() returns the base of a kMaxBatch
/// sample buffer, and step_block() runs the identical per-sample arithmetic
/// in one tight loop (the gain/clamp path with no bandwidth limit
/// auto-vectorizes; the one-pole recurrence stays serial but branch-free).
#pragma once

#include <vector>

#include "ams/kernel.hpp"
#include "ams/ode.hpp"

namespace uwbams::uwb {

class Amplifier : public ams::AnalogBlock {
 public:
  /// gain_db: initial gain; sat: output clamp (|v| <= sat); bw: -3 dB
  /// single-pole bandwidth in Hz (0 = unlimited).
  Amplifier(const double* input, double gain_db, double sat, double bw = 0.0);

  void set_gain_db(double gain_db);
  double gain_db() const { return gain_db_; }

  void step(double t, double dt) override;
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;
  const double* out() const { return out_; }

 private:
  const double* in_;
  double gain_db_;
  double gain_lin_;
  double sat_;
  double bw_;
  ams::OnePoleState pole_;
  double out_[ams::kMaxBatch] = {};
};

/// N-source summing junction at the rf node: out = sum of its inputs,
/// accumulated in registration order (the floating-point sum order is part
/// of the bit-exactness contract). Used by uwb/interference to merge the
/// victim channel output with CW / concurrent-piconet interferers in front
/// of the receiver chain; with a single input it is the identity map, but
/// the interference layer skips it entirely in that case so the historical
/// single-source wiring stays byte-identical.
class SummingJunction : public ams::AnalogBlock {
 public:
  explicit SummingJunction(std::vector<const double*> inputs);

  void step(double t, double dt) override;
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;
  const double* out() const { return out_; }

 private:
  std::vector<const double*> in_;
  double out_[ams::kMaxBatch] = {};
};

/// Square-law device: out = k * v^2 (the "( )^2" block of Fig. 1). The
/// output is intrinsically non-negative; it feeds the I&D differential
/// input.
class Squarer : public ams::AnalogBlock {
 public:
  Squarer(const double* input, double k);
  void step(double t, double dt) override;
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;
  const double* out() const { return out_; }

 private:
  const double* in_;
  double k_;
  double out_[ams::kMaxBatch] = {};
};

}  // namespace uwbams::uwb
