#include "uwb/agc.hpp"

#include <algorithm>
#include <cmath>

namespace uwbams::uwb {

AgcController::AgcController(Amplifier& vga, const AgcConfig& cfg)
    : vga_(vga), cfg_(cfg), dac_(cfg.dac_bits, cfg.vga_min_db, cfg.vga_max_db),
      code_(dac_.nearest_code(vga.gain_db())) {
  vga_.set_gain_db(dac_.value(code_));
}

bool AgcController::update(int peak_code, double squared_peak_v) {
  ++iterations_;
  int new_code = code_;

  if (cfg_.post_gain_enabled && squared_peak_v > 0.0) {
    // Two-stage policy (paper §5 proposal): the *input* stage keeps the
    // squared signal inside the integrator linear range...
    const double err_db =
        10.0 * std::log10(cfg_.input_peak_target /
                          std::max(squared_peak_v, 1e-6));
    new_code = std::clamp(
        code_ + static_cast<int>(std::lround(
                    err_db / (dac_.value(1) - dac_.value(0)))),
        0, dac_.max_code());
    // ...and the post-scale matches the integrated energy to the ADC.
    if (peak_code > 0) {
      post_scale_ *= static_cast<double>(cfg_.target_code) /
                     std::max(1, peak_code);
      post_scale_ = std::clamp(post_scale_, 0.1, 16.0);
    }
  } else {
    // Single-stage policy (paper §2 architecture): drive the peak energy
    // code to the ADC target. Energy scales with gain^2, so the code error
    // maps to dB with a factor 10.
    if (peak_code >= cfg_.adc_max_code) {
      new_code = std::max(0, code_ - std::max(1, dac_.max_code() / 8));
    } else if (peak_code > 0) {
      const double err_db =
          10.0 * std::log10(static_cast<double>(cfg_.target_code) /
                            static_cast<double>(peak_code));
      const double step_db = dac_.value(1) - dac_.value(0);
      new_code = std::clamp(
          code_ + static_cast<int>(std::lround(err_db / step_db)), 0,
          dac_.max_code());
    } else {
      new_code = std::min(dac_.max_code(),
                          code_ + std::max(1, dac_.max_code() / 8));
    }
  }

  const bool changed = new_code != code_;
  code_ = new_code;
  vga_.set_gain_db(dac_.value(code_));
  return changed;
}

}  // namespace uwbams::uwb
