/// @file ber.hpp
/// @brief Bit-error-rate measurement (Fig. 6) and the semi-analytic
/// energy-detection reference used to validate the simulated chain.
///
/// BER runs use genie timing (the paper's Phase I/II setup: "a control
/// signal forced by an ideal synchronizer") so the measured error rate
/// isolates the detector itself. The channel is AWGN with a configurable
/// received pulse amplitude; Eb/N0 sets the noise PSD from the received
/// pulse energy.
#pragma once

#include <cstdint>
#include <vector>

#include "uwb/config.hpp"
#include "uwb/receiver.hpp"

namespace uwbams::uwb {

struct BerConfig {
  SystemConfig sys;
  std::vector<double> ebn0_db = {0, 2, 4, 6, 8, 10, 12, 14};
  std::uint64_t max_bits = 20000;   ///< per Eb/N0 point
  std::uint64_t min_errors = 30;    ///< early stop once reached
  int batch_bits = 200;             ///< payload bits per simulated packet
  double rx_pulse_peak = 10e-3;     ///< received pulse amplitude [V]
  /// Gain-calibration target as a fraction of the ADC full scale. This is
  /// the AGC operating point of the paper's §5 discussion: warm targets
  /// (>0.2) exploit the ADC but push the squared signal beyond the
  /// integrator linear range (compression penalty); the default cold target
  /// keeps the signal inside the range, where the clamp censors noise
  /// spikes and the circuit integrator *outperforms* the ideal one at high
  /// Eb/N0 (the paper's Fig. 6 crossover).
  double calibration_fraction = 0.12;
  /// Worker threads for the sweep. Every Eb/N0 point owns an independent
  /// GenieLink seeded from the system seed and the point's Eb/N0 value
  /// alone, so the result is bit-identical for any job count (<=1 runs the
  /// points inline on the calling thread).
  int jobs = 1;

  BerConfig() {
    // The 32 ns window covers the pulse burst; with the ~550 MHz noise
    // bandwidth of the front end the time-bandwidth product is ~18, which
    // keeps the energy-detector waterfall in the paper's Eb/N0 region
    // (see DESIGN.md §5).
    sys.preamble_symbols = 0;  // genie runs are payload-only
    sys.multipath = false;
    sys.distance = 1.0;
  }
};

struct BerPoint {
  double ebn0_db = 0.0;
  double ber = 0.0;
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;
  double half_width_95 = 0.0;  ///< Wilson interval half width
  /// The point's task failed even after retries: a zero-bit placeholder
  /// kept in the curve so quarantined work is visible, never silent.
  bool quarantined = false;
};

/// Monte-Carlo sweep of the full analog/digital chain with the given
/// integrator fidelity. Runs on the fault-tolerant pool path: a point
/// whose task fails even after retries is returned as a quarantined
/// placeholder (and counted into *quarantined when non-null) instead of
/// aborting the sweep.
std::vector<BerPoint> run_ber_sweep(const BerConfig& config,
                                    const IntegratorFactory& make_integrator,
                                    int* quarantined = nullptr);

/// Semi-analytic 2-PPM energy-detection BER (Gaussian approximation of the
/// chi-square statistics):  Pe = Q( r / sqrt(2 r + 2 M) ),  r = Eb/N0,
/// M = B*T the time-bandwidth (pairs-of-dof) product.
double energy_detection_ber_theory(double ebn0_db, double tw_product);

/// Effective noise time-bandwidth product of the receiver for a config
/// (single-pole VGA bandwidth model; used for the theory overlay).
double receiver_tw_product(const SystemConfig& sys);

}  // namespace uwbams::uwb
