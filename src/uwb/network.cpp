#include "uwb/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "base/random.hpp"

namespace uwbams::uwb {

namespace {

// Fixed purpose tags of the network sub-streams (base::derive_seed).
constexpr std::uint64_t kPairPurpose = 0x6e777072ULL;   // "nwpr"
constexpr std::uint64_t kNodeClockPurpose = 0x6e77636bULL;  // "nwck"

constexpr double kPi = 3.141592653589793238462643383279502884;

double distance_between(const NodePosition& a, const NodePosition& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

// Linear trilateration of one point from >= 3 (position, distance)
// references: subtracting the first circle equation from the others yields
// a linear system solved in least squares via its 2x2 normal equations.
bool trilaterate(const std::vector<NodePosition>& refs,
                 const std::vector<double>& dists, NodePosition* out) {
  if (refs.size() < 3) return false;
  const double x0 = refs[0].x, y0 = refs[0].y, d0 = dists[0];
  double a11 = 0, a12 = 0, a22 = 0, b1 = 0, b2 = 0;
  for (std::size_t i = 1; i < refs.size(); ++i) {
    const double ax = 2.0 * (refs[i].x - x0);
    const double ay = 2.0 * (refs[i].y - y0);
    const double rhs = d0 * d0 - dists[i] * dists[i] +
                       (refs[i].x * refs[i].x - x0 * x0) +
                       (refs[i].y * refs[i].y - y0 * y0);
    a11 += ax * ax;
    a12 += ax * ay;
    a22 += ay * ay;
    b1 += ax * rhs;
    b2 += ay * rhs;
  }
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) < 1e-12) return false;  // collinear references
  out->x = (a22 * b1 - a12 * b2) / det;
  out->y = (a11 * b2 - a12 * b1) / det;
  return true;
}

}  // namespace

std::vector<NodePosition> solve_positions_2d(
    const std::vector<NodePosition>& positions_init, int anchor_count,
    const std::vector<PairDistance>& measurements, int sweeps,
    bool estimate_range_bias, double* bias_out) {
  const int n = static_cast<int>(positions_init.size());
  if (anchor_count < 3)
    throw std::invalid_argument(
        "solve_positions_2d: need >= 3 anchors to fix the 2-D gauge");
  if (anchor_count > n)
    throw std::invalid_argument("solve_positions_2d: more anchors than nodes");

  // One full solve from a given unknown-node seed offset: trilateration
  // init where possible, then alternating bias re-estimation and per-node
  // Gauss-Newton sweeps. Returns the refined positions, the bias and the
  // total squared residual (the multi-start selection criterion).
  const auto solve_from = [&](const std::vector<PairDistance>& measurements,
                              double off_x, double off_y, double* bias_used) {
    std::vector<NodePosition> pos = positions_init;
    for (int k = anchor_count; k < n; ++k) {
      pos[static_cast<std::size_t>(k)].x += off_x;
      pos[static_cast<std::size_t>(k)].y += off_y;
    }

    // Common range bias, seeded from the anchor-anchor links (known true
    // separations observe the bias directly) and refined each sweep over
    // all measurements once positions firm up.
    double bias = 0.0;
    if (estimate_range_bias) {
      double sum = 0.0;
      int count = 0;
      for (const auto& m : measurements) {
        if (m.node_a >= anchor_count || m.node_b >= anchor_count) continue;
        sum += m.distance -
               distance_between(pos[static_cast<std::size_t>(m.node_a)],
                                pos[static_cast<std::size_t>(m.node_b)]);
        ++count;
      }
      if (count > 0) bias = sum / count;
    }

    // Init every unknown node by trilateration against the anchors it has
    // measurements to; nodes without enough anchor links keep their offset
    // seed position (refined by the sweeps below through node-node links).
    for (int k = anchor_count; k < n; ++k) {
      std::vector<NodePosition> refs;
      std::vector<double> dists;
      for (const auto& m : measurements) {
        const int other =
            m.node_a == k ? m.node_b : (m.node_b == k ? m.node_a : -1);
        if (other < 0 || other >= anchor_count) continue;
        refs.push_back(positions_init[static_cast<std::size_t>(other)]);
        dists.push_back(m.distance - bias);
      }
      NodePosition p;
      if (trilaterate(refs, dists, &p)) pos[static_cast<std::size_t>(k)] = p;
    }

    // Gauss-Newton coordinate sweeps: each unknown node refines against
    // all of its measured neighbours (anchors and previously-updated
    // unknowns). The tiny Levenberg damping keeps the 2x2 solve well-posed
    // when a node has nearly collinear neighbours.
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      if (estimate_range_bias) {
        // Re-estimate the common bias against the current geometry (all
        // links; the fixed anchors keep it from drifting with the gauge).
        double sum = 0.0;
        int count = 0;
        for (const auto& m : measurements) {
          sum += m.distance -
                 distance_between(pos[static_cast<std::size_t>(m.node_a)],
                                  pos[static_cast<std::size_t>(m.node_b)]);
          ++count;
        }
        if (count > 0) bias = sum / count;
      }
      for (int k = anchor_count; k < n; ++k) {
        double a11 = 1e-9, a12 = 0, a22 = 1e-9, b1 = 0, b2 = 0;
        auto& pk = pos[static_cast<std::size_t>(k)];
        for (const auto& m : measurements) {
          const int other =
              m.node_a == k ? m.node_b : (m.node_b == k ? m.node_a : -1);
          if (other < 0) continue;
          const auto& po = pos[static_cast<std::size_t>(other)];
          const double dx = pk.x - po.x;
          const double dy = pk.y - po.y;
          const double r = std::hypot(dx, dy);
          if (r < 1e-9) continue;
          const double ux = dx / r, uy = dy / r;
          const double res = r - (m.distance - bias);
          a11 += ux * ux;
          a12 += ux * uy;
          a22 += uy * uy;
          b1 += ux * res;
          b2 += uy * res;
        }
        const double det = a11 * a22 - a12 * a12;
        if (std::abs(det) < 1e-15) continue;
        pk.x -= (a22 * b1 - a12 * b2) / det;
        pk.y -= (a11 * b2 - a12 * b1) / det;
      }
    }
    *bias_used = bias;
    return pos;
  };

  const auto total_residual = [&](const std::vector<PairDistance>& measurements,
                                  const std::vector<NodePosition>& pos,
                                  double bias) {
    double ssq = 0.0;
    for (const auto& m : measurements) {
      const double r =
          distance_between(pos[static_cast<std::size_t>(m.node_a)],
                           pos[static_cast<std::size_t>(m.node_b)]) -
          (m.distance - bias);
      ssq += r * r;
    }
    return ssq;
  };

  // Deterministic multi-start: a node that lost its anchor links (failed
  // pairs) falls back to its seed position, where Gauss-Newton can lock
  // onto the mirror solution. Re-solving from a fixed star of seed offsets
  // (scaled by the anchor spread) and keeping the lowest-residual result
  // resolves the ambiguity without randomness.
  double spread = 0.0;
  for (int i = 0; i < anchor_count; ++i)
    for (int j = i + 1; j < anchor_count; ++j)
      spread = std::max(spread,
                        distance_between(positions_init[static_cast<std::size_t>(i)],
                                         positions_init[static_cast<std::size_t>(j)]));
  const double r0 = spread > 0.0 ? spread : 1.0;
  const double offsets[][2] = {{0, 0},   {r0, 0},   {-r0, 0},  {0, r0},
                               {0, -r0}, {r0, r0},  {-r0, -r0}, {r0, -r0},
                               {-r0, r0}};
  const auto run_multistart = [&](const std::vector<PairDistance>& meas,
                                  double* bias_used) {
    std::vector<NodePosition> best;
    double best_bias = 0.0;
    double best_ssq = 0.0;
    bool first = true;
    for (const auto& off : offsets) {
      double bias = 0.0;
      auto pos = solve_from(meas, off[0], off[1], &bias);
      const double ssq = total_residual(meas, pos, bias);
      if (first || ssq < best_ssq) {
        best = std::move(pos);
        best_bias = bias;
        best_ssq = ssq;
        first = false;
      }
    }
    *bias_used = best_bias;
    return best;
  };

  double best_bias = 0.0;
  std::vector<NodePosition> best = run_multistart(measurements, &best_bias);

  // Robust re-solve: a wrong-slot sync lock inflates a single range by
  // many meters (half a symbol period is ~9.6 m), and one such outlier
  // drags the whole least-squares fit. Trim measurements whose residual
  // against the first solution exceeds max(3 median |residual|, 2 m) and
  // re-solve once on the survivors.
  std::vector<double> abs_res;
  abs_res.reserve(measurements.size());
  for (const auto& m : measurements) {
    const double r =
        distance_between(best[static_cast<std::size_t>(m.node_a)],
                         best[static_cast<std::size_t>(m.node_b)]) -
        (m.distance - best_bias);
    abs_res.push_back(std::abs(r));
  }
  if (!abs_res.empty()) {
    std::vector<double> sorted = abs_res;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double cut = std::max(3.0 * median, 2.0);
    std::vector<PairDistance> kept;
    kept.reserve(measurements.size());
    for (std::size_t i = 0; i < measurements.size(); ++i)
      if (abs_res[i] <= cut) kept.push_back(measurements[i]);
    // Only re-solve when something was dropped and enough links survive to
    // keep every unknown constrained on average (>= 3 per node).
    if (kept.size() < measurements.size() &&
        static_cast<int>(kept.size()) >= 3 * (n - anchor_count))
      best = run_multistart(kept, &best_bias);
  }

  if (bias_out != nullptr) *bias_out = best_bias;
  return best;
}

RangingNetwork::RangingNetwork(const NetworkConfig& cfg,
                               IntegratorFactory make_integrator)
    : cfg_(cfg), make_integrator_(std::move(make_integrator)) {
  if (cfg_.node_count < 2)
    throw std::invalid_argument("RangingNetwork: need >= 2 nodes");
  // Fail fast before paying for any simulation: run() hands anchor_count
  // straight to solve_positions_2d, which needs 3 anchors for the 2-D
  // gauge and rejects more anchors than nodes.
  if (cfg_.anchor_count < 3 || cfg_.anchor_count > cfg_.node_count)
    throw std::invalid_argument(
        "RangingNetwork: anchor_count must be in [3, node_count]");
  if (!cfg_.positions.empty() &&
      static_cast<int>(cfg_.positions.size()) != cfg_.node_count)
    throw std::invalid_argument(
        "RangingNetwork: positions size != node_count");

  if (cfg_.positions.empty()) {
    // Circle layout: every pairwise distance stays within the link budget's
    // working range for radii of a few meters.
    positions_.reserve(static_cast<std::size_t>(cfg_.node_count));
    for (int i = 0; i < cfg_.node_count; ++i) {
      const double ang = 2.0 * kPi * i / cfg_.node_count;
      positions_.push_back({cfg_.layout_radius * std::cos(ang),
                            cfg_.layout_radius * std::sin(ang)});
    }
  } else {
    positions_ = cfg_.positions;
  }

  // Per-node clock offsets: template ppm + U(-spread, spread) from the
  // node's deterministic sub-stream.
  node_ppm_.reserve(static_cast<std::size_t>(cfg_.node_count));
  const std::uint64_t clock_stream =
      base::derive_seed(cfg_.sys.seed, kNodeClockPurpose);
  for (int i = 0; i < cfg_.node_count; ++i) {
    double ppm = cfg_.clock_template.ppm;
    if (cfg_.ppm_spread > 0.0) {
      base::Rng rng(base::derive_seed(clock_stream,
                                      static_cast<std::uint64_t>(i)));
      ppm += rng.uniform(-cfg_.ppm_spread, cfg_.ppm_spread);
    }
    node_ppm_.push_back(ppm);
  }
}

ClockConfig RangingNetwork::node_clock(int node) const {
  ClockConfig c = cfg_.clock_template;
  c.ppm = node_ppm_[static_cast<std::size_t>(node)];
  c.node_id = static_cast<std::uint64_t>(node);
  return c;
}

int RangingNetwork::pair_count() const {
  return cfg_.node_count * (cfg_.node_count - 1) / 2;
}

std::pair<int, int> RangingNetwork::pair_nodes(int k) const {
  // Row-major over the strict upper triangle: (0,1), (0,2), ..., (n-2,n-1).
  int i = 0;
  int remaining = k;
  int row = cfg_.node_count - 1;
  while (remaining >= row) {
    remaining -= row;
    ++i;
    --row;
  }
  return {i, i + 1 + remaining};
}

PairMeasurement RangingNetwork::measure_pair(int k) const {
  const auto [i, j] = pair_nodes(k);
  PairMeasurement m;
  m.node_a = i;
  m.node_b = j;
  m.true_distance = distance_between(positions_[static_cast<std::size_t>(i)],
                                     positions_[static_cast<std::size_t>(j)]);

  // Pair-local TWR setup: independent CM1 realization + noise streams via
  // the pair's fixed-purpose sub-stream, so every pair is statistically
  // independent and the fan-out order is irrelevant.
  TwrConfig twr;
  twr.apply_system_template(cfg_.sys);  // keeps the acquire packet tuning
  twr.sys.distance = m.true_distance;
  twr.sys.seed = base::derive_seed(
      base::derive_seed(cfg_.sys.seed, kPairPurpose),
      static_cast<std::uint64_t>(k));
  twr.processing_time = cfg_.processing_time;
  twr.noise_psd = cfg_.noise_psd;
  twr.compensate_ppm = cfg_.compensate_ppm;
  // Every exchange sees a fresh realization: the leading-edge bias of a
  // single CM1 draw can reach meters, so multi-exchange pairs average over
  // realizations rather than re-sampling one unlucky profile.
  twr.fresh_channel_per_iteration = true;

  base::RunningStats est;
  for (int e = 0; e < cfg_.exchanges_per_pair; ++e) {
    // Round-robin initiator: node i initiates when (i + j + e) is even.
    const bool i_initiates = ((i + j + e) % 2) == 0;
    TwrConfig cfg_e = twr;
    cfg_e.clock_a = node_clock(i_initiates ? i : j);
    cfg_e.clock_b = node_clock(i_initiates ? j : i);
    // compensate_ppm consumes clock_a/clock_b, so the swap is transparent
    // to the correction term's sign.
    const auto it = run_twr_exchange(cfg_e, make_integrator_, e);
    ++m.exchanges;
    if (it.ok)
      est.add(it.distance_estimate);
    else
      ++m.failures;
  }
  m.ok_exchanges = static_cast<int>(est.count());
  if (m.ok()) m.est_distance = est.mean();
  return m;
}

NetworkResult RangingNetwork::run(const base::ParallelRunner* pool) const {
  NetworkResult res;
  res.positions = positions_;
  res.node_ppm = node_ppm_;

  const int pairs = pair_count();
  if (pool != nullptr) {
    res.pairs = pool->map<PairMeasurement>(
        static_cast<std::size_t>(pairs),
        [this](std::size_t k) { return measure_pair(static_cast<int>(k)); });
  } else {
    res.pairs.reserve(static_cast<std::size_t>(pairs));
    for (int k = 0; k < pairs; ++k) res.pairs.push_back(measure_pair(k));
  }

  base::RunningStats derr;
  std::vector<PairDistance> obs;
  for (const auto& m : res.pairs) {
    if (!m.ok()) {
      ++res.failed_pairs;
      continue;
    }
    obs.push_back({m.node_a, m.node_b, m.est_distance});
    derr.add(m.est_distance - m.true_distance);
  }
  res.distance_rmse = std::sqrt(derr.count() > 0
                                    ? derr.variance_population() +
                                          derr.mean() * derr.mean()
                                    : 0.0);

  // The solver only knows the anchors: unknown nodes start from the anchor
  // centroid (trilateration then Gauss-Newton does the rest), never from
  // the true layout.
  std::vector<NodePosition> init = positions_;
  NodePosition centroid;
  for (int k = 0; k < cfg_.anchor_count; ++k) {
    centroid.x += positions_[static_cast<std::size_t>(k)].x / cfg_.anchor_count;
    centroid.y += positions_[static_cast<std::size_t>(k)].y / cfg_.anchor_count;
  }
  for (int k = cfg_.anchor_count; k < cfg_.node_count; ++k)
    init[static_cast<std::size_t>(k)] = centroid;
  res.solved = solve_positions_2d(init, cfg_.anchor_count, obs, /*sweeps=*/24,
                                  /*estimate_range_bias=*/true,
                                  &res.range_bias);
  base::RunningStats perr;
  for (int k = cfg_.anchor_count; k < cfg_.node_count; ++k) {
    const auto& t = res.positions[static_cast<std::size_t>(k)];
    const auto& s = res.solved[static_cast<std::size_t>(k)];
    const double e = distance_between(t, s);
    perr.add(e * e);
  }
  res.position_rmse = perr.count() > 0 ? std::sqrt(perr.mean()) : 0.0;
  return res;
}

}  // namespace uwbams::uwb
