/// @file network.hpp
/// @brief N-node two-way-ranging network + 2-D position solver.
///
/// Radar / localization deployments of pulsed-UWB transceivers are
/// many-node: every pair of nodes measures its distance with the §5 TWR
/// exchange, and a solver turns the pairwise estimates into positions.
/// RangingNetwork builds exactly that on top of the existing per-pair
/// engine (ranging.hpp):
///
///   * each unordered pair (i, j) gets an *independent* CM1 channel
///     realization and noise stream, seeded from fixed-purpose
///     base::derive_seed sub-streams of the network seed and the pair
///     index alone — measuring pairs in any order, or fanning them across
///     any number of workers, reproduces the serial result bit for bit;
///   * the initiator role rotates round-robin across exchanges (exchange e
///     of pair (i, j) is initiated by i when (i + j + e) is even), so every
///     node spends comparable time in the counter-running role — with
///     per-node clock offsets the initiator's oscillator dominates the
///     drift bias, and the rotation keeps that bias from piling onto one
///     side of the network;
///   * every node owns a ClockModel: a per-node ppm offset drawn uniformly
///     from [-ppm_spread, +ppm_spread] (deterministic per node id) on top
///     of the shared drift/jitter template.
///
/// solve_positions_2d() is a deterministic least-squares multilateration:
/// nodes 0..2 are anchors at known positions, the rest are initialized by
/// linear trilateration against the anchors and refined by per-node
/// Gauss-Newton sweeps over *all* measured pair distances.
#pragma once

#include <cstdint>
#include <vector>

#include "base/parallel.hpp"
#include "uwb/ranging.hpp"

namespace uwbams::uwb {

struct NodePosition {
  double x = 0.0;  ///< [m]
  double y = 0.0;  ///< [m]
};

struct NetworkConfig {
  /// Template system parameters shared by every node (per-node clock and
  /// per-pair distance/seed are overridden internally).
  SystemConfig sys;
  int node_count = 4;
  /// Auto layout when `positions` is empty: nodes on a circle of this
  /// radius centered on the origin (keeps every pairwise link inside the
  /// distance range the link budget is tuned for).
  double layout_radius = 6.0;             ///< [m]
  std::vector<NodePosition> positions;    ///< explicit layout (optional)

  double processing_time = 12e-6;         ///< per-exchange PT [s]
  double noise_psd = 8e-19;               ///< receiver-input N0 [V^2/Hz]
  int exchanges_per_pair = 1;             ///< TWR exchanges averaged per pair

  /// Per-node oscillators: ppm ~ U(-ppm_spread, +ppm_spread) drawn from a
  /// deterministic per-node sub-stream; drift/jitter copied from
  /// clock_template. Zero spread + zero template = ideal clocks.
  double ppm_spread = 0.0;
  ClockConfig clock_template;
  bool compensate_ppm = false;  ///< apply the TWR ppm compensation per pair

  int anchor_count = 3;  ///< nodes 0..anchor_count-1 known to the solver
};

struct PairMeasurement {
  int node_a = 0;               ///< lower node index of the pair
  int node_b = 0;               ///< higher node index
  double true_distance = 0.0;   ///< [m]
  double est_distance = 0.0;    ///< mean over ok exchanges [m]; only
                                ///< meaningful when ok()
  int exchanges = 0;
  int ok_exchanges = 0;         ///< exchanges that acquired (the estimate
                                ///< averages over exactly these)
  int failures = 0;             ///< acquisition failures among the exchanges
  /// Explicit success state — no magic sentinel in est_distance: a pair is
  /// usable iff at least one exchange acquired.
  bool ok() const { return ok_exchanges > 0; }
};

struct NetworkResult {
  std::vector<NodePosition> positions;  ///< true layout
  std::vector<double> node_ppm;         ///< per-node drawn clock offsets
  std::vector<PairMeasurement> pairs;   ///< one per unordered pair, ordered
                                        ///< (0,1), (0,2), ... row-major
  std::vector<NodePosition> solved;     ///< solver output (anchors copied)
  double position_rmse = 0.0;           ///< over non-anchor nodes [m]
  double distance_rmse = 0.0;           ///< est vs true over ok pairs [m]
  double range_bias = 0.0;              ///< solver's common-bias estimate [m]
  int failed_pairs = 0;                 ///< pairs with no ok exchange
};

/// A distance observation the position solver consumes.
struct PairDistance {
  int node_a = 0;
  int node_b = 0;
  double distance = 0.0;  ///< [m]
};

/// Least-squares 2-D multilateration. `positions_init` supplies the anchor
/// coordinates (first `anchor_count` entries are held fixed) and the vector
/// length fixes the node count; non-anchor entries are used only when no
/// trilateration init is possible for that node. Deterministic; requires
/// anchor_count >= 3 (the 2-D gauge).
///
/// When `estimate_range_bias` is set the model becomes
/// d_ij = |p_i - p_j| + b with one network-common bias b solved jointly —
/// the leading-edge energy detector latches *after* the first path on
/// dispersed CM1 realizations, so every pair's range carries a positive
/// offset whose common part the anchor-anchor links pin down (the
/// antenna-delay / ranging-offset calibration every deployed UWB localizer
/// performs). `bias_out` (optional) receives the estimate.
std::vector<NodePosition> solve_positions_2d(
    const std::vector<NodePosition>& positions_init, int anchor_count,
    const std::vector<PairDistance>& measurements, int sweeps = 24,
    bool estimate_range_bias = false, double* bias_out = nullptr);

class RangingNetwork {
 public:
  /// `make_integrator` is the per-node I&D factory, as in TwoWayRanging
  /// (every node runs the same fidelity).
  RangingNetwork(const NetworkConfig& cfg, IntegratorFactory make_integrator);

  /// True node layout (explicit positions or the generated circle).
  const std::vector<NodePosition>& positions() const { return positions_; }
  /// Per-node ppm offsets (clock_template.ppm + the U(-spread, spread)
  /// draw of the node's sub-stream).
  const std::vector<double>& node_ppm() const { return node_ppm_; }

  int pair_count() const;
  /// The k-th unordered pair, k in [0, pair_count()), ordered (0,1),
  /// (0,2), ..., (n-2, n-1).
  std::pair<int, int> pair_nodes(int k) const;

  /// Measures one pair: `exchanges_per_pair` TWR exchanges with the
  /// round-robin initiator schedule, all seeds derived from the network
  /// seed and k alone (safe to call from any worker, in any order).
  PairMeasurement measure_pair(int k) const;

  /// Measures every pair (fanned across `pool` when given) and solves
  /// positions. Bit-identical for any job count.
  NetworkResult run(const base::ParallelRunner* pool = nullptr) const;

 private:
  ClockConfig node_clock(int node) const;

  NetworkConfig cfg_;
  IntegratorFactory make_integrator_;
  std::vector<NodePosition> positions_;
  std::vector<double> node_ppm_;
};

}  // namespace uwbams::uwb
