/// @file transmitter.hpp
/// @brief Pulse generator + 2-PPM modulator.
///
/// Produces the antenna voltage sample by sample: one monocycle per symbol,
/// placed in the slot selected by the payload bit (preamble pulses always in
/// slot 0). The pulse is centered inside its slot at a fixed offset so the
/// whole waveform fits the receiver's integration window.
///
/// Batch-capable: step_block() evaluates the identical per-sample waveform
/// expression for each batch sample. Both paths share sample_at(), which
/// restricts the burst scan to the pulses whose support can overlap the
/// sample (the exact |t_rel| test is still applied, so the summation — and
/// therefore the waveform — is bit-identical to the full per-pulse scan).
///
/// Clock domain: send() start times and first_pulse_time() are in the
/// node's *local* clock (cfg.clock); the waveform is generated against that
/// local timebase by mapping the kernel's true time through
/// ClockModel::local_time per sample, plus one white-jitter draw per send()
/// on the packet start edge (the pulse clock's phase noise). The node's
/// digital counter records the *intended* local first-pulse time, so clock
/// error shows up in the ranging estimate exactly as it does on silicon.
/// An identity clock (the default) reproduces the historical waveform bit
/// for bit.
#pragma once

#include <optional>

#include "ams/kernel.hpp"
#include "uwb/clock.hpp"
#include "uwb/config.hpp"
#include "uwb/packet.hpp"
#include "uwb/pulse.hpp"

namespace uwbams::uwb {

class Transmitter : public ams::AnalogBlock {
 public:
  explicit Transmitter(const SystemConfig& cfg);

  /// Queues a packet whose first symbol starts at absolute time t_start.
  void send(const Packet& packet, double t_start);
  bool busy(double t) const;
  /// Time of the first pulse center of the queued packet (for ranging
  /// bookkeeping). Only valid after send().
  double first_pulse_time() const;
  /// Offset of the pulse center within its slot.
  double pulse_offset_in_slot() const { return pulse_offset_; }
  /// This node's oscillator model (built from cfg.clock + cfg.seed).
  const ClockModel& clock() const { return clock_; }

  void step(double t, double dt) override;
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;
  const double* out() const { return out_; }

 private:
  /// The antenna voltage at absolute time t (the body both step paths run).
  double sample_at(double t) const;

  SystemConfig cfg_;
  ClockModel clock_;
  GaussianMonocycle pulse_;
  double pulse_offset_;  ///< pulse center relative to slot start
  std::optional<Packet> packet_;
  double t_start_ = 0.0;      ///< local-clock packet start
  double start_jitter_ = 0.0; ///< phase-noise draw of the start edge [s]
  double out_[ams::kMaxBatch] = {};
};

}  // namespace uwbams::uwb
