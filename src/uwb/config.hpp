/// @file config.hpp
/// @brief System-level parameters of the UWB transceiver testbench.
///
/// One struct gathers every knob of the 2-PPM energy-detection link so that
/// benches, tests and examples share a single source of truth. Defaults
/// follow DESIGN.md §5 (and through it, the paper's setup: 0.05 ns fixed
/// step, 2-PPM with energy detection, 5-bit ADC over the 1.6 V integrator
/// swing, CM1 channel for ranging).
#pragma once

#include <cstdint>

#include "uwb/clock.hpp"

namespace uwbams::uwb {

/// IEEE 802.15.4a channel environment classes (TG4a final report). The
/// numeric values are the canonical-axis encoding used by the surrogate
/// grid (net::SurrogateTable) and must stay dense and stable.
enum class ChannelClass : int {
  kCm1 = 0,  ///< residential LOS — the paper's Table-2 environment
  kCm2 = 1,  ///< residential NLOS
  kCm3 = 2,  ///< office LOS
  kCm4 = 3,  ///< office NLOS
};

constexpr int kChannelClassCount = 4;

/// Canonical lower-case names ("cm1".."cm4"); see channel.cpp.
const char* to_string(ChannelClass c);

/// In-band interference at the receiver antenna: one narrowband CW tone
/// plus N uncoordinated concurrent-piconet UWB interferers. The default
/// (all-off) set is the bit-exact identity — no blocks are registered and
/// the rf wiring is untouched. Each interferer draws its symbols from its
/// own derive_seed sub-stream (docs/channels.md has the seeding contract).
struct InterferenceConfig {
  /// Narrowband CW blocker (0 amplitude = off). The default frequency sits
  /// inside the detector noise bandwidth so the tone survives the VGA pole.
  double cw_amplitude = 0.0;  ///< peak amplitude at the antenna [V]
  double cw_freq = 0.31e9;    ///< [Hz]
  double cw_phase = 0.0;      ///< [rad]

  /// Concurrent-piconet UWB interferers: each is an independent 2-PPM
  /// burst transmitter reusing the victim's pulse shape, offset in time
  /// and running on its own symbol clock (incommensurate with the victim
  /// Ts so collisions sweep through every relative phase).
  int uwb_count = 0;
  double uwb_amplitude = 0.0;        ///< per-interferer peak at the rx [V]
  double uwb_symbol_period = 122e-9; ///< interferer Ts [s]

  bool any() const {
    return cw_amplitude != 0.0 || (uwb_count > 0 && uwb_amplitude != 0.0);
  }
  bool operator==(const InterferenceConfig&) const = default;
};

struct SystemConfig {
  /// Solver / sampling.
  double dt = 0.05e-9;  ///< analog time step [s] (paper: 0.05 ns)

  /// Modulation timing.
  double symbol_period = 128e-9;    ///< Ts [s]; slot = Ts/2 (2-PPM)
  double integration_window = 32e-9;  ///< I&D window per slot [s]
  double reset_width = 12e-9;         ///< dump width at window start [s] (the
                                      ///< circuit needs ~10 ns: CM recovery from
                                      ///< switching injection gates the reset)

  /// Pulse shape (Gaussian 2nd derivative). Each symbol carries a short
  /// *train* of pulses in the selected slot (the paper modulates "a 2-PPM
  /// modulated train of UWB pulses"). The pulse bandwidth follows the
  /// 802.15.4a low-rate channelization (~500 MHz) the paper targets; the
  /// burst raises the per-symbol energy above the energy-ADC quantization
  /// floor and fills the integration window, which is what lets the Gm-C
  /// integrator (K ~ 6e7 1/s) produce ADC-scale outputs.
  double pulse_sigma = 0.7e-9;   ///< [s]
  /// TX level set so the 9.9 m CM1 link reaches the AGC's ADC target — the
  /// operating point at which the paper's §5 AGC-vs-integrator-range
  /// tension plays out.
  double pulse_amplitude = 1.2;  ///< peak TX amplitude at the antenna [V]
  int pulses_per_symbol = 16;    ///< burst length
  double pulse_spacing = 2e-9;   ///< intra-burst pulse spacing [s]

  /// Front-end bandwidths (single-pole models).
  double lna_bandwidth = 1e9;    ///< [Hz]
  double vga_bandwidth = 350e6;  ///< [Hz]; sets the detector noise bandwidth

  /// Packet structure.
  int preamble_symbols = 32;  ///< unmodulated (slot-0) pulses
  int payload_bits = 64;

  /// Receiver front end.
  double lna_gain_db = 20.0;
  double lna_sat = 0.6;        ///< LNA output clamp [V]
  double vga_min_db = 0.0;
  double vga_max_db = 40.0;
  int vga_dac_bits = 6;        ///< AGC gain DAC resolution (paper Phase II)
  double vga_sat = 0.9;        ///< VGA output clamp [V]
  double squarer_gain = 1.0;   ///< [1/V] output = k * v^2

  /// Integrator (nominal circuit figures; the spice variant derives them
  /// from the netlist itself).
  double integrator_k = 6.23e7;     ///< ideal gain Gm/C [1/s]
  double integrator_gain_db = 21.0; ///< behavioral DC gain [dB]
  double integrator_f1 = 0.886e6;   ///< behavioral pole 1 [Hz]
  double integrator_f2 = 5.895e9;   ///< behavioral pole 2 [Hz]
  double integrator_clamp = 0.104;  ///< input linear range [V]; 0 = linear

  /// ADC on the integrator output. The full scale is matched to the
  /// realistic integrated-energy range, not the integrator's maximum swing:
  /// the AGC cannot push the energy to the 1.6 V swing without driving the
  /// squared signal far beyond the integrator input range (the very
  /// architectural tension the paper's §5 analyzes).
  int adc_bits = 5;
  double adc_vmin = 0.0;
  double adc_vmax = 0.5;

  /// Acquisition thresholds.
  int noise_est_windows = 32;       ///< NE windows before preamble sense
  double sense_factor = 4.0;        ///< PS threshold = factor * noise stddev
  int agc_settle_symbols = 10;      ///< symbols granted to the AGC loop
  int sync_symbols = 6;             ///< symbols scored per coarse hypothesis
  double fine_step = 2e-9;          ///< fine ToA sweep step [s]
  double fine_window = 8e-9;        ///< short integration for the edge search
  /// Constant subtracted from the raw leading-edge crossing: the burst edge
  /// must deliver `threshold` worth of energy before the crossing fires, a
  /// fixed group delay calibrated out against the ideal-integrator system
  /// (as a designer would calibrate the ranging DSP on the Phase-II model).
  double toa_edge_correction = 3e-9;
  /// Leading-edge threshold as a fraction of the level the AGC *believes*
  /// it established (target code x LSB, scaled to the fine window). It is
  /// an absolute reference, not peak-normalized: when the real integrator's
  /// limited input range yields "a lower output voltage" (paper §5), the
  /// crossing happens later and the ranging bias grows — the paper's
  /// Table 2 mechanism.
  double leading_edge_fraction = 0.25;

  /// Paper §5 proposed architecture fix: split the AGC into an input
  /// amplitude-matching stage and a digital post-scale that matches the
  /// integrated energy to the ADC. Exercised by bench/ablation_two_stage_agc.
  bool two_stage_agc = false;

  /// Channel.
  double distance = 9.9;          ///< [m] (Table 2 point)
  double path_loss_exponent = 1.79;   ///< 4a CM1 LOS
  double path_loss_db_1m = 43.9;      ///< PL0 at d0 = 1 m
  bool multipath = true;          ///< Saleh-Valenzuela vs pure AWGN
  double noise_psd = 0.0;         ///< N0 [V^2/Hz] at the receiver input
  /// TG4a environment class for the multipath draw. kCm1 is the historical
  /// default and the bit-exact identity for every existing scenario; use
  /// apply_channel_class() (channel.hpp) to also install the class's
  /// path-loss law. Canonically serialized as "cm1".."cm4".
  ChannelClass channel_class = ChannelClass::kCm1;

  std::uint64_t seed = 1;

  /// Interference environment (empty default = bit-exact identity).
  InterferenceConfig interference;

  /// This node's local-oscillator nonideality (clock.hpp). The default
  /// (all-zero) config is the bit-exact identity, so single-node benches
  /// and the historical TWR path are unaffected unless a scenario opts in.
  /// Transmitter and Receiver each build their ClockModel from this config
  /// plus `seed`, so both halves of a node run on the same oscillator.
  ClockConfig clock;

  /// Member-wise equality (exact double compare): the canonical-
  /// serialization round-trip contract `from_json(to_json(c)) == c` is an
  /// identity of the run, not a numerical tolerance question.
  bool operator==(const SystemConfig&) const = default;

  /// Derived helpers.
  double slot_period() const { return symbol_period / 2.0; }
  double sample_rate() const { return 1.0 / dt; }
  int samples_per_symbol() const {
    return static_cast<int>(symbol_period / dt + 0.5);
  }
};

}  // namespace uwbams::uwb
