/// @file ranging.hpp
/// @brief The Two-Way Ranging experiment engine (Table 2).
///
/// "A request packet is sent by a first transceiver and is replied by a
/// second after a known processing time (PT). The replied packet is received
/// again by the first transceiver which estimates the RTT by subtracting the
/// PT" (paper §5). Both nodes run the full acquisition FSM; the ToA biases
/// of both sides therefore enter the distance estimate exactly as they do in
/// the paper's mixed-level simulations.
#pragma once

#include <cstdint>
#include <vector>

#include "base/stats.hpp"
#include "uwb/channel.hpp"
#include "uwb/config.hpp"
#include "uwb/receiver.hpp"

namespace uwbams::uwb {

struct TwrConfig {
  SystemConfig sys;               ///< shared system parameters
  double processing_time = 12e-6; ///< PT: reply pulse leaves PT after the
                                  ///< estimated request ToA [s]
  int iterations = 10;            ///< paper: 10 TWR iterations
  double noise_psd = 2e-19;       ///< receiver-input N0 [V^2/Hz]
  /// Paper setup: "10 TWR iterations at a single distance point" — one CM1
  /// realization, noise re-drawn per iteration, so the spread isolates the
  /// estimator jitter. Set true to also re-draw the channel.
  bool fresh_channel_per_iteration = false;

  TwrConfig() {
    // Acquire-mode packets need a preamble long enough for the full
    // NE/PS/AGC/coarse/fine sequence (~65 symbols with the defaults).
    sys.preamble_symbols = 80;
    sys.payload_bits = 4;
    sys.noise_est_windows = 16;
    // The ranging link operates with limited gain headroom: the AGC
    // "cannot ensure both amplitude matching for the integrator input
    // range and energy matching for the ADC input range because of the
    // limited gain" (paper §5) — with spare headroom the AGC would simply
    // out-amplify the circuit integrator's lower output and hide the
    // effect Table 2 demonstrates.
    // (40 dB keeps acquisition robust; the 8x noise floor sets the jitter)
    noise_psd = 8e-19;
  }

  /// Per-iteration seeds. run() and any parallel fan-out derive them from
  /// here so a sharded run reproduces the serial one bit for bit.
  std::uint64_t channel_seed(int iteration) const {
    return fresh_channel_per_iteration
               ? sys.seed + static_cast<std::uint64_t>(iteration) * 1000003ull
               : sys.seed;
  }
  std::uint64_t noise_seed(int iteration) const {
    return sys.seed + 17 + static_cast<std::uint64_t>(iteration) * 7919ull;
  }
};

struct TwrIteration {
  double distance_estimate = -1.0;  ///< [m]; negative = acquisition failure
  double toa_bias_a = 0.0;          ///< diagnostic: per-side sync bias [s]
  double toa_bias_b = 0.0;
  bool ok = false;
};

struct TwrResult {
  std::vector<TwrIteration> iterations;
  int failures = 0;
  double mean() const;
  /// The paper's Table 2 reports mean + "variance" in meters, i.e. the
  /// standard deviation; both accessors are provided.
  double variance() const;
  double stddev() const;
};

class TwoWayRanging {
 public:
  /// Both nodes use integrators built by `make_integrator` (the paper swaps
  /// the same block fidelity in both devices).
  TwoWayRanging(const TwrConfig& cfg, IntegratorFactory make_integrator);

  TwrResult run();
  /// Single exchange with explicit seeds (used by tests): the channel seed
  /// draws the CM1 realizations, the noise seed the AWGN and payload.
  TwrIteration run_iteration(std::uint64_t channel_seed,
                             std::uint64_t noise_seed);

 private:
  TwrConfig cfg_;
  IntegratorFactory make_integrator_;
};

}  // namespace uwbams::uwb
