/// @file ranging.hpp
/// @brief The Two-Way Ranging experiment engine (Table 2).
///
/// "A request packet is sent by a first transceiver and is replied by a
/// second after a known processing time (PT). The replied packet is received
/// again by the first transceiver which estimates the RTT by subtracting the
/// PT" (paper §5). Both nodes run the full acquisition FSM; the ToA biases
/// of both sides therefore enter the distance estimate exactly as they do in
/// the paper's mixed-level simulations.
#pragma once

#include <cstdint>
#include <vector>

#include "base/random.hpp"
#include "base/stats.hpp"
#include "uwb/channel.hpp"
#include "uwb/clock.hpp"
#include "uwb/config.hpp"
#include "uwb/receiver.hpp"

namespace uwbams::uwb {

struct TwrConfig {
  SystemConfig sys;               ///< shared system parameters
  double processing_time = 12e-6; ///< PT: reply pulse leaves PT after the
                                  ///< estimated request ToA [s]
  int iterations = 10;            ///< paper: 10 TWR iterations
  double noise_psd = 2e-19;       ///< receiver-input N0 [V^2/Hz]
  /// Paper setup: "10 TWR iterations at a single distance point" — one CM1
  /// realization, noise re-drawn per iteration, so the spread isolates the
  /// estimator jitter. Set true to also re-draw the channel.
  bool fresh_channel_per_iteration = false;

  /// Per-node oscillator nonidealities (clock.hpp). Defaults are ideal
  /// clocks — the bit-exact historical TWR path. When the two node_ids are
  /// left equal (the default), they are forced to 0 (A, the initiator) and
  /// 1 (B, the responder) so each side's jitter stream is a distinct
  /// derive_seed sub-stream of the iteration seed; callers that assign
  /// their own per-node ids (RangingNetwork) keep them.
  ClockConfig clock_a;
  ClockConfig clock_b;
  /// Corrects the classic PT-scaling drift bias out of the reported
  /// distance (rtt -= PT (delta_a - delta_b)), using the *configured* ppm
  /// values — the role a carrier-frequency-offset tracker plays in a real
  /// ranging DSP, which measures the remote clock rate against its own.
  /// The raw estimate stays available in TwrIteration::distance_raw.
  bool compensate_ppm = false;

  TwrConfig() {
    // Acquire-mode packets need a preamble long enough for the full
    // NE/PS/AGC/coarse/fine sequence (~65 symbols with the defaults).
    sys.preamble_symbols = 80;
    sys.payload_bits = 4;
    sys.noise_est_windows = 16;
    // The ranging link operates with limited gain headroom: the AGC
    // "cannot ensure both amplitude matching for the integrator input
    // range and energy matching for the ADC input range because of the
    // limited gain" (paper §5) — with spare headroom the AGC would simply
    // out-amplify the circuit integrator's lower output and hide the
    // effect Table 2 demonstrates.
    // (40 dB keeps acquisition robust; the 8x noise floor sets the jitter)
    noise_psd = 8e-19;
  }

  /// Installs a caller-provided system template while preserving the
  /// acquire-mode packet structure the constructor curates (preamble
  /// length, payload size, NE windows) — the knobs the TWR sequencing
  /// depends on. Use this instead of assigning `sys` wholesale.
  void apply_system_template(const SystemConfig& s) {
    const int preamble = sys.preamble_symbols;
    const int payload = sys.payload_bits;
    const int ne_windows = sys.noise_est_windows;
    sys = s;
    sys.preamble_symbols = preamble;
    sys.payload_bits = payload;
    sys.noise_est_windows = ne_windows;
  }

  /// Fixed purpose tags of the TWR sub-streams (base::derive_seed). Any
  /// distinct constants work — derive_seed mixes them through splitmix64 —
  /// but they must never change once results are published.
  static constexpr std::uint64_t kChannelPurpose = 0x74777263ULL;  // "twrc"
  static constexpr std::uint64_t kNoisePurpose = 0x7477726eULL;    // "twrn"

  /// Per-iteration seeds. run() and any parallel fan-out derive them from
  /// here so a sharded run reproduces the serial one bit for bit. Channel
  /// and noise draws come from fixed-purpose derive_seed sub-streams of
  /// sys.seed, so the two streams can never collide or correlate for any
  /// (seed, iteration) pair — the additive arithmetic this replaces
  /// (sys.seed + 17 + 7919 i) could alias the channel stream of one seed
  /// with the noise stream of another.
  std::uint64_t channel_seed(int iteration) const {
    const std::uint64_t stream = base::derive_seed(sys.seed, kChannelPurpose);
    return fresh_channel_per_iteration
               ? base::derive_seed(stream,
                                   static_cast<std::uint64_t>(iteration))
               : stream;
  }
  std::uint64_t noise_seed(int iteration) const {
    return base::derive_seed(base::derive_seed(sys.seed, kNoisePurpose),
                             static_cast<std::uint64_t>(iteration));
  }
};

struct TwrIteration {
  double distance_estimate = -1.0;  ///< [m]; negative = acquisition failure.
                                    ///< ppm-compensated when
                                    ///< TwrConfig::compensate_ppm is set.
  double distance_raw = -1.0;       ///< estimate before ppm compensation [m]
  double toa_bias_a = 0.0;          ///< diagnostic: per-side sync bias [s]
  double toa_bias_b = 0.0;
  bool ok = false;
};

struct TwrResult {
  std::vector<TwrIteration> iterations;
  int failures = 0;
  double mean() const;
  /// The paper's Table 2 reports mean + "variance" in meters, i.e. the
  /// standard deviation; both accessors are provided.
  double variance() const;
  double stddev() const;
};

class TwoWayRanging {
 public:
  /// Both nodes use integrators built by `make_integrator` (the paper swaps
  /// the same block fidelity in both devices).
  TwoWayRanging(const TwrConfig& cfg, IntegratorFactory make_integrator);

  TwrResult run();
  /// Single exchange with explicit seeds (used by tests): the channel seed
  /// draws the CM1 realizations, the noise seed the AWGN and payload.
  TwrIteration run_iteration(std::uint64_t channel_seed,
                             std::uint64_t noise_seed);

 private:
  TwrConfig cfg_;
  IntegratorFactory make_integrator_;
};

/// One TWR exchange as a standalone call: builds the engine and derives the
/// channel/noise sub-streams of exchange index `exchange` from cfg.sys.seed
/// exactly as TwoWayRanging::run() does. The shared single-exchange entry
/// point of the network layer (RangingNetwork) and the PHY-surrogate
/// calibration pipeline (net/calibrate.hpp), so both sample identical
/// physics for a given (seed, exchange).
TwrIteration run_twr_exchange(const TwrConfig& cfg,
                              const IntegratorFactory& make_integrator,
                              int exchange);

}  // namespace uwbams::uwb
