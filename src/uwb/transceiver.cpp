#include "uwb/transceiver.hpp"

#include <cmath>
#include <stdexcept>

namespace uwbams::uwb {

Receiver& Transceiver::rx() {
  if (!rx_)
    throw std::logic_error(
        "Transceiver::rx: build_rx() has not been called (two-phase "
        "construction registers the receive chain separately)");
  return *rx_;
}

Transceiver::Transceiver(ams::Kernel& kernel, const SystemConfig& cfg,
                         const double* rf_input,
                         const IntegratorFactory& make_integrator)
    : Transceiver(kernel, cfg) {
  build_rx(kernel, rf_input, make_integrator);
}

Transceiver::Transceiver(ams::Kernel& kernel, const SystemConfig& cfg)
    : cfg_(cfg) {
  tx_ = std::make_unique<Transmitter>(cfg);
  kernel.add_analog(*tx_);
}

void Transceiver::build_rx(ams::Kernel& kernel, const double* rf_input,
                           const IntegratorFactory& make_integrator) {
  // Interference enters at the antenna node, between the channel block and
  // the LNA. An empty interference set registers nothing and out() aliases
  // rf_input, keeping the historical wiring byte-identical.
  interf_ = std::make_unique<InterferenceSet>(kernel, cfg_, rf_input);
  rx_ = std::make_unique<Receiver>(kernel, cfg_, interf_->out(),
                                   make_integrator);
}

void Transceiver::send(const Packet& packet, double t_start) {
  tx_->send(packet, t_start);
  t_tx_pulse_ = tx_->first_pulse_time();
}

double Transceiver::fold_by_symbols(double interval) const {
  const double ts = cfg_.symbol_period;
  double r = std::fmod(interval, ts);
  if (r < 0.0) r += ts;
  return r;
}

}  // namespace uwbams::uwb
