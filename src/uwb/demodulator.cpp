#include "uwb/demodulator.hpp"

namespace uwbams::uwb {

bool PpmDemodulator::decide(int slot0_code, int slot1_code) {
  if (slot1_code > slot0_code) return true;
  if (slot1_code < slot0_code) return false;
  // Tie: xorshift pseudo-random decision, reproducible per demodulator.
  tie_state_ ^= tie_state_ << 13;
  tie_state_ ^= tie_state_ >> 7;
  tie_state_ ^= tie_state_ << 17;
  return (tie_state_ & 1ull) != 0;
}

}  // namespace uwbams::uwb
