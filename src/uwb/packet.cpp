#include "uwb/packet.hpp"

#include <stdexcept>

namespace uwbams::uwb {

int Packet::slot_of_symbol(int k) const {
  if (k < 0 || k >= total_symbols())
    throw std::out_of_range("Packet::slot_of_symbol");
  if (k < preamble_symbols) return 0;
  if (k < preamble_symbols + sfd_symbols) return 1;
  return payload[static_cast<std::size_t>(k - preamble_symbols - sfd_symbols)]
             ? 1
             : 0;
}

}  // namespace uwbams::uwb
