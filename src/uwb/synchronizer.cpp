#include "uwb/synchronizer.hpp"

#include <stdexcept>

namespace uwbams::uwb {

ItdController::ItdController(IntegrateAndDump& itd, const Adc& adc,
                             double period, double reset_width, double t_int,
                             SampleCallback callback)
    : itd_(itd), adc_(adc), period_(period), reset_width_(reset_width),
      t_int_(t_int), callback_(std::move(callback)) {
  if (reset_width_ + t_int_ + adc_delay_ >= period_)
    throw std::invalid_argument(
        "ItdController: dump + integrate + ADC must fit in the period");
}

void ItdController::start(ams::Kernel& kernel, double first_window_start) {
  ++epoch_;  // invalidate any in-flight cycle
  window_start_ = first_window_start;
  pending_start_ = -1.0;
  schedule_phase(kernel, window_start_, 0);
}

void ItdController::schedule_phase(ams::Kernel& kernel, double t, int phase) {
  const std::uint64_t epoch = epoch_;
  // `t` is node-local; the kernel runs true time. Each edge lands at its
  // clock-mapped true time plus that edge's white-jitter draw (identity
  // clock: t unchanged, bit for bit). A draw (or a large configured clock
  // offset) that would land the edge before the kernel's current time is
  // clamped to "fires immediately" — Kernel::schedule_callback rejects
  // past times outright.
  double t_true = t;
  if (clock_ != nullptr) {
    t_true = clock_->event_true_time(t);
    if (t_true < kernel.time()) t_true = kernel.time();
  }
  kernel.schedule_callback(t_true, [this, &kernel, epoch, phase](double now) {
    if (epoch != epoch_) return;  // stale event from a previous start()
    run_phase(kernel, now, phase);
  });
}

void ItdController::run_phase(ams::Kernel& kernel, double /*t*/, int phase) {
  switch (phase) {
    case 0:  // dump
      itd_.set_mode(IntegrateAndDump::Mode::kDump);
      schedule_phase(kernel, window_start_ + reset_width_, 1);
      break;
    case 1:  // integrate
      itd_.set_mode(IntegrateAndDump::Mode::kIntegrate);
      schedule_phase(kernel, window_start_ + reset_width_ + t_int_, 2);
      break;
    case 2:  // hold, then sample after the settle delay
      itd_.set_mode(IntegrateAndDump::Mode::kHold);
      schedule_phase(kernel,
                     window_start_ + reset_width_ + t_int_ + adc_delay_, 3);
      break;
    case 3: {  // ADC sample; then decide the next window start
      WindowSample s;
      s.index = index_++;
      s.window_start = window_start_;
      s.analog = itd_.output();
      s.code = adc_.quantize(s.analog);
      if (callback_) callback_(s);

      double next = window_start_ + period_;
      if (pending_start_ >= 0.0) {
        next = pending_start_;
        pending_start_ = -1.0;
      }
      const double now = clock_ != nullptr ? clock_->local_time(kernel.time())
                                           : kernel.time();
      if (next < now + 1e-12) next = now + 1e-12;
      window_start_ = next;
      schedule_phase(kernel, window_start_, 0);
      break;
    }
    default:
      throw std::logic_error("ItdController: bad phase");
  }
}

}  // namespace uwbams::uwb
