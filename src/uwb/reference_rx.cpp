#include "uwb/reference_rx.hpp"

#include <cmath>
#include <vector>

#include "base/units.hpp"
#include "uwb/pulse.hpp"

namespace uwbams::uwb {

ReferenceBerResult reference_ber(const SystemConfig& cfg, double ebn0_db,
                                 std::uint64_t n_bits, std::uint64_t seed,
                                 double bandlimit) {
  ReferenceBerResult res;
  base::Rng rng(seed);

  const GaussianMonocycle pulse(2, cfg.pulse_sigma, 1.0);
  const double dt = cfg.dt;
  const auto n_win = static_cast<std::size_t>(cfg.integration_window / dt);
  const auto n_slot = static_cast<std::size_t>(cfg.slot_period() / dt);

  // Pre-render one noiseless burst (unit peak) over a slot.
  std::vector<double> burst(n_slot, 0.0);
  const double offset = std::max(3.5 * cfg.pulse_sigma, 2e-9);
  for (std::size_t i = 0; i < n_slot; ++i) {
    const double t = i * dt;
    double acc = 0.0;
    for (int j = 0; j < cfg.pulses_per_symbol; ++j) {
      const double rel = t - (offset + j * cfg.pulse_spacing);
      if (std::abs(rel) <= pulse.half_duration())
        acc += ((j & 1) ? -1.0 : 1.0) * pulse.value(rel);
    }
    burst[i] = acc;
  }
  double eb = 0.0;
  for (double v : burst) eb += v * v * dt;

  const double n0 = eb / units::db_to_pow(ebn0_db);
  const double sigma = std::sqrt(0.5 * n0 / dt);

  // Optional one-pole bandlimit matching the AMS chain's VGA.
  const double alpha =
      bandlimit > 0.0
          ? std::exp(-2.0 * units::pi * bandlimit * dt)
          : 0.0;

  std::vector<double> slot(n_slot);
  for (std::uint64_t k = 0; k < n_bits; ++k) {
    const bool bit = rng.bit();
    double e0 = 0.0, e1 = 0.0;
    double lp = 0.0;
    for (int s = 0; s < 2; ++s) {
      const bool has_pulse = (s == 1) == bit;
      for (std::size_t i = 0; i < n_slot; ++i) {
        double v = (has_pulse ? burst[i] : 0.0) + sigma * rng.gaussian();
        if (bandlimit > 0.0) {
          lp = alpha * lp + (1.0 - alpha) * v;
          v = lp;
        }
        if (i < n_win) (s == 0 ? e0 : e1) += v * v;
      }
    }
    bool decided;
    if (e1 == e0)
      decided = rng.bit();
    else
      decided = e1 > e0;
    ++res.bits;
    if (decided != bit) ++res.errors;
  }
  return res;
}

}  // namespace uwbams::uwb
