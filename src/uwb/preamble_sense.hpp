/// @file preamble_sense.hpp
/// @brief The NE/PS block: noise estimation + preamble sense.
///
/// Before synchronization the receiver samples the channel energy "from time
/// to time in order to evaluate whether a preamble is being transmitted"
/// (paper §2). NoiseEstimator accumulates energy codes of noise-only
/// windows; PreambleSense then flags windows whose energy exceeds the
/// estimated floor by a configurable factor, with a small hit-count
/// hysteresis against isolated noise spikes.
#pragma once

#include <cstddef>

#include "base/stats.hpp"

namespace uwbams::uwb {

class NoiseEstimator {
 public:
  explicit NoiseEstimator(std::size_t windows_needed)
      : needed_(windows_needed) {}

  void add(int code);
  bool done() const { return stats_.count() >= needed_; }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  int max_code() const { return max_code_; }

 private:
  std::size_t needed_;
  base::RunningStats stats_;
  int max_code_ = 0;
};

class PreambleSense {
 public:
  /// Threshold: mean + max(factor * stddev, 2 LSB codes). The preamble is
  /// declared once `hits_needed` of the last 2*hits_needed windows exceed
  /// the threshold: preamble pulses sit in slot 0 only, so hits arrive in
  /// *alternating* windows and a consecutive-hit rule would never fire.
  PreambleSense(const NoiseEstimator& noise, double factor, int hits_needed);

  /// Opt-in adaptive peak-to-noise-ratio mode (the OTA-C peak-search
  /// idiom): the working threshold becomes max(base, peak / ratio), where
  /// peak is the largest window code seen so far. An interference burst
  /// that spikes the energy raises the bar for the windows that follow, so
  /// sporadic blocker energy marginally above the noise floor cannot
  /// accumulate hits — only a sustained preamble-grade train (whose
  /// windows are comparable to its own peak) passes the hysteresis.
  /// Disabled by default (ratio 0): the historical fixed threshold,
  /// bit-exact. The receiver enables it only when interference is
  /// configured.
  void enable_adaptive_pnr(double ratio);

  /// Returns true once a preamble has been declared.
  bool add(int code);
  bool detected() const { return detected_; }
  double threshold() const { return threshold_; }
  /// The working threshold (== threshold() unless adaptive PNR raised it).
  double current_threshold() const;

 private:
  double threshold_;
  int hits_needed_;
  double pnr_ratio_ = 0.0;  ///< 0 = fixed-threshold mode
  double peak_code_ = 0.0;
  unsigned history_ = 0;  ///< bit i = window i windows ago was a hit
  bool detected_ = false;
};

}  // namespace uwbams::uwb
