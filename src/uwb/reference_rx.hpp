/// @file reference_rx.hpp
/// @brief Phase-I reference detector (the "Matlab check").
///
/// The paper's Phase I validates the behavioral VHDL-AMS receiver against an
/// independent high-level description ("the coherence with another high
/// level description language (Matlab) was checked", with BER curves that
/// "perfectly overlapped"). This module plays the Matlab role: a plain
/// vectorized implementation of the same 2-PPM energy detector — square the
/// sampled waveform, sum over each slot window, compare — with no AMS
/// kernel, no block partition, no front-end models. Tests cross-validate
/// the full AMS chain against it.
#pragma once

#include <cstdint>
#include <vector>

#include "base/random.hpp"
#include "uwb/config.hpp"

namespace uwbams::uwb {

struct ReferenceBerResult {
  std::uint64_t bits = 0;
  std::uint64_t errors = 0;
  double ber() const {
    return bits ? static_cast<double>(errors) / static_cast<double>(bits) : 0.0;
  }
};

/// Simulates `n_bits` 2-PPM symbols at the given Eb/N0 through the reference
/// detector: ideal integration over `cfg.integration_window` per slot,
/// noiseless timing, no quantization, no front-end. One front-end pole can
/// be emulated with `bandlimit` (0 disables) so the noise statistics match
/// the AMS chain's VGA bandwidth.
ReferenceBerResult reference_ber(const SystemConfig& cfg, double ebn0_db,
                                 std::uint64_t n_bits, std::uint64_t seed,
                                 double bandlimit = 0.0);

}  // namespace uwbams::uwb
