#include "uwb/integrator.hpp"

#include <algorithm>
#include <cmath>

#include "base/units.hpp"

namespace uwbams::uwb {

// ---------------------------------------------------------- IdealIntegrator

IdealIntegrator::IdealIntegrator(const double* input, double k)
    : in_(input), state_(k) {}

void IdealIntegrator::set_mode(Mode mode) {
  mode_ = mode;
  if (mode == Mode::kDump) state_.reset();
}

void IdealIntegrator::step(double /*t*/, double dt) {
  switch (mode_) {
    case Mode::kIntegrate:
      state_.step(*in_, dt);
      break;
    case Mode::kDump:
      state_.reset();
      break;
    case Mode::kHold:
      break;  // value frozen
  }
}

void IdealIntegrator::step_block(const double* /*t*/, double dt, int n) {
  switch (mode_) {
    case Mode::kIntegrate:
      for (int i = 0; i < n; ++i) state_.step(in_[i], dt);
      break;
    case Mode::kDump:
      state_.reset();  // idempotent: one reset == n per-sample resets
      break;
    case Mode::kHold:
      break;
  }
}

// -------------------------------------------------------- TwoPoleIntegrator

TwoPoleIntegrator::TwoPoleIntegrator(const double* input,
                                     const TwoPoleParams& params)
    : in_(input), params_(params),
      state_(units::db_to_lin(params.dc_gain_db),
             2.0 * units::pi * params.f_pole1,
             2.0 * units::pi * params.f_pole2) {}

void TwoPoleIntegrator::set_mode(Mode mode) {
  mode_ = mode;
  if (mode == Mode::kDump) state_.reset();
}

void TwoPoleIntegrator::step(double /*t*/, double dt) {
  switch (mode_) {
    case Mode::kIntegrate: {
      double u = *in_;
      if (params_.input_clamp > 0.0)
        u = std::clamp(u, -params_.input_clamp, params_.input_clamp);
      state_.step(u, dt);
      break;
    }
    case Mode::kDump:
      state_.reset();  // the paper's "else vo_q==0.0; vo==0.0"
      break;
    case Mode::kHold:
      break;
  }
}

void TwoPoleIntegrator::step_block(const double* /*t*/, double dt, int n) {
  switch (mode_) {
    case Mode::kIntegrate: {
      const double clamp = params_.input_clamp;
      if (clamp > 0.0) {
        for (int i = 0; i < n; ++i)
          state_.step(std::clamp(in_[i], -clamp, clamp), dt);
      } else {
        for (int i = 0; i < n; ++i) state_.step(in_[i], dt);
      }
      break;
    }
    case Mode::kDump:
      state_.reset();  // idempotent: one reset == n per-sample resets
      break;
    case Mode::kHold:
      break;
  }
}

// --------------------------------------------------------- SpiceIntegrator

SpiceIntegrator::SpiceIntegrator(const double* input,
                                 const spice::ItdSizing& sizing,
                                 spice::TransientOptions options)
    : in_(input), vdd_(sizing.vdd),
      decim_(std::max(1, options.cosim_decimation)) {
  auto circuit = std::make_unique<spice::Circuit>();
  const auto tb = spice::build_itd_testbench(*circuit, sizing);
  input_cm_ = tb.input_cm;
  vinp_ = input_cm_;
  vinm_ = input_cm_;
  ctrlp_ = vdd_;  // start in dump: switches closed, reset on
  ctrlm_ = vdd_;

  bridge_ = std::make_unique<ams::SpiceBridge>(std::move(circuit), options);
  bridge_->bind_input("vinp", &vinp_);
  bridge_->bind_input("vinm", &vinm_);
  // Control rails slew at 3.6 V/ns (~0.5 ns edges), matching an on-chip
  // driver rather than an unphysical step.
  bridge_->bind_input("vctrlp", &ctrlp_, 3.6);
  bridge_->bind_input("vctrlm", &ctrlm_, 3.6);
  // The fully differential cell inverts; reading (Out_intm - Out_intp)
  // normalizes the output polarity to match the behavioral variants.
  out_ = bridge_->bind_output("Out_intm", "Out_intp");
}

void SpiceIntegrator::set_mode(Mode mode) {
  // Pending decimated samples belong to the outgoing control phase: flush
  // them before the rails move so window edges stay sample-accurate.
  flush_pending();
  mode_ = mode;
  switch (mode) {
    case Mode::kDump:
      ctrlp_ = vdd_;
      ctrlm_ = vdd_;
      break;
    case Mode::kIntegrate:
      ctrlp_ = vdd_;
      ctrlm_ = 0.0;
      break;
    case Mode::kHold:
      ctrlp_ = 0.0;
      ctrlm_ = 0.0;
      break;
  }
}

void SpiceIntegrator::step(double t, double dt) {
  const double u = *in_;
  vinp_ = input_cm_ + 0.5 * u;
  vinm_ = input_cm_ - 0.5 * u;
  if (decim_ <= 1) {
    bridge_->step(t, dt);
    return;
  }
  // Multirate: hold the drive and solve once per decim_ samples over the
  // combined span. White-noise inputs keep their per-sample statistics
  // under sample-and-hold (an averaging prefilter would halve the noise
  // energy the detector integrates — a ~3 dB bias the stat gate rejects).
  pend_t_ = t;
  pend_dt_ = dt;
  if (++pend_n_ < decim_) return;
  flush_pending();
}

void SpiceIntegrator::flush_pending() {
  if (pend_n_ == 0) return;
  const double span = pend_dt_ * pend_n_;
  pend_n_ = 0;
  bridge_->step(pend_t_, span);
}

void SpiceIntegrator::step_block(const double* t, double dt, int n) {
  for (int i = 0; i < n; ++i) {
    const double u = in_[i];
    vinp_ = input_cm_ + 0.5 * u;
    vinm_ = input_cm_ - 0.5 * u;
    if (decim_ <= 1) {
      bridge_->step(t[i], dt);
      continue;
    }
    pend_t_ = t[i];
    pend_dt_ = dt;
    if (++pend_n_ >= decim_) flush_pending();
  }
}

}  // namespace uwbams::uwb
