/// @file pulse.hpp
/// @brief UWB monocycle pulse shapes.
///
/// Impulse-radio UWB sends sub-ns baseband pulses directly to the antenna
/// (no carrier). The classic shapes are Gaussian derivatives; the antenna
/// differentiates once more in practice, so the 2nd derivative ("Mexican
/// hat") is the common received-waveform model and our default.
#pragma once

#include <vector>

namespace uwbams::uwb {

class GaussianMonocycle {
 public:
  /// order: Gaussian derivative order (1 or 2); sigma: pulse width parameter;
  /// amplitude: peak |value|.
  GaussianMonocycle(int order, double sigma, double amplitude);

  /// Waveform value at time t relative to the pulse center.
  double value(double t_rel) const;
  /// Energy of the continuous pulse (integral of value^2 dt), closed form.
  double energy() const;
  /// Time beyond which the pulse is negligible (|v| < ~1e-5 of peak).
  double half_duration() const { return 5.0 * sigma_; }
  double sigma() const { return sigma_; }
  int order() const { return order_; }
  double amplitude() const { return amplitude_; }

  /// Nominal -10 dB bandwidth estimate [Hz] (for dof computations in the
  /// semi-analytic BER reference).
  double bandwidth() const;

  /// Sampled waveform on [-half_duration, +half_duration] at step dt.
  std::vector<double> sampled(double dt) const;

 private:
  int order_;
  double sigma_;
  double amplitude_;
  double norm_;  ///< normalization so the peak equals `amplitude`
};

}  // namespace uwbams::uwb
