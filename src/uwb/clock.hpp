/// @file clock.hpp
/// @brief Local-oscillator nonideality model for ranging nodes.
///
/// Real pulsed-UWB transceivers derive every timing decision — the pulse
/// repetition clock, the integration-window edges, the TWR processing-time
/// countdown — from a crystal oscillator with a ppm-level frequency offset,
/// a slow frequency drift and white phase jitter. The paper's §5 ranging
/// analysis subtracts the processing time PT as if both nodes shared one
/// perfect clock; ClockModel restores the nonideality so the classic
/// PT-scaling TWR bias term (~ 0.5 c PT (delta_a - delta_b)) appears in the
/// simulated estimates and can be studied / compensated.
///
/// Conventions:
///   * The AMS kernel advances *true* (lab-frame) time t.
///   * A node's digital machinery works in its *local* clock time
///     tau = local_time(t) = offset + (1 + ppm 1e-6) t + 0.5 drift 1e-6 t^2.
///   * Blocks convert at the kernel boundary only: scheduled edges go
///     local -> true (true_time / event_true_time), observed kernel times go
///     true -> local.
///   * A default-constructed (all-zero) ClockConfig is the *bit-exact
///     identity*: local_time/true_time return their argument unchanged and
///     event jitter is zero, so every pre-existing testbench reproduces its
///     historical waveforms and estimates exactly.
#pragma once

#include <cstdint>

namespace uwbams::uwb {

/// Per-node oscillator parameters (all zero = ideal clock, the bit-exact
/// identity on every timing path).
struct ClockConfig {
  double ppm = 0.0;             ///< fractional frequency offset [parts/1e6]
  double drift_ppm_per_s = 0.0; ///< linear frequency drift [ppm/s]
  double jitter_rms = 0.0;      ///< white phase jitter per timing edge [s]
  double offset = 0.0;          ///< initial phase offset [s]
  /// Node identity: selects the deterministic base::derive_seed sub-stream
  /// the jitter draws come from, so two nodes with identical parameters
  /// still jitter independently (and reproducibly, regardless of execution
  /// order or worker count).
  std::uint64_t node_id = 0;

  /// Member-wise equality (exact double compare: two configs are "equal"
  /// only when they are the *same run identity*, the canonical-
  /// serialization round-trip contract).
  bool operator==(const ClockConfig&) const = default;
};

class ClockModel {
 public:
  /// Identity clock (no arguments): every mapping is exact.
  ClockModel() { update_cache(); }
  /// `base_seed` is the experiment seed; the jitter stream is
  /// derive_seed(derive_seed(base_seed, kClockPurpose), cfg.node_id).
  ClockModel(const ClockConfig& cfg, std::uint64_t base_seed);

  const ClockConfig& config() const { return cfg_; }

  /// True when every mapping is the exact identity (zero ppm, drift,
  /// offset and jitter) — the fast path existing testbenches stay on.
  bool is_identity() const { return identity_; }

  /// Local clock reading at true time t. Exact identity when
  /// is_identity().
  double local_time(double t_true) const {
    if (identity_) return t_true;
    return cfg_.offset + rate_ * t_true + 0.5 * drift_ * t_true * t_true;
  }

  /// Inverse mapping: the true time at which the local clock reads
  /// t_local. Exact identity when is_identity(); otherwise solved by
  /// Newton iteration on local_time (the mapping is monotonic for any
  /// physical ppm/drift magnitude).
  double true_time(double t_local) const;

  /// Deterministic white phase jitter of the timing edge a node schedules
  /// at local time t_local. The draw is keyed on (jitter stream, bit
  /// pattern of t_local), so it does not depend on how many edges were
  /// scheduled before or which worker evaluates it.
  double jitter_at(double t_local) const;

  /// true_time(t_local) + jitter_at(t_local): where in true time the edge
  /// scheduled at local t_local actually lands.
  double event_true_time(double t_local) const {
    const double t = true_time(t_local);
    return identity_ ? t : t + jitter_at(t_local);
  }

  /// Instantaneous fractional frequency error at true time t
  /// (ppm 1e-6 + drift 1e-6 t) — the delta of the TWR bias algebra.
  double frequency_error(double t_true) const {
    return 1e-6 * (cfg_.ppm + cfg_.drift_ppm_per_s * t_true);
  }

 private:
  void update_cache();

  ClockConfig cfg_;
  std::uint64_t jitter_seed_ = 0;
  double rate_ = 1.0;   ///< 1 + ppm 1e-6
  double drift_ = 0.0;  ///< drift_ppm_per_s 1e-6
  bool identity_ = true;
};

}  // namespace uwbams::uwb
