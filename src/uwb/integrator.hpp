/// @file integrator.hpp
/// @brief The Integrate & Dump block in its three fidelities.
///
/// This is the block the paper walks through the methodology:
///
///   * IdealIntegrator   (Phase II):  if sel='1' use vo'Dot == vin*K
///   * SpiceIntegrator   (Phase III): the imported 31-transistor netlist,
///                                    co-simulated through ams::SpiceBridge
///   * TwoPoleIntegrator (Phase IV):  the two coupled ODEs with the DC gain
///                                    and the two poles characterized from
///                                    the netlist (plus an optional input
///                                    linear-range clamp — the non-ideality
///                                    the paper's model deliberately lacks,
///                                    causing the Fig. 5 mismatch)
///
/// All three satisfy IntegrateAndDump, so the system testbench swaps them
/// without any other change (substitute-and-play).
#pragma once

#include <memory>
#include <string>

#include "ams/kernel.hpp"
#include "ams/ode.hpp"
#include "ams/spice_bridge.hpp"
#include "spice/itd_builder.hpp"
#include "uwb/config.hpp"

namespace uwbams::uwb {

class IntegrateAndDump : public ams::AnalogBlock {
 public:
  /// Control phases map to the cell's (Controlp, Controlm) rails:
  ///   kDump      = (1,1): switches closed, reset on — clears the capacitor
  ///                "prior to restart integration" (paper §4)
  ///   kIntegrate = (1,0): switches closed, accumulating
  ///   kHold      = (0,0): capacitor floating for the ADC conversion
  enum class Mode { kDump, kIntegrate, kHold };

  ~IntegrateAndDump() override = default;
  virtual void set_mode(Mode mode) = 0;
  virtual Mode mode() const = 0;
  /// Integrated differential output voltage (what the ADC samples).
  virtual double output() const = 0;
  virtual std::string kind() const = 0;
};

/// Phase II: vo' = K * vin while integrating.
///
/// All three integrators are batch-capable: mode changes arrive from the
/// window controller's digital events, which the kernel only fires at batch
/// boundaries, so one switch over the mode covers a whole batch and the
/// integrate-phase recurrence runs as a tight loop over the input buffer.
class IdealIntegrator final : public IntegrateAndDump {
 public:
  IdealIntegrator(const double* input, double k);
  void set_mode(Mode mode) override;
  Mode mode() const override { return mode_; }
  double output() const override { return state_.value(); }
  std::string kind() const override { return "IDEAL"; }
  void step(double t, double dt) override;
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;

 private:
  const double* in_;
  ams::IdealIntegratorState state_;
  Mode mode_ = Mode::kDump;
};

/// Phase IV: two coupled ODEs (gain + two poles), optional input clamp.
struct TwoPoleParams {
  double dc_gain_db = 21.0;
  double f_pole1 = 0.886e6;   ///< [Hz]
  double f_pole2 = 5.895e9;   ///< [Hz]
  double input_clamp = 0.0;   ///< [V]; 0 disables (the paper's linear model)
};

class TwoPoleIntegrator final : public IntegrateAndDump {
 public:
  TwoPoleIntegrator(const double* input, const TwoPoleParams& params);
  void set_mode(Mode mode) override;
  Mode mode() const override { return mode_; }
  double output() const override { return state_.value(); }
  std::string kind() const override { return "VHDL-AMS"; }
  const TwoPoleParams& params() const { return params_; }
  void step(double t, double dt) override;
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;

 private:
  const double* in_;
  TwoPoleParams params_;
  ams::TwoPoleState state_;
  Mode mode_ = Mode::kDump;
};

/// Phase III: the transistor-level cell through the co-simulation bridge.
class SpiceIntegrator final : public IntegrateAndDump {
 public:
  /// `input` is the differential squarer output; it is applied around the
  /// cell's 0.9 V input common mode. The embedded solver runs at the
  /// kernel's step (options.dt is only the default).
  SpiceIntegrator(const double* input, const spice::ItdSizing& sizing = {},
                  spice::TransientOptions options = {});
  void set_mode(Mode mode) override;
  Mode mode() const override { return mode_; }
  double output() const override { return *out_; }
  std::string kind() const override { return "ELDO"; }
  void step(double t, double dt) override;
  /// Batching stops at the co-simulation boundary: each batch sample is one
  /// macro step of the embedded solver, driven with that sample's input —
  /// the identical per-sample sequence, minus the per-sample virtual
  /// dispatch through the kernel.
  bool supports_batch() const override { return true; }
  void step_block(const double* t, double dt, int n) override;

  ams::SpiceBridge& bridge() { return *bridge_; }

 private:
  const double* in_;
  double input_cm_;
  double vdd_;
  std::unique_ptr<ams::SpiceBridge> bridge_;
  const double* out_;
  /// Signals driven into the embedded circuit.
  double vinp_ = 0.9, vinm_ = 0.9, ctrlp_ = 1.8, ctrlm_ = 1.8;
  Mode mode_ = Mode::kDump;
  /// Multirate co-simulation (TransientOptions::cosim_decimation): one
  /// embedded solver step per `decim_` macro samples, at step size dt*N
  /// with the latest sample held as the drive. set_mode() flushes pending
  /// samples so the integrate/dump window edges stay sample-accurate.
  int decim_ = 1;
  int pend_n_ = 0;
  double pend_t_ = 0.0;
  double pend_dt_ = 0.0;
  void flush_pending();
};

}  // namespace uwbams::uwb
