/// @file demodulator.hpp
/// @brief 2-PPM slot-energy decision and error accounting.
///
/// Demodulation "consists in evaluating the energy in the first and in the
/// second half of Ts and deciding which one is larger" (paper §2). The
/// comparison happens on ADC codes, as in the paper's digital back end; ties
/// are broken pseudo-randomly to avoid a systematic bias at low SNR.
#pragma once

#include <cstdint>
#include <vector>

#include "base/stats.hpp"

namespace uwbams::uwb {

class PpmDemodulator {
 public:
  /// Returns the decided bit for one symbol given the two slot codes.
  bool decide(int slot0_code, int slot1_code);

  /// Convenience for counting: feed the decision against the sent bit.
  void record(bool sent, bool decided) { ber_.add(sent != decided); }
  const base::BerCounter& ber() const { return ber_; }
  void reset_counts() { ber_ = base::BerCounter{}; }

 private:
  base::BerCounter ber_;
  std::uint64_t tie_state_ = 0x9E3779B97F4A7C15ull;  ///< tie-break LFSR state
};

}  // namespace uwbams::uwb
